// Package havoqgt is the high-level facade over the distributed asynchronous
// graph framework: build (or generate) a graph once, partitioned with the
// paper's edge list partitioning across a simulated distributed machine, and
// run BFS (top-down or direction-optimizing), SSSP, connected components,
// k-core decomposition, PageRank, and triangle counting against it with
// single calls.
//
//	g, _ := havoqgt.GenerateRMAT(16, 42, havoqgt.Options{Ranks: 8})
//	bfs, _ := g.BFS(0)
//	fmt.Println(bfs.MaxLevel, bfs.Levels[17])
//
// The facade gathers distributed results into global arrays, which is
// convenient up to tens of millions of vertices. For full control (per-rank
// state, custom visitors, NVRAM-backed storage, validation) use the
// internal packages directly the way cmd/ and examples/ do.
package havoqgt

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"havoqgt/internal/algos/bfs"
	"havoqgt/internal/algos/cc"
	"havoqgt/internal/algos/kcore"
	"havoqgt/internal/algos/pagerank"
	"havoqgt/internal/algos/sssp"
	"havoqgt/internal/algos/triangle"
	"havoqgt/internal/core"
	"havoqgt/internal/generators"
	"havoqgt/internal/graph"
	"havoqgt/internal/mailbox"
	"havoqgt/internal/ooc"
	"havoqgt/internal/partition"
	"havoqgt/internal/rt"
)

// Edge is a directed edge; store both directions (or set Options.Undirect)
// for undirected semantics.
type Edge = graph.Edge

// Vertex is a vertex identifier in [0, NumVertices).
type Vertex = graph.Vertex

// Nil is the "no vertex" sentinel used for unreached parents.
const Nil = graph.Nil

// Unreached is the BFS level of vertices the traversal did not reach.
const Unreached = bfs.Unreached

// MaxPageRankIters bounds a single PageRank query's iteration count.
const MaxPageRankIters = pagerank.MaxIters

// DefaultPageRankIters is the iteration count a PageRank query with iters = 0
// actually runs.
const DefaultPageRankIters = pagerank.DefaultIters

// Options configure the simulated machine and framework features.
type Options struct {
	// Ranks is the number of simulated distributed ranks (default 4).
	Ranks int
	// Topology routes the visitor mailbox: "1d" (direct, default), "2d", "3d".
	Topology string
	// GhostsPerPartition sets the hub-filter table size for algorithms that
	// declare ghost usage (BFS, SSSP, CC). Default 256, the paper's value;
	// set negative to disable.
	GhostsPerPartition int
	// Undirect stores both directions of every input edge.
	Undirect bool
	// Simplify removes self loops and duplicate edges globally (required
	// for k-core and triangle counting; applied automatically if unset only
	// when those algorithms run would be unsafe — set it explicitly when
	// your input has duplicates).
	Simplify bool
	// DisableBucketOrder forces SSSP's local scheduler back onto the binary
	// heap even though the algorithm declares bucketed (delta-stepping)
	// ordering. A benchmarking knob: results are identical either way, only
	// the relaxation schedule differs. Applies to both classic traversals
	// and an attached engine.
	DisableBucketOrder bool
}

func (o Options) normalized() Options {
	if o.Ranks <= 0 {
		o.Ranks = 4
	}
	if o.Topology == "" {
		o.Topology = "1d"
	}
	if o.GhostsPerPartition == 0 {
		o.GhostsPerPartition = core.DefaultGhostsPerPartition
	}
	return o
}

// Graph is a partitioned graph bound to a simulated machine. Build once,
// query many times. All query methods are safe for concurrent use: classic
// (machine-exclusive) traversals serialize on an internal mutex, and while a
// multi-query Engine is attached (StartEngine) the traversal methods route
// through it instead — bypassing the mutex — so concurrent callers genuinely
// interleave.
type Graph struct {
	opts    Options
	n       uint64
	machine *rt.Machine
	parts   []*partition.Part
	ghosts  []*core.GhostTable

	// mu serializes machine phases. A rt.Machine runs one collective phase
	// at a time; two goroutines calling Run concurrently would interleave
	// two traversals' untagged records on the same message plane and corrupt
	// both (the data race this lock fixes). eng, when non-nil, redirects
	// traversal methods to the multi-query engine.
	mu  sync.Mutex
	eng *Engine

	// stores, when non-nil, hold each rank's out-of-core adjacency backing
	// (SetMemoryBudget). Indexed like parts.
	stores []*ooc.Store

	// version is the graph's monotone snapshot version, starting at 1.
	// Today the partitioned graph is immutable, so the version only moves
	// when BumpVersion is called explicitly; the streaming-ingest path
	// (ROADMAP item 4) will bump it on every compacted snapshot swap. The
	// serving layer keys its result cache on this value, so a bump
	// invalidates every cached answer.
	version atomic.Uint64
}

// runExclusive executes one collective machine phase under the graph lock.
// Fails if an engine currently owns the machine (the caller should have been
// routed to it; only engine-incapable operations like sampled triangle
// estimation see the error).
func (g *Graph) runExclusive(fn func(r *rt.Rank)) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.eng != nil {
		return fmt.Errorf("havoqgt: operation unavailable while a query engine is attached (close it first)")
	}
	g.machine.Run(fn)
	return nil
}

// engineOrNil returns the attached engine, if any.
func (g *Graph) engineOrNil() *Engine {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.eng
}

// NewGraph partitions the given edge list across a fresh simulated machine.
func NewGraph(edges []Edge, numVertices uint64, opts Options) (*Graph, error) {
	opts = opts.normalized()
	if opts.Undirect {
		edges = graph.Undirect(edges)
	}
	chunk := func(rank, size int) []Edge {
		var local []Edge
		for i, e := range edges {
			if i%size == rank {
				local = append(local, e)
			}
		}
		return local
	}
	return build(chunk, numVertices, opts)
}

// GenerateRMAT builds a Graph500-parameter RMAT graph of the given scale,
// stored undirected.
func GenerateRMAT(scale uint, seed uint64, opts Options) (*Graph, error) {
	opts = opts.normalized()
	g := generators.NewGraph500(scale, seed)
	return build(func(rank, size int) []Edge {
		return graph.Undirect(g.GenerateChunk(rank, size))
	}, g.NumVertices(), opts)
}

// build runs the collective construction.
func build(chunk func(rank, size int) []Edge, n uint64, opts Options) (*Graph, error) {
	if _, err := mailbox.ByName(opts.Topology, opts.Ranks); err != nil {
		return nil, err
	}
	g := &Graph{
		opts:    opts,
		n:       n,
		machine: rt.NewMachine(opts.Ranks),
		parts:   make([]*partition.Part, opts.Ranks),
		ghosts:  make([]*core.GhostTable, opts.Ranks),
	}
	errs := make([]error, opts.Ranks)
	g.machine.Run(func(r *rt.Rank) {
		local := chunk(r.Rank(), r.Size())
		var part *partition.Part
		var err error
		if opts.Simplify {
			part, err = partition.BuildEdgeListSimple(r, local, n)
		} else {
			part, err = partition.BuildEdgeList(r, local, n)
		}
		if err != nil {
			errs[r.Rank()] = err
			return
		}
		g.parts[r.Rank()] = part
		if opts.GhostsPerPartition > 0 {
			g.ghosts[r.Rank()] = core.BuildGhostTable(part, opts.GhostsPerPartition)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	g.version.Store(1)
	return g, nil
}

// Version returns the graph's current snapshot version (1 for a freshly
// built graph). Result caches key on it: answers computed at version v are
// valid exactly while Version() == v.
func (g *Graph) Version() uint64 { return g.version.Load() }

// BumpVersion advances the snapshot version and returns the new value. This
// is the invalidation hook for mutation paths (streaming ingest, snapshot
// swap — ROADMAP item 4): bump after the new snapshot is visible and every
// version-keyed cache entry from before it becomes stale atomically.
func (g *Graph) BumpVersion() uint64 { return g.version.Add(1) }

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() uint64 { return g.n }

// NumEdges returns the number of stored directed edges.
func (g *Graph) NumEdges() uint64 { return g.parts[0].GlobalEdges }

// Ranks returns the simulated rank count.
func (g *Graph) Ranks() int { return g.opts.Ranks }

// SetSimLatency configures a simulated interconnect latency: every
// rank-to-rank message takes at least d of wall-clock time to become
// visible at its destination, emulating the network / external-memory
// transfer costs a real distributed machine pays. By default the simulated
// transport is instantaneous, which flatters serialized one-query-at-a-time
// execution — there is no latency for the asynchronous framework to hide.
// Takes effect for messages sent after the call; safe for concurrent use.
func (g *Graph) SetSimLatency(d time.Duration) { g.machine.SetSimLatency(d) }

// Degree returns the (stored, directed) degree of a vertex.
func (g *Graph) Degree(v Vertex) (uint64, error) {
	if uint64(v) >= g.n {
		return 0, fmt.Errorf("havoqgt: vertex %d out of range", v)
	}
	owner := g.parts[0].Master(v)
	return g.parts[owner].GlobalDegree(v), nil
}

// cfg assembles a rank's visitor-queue config; ghost tables only for
// algorithms that declare ghost usage.
func (g *Graph) cfg(rank int, useGhosts bool) core.Config {
	topo, _ := mailbox.ByName(g.opts.Topology, g.opts.Ranks)
	c := core.Config{Topology: topo, DisableBucketOrder: g.opts.DisableBucketOrder}
	if useGhosts {
		c.Ghosts = g.ghosts[rank]
	}
	return c
}

// gather copies a per-vertex value from each master into a global array.
func gather[T any](out []T, part *partition.Part, get func(i int) T) {
	lo, hi := part.Owners.MasterRange(part.Rank)
	for v := lo; v < hi; v++ {
		i, _ := part.LocalIndex(graph.Vertex(v))
		out[v] = get(i)
	}
}

// BFSResult holds a breadth-first search over the whole graph.
type BFSResult struct {
	Source   Vertex
	Levels   []uint32 // Unreached where not reached
	Parents  []Vertex // Nil where not reached
	MaxLevel uint32
	Reached  uint64
}

// BFS runs the distributed asynchronous BFS from source. Safe for concurrent
// use; with an attached engine, concurrent calls interleave as independent
// queries.
func (g *Graph) BFS(source Vertex) (*BFSResult, error) {
	if uint64(source) >= g.n {
		return nil, fmt.Errorf("havoqgt: source %d out of range", source)
	}
	if e := g.engineOrNil(); e != nil {
		q, err := e.SubmitBFS(source)
		if err != nil {
			return nil, err
		}
		return q.waitBFS()
	}
	out := &BFSResult{
		Source:  source,
		Levels:  make([]uint32, g.n),
		Parents: make([]Vertex, g.n),
	}
	err := g.runExclusive(func(r *rt.Rank) {
		part := g.parts[r.Rank()]
		res := bfs.Run(r, part, source, g.cfg(r.Rank(), true))
		gather(out.Levels, part, func(i int) uint32 { return res.Level[i] })
		gather(out.Parents, part, func(i int) Vertex { return res.Parent[i] })
	})
	if err != nil {
		return nil, err
	}
	finishBFSResult(out)
	return out, nil
}

// BFSDirOpt runs the direction-optimizing BFS from source: top-down sparse
// phases switch to bottom-up dense-bitmap scans when the frontier grows past
// the Beamer heuristic thresholds, and back once it shrinks. Levels and
// parent validity are bit-identical to BFS; only the traversal schedule (and
// on low-diameter scale-free graphs, the edge examination count) differs.
// Safe for concurrent use; with an attached engine, routes through it.
func (g *Graph) BFSDirOpt(source Vertex) (*BFSResult, error) {
	if uint64(source) >= g.n {
		return nil, fmt.Errorf("havoqgt: source %d out of range", source)
	}
	if e := g.engineOrNil(); e != nil {
		q, err := e.SubmitBFSDO(source)
		if err != nil {
			return nil, err
		}
		return q.waitBFS()
	}
	out := &BFSResult{
		Source:  source,
		Levels:  make([]uint32, g.n),
		Parents: make([]Vertex, g.n),
	}
	err := g.runExclusive(func(r *rt.Rank) {
		part := g.parts[r.Rank()]
		res := bfs.RunDO(r, part, source, g.cfg(r.Rank(), false))
		gather(out.Levels, part, func(i int) uint32 { return res.Level[i] })
		gather(out.Parents, part, func(i int) Vertex { return res.Parent[i] })
	})
	if err != nil {
		return nil, err
	}
	finishBFSResult(out)
	return out, nil
}

// finishBFSResult derives the scalar summary fields from the level array.
func finishBFSResult(out *BFSResult) {
	for _, l := range out.Levels {
		if l != Unreached {
			out.Reached++
			if l > out.MaxLevel {
				out.MaxLevel = l
			}
		}
	}
}

// SSSPResult holds single-source shortest paths under the synthesized
// deterministic edge weights (see sssp.Weight).
type SSSPResult struct {
	Source    Vertex
	Distances []uint64 // sssp.Unreached where not reached
	Parents   []Vertex
}

// UnreachedDistance is the distance of vertices SSSP did not reach.
const UnreachedDistance = sssp.Unreached

// ShortestPaths runs distributed SSSP from source with weights keyed by
// weightSeed. Safe for concurrent use.
func (g *Graph) ShortestPaths(source Vertex, weightSeed uint64) (*SSSPResult, error) {
	if uint64(source) >= g.n {
		return nil, fmt.Errorf("havoqgt: source %d out of range", source)
	}
	if e := g.engineOrNil(); e != nil {
		q, err := e.SubmitSSSP(source, weightSeed)
		if err != nil {
			return nil, err
		}
		return q.waitSSSP()
	}
	out := &SSSPResult{
		Source:    source,
		Distances: make([]uint64, g.n),
		Parents:   make([]Vertex, g.n),
	}
	err := g.runExclusive(func(r *rt.Rank) {
		part := g.parts[r.Rank()]
		res := sssp.Run(r, part, source, weightSeed, g.cfg(r.Rank(), true))
		gather(out.Distances, part, func(i int) uint64 { return res.Dist[i] })
		gather(out.Parents, part, func(i int) Vertex { return res.Parent[i] })
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ComponentsResult labels every vertex with the smallest vertex id in its
// connected component.
type ComponentsResult struct {
	Labels []Vertex
	Count  uint64
}

// Components runs distributed connected components. Safe for concurrent use.
func (g *Graph) Components() (*ComponentsResult, error) {
	if e := g.engineOrNil(); e != nil {
		q, err := e.SubmitComponents()
		if err != nil {
			return nil, err
		}
		return q.waitComponents()
	}
	out := &ComponentsResult{Labels: make([]Vertex, g.n)}
	counts := make([]uint64, g.opts.Ranks)
	err := g.runExclusive(func(r *rt.Rank) {
		part := g.parts[r.Rank()]
		res := cc.Run(r, part, g.cfg(r.Rank(), true))
		gather(out.Labels, part, func(i int) Vertex { return res.Label[i] })
		counts[r.Rank()] = cc.NumComponents(r, res)
	})
	if err != nil {
		return nil, err
	}
	out.Count = counts[0]
	return out, nil
}

// KCoreResult holds a k-core membership query.
type KCoreResult struct {
	K        uint32
	InCore   []bool
	CoreSize uint64
}

// KCore computes the k-core. The graph must be simple (set Options.Simplify
// when building from inputs with duplicates or self loops).
func (g *Graph) KCore(k uint32) (*KCoreResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("havoqgt: k must be >= 1")
	}
	if e := g.engineOrNil(); e != nil {
		q, err := e.SubmitKCore(k)
		if err != nil {
			return nil, err
		}
		return q.waitKCore()
	}
	out := &KCoreResult{K: k, InCore: make([]bool, g.n)}
	sizes := make([]uint64, g.opts.Ranks)
	err := g.runExclusive(func(r *rt.Rank) {
		part := g.parts[r.Rank()]
		res := kcore.Run(r, part, k, g.cfg(r.Rank(), false))
		gather(out.InCore, part, func(i int) bool { return res.Alive[i] })
		sizes[r.Rank()] = kcore.GlobalCoreSize(r, res)
	})
	if err != nil {
		return nil, err
	}
	out.CoreSize = sizes[0]
	return out, nil
}

// PageRankResult holds fixed-point PageRank scores scaled by
// ref.PRScale (2^40); Ranks[v] / float64(1<<40) recovers the usual
// probability. The fixed-point arithmetic makes the output bit-identical
// across rank counts, topologies, and schedules.
type PageRankResult struct {
	Iters uint32
	Ranks []uint64
}

// PageRank runs the given number of damped PageRank iterations (0 = the
// default count). Safe for concurrent use; routes through an attached engine.
func (g *Graph) PageRank(iters uint32) (*PageRankResult, error) {
	if iters > pagerank.MaxIters {
		return nil, fmt.Errorf("havoqgt: pagerank iters %d exceeds max %d", iters, pagerank.MaxIters)
	}
	if e := g.engineOrNil(); e != nil {
		q, err := e.SubmitPageRank(iters)
		if err != nil {
			return nil, err
		}
		return q.waitPageRank()
	}
	effective := iters
	if effective == 0 {
		effective = pagerank.DefaultIters
	}
	out := &PageRankResult{Iters: effective, Ranks: make([]uint64, g.n)}
	err := g.runExclusive(func(r *rt.Rank) {
		part := g.parts[r.Rank()]
		res := pagerank.Run(r, part, iters, g.cfg(r.Rank(), false))
		gather(out.Ranks, part, func(i int) uint64 { return res.Rank[i] })
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TrianglesResult holds an exact triangle count.
type TrianglesResult struct {
	Count uint64
}

// CountTriangles counts triangles exactly. Duplicate edges and self loops are
// ignored, so the graph need not be simplified. Safe for concurrent use;
// routes through an attached engine.
func (g *Graph) CountTriangles() (uint64, error) {
	if e := g.engineOrNil(); e != nil {
		q, err := e.SubmitTriangles()
		if err != nil {
			return 0, err
		}
		r, err := q.waitTriangles()
		if err != nil {
			return 0, err
		}
		return r.Count, nil
	}
	counts := make([]uint64, g.opts.Ranks)
	err := g.runExclusive(func(r *rt.Rank) {
		res := triangle.Run(r, g.parts[r.Rank()], g.cfg(r.Rank(), false))
		counts[r.Rank()] = res.GlobalCount
	})
	if err != nil {
		return 0, err
	}
	return counts[0], nil
}

// EstimateTriangles approximates the triangle count by Bernoulli wedge
// sampling with the given probability (0 < p < 1). The graph must be simple.
func (g *Graph) EstimateTriangles(sampleProb float64, seed uint64) (float64, error) {
	if sampleProb <= 0 || sampleProb >= 1 {
		return 0, fmt.Errorf("havoqgt: sample probability must be in (0, 1)")
	}
	ests := make([]float64, g.opts.Ranks)
	err := g.runExclusive(func(r *rt.Rank) {
		res := triangle.RunOpts(r, g.parts[r.Rank()], g.cfg(r.Rank(), false),
			triangle.Options{SampleProb: sampleProb, SampleSeed: seed})
		ests[r.Rank()] = res.Estimate()
	})
	if err != nil {
		return 0, err
	}
	return ests[0], nil
}
