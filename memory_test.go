package havoqgt

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// bfsSig condenses a BFS result for equality checks.
func bfsSig(r *BFSResult) uint64 {
	h := r.Reached*1e9 + uint64(r.MaxLevel)
	for v, lv := range r.Levels {
		h += uint64(lv) * uint64(v+1)
	}
	return h
}

// TestMemoryBudgetClassicEquivalence runs the classic (serialized) path
// under a 1/8 resident budget and checks the answers and the cache activity:
// results identical to fully resident, misses equal to real fault-ins, and a
// working restore path.
func TestMemoryBudgetClassicEquivalence(t *testing.T) {
	g, err := GenerateRMAT(9, 7, Options{Ranks: 4, Undirect: true})
	if err != nil {
		t.Fatal(err)
	}
	base, err := g.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	baseCC, err := g.Components()
	if err != nil {
		t.Fatal(err)
	}

	if err := g.SetMemoryBudget(MemoryConfig{ResidentFraction: 0.125, DeviceLatency: time.Microsecond}); err != nil {
		t.Fatal(err)
	}
	if !g.OutOfCore() {
		t.Fatal("OutOfCore() false after SetMemoryBudget")
	}
	if err := g.SetMemoryBudget(MemoryConfig{ResidentFraction: 0.5}); err == nil {
		t.Fatal("second SetMemoryBudget without reset accepted")
	}

	got, err := g.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	if bfsSig(got) != bfsSig(base) {
		t.Fatal("out-of-core BFS diverges from fully-resident BFS")
	}
	gotCC, err := g.Components()
	if err != nil {
		t.Fatal(err)
	}
	if gotCC.Count != baseCC.Count {
		t.Fatalf("out-of-core components = %d, resident = %d", gotCC.Count, baseCC.Count)
	}
	ms := g.MemoryStats()
	if ms.CacheMisses == 0 {
		t.Fatal("no cache misses at resident fraction 1/8: the budget is not taking effect")
	}
	if ms.CacheHits == 0 {
		t.Fatal("zero cache hits: the cache is not retaining pages")
	}
	if ms.Exhausted != 0 {
		t.Fatalf("device exhaustion on a healthy device: %d", ms.Exhausted)
	}

	if err := g.ResetMemoryBudget(); err != nil {
		t.Fatal(err)
	}
	if g.OutOfCore() {
		t.Fatal("OutOfCore() true after ResetMemoryBudget")
	}
	back, err := g.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	if bfsSig(back) != bfsSig(base) {
		t.Fatal("BFS diverges after restoring in-memory storage")
	}
}

// TestMemoryBudgetEngineEquivalence is the tentpole's end-to-end check: an
// engine serving concurrent queries over a 1/8-resident graph must produce
// answers identical to the fully-resident engine, with visits actually
// parking on absent pages and unparking on fetch completion.
func TestMemoryBudgetEngineEquivalence(t *testing.T) {
	g, err := GenerateRMAT(9, 11, Options{Ranks: 4, Undirect: true})
	if err != nil {
		t.Fatal(err)
	}
	sources := []Vertex{0, 3, 17, 101, 255}

	runAll := func() ([]uint64, error) {
		e, err := g.StartEngine(EngineOptions{MaxInFlight: len(sources)})
		if err != nil {
			return nil, err
		}
		defer e.Close()
		sigs := make([]uint64, len(sources))
		errs := make([]error, len(sources))
		var wg sync.WaitGroup
		for i, src := range sources {
			i, src := i, src
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := g.BFS(src)
				if err != nil {
					errs[i] = err
					return
				}
				sigs[i] = bfsSig(res)
			}()
		}
		wg.Wait()
		return sigs, errors.Join(errs...)
	}

	want, err := runAll()
	if err != nil {
		t.Fatal(err)
	}

	if err := g.SetMemoryBudget(MemoryConfig{ResidentFraction: 0.125, DeviceLatency: 5 * time.Microsecond}); err != nil {
		t.Fatal(err)
	}
	tc0 := g.TraversalCounters()
	got, err := runAll()
	if err != nil {
		t.Fatal(err)
	}
	tc1 := g.TraversalCounters()
	ms := g.MemoryStats()
	if err := g.ResetMemoryBudget(); err != nil {
		t.Fatal(err)
	}

	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("source %d: out-of-core engine result diverges from resident", sources[i])
		}
	}
	if ms.CacheMisses == 0 {
		t.Fatal("engine ran without cache misses at fraction 1/8")
	}
	if ms.DemandFetches == 0 {
		t.Fatal("no demand fetches: visits never parked on absent pages")
	}
	if parked := tc1.Parked - tc0.Parked; parked == 0 {
		t.Fatal("no visitor ever parked: the out-of-core path was not exercised")
	}
	if parked, unparked := tc1.Parked-tc0.Parked, tc1.Unparked-tc0.Unparked; parked != unparked {
		t.Fatalf("parked %d != unparked %d: visitors were lost or leaked", parked, unparked)
	}
}

// TestMemoryBudgetFileBacked exercises the FileDevice path: real backing
// files under a temp dir, removed by ResetMemoryBudget.
func TestMemoryBudgetFileBacked(t *testing.T) {
	g, err := GenerateRMAT(8, 5, Options{Ranks: 2, Undirect: true})
	if err != nil {
		t.Fatal(err)
	}
	base, err := g.BFS(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetMemoryBudget(MemoryConfig{ResidentFraction: 0.25, Dir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	got, err := g.BFS(1)
	if err != nil {
		t.Fatal(err)
	}
	if bfsSig(got) != bfsSig(base) {
		t.Fatal("file-backed BFS diverges from resident BFS")
	}
	if g.MemoryStats().CacheMisses == 0 {
		t.Fatal("file-backed run faulted nothing in")
	}
	if err := g.ResetMemoryBudget(); err != nil {
		t.Fatal(err)
	}
}

// TestMemoryBudgetEngineGuards: the budget cannot change under a live engine.
func TestMemoryBudgetEngineGuards(t *testing.T) {
	g, err := GenerateRMAT(8, 5, Options{Ranks: 2, Undirect: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetMemoryBudget(MemoryConfig{ResidentFraction: 2}); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
	e, err := g.StartEngine(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetMemoryBudget(MemoryConfig{ResidentFraction: 0.5}); err == nil {
		t.Fatal("SetMemoryBudget accepted while an engine is attached")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := g.SetMemoryBudget(MemoryConfig{ResidentFraction: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := g.ResetMemoryBudget(); err != nil {
		t.Fatal(err)
	}
}
