package havoqgt

// Regression tests for the facade's concurrency contract: concurrent public
// API calls on one Graph must not corrupt each other (they used to share the
// simulated machine with no synchronization — two interleaved machine phases
// would mix their untagged visitor records and desynchronize termination
// detection), and with an attached engine they must interleave as
// independent tagged queries. Run under -race.

import (
	"sync"
	"testing"

	"havoqgt/internal/graph"
	"havoqgt/internal/ref"
)

// TestConcurrentClassicCallsAreSerialized hammers the classic (no-engine)
// path from many goroutines; the internal mutex must serialize the machine
// phases so every result stays correct.
func TestConcurrentClassicCallsAreSerialized(t *testing.T) {
	const n = 300
	edges := testEdges(n, 1200, 7)
	g, err := NewGraph(edges, n, Options{Ranks: 4, Undirect: true})
	if err != nil {
		t.Fatal(err)
	}
	adj := ref.BuildAdj(graph.Undirect(edges), n)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				src := Vertex((w*31 + i*7) % n)
				res, err := g.BFS(src)
				if err != nil {
					t.Errorf("BFS(%d): %v", src, err)
					return
				}
				want, _ := ref.BFS(adj, src)
				for v := uint64(0); v < n; v++ {
					if res.Levels[v] != want[v] {
						t.Errorf("concurrent BFS(%d) vertex %d: level %d, want %d", src, v, res.Levels[v], want[v])
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			res, err := g.Components()
			if err != nil {
				t.Errorf("Components: %v", err)
				return
			}
			_, want := ref.Components(adj)
			if res.Count != want {
				t.Errorf("concurrent Components: %d, want %d", res.Count, want)
				return
			}
		}
	}()
	wg.Wait()
}

// TestEngineBackedFacadeCalls attaches an engine and checks that (a) the
// classic methods route through it and stay correct under concurrency,
// (b) machine-exclusive operations fail while it is attached, and (c) the
// classic path works again after Close.
func TestEngineBackedFacadeCalls(t *testing.T) {
	const n = 300
	edges := testEdges(n, 1200, 11)
	g, err := NewGraph(edges, n, Options{Ranks: 4, Undirect: true, Simplify: true})
	if err != nil {
		t.Fatal(err)
	}
	adj := ref.BuildAdj(graph.Undirect(edges), n)

	e, err := g.StartEngine(EngineOptions{MaxInFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.StartEngine(EngineOptions{}); err == nil {
		t.Error("second StartEngine should fail while one is attached")
	}
	// CountTriangles is an engine query type now; with an engine attached it
	// must route through it and agree with the reference. The genuinely
	// engine-incapable operation is sampled triangle estimation.
	if count, err := g.CountTriangles(); err != nil {
		t.Errorf("engine-routed CountTriangles: %v", err)
	} else if want := ref.CountTriangles(ref.BuildAdj(graph.Simplify(graph.Undirect(edges)), n)); count != want {
		t.Errorf("engine-routed CountTriangles: %d, want %d", count, want)
	}
	if _, err := g.EstimateTriangles(0.5, 1); err == nil {
		t.Error("EstimateTriangles should fail while an engine is attached")
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := Vertex((w * 37) % n)
			res, err := g.BFS(src)
			if err != nil {
				t.Errorf("engine-backed BFS(%d): %v", src, err)
				return
			}
			want, _ := ref.BFS(adj, src)
			for v := uint64(0); v < n; v++ {
				if res.Levels[v] != want[v] {
					t.Errorf("engine-backed BFS(%d) vertex %d: level %d, want %d", src, v, res.Levels[v], want[v])
					return
				}
			}
		}()
	}
	wg.Wait()

	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Machine-exclusive operations are available again.
	if _, err := g.CountTriangles(); err != nil {
		t.Errorf("CountTriangles after Close: %v", err)
	}
	res, err := g.BFS(0)
	if err != nil {
		t.Fatalf("classic BFS after Close: %v", err)
	}
	want, _ := ref.BFS(adj, 0)
	for v := uint64(0); v < n; v++ {
		if res.Levels[v] != want[v] {
			t.Fatalf("post-Close BFS vertex %d: level %d, want %d", v, res.Levels[v], want[v])
		}
	}
}
