package main

// Cluster chaos mode: `havoqd -chaos -cluster` boots a real multi-process
// cluster on localhost and then repeatedly murders workers with SIGKILL while
// queries are in flight, proving the self-healing contract end to end:
//
//  1. every in-flight query resolves promptly with a typed *WorkerLostError
//     (or completes, if it won the race) — never a hang;
//  2. the coordinator reports the dead slot and sheds new submits with a
//     typed *DegradedError while degraded;
//  3. a respawned worker process re-joins the dead slot under a bumped epoch
//     and the cluster goes whole again;
//  4. queries retried on the healed cluster return hashes identical to the
//     in-process engine on the same graph — a kill/heal cycle is invisible
//     in the results.
//
// This is what `make cluster-chaos` runs in CI; worker output lands in
// cluster-worker-N.log (appended across respawns) for post-mortems.

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"time"

	"havoqgt"
	"havoqgt/internal/cluster"
	"havoqgt/internal/engine"
	"havoqgt/internal/graph"
)

// respawn replaces the (dead) worker process in the given slot with a fresh
// one, reaping the corpse and appending to its slot's log file.
func (lc *localCluster) respawn(o *options, slot int) error {
	if old := lc.procs[slot]; old != nil && old.Process != nil {
		old.Process.Kill() // no-op if already dead
		old.Wait()         // reap; the exit error is expected (SIGKILL)
	}
	self, err := os.Executable()
	if err != nil {
		return err
	}
	logPath := fmt.Sprintf("cluster-worker-%d.log", slot)
	logFile, err := os.OpenFile(logPath, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	fmt.Fprintf(logFile, "--- respawn into slot %d ---\n", slot)
	cmd := exec.Command(self, workerArgs(o, lc.c.Addr(), slot)...)
	cmd.Stdout, cmd.Stderr = logFile, logFile
	if err := cmd.Start(); err != nil {
		logFile.Close()
		return fmt.Errorf("respawn worker %d: %w", slot, err)
	}
	logFile.Close()
	lc.procs[slot] = cmd
	return nil
}

// chaosRefHashes computes the in-process reference hashes for the chaos
// query mix on the identical deterministic graph.
func chaosRefHashes(o *options, specs []engine.Spec) ([]uint64, error) {
	g, err := havoqgt.GenerateRMAT(o.scale, o.seed, havoqgt.Options{
		Ranks: o.ranks, Topology: o.topo, Simplify: o.simplify,
	})
	if err != nil {
		return nil, err
	}
	hashes := make([]uint64, len(specs))
	for i, spec := range specs {
		switch spec.Algo {
		case engine.AlgoBFS:
			res, err := g.BFS(spec.Source)
			if err != nil {
				return nil, err
			}
			hashes[i] = cluster.HashU32s(res.Levels)
		case engine.AlgoSSSP:
			res, err := g.ShortestPaths(spec.Source, spec.WeightSeed)
			if err != nil {
				return nil, err
			}
			hashes[i] = cluster.HashU64s(res.Distances)
		case engine.AlgoCC:
			res, err := g.Components()
			if err != nil {
				return nil, err
			}
			hashes[i] = cluster.HashVertices(res.Labels)
		}
	}
	return hashes, nil
}

// clusterChaos is the `-chaos -cluster` driver.
func clusterChaos(o *options) error {
	watchdog := armWatchdog(o, "cluster chaos")
	defer watchdog.Stop()
	if o.joinRetry <= 0 {
		o.joinRetry = time.Minute // respawned workers must out-wait the detector
	}

	n := uint64(1) << o.scale
	specs := []engine.Spec{
		{Algo: engine.AlgoBFS, Source: graph.Vertex(splitmix64(42) % n)},
		{Algo: engine.AlgoSSSP, Source: graph.Vertex(splitmix64(43) % n), WeightSeed: 7},
		{Algo: engine.AlgoCC},
	}
	fmt.Printf("havoqd: cluster chaos: %d workers x %d ranks, scale-%d rmat, %d kill/heal cycles (heartbeat %v, liveness %v)\n",
		o.workers, o.ranks/o.workers, o.scale, o.chaosKills, o.heartbeat, o.liveness)
	refs, err := chaosRefHashes(o, specs)
	if err != nil {
		return err
	}

	lc, err := startLocalCluster(o)
	if err != nil {
		return err
	}
	fail := func(format string, args ...any) error {
		lc.kill()
		return fmt.Errorf("cluster chaos: "+format, args...)
	}

	runAll := func(what string) error {
		for i, spec := range specs {
			q, err := lc.c.Submit(spec)
			if err != nil {
				return fail("%s: submit #%d: %v", what, i, err)
			}
			res, err := q.Wait()
			if err != nil {
				return fail("%s: query #%d: %v", what, i, err)
			}
			if got := cluster.HashResult(res); got != refs[i] {
				return fail("%s: query #%d hash %016x, in-process %016x", what, i, got, refs[i])
			}
		}
		return nil
	}
	if err := runAll("baseline"); err != nil {
		return err
	}
	fmt.Printf("havoqd: cluster chaos: baseline hashes identical to the in-process engine\n")

	for cycle := 0; cycle < o.chaosKills; cycle++ {
		victim := cycle % o.workers
		epochBefore := lc.c.Epoch()

		// In-flight queries at the moment of death.
		var inflight []*cluster.Query
		for _, spec := range specs {
			q, err := lc.c.Submit(spec)
			if err != nil {
				return fail("cycle %d: pre-kill submit: %v", cycle, err)
			}
			inflight = append(inflight, q)
		}
		if err := lc.procs[victim].Process.Kill(); err != nil {
			return fail("cycle %d: kill worker %d: %v", cycle, victim, err)
		}
		fmt.Printf("havoqd: cluster chaos: cycle %d: killed worker %d with %d queries in flight\n",
			cycle, victim, len(inflight))

		// Contract 1: every Wait resolves — completed-with-correct-hash or
		// typed worker-lost — within the liveness window plus slack.
		deadline := time.After(o.liveness + 30*time.Second)
		for i, q := range inflight {
			select {
			case <-q.Done():
			case <-deadline:
				return fail("cycle %d: query #%d HUNG after kill", cycle, i)
			}
			res, err := q.Wait()
			switch {
			case err == nil:
				if got := cluster.HashResult(res); got != refs[i] {
					return fail("cycle %d: pre-kill query #%d hash %016x, want %016x", cycle, i, got, refs[i])
				}
			case errors.Is(err, cluster.ErrWorkerLost):
				var wl *cluster.WorkerLostError
				if !errors.As(err, &wl) || wl.Slot != victim {
					return fail("cycle %d: query #%d wrong carrier: %v", cycle, i, err)
				}
			default:
				return fail("cycle %d: query #%d unexpected error: %v", cycle, i, err)
			}
		}

		// Contract 2: the slot is reported missing and new submits shed typed.
		evictBy := time.Now().Add(o.liveness + 30*time.Second)
		for {
			missing := lc.c.Missing()
			if len(missing) == 1 && missing[0] == victim {
				break
			}
			if time.Now().After(evictBy) {
				return fail("cycle %d: Missing() = %v, want [%d]", cycle, missing, victim)
			}
			time.Sleep(10 * time.Millisecond)
		}
		if _, err := lc.c.Submit(specs[0]); !errors.Is(err, cluster.ErrClusterDegraded) {
			return fail("cycle %d: degraded submit: got %v, want ErrClusterDegraded", cycle, err)
		}
		fmt.Printf("havoqd: cluster chaos: cycle %d: slot %d reported dead, submits shedding typed\n", cycle, victim)

		// Contract 3: respawn, re-join, whole again under a bumped epoch.
		if err := lc.respawn(o, victim); err != nil {
			return fail("cycle %d: %v", cycle, err)
		}
		if err := lc.c.WaitReady(o.clusterTimeout); err != nil {
			return fail("cycle %d: heal: %v", cycle, err)
		}
		if after := lc.c.Epoch(); after <= epochBefore {
			return fail("cycle %d: epoch %d after heal, want > %d", cycle, after, epochBefore)
		}

		// Contract 4: the healed cluster answers hash-identically.
		if err := runAll(fmt.Sprintf("cycle %d post-heal", cycle)); err != nil {
			return err
		}
		fmt.Printf("havoqd: cluster chaos: cycle %d: healed (epoch %d -> %d), hashes identical\n",
			cycle, epochBefore, lc.c.Epoch())
	}

	if err := lc.shutdown(); err != nil {
		return fmt.Errorf("cluster chaos: %w", err)
	}
	fmt.Printf("havoqd: cluster chaos: %d kill/heal cycles survived, all %d hashes identical across %d processes\n",
		o.chaosKills, len(specs)*(o.chaosKills+1), o.workers+1)
	return nil
}
