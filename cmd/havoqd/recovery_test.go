package main

// Degradation-path tests: oversized bodies shed with 413, deadline-expired
// queries retried server-side from their checkpoints before any 504, and the
// facade's typed retryable error distinguishing timeout from explicit cancel.

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"testing"
	"time"

	"havoqgt"
	"havoqgt/internal/check"
)

func TestServerRejectsOversizedBody(t *testing.T) {
	s, ts := testServer(t)
	big := append([]byte(`{"algo":"`), bytes.Repeat([]byte("x"), maxQueryBody+1024)...)
	big = append(big, []byte(`"}`)...)
	res, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want %d", res.StatusCode, http.StatusRequestEntityTooLarge)
	}
	if s.served.Load() != 0 {
		t.Fatal("oversized request counted as served")
	}
}

// TestServerRetriesDeadlineExpiredQuery drives a query whose first-attempt
// deadline cannot possibly hold and checks the degradation ladder: the server
// resumes it from checkpoints with doubled budgets, and the client either
// gets the correct answer (some attempt fit its budget) or a 504 with
// Retry-After once the retry allowance is spent — never a hang and never a
// wrong answer.
func TestServerRetriesDeadlineExpiredQuery(t *testing.T) {
	s, ts := testServer(t)
	want, err := s.g.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	s.retries = 16 // generous: a 1ms budget doubling 16 times crosses any query time

	// 1ms on a scale-9 graph: tight enough to usually expire at least once,
	// small enough that an attempt can also finish — the test asserts the
	// correct outcome of whichever path ran.
	body, _ := json.Marshal(queryRequest{Algo: "bfs", Source: 0, DeadlineMS: 1})
	res, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	switch res.StatusCode {
	case http.StatusOK:
		var qr queryResponse
		if err := json.NewDecoder(res.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		if qr.Reached != want.Reached || qr.MaxLevel != want.MaxLevel {
			t.Fatalf("recovered query wrong: reached=%d max=%d, want reached=%d max=%d",
				qr.Reached, qr.MaxLevel, want.Reached, want.MaxLevel)
		}
	case http.StatusGatewayTimeout:
		if res.Header.Get("Retry-After") == "" {
			t.Fatal("504 without Retry-After")
		}
	default:
		t.Fatalf("status %d, want 200 or 504", res.StatusCode)
	}
}

// TestFacadeTimeoutErrAndResume exercises the typed-error ladder directly on
// the facade: a deadline expiry surfaces ErrQueryTimeout (wrapping
// ErrQueryCancelled), Resume carries the checkpoint forward, and the resumed
// chain eventually produces the exact traversal.
func TestFacadeTimeoutErrAndResume(t *testing.T) {
	check.NoLeaks(t)
	g, err := havoqgt.GenerateRMAT(10, 7, havoqgt.Options{Ranks: 4, Topology: "2d", Simplify: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := g.BFS(5)
	if err != nil {
		t.Fatal(err)
	}
	e, err := g.StartEngine(havoqgt.EngineOptions{MaxInFlight: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	q, err := e.SubmitWithDeadline("bfs", 5, 0, 0, 100*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	var res *havoqgt.QueryResult
	resumes := 0
	for {
		res, err = q.Wait()
		if err == nil {
			break
		}
		if !errors.Is(err, havoqgt.ErrQueryTimeout) || !errors.Is(err, havoqgt.ErrQueryCancelled) {
			t.Fatalf("deadline expiry surfaced %v, want ErrQueryTimeout wrapping ErrQueryCancelled", err)
		}
		if resumes++; resumes > 32 {
			t.Fatal("resume chain did not converge in 32 attempts")
		}
		if q, err = q.Resume(0); err != nil {
			t.Fatalf("Resume: %v", err)
		}
	}
	if res.BFS == nil {
		t.Fatal("BFS query returned non-BFS result")
	}
	if res.BFS.Reached != want.Reached || res.BFS.MaxLevel != want.MaxLevel {
		t.Fatalf("resumed chain: reached=%d max=%d, want reached=%d max=%d",
			res.BFS.Reached, res.BFS.MaxLevel, want.Reached, want.MaxLevel)
	}
	for v := range want.Levels {
		if res.BFS.Levels[v] != want.Levels[v] {
			t.Fatalf("resumed chain level[%d]: %d != %d", v, res.BFS.Levels[v], want.Levels[v])
		}
	}
	t.Logf("converged after %d resumes", resumes)

	// Explicit cancellation is NOT retryable: plain ErrQueryCancelled, not
	// ErrQueryTimeout, and Resume still works only because the query is
	// cancelled (callers decide; the server's handler only retries timeouts).
	q2, err := e.SubmitBFS(1)
	if err != nil {
		t.Fatal(err)
	}
	q2.Cancel()
	if _, err := q2.Wait(); errors.Is(err, havoqgt.ErrQueryTimeout) || !errors.Is(err, havoqgt.ErrQueryCancelled) {
		t.Fatalf("explicit cancel surfaced %v, want plain ErrQueryCancelled", err)
	}
}

// TestExecuteWithRecovery checks the bundled retry helper end to end.
func TestExecuteWithRecovery(t *testing.T) {
	check.NoLeaks(t)
	g, err := havoqgt.GenerateRMAT(9, 7, havoqgt.Options{Ranks: 4, Simplify: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := g.BFS(2)
	if err != nil {
		t.Fatal(err)
	}
	e, err := g.StartEngine(havoqgt.EngineOptions{MaxInFlight: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	res, err := e.ExecuteWithRecovery("bfs", 2, 0, 0, havoqgt.RecoveryPolicy{
		Attempts: 24,
		Deadline: 100 * time.Microsecond,
		Backoff:  time.Microsecond,
	})
	if err != nil {
		t.Fatalf("ExecuteWithRecovery: %v", err)
	}
	if res.BFS == nil || res.BFS.Reached != want.Reached || res.BFS.MaxLevel != want.MaxLevel {
		t.Fatalf("recovered result wrong: %+v", res.BFS)
	}
}
