package main

// Multi-process cluster modes of havoqd.
//
//   havoqd -coordinator -workers 4 -ranks 8 -scale 14      # control plane + HTTP
//   havoqd -join host:7642 -workers 4 -ranks 8 -scale 14   # one worker process
//   havoqd -smoke -cluster -workers 4 -ranks 4 -scale 12   # spawn a local cluster,
//                                                          # diff hashes vs in-process
//   havoqd -selfbench -cluster ...                         # write BENCH_net.json
//
// The coordinator seals after -workers joins, broadcasts the layout, and then
// serves POST /query over HTTP exactly like the single-process server —
// queries fan out to every worker and assemble from master-range partials.
// The -cluster smoke and bench modes spawn real OS processes (this binary
// with -join) on localhost, so the bytes genuinely cross the kernel's TCP
// stack; worker output lands in cluster-worker-N.log for post-mortems.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"havoqgt"
	"havoqgt/internal/cluster"
	"havoqgt/internal/engine"
	"havoqgt/internal/graph"
	"havoqgt/internal/traffic"
)

// clusterCfg maps the shared command-line flags onto the cluster contract.
// Spawned workers receive exactly these flags back (see workerArgs), so the
// join-time checksum can only mismatch when an operator genuinely launched
// divergent processes.
func clusterCfg(o *options) cluster.ClusterConfig {
	return cluster.ClusterConfig{
		Workers:     o.workers,
		Ranks:       o.ranks,
		Scale:       o.scale,
		Seed:        o.seed,
		Topology:    o.topo,
		Reliable:    o.reliable,
		Simplify:    o.simplify,
		MaxInFlight: o.maxInFlight,
		Heartbeat:   o.heartbeat,
		Liveness:    o.liveness,
	}
}

// workerArgs rebuilds the argv a spawned worker needs to checksum-match us.
func workerArgs(o *options, coordAddr string, slot int) []string {
	args := []string{
		"-join", coordAddr,
		"-slot", fmt.Sprint(slot),
		"-workers", fmt.Sprint(o.workers),
		"-ranks", fmt.Sprint(o.ranks),
		"-scale", fmt.Sprint(o.scale),
		"-seed", fmt.Sprint(o.seed),
		"-topo", o.topo,
		"-max-in-flight", fmt.Sprint(o.maxInFlight),
		"-simplify=" + fmt.Sprint(o.simplify),
		"-reliable=" + fmt.Sprint(o.reliable),
	}
	if o.joinRetry > 0 {
		args = append(args, "-join-retry", o.joinRetry.String())
	}
	return args
}

// runClusterWorker is the -join mode: one worker process hosting its rank
// window until the coordinator orders shutdown. With -join-retry, an evicted
// worker (heartbeat lapse on a live process) re-joins as a fresh member
// instead of dying: its old epoch is fenced out anyway, so the only useful
// move is a clean slate.
func runClusterWorker(o *options) error {
	logf := func(format string, args ...any) {
		fmt.Printf("havoqd: "+format+"\n", args...)
	}
	for {
		err := cluster.RunWorker(cluster.WorkerOptions{
			Coordinator: o.join,
			Config:      clusterCfg(o),
			Slot:        o.slot,
			MeshAddr:    o.meshAddr,
			JoinRetry:   o.joinRetry,
			Logf:        logf,
		})
		if errors.Is(err, cluster.ErrEvicted) && o.joinRetry > 0 {
			logf("evicted by coordinator; re-joining as a fresh worker")
			continue
		}
		return err
	}
}

// runClusterCoordinator is the -coordinator mode: bind the control plane,
// wait for the workers, then serve queries over HTTP until SIGTERM.
func runClusterCoordinator(o *options) error {
	logf := func(format string, args ...any) {
		fmt.Printf("havoqd: "+format+"\n", args...)
	}
	c, err := cluster.NewCoordinator(o.clusterAddr, clusterCfg(o), logf)
	if err != nil {
		return err
	}
	// Bound addresses go to stdout first thing so ":0" deployments (tests,
	// orchestrators) can scrape them before the cluster even forms.
	fmt.Printf("havoqd: coordinator control plane on %s\n", c.Addr())

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		c.Close()
		return err
	}
	fmt.Printf("havoqd: listening on %s (cluster: %d workers, %d ranks)\n", ln.Addr(), o.workers, o.ranks)

	if err := c.WaitReady(o.clusterTimeout); err != nil {
		ln.Close()
		c.Close()
		return err
	}
	fmt.Printf("havoqd: cluster ready: %d vertices across %d workers\n", c.NumVertices(), o.workers)

	cs := newCoordServer(c, o, ln.Addr().String())
	defer cs.close()
	srv := &http.Server{
		Handler:           cs.handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 16,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		c.Close()
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("havoqd: signal received; draining cluster")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		c.Close()
		return fmt.Errorf("drain: %w", err)
	}
	if err := c.Close(); err != nil {
		return err
	}
	fmt.Printf("havoqd: cluster drained; served=%d failed=%d\n", cs.served.Load(), cs.failed.Load())
	return nil
}

// coordServer is the coordinator's HTTP face: the same /query contract as
// the single-process server, backed by cluster-wide fan-out and fronted by
// the same traffic plane — tenant quota admission, versioned result cache,
// and hot-query collapsing — so a degraded cluster sheds load at the front
// door instead of queueing doomed work.
type coordServer struct {
	c *cluster.Coordinator
	// plane is the front-door admission layer (internal/traffic), identical
	// to the single-process server's.
	plane *traffic.Plane
	// retries bounds the server-side recovery ladder: how many times a query
	// killed by a worker loss (or refused while degraded) is retried after
	// waiting for the cluster to heal.
	retries int
	// healWait bounds each recovery-ladder wait for the cluster to go whole.
	healWait time.Duration
	addr     string // resolved HTTP listen address
	served   atomic.Uint64
	failed   atomic.Uint64
	shed     atomic.Uint64
	retried  atomic.Uint64
	started  time.Time
}

func newCoordServer(c *cluster.Coordinator, o *options, addr string) *coordServer {
	return &coordServer{
		c:        c,
		plane:    traffic.New(trafficConfig(o)),
		retries:  o.queryRetries,
		healWait: o.clusterTimeout,
		addr:     addr,
		started:  time.Now(),
	}
}

// close releases the traffic plane's background resources.
func (s *coordServer) close() { s.plane.Close() }

func (s *coordServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// handleHealthz reports cluster wholeness: a degraded cluster stays alive
// (the process is healthy, queries shed typed) but flips ok=false and lists
// the dead-or-healing slots so orchestrators and operators see exactly what
// is missing.
func (s *coordServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	missing := s.c.Missing()
	if missing == nil {
		missing = []int{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":            len(missing) == 0,
		"degraded":      len(missing) > 0,
		"missing_slots": missing,
		"addr":          s.addr,
		"cluster":       true,
		"vertices":      s.c.NumVertices(),
		"epoch":         s.c.Epoch(),
		"uptime_ms":     time.Since(s.started).Milliseconds(),
		"served":        s.served.Load(),
		"failed":        s.failed.Load(),
		"shed":          s.shed.Load(),
		"retried":       s.retried.Load(),
	})
}

// collapseKey mirrors the single-process server's cache/collapse identity.
// The cluster graph is immutable for the process lifetime — a heal rebuilds
// the identical deterministic partitions — so the version is constant and
// cached results stay valid across worker deaths.
func (s *coordServer) collapseKey(req *queryRequest) traffic.Key {
	return traffic.Key{
		Algo:       req.Algo,
		Source:     req.Source,
		WeightSeed: req.WeightSeed,
		K:          req.K,
		Iters:      req.Iters,
		Full:       req.Full,
		DeadlineMS: req.DeadlineMS,
		Version:    1,
	}
}

// execute runs one cluster query to completion, climbing the recovery
// ladder on self-healing failures: a submit refused while degraded or a
// query killed by a worker loss waits for the heal (bounded by healWait) and
// retries, up to s.retries times. Deterministic partitions make the retry
// transparent — the healed cluster returns bit-identical results.
func (s *coordServer) execute(ctx context.Context, req *queryRequest) ([]byte, error) {
	spec := engine.Spec{
		Algo:       engine.Algo(req.Algo),
		Source:     graph.Vertex(req.Source),
		WeightSeed: req.WeightSeed,
		K:          req.K,
		Iters:      req.Iters,
	}
	if req.DeadlineMS > 0 {
		spec.Deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	attempts := s.retries
	retry := func(err error) bool {
		if attempts <= 0 || ctx.Err() != nil {
			return false
		}
		attempts--
		s.retried.Add(1)
		fmt.Printf("havoqd: query retry after %v; awaiting heal\n", err)
		return s.c.WaitReady(s.healWait) == nil
	}
	start := time.Now()
	for {
		q, err := s.c.Submit(spec)
		if err != nil {
			if errors.Is(err, cluster.ErrClusterDegraded) && retry(err) {
				continue
			}
			return nil, err
		}
		select {
		case <-q.Done():
		case <-ctx.Done():
			// Every collapsed waiter abandoned: cancel the fan-out and wait
			// for the workers' monotone partials to drain back.
			q.Cancel()
			<-q.Done()
		}
		res, err := q.Wait()
		if err != nil {
			if errors.Is(err, cluster.ErrWorkerLost) && retry(err) {
				continue
			}
			return nil, err
		}
		if res.Cancelled {
			return nil, errTimeoutCancelled
		}

		resp := queryResponse{ID: q.ID(), Algo: req.Algo, ElapsedMS: float64(time.Since(start).Microseconds()) / 1e3}
		switch {
		case res.Levels != nil:
			for _, l := range res.Levels {
				if l != havoqgt.Unreached {
					resp.Reached++
					if l > resp.MaxLevel {
						resp.MaxLevel = l
					}
				}
			}
			if req.Full {
				resp.Levels = res.Levels
			}
		case res.Dist != nil:
			for _, d := range res.Dist {
				if d != havoqgt.UnreachedDistance {
					resp.Reached++
					if d > resp.MaxDist {
						resp.MaxDist = d
					}
				}
			}
			if req.Full {
				resp.Distances = res.Dist
			}
		case res.Labels != nil:
			resp.Components = res.Components
			if req.Full {
				resp.Labels = res.Labels
			}
		case res.InCore != nil:
			resp.CoreSize = res.CoreSize
			if req.Full {
				resp.InCore = res.InCore
			}
		case res.Ranks != nil:
			resp.Iters = req.Iters
			if resp.Iters == 0 {
				resp.Iters = havoqgt.DefaultPageRankIters
			}
			if req.Full {
				resp.Ranks = res.Ranks
			}
		default: // triangles: scalar-only result
			resp.Triangles = res.Triangles
		}
		return json.Marshal(resp)
	}
}

// validate rejects malformed parameters before any quota or cluster work.
func (s *coordServer) validate(req *queryRequest) error {
	switch req.Algo {
	case "bfs", "bfs_do", "sssp":
		if req.Source >= s.c.NumVertices() {
			return fmt.Errorf("source %d out of range (n=%d)", req.Source, s.c.NumVertices())
		}
	case "cc", "triangles":
	case "kcore":
		if req.K < 1 {
			return fmt.Errorf("kcore needs k >= 1")
		}
	case "pagerank":
		if req.Iters > havoqgt.MaxPageRankIters {
			return fmt.Errorf("pagerank iters %d exceeds max %d", req.Iters, havoqgt.MaxPageRankIters)
		}
	default:
		return fmt.Errorf("unknown algo %q (want bfs|bfs_do|sssp|cc|kcore|pagerank|triangles)", req.Algo)
	}
	return nil
}

// errTimeoutCancelled marks a cluster query that drained as cancelled
// (deadline or waiter abandonment) rather than failing typed.
var errTimeoutCancelled = errors.New("query cancelled (deadline or client disconnect)")

func (s *coordServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "POST only", 0)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxQueryBody)
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.failed.Add(1)
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge,
				fmt.Sprintf("request body over %d bytes", tooBig.Limit), 0)
			return
		}
		writeError(w, http.StatusBadRequest, codeBadRequest, "bad request body: "+err.Error(), 0)
		return
	}

	// Front door, step 1: tenant quota — one token-bucket decrement; a shed
	// request costs the cluster nothing.
	if err := s.plane.Admit(tenantID(r)); err != nil {
		s.shed.Add(1)
		retryAfter := 1
		var qe *traffic.ErrQuotaExceeded
		if errors.As(err, &qe) {
			if sec := int(qe.RetryAfter / time.Second); sec > retryAfter {
				retryAfter = sec
			}
		}
		writeError(w, http.StatusTooManyRequests, codeQuotaExceeded, err.Error(), retryAfter)
		return
	}

	if err := s.validate(&req); err != nil {
		s.failed.Add(1)
		writeError(w, http.StatusBadRequest, codeBadRequest, err.Error(), 0)
		return
	}

	// Steps 2+3: versioned result cache, then hot-query collapsing; misses
	// run one shared cluster execution with the recovery ladder inside.
	start := time.Now()
	body, outcome, err := s.plane.Do(r.Context(), s.collapseKey(&req), func(ctx context.Context) ([]byte, error) {
		return s.execute(ctx, &req)
	})
	if err != nil {
		if r.Context().Err() != nil {
			s.failed.Add(1)
			return
		}
		switch {
		case errors.Is(err, cluster.ErrClusterDegraded), errors.Is(err, cluster.ErrWorkerLost):
			// Self-healing in progress and the retry budget ran out: shed
			// with the structured schema so clients back off and retry once
			// the cluster is whole.
			s.shed.Add(1)
			writeError(w, http.StatusServiceUnavailable, codeClusterDegraded, err.Error(), 5)
		case errors.Is(err, errTimeoutCancelled):
			s.failed.Add(1)
			writeError(w, http.StatusGatewayTimeout, codeTimeout, err.Error(), 1)
		default:
			s.failed.Add(1)
			writeError(w, http.StatusInternalServerError, codeInternal, err.Error(), 0)
		}
		return
	}

	s.served.Add(1)
	s.plane.ObserveLatency(time.Since(start))
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Traffic-Outcome", outcome.String())
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// localCluster is a coordinator plus its spawned local worker processes.
type localCluster struct {
	c     *cluster.Coordinator
	procs []*exec.Cmd
}

// startLocalCluster boots an in-process coordinator and -workers real OS
// worker processes (this binary, re-executed with -join) on localhost.
// Worker output goes to cluster-worker-N.log.
func startLocalCluster(o *options) (*localCluster, error) {
	c, err := cluster.NewCoordinator("127.0.0.1:0", clusterCfg(o), func(format string, args ...any) {
		fmt.Printf("havoqd: "+format+"\n", args...)
	})
	if err != nil {
		return nil, err
	}
	self, err := os.Executable()
	if err != nil {
		c.Close()
		return nil, err
	}
	lc := &localCluster{c: c}
	for slot := 0; slot < o.workers; slot++ {
		logPath := fmt.Sprintf("cluster-worker-%d.log", slot)
		logFile, err := os.Create(logPath)
		if err != nil {
			lc.kill()
			return nil, err
		}
		cmd := exec.Command(self, workerArgs(o, c.Addr(), slot)...)
		cmd.Stdout, cmd.Stderr = logFile, logFile
		if err := cmd.Start(); err != nil {
			logFile.Close()
			lc.kill()
			return nil, fmt.Errorf("spawn worker %d: %w", slot, err)
		}
		logFile.Close() // the child holds its own descriptor
		lc.procs = append(lc.procs, cmd)
	}
	if err := c.WaitReady(o.clusterTimeout); err != nil {
		lc.kill()
		return nil, err
	}
	return lc, nil
}

// shutdown closes the coordinator (workers exit on the shutdown broadcast)
// and reaps the worker processes.
func (lc *localCluster) shutdown() error {
	lc.c.Close()
	var firstErr error
	for i, cmd := range lc.procs {
		if err := cmd.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("worker %d: %w (see cluster-worker-%d.log)", i, err, i)
		}
	}
	return firstErr
}

// kill hard-stops everything (error paths only).
func (lc *localCluster) kill() {
	lc.c.Close()
	for _, cmd := range lc.procs {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}
}

// armWatchdog hard-aborts the process if a -cluster run wedges: CI must get
// a loud timeout with logs on disk, never a silent 6-hour hang.
func armWatchdog(o *options, what string) *time.Timer {
	return time.AfterFunc(o.clusterTimeout, func() {
		fmt.Fprintf(os.Stderr, "havoqd: %s: WATCHDOG: no completion within %v, aborting\n", what, o.clusterTimeout)
		os.Exit(124)
	})
}

// clusterSmoke is `-smoke -cluster`: boot a real multi-process cluster, run
// BFS/SSSP/CC through it, and require the deterministic result hashes to be
// identical to the in-process engine on the same graph.
func clusterSmoke(o *options) error {
	watchdog := armWatchdog(o, "cluster smoke")
	defer watchdog.Stop()

	fmt.Printf("havoqd: cluster smoke: %d workers x %d ranks, scale-%d rmat\n",
		o.workers, o.ranks/o.workers, o.scale)
	start := time.Now()
	lc, err := startLocalCluster(o)
	if err != nil {
		return err
	}
	fmt.Printf("havoqd: cluster smoke: cluster ready in %v\n", time.Since(start).Round(time.Millisecond))

	n := lc.c.NumVertices()
	type smokeCase struct {
		name string
		spec engine.Spec
	}
	var cases []smokeCase
	for i := 0; i < 3; i++ {
		src := graph.Vertex(splitmix64(uint64(i)*0x9e37+42) % n)
		cases = append(cases,
			smokeCase{fmt.Sprintf("bfs(%d)", src), engine.Spec{Algo: engine.AlgoBFS, Source: src}},
			smokeCase{fmt.Sprintf("bfs_do(%d)", src), engine.Spec{Algo: engine.AlgoBFSDO, Source: src}},
			smokeCase{fmt.Sprintf("sssp(%d)", src), engine.Spec{Algo: engine.AlgoSSSP, Source: src, WeightSeed: uint64(i)}},
		)
	}
	cases = append(cases,
		smokeCase{"cc", engine.Spec{Algo: engine.AlgoCC}},
		smokeCase{"pagerank", engine.Spec{Algo: engine.AlgoPageRank, Iters: 8}},
		smokeCase{"triangles", engine.Spec{Algo: engine.AlgoTriangles}},
	)

	clusterHashes := make([]uint64, len(cases))
	queries := make([]*cluster.Query, len(cases))
	for i, tc := range cases {
		q, err := lc.c.Submit(tc.spec)
		if err != nil {
			lc.kill()
			return fmt.Errorf("cluster smoke: submit %s: %w", tc.name, err)
		}
		queries[i] = q
	}
	for i, q := range queries {
		res, err := q.Wait()
		if err != nil {
			lc.kill()
			return fmt.Errorf("cluster smoke: %s: %w", cases[i].name, err)
		}
		clusterHashes[i] = cluster.HashResult(res)
	}
	queriesDone := time.Since(start)
	if err := lc.shutdown(); err != nil {
		return fmt.Errorf("cluster smoke: %w", err)
	}

	// In-process reference: the same graph, the same queries, through the
	// single-process engine.
	g, err := havoqgt.GenerateRMAT(o.scale, o.seed, havoqgt.Options{
		Ranks: o.ranks, Topology: o.topo, Simplify: o.simplify,
	})
	if err != nil {
		return err
	}
	refHashes := make([]uint64, len(cases))
	for i, tc := range cases {
		switch tc.spec.Algo {
		case engine.AlgoBFS, engine.AlgoBFSDO:
			// bfs_do's levels must hash-match the plain top-down BFS: same
			// fixpoint, different traversal schedule.
			res, err := g.BFS(tc.spec.Source)
			if err != nil {
				return err
			}
			refHashes[i] = cluster.HashU32s(res.Levels)
		case engine.AlgoSSSP:
			res, err := g.ShortestPaths(tc.spec.Source, tc.spec.WeightSeed)
			if err != nil {
				return err
			}
			refHashes[i] = cluster.HashU64s(res.Distances)
		case engine.AlgoCC:
			res, err := g.Components()
			if err != nil {
				return err
			}
			refHashes[i] = cluster.HashVertices(res.Labels)
		case engine.AlgoPageRank:
			res, err := g.PageRank(tc.spec.Iters)
			if err != nil {
				return err
			}
			refHashes[i] = cluster.HashU64s(res.Ranks)
		case engine.AlgoTriangles:
			count, err := g.CountTriangles()
			if err != nil {
				return err
			}
			refHashes[i] = cluster.HashU64s([]uint64{count})
		}
	}

	bad := 0
	for i := range cases {
		status := "ok"
		if clusterHashes[i] != refHashes[i] {
			status = "MISMATCH"
			bad++
		}
		fmt.Printf("havoqd: cluster smoke: %-12s cluster=%016x in-process=%016x %s\n",
			cases[i].name, clusterHashes[i], refHashes[i], status)
	}
	if bad > 0 {
		return fmt.Errorf("cluster smoke: %d/%d result hashes diverged from the in-process engine", bad, len(cases))
	}
	fmt.Printf("havoqd: cluster smoke: %d/%d hashes identical across %d processes in %v\n",
		len(cases), len(cases), o.workers+1, queriesDone.Round(time.Millisecond))
	return nil
}

// Cluster benchmark report (BENCH_net.json): the engine's serialized-vs-
// concurrent comparison, but over a real multi-process TCP data plane.
type benchNetReport struct {
	Timestamp  string            `json:"timestamp"`
	Scale      uint              `json:"scale"`
	Workers    int               `json:"workers"`
	Ranks      int               `json:"ranks"`
	Topology   string            `json:"topology"`
	Vertices   uint64            `json:"vertices"`
	Workload   string            `json:"workload"`
	Serialized benchPhase        `json:"serialized"`
	Concurrent benchPhase        `json:"concurrent"`
	Speedup    float64           `json:"speedup"`
	NetSer     cluster.NetTotals `json:"net_serialized"`
	NetCon     cluster.NetTotals `json:"net_concurrent"`
}

// clusterWorkload mirrors the selfbench mix at the Spec level (no kcore
// unless -simplify, matching the single-process constraint).
func clusterWorkload(n uint64, queries int, simplify bool) []engine.Spec {
	var specs []engine.Spec
	for i := 0; i < queries; i++ {
		src := graph.Vertex(splitmix64(uint64(i)*0x9e37+42) % n)
		switch {
		case i == 5:
			specs = append(specs, engine.Spec{Algo: engine.AlgoCC})
		case i == 7:
			specs = append(specs, engine.Spec{Algo: engine.AlgoPageRank, Iters: 8})
		case i == 9:
			specs = append(specs, engine.Spec{Algo: engine.AlgoTriangles})
		case i == 11 && simplify:
			specs = append(specs, engine.Spec{Algo: engine.AlgoKCore, K: 2})
		case i%4 == 2:
			specs = append(specs, engine.Spec{Algo: engine.AlgoBFSDO, Source: src})
		case i%2 == 0:
			specs = append(specs, engine.Spec{Algo: engine.AlgoBFS, Source: src})
		default:
			specs = append(specs, engine.Spec{Algo: engine.AlgoSSSP, Source: src, WeightSeed: uint64(i)})
		}
	}
	return specs
}

// clusterBench is `-selfbench -cluster`: run the workload serialized (one
// query at a time, every wave and frontier exchange paying real TCP latency)
// and concurrently (interleaved on the same mesh), then write BENCH_net.json.
func clusterBench(o *options) error {
	watchdog := armWatchdog(o, "cluster bench")
	defer watchdog.Stop()

	out := o.benchOut
	if out == "" {
		out = "BENCH_net.json"
	}
	fmt.Printf("havoqd: cluster bench: %d workers x %d ranks, scale-%d rmat, %d queries\n",
		o.workers, o.ranks/o.workers, o.scale, o.benchQueries)
	lc, err := startLocalCluster(o)
	if err != nil {
		return err
	}
	n := lc.c.NumVertices()
	work := clusterWorkload(n, o.benchQueries, o.simplify)

	base, err := lc.c.NetStats(30 * time.Second)
	if err != nil {
		lc.kill()
		return err
	}

	// Serialized: strictly one in-flight query.
	serLats := make([]time.Duration, len(work))
	var serHash uint64
	serStart := time.Now()
	for i, spec := range work {
		t := time.Now()
		q, err := lc.c.Submit(spec)
		if err != nil {
			lc.kill()
			return fmt.Errorf("serialized #%d: %w", i, err)
		}
		res, err := q.Wait()
		if err != nil {
			lc.kill()
			return fmt.Errorf("serialized #%d: %w", i, err)
		}
		serLats[i] = time.Since(t)
		serHash += cluster.HashResult(res)
	}
	serWall := time.Since(serStart)
	afterSer, err := lc.c.NetStats(30 * time.Second)
	if err != nil {
		lc.kill()
		return err
	}
	ser := summarize(serLats, serWall, 1, serHash)
	fmt.Printf("havoqd: cluster bench: serialized %.1f q/s (p50 %.1fms p99 %.1fms)\n",
		ser.QPS, ser.LatP50MS, ser.LatP99MS)

	// Concurrent: all submitted at once, bounded by the coordinator's global
	// MaxInFlight admission.
	conLats := make([]time.Duration, len(work))
	hashes := make([]uint64, len(work))
	errs := make([]error, len(work))
	var wg sync.WaitGroup
	conStart := time.Now()
	for i, spec := range work {
		i, spec := i, spec
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.Now()
			q, err := lc.c.Submit(spec) // blocks while MaxInFlight are running
			if err != nil {
				errs[i] = err
				return
			}
			res, err := q.Wait()
			if err != nil {
				errs[i] = err
				return
			}
			conLats[i] = time.Since(t)
			hashes[i] = cluster.HashResult(res)
		}()
	}
	wg.Wait()
	conWall := time.Since(conStart)
	var conHash uint64
	for i, err := range errs {
		if err != nil {
			lc.kill()
			return fmt.Errorf("concurrent #%d: %w", i, err)
		}
		conHash += hashes[i]
	}
	afterCon, err := lc.c.NetStats(30 * time.Second)
	if err != nil {
		lc.kill()
		return err
	}
	con := summarize(conLats, conWall, o.maxInFlight, conHash)
	fmt.Printf("havoqd: cluster bench: concurrent %.1f q/s (p50 %.1fms p99 %.1fms), speedup %.2fx\n",
		con.QPS, con.LatP50MS, con.LatP99MS, con.QPS/ser.QPS)

	if err := lc.shutdown(); err != nil {
		return err
	}
	if serHash != conHash {
		return errors.New("cluster bench: result divergence between serialized and concurrent phases")
	}

	rep := benchNetReport{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Scale:     o.scale,
		Workers:   o.workers,
		Ranks:     o.ranks,
		Topology:  o.topo,
		Vertices:  n,
		Workload: fmt.Sprintf("%d queries over %d worker processes (TCP loopback): bfs/bfs_do/sssp mix + cc + pagerank + triangles + kcore",
			len(work), o.workers),
		Serialized: ser,
		Concurrent: con,
		Speedup:    con.QPS / ser.QPS,
		NetSer:     afterSer.Sub(base),
		NetCon:     afterCon.Sub(afterSer),
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("havoqd: cluster bench: wrote %s (%d frames, %.1f MB across the mesh)\n",
		out, rep.NetSer.FramesOut+rep.NetCon.FramesOut,
		float64(rep.NetSer.BytesOut+rep.NetCon.BytesOut)/1e6)
	return nil
}
