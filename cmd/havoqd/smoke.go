package main

// Smoke mode: bring the real server up on the configured address, fire N
// concurrent queries at it over actual HTTP, and require every one of them
// to succeed. This is the end-to-end check `make serve-smoke` runs — it
// exercises listener, JSON codec, engine admission, interleaved execution,
// and graceful shutdown in one pass.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"havoqgt"
)

// smokeSpec builds the i-th smoke query: a mix of every query type,
// BFS/SSSP from spread-out sources.
func smokeSpec(i int, n uint64) queryRequest {
	switch {
	case i%10 == 9:
		return queryRequest{Algo: "cc"}
	case i%10 == 8:
		return queryRequest{Algo: "kcore", K: uint32(2 + i%3)}
	case i%10 == 7:
		return queryRequest{Algo: "pagerank", Iters: uint32(4 + i%8)}
	case i%10 == 5:
		return queryRequest{Algo: "triangles"}
	case i%10 == 3:
		return queryRequest{Algo: "bfs_do", Source: uint64(i*41) % n}
	case i%2 == 0:
		return queryRequest{Algo: "bfs", Source: uint64(i*37) % n}
	default:
		return queryRequest{Algo: "sssp", Source: uint64(i*53+1) % n, WeightSeed: uint64(i)}
	}
}

func smoke(o *options, s *server, srv *http.Server, ln net.Listener, e *havoqgt.Engine) error {
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 5 * time.Minute}

	// Liveness first.
	hres, err := client.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	io.Copy(io.Discard, hres.Body)
	hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d", hres.StatusCode)
	}

	fmt.Printf("havoqd: smoke: firing %d concurrent queries at %s\n", o.queries, base)
	start := time.Now()
	errs := make([]error, o.queries)
	var wg sync.WaitGroup
	for i := 0; i < o.queries; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := smokeSpec(i, s.g.NumVertices())
			body, _ := json.Marshal(req)
			res, err := client.Post(base+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = fmt.Errorf("query %d (%s): %w", i, req.Algo, err)
				return
			}
			defer res.Body.Close()
			raw, _ := io.ReadAll(res.Body)
			if res.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("query %d (%s): status %d: %s", i, req.Algo, res.StatusCode, strings.TrimSpace(string(raw)))
				return
			}
			var qr queryResponse
			if err := json.Unmarshal(raw, &qr); err != nil {
				errs[i] = fmt.Errorf("query %d (%s): bad response: %w", i, req.Algo, err)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Stats endpoint must produce parseable JSON after the burst.
	sres, err := client.Get(base + "/stats")
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	statsRaw, _ := io.ReadAll(sres.Body)
	sres.Body.Close()
	var stats map[string]any
	if err := json.Unmarshal(statsRaw, &stats); err != nil {
		return fmt.Errorf("stats: bad JSON: %w", err)
	}

	srv.Close()
	s.close()
	if err := e.Close(); err != nil {
		return err
	}

	failed := 0
	for _, err := range errs {
		if err != nil {
			failed++
			fmt.Printf("havoqd: smoke: FAIL %v\n", err)
		}
	}
	if failed > 0 {
		return fmt.Errorf("smoke: %d/%d queries failed", failed, o.queries)
	}
	fmt.Printf("havoqd: smoke: %d/%d queries ok in %v (%.1f q/s), served=%d failed=%d\n",
		o.queries, o.queries, elapsed.Round(time.Millisecond),
		float64(o.queries)/elapsed.Seconds(), s.served.Load(), s.failed.Load())
	return nil
}
