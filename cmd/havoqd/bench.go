package main

// Selfbench: a closed-loop load generator that answers the question the
// engine exists for — does interleaving queries on one resident graph beat
// running them back to back? The same mixed workload is executed serialized
// (the classic one-collective-phase-at-a-time path) and concurrently
// (through the engine), in two transport regimes:
//
//   - zero latency: the simulator's default instantaneous transport. On a
//     single host this is a pure CPU-throughput comparison — there is no
//     latency for asynchronous interleaving to hide, so the gap is small.
//   - modeled latency (-bench-latency): every rank-to-rank message pays a
//     fixed delivery delay, emulating the interconnect / external-memory
//     transfer costs of the distributed machines the paper targets. Here
//     the serialized baseline stalls on every termination wave, barrier,
//     and sparse-frontier round trip with the message plane idle, while
//     the engine fills those stalls with other queries' work — the
//     latency-hiding effect the asynchronous visitor queue is built for.
//
// Results (throughput, p50/p99 latency, speedup, per-regime) are written as
// JSON to -bench-out. Both phases' scalar results are hashed and compared,
// so the benchmark doubles as a correctness check.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"time"

	"havoqgt"
)

type benchPhase struct {
	WallMS     float64 `json:"wall_ms"`
	QPS        float64 `json:"qps"`
	LatP50MS   float64 `json:"lat_p50_ms"`
	LatP99MS   float64 `json:"lat_p99_ms"`
	LatMaxMS   float64 `json:"lat_max_ms"`
	InFlight   int     `json:"in_flight"`
	Queries    int     `json:"queries"`
	ResultHash uint64  `json:"result_hash"`
}

// benchComparison is serialized-vs-concurrent under one transport regime.
type benchComparison struct {
	SimLatencyMS float64    `json:"sim_latency_ms"`
	Serialized   benchPhase `json:"serialized"`
	Concurrent   benchPhase `json:"concurrent"`
	Speedup      float64    `json:"speedup"`
}

type benchReport struct {
	Timestamp      string          `json:"timestamp"`
	Scale          uint            `json:"scale"`
	Ranks          int             `json:"ranks"`
	Topology       string          `json:"topology"`
	Vertices       uint64          `json:"vertices"`
	Edges          uint64          `json:"edges"`
	Workload       string          `json:"workload"`
	ZeroLatency    benchComparison `json:"zero_latency"`
	ModeledLatency benchComparison `json:"modeled_latency"`
}

// benchQuery is one workload item; run executes it through whatever path the
// graph currently routes (classic when no engine is attached, engine
// otherwise) and returns a content hash so serialized and concurrent phases
// can be checked for identical answers.
type benchQuery struct {
	name string
	run  func(g *havoqgt.Graph) (uint64, error)
}

// splitmix64 is the workload's deterministic source PRNG.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// benchWorkload models a serving mix: BFS and SSSP point queries from
// uniformly random sources (under a scale-free degree distribution that is
// a natural blend of heavy giant-component traversals and near-trivial
// queries on cold vertices), plus one whole-graph components query and one
// k-core query.
func benchWorkload(n uint64, queries int) []benchQuery {
	var w []benchQuery
	for i := 0; i < queries; i++ {
		src := havoqgt.Vertex(splitmix64(uint64(i)*0x9e37+42) % n)
		switch {
		case i == 5:
			w = append(w, benchQuery{name: "cc", run: func(g *havoqgt.Graph) (uint64, error) {
				res, err := g.Components()
				if err != nil {
					return 0, err
				}
				return res.Count, nil
			}})
		case i == 11:
			w = append(w, benchQuery{name: "kcore", run: func(g *havoqgt.Graph) (uint64, error) {
				res, err := g.KCore(2)
				if err != nil {
					return 0, err
				}
				return res.CoreSize, nil
			}})
		case i%2 == 0:
			w = append(w, benchQuery{name: "bfs", run: func(g *havoqgt.Graph) (uint64, error) {
				res, err := g.BFS(src)
				if err != nil {
					return 0, err
				}
				return res.Reached*1e9 + uint64(res.MaxLevel), nil
			}})
		default:
			seed := uint64(i)
			w = append(w, benchQuery{name: "sssp", run: func(g *havoqgt.Graph) (uint64, error) {
				res, err := g.ShortestPaths(src, seed)
				if err != nil {
					return 0, err
				}
				var h uint64
				for v, d := range res.Distances {
					if d != havoqgt.UnreachedDistance {
						h += d * uint64(v+1)
					}
				}
				return h, nil
			}})
		}
	}
	return w
}

// percentile returns the p-th percentile of a sorted latency sample in
// milliseconds, using the nearest-rank definition: the smallest value with
// at least a p fraction of the sample at or below it (rank ⌈p·n⌉, clamped
// to [1, n]). The previous truncating-index formula int(p*(n-1))
// systematically under-reported tail percentiles — e.g. p99 over 48 samples
// indexed element 46 of 47 instead of the maximum.
func percentile(sorted []time.Duration, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	r := int(math.Ceil(p * float64(n)))
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	return float64(sorted[r-1].Microseconds()) / 1e3
}

func summarize(lats []time.Duration, wall time.Duration, inFlight int, hash uint64) benchPhase {
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return benchPhase{
		WallMS:     float64(wall.Microseconds()) / 1e3,
		QPS:        float64(len(lats)) / wall.Seconds(),
		LatP50MS:   percentile(sorted, 0.50),
		LatP99MS:   percentile(sorted, 0.99),
		LatMaxMS:   percentile(sorted, 1.0),
		InFlight:   inFlight,
		Queries:    len(lats),
		ResultHash: hash,
	}
}

// runSerialized executes the workload one query at a time on the classic
// path (no engine attached).
func runSerialized(g *havoqgt.Graph, work []benchQuery) (benchPhase, error) {
	lats := make([]time.Duration, len(work))
	var hash uint64
	start := time.Now()
	for i, q := range work {
		t := time.Now()
		h, err := q.run(g)
		if err != nil {
			return benchPhase{}, fmt.Errorf("serialized %s #%d: %w", q.name, i, err)
		}
		lats[i] = time.Since(t)
		hash += h
	}
	return summarize(lats, time.Since(start), 1, hash), nil
}

// runConcurrent executes the workload all at once through an engine.
func runConcurrent(g *havoqgt.Graph, work []benchQuery, opts havoqgt.EngineOptions) (benchPhase, error) {
	e, err := g.StartEngine(opts)
	if err != nil {
		return benchPhase{}, err
	}
	lats := make([]time.Duration, len(work))
	hashes := make([]uint64, len(work))
	errs := make([]error, len(work))
	var wg sync.WaitGroup
	start := time.Now()
	for i, q := range work {
		i, q := i, q
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.Now()
			hashes[i], errs[i] = q.run(g)
			lats[i] = time.Since(t)
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	if err := e.Close(); err != nil {
		return benchPhase{}, err
	}
	var hash uint64
	for i, err := range errs {
		if err != nil {
			return benchPhase{}, fmt.Errorf("concurrent %s #%d: %w", work[i].name, i, err)
		}
		hash += hashes[i]
	}
	return summarize(lats, wall, opts.MaxInFlight, hash), nil
}

// compare runs serialized-then-concurrent under the given transport latency.
func compare(g *havoqgt.Graph, work []benchQuery, o *options, simLatency time.Duration) (benchComparison, error) {
	g.SetSimLatency(simLatency)
	defer g.SetSimLatency(0)
	ser, err := runSerialized(g, work)
	if err != nil {
		return benchComparison{}, err
	}
	con, err := runConcurrent(g, work, havoqgt.EngineOptions{
		MaxInFlight: o.maxInFlight,
		MaxQueue:    len(work),
		StepBatch:   o.stepBatch,
	})
	if err != nil {
		return benchComparison{}, err
	}
	if ser.ResultHash != con.ResultHash {
		return benchComparison{}, fmt.Errorf("result divergence: serialized hash %d != concurrent hash %d",
			ser.ResultHash, con.ResultHash)
	}
	return benchComparison{
		SimLatencyMS: float64(simLatency.Microseconds()) / 1e3,
		Serialized:   ser,
		Concurrent:   con,
		Speedup:      con.QPS / ser.QPS,
	}, nil
}

func selfbench(o *options) error {
	fmt.Printf("havoqd: selfbench: building scale-%d %s graph on %d ranks (topo %s)\n",
		o.scale, o.model, o.ranks, o.topo)
	g, err := buildGraph(o)
	if err != nil {
		return err
	}
	work := benchWorkload(g.NumVertices(), o.benchQueries)

	fmt.Printf("havoqd: selfbench: zero-latency regime (%d queries)\n", len(work))
	zero, err := compare(g, work, o, 0)
	if err != nil {
		return err
	}
	fmt.Printf("havoqd: selfbench:   serialized %.1f q/s, concurrent %.1f q/s, speedup %.2fx\n",
		zero.Serialized.QPS, zero.Concurrent.QPS, zero.Speedup)

	fmt.Printf("havoqd: selfbench: modeled-latency regime (%v per message)\n", o.benchLatency)
	modeled, err := compare(g, work, o, o.benchLatency)
	if err != nil {
		return err
	}
	fmt.Printf("havoqd: selfbench:   serialized %.1f q/s, concurrent %.1f q/s, speedup %.2fx\n",
		modeled.Serialized.QPS, modeled.Concurrent.QPS, modeled.Speedup)

	rep := benchReport{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Scale:     o.scale,
		Ranks:     o.ranks,
		Topology:  o.topo,
		Vertices:  g.NumVertices(),
		Edges:     g.NumEdges(),
		Workload: fmt.Sprintf("%d queries: bfs/sssp from splitmix64 random sources + 1 cc + 1 kcore(k=2)",
			len(work)),
		ZeroLatency:    zero,
		ModeledLatency: modeled,
	}
	out := o.benchOut
	if out == "" {
		out = "BENCH_engine.json"
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("havoqd: selfbench: wrote %s\n", out)
	return nil
}
