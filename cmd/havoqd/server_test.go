package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"havoqgt"
	"havoqgt/internal/check"
)

func testServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	check.NoLeaks(t) // registered first so the leak check runs after teardown
	g, err := havoqgt.GenerateRMAT(9, 7, havoqgt.Options{Ranks: 4, Topology: "2d", Simplify: true})
	if err != nil {
		t.Fatal(err)
	}
	e, err := g.StartEngine(havoqgt.EngineOptions{MaxInFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(g, e)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(func() {
		ts.Close()
		e.Close()
		// Client keep-alive connections from http.Post hold transport
		// goroutines; drop them so the leak check sees a settled count.
		http.DefaultClient.CloseIdleConnections()
	})
	return s, ts
}

func postQuery(t *testing.T, ts *httptest.Server, req queryRequest) (int, queryResponse, errorResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	res, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var qr queryResponse
	var er errorResponse
	if res.StatusCode == http.StatusOK {
		if err := json.NewDecoder(res.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := json.NewDecoder(res.Body).Decode(&er); err != nil {
			t.Fatal(err)
		}
	}
	return res.StatusCode, qr, er
}

func TestServerEndpoints(t *testing.T) {
	s, ts := testServer(t)

	// Healthz.
	res, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(res.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if health["ok"] != true {
		t.Fatalf("healthz: %v", health)
	}

	// A full BFS answer matches the facade run directly.
	code, qr, er := postQuery(t, ts, queryRequest{Algo: "bfs", Source: 3, Full: true})
	if code != http.StatusOK {
		t.Fatalf("bfs: status %d: %s", code, er.Error)
	}
	want, err := s.g.BFS(3)
	if err != nil {
		t.Fatal(err)
	}
	if qr.Reached != want.Reached || qr.MaxLevel != want.MaxLevel {
		t.Fatalf("bfs summary: got reached=%d max=%d, want reached=%d max=%d",
			qr.Reached, qr.MaxLevel, want.Reached, want.MaxLevel)
	}
	for v := range want.Levels {
		if qr.Levels[v] != want.Levels[v] {
			t.Fatalf("bfs level[%d]: %d != %d", v, qr.Levels[v], want.Levels[v])
		}
	}

	// Each algorithm answers with its summary field.
	if code, qr, er := postQuery(t, ts, queryRequest{Algo: "sssp", Source: 1, WeightSeed: 9}); code != http.StatusOK || qr.Reached == 0 {
		t.Fatalf("sssp: status %d reached %d: %s", code, qr.Reached, er.Error)
	}
	if code, qr, er := postQuery(t, ts, queryRequest{Algo: "cc"}); code != http.StatusOK || qr.Components == 0 {
		t.Fatalf("cc: status %d components %d: %s", code, qr.Components, er.Error)
	}
	if code, qr, er := postQuery(t, ts, queryRequest{Algo: "kcore", K: 2}); code != http.StatusOK || qr.CoreSize == 0 {
		t.Fatalf("kcore: status %d core %d: %s", code, qr.CoreSize, er.Error)
	}

	// Stats is valid JSON with engine counters.
	res, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	if err := json.NewDecoder(res.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if _, ok := stats["counters"]; !ok {
		t.Fatalf("stats missing counters: %v", stats)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	_, ts := testServer(t)
	cases := []struct {
		name string
		req  queryRequest
		code int
	}{
		{"unknown algo", queryRequest{Algo: "pagerank"}, http.StatusBadRequest},
		{"source out of range", queryRequest{Algo: "bfs", Source: 1 << 40}, http.StatusBadRequest},
		{"kcore k=0", queryRequest{Algo: "kcore"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, er := postQuery(t, ts, tc.req)
			if code != tc.code {
				t.Fatalf("status %d, want %d (%s)", code, tc.code, er.Error)
			}
			if er.Error == "" {
				t.Fatal("error body missing")
			}
		})
	}
	// Malformed JSON and wrong method.
	res, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", res.StatusCode)
	}
	res, err = http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query: status %d", res.StatusCode)
	}
}

func TestServerConcurrentQueries(t *testing.T) {
	s, ts := testServer(t)
	want, err := s.g.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	const burst = 16
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, qr, er := postQuery(t, ts, queryRequest{Algo: "bfs", Source: 0})
			if code != http.StatusOK {
				t.Errorf("status %d: %s", code, er.Error)
				return
			}
			if qr.Reached != want.Reached || qr.MaxLevel != want.MaxLevel {
				t.Errorf("got reached=%d max=%d, want reached=%d max=%d",
					qr.Reached, qr.MaxLevel, want.Reached, want.MaxLevel)
			}
		}()
	}
	wg.Wait()
	if got := s.served.Load(); got != burst {
		t.Fatalf("served counter %d, want %d", got, burst)
	}
}

func TestSmokeMode(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke mode is a full end-to-end run")
	}
	code := run([]string{"-smoke", "-scale", "9", "-ranks", "4", "-queries", "12", "-addr", "127.0.0.1:0"})
	if code != 0 {
		t.Fatalf("smoke run exited %d", code)
	}
}

func TestSelfbenchMode(t *testing.T) {
	if testing.Short() {
		t.Skip("selfbench is a timed run")
	}
	outPath := filepath.Join(t.TempDir(), "bench.json")
	code := run([]string{"-selfbench", "-scale", "9", "-ranks", "4",
		"-bench-queries", "8", "-bench-latency", "1ms", "-bench-out", outPath})
	if code != 0 {
		t.Fatalf("selfbench exited %d", code)
	}
	raw := readFile(t, outPath)
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("bench output not JSON: %v", err)
	}
	for _, cmp := range []benchComparison{rep.ZeroLatency, rep.ModeledLatency} {
		if cmp.Serialized.Queries != cmp.Concurrent.Queries || cmp.Serialized.Queries == 0 {
			t.Fatalf("bad query counts: %+v", cmp)
		}
		if cmp.Serialized.ResultHash != cmp.Concurrent.ResultHash {
			t.Fatalf("phases disagree: %d vs %d", cmp.Serialized.ResultHash, cmp.Concurrent.ResultHash)
		}
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
