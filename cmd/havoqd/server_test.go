package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"havoqgt"
	"havoqgt/internal/check"
	"havoqgt/internal/obs"
	"havoqgt/internal/traffic"
)

func testServer(t *testing.T) (*server, *httptest.Server) {
	return testServerConfig(t, traffic.Config{})
}

func testServerConfig(t *testing.T, tc traffic.Config) (*server, *httptest.Server) {
	t.Helper()
	check.NoLeaks(t) // registered first so the leak check runs after teardown
	g, err := havoqgt.GenerateRMAT(9, 7, havoqgt.Options{Ranks: 4, Topology: "2d", Simplify: true})
	if err != nil {
		t.Fatal(err)
	}
	e, err := g.StartEngine(havoqgt.EngineOptions{MaxInFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(g, e, tc)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(func() {
		ts.Close()
		s.close()
		e.Close()
		// Client keep-alive connections from http.Post hold transport
		// goroutines; drop them so the leak check sees a settled count.
		http.DefaultClient.CloseIdleConnections()
	})
	return s, ts
}

func postQuery(t *testing.T, ts *httptest.Server, req queryRequest) (int, queryResponse, errorResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	res, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var qr queryResponse
	var er errorResponse
	if res.StatusCode == http.StatusOK {
		if err := json.NewDecoder(res.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := json.NewDecoder(res.Body).Decode(&er); err != nil {
			t.Fatal(err)
		}
	}
	return res.StatusCode, qr, er
}

func TestServerEndpoints(t *testing.T) {
	s, ts := testServer(t)

	// Healthz.
	res, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(res.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if health["ok"] != true {
		t.Fatalf("healthz: %v", health)
	}

	// A full BFS answer matches the facade run directly.
	code, qr, er := postQuery(t, ts, queryRequest{Algo: "bfs", Source: 3, Full: true})
	if code != http.StatusOK {
		t.Fatalf("bfs: status %d: %s", code, er.Reason)
	}
	want, err := s.g.BFS(3)
	if err != nil {
		t.Fatal(err)
	}
	if qr.Reached != want.Reached || qr.MaxLevel != want.MaxLevel {
		t.Fatalf("bfs summary: got reached=%d max=%d, want reached=%d max=%d",
			qr.Reached, qr.MaxLevel, want.Reached, want.MaxLevel)
	}
	for v := range want.Levels {
		if qr.Levels[v] != want.Levels[v] {
			t.Fatalf("bfs level[%d]: %d != %d", v, qr.Levels[v], want.Levels[v])
		}
	}

	// Each algorithm answers with its summary field.
	if code, qr, er := postQuery(t, ts, queryRequest{Algo: "sssp", Source: 1, WeightSeed: 9}); code != http.StatusOK || qr.Reached == 0 {
		t.Fatalf("sssp: status %d reached %d: %s", code, qr.Reached, er.Reason)
	}
	if code, qr, er := postQuery(t, ts, queryRequest{Algo: "cc"}); code != http.StatusOK || qr.Components == 0 {
		t.Fatalf("cc: status %d components %d: %s", code, qr.Components, er.Reason)
	}
	if code, qr, er := postQuery(t, ts, queryRequest{Algo: "kcore", K: 2}); code != http.StatusOK || qr.CoreSize == 0 {
		t.Fatalf("kcore: status %d core %d: %s", code, qr.CoreSize, er.Reason)
	}
	code, doQR, er := postQuery(t, ts, queryRequest{Algo: "bfs_do", Source: 3})
	if code != http.StatusOK || doQR.Reached == 0 {
		t.Fatalf("bfs_do: status %d reached %d: %s", code, doQR.Reached, er.Reason)
	}
	if doQR.Reached != want.Reached || doQR.MaxLevel != want.MaxLevel {
		t.Fatalf("bfs_do summary (%d, %d) != top-down bfs (%d, %d)",
			doQR.Reached, doQR.MaxLevel, want.Reached, want.MaxLevel)
	}
	if code, qr, er := postQuery(t, ts, queryRequest{Algo: "pagerank", Iters: 6}); code != http.StatusOK || qr.Iters != 6 {
		t.Fatalf("pagerank: status %d iters %d: %s", code, qr.Iters, er.Reason)
	}
	if code, _, er := postQuery(t, ts, queryRequest{Algo: "triangles"}); code != http.StatusOK {
		t.Fatalf("triangles: status %d: %s", code, er.Reason)
	}

	// Stats is valid JSON with engine counters.
	res, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	if err := json.NewDecoder(res.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if _, ok := stats["counters"]; !ok {
		t.Fatalf("stats missing counters: %v", stats)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	_, ts := testServer(t)
	cases := []struct {
		name string
		req  queryRequest
		code int
	}{
		{"unknown algo", queryRequest{Algo: "betweenness"}, http.StatusBadRequest},
		{"source out of range", queryRequest{Algo: "bfs", Source: 1 << 40}, http.StatusBadRequest},
		{"bfs_do source out of range", queryRequest{Algo: "bfs_do", Source: 1 << 40}, http.StatusBadRequest},
		{"kcore k=0", queryRequest{Algo: "kcore"}, http.StatusBadRequest},
		{"pagerank iters over cap", queryRequest{Algo: "pagerank", Iters: 1000}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, er := postQuery(t, ts, tc.req)
			if code != tc.code {
				t.Fatalf("status %d, want %d (%s)", code, tc.code, er.Reason)
			}
			if er.Reason == "" || er.Code != codeBadRequest {
				t.Fatalf("structured error body missing: %+v", er)
			}
		})
	}
	// Malformed JSON and wrong method.
	res, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", res.StatusCode)
	}
	res, err = http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query: status %d", res.StatusCode)
	}
}

func TestServerConcurrentQueries(t *testing.T) {
	s, ts := testServer(t)
	want, err := s.g.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	const burst = 16
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, qr, er := postQuery(t, ts, queryRequest{Algo: "bfs", Source: 0})
			if code != http.StatusOK {
				t.Errorf("status %d: %s", code, er.Reason)
				return
			}
			if qr.Reached != want.Reached || qr.MaxLevel != want.MaxLevel {
				t.Errorf("got reached=%d max=%d, want reached=%d max=%d",
					qr.Reached, qr.MaxLevel, want.Reached, want.MaxLevel)
			}
		}()
	}
	wg.Wait()
	if got := s.served.Load(); got != burst {
		t.Fatalf("served counter %d, want %d", got, burst)
	}
}

// TestServerQuotaShedsStructured429 drives a tenant past a tiny quota and
// checks the full shed contract: status 429, machine-readable code, a
// Retry-After header, and isolation from other tenants.
func TestServerQuotaShedsStructured429(t *testing.T) {
	_, ts := testServerConfig(t, traffic.Config{
		Quota: traffic.QuotaConfig{Rate: 1, Burst: 2, Tick: time.Hour},
	})
	post := func(tenant string) *http.Response {
		body, _ := json.Marshal(queryRequest{Algo: "bfs", Source: 0})
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/query", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			req.Header.Set(tenantHeader, tenant)
		}
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for i := 0; i < 2; i++ {
		res := post("")
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("request %d within burst: status %d", i, res.StatusCode)
		}
	}
	res := post("")
	defer res.Body.Close()
	if res.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("request past burst: status %d, want 429", res.StatusCode)
	}
	if ra := res.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	var er errorResponse
	if err := json.NewDecoder(res.Body).Decode(&er); err != nil {
		t.Fatalf("429 body not structured JSON: %v", err)
	}
	if er.Code != codeQuotaExceeded || er.Reason == "" || er.RetryAfterSec < 1 {
		t.Fatalf("429 body = %+v", er)
	}
	// Another tenant's bucket is untouched.
	res2 := post("other-tenant")
	io.Copy(io.Discard, res2.Body)
	res2.Body.Close()
	if res2.StatusCode != http.StatusOK {
		t.Fatalf("other tenant shed: status %d", res2.StatusCode)
	}
}

// TestServerCacheOutcomeHeaders checks the per-request outcome surface: the
// first identical query executes, the second is served from the versioned
// result cache, and both carry the graph version.
func TestServerCacheOutcomeHeaders(t *testing.T) {
	s, ts := testServer(t)
	post := func() *http.Response {
		body, _ := json.Marshal(queryRequest{Algo: "bfs", Source: 5})
		res, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := post()
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if got := res.Header.Get("X-Traffic-Outcome"); got != "executed" {
		t.Fatalf("first request outcome = %q, want executed", got)
	}
	res = post()
	var cached queryResponse
	if err := json.NewDecoder(res.Body).Decode(&cached); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if got := res.Header.Get("X-Traffic-Outcome"); got != "cached" {
		t.Fatalf("second request outcome = %q, want cached", got)
	}
	if got := res.Header.Get("X-Graph-Version"); got != "1" {
		t.Fatalf("X-Graph-Version = %q, want 1", got)
	}

	// A graph-version bump invalidates: the next identical query executes
	// again and reports the new version.
	s.g.BumpVersion()
	res = post()
	var fresh queryResponse
	if err := json.NewDecoder(res.Body).Decode(&fresh); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if got := res.Header.Get("X-Traffic-Outcome"); got != "executed" {
		t.Fatalf("post-bump outcome = %q, want executed", got)
	}
	if got := res.Header.Get("X-Graph-Version"); got != "2" {
		t.Fatalf("post-bump X-Graph-Version = %q, want 2", got)
	}
	// id/elapsed_ms describe the execution that produced the bytes; the
	// graph answer itself must agree across the cache and execute paths.
	if cached.Reached != fresh.Reached || cached.MaxLevel != fresh.MaxLevel {
		t.Fatalf("cached answer reached=%d max=%d, fresh answer reached=%d max=%d",
			cached.Reached, cached.MaxLevel, fresh.Reached, fresh.MaxLevel)
	}
}

// TestServerStatsExposesTrafficCounters: the traffic plane reports into the
// same registry as the engine, so /stats carries traffic.* next to engine.*.
func TestServerStatsExposesTrafficCounters(t *testing.T) {
	_, ts := testServer(t)
	code, _, er := postQuery(t, ts, queryRequest{Algo: "bfs", Source: 1})
	if code != http.StatusOK {
		t.Fatalf("query: status %d: %s", code, er.Reason)
	}
	res, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var stats struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.NewDecoder(res.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Counters[obs.TrafficAdmitted] == 0 {
		t.Fatalf("stats missing %s: %v", obs.TrafficAdmitted, stats.Counters)
	}
	if _, ok := stats.Counters[obs.TrafficCacheMisses]; !ok {
		t.Fatalf("stats missing %s", obs.TrafficCacheMisses)
	}
}

func TestLoadbenchMode(t *testing.T) {
	if testing.Short() {
		t.Skip("loadbench is a timed run")
	}
	outPath := filepath.Join(t.TempDir(), "traffic.json")
	// Tiny scale and short phases: the statistical gates are not meaningful
	// here, so they are off; the run must still be clean (zero 5xx) and the
	// deterministic collapse probe must still hold.
	code := run([]string{"-loadbench", "-scale", "9", "-ranks", "4",
		"-load-qps", "40", "-load-duration", "1s", "-load-gates=false", "-load-out", outPath})
	if code != 0 {
		t.Fatalf("loadbench exited %d", code)
	}
	var rep loadReport
	if err := json.Unmarshal(readFile(t, outPath), &rep); err != nil {
		t.Fatalf("loadbench output not JSON: %v", err)
	}
	if len(rep.Phases) != 4 {
		t.Fatalf("%d phases, want 4", len(rep.Phases))
	}
	for _, ph := range rep.Phases {
		if ph.Status5xx != 0 || ph.ClientErrors != 0 {
			t.Fatalf("phase %s: 5xx=%d client_errors=%d", ph.Name, ph.Status5xx, ph.ClientErrors)
		}
	}
	probe := rep.Phases[3]
	if probe.CollapseLeaders != 1 || probe.CollapseHits+probe.CacheHits != uint64(probe.Sent-1) {
		t.Fatalf("collapse probe: leaders=%d collapsed=%d cached=%d sent=%d",
			probe.CollapseLeaders, probe.CollapseHits, probe.CacheHits, probe.Sent)
	}
}

func TestSmokeMode(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke mode is a full end-to-end run")
	}
	code := run([]string{"-smoke", "-scale", "9", "-ranks", "4", "-queries", "12", "-addr", "127.0.0.1:0"})
	if code != 0 {
		t.Fatalf("smoke run exited %d", code)
	}
}

func TestSelfbenchMode(t *testing.T) {
	if testing.Short() {
		t.Skip("selfbench is a timed run")
	}
	outPath := filepath.Join(t.TempDir(), "bench.json")
	code := run([]string{"-selfbench", "-scale", "9", "-ranks", "4",
		"-bench-queries", "8", "-bench-latency", "1ms", "-bench-out", outPath})
	if code != 0 {
		t.Fatalf("selfbench exited %d", code)
	}
	raw := readFile(t, outPath)
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("bench output not JSON: %v", err)
	}
	for _, cmp := range []benchComparison{rep.ZeroLatency, rep.ModeledLatency} {
		if cmp.Serialized.Queries != cmp.Concurrent.Queries || cmp.Serialized.Queries == 0 {
			t.Fatalf("bad query counts: %+v", cmp)
		}
		if cmp.Serialized.ResultHash != cmp.Concurrent.ResultHash {
			t.Fatalf("phases disagree: %d vs %d", cmp.Serialized.ResultHash, cmp.Concurrent.ResultHash)
		}
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
