package main

import (
	"testing"
	"time"
)

// ms builds a sorted latency sample from millisecond values.
func ms(vals ...int) []time.Duration {
	out := make([]time.Duration, len(vals))
	for i, v := range vals {
		out[i] = time.Duration(v) * time.Millisecond
	}
	return out
}

// TestPercentileNearestRank pins the nearest-rank definition on known small
// distributions: the p-th percentile is the smallest sample value with at
// least a p fraction of the sample at or below it.
func TestPercentileNearestRank(t *testing.T) {
	cases := []struct {
		name   string
		sorted []time.Duration
		p      float64
		want   float64 // milliseconds
	}{
		{"empty", nil, 0.5, 0},
		{"single p50", ms(7), 0.50, 7},
		{"single p99", ms(7), 0.99, 7},
		// 1..10: p50 -> ceil(5.0)=rank 5 -> 5; p90 -> rank 9 -> 9;
		// p99 -> ceil(9.9)=rank 10 -> 10 (the max, not element 8).
		{"ten p50", ms(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 0.50, 5},
		{"ten p90", ms(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 0.90, 9},
		{"ten p99", ms(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 0.99, 10},
		{"ten p100", ms(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 1.0, 10},
		// 4 samples: p25 -> rank 1 -> min; p26 -> rank ceil(1.04)=2.
		{"four p25", ms(10, 20, 30, 40), 0.25, 10},
		{"four p26", ms(10, 20, 30, 40), 0.26, 20},
		{"four p0", ms(10, 20, 30, 40), 0.0, 10}, // clamped to rank 1
		// The regression the fix exists for: p99 over a 48-query workload
		// must report the worst sample. ceil(0.99*48)=48 -> max. The old
		// truncating formula int(0.99*47)=46 returned the 47th value.
		{"fortyeight p99 hits max", func() []time.Duration {
			s := make([]time.Duration, 48)
			for i := range s {
				s[i] = time.Duration(i+1) * time.Millisecond
			}
			return s
		}(), 0.99, 48},
	}
	for _, tc := range cases {
		if got := percentile(tc.sorted, tc.p); got != tc.want {
			t.Errorf("%s: percentile(p=%v) = %v ms, want %v ms", tc.name, tc.p, got, tc.want)
		}
	}
}

// TestPercentileMonotone checks that percentiles never decrease in p and
// never exceed the sample maximum — the properties the truncating index
// violated at the tail.
func TestPercentileMonotone(t *testing.T) {
	sorted := make([]time.Duration, 0, 97)
	for i := 0; i < 97; i++ {
		sorted = append(sorted, time.Duration(i*i)*time.Microsecond)
	}
	maxMS := float64(sorted[len(sorted)-1].Microseconds()) / 1e3
	prev := -1.0
	for p := 0.0; p <= 1.0; p += 0.01 {
		got := percentile(sorted, p)
		if got < prev {
			t.Fatalf("percentile not monotone: p=%v gave %v after %v", p, got, prev)
		}
		if got > maxMS {
			t.Fatalf("percentile(p=%v) = %v exceeds sample max %v", p, got, maxMS)
		}
		prev = got
	}
	if got := percentile(sorted, 1.0); got != maxMS {
		t.Fatalf("p100 = %v, want max %v", got, maxMS)
	}
}
