package main

// Open-loop traffic benchmark (-loadbench): the committed evidence that the
// front-door plane does its job. Three phases drive BFS point queries
// through the real HTTP path — listener, JSON codec, tenant quota, result
// cache, collapse group, engine — with open-loop (Poisson) arrivals, i.e.
// requests fire on the arrival clock whether or not earlier ones finished,
// the way real traffic behaves:
//
//   uniform:  offered -load-qps, sources uniform over the vertex set. The
//             cold baseline: most requests miss and execute.
//   hotkey:   same offered rate, sources Zipf(-load-zipf-s) — the skew that
//             scale-free graphs attract. Collapse + cache should absorb most
//             requests (the acceptance gate says >= 50%).
//   overload: -load-overload x the offered rate. Tenant quotas must shed the
//             excess as structured 429s with Retry-After — zero 5xx — while
//             admitted requests keep a flat p99.
//
// The graph version is bumped before the uniform and hotkey phases, so each
// starts with a cold cache (the bump doubles as a live test of version
// invalidation); the overload phase keeps the hotkey phase's warm cache,
// because overload arrives while serving, not after an invalidation. A final
// deterministic probe fires 16 simultaneous requests for one cold key to
// demonstrate N->1 collapsing by construction.
// Latency percentiles come from per-phase deltas of the server-side
// traffic.request_ns obs histogram; client-observed percentiles ride along
// as a cross-check. Results land in -load-out (BENCH_traffic.json), and with
// -load-gates (default) the acceptance gates fail the run with exit != 0.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"havoqgt"
	"havoqgt/internal/obs"
	"havoqgt/internal/traffic"
)

// loadPhaseReport is one phase's outcome: client-observed status breakdown
// plus the server-side traffic.* counter and histogram deltas.
type loadPhaseReport struct {
	Name         string  `json:"name"`
	Distribution string  `json:"distribution"`
	OfferedQPS   float64 `json:"offered_qps"`
	DurationS    float64 `json:"duration_s"`
	Sent         int     `json:"sent"`

	Served2xx         int `json:"served_2xx"`
	Shed429Quota      int `json:"shed_429_quota"`
	Shed429Engine     int `json:"shed_429_engine"`
	Status4xxOther    int `json:"status_4xx_other"`
	Status5xx         int `json:"status_5xx"`
	ClientErrors      int `json:"client_errors"`
	MissingRetryAfter int `json:"missing_retry_after"`

	AdmittedQPS float64 `json:"admitted_qps"`
	ShedRate    float64 `json:"shed_rate"`

	CollapseLeaders uint64  `json:"collapse_leaders"`
	CollapseHits    uint64  `json:"collapse_hits"`
	CacheHits       uint64  `json:"cache_hits"`
	CacheMisses     uint64  `json:"cache_misses"`
	AbsorbedRate    float64 `json:"absorbed_rate"` // (cache+collapse hits) / served

	P50MS  float64 `json:"p50_ms"` // server-side, admitted+served requests
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`

	ClientP50MS float64 `json:"client_p50_ms"`
	ClientP99MS float64 `json:"client_p99_ms"`
	ClientMaxMS float64 `json:"client_max_ms"`
}

type loadGate struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail"`
}

type loadReport struct {
	Timestamp string `json:"timestamp"`
	Scale     uint   `json:"scale"`
	Ranks     int    `json:"ranks"`
	Vertices  uint64 `json:"vertices"`
	Edges     uint64 `json:"edges"`

	QPS         float64 `json:"qps"`
	PhaseS      float64 `json:"phase_s"`
	ZipfS       float64 `json:"zipf_s"`
	Overload    float64 `json:"overload_factor"`
	Tenants     int     `json:"tenants"`
	TenantRate  float64 `json:"tenant_rate"`
	TenantBurst float64 `json:"tenant_burst"`
	CacheBytes  int64   `json:"cache_bytes"`
	MaxInFlight int     `json:"max_in_flight"`
	MaxQueue    int     `json:"max_queue"`

	Phases []loadPhaseReport `json:"phases"`
	Gates  []loadGate        `json:"gates"`
}

// sourceDist draws the next query's source vertex. Implementations are not
// safe for concurrent use; the arrival loop draws before spawning.
type sourceDist interface {
	draw() uint64
}

type uniformDist struct {
	r *rand.Rand
	n uint64
}

func (d *uniformDist) draw() uint64 { return uint64(d.r.Int63n(int64(d.n))) }

// zipfDist maps Zipf rank k directly to vertex k: rank 0 is the hottest
// key. Which vertices are "hot" does not matter for the front door — only
// that a few keys dominate, as they do against any scale-free structure.
type zipfDist struct {
	z *rand.Zipf
}

func (d *zipfDist) draw() uint64 { return d.z.Uint64() }

// loadResult is one request's client-side observation.
type loadResult struct {
	status     int
	code       string // structured error code on non-2xx
	latency    time.Duration
	retryAfter bool
	err        error
}

// firePhase drives one open-loop phase: arrivals at rate qps for dur,
// exponential inter-arrival gaps, every request on its own goroutine.
// Returns when every fired request has completed.
func firePhase(client *http.Client, base string, dist sourceDist, qps float64, dur time.Duration,
	tenants int, arrivals *rand.Rand) []loadResult {
	var (
		mu      sync.Mutex
		results []loadResult
		wg      sync.WaitGroup
	)
	var fired atomic.Int64
	deadline := time.Now().Add(dur)
	next := time.Now()
	for time.Now().Before(deadline) {
		src := dist.draw()
		i := fired.Add(1)
		tenant := fmt.Sprintf("tenant-%d", i%int64(tenants))
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := fireOne(client, base, src, tenant)
			mu.Lock()
			results = append(results, res)
			mu.Unlock()
		}()
		// Exponential gap: a Poisson arrival process at rate qps.
		gap := time.Duration(arrivals.ExpFloat64() / qps * float64(time.Second))
		next = next.Add(gap)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
	}
	wg.Wait()
	return results
}

func fireOne(client *http.Client, base string, src uint64, tenant string) loadResult {
	body, _ := json.Marshal(queryRequest{Algo: "bfs", Source: src})
	req, err := http.NewRequest(http.MethodPost, base+"/query", bytes.NewReader(body))
	if err != nil {
		return loadResult{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(tenantHeader, tenant)
	start := time.Now()
	res, err := client.Do(req)
	if err != nil {
		return loadResult{err: err}
	}
	defer res.Body.Close()
	out := loadResult{status: res.StatusCode, latency: time.Since(start),
		retryAfter: res.Header.Get("Retry-After") != ""}
	if res.StatusCode == http.StatusOK {
		io.Copy(io.Discard, res.Body)
		return out
	}
	var er errorResponse
	if err := json.NewDecoder(res.Body).Decode(&er); err != nil {
		out.err = fmt.Errorf("status %d with unparseable error body: %w", res.StatusCode, err)
		return out
	}
	out.code = er.Code
	return out
}

// fireProbe fires n identical concurrent requests for one source against a
// cold cache: a deterministic demonstration of N->1 collapsing. Exactly one
// request leads the engine execution; every other either joins it in flight
// (collapse hit) or arrives after the result landed (cache hit).
// The probe runs as its own set of fresh tenants (full bursts) so leftover
// quota debt from the overload phase cannot shed probe requests.
func fireProbe(client *http.Client, base string, src uint64, n, tenants int) []loadResult {
	results := make([]loadResult, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		tenant := fmt.Sprintf("probe-%d", i%tenants)
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = fireOne(client, base, src, tenant)
		}()
	}
	wg.Wait()
	return results
}

// summarizePhase folds client observations and server-side counter deltas
// into the phase report.
func summarizePhase(name, distName string, offered float64, dur time.Duration,
	results []loadResult, before, after obs.Snapshot) loadPhaseReport {
	rep := loadPhaseReport{
		Name: name, Distribution: distName,
		OfferedQPS: offered, DurationS: dur.Seconds(), Sent: len(results),
	}
	var servedLats []time.Duration
	for _, r := range results {
		switch {
		case r.err != nil:
			rep.ClientErrors++
		case r.status == http.StatusOK:
			rep.Served2xx++
			servedLats = append(servedLats, r.latency)
		case r.status == http.StatusTooManyRequests && r.code == codeQuotaExceeded:
			rep.Shed429Quota++
			if !r.retryAfter {
				rep.MissingRetryAfter++
			}
		case r.status == http.StatusTooManyRequests:
			rep.Shed429Engine++
			if !r.retryAfter {
				rep.MissingRetryAfter++
			}
		case r.status >= 500:
			rep.Status5xx++
		default:
			rep.Status4xxOther++
		}
	}
	rep.AdmittedQPS = float64(rep.Served2xx) / dur.Seconds()
	if rep.Sent > 0 {
		rep.ShedRate = float64(rep.Shed429Quota+rep.Shed429Engine) / float64(rep.Sent)
	}

	delta := func(name string) uint64 { return after.Counter(name) - before.Counter(name) }
	rep.CollapseLeaders = delta(obs.TrafficCollapseLeaders)
	rep.CollapseHits = delta(obs.TrafficCollapseHits)
	rep.CacheHits = delta(obs.TrafficCacheHits)
	rep.CacheMisses = delta(obs.TrafficCacheMisses)
	if total := rep.CacheHits + rep.CollapseHits + rep.CollapseLeaders; total > 0 {
		rep.AbsorbedRate = float64(rep.CacheHits+rep.CollapseHits) / float64(total)
	}

	hist := after.Histograms[obs.TrafficRequestNS].Sub(before.Histograms[obs.TrafficRequestNS])
	toMS := func(ns uint64) float64 { return float64(ns) / 1e6 }
	rep.P50MS = toMS(hist.Quantile(0.50))
	rep.P99MS = toMS(hist.Quantile(0.99))
	rep.P999MS = toMS(hist.Quantile(0.999))

	sort.Slice(servedLats, func(i, j int) bool { return servedLats[i] < servedLats[j] })
	rep.ClientP50MS = percentile(servedLats, 0.50)
	rep.ClientP99MS = percentile(servedLats, 0.99)
	rep.ClientMaxMS = percentile(servedLats, 1.0)
	return rep
}

// evalGates applies the acceptance gates to the three phases.
//
// p99 comparisons carry a relative epsilon: quantiles are the upper bounds
// of power-of-two histogram buckets (2^i - 1 ns), so "within factor 4"
// legitimately lands on bucket pairs whose bound ratio exceeds 4 by up to
// ~2^-26 relative (for ns-scale latencies), plus ns->ms division rounding.
// 1e-6 covers both and sits far below the 2x bucket granularity.
func evalGates(uniform, hotkey, overload, probe loadPhaseReport, p99Factor float64) []loadGate {
	const eps = 1 + 1e-6
	var gates []loadGate
	add := func(name string, pass bool, detail string) {
		gates = append(gates, loadGate{Name: name, Pass: pass, Detail: detail})
	}
	for _, ph := range []loadPhaseReport{uniform, hotkey, overload} {
		add("zero_5xx_"+ph.Name, ph.Status5xx == 0 && ph.ClientErrors == 0,
			fmt.Sprintf("5xx=%d client_errors=%d", ph.Status5xx, ph.ClientErrors))
	}
	// Collapsing only has the cold window to act in — once the leader's
	// result lands in the cache, later identical requests are cache hits,
	// not collapse joins — so the zipf phases produce joins by chance while
	// the probe produces them by construction. The gate counts all of them.
	add("hotkey_collapse_hits", hotkey.CollapseHits+overload.CollapseHits+probe.CollapseHits > 0,
		fmt.Sprintf("collapse_hits hotkey=%d overload=%d probe=%d",
			hotkey.CollapseHits, overload.CollapseHits, probe.CollapseHits))
	add("probe_single_leader", probe.CollapseLeaders == 1 && probe.Served2xx == probe.Sent,
		fmt.Sprintf("leaders=%d collapsed=%d cached=%d served=%d/%d", probe.CollapseLeaders,
			probe.CollapseHits, probe.CacheHits, probe.Served2xx, probe.Sent))
	add("hotkey_absorbed_50pct", hotkey.AbsorbedRate >= 0.5,
		fmt.Sprintf("absorbed=%.1f%% (cache=%d collapse=%d executed=%d)",
			hotkey.AbsorbedRate*100, hotkey.CacheHits, hotkey.CollapseHits, hotkey.CollapseLeaders))
	add("hotkey_p99_flat", hotkey.P99MS <= uniform.P99MS*p99Factor*eps,
		fmt.Sprintf("hotkey p99 %.2fms vs uniform p99 %.2fms (factor %.1f)",
			hotkey.P99MS, uniform.P99MS, p99Factor))
	add("overload_sheds", overload.Shed429Quota > 0,
		fmt.Sprintf("quota sheds=%d (rate %.1f%%)", overload.Shed429Quota, overload.ShedRate*100))
	add("overload_retry_after", overload.MissingRetryAfter == 0,
		fmt.Sprintf("429s missing Retry-After: %d", overload.MissingRetryAfter))
	add("overload_p99_flat", overload.P99MS <= uniform.P99MS*p99Factor*eps,
		fmt.Sprintf("overload admitted p99 %.2fms vs uniform p99 %.2fms (factor %.1f)",
			overload.P99MS, uniform.P99MS, p99Factor))
	return gates
}

func loadbench(o *options) error {
	fmt.Printf("havoqd: loadbench: building scale-%d %s graph on %d ranks (topo %s)\n",
		o.scale, o.model, o.ranks, o.topo)
	g, err := buildGraph(o)
	if err != nil {
		return err
	}
	e, err := g.StartEngine(havoqgt.EngineOptions{
		MaxInFlight: o.maxInFlight,
		MaxQueue:    o.maxQueue,
		StepBatch:   o.stepBatch,
	})
	if err != nil {
		return err
	}

	// Quota sized from the offered load: at 1x each tenant stays inside its
	// bucket (50% headroom over its arrival share), at -load-overload x it
	// blows through and sheds. Explicit -tenant-rate would defeat the
	// experiment's geometry, so the harness derives its own.
	tenants := o.loadTenants
	if tenants < 1 {
		tenants = 1
	}
	tenantRate := math.Ceil(1.5 * o.loadQPS / float64(tenants))
	// Burst = one second of rate: enough headroom for Poisson clumping at
	// 1x, without a phase-start token dump large enough to queue the engine
	// past the flat-p99 gate under overload.
	tenantBurst := tenantRate
	tc := traffic.Config{
		Quota:      traffic.QuotaConfig{Rate: tenantRate, Burst: tenantBurst, Tick: o.quotaTick},
		CacheBytes: o.cacheBytes,
	}
	s := newServer(g, e, tc)
	s.retries = o.queryRetries
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.close()
		e.Close()
		return err
	}
	s.addr = ln.Addr().String()
	srv := &http.Server{Handler: s.handler(), ReadHeaderTimeout: 5 * time.Second, WriteTimeout: 5 * time.Minute}
	go srv.Serve(ln)
	defer func() {
		srv.Close()
		s.close()
		e.Close()
	}()

	base := "http://" + ln.Addr().String()
	client := &http.Client{
		Timeout: 2 * time.Minute,
		Transport: &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 1024,
		},
	}

	n := g.NumVertices()
	arrivals := rand.New(rand.NewSource(1))
	// The overload phase keeps the hotkey phase's warm cache (warm=true, no
	// version bump): overload arrives while serving, not after an
	// invalidation, and the front door's job is to shed the excess while the
	// cache keeps absorbing the skew it already learned.
	phases := []struct {
		name     string
		distName string
		dist     sourceDist
		qps      float64
		warm     bool
	}{
		{"uniform", "uniform", &uniformDist{r: rand.New(rand.NewSource(2)), n: n}, o.loadQPS, false},
		{"hotkey", fmt.Sprintf("zipf(s=%.2f)", o.loadZipfS),
			&zipfDist{z: rand.NewZipf(rand.New(rand.NewSource(3)), o.loadZipfS, 1, n-1)}, o.loadQPS, false},
		{"overload", fmt.Sprintf("zipf(s=%.2f)", o.loadZipfS),
			&zipfDist{z: rand.NewZipf(rand.New(rand.NewSource(4)), o.loadZipfS, 1, n-1)}, o.loadQPS * o.loadOverload, true},
	}

	rep := loadReport{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Scale:     o.scale, Ranks: o.ranks,
		Vertices: g.NumVertices(), Edges: g.NumEdges(),
		QPS: o.loadQPS, PhaseS: o.loadDuration.Seconds(), ZipfS: o.loadZipfS,
		Overload: o.loadOverload, Tenants: tenants,
		TenantRate: tenantRate, TenantBurst: tenantBurst,
		CacheBytes: o.cacheBytes, MaxInFlight: o.maxInFlight, MaxQueue: o.maxQueue,
	}

	reg := e.Metrics()
	for _, ph := range phases {
		// Cold-start phases bump the graph version, invalidating every
		// cached result from the previous phase (the invalidation contract
		// the streaming-ingest path will rely on).
		if !ph.warm {
			g.BumpVersion()
		}
		fmt.Printf("havoqd: loadbench: phase %-8s offered %.0f q/s for %v (%s sources, %d tenants, quota %g q/s each)\n",
			ph.name, ph.qps, o.loadDuration, ph.distName, tenants, tenantRate)
		before := reg.Snapshot()
		start := time.Now()
		results := firePhase(client, base, ph.dist, ph.qps, o.loadDuration, tenants, arrivals)
		elapsed := time.Since(start)
		after := reg.Snapshot()
		phr := summarizePhase(ph.name, ph.distName, ph.qps, elapsed, results, before, after)
		rep.Phases = append(rep.Phases, phr)
		fmt.Printf("havoqd: loadbench:   sent=%d 2xx=%d shed(quota)=%d shed(engine)=%d 5xx=%d | absorbed %.1f%% (cache=%d collapse=%d exec=%d) | p50=%.2fms p99=%.2fms p999=%.2fms\n",
			phr.Sent, phr.Served2xx, phr.Shed429Quota, phr.Shed429Engine, phr.Status5xx,
			phr.AbsorbedRate*100, phr.CacheHits, phr.CollapseHits, phr.CollapseLeaders,
			phr.P50MS, phr.P99MS, phr.P999MS)
	}

	// Deterministic collapse probe: cold cache, one key, 16 simultaneous
	// requests. One leader executes; the rest collapse into it or hit the
	// cache behind it.
	g.BumpVersion()
	// Clamp the probe to what the fresh tenants' bursts can admit, so a
	// low-rate configuration cannot shed probe requests.
	probeN := 16
	if cap := tenants * int(tenantBurst); cap < probeN {
		probeN = cap
	}
	if probeN < 2 {
		probeN = 2
	}
	fmt.Printf("havoqd: loadbench: phase probe    %d simultaneous requests, one key, cold cache\n", probeN)
	before := reg.Snapshot()
	start := time.Now()
	probeResults := fireProbe(client, base, 0, probeN, tenants)
	probeElapsed := time.Since(start)
	after := reg.Snapshot()
	probe := summarizePhase("collapse_probe", "single key x16", 0, probeElapsed, probeResults, before, after)
	rep.Phases = append(rep.Phases, probe)
	fmt.Printf("havoqd: loadbench:   sent=%d 2xx=%d | leaders=%d collapsed=%d cached=%d\n",
		probe.Sent, probe.Served2xx, probe.CollapseLeaders, probe.CollapseHits, probe.CacheHits)

	rep.Gates = evalGates(rep.Phases[0], rep.Phases[1], rep.Phases[2], probe, o.loadP99Factor)
	failed := 0
	for _, gt := range rep.Gates {
		mark := "ok"
		if !gt.Pass {
			mark = "FAIL"
			failed++
		}
		fmt.Printf("havoqd: loadbench: gate %-24s %-4s %s\n", gt.Name, mark, gt.Detail)
	}

	f, err := os.Create(o.loadOut)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("havoqd: loadbench: wrote %s\n", o.loadOut)
	if failed > 0 && o.loadGates {
		return fmt.Errorf("loadbench: %d/%d acceptance gates failed", failed, len(rep.Gates))
	}
	return nil
}
