package main

// Memory-budget sweep (-ooc): run the selfbench workload at a descending
// series of resident fractions — the paper's semi-external question, asked of
// the serving engine: how does throughput degrade as the DRAM budget shrinks
// below the edge data, and how much of the device latency does asynchronous
// visitor parking hide?
//
// For each fraction the workload runs twice from a cold cache:
//
//   - serialized: the classic one-collective-phase path. Cache misses are
//     taken synchronously inside the traversal — the latency-not-hidden
//     baseline.
//   - concurrent: through the engine. A visit whose adjacency page is absent
//     parks on the page while demand fetches overlap on the device queue and
//     resident work (this query's and every other in-flight query's) keeps
//     executing.
//
// Every phase's result hash must equal the fully-resident baseline — the
// sweep doubles as an out-of-core correctness check — and fractions below 1
// must actually fault (misses > 0, hit rate > 0), so the sweep fails loudly
// if the budget plumbing silently no-ops. TEPS is computed from the visitor
// push counters (one push per traversed edge).

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"havoqgt"
)

// memConfig assembles the facade memory config from the command line.
func memConfig(o *options, fraction float64) havoqgt.MemoryConfig {
	return havoqgt.MemoryConfig{
		ResidentFraction: fraction,
		PageSize:         o.memPage,
		DeviceLatency:    o.memLatency,
		DeviceQueueDepth: o.memQueueDepth,
		Dir:              o.memDir,
	}
}

// oocCounters is one phase's out-of-core activity, deltas over the phase.
type oocCounters struct {
	TEPS            float64 `json:"teps"`
	EdgesPushed     uint64  `json:"edges_pushed"`
	Parked          uint64  `json:"parked"`
	Unparked        uint64  `json:"unparked"`
	CacheHits       uint64  `json:"cache_hits"`
	CacheMisses     uint64  `json:"cache_misses"`
	CacheStalls     uint64  `json:"cache_stalls"`
	HitRate         float64 `json:"hit_rate"`
	ReadMB          float64 `json:"read_mb"`
	DemandFetches   uint64  `json:"demand_fetches"`
	Prefetches      uint64  `json:"prefetches"`
	PrefetchDropped uint64  `json:"prefetch_dropped"`
	Retries         uint64  `json:"retries"`
	Exhausted       uint64  `json:"exhausted"`
}

// oocPhase is one (fraction, execution mode) measurement.
type oocPhase struct {
	benchPhase
	OOC oocCounters `json:"ooc"`
}

// oocEntry is one resident fraction's serialized-vs-concurrent comparison.
type oocEntry struct {
	Fraction   float64  `json:"resident_fraction"`
	Serialized oocPhase `json:"serialized"`
	Concurrent oocPhase `json:"concurrent"`
	// Speedup is concurrent QPS over serialized QPS at this budget: the
	// latency-hiding payoff, growing as the budget shrinks.
	Speedup float64 `json:"speedup"`
}

type oocReport struct {
	Timestamp     string     `json:"timestamp"`
	Scale         uint       `json:"scale"`
	Ranks         int        `json:"ranks"`
	Topology      string     `json:"topology"`
	Vertices      uint64     `json:"vertices"`
	Edges         uint64     `json:"edges"`
	Workload      string     `json:"workload"`
	Device        string     `json:"device"`
	DeviceLatency string     `json:"device_latency"`
	Sweep         []oocEntry `json:"sweep"`
}

// parseFractions parses the -ooc-fractions list, descending order preserved.
func parseFractions(s string) ([]float64, error) {
	var out []float64
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		f, err := strconv.ParseFloat(tok, 64)
		if err != nil || f <= 0 || f > 1 {
			return nil, fmt.Errorf("bad resident fraction %q (want a number in (0,1])", tok)
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-ooc-fractions is empty")
	}
	return out, nil
}

// oocPhaseRun executes the workload once — serialized or concurrent — at the
// given resident fraction, from a cold cache. fraction 1 means fully
// resident: no budget is set and the OOC counters stay zero.
func oocPhaseRun(g *havoqgt.Graph, work []benchQuery, o *options, fraction float64, concurrent bool) (oocPhase, error) {
	if fraction < 1 {
		if err := g.SetMemoryBudget(memConfig(o, fraction)); err != nil {
			return oocPhase{}, err
		}
	}
	tc0 := g.TraversalCounters()
	var (
		ph  benchPhase
		err error
	)
	if concurrent {
		ph, err = runConcurrent(g, work, havoqgt.EngineOptions{
			MaxInFlight: o.maxInFlight,
			MaxQueue:    len(work),
			StepBatch:   o.stepBatch,
		})
	} else {
		ph, err = runSerialized(g, work)
	}
	tc1 := g.TraversalCounters()
	ms := g.MemoryStats()
	if fraction < 1 {
		if rerr := g.ResetMemoryBudget(); rerr != nil && err == nil {
			err = rerr
		}
	}
	if err != nil {
		return oocPhase{}, err
	}
	pushed := tc1.Pushed - tc0.Pushed
	out := oocPhase{benchPhase: ph}
	out.OOC = oocCounters{
		TEPS:            float64(pushed) / (ph.WallMS / 1e3),
		EdgesPushed:     pushed,
		Parked:          tc1.Parked - tc0.Parked,
		Unparked:        tc1.Unparked - tc0.Unparked,
		Retries:         ms.Retries,
		Exhausted:       ms.Exhausted,
		DemandFetches:   ms.DemandFetches,
		Prefetches:      ms.Prefetches,
		PrefetchDropped: ms.PrefetchDropped,
	}
	if fraction < 1 {
		// The budget was fresh for this phase, so absolute cache stats are
		// already per-phase deltas.
		out.OOC.CacheHits = ms.CacheHits
		out.OOC.CacheMisses = ms.CacheMisses
		out.OOC.CacheStalls = ms.CacheStalls
		out.OOC.HitRate = ms.HitRate
		out.OOC.ReadMB = float64(ms.BytesRead) / (1 << 20)
	}
	return out, nil
}

// oocCompare runs both modes at one fraction and validates the phase hashes
// against the fully-resident baseline (0 = establish the baseline).
func oocCompare(g *havoqgt.Graph, work []benchQuery, o *options, fraction float64, baseline uint64) (oocEntry, error) {
	ser, err := oocPhaseRun(g, work, o, fraction, false)
	if err != nil {
		return oocEntry{}, fmt.Errorf("fraction %g serialized: %w", fraction, err)
	}
	con, err := oocPhaseRun(g, work, o, fraction, true)
	if err != nil {
		return oocEntry{}, fmt.Errorf("fraction %g concurrent: %w", fraction, err)
	}
	if ser.ResultHash != con.ResultHash {
		return oocEntry{}, fmt.Errorf("fraction %g: serialized hash %d != concurrent hash %d",
			fraction, ser.ResultHash, con.ResultHash)
	}
	if baseline != 0 && ser.ResultHash != baseline {
		return oocEntry{}, fmt.Errorf("fraction %g: hash %d != fully-resident baseline %d",
			fraction, ser.ResultHash, baseline)
	}
	if fraction < 1 {
		for name, ph := range map[string]oocPhase{"serialized": ser, "concurrent": con} {
			if ph.OOC.CacheMisses == 0 {
				return oocEntry{}, fmt.Errorf("fraction %g %s: no cache misses — the budget is not taking effect", fraction, name)
			}
			if ph.OOC.CacheHits == 0 {
				return oocEntry{}, fmt.Errorf("fraction %g %s: zero hit rate — the cache is not retaining pages", fraction, name)
			}
		}
	}
	return oocEntry{
		Fraction:   fraction,
		Serialized: ser,
		Concurrent: con,
		Speedup:    con.QPS / ser.QPS,
	}, nil
}

func oocbench(o *options) error {
	fractions, err := parseFractions(o.oocFractions)
	if err != nil {
		return err
	}
	fmt.Printf("havoqd: ooc: building scale-%d %s graph on %d ranks (topo %s)\n",
		o.scale, o.model, o.ranks, o.topo)
	g, err := buildGraph(o)
	if err != nil {
		return err
	}
	work := benchWorkload(g.NumVertices(), o.benchQueries)

	devLatency := o.memLatency
	if devLatency == 0 {
		devLatency = 25 * time.Microsecond
	}
	device := "simulated NVRAM"
	if o.memDir != "" {
		device = "file-backed (" + o.memDir + ")"
	}

	var sweep []oocEntry
	var baseline uint64
	for _, f := range fractions {
		entry, err := oocCompare(g, work, o, f, baseline)
		if err != nil {
			return err
		}
		if baseline == 0 {
			baseline = entry.Serialized.ResultHash
		}
		fmt.Printf("havoqd: ooc: fraction %-7g serialized %8.1f q/s (hit %5.1f%%)  concurrent %8.1f q/s (hit %5.1f%%)  speedup %.2fx\n",
			f, entry.Serialized.QPS, 100*entry.Serialized.OOC.HitRate,
			entry.Concurrent.QPS, 100*entry.Concurrent.OOC.HitRate, entry.Speedup)
		sweep = append(sweep, entry)
	}

	rep := oocReport{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Scale:     o.scale,
		Ranks:     o.ranks,
		Topology:  o.topo,
		Vertices:  g.NumVertices(),
		Edges:     g.NumEdges(),
		Workload: fmt.Sprintf("%d queries: bfs/sssp from splitmix64 random sources + 1 cc + 1 kcore(k=2)",
			len(work)),
		Device:        device,
		DeviceLatency: devLatency.String(),
		Sweep:         sweep,
	}
	f, err := os.Create(o.oocOut)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("havoqd: ooc: wrote %s\n", o.oocOut)
	return nil
}
