package main

// HTTP layer of havoqd: a thin JSON front end over the multi-query engine,
// fronted by the traffic plane (internal/traffic). Every POST /query passes,
// in order: per-tenant quota admission (batched token buckets), the
// versioned result cache, and hot-query collapsing — so under the hot-key
// skew that scale-free graphs attract, most requests never reach the engine
// at all, and the ones that do are one execution shared by many clients.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"havoqgt"
	"havoqgt/internal/traffic"
)

// queryRequest is the POST /query body.
type queryRequest struct {
	// Algo selects the query: "bfs", "bfs_do" (direction-optimizing BFS,
	// identical levels), "sssp", "cc", "kcore", "pagerank", or "triangles".
	Algo string `json:"algo"`
	// Source is the start vertex for bfs, bfs_do, and sssp.
	Source uint64 `json:"source"`
	// WeightSeed keys the synthesized edge weights for sssp.
	WeightSeed uint64 `json:"weight_seed"`
	// K is the core number for kcore (>= 1).
	K uint32 `json:"k"`
	// Iters is the pagerank iteration count (0 = default).
	Iters uint32 `json:"iters"`
	// DeadlineMS cancels the query if it is still running after this many
	// milliseconds (0 = server default).
	DeadlineMS int64 `json:"deadline_ms"`
	// Full includes the per-vertex result arrays in the response; by default
	// only the scalar summary is returned.
	Full bool `json:"full"`
}

// queryResponse is the POST /query reply. Scalar summary fields are always
// present for the relevant algorithm; the per-vertex arrays only with
// "full": true. Collapsed and cached requests share the executing request's
// response verbatim (including ID and ElapsedMS) — the X-Traffic-Outcome
// header says which path served it.
type queryResponse struct {
	ID        uint32  `json:"id"`
	Algo      string  `json:"algo"`
	ElapsedMS float64 `json:"elapsed_ms"`

	Reached    uint64 `json:"reached,omitempty"`
	MaxLevel   uint32 `json:"max_level,omitempty"`
	MaxDist    uint64 `json:"max_dist,omitempty"`
	Components uint64 `json:"components,omitempty"`
	CoreSize   uint64 `json:"core_size,omitempty"`
	Triangles  uint64 `json:"triangles,omitempty"`
	Iters      uint32 `json:"iters,omitempty"`

	Levels    []uint32         `json:"levels,omitempty"`
	Distances []uint64         `json:"distances,omitempty"`
	Parents   []havoqgt.Vertex `json:"parents,omitempty"`
	Labels    []havoqgt.Vertex `json:"labels,omitempty"`
	InCore    []bool           `json:"in_core,omitempty"`
	Ranks     []uint64         `json:"ranks,omitempty"`
}

// Machine-readable error codes: every 4xx/5xx body carries one, so load
// clients can distinguish shed (back off and retry) from failed (don't).
const (
	codeBadRequest       = "bad_request"    // malformed body or invalid parameters
	codeBodyTooLarge     = "body_too_large" // request body over maxQueryBody
	codeMethodNotAllowed = "method_not_allowed"
	codeQuotaExceeded    = "quota_exceeded"    // tenant over its token bucket: retryable
	codeEngineOverloaded = "engine_overloaded" // engine admission queue full: retryable
	codeTimeout          = "timeout"           // deadline exhausted (after server-side retries): retryable
	codeClusterDegraded  = "cluster_degraded"  // a cluster worker is dead or healing: retryable
	codeInternal         = "internal"
)

// errorResponse is the structured JSON body of every 4xx/5xx response.
type errorResponse struct {
	// Code is the machine-readable error class (the code* constants).
	Code string `json:"code"`
	// Reason is the human-readable detail.
	Reason string `json:"reason"`
	// RetryAfterSec, when nonzero, is the suggested client back-off in
	// seconds; it mirrors the Retry-After header and marks the error
	// retryable (shed, not failed).
	RetryAfterSec int `json:"retry_after_sec,omitempty"`
}

// Error keeps errorResponse printable in tests and logs.
func (e errorResponse) Error() string { return e.Code + ": " + e.Reason }

// maxQueryBody caps the POST /query request body; the body is one small JSON
// object, so anything past this is a broken or abusive client.
const maxQueryBody = 1 << 20

// tenantHeader identifies the requesting tenant for quota accounting; the
// value is the tenant's API key. Authorization: Bearer <key> works too, and
// requests carrying neither share the "anonymous" bucket.
const tenantHeader = "X-Api-Key"

// anonTenant is the shared bucket for unidentified requests.
const anonTenant = "anonymous"

// server binds one resident graph + engine + traffic plane to the HTTP
// handlers.
type server struct {
	g *havoqgt.Graph
	e *havoqgt.Engine
	// plane is the front-door admission layer: tenant quotas, result cache,
	// hot-query collapsing. Reports into the engine's obs registry.
	plane *traffic.Plane
	// retries bounds the server-side degradation path: how many times a
	// deadline-expired query is resumed from its checkpoint (with a doubled
	// budget) before the client gets a 504.
	retries int
	// addr is the resolved listen address ("-addr :0" binds an ephemeral
	// port; this is where it actually landed).
	addr    string
	served  atomic.Uint64
	failed  atomic.Uint64
	shed    atomic.Uint64
	retried atomic.Uint64
	started time.Time
}

// newServer assembles the HTTP layer with a traffic plane built from tc.
// The plane registers its metrics in the engine's registry so /stats
// carries traffic.* next to engine.* and mailbox.*.
func newServer(g *havoqgt.Graph, e *havoqgt.Engine, tc traffic.Config) *server {
	if tc.Registry == nil {
		tc.Registry = e.Metrics()
	}
	return &server{g: g, e: e, plane: traffic.New(tc), retries: 2, started: time.Now()}
}

// close releases the traffic plane's background resources (quota refill
// ticker). Call after the HTTP server has stopped.
func (s *server) close() { s.plane.Close() }

// handler builds the route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeError emits the structured error body shared by every 4xx/5xx path.
// retryAfterSec > 0 also sets the Retry-After header.
func writeError(w http.ResponseWriter, status int, code, reason string, retryAfterSec int) {
	if retryAfterSec > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSec))
	}
	writeJSON(w, status, errorResponse{Code: code, Reason: reason, RetryAfterSec: retryAfterSec})
}

// tenantID resolves the requesting tenant from the API-key header (or an
// Authorization bearer token), falling back to the shared anonymous bucket.
func tenantID(r *http.Request) string {
	if k := r.Header.Get(tenantHeader); k != "" {
		return k
	}
	if auth := r.Header.Get("Authorization"); auth != "" {
		if tok, ok := strings.CutPrefix(auth, "Bearer "); ok && tok != "" {
			return tok
		}
	}
	return anonTenant
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":            true,
		"addr":          s.addr,
		"vertices":      s.g.NumVertices(),
		"edges":         s.g.NumEdges(),
		"ranks":         s.g.Ranks(),
		"graph_version": s.g.Version(),
		"uptime_ms":     time.Since(s.started).Milliseconds(),
		"served":        s.served.Load(),
		"failed":        s.failed.Load(),
		"shed":          s.shed.Load(),
		"retried":       s.retried.Load(),
	})
}

// handleStats serves the machine's full observability snapshot (transport,
// mailbox, termination, visitor-queue, engine, and traffic counters) as
// JSON. The snapshot is taken first — one point-in-time, per-cell-atomic
// copy of the registry — and then marshaled to a buffer, so a slow client
// or an encoding failure can never ship a half-written document or a 200
// status glued to a truncated body.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.e.Metrics().Snapshot()
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		s.failed.Add(1)
		writeError(w, http.StatusInternalServerError, codeInternal, err.Error(), 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

// validate rejects malformed query parameters before any quota or engine
// work is attempted.
func (s *server) validate(req *queryRequest) error {
	switch req.Algo {
	case "bfs", "bfs_do", "sssp":
		if req.Source >= s.g.NumVertices() {
			return fmt.Errorf("source %d out of range (n=%d)", req.Source, s.g.NumVertices())
		}
	case "cc", "triangles":
	case "kcore":
		if req.K < 1 {
			return fmt.Errorf("kcore needs k >= 1")
		}
	case "pagerank":
		if req.Iters > havoqgt.MaxPageRankIters {
			return fmt.Errorf("pagerank iters %d exceeds max %d", req.Iters, havoqgt.MaxPageRankIters)
		}
	default:
		return fmt.Errorf("unknown algo %q (want bfs|bfs_do|sssp|cc|kcore|pagerank|triangles)", req.Algo)
	}
	return nil
}

// submit hands a validated request to the engine.
func (s *server) submit(req *queryRequest) (*havoqgt.Query, error) {
	return s.e.SubmitQuery(havoqgt.QuerySpec{
		Algo:       req.Algo,
		Source:     havoqgt.Vertex(req.Source),
		WeightSeed: req.WeightSeed,
		K:          req.K,
		Iters:      req.Iters,
		Deadline:   time.Duration(req.DeadlineMS) * time.Millisecond,
	})
}

// collapseKey is the identity under which identical requests collapse and
// results cache: every request field that shapes the answer, plus the graph
// version so a snapshot swap invalidates by key mismatch.
func (s *server) collapseKey(req *queryRequest) traffic.Key {
	return traffic.Key{
		Algo:       req.Algo,
		Source:     req.Source,
		WeightSeed: req.WeightSeed,
		K:          req.K,
		Iters:      req.Iters,
		Full:       req.Full,
		DeadlineMS: req.DeadlineMS,
		Version:    s.g.Version(),
	}
}

// execute runs one engine execution for req to completion and returns the
// serialized 200 response body. ctx is the collapse group's context: it
// cancels only when every client waiting on this execution has gone away,
// at which point the traversal is cancelled to free the message plane.
func (s *server) execute(ctx context.Context, req *queryRequest) ([]byte, error) {
	q, err := s.submit(req)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	retries := s.retries
	var res *havoqgt.QueryResult
	for {
		select {
		case <-q.Done():
		case <-ctx.Done():
			// Every waiter abandoned: stop the query so it stops consuming
			// the message plane (its in-flight visitors drain without being
			// applied), and wait for that drain.
			q.Cancel()
			<-q.Done()
		}
		res, err = q.Wait() // non-blocking: Done is closed
		if err == nil {
			break
		}
		// Degradation path: a deadline-expired attempt is retried
		// server-side from its checkpoint with a doubled budget — the
		// traversal progress already paid for is kept — bounded by
		// s.retries and only while someone is still waiting.
		if errors.Is(err, havoqgt.ErrQueryTimeout) && retries > 0 && ctx.Err() == nil {
			if nq, rerr := q.Resume(0); rerr == nil {
				retries--
				s.retried.Add(1)
				q = nq
				continue
			}
		}
		return nil, err
	}

	resp := queryResponse{ID: q.ID(), Algo: req.Algo, ElapsedMS: float64(time.Since(start).Microseconds()) / 1e3}
	switch {
	case res.BFS != nil:
		resp.Reached = res.BFS.Reached
		resp.MaxLevel = res.BFS.MaxLevel
		if req.Full {
			resp.Levels, resp.Parents = res.BFS.Levels, res.BFS.Parents
		}
	case res.SSSP != nil:
		for _, d := range res.SSSP.Distances {
			if d != havoqgt.UnreachedDistance {
				resp.Reached++
				if d > resp.MaxDist {
					resp.MaxDist = d
				}
			}
		}
		if req.Full {
			resp.Distances, resp.Parents = res.SSSP.Distances, res.SSSP.Parents
		}
	case res.Components != nil:
		resp.Components = res.Components.Count
		if req.Full {
			resp.Labels = res.Components.Labels
		}
	case res.KCore != nil:
		resp.CoreSize = res.KCore.CoreSize
		if req.Full {
			resp.InCore = res.KCore.InCore
		}
	case res.PageRank != nil:
		resp.Iters = res.PageRank.Iters
		if req.Full {
			resp.Ranks = res.PageRank.Ranks
		}
	case res.Triangles != nil:
		resp.Triangles = res.Triangles.Count
	}
	return json.Marshal(resp)
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "POST only", 0)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxQueryBody)
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.failed.Add(1)
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge,
				fmt.Sprintf("request body over %d bytes", tooBig.Limit), 0)
			return
		}
		writeError(w, http.StatusBadRequest, codeBadRequest, "bad request body: "+err.Error(), 0)
		return
	}

	// Front door, step 1: tenant quota. One atomic decrement on the
	// tenant's token bucket; a shed costs no engine work at all.
	if err := s.plane.Admit(tenantID(r)); err != nil {
		s.shed.Add(1)
		retryAfter := 1
		var qe *traffic.ErrQuotaExceeded
		if errors.As(err, &qe) {
			if sec := int(qe.RetryAfter / time.Second); sec > retryAfter {
				retryAfter = sec
			}
		}
		writeError(w, http.StatusTooManyRequests, codeQuotaExceeded, err.Error(), retryAfter)
		return
	}

	if err := s.validate(&req); err != nil {
		s.failed.Add(1)
		writeError(w, http.StatusBadRequest, codeBadRequest, err.Error(), 0)
		return
	}

	// Steps 2+3: result cache, then hot-query collapsing. The execution
	// runs detached — this handler's disconnect only cancels it if no
	// other client is collapsed onto it.
	start := time.Now()
	body, outcome, err := s.plane.Do(r.Context(), s.collapseKey(&req), func(ctx context.Context) ([]byte, error) {
		return s.execute(ctx, &req)
	})
	if err != nil {
		if r.Context().Err() != nil {
			// This client is gone; nothing useful can be written.
			s.failed.Add(1)
			return
		}
		s.failed.Add(1)
		switch {
		case errors.Is(err, havoqgt.ErrQueryRejected):
			// Backpressure: the engine's wait queue is full.
			writeError(w, http.StatusTooManyRequests, codeEngineOverloaded, err.Error(), 1)
		case errors.Is(err, havoqgt.ErrQueryCancelled):
			// Deadline exhaustion (even after retries) or all waiters gone.
			writeError(w, http.StatusGatewayTimeout, codeTimeout,
				"query cancelled (deadline or client disconnect)", 1)
		default:
			writeError(w, http.StatusInternalServerError, codeInternal, err.Error(), 0)
		}
		return
	}

	s.served.Add(1)
	s.plane.ObserveLatency(time.Since(start))
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Traffic-Outcome", outcome.String())
	w.Header().Set("X-Graph-Version", strconv.FormatUint(s.g.Version(), 10))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}
