package main

// HTTP layer of havoqd: a thin JSON front end over the multi-query engine.
// One resident partitioned graph serves every request; concurrent POST
// /query calls become interleaved tagged traversals on the shared message
// plane rather than queued collective phases.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"havoqgt"
)

// queryRequest is the POST /query body.
type queryRequest struct {
	// Algo selects the traversal: "bfs", "sssp", "cc", or "kcore".
	Algo string `json:"algo"`
	// Source is the start vertex for bfs and sssp.
	Source uint64 `json:"source"`
	// WeightSeed keys the synthesized edge weights for sssp.
	WeightSeed uint64 `json:"weight_seed"`
	// K is the core number for kcore (>= 1).
	K uint32 `json:"k"`
	// DeadlineMS cancels the query if it is still running after this many
	// milliseconds (0 = server default).
	DeadlineMS int64 `json:"deadline_ms"`
	// Full includes the per-vertex result arrays in the response; by default
	// only the scalar summary is returned.
	Full bool `json:"full"`
}

// queryResponse is the POST /query reply. Scalar summary fields are always
// present for the relevant algorithm; the per-vertex arrays only with
// "full": true.
type queryResponse struct {
	ID        uint32  `json:"id"`
	Algo      string  `json:"algo"`
	ElapsedMS float64 `json:"elapsed_ms"`

	Reached    uint64 `json:"reached,omitempty"`
	MaxLevel   uint32 `json:"max_level,omitempty"`
	MaxDist    uint64 `json:"max_dist,omitempty"`
	Components uint64 `json:"components,omitempty"`
	CoreSize   uint64 `json:"core_size,omitempty"`

	Levels    []uint32         `json:"levels,omitempty"`
	Distances []uint64         `json:"distances,omitempty"`
	Parents   []havoqgt.Vertex `json:"parents,omitempty"`
	Labels    []havoqgt.Vertex `json:"labels,omitempty"`
	InCore    []bool           `json:"in_core,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// maxQueryBody caps the POST /query request body; the body is one small JSON
// object, so anything past this is a broken or abusive client.
const maxQueryBody = 1 << 20

// server binds one resident graph + engine to the HTTP handlers.
type server struct {
	g *havoqgt.Graph
	e *havoqgt.Engine
	// retries bounds the server-side degradation path: how many times a
	// deadline-expired query is resumed from its checkpoint (with a doubled
	// budget) before the client gets a 504.
	retries int
	// addr is the resolved listen address ("-addr :0" binds an ephemeral
	// port; this is where it actually landed).
	addr    string
	served  atomic.Uint64
	failed  atomic.Uint64
	retried atomic.Uint64
	started time.Time
}

func newServer(g *havoqgt.Graph, e *havoqgt.Engine) *server {
	return &server{g: g, e: e, retries: 2, started: time.Now()}
}

// handler builds the route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":        true,
		"addr":      s.addr,
		"vertices":  s.g.NumVertices(),
		"edges":     s.g.NumEdges(),
		"ranks":     s.g.Ranks(),
		"uptime_ms": time.Since(s.started).Milliseconds(),
		"served":    s.served.Load(),
		"failed":    s.failed.Load(),
		"retried":   s.retried.Load(),
	})
}

// handleStats streams the machine's full observability snapshot (transport,
// mailbox, termination, visitor-queue, and engine counters) as JSON.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.e.WriteStats(w); err != nil {
		s.failed.Add(1)
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

// submit validates the request and hands it to the engine.
func (s *server) submit(req *queryRequest) (*havoqgt.Query, error) {
	switch req.Algo {
	case "bfs", "sssp":
		if req.Source >= s.g.NumVertices() {
			return nil, fmt.Errorf("source %d out of range (n=%d)", req.Source, s.g.NumVertices())
		}
	case "cc":
	case "kcore":
		if req.K < 1 {
			return nil, fmt.Errorf("kcore needs k >= 1")
		}
	default:
		return nil, fmt.Errorf("unknown algo %q (want bfs|sssp|cc|kcore)", req.Algo)
	}
	if req.DeadlineMS > 0 {
		return s.e.SubmitWithDeadline(req.Algo, havoqgt.Vertex(req.Source), req.WeightSeed, req.K,
			time.Duration(req.DeadlineMS)*time.Millisecond)
	}
	switch req.Algo {
	case "bfs":
		return s.e.SubmitBFS(havoqgt.Vertex(req.Source))
	case "sssp":
		return s.e.SubmitSSSP(havoqgt.Vertex(req.Source), req.WeightSeed)
	case "cc":
		return s.e.SubmitComponents()
	default:
		return s.e.SubmitKCore(req.K)
	}
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxQueryBody)
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.failed.Add(1)
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorResponse{Error: fmt.Sprintf("request body over %d bytes", tooBig.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	q, err := s.submit(&req)
	if err != nil {
		s.failed.Add(1)
		switch {
		case errors.Is(err, havoqgt.ErrQueryRejected):
			// Backpressure: the wait queue is full. Tell the client to retry.
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
		default:
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		}
		return
	}

	ctx := r.Context()
	start := time.Now()
	retries := s.retries
	var res *havoqgt.QueryResult
	for {
		// Wait for the current attempt, or for the client going away — in
		// which case cancel the query so it stops consuming the message
		// plane (its in-flight visitors drain without being applied) and
		// wait for that drain.
		select {
		case <-q.Done():
		case <-ctx.Done():
			q.Cancel()
			<-q.Done()
		}
		res, err = q.Wait() // non-blocking: Done is closed
		if err == nil {
			break
		}
		// Degradation path: a deadline-expired attempt is retried
		// server-side from its checkpoint with a doubled budget — the
		// traversal progress already paid for is kept — bounded by
		// s.retries and only while the client is still connected.
		if errors.Is(err, havoqgt.ErrQueryTimeout) && retries > 0 && ctx.Err() == nil {
			if nq, rerr := q.Resume(0); rerr == nil {
				retries--
				s.retried.Add(1)
				q = nq
				continue
			}
		}
		s.failed.Add(1)
		if errors.Is(err, havoqgt.ErrQueryCancelled) {
			// Deadline exhaustion (even after retries) or client disconnect.
			// Retry-After marks it retryable for clients still listening.
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "query cancelled (deadline or client disconnect)"})
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}

	resp := queryResponse{ID: q.ID(), Algo: req.Algo, ElapsedMS: float64(time.Since(start).Microseconds()) / 1e3}
	switch {
	case res.BFS != nil:
		resp.Reached = res.BFS.Reached
		resp.MaxLevel = res.BFS.MaxLevel
		if req.Full {
			resp.Levels, resp.Parents = res.BFS.Levels, res.BFS.Parents
		}
	case res.SSSP != nil:
		for _, d := range res.SSSP.Distances {
			if d != havoqgt.UnreachedDistance {
				resp.Reached++
				if d > resp.MaxDist {
					resp.MaxDist = d
				}
			}
		}
		if req.Full {
			resp.Distances, resp.Parents = res.SSSP.Distances, res.SSSP.Parents
		}
	case res.Components != nil:
		resp.Components = res.Components.Count
		if req.Full {
			resp.Labels = res.Components.Labels
		}
	case res.KCore != nil:
		resp.CoreSize = res.KCore.CoreSize
		if req.Full {
			resp.InCore = res.KCore.InCore
		}
	}
	s.served.Add(1)
	writeJSON(w, http.StatusOK, resp)
}
