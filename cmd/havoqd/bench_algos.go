package main

// Algorithm-layer benchmark (`make bench-algos`): per-algorithm before/after
// comparison of the ISSUE-10 speed & breadth pass, written as BENCH_algos.json.
//
// For each algorithm the same query set runs in a "before" variant (the seed
// implementation) and an "after" variant (this pass's implementation), each
// measured serialized (classic one-collective-phase-at-a-time, no engine) and
// concurrent (all queries in flight through the multi-query engine):
//
//   - bfs:       top-down-only traversal  vs  direction-optimizing (Beamer)
//     switching. Results must be hash-identical — DO-BFS changes the
//     schedule, never the levels.
//   - sssp:      binary-heap local scheduler (DisableBucketOrder) vs
//     bucketed delta-stepping calendar. Distances must be hash-identical.
//   - pagerank:  offline harness (exclusive collective, serialized only — the
//     seed had no engine path) vs first-class engine query type.
//   - triangles: same promotion, offline exclusive vs engine query type.
//
// Gates (-algo-gates, on by default, enforced by CI): every before/after pair
// hash-identical, and direction-optimizing BFS strictly faster than top-down
// on the serialized phase — the low-diameter scale-free regime this graph
// (RMAT) is generated in is exactly where the heuristic must win.

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"havoqgt"
	"havoqgt/internal/cluster"
)

type algoVariant struct {
	Variant    string     `json:"variant"`
	Serialized benchPhase `json:"serialized"`
	// Concurrent is zero-valued (Queries == 0) for variants with no engine
	// path: the seed served pagerank/triangles offline only.
	Concurrent benchPhase `json:"concurrent"`
}

type algoComparison struct {
	Algo    string      `json:"algo"`
	Queries int         `json:"queries"`
	Before  algoVariant `json:"before"`
	After   algoVariant `json:"after"`
	// SerializedSpeedup is before/after wall time on the serialized phase;
	// ConcurrentSpeedup compares the concurrent phases, falling back to
	// before-serialized when the before variant had no concurrent path.
	SerializedSpeedup float64 `json:"serialized_speedup"`
	ConcurrentSpeedup float64 `json:"concurrent_speedup"`
	HashMatch         bool    `json:"hash_match"`
}

type algoBenchReport struct {
	Timestamp string           `json:"timestamp"`
	Scale     uint             `json:"scale"`
	Ranks     int              `json:"ranks"`
	Topology  string           `json:"topology"`
	Vertices  uint64           `json:"vertices"`
	Edges     uint64           `json:"edges"`
	Gates     bool             `json:"gates_enforced"`
	Algos     []algoComparison `json:"algos"`
}

// Query counts per algorithm: enough sources to average over the scale-free
// degree skew for the point queries, fewer repetitions for the whole-graph
// kernels (triangle counting touches every wedge; two runs suffice to show
// the engine interleaving them).
const (
	algoBFSSources  = 8
	algoSSSPSources = 6
	algoPRRuns      = 4
	algoPRIters     = 10
	algoTriRuns     = 2
)

// bfsWork builds the BFS query set; dirOpt selects the traversal variant.
func bfsWork(n uint64, dirOpt bool) []benchQuery {
	w := make([]benchQuery, algoBFSSources)
	for i := range w {
		src := havoqgt.Vertex(splitmix64(uint64(i)*0x51ED+7) % n)
		w[i] = benchQuery{name: "bfs", run: func(g *havoqgt.Graph) (uint64, error) {
			var res *havoqgt.BFSResult
			var err error
			if dirOpt {
				res, err = g.BFSDirOpt(src)
			} else {
				res, err = g.BFS(src)
			}
			if err != nil {
				return 0, err
			}
			return cluster.HashU32s(res.Levels), nil
		}}
	}
	return w
}

// ssspWork builds the SSSP query set; the scheduler variant is a property of
// the graph it runs on (Options.DisableBucketOrder), not of the query.
func ssspWork(n uint64) []benchQuery {
	w := make([]benchQuery, algoSSSPSources)
	for i := range w {
		src := havoqgt.Vertex(splitmix64(uint64(i)*0xD317+3) % n)
		seed := uint64(i + 1)
		w[i] = benchQuery{name: "sssp", run: func(g *havoqgt.Graph) (uint64, error) {
			res, err := g.ShortestPaths(src, seed)
			if err != nil {
				return 0, err
			}
			return cluster.HashU64s(res.Distances), nil
		}}
	}
	return w
}

func pagerankWork() []benchQuery {
	w := make([]benchQuery, algoPRRuns)
	for i := range w {
		w[i] = benchQuery{name: "pagerank", run: func(g *havoqgt.Graph) (uint64, error) {
			res, err := g.PageRank(algoPRIters)
			if err != nil {
				return 0, err
			}
			return cluster.HashU64s(res.Ranks), nil
		}}
	}
	return w
}

func trianglesWork() []benchQuery {
	w := make([]benchQuery, algoTriRuns)
	for i := range w {
		w[i] = benchQuery{name: "triangles", run: func(g *havoqgt.Graph) (uint64, error) {
			return g.CountTriangles()
		}}
	}
	return w
}

// runEngineSerialized executes the workload one query at a time through an
// engine — the after-variant's serialized regime, isolating the engine's
// per-query overhead from its interleaving benefit.
func runEngineSerialized(g *havoqgt.Graph, work []benchQuery, opts havoqgt.EngineOptions) (benchPhase, error) {
	e, err := g.StartEngine(opts)
	if err != nil {
		return benchPhase{}, err
	}
	lats := make([]time.Duration, len(work))
	var hash uint64
	start := time.Now()
	for i, q := range work {
		t := time.Now()
		h, err := q.run(g)
		if err != nil {
			e.Close()
			return benchPhase{}, fmt.Errorf("engine-serialized %s #%d: %w", q.name, i, err)
		}
		lats[i] = time.Since(t)
		hash += h
	}
	wall := time.Since(start)
	if err := e.Close(); err != nil {
		return benchPhase{}, err
	}
	return summarize(lats, wall, 1, hash), nil
}

// measureVariant runs one variant's serialized and concurrent phases.
func measureVariant(g *havoqgt.Graph, name string, work []benchQuery, o *options) (algoVariant, error) {
	ser, err := runSerialized(g, work)
	if err != nil {
		return algoVariant{}, fmt.Errorf("%s serialized: %w", name, err)
	}
	con, err := runConcurrent(g, work, havoqgt.EngineOptions{
		MaxInFlight: o.maxInFlight,
		MaxQueue:    len(work),
		StepBatch:   o.stepBatch,
	})
	if err != nil {
		return algoVariant{}, fmt.Errorf("%s concurrent: %w", name, err)
	}
	return algoVariant{Variant: name, Serialized: ser, Concurrent: con}, nil
}

// hashesAgree checks that every measured phase of the pair produced the same
// summed result hash (phases with zero queries are skipped).
func hashesAgree(before, after algoVariant) bool {
	want := before.Serialized.ResultHash
	for _, ph := range []benchPhase{before.Concurrent, after.Serialized, after.Concurrent} {
		if ph.Queries > 0 && ph.ResultHash != want {
			return false
		}
	}
	return true
}

func finishComparison(algo string, queries int, before, after algoVariant) algoComparison {
	c := algoComparison{Algo: algo, Queries: queries, Before: before, After: after,
		HashMatch: hashesAgree(before, after)}
	if after.Serialized.Queries > 0 && after.Serialized.WallMS > 0 {
		c.SerializedSpeedup = before.Serialized.WallMS / after.Serialized.WallMS
	}
	if after.Concurrent.WallMS > 0 {
		base := before.Concurrent.WallMS
		if before.Concurrent.Queries == 0 {
			base = before.Serialized.WallMS
		}
		c.ConcurrentSpeedup = base / after.Concurrent.WallMS
	}
	return c
}

func algobench(o *options) error {
	fmt.Printf("havoqd: algobench: building scale-%d %s graph on %d ranks (topo %s)\n",
		o.scale, o.model, o.ranks, o.topo)
	g, err := buildGraph(o)
	if err != nil {
		return err
	}
	// The sssp before-variant is a scheduler property of the graph config, so
	// it needs its own (identical, same seed) build with the heap forced.
	heapOpts := havoqgt.Options{Ranks: o.ranks, Topology: o.topo, Simplify: o.simplify,
		DisableBucketOrder: true}
	gHeap, err := havoqgt.GenerateRMAT(o.scale, o.seed, heapOpts)
	if err != nil {
		return err
	}
	n := g.NumVertices()

	rep := algoBenchReport{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Scale:     o.scale,
		Ranks:     o.ranks,
		Topology:  o.topo,
		Vertices:  n,
		Edges:     g.NumEdges(),
		Gates:     o.algoGates,
	}

	// --- bfs: top-down vs direction-optimizing, same graph ---
	fmt.Printf("havoqd: algobench: bfs (%d sources): top_down vs direction_optimizing\n", algoBFSSources)
	bfsBefore, err := measureVariant(g, "top_down", bfsWork(n, false), o)
	if err != nil {
		return err
	}
	bfsAfter, err := measureVariant(g, "direction_optimizing", bfsWork(n, true), o)
	if err != nil {
		return err
	}
	rep.Algos = append(rep.Algos, finishComparison("bfs", algoBFSSources, bfsBefore, bfsAfter))

	// --- sssp: binary heap vs delta-stepping calendar ---
	fmt.Printf("havoqd: algobench: sssp (%d sources): binary_heap vs delta_stepping\n", algoSSSPSources)
	ssspBefore, err := measureVariant(gHeap, "binary_heap", ssspWork(n), o)
	if err != nil {
		return err
	}
	ssspAfter, err := measureVariant(g, "delta_stepping", ssspWork(n), o)
	if err != nil {
		return err
	}
	rep.Algos = append(rep.Algos, finishComparison("sssp", algoSSSPSources, ssspBefore, ssspAfter))

	// --- pagerank: offline exclusive (seed) vs engine query type ---
	fmt.Printf("havoqd: algobench: pagerank (%d runs, %d iters): offline vs engine query\n", algoPRRuns, algoPRIters)
	prSer, err := runSerialized(g, pagerankWork())
	if err != nil {
		return fmt.Errorf("pagerank offline: %w", err)
	}
	prBefore := algoVariant{Variant: "offline_exclusive", Serialized: prSer}
	prAfter, err := measureEngineVariant(g, "engine_query", pagerankWork(), o)
	if err != nil {
		return err
	}
	rep.Algos = append(rep.Algos, finishComparison("pagerank", algoPRRuns, prBefore, prAfter))

	// --- triangles: offline exclusive (seed) vs engine query type ---
	fmt.Printf("havoqd: algobench: triangles (%d runs): offline vs engine query\n", algoTriRuns)
	triSer, err := runSerialized(g, trianglesWork())
	if err != nil {
		return fmt.Errorf("triangles offline: %w", err)
	}
	triBefore := algoVariant{Variant: "offline_exclusive", Serialized: triSer}
	triAfter, err := measureEngineVariant(g, "engine_query", trianglesWork(), o)
	if err != nil {
		return err
	}
	rep.Algos = append(rep.Algos, finishComparison("triangles", algoTriRuns, triBefore, triAfter))

	for _, c := range rep.Algos {
		fmt.Printf("havoqd: algobench:   %-9s %s -> %s: serialized %.2fx, concurrent %.2fx, hash_match=%v\n",
			c.Algo, c.Before.Variant, c.After.Variant, c.SerializedSpeedup, c.ConcurrentSpeedup, c.HashMatch)
	}

	out := o.algosOut
	if out == "" {
		out = "BENCH_algos.json"
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("havoqd: algobench: wrote %s\n", out)

	if o.algoGates {
		return algoGates(&rep)
	}
	return nil
}

// measureEngineVariant measures an engine-served variant: serialized through
// the engine one query at a time, then all at once.
func measureEngineVariant(g *havoqgt.Graph, name string, work []benchQuery, o *options) (algoVariant, error) {
	opts := havoqgt.EngineOptions{MaxInFlight: o.maxInFlight, MaxQueue: len(work), StepBatch: o.stepBatch}
	ser, err := runEngineSerialized(g, work, opts)
	if err != nil {
		return algoVariant{}, fmt.Errorf("%s serialized: %w", name, err)
	}
	con, err := runConcurrent(g, work, opts)
	if err != nil {
		return algoVariant{}, fmt.Errorf("%s concurrent: %w", name, err)
	}
	return algoVariant{Variant: name, Serialized: ser, Concurrent: con}, nil
}

// algoGates enforces the pass/fail acceptance gates CI runs with.
func algoGates(rep *algoBenchReport) error {
	var failures []string
	for _, c := range rep.Algos {
		if !c.HashMatch {
			failures = append(failures, fmt.Sprintf(
				"%s: %s and %s results diverge (before hash %d)", c.Algo,
				c.Before.Variant, c.After.Variant, c.Before.Serialized.ResultHash))
		}
		if c.Algo == "bfs" && c.SerializedSpeedup <= 1.0 {
			failures = append(failures, fmt.Sprintf(
				"bfs: direction-optimizing speedup %.3fx over top-down (serialized) — must beat 1.0x in the low-diameter regime",
				c.SerializedSpeedup))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Printf("havoqd: algobench: GATE FAIL %s\n", f)
		}
		return fmt.Errorf("algobench: %d gate violation(s)", len(failures))
	}
	fmt.Println("havoqd: algobench: all gates passed")
	return nil
}
