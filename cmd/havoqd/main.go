// Command havoqd serves graph queries over HTTP from one resident
// partitioned graph. Instead of paying partitioning and machine start-up per
// traversal, the graph is built (or loaded) once, a multi-query engine is
// attached, and every POST /query becomes an independently tagged traversal
// interleaved with all others on the shared message plane.
//
// Usage:
//
//	havoqd -model rmat -scale 14 -ranks 8 -addr :8642   # serve until SIGTERM
//	havoqd -in graph.hvqg -ranks 8                      # serve a graph file
//	havoqd -smoke -scale 12 -ranks 8 -queries 50        # end-to-end smoke run
//	havoqd -selfbench -scale 14 -ranks 8                # write BENCH_engine.json
//	havoqd -ooc -scale 14 -ranks 8                      # memory-budget sweep -> BENCH_ooc.json
//	havoqd -mem-budget 0.125 -scale 14 -ranks 8         # serve with 1/8 of edges resident
//
// Endpoints:
//
//	POST /query   {"algo":"bfs|sssp|cc|kcore","source":0,"weight_seed":1,"k":2,
//	               "deadline_ms":0,"full":false}
//	GET  /healthz liveness + serve counters
//	GET  /stats   full observability snapshot (transport/mailbox/termination/engine)
//
// On SIGTERM or SIGINT the server stops accepting connections, drains the
// in-flight queries, closes the engine, and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"havoqgt"
	"havoqgt/internal/graphio"
	"havoqgt/internal/traffic"
)

type options struct {
	addr string

	in         string
	model      string
	scale      uint
	seed       uint64
	edgefactor uint64

	ranks    int
	topo     string
	simplify bool

	maxInFlight  int
	maxQueue     int
	stepBatch    int
	deadline     time.Duration
	queryRetries int
	reliable     bool

	// Front-door traffic plane (internal/traffic; see server.go).
	tenantRate  float64
	tenantBurst float64
	quotaTick   time.Duration
	cacheBytes  int64

	smoke   bool
	queries int

	// Open-loop load harness (see loadbench.go).
	loadBench     bool
	loadOut       string
	loadQPS       float64
	loadDuration  time.Duration
	loadZipfS     float64
	loadOverload  float64
	loadTenants   int
	loadP99Factor float64
	loadGates     bool

	simLatency time.Duration

	selfbench    bool
	benchOut     string
	benchQueries int
	benchLatency time.Duration

	// Algorithm-layer before/after benchmark (see bench_algos.go).
	algoBench bool
	algosOut  string
	algoGates bool

	// Out-of-core serving (see bench_ooc.go and the facade's MemoryConfig).
	memBudget     float64
	memPage       int
	memLatency    time.Duration
	memQueueDepth int
	memDir        string
	oocBench      bool
	oocFractions  string
	oocOut        string

	// Cluster modes (see cluster.go).
	coordinator    bool
	join           string
	workers        int
	slot           int
	meshAddr       string
	clusterMode    bool
	clusterAddr    string
	clusterTimeout time.Duration

	// Cluster self-healing (see cluster.go and internal/cluster).
	heartbeat  time.Duration
	liveness   time.Duration
	joinRetry  time.Duration
	chaosMode  bool
	chaosKills int
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	var o options
	fs := flag.NewFlagSet("havoqd", flag.ContinueOnError)
	fs.StringVar(&o.addr, "addr", ":8642", "listen address")
	fs.StringVar(&o.in, "in", "", "graph file to serve (.hvqg); empty generates -model instead")
	fs.StringVar(&o.model, "model", "rmat", "synthetic model when -in is empty (rmat only)")
	fs.UintVar(&o.scale, "scale", 14, "log2 vertex count for the generated graph")
	fs.Uint64Var(&o.seed, "seed", 1, "generator seed")
	fs.Uint64Var(&o.edgefactor, "edgefactor", 16, "edges per vertex (rmat)")
	fs.IntVar(&o.ranks, "ranks", 8, "number of simulated ranks")
	fs.StringVar(&o.topo, "topo", "2d", "mailbox routing topology: 1d | 2d | 3d")
	fs.BoolVar(&o.simplify, "simplify", true, "remove self loops and duplicate edges (required for kcore queries)")
	fs.IntVar(&o.maxInFlight, "max-in-flight", 8, "concurrently executing queries")
	fs.IntVar(&o.maxQueue, "max-queue", 64, "queries waiting for an in-flight slot before rejection")
	fs.IntVar(&o.stepBatch, "step-batch", 0, "visitors per query per scheduling slice (0 = engine default)")
	fs.DurationVar(&o.deadline, "deadline", 0, "default per-query deadline (0 = none)")
	fs.IntVar(&o.queryRetries, "query-retries", 2, "server-side checkpoint-resume retries for deadline-expired queries")
	fs.BoolVar(&o.reliable, "reliable", false, "run the engine's message plane with acked, retransmitted delivery")
	fs.Float64Var(&o.tenantRate, "tenant-rate", 200, "sustained per-tenant request rate (req/s) for quota admission")
	fs.Float64Var(&o.tenantBurst, "tenant-burst", 0, "per-tenant burst capacity (0 = 2x tenant-rate)")
	fs.DurationVar(&o.quotaTick, "quota-tick", 100*time.Millisecond, "batched quota refill period")
	fs.Int64Var(&o.cacheBytes, "cache-bytes", 0, "result cache capacity in bytes (0 = 64 MiB, negative disables)")
	fs.BoolVar(&o.smoke, "smoke", false, "start the server, fire -queries concurrent queries at it, verify, exit")
	fs.IntVar(&o.queries, "queries", 50, "concurrent queries for -smoke")
	fs.BoolVar(&o.loadBench, "loadbench", false, "run the open-loop traffic benchmark (hotkey vs uniform vs overload) and exit")
	fs.StringVar(&o.loadOut, "load-out", "BENCH_traffic.json", "benchmark output file for -loadbench")
	fs.Float64Var(&o.loadQPS, "load-qps", 80, "offered request rate per phase for -loadbench (overload phase multiplies it)")
	fs.DurationVar(&o.loadDuration, "load-duration", 8*time.Second, "duration of each -loadbench phase")
	fs.Float64Var(&o.loadZipfS, "load-zipf-s", 1.25, "Zipf exponent for the hot-key source distribution (>= 1.0)")
	fs.Float64Var(&o.loadOverload, "load-overload", 10, "offered-rate multiplier for the overload phase")
	fs.IntVar(&o.loadTenants, "load-tenants", 4, "distinct tenants the load harness spreads requests across")
	fs.Float64Var(&o.loadP99Factor, "load-p99-factor", 4, "gate: admitted p99 under overload/hotkey must stay within this factor of the uniform baseline")
	fs.BoolVar(&o.loadGates, "load-gates", true, "enforce the loadbench acceptance gates (exit non-zero on violation)")
	fs.DurationVar(&o.simLatency, "sim-latency", 0, "simulated per-message interconnect latency (0 = instantaneous transport)")
	fs.BoolVar(&o.selfbench, "selfbench", false, "run the serialized-vs-concurrent benchmark and exit")
	fs.StringVar(&o.benchOut, "bench-out", "", "benchmark output file for -selfbench (default BENCH_engine.json, BENCH_net.json with -cluster)")
	fs.IntVar(&o.benchQueries, "bench-queries", 48, "workload size for -selfbench")
	fs.DurationVar(&o.benchLatency, "bench-latency", 3*time.Millisecond, "modeled interconnect latency for the -selfbench latency regime")
	fs.BoolVar(&o.algoBench, "algobench", false, "run the per-algorithm before/after benchmark (BENCH_algos.json) and exit")
	fs.StringVar(&o.algosOut, "algos-out", "BENCH_algos.json", "benchmark output file for -algobench")
	fs.BoolVar(&o.algoGates, "algo-gates", true, "enforce the algobench acceptance gates (hash-identical results, DO-BFS beats top-down; exit non-zero on violation)")
	fs.Float64Var(&o.memBudget, "mem-budget", 1, "resident fraction of adjacency data kept in DRAM, (0,1]; <1 serves out of core")
	fs.IntVar(&o.memPage, "mem-page", 0, "out-of-core cache page size in bytes (0 = 4096)")
	fs.DurationVar(&o.memLatency, "mem-latency", 0, "modeled NVRAM read latency for out-of-core mode (0 = 25µs)")
	fs.IntVar(&o.memQueueDepth, "mem-queue-depth", 0, "modeled NVRAM queue depth for out-of-core mode (0 = 64)")
	fs.StringVar(&o.memDir, "mem-dir", "", "back out-of-core adjacency with real files under this directory instead of simulated NVRAM")
	fs.BoolVar(&o.oocBench, "ooc", false, "run the memory-budget sweep benchmark (TEPS and hit rate vs resident fraction) and exit")
	fs.StringVar(&o.oocFractions, "ooc-fractions", "1,0.5,0.25,0.125,0.0625,0.03125", "comma-separated resident fractions for -ooc")
	fs.StringVar(&o.oocOut, "ooc-out", "BENCH_ooc.json", "benchmark output file for -ooc")
	fs.BoolVar(&o.coordinator, "coordinator", false, "run as a cluster coordinator: wait for -workers joins, then serve queries")
	fs.StringVar(&o.join, "join", "", "run as a cluster worker joining the coordinator at this address")
	fs.IntVar(&o.workers, "workers", 4, "worker processes in the cluster")
	fs.IntVar(&o.slot, "slot", -1, "explicit worker slot for -join (-1 = coordinator-assigned)")
	fs.StringVar(&o.meshAddr, "mesh-addr", "", "data-plane listen address for -join (default 127.0.0.1:0)")
	fs.BoolVar(&o.clusterMode, "cluster", false, "with -smoke or -selfbench: spawn a real multi-process cluster on localhost")
	fs.StringVar(&o.clusterAddr, "cluster-addr", "127.0.0.1:7642", "control-plane listen address for -coordinator")
	fs.DurationVar(&o.clusterTimeout, "cluster-timeout", 5*time.Minute, "cluster formation bound; also the -cluster watchdog abort")
	fs.DurationVar(&o.heartbeat, "heartbeat", 500*time.Millisecond, "coordinator ping spacing on worker control connections")
	fs.DurationVar(&o.liveness, "liveness", 5*time.Second, "worker silence after which the coordinator declares it dead (min 2x -heartbeat)")
	fs.DurationVar(&o.joinRetry, "join-retry", 0, "with -join: keep retrying a refused join for this long (a restarted worker must out-wait the failure detector); also re-join after eviction")
	fs.BoolVar(&o.chaosMode, "chaos", false, "with -cluster: kill -9 workers mid-query and verify typed failure, re-join, and hash-identical recovery")
	fs.IntVar(&o.chaosKills, "chaos-kills", 2, "kill/heal cycles for -chaos")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	var err error
	switch {
	case o.join != "":
		err = runClusterWorker(&o)
	case o.coordinator:
		err = runClusterCoordinator(&o)
	case o.oocBench:
		err = oocbench(&o)
	case o.loadBench:
		err = loadbench(&o)
	case o.algoBench:
		err = algobench(&o)
	case o.chaosMode && o.clusterMode:
		err = clusterChaos(&o)
	case o.selfbench && o.clusterMode:
		err = clusterBench(&o)
	case o.smoke && o.clusterMode:
		err = clusterSmoke(&o)
	default:
		err = serve(&o)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "havoqd: %v\n", err)
		return 1
	}
	return 0
}

// trafficConfig assembles the front-door plane's configuration from flags.
func trafficConfig(o *options) traffic.Config {
	return traffic.Config{
		Quota: traffic.QuotaConfig{
			Rate:  o.tenantRate,
			Burst: o.tenantBurst,
			Tick:  o.quotaTick,
		},
		CacheBytes: o.cacheBytes,
	}
}

// buildGraph loads or generates the resident graph.
func buildGraph(o *options) (*havoqgt.Graph, error) {
	opts := havoqgt.Options{Ranks: o.ranks, Topology: o.topo, Simplify: o.simplify}
	if o.in != "" {
		h, edges, err := graphio.ReadFile(o.in)
		if err != nil {
			return nil, err
		}
		opts.Undirect = true
		return havoqgt.NewGraph(edges, h.NumVertices, opts)
	}
	if o.model != "rmat" {
		return nil, fmt.Errorf("unknown model %q", o.model)
	}
	return havoqgt.GenerateRMAT(o.scale, o.seed, opts)
}

func serve(o *options) error {
	if o.selfbench {
		return selfbench(o)
	}

	start := time.Now()
	g, err := buildGraph(o)
	if err != nil {
		return err
	}
	if o.simLatency > 0 {
		g.SetSimLatency(o.simLatency)
	}
	if o.memBudget < 1 {
		if err := g.SetMemoryBudget(memConfig(o, o.memBudget)); err != nil {
			return err
		}
		fmt.Printf("havoqd: out-of-core: resident fraction %.4g (device latency %v)\n",
			o.memBudget, o.memLatency)
	}
	e, err := g.StartEngine(havoqgt.EngineOptions{
		MaxInFlight:     o.maxInFlight,
		MaxQueue:        o.maxQueue,
		StepBatch:       o.stepBatch,
		DefaultDeadline: o.deadline,
		Reliable:        o.reliable,
	})
	if err != nil {
		return err
	}
	fmt.Printf("havoqd: graph ready in %v: vertices=%d edges=%d ranks=%d topo=%s\n",
		time.Since(start).Round(time.Millisecond), g.NumVertices(), g.NumEdges(), g.Ranks(), o.topo)

	s := newServer(g, e, trafficConfig(o))
	s.retries = o.queryRetries
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		s.close()
		e.Close()
		return err
	}
	s.addr = ln.Addr().String()
	// Hardened server limits: a stalled or malicious client must not pin a
	// connection (and its handler goroutine) forever. WriteTimeout bounds the
	// whole handler, so it must cover the slowest legitimate query including
	// the server-side retry budget; 5 minutes is far past any deadline the
	// degradation path grants.
	srv := &http.Server{
		Handler:           s.handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 16,
	}

	if o.smoke {
		return smoke(o, s, srv, ln, e)
	}

	// Serve until SIGTERM/SIGINT, then drain gracefully: stop accepting,
	// let in-flight handlers (and so in-flight queries) finish, close the
	// engine.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Printf("havoqd: listening on %s (max-in-flight=%d max-queue=%d)\n", ln.Addr(), o.maxInFlight, o.maxQueue)

	select {
	case err := <-errc:
		s.close()
		e.Close()
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("havoqd: signal received; draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		s.close()
		e.Close()
		return fmt.Errorf("drain: %w", err)
	}
	s.close()
	if err := e.Close(); err != nil {
		return err
	}
	fmt.Printf("havoqd: drained; served=%d failed=%d shed=%d\n", s.served.Load(), s.failed.Load(), s.shed.Load())
	return nil
}
