// Command havoq is the command-line front end to the library: generate
// synthetic scale-free graphs, inspect their degree structure, and run the
// distributed asynchronous algorithms (BFS, k-core, triangle counting) over
// a simulated distributed machine — optionally with edge storage on
// simulated node-local NVRAM.
//
// Usage:
//
//	havoq generate -model rmat -scale 16 -seed 1 -out graph.hvqg
//	havoq stats    -in graph.hvqg
//	havoq bfs      -in graph.hvqg -p 8 -ghosts 256 -topo 2d [-nvram]
//	havoq kcore    -in graph.hvqg -p 8 -k 4,16,64
//	havoq tc       -in graph.hvqg -p 8
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"havoqgt/internal/algos/bfs"
	"havoqgt/internal/algos/cc"
	"havoqgt/internal/algos/kcore"
	"havoqgt/internal/algos/sssp"
	"havoqgt/internal/algos/triangle"
	"havoqgt/internal/core"
	"havoqgt/internal/extmem"
	"havoqgt/internal/generators"
	"havoqgt/internal/graph"
	"havoqgt/internal/graphio"
	"havoqgt/internal/harness"
	"havoqgt/internal/mailbox"
	"havoqgt/internal/partition"
	"havoqgt/internal/rt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// commands maps subcommand names to their implementations. Each takes its
// own argument slice and returns nil, a usageError (bad flags; exit 2), or a
// runtime error (exit 1).
var commands = map[string]func([]string) error{
	"generate": cmdGenerate,
	"stats":    cmdStats,
	"bfs":      cmdBFS,
	"kcore":    cmdKCore,
	"tc":       cmdTriangles,
	"sssp":     cmdSSSP,
	"cc":       cmdCC,
	"convert":  cmdConvert,
}

// run dispatches one invocation and returns the process exit code: 0 on
// success, 1 on a runtime failure, 2 on a usage error (unknown subcommand or
// bad flags, which also print usage).
func run(args []string, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "havoq: no command given")
		usage(stderr)
		return 2
	}
	name, rest := args[0], args[1:]
	switch name {
	case "help", "-h", "--help":
		usage(stderr)
		return 0
	}
	cmd, ok := commands[name]
	if !ok {
		fmt.Fprintf(stderr, "havoq: unknown command %q\n", name)
		usage(stderr)
		return 2
	}
	err := cmd(rest)
	switch {
	case err == nil:
		return 0
	case errors.Is(err, flag.ErrHelp):
		return 0
	default:
		fmt.Fprintf(stderr, "havoq: %v\n", err)
		var ue usageError
		if errors.As(err, &ue) {
			return 2
		}
		return 1
	}
}

// usageError marks a flag-parsing failure so run can exit 2 instead of 1.
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

// parseArgs parses a subcommand's flags, wrapping parse failures as usage
// errors and passing -h/--help through untouched.
func parseArgs(fs *flag.FlagSet, args []string) error {
	err := fs.Parse(args)
	if err == nil || errors.Is(err, flag.ErrHelp) {
		return err
	}
	return usageError{err}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `havoq — distributed scale-free graph toolkit

commands:
  generate   generate a synthetic graph (rmat | pa | sw) into a file
  stats      print degree statistics and hub census of a graph file
  bfs        run distributed asynchronous BFS
  kcore      run distributed k-core decomposition
  tc         run distributed triangle counting
  sssp       run distributed single-source shortest path
  cc         run distributed connected components
  convert    convert between text (.txt/.tsv) and binary (.hvqg) edge lists

run 'havoq <command> -h' for flags.
`)
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	model := fs.String("model", "rmat", "graph model: rmat | pa | sw")
	scale := fs.Uint("scale", 14, "log2 of the vertex count")
	edgefactor := fs.Uint64("edgefactor", 16, "edges per vertex (rmat)")
	m := fs.Uint64("m", 8, "edges per new vertex (pa)")
	k := fs.Uint64("k", 16, "ring degree (sw)")
	rewire := fs.Float64("rewire", 0, "rewire probability (pa, sw)")
	seed := fs.Uint64("seed", 1, "generator seed")
	out := fs.String("out", "graph.hvqg", "output file")
	if err := parseArgs(fs, args); err != nil {
		return err
	}

	n := uint64(1) << *scale
	var edges []graph.Edge
	switch *model {
	case "rmat":
		g := generators.NewGraph500(*scale, *seed)
		g.EdgeFactor = *edgefactor
		edges = g.Generate()
	case "pa":
		edges = generators.NewPA(n, *m, *rewire, *seed).Generate()
	case "sw":
		edges = generators.NewSmallWorld(n, *k, *rewire, *seed).Generate()
	default:
		return fmt.Errorf("unknown model %q", *model)
	}
	if err := graphio.WriteFile(*out, n, edges); err != nil {
		return err
	}
	fmt.Printf("wrote %s: model=%s vertices=%d directed-edges=%d\n", *out, *model, n, len(edges))
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	in := fs.String("in", "graph.hvqg", "input graph file")
	if err := parseArgs(fs, args); err != nil {
		return err
	}

	h, edges, err := graphio.ReadFile(*in)
	if err != nil {
		return err
	}
	und := graph.Undirect(edges)
	deg := graph.OutDegrees(und, h.NumVertices)
	c := graph.Census(deg)
	fmt.Printf("vertices:            %d\n", c.NumVertices)
	fmt.Printf("undirected edges:    %d\n", c.NumEdges/2)
	fmt.Printf("max degree:          %d\n", c.MaxDegree)
	fmt.Printf("edges on deg>=1k:    %d\n", c.EdgesDeg1K)
	fmt.Printf("edges on deg>=10k:   %d\n", c.EdgesDeg10K)
	return nil
}

// runOpts are the shared distributed-run flags.
type runOpts struct {
	in      string
	p       int
	topo    string
	oneD    bool
	nvram   bool
	cacheMB int
}

func addRunFlags(fs *flag.FlagSet) *runOpts {
	o := &runOpts{}
	fs.StringVar(&o.in, "in", "graph.hvqg", "input graph file")
	fs.IntVar(&o.p, "p", 8, "number of simulated ranks")
	fs.StringVar(&o.topo, "topo", "2d", "mailbox routing topology: 1d | 2d | 3d")
	fs.BoolVar(&o.oneD, "1d-partition", false, "use the 1D baseline partitioning instead of edge list partitioning")
	fs.BoolVar(&o.nvram, "nvram", false, "store edges on simulated node-local NVRAM")
	fs.IntVar(&o.cacheMB, "cache-mb", 4, "per-rank page cache budget in MiB (with -nvram)")
	return o
}

// setupRank loads a rank's chunk and builds its partition.
func (o *runOpts) setupRank(r *rt.Rank, simplify bool) (*partition.Part, *extmem.Store, error) {
	chunk, err := graphio.ReadChunk(o.in, r.Rank(), r.Size())
	if err != nil {
		return nil, nil, err
	}
	h, err := graphio.ReadHeader(o.in)
	if err != nil {
		return nil, nil, err
	}
	local := graph.Undirect(chunk)
	var part *partition.Part
	switch {
	case o.oneD:
		part, err = partition.Build1D(r, local, h.NumVertices)
	case simplify:
		part, err = partition.BuildEdgeListSimple(r, local, h.NumVertices)
	default:
		part, err = partition.BuildEdgeList(r, local, h.NumVertices)
	}
	if err != nil {
		return nil, nil, err
	}
	var store *extmem.Store
	if o.nvram {
		cfg := extmem.DefaultNVRAM()
		cfg.CacheBytes = o.cacheMB << 20
		store, err = extmem.ExternalizeCSR(part.CSR, cfg)
		if err != nil {
			return nil, nil, err
		}
	}
	return part, store, nil
}

func (o *runOpts) coreConfig(r *rt.Rank, part *partition.Part, ghosts int) (core.Config, error) {
	topo, err := mailbox.ByName(o.topo, r.Size())
	if err != nil {
		return core.Config{}, err
	}
	cfg := core.Config{Topology: topo}
	if ghosts > 0 {
		cfg.Ghosts = core.BuildGhostTable(part, ghosts)
	}
	return cfg, nil
}

func cmdBFS(args []string) error {
	fs := flag.NewFlagSet("bfs", flag.ContinueOnError)
	o := addRunFlags(fs)
	source := fs.Uint64("source", 0, "BFS source vertex")
	ghosts := fs.Int("ghosts", core.DefaultGhostsPerPartition, "ghost vertices per partition (0 disables)")
	validate := fs.Bool("validate", false, "run Graph500-style distributed validation after the traversal")
	if err := parseArgs(fs, args); err != nil {
		return err
	}

	var teps float64
	var reached, traversed uint64
	var depth uint32
	var elapsed time.Duration
	var hitRate float64 = -1
	var runErr error
	rt.NewMachine(o.p).Run(func(r *rt.Rank) {
		part, store, err := o.setupRank(r, false)
		if err != nil {
			panic(err)
		}
		cfg, err := o.coreConfig(r, part, *ghosts)
		if err != nil {
			panic(err)
		}
		if uint64(*source) >= part.NumVertices {
			if r.Rank() == 0 {
				runErr = fmt.Errorf("source %d out of range (n=%d)", *source, part.NumVertices)
			}
			return
		}
		r.Barrier()
		start := time.Now()
		res := bfs.Run(r, part, graph.Vertex(*source), cfg)
		r.Barrier()
		t := time.Since(start)
		edges := r.AllReduceU64(res.ReachedEdges(), rt.Sum) / 2
		verts := r.AllReduceU64(res.ReachedVertices(), rt.Sum)
		lvl := uint32(r.AllReduceU64(uint64(res.MaxLevel()), rt.Max))
		if *validate {
			if err := harness.ValidateBFS(r, part, res.BFS, graph.Vertex(*source)); err != nil {
				panic(fmt.Sprintf("validation failed: %v", err))
			}
		}
		var h, m uint64
		if store != nil {
			st := store.Cache().Stats()
			h, m = st.Hits, st.Misses
		}
		h = r.AllReduceU64(h, rt.Sum)
		m = r.AllReduceU64(m, rt.Sum)
		if r.Rank() == 0 {
			elapsed = t
			reached = verts
			traversed = edges
			depth = lvl
			teps = float64(edges) / t.Seconds()
			if o.nvram && h+m > 0 {
				hitRate = float64(h) / float64(h+m)
			}
		}
		if store != nil {
			store.Close()
		}
	})
	if runErr != nil {
		return runErr
	}
	fmt.Printf("bfs: source=%d ranks=%d topo=%s\n", *source, o.p, o.topo)
	fmt.Printf("  time:             %v\n", elapsed.Round(time.Microsecond))
	fmt.Printf("  reached vertices: %d\n", reached)
	fmt.Printf("  traversed edges:  %d\n", traversed)
	fmt.Printf("  bfs depth:        %d\n", depth)
	fmt.Printf("  TEPS:             %.3g\n", teps)
	if hitRate >= 0 {
		fmt.Printf("  cache hit rate:   %.1f%%\n", 100*hitRate)
	}
	if *validate {
		fmt.Println("  validation:       passed")
	}
	return nil
}

func cmdSSSP(args []string) error {
	fs := flag.NewFlagSet("sssp", flag.ContinueOnError)
	o := addRunFlags(fs)
	source := fs.Uint64("source", 0, "SSSP source vertex")
	ghosts := fs.Int("ghosts", core.DefaultGhostsPerPartition, "ghost vertices per partition (0 disables)")
	weightSeed := fs.Uint64("weight-seed", 1, "seed for the synthesized edge weights")
	if err := parseArgs(fs, args); err != nil {
		return err
	}

	var reached uint64
	var maxDist uint64
	var elapsed time.Duration
	rt.NewMachine(o.p).Run(func(r *rt.Rank) {
		part, store, err := o.setupRank(r, false)
		if err != nil {
			panic(err)
		}
		cfg, err := o.coreConfig(r, part, *ghosts)
		if err != nil {
			panic(err)
		}
		r.Barrier()
		start := time.Now()
		res := sssp.Run(r, part, graph.Vertex(*source), *weightSeed, cfg)
		r.Barrier()
		t := time.Since(start)
		lo, hi := part.Owners.MasterRange(part.Rank)
		var localReached, localMax uint64
		for v := lo; v < hi; v++ {
			i, _ := part.LocalIndex(graph.Vertex(v))
			if d := res.Dist[i]; d != sssp.Unreached {
				localReached++
				if d > localMax {
					localMax = d
				}
			}
		}
		gr := r.AllReduceU64(localReached, rt.Sum)
		gm := r.AllReduceU64(localMax, rt.Max)
		if r.Rank() == 0 {
			elapsed, reached, maxDist = t, gr, gm
		}
		if store != nil {
			store.Close()
		}
	})
	fmt.Printf("sssp: source=%d ranks=%d topo=%s\n", *source, o.p, o.topo)
	fmt.Printf("  time:             %v\n", elapsed.Round(time.Microsecond))
	fmt.Printf("  reached vertices: %d\n", reached)
	fmt.Printf("  max distance:     %d\n", maxDist)
	return nil
}

func cmdCC(args []string) error {
	fs := flag.NewFlagSet("cc", flag.ContinueOnError)
	o := addRunFlags(fs)
	ghosts := fs.Int("ghosts", core.DefaultGhostsPerPartition, "ghost vertices per partition (0 disables)")
	if err := parseArgs(fs, args); err != nil {
		return err
	}

	var components uint64
	var elapsed time.Duration
	rt.NewMachine(o.p).Run(func(r *rt.Rank) {
		part, store, err := o.setupRank(r, false)
		if err != nil {
			panic(err)
		}
		cfg, err := o.coreConfig(r, part, *ghosts)
		if err != nil {
			panic(err)
		}
		r.Barrier()
		start := time.Now()
		res := cc.Run(r, part, cfg)
		r.Barrier()
		t := time.Since(start)
		n := cc.NumComponents(r, res)
		if r.Rank() == 0 {
			elapsed, components = t, n
		}
		if store != nil {
			store.Close()
		}
	})
	fmt.Printf("cc: ranks=%d topo=%s\n", o.p, o.topo)
	fmt.Printf("  components: %d\n", components)
	fmt.Printf("  time:       %v\n", elapsed.Round(time.Microsecond))
	return nil
}

func cmdKCore(args []string) error {
	fs := flag.NewFlagSet("kcore", flag.ContinueOnError)
	o := addRunFlags(fs)
	ks := fs.String("k", "4,16,64", "comma-separated list of k values")
	if err := parseArgs(fs, args); err != nil {
		return err
	}

	var kvals []uint32
	for _, s := range strings.Split(*ks, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 32)
		if err != nil || v < 1 {
			return fmt.Errorf("bad k value %q", s)
		}
		kvals = append(kvals, uint32(v))
	}
	type row struct {
		k    uint32
		size uint64
		t    time.Duration
	}
	rows := make([]row, len(kvals))
	rt.NewMachine(o.p).Run(func(r *rt.Rank) {
		part, store, err := o.setupRank(r, true)
		if err != nil {
			panic(err)
		}
		for i, k := range kvals {
			cfg, err := o.coreConfig(r, part, 0)
			if err != nil {
				panic(err)
			}
			r.Barrier()
			start := time.Now()
			res := kcore.Run(r, part, k, cfg)
			r.Barrier()
			t := time.Since(start)
			size := kcore.GlobalCoreSize(r, res)
			if r.Rank() == 0 {
				rows[i] = row{k: k, size: size, t: t}
			}
		}
		if store != nil {
			store.Close()
		}
	})
	fmt.Printf("kcore: ranks=%d topo=%s\n", o.p, o.topo)
	for _, row := range rows {
		fmt.Printf("  k=%-5d core-size=%-10d time=%v\n", row.k, row.size, row.t.Round(time.Microsecond))
	}
	return nil
}

func cmdTriangles(args []string) error {
	fs := flag.NewFlagSet("tc", flag.ContinueOnError)
	o := addRunFlags(fs)
	if err := parseArgs(fs, args); err != nil {
		return err
	}

	var count uint64
	var elapsed time.Duration
	rt.NewMachine(o.p).Run(func(r *rt.Rank) {
		part, store, err := o.setupRank(r, true)
		if err != nil {
			panic(err)
		}
		cfg, err := o.coreConfig(r, part, 0)
		if err != nil {
			panic(err)
		}
		r.Barrier()
		start := time.Now()
		res := triangle.Run(r, part, cfg)
		r.Barrier()
		if r.Rank() == 0 {
			count = res.GlobalCount
			elapsed = time.Since(start)
		}
		if store != nil {
			store.Close()
		}
	})
	fmt.Printf("tc: ranks=%d topo=%s\n", o.p, o.topo)
	fmt.Printf("  triangles: %d\n", count)
	fmt.Printf("  time:      %v\n", elapsed.Round(time.Microsecond))
	return nil
}

// cmdConvert translates edge lists between the text and binary formats,
// choosing directions from the file extensions.
func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ContinueOnError)
	in := fs.String("in", "", "input edge list (.txt/.tsv/.csv or .hvqg)")
	out := fs.String("out", "", "output edge list (.txt/.tsv/.csv or .hvqg)")
	n := fs.Uint64("n", 0, "vertex count override (default: max id + 1 for text input)")
	if err := parseArgs(fs, args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("convert needs -in and -out")
	}

	isText := func(path string) bool {
		for _, ext := range []string{".txt", ".tsv", ".csv", ".el"} {
			if strings.HasSuffix(path, ext) {
				return true
			}
		}
		return false
	}

	var edges []graph.Edge
	var numVertices uint64
	if isText(*in) {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		edges, numVertices, err = graphio.ReadText(f)
		if err != nil {
			return err
		}
	} else {
		h, e, err := graphio.ReadFile(*in)
		if err != nil {
			return err
		}
		edges, numVertices = e, h.NumVertices
	}
	if *n > 0 {
		numVertices = *n
	}

	if isText(*out) {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := graphio.WriteText(f, edges); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	} else {
		if err := graphio.WriteFile(*out, numVertices, edges); err != nil {
			return err
		}
	}
	fmt.Printf("converted %s -> %s: %d vertices, %d edges\n", *in, *out, numVertices, len(edges))
	return nil
}
