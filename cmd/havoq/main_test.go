package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunErrorPaths is the table covering the dispatcher's exit-code
// contract: usage errors (unknown subcommand, bad flags, no command) exit 2
// and print usage, runtime failures exit 1, help exits 0.
func TestRunErrorPaths(t *testing.T) {
	graphPath := genGraph(t, "rmat")
	cases := []struct {
		name       string
		args       []string
		code       int
		wantStderr string // substring that must appear on stderr ("" = don't care)
	}{
		{"no command", nil, 2, "no command given"},
		{"unknown command", []string{"frobnicate"}, 2, "unknown command"},
		{"unknown command usage", []string{"frobnicate"}, 2, "commands:"},
		{"help", []string{"help"}, 0, "commands:"},
		{"help flag", []string{"--help"}, 0, "commands:"},
		{"subcommand help flag", []string{"bfs", "-h"}, 0, ""},
		{"bad flag", []string{"stats", "-no-such-flag"}, 2, "havoq:"},
		{"bad flag value", []string{"generate", "-scale", "banana"}, 2, "havoq:"},
		{"missing input file", []string{"stats", "-in", filepath.Join(t.TempDir(), "missing.hvqg")}, 1, "havoq:"},
		{"unknown model", []string{"generate", "-model", "zzz", "-out", filepath.Join(t.TempDir(), "x.hvqg")}, 1, "unknown model"},
		{"convert missing out", []string{"convert", "-in", "x.txt"}, 1, "-out"},
		{"bad k", []string{"kcore", "-in", graphPath, "-k", "0"}, 1, "bad k"},
		{"valid stats", []string{"stats", "-in", graphPath}, 0, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stderr bytes.Buffer
			code := run(tc.args, &stderr)
			if code != tc.code {
				t.Fatalf("run(%q) = %d, want %d (stderr: %s)", tc.args, code, tc.code, stderr.String())
			}
			if tc.wantStderr != "" && !strings.Contains(stderr.String(), tc.wantStderr) {
				t.Fatalf("run(%q) stderr %q missing %q", tc.args, stderr.String(), tc.wantStderr)
			}
		})
	}
}

// genGraph writes a small test graph and returns its path.
func genGraph(t *testing.T, model string, extra ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.hvqg")
	args := append([]string{"-model", model, "-scale", "9", "-seed", "3", "-out", path}, extra...)
	if err := cmdGenerate(args); err != nil {
		t.Fatalf("generate: %v", err)
	}
	return path
}

func TestGenerateAllModels(t *testing.T) {
	for _, model := range []string{"rmat", "pa", "sw"} {
		genGraph(t, model)
	}
}

func TestGenerateRejectsUnknownModel(t *testing.T) {
	if err := cmdGenerate([]string{"-model", "nope", "-out", filepath.Join(t.TempDir(), "x")}); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestStats(t *testing.T) {
	path := genGraph(t, "rmat")
	if err := cmdStats([]string{"-in", path}); err != nil {
		t.Fatal(err)
	}
	if err := cmdStats([]string{"-in", path + ".missing"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestBFSCommandWithValidation(t *testing.T) {
	path := genGraph(t, "rmat")
	for _, topo := range []string{"1d", "2d", "3d"} {
		args := []string{"-in", path, "-p", "4", "-topo", topo, "-source", "1", "-validate"}
		if err := cmdBFS(args); err != nil {
			t.Fatalf("topo %s: %v", topo, err)
		}
	}
}

func TestBFSCommandNVRAM(t *testing.T) {
	path := genGraph(t, "rmat")
	if err := cmdBFS([]string{"-in", path, "-p", "2", "-nvram", "-cache-mb", "1", "-source", "0"}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSCommand1DPartition(t *testing.T) {
	path := genGraph(t, "rmat")
	if err := cmdBFS([]string{"-in", path, "-p", "4", "-1d-partition", "-source", "0", "-validate"}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSCommandRejectsBadSource(t *testing.T) {
	path := genGraph(t, "rmat")
	if err := cmdBFS([]string{"-in", path, "-p", "2", "-source", "99999999"}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestKCoreCommand(t *testing.T) {
	path := genGraph(t, "rmat")
	if err := cmdKCore([]string{"-in", path, "-p", "3", "-k", "2,4"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdKCore([]string{"-in", path, "-k", "0"}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if err := cmdKCore([]string{"-in", path, "-k", "abc"}); err == nil {
		t.Fatal("non-numeric k accepted")
	}
}

func TestTriangleCommand(t *testing.T) {
	path := genGraph(t, "sw", "-k", "8")
	if err := cmdTriangles([]string{"-in", path, "-p", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestSSSPCommand(t *testing.T) {
	path := genGraph(t, "rmat")
	if err := cmdSSSP([]string{"-in", path, "-p", "3", "-source", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestCCCommand(t *testing.T) {
	path := genGraph(t, "pa")
	if err := cmdCC([]string{"-in", path, "-p", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.hvqg")
	b := filepath.Join(dir, "b.hvqg")
	for i, path := range []string{a, b} {
		if err := cmdGenerate([]string{"-model", "rmat", "-scale", "8", "-seed", "5", "-out", path}); err != nil {
			t.Fatalf("gen %d: %v", i, err)
		}
	}
	fa, _ := filepath.Glob(a)
	fb, _ := filepath.Glob(b)
	if len(fa) != 1 || len(fb) != 1 {
		t.Fatal("outputs missing")
	}
	da := readAll(t, a)
	db := readAll(t, b)
	if fmt.Sprintf("%x", da) != fmt.Sprintf("%x", db) {
		t.Fatal("same seed produced different files")
	}
}

func readAll(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestConvertRoundTrip(t *testing.T) {
	dir := t.TempDir()
	bin := genGraph(t, "rmat")
	txt := filepath.Join(dir, "g.tsv")
	bin2 := filepath.Join(dir, "g2.hvqg")
	if err := cmdConvert([]string{"-in", bin, "-out", txt}); err != nil {
		t.Fatal(err)
	}
	if err := cmdConvert([]string{"-in", txt, "-out", bin2, "-n", "512"}); err != nil {
		t.Fatal(err)
	}
	a := readAll(t, bin)
	b := readAll(t, bin2)
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	if fmt.Sprintf("%x", a) != fmt.Sprintf("%x", b) {
		t.Fatal("binary -> text -> binary round trip changed the graph")
	}
	if err := cmdConvert([]string{"-in", txt}); err == nil {
		t.Fatal("missing -out accepted")
	}
}
