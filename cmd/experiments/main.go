// Command experiments regenerates every figure and table of the paper's
// evaluation section (§VII) at laptop scale, printing the same rows/series
// the paper reports. See EXPERIMENTS.md for paper-vs-measured comparisons.
//
// Usage:
//
//	experiments -list
//	experiments fig1 fig2 ... table2
//	experiments all
//	experiments -maxp 16 -verts-log2 13 -sources 8 fig5
//	experiments -obs-json profiles.json -obs-csv profiles.csv ablation-topology
//
// Every timed phase (each BFS source, each k-core k, each triangle count)
// records a communication profile — msgs/bytes/hops per rank and per kind,
// mailbox aggregation, termination waves — sourced from internal/obs.
// -obs-json/-obs-csv control where the profiles land (empty disables).
// Set HAVOQ_TRACE=1 (stderr) or HAVOQ_TRACE=<file> to stream per-phase span
// events as JSON lines while experiments run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"havoqgt/internal/harness"
)

// experiment names in presentation order.
var order = []string{
	"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
	"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "table2",
	"ablation-topology", "ablation-locality", "ablation-aggregation",
	"extensions",
}

func runners(s harness.Sizing) map[string]func() *harness.Table {
	return map[string]func() *harness.Table{
		"fig1":                 func() *harness.Table { return harness.Figure1(s) },
		"fig2":                 func() *harness.Table { return harness.Figure2(s) },
		"fig3":                 harness.Figure3,
		"fig4":                 func() *harness.Table { return harness.Figure4(s) },
		"fig5":                 func() *harness.Table { return harness.Figure5(s) },
		"fig6":                 func() *harness.Table { return harness.Figure6(s) },
		"fig7":                 func() *harness.Table { return harness.Figure7(s) },
		"fig8":                 func() *harness.Table { return harness.Figure8(s) },
		"fig9":                 func() *harness.Table { return harness.Figure9(s) },
		"fig10":                func() *harness.Table { return harness.Figure10(s) },
		"fig11":                func() *harness.Table { return harness.Figure11(s) },
		"fig12":                func() *harness.Table { return harness.Figure12(s) },
		"fig13":                func() *harness.Table { return harness.Figure13(s) },
		"table2":               func() *harness.Table { return harness.TableII(s) },
		"ablation-topology":    func() *harness.Table { return harness.AblationTopology(s) },
		"ablation-locality":    func() *harness.Table { return harness.AblationLocality(s) },
		"ablation-aggregation": func() *harness.Table { return harness.AblationAggregation(s) },
		"extensions":           func() *harness.Table { return harness.Extensions(s) },
	}
}

func main() {
	def := harness.DefaultSizing()
	list := flag.Bool("list", false, "list available experiments")
	maxP := flag.Int("maxp", def.MaxP, "largest simulated rank count in scaling sweeps")
	vertsLog2 := flag.Uint("verts-log2", def.VertsPerRankLog2, "log2 vertices per rank for weak scaling")
	hubScale := flag.Uint("hub-scale", def.HubScaleMax, "largest RMAT scale in the hub census (fig1)")
	sources := flag.Int("sources", def.Sources, "BFS roots per measurement")
	seed := flag.Uint64("seed", def.Seed, "experiment seed")
	obsJSON := flag.String("obs-json", "obs_profiles.json", "write per-phase obs communication profiles as JSON (empty to disable)")
	obsCSV := flag.String("obs-csv", "", "write per-phase obs communication profiles as CSV (empty to disable)")
	flag.Parse()

	s := harness.Sizing{
		Seed:             *seed,
		MaxP:             *maxP,
		VertsPerRankLog2: *vertsLog2,
		HubScaleMax:      *hubScale,
		Sources:          *sources,
	}
	run := runners(s)

	if *list {
		for _, name := range order {
			fmt.Println(name)
		}
		return
	}

	targets := flag.Args()
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "experiments: name one or more experiments, or 'all' (-list to enumerate)")
		os.Exit(2)
	}
	if len(targets) == 1 && targets[0] == "all" {
		targets = order
	}
	for _, name := range targets {
		fn, ok := run[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", name)
			os.Exit(2)
		}
		start := time.Now()
		tab := fn()
		tab.Notes = append(tab.Notes, fmt.Sprintf("experiment wall time: %v", time.Since(start).Round(time.Millisecond)))
		tab.Fprint(os.Stdout)
	}
	writeProfiles(*obsJSON, harness.WriteProfilesJSON)
	writeProfiles(*obsCSV, harness.WriteProfilesCSV)
}

// writeProfiles dumps the per-phase obs communication profiles with the
// given encoder, skipping silently when the path is empty or no phase ran.
func writeProfiles(path string, write func(io.Writer) error) {
	if path == "" || len(harness.Profiles()) == 0 {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: obs profiles: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := write(f); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: obs profiles: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d per-phase obs profiles to %s\n", len(harness.Profiles()), path)
}
