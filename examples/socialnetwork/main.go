// Social-network analysis: generate a preferential-attachment graph (a
// stand-in for a social network with celebrity hubs), then answer three
// classic questions with the distributed algorithms:
//
//  1. How tightly knit is the network? (triangle count → clustering
//     coefficient)
//
//  2. Who belongs to the engaged core? (k-core decomposition)
//
//  3. How many hops separate users from a seed? (BFS)
//
// Run with:
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"

	"havoqgt/internal/algos/bfs"
	"havoqgt/internal/algos/kcore"
	"havoqgt/internal/algos/triangle"
	"havoqgt/internal/core"
	"havoqgt/internal/generators"
	"havoqgt/internal/graph"
	"havoqgt/internal/mailbox"
	"havoqgt/internal/partition"
	"havoqgt/internal/rt"
)

const (
	numUsers = 1 << 12
	mPerUser = 8
	ranks    = 8
)

func main() {
	gen := generators.NewPA(numUsers, mPerUser, 0.05, 7)

	var (
		triangles  uint64
		wedges     uint64
		coreSizes  = map[uint32]uint64{}
		histogram  = make([]uint64, 16)
		reachable  uint64
		seedVertex = graph.Vertex(42)
	)

	machine := rt.NewMachine(ranks)
	machine.Run(func(r *rt.Rank) {
		// Every rank generates its own chunk of the network; the builder
		// sorts globally and hands back balanced partitions. Simplify:
		// k-core and triangles need a simple graph.
		local := graph.Undirect(gen.GenerateChunk(r.Rank(), r.Size()))
		part, err := partition.BuildEdgeListSimple(r, local, numUsers)
		if err != nil {
			log.Fatal(err)
		}
		topo := mailbox.NewGrid2D(ranks)
		cfg := core.Config{Topology: topo}

		// 1. Triangles and wedges -> global clustering coefficient.
		tri := triangle.Run(r, part, cfg)
		var localWedges uint64
		lo, hi := part.Owners.MasterRange(part.Rank)
		for v := lo; v < hi; v++ {
			d := part.GlobalDegree(graph.Vertex(v))
			localWedges += d * (d - 1) / 2
		}
		allWedges := r.AllReduceU64(localWedges, rt.Sum)

		// 2. k-core decomposition at increasing k: the "engaged core".
		sizes := map[uint32]uint64{}
		for _, k := range []uint32{2, 4, 8, 16} {
			res := kcore.Run(r, part, k, cfg)
			sizes[k] = kcore.GlobalCoreSize(r, res)
		}

		// 3. Degrees of separation from a seed user, with ghost filtering
		// for the celebrity hubs.
		bcfg := cfg
		bcfg.Ghosts = core.BuildGhostTable(part, core.DefaultGhostsPerPartition)
		res := bfs.Run(r, part, seedVertex, bcfg)
		localHist := make([]uint64, 16)
		var localReached uint64
		for v := lo; v < hi; v++ {
			i, _ := part.LocalIndex(graph.Vertex(v))
			if l := res.Level[i]; l != bfs.Unreached {
				localReached++
				if int(l) < len(localHist) {
					localHist[l]++
				}
			}
		}
		globalReached := r.AllReduceU64(localReached, rt.Sum)
		globalHist := make([]uint64, len(localHist))
		for i := range localHist {
			globalHist[i] = r.AllReduceU64(localHist[i], rt.Sum)
		}

		if r.Rank() == 0 {
			triangles = tri.GlobalCount
			wedges = allWedges
			coreSizes = sizes
			reachable = globalReached
			copy(histogram, globalHist)
		}
	})

	fmt.Printf("social network: %d users, preferential attachment (m=%d), %d simulated ranks\n\n",
		numUsers, mPerUser, ranks)

	cc := 0.0
	if wedges > 0 {
		cc = 3 * float64(triangles) / float64(wedges)
	}
	fmt.Printf("triangles: %d   wedges: %d   global clustering coefficient: %.4f\n\n",
		triangles, wedges, cc)

	fmt.Println("engaged cores (largest subgraph where everyone has >= k in-core friends):")
	for _, k := range []uint32{2, 4, 8, 16} {
		fmt.Printf("  %2d-core: %5d users (%.1f%%)\n", k, coreSizes[k],
			100*float64(coreSizes[k])/numUsers)
	}

	fmt.Printf("\ndegrees of separation from user %d (reached %d of %d users):\n",
		seedVertex, reachable, numUsers)
	for l, c := range histogram {
		if c > 0 {
			fmt.Printf("  %2d hops: %5d users\n", l, c)
		}
	}
}
