// Quickstart: the high-level facade. Build a small graph partitioned across
// four simulated ranks with edge list partitioning, then run BFS, connected
// components, k-core, and triangle counting with single calls.
//
//	go run ./examples/quickstart
//
// For rank-level control (custom visitors, NVRAM storage, validation) see
// examples/graph500 and examples/externalmemory.
package main

import (
	"fmt"
	"log"

	"havoqgt"
)

func main() {
	// A small network: a hub (vertex 0) bridging two communities, plus a
	// separate chain 5-6-7.
	edges := []havoqgt.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3}, {Src: 0, Dst: 4},
		{Src: 1, Dst: 2}, {Src: 3, Dst: 4},
		{Src: 2, Dst: 5}, {Src: 5, Dst: 6}, {Src: 6, Dst: 7},
	}
	g, err := havoqgt.NewGraph(edges, 8, havoqgt.Options{
		Ranks:    4,
		Undirect: true,
		Simplify: true, // k-core and triangles need a simple graph
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d stored edges, %d simulated ranks\n\n",
		g.NumVertices(), g.NumEdges(), g.Ranks())

	bfs, err := g.BFS(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("BFS from vertex 7:")
	fmt.Println("vertex  level  parent")
	for v, l := range bfs.Levels {
		fmt.Printf("%-7d %-6d %d\n", v, l, bfs.Parents[v])
	}

	comps, err := g.Components()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconnected components: %d (labels %v)\n", comps.Count, comps.Labels)

	kc, err := g.KCore(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2-core members: %v (size %d)\n", kc.InCore, kc.CoreSize)

	tri, err := g.CountTriangles()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangles: %d\n", tri)
}
