// Graph500-style benchmark run: generate the benchmark's RMAT graph, build
// the edge-list partitioned representation, run BFS from a set of random
// roots, validate every traversal Graph500-style, and report the TEPS
// statistics the list reports (min / median / max over roots).
//
//	go run ./examples/graph500
package main

import (
	"fmt"
	"log"
	"slices"
	"time"

	"havoqgt/internal/algos/bfs"
	"havoqgt/internal/core"
	"havoqgt/internal/generators"
	"havoqgt/internal/graph"
	"havoqgt/internal/harness"
	"havoqgt/internal/mailbox"
	"havoqgt/internal/partition"
	"havoqgt/internal/rt"
	"havoqgt/internal/xrand"
)

const (
	scale    = 13
	ranks    = 8
	numRoots = 8
	seed     = 2026
)

func main() {
	gen := generators.NewGraph500(scale, seed)
	fmt.Printf("Graph500-style run: scale %d (%d vertices, %d generator edges), %d simulated ranks\n",
		scale, gen.NumVertices(), gen.NumEdges(), ranks)

	type rootResult struct {
		root  graph.Vertex
		teps  float64
		depth uint32
	}
	results := make([]rootResult, 0, numRoots)
	var buildTime time.Duration

	rt.NewMachine(ranks).Run(func(r *rt.Rank) {
		start := time.Now()
		local := graph.Undirect(gen.GenerateChunk(r.Rank(), r.Size()))
		part, err := partition.BuildEdgeList(r, local, gen.NumVertices())
		if err != nil {
			log.Fatal(err)
		}
		r.Barrier()
		if r.Rank() == 0 {
			buildTime = time.Since(start)
		}

		// Random roots with degree >= 1, agreed upon by all ranks through a
		// shared RNG plus a degree check (the benchmark's sampling rule).
		// Every rank draws the same candidate sequence from a shared seed
		// and agrees collectively on acceptance, so the loop advances in
		// lockstep without extra coordination.
		rng := xrand.New(seed)
		ghosts := core.BuildGhostTable(part, core.DefaultGhostsPerPartition)
		for accepted := 0; accepted < numRoots; {
			root := graph.Vertex(rng.Uint64n(gen.NumVertices()))
			var has uint64
			if part.IsMaster(root) && part.GlobalDegree(root) > 0 {
				has = 1
			}
			if r.AllReduceU64(has, rt.Max) == 0 {
				continue
			}
			accepted++
			cfg := core.Config{Topology: mailbox.NewGrid3D(ranks), Ghosts: ghosts}
			r.Barrier()
			t0 := time.Now()
			res := bfs.Run(r, part, root, cfg)
			r.Barrier()
			elapsed := time.Since(t0)
			if err := harness.ValidateBFS(r, part, res.BFS, root); err != nil {
				log.Fatalf("validation failed for root %d: %v", root, err)
			}
			edges := r.AllReduceU64(res.ReachedEdges(), rt.Sum) / 2
			depth := uint32(r.AllReduceU64(uint64(res.MaxLevel()), rt.Max))
			if r.Rank() == 0 {
				results = append(results, rootResult{
					root:  root,
					teps:  float64(edges) / elapsed.Seconds(),
					depth: depth,
				})
			}
		}
	})

	fmt.Printf("construction: %v (distributed sort + equal-count split + CSR)\n\n", buildTime.Round(time.Millisecond))
	fmt.Println("root      depth  TEPS")
	teps := make([]float64, 0, len(results))
	for _, res := range results {
		fmt.Printf("%-9d %-6d %.3g\n", res.root, res.depth, res.teps)
		teps = append(teps, res.teps)
	}
	slices.Sort(teps)
	fmt.Printf("\nvalidated %d/%d traversals\n", len(results), numRoots)
	fmt.Printf("min TEPS:    %.3g\n", teps[0])
	fmt.Printf("median TEPS: %.3g\n", teps[len(teps)/2])
	fmt.Printf("max TEPS:    %.3g\n", teps[len(teps)-1])
}
