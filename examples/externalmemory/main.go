// External-memory traversal: store a Graph500 RMAT graph's edges on
// simulated node-local NVRAM behind the user-space page cache and compare
// distributed BFS against all-DRAM storage — the paper's headline scenario
// (32x larger datasets at a modest TEPS cost).
//
//	go run ./examples/externalmemory
package main

import (
	"fmt"

	"havoqgt/internal/extmem"
	"havoqgt/internal/harness"
)

func main() {
	const (
		scale   = 15
		ranks   = 8
		sources = 4
	)
	spec := harness.RMATSpec(scale, 11)

	fmt.Printf("RMAT scale %d (%d vertices, ~%d undirected edges), %d simulated ranks\n\n",
		scale, spec.NumVertices, spec.NumGenEdges, ranks)

	// Baseline: everything in DRAM.
	dram, err := harness.RunBFS(harness.BFSOpts{
		CommonOpts: harness.CommonOpts{P: ranks, Topology: "2d", Seed: 11},
		Graph:      spec, Sources: sources, Ghosts: 256,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("DRAM:       %10.3g TEPS (graph fully in memory)\n", dram.TEPS)

	// Edge storage on simulated NAND Flash, with a page cache an eighth the
	// size of the data.
	nv := extmem.DefaultNVRAM()
	nv.CacheBytes = int(spec.NumGenEdges * 2 * 8 / ranks / 8)
	nvram, err := harness.RunBFS(harness.BFSOpts{
		CommonOpts: harness.CommonOpts{P: ranks, Topology: "2d", NVRAM: &nv, Seed: 11},
		Graph:      spec, Sources: sources, Ghosts: 256,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("sim-NVRAM:  %10.3g TEPS (cache holds 1/8 of the edges, %.1f%% hit rate)\n",
		nvram.TEPS, 100*nvram.Cache.HitRate())

	if dram.TEPS > 0 {
		fmt.Printf("\ndegradation: %.1f%% — the asynchronous traversal and the\n",
			100*(dram.TEPS-nvram.TEPS)/dram.TEPS)
		fmt.Println("locality-ordered visitor queue hide most of the device latency,")
		fmt.Println("which is how the paper traverses trillion-edge graphs from NAND Flash.")
	}
}
