module havoqgt

go 1.22
