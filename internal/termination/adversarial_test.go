package termination

// Adversarial-schedule tests: the §V double-wave detector must tolerate
// arbitrary delay and reordering of its own control messages (waves are
// versioned and counters monotone, so stale control frames are harmless) —
// but it is NOT designed to survive control-plane loss, which is why the
// fault plane's drop/duplicate/corrupt rules are restricted to the mailbox
// kind everywhere else in the suite.

import (
	"encoding/binary"
	"sync/atomic"
	"testing"
	"time"

	"havoqgt/internal/faults"
	"havoqgt/internal/rt"
)

// delayReorderPlan delays and reorders every message kind — control waves
// included — without ever losing one.
func delayReorderPlan(seed uint64) faults.Plan {
	return faults.Plan{
		Seed: seed,
		Msgs: []faults.MsgRule{{
			From: faults.Wildcard, To: faults.Wildcard, Kind: faults.Wildcard,
			Delay: 0.5, DelayMin: 50 * time.Microsecond, DelayMax: 500 * time.Microsecond,
			Reorder: 0.5,
		}},
	}
}

// TestDetectionSurvivesControlDelayReorder reruns the message-storm scenario
// with heavy delay/reorder on every plane: detection must still fire on all
// ranks (liveness) and only after the global send/receive counts balanced
// (safety, checked from the detectors' own counters after the run).
func TestDetectionSurvivesControlDelayReorder(t *testing.T) {
	p, perRank := 4, 100
	if testing.Short() {
		p, perRank = 3, 30
	}
	m := rt.NewMachine(p)
	inj := faults.New(delayReorderPlan(0xad1701), m.Obs())
	m.SetTransport(inj)
	inj.Arm()

	var sent, recv atomic.Uint64
	m.Run(func(r *rt.Rank) {
		d := New(r)
		n := 0
		buf := make([]byte, 8)
		deadline := time.Now().Add(30 * time.Second)
		for {
			if n < perRank {
				dest := (r.Rank() + n) % p
				binary.LittleEndian.PutUint64(buf, uint64(n))
				r.Send(dest, rt.KindMailbox, 0, append([]byte(nil), buf...))
				d.CountSent(1)
				n++
			}
			for range r.Recv(rt.KindMailbox) {
				d.CountReceived(1)
			}
			if d.Pump(n == perRank) {
				break
			}
			if time.Now().After(deadline) {
				panic("no termination under delay/reorder")
			}
		}
		sent.Add(d.Sent())
		recv.Add(d.Received())
	})
	if sent.Load() != recv.Load() {
		t.Fatalf("premature quiescence: global sent %d != received %d under reordering",
			sent.Load(), recv.Load())
	}
	reg := m.Obs()
	if reg.Counter("faults.injected.delay").Value() == 0 &&
		reg.Counter("faults.injected.reorder").Value() == 0 {
		t.Fatal("no delay/reorder faults injected; adversary inert, test proved nothing")
	}
}

// TestMuxNoCrossTalkUnderReorder runs two detector instances per rank under
// control-plane reordering: a quiet query must reach quiescence while a
// loaded query with an in-flight imbalance must NOT — reordered control
// frames of one instance must never leak verdicts into the other.
func TestMuxNoCrossTalkUnderReorder(t *testing.T) {
	const p = 4
	m := rt.NewMachine(p)
	inj := faults.New(delayReorderPlan(0xad1702), m.Obs())
	m.SetTransport(inj)
	inj.Arm()

	m.Run(func(r *rt.Rank) {
		mux := NewMux(r)
		loaded := mux.Detector(1)
		quiet := mux.Detector(2)
		if r.Rank() == 0 {
			loaded.CountSent(1) // one message forever in flight (until below)
		}

		// The quiet instance quiesces despite instance 1's imbalance and the
		// reordered control traffic of both.
		deadline := time.Now().Add(30 * time.Second)
		for !quiet.Pump(true) {
			if loaded.Pump(true) {
				panic("loaded detector quiesced with a message in flight (cross-talk?)")
			}
			if time.Now().After(deadline) {
				panic("quiet detector starved by sibling instance")
			}
		}
		// Long adversarial window: the loaded instance must keep refusing.
		for i := 0; i < 2000; i++ {
			if loaded.Pump(true) {
				panic("loaded detector quiesced with a message in flight")
			}
		}

		// Deliver the outstanding message; now instance 1 must finish too.
		if r.Rank() == 1 {
			loaded.CountReceived(1)
		}
		for !loaded.Pump(true) {
			if time.Now().After(deadline) {
				panic("loaded detector never quiesced after balance")
			}
		}
	})
}

// TestMuxManyInstancesUnderDelay quiesces many interleaved detector
// instances, released in rank-dependent orders, under delayed control
// traffic — the regime the multi-query engine puts the Mux in.
func TestMuxManyInstancesUnderDelay(t *testing.T) {
	const p, instances = 3, 8
	m := rt.NewMachine(p)
	inj := faults.New(delayReorderPlan(0xad1703), m.Obs())
	m.SetTransport(inj)
	inj.Arm()

	m.Run(func(r *rt.Rank) {
		mux := NewMux(r)
		ds := make([]*Detector, instances)
		done := make([]bool, instances)
		for i := range ds {
			ds[i] = mux.Detector(uint32(i + 1))
		}
		remaining := instances
		deadline := time.Now().Add(30 * time.Second)
		for remaining > 0 {
			// Pump in a rank-dependent rotation so instances interleave
			// differently on every rank (every instance is still pumped on
			// every rank — a wave needs all ranks to pass through).
			for k := 0; k < instances; k++ {
				i := (k + r.Rank()*3) % instances
				if done[i] {
					continue
				}
				if ds[i].Pump(true) {
					done[i] = true
					mux.Release(uint32(i + 1))
					remaining--
				}
			}
			if time.Now().After(deadline) {
				panic("mux instances starved under delay")
			}
		}
	})
}
