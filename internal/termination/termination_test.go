package termination

import (
	"encoding/binary"
	"testing"
	"time"

	"havoqgt/internal/rt"
)

// pumpUntilDone drives a detector until it reports quiescence or times out.
func pumpUntilDone(t *testing.T, d *Detector, idle func() bool, work func()) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !d.Pump(idle()) {
		work()
		if time.Now().After(deadline) {
			t.Fatal("termination not detected within deadline")
		}
	}
}

func TestDetectsOnQuietSystem(t *testing.T) {
	ps := []int{1, 2, 3, 8, 15}
	if testing.Short() {
		// Large rank counts dominate the wall time under -race; the small
		// ones still cover the single-rank and multi-rank wave paths.
		ps = []int{1, 2, 3}
	}
	for _, p := range ps {
		m := rt.NewMachine(p)
		m.Run(func(r *rt.Rank) {
			d := New(r)
			deadline := time.Now().Add(10 * time.Second)
			for !d.Pump(true) {
				if time.Now().After(deadline) {
					panic("no detection on an idle system")
				}
			}
		})
	}
}

func TestRequiresBalancedCounts(t *testing.T) {
	// With one un-received send, detection must NOT happen; after the
	// receive is counted, it must.
	p := 4
	m := rt.NewMachine(p)
	m.Run(func(r *rt.Rank) {
		d := New(r)
		if r.Rank() == 0 {
			d.CountSent(1)
		}
		// Spin for a while: no detection while S != R.
		for i := 0; i < 2000; i++ {
			if d.Pump(true) {
				panic("detected termination with a message in flight")
			}
		}
		if r.Rank() == 1 {
			d.CountReceived(1)
		}
		deadline := time.Now().Add(10 * time.Second)
		for !d.Pump(true) {
			if time.Now().After(deadline) {
				panic("no detection after counts balanced")
			}
		}
	})
}

func TestRequiresIdleEverywhere(t *testing.T) {
	p := 3
	m := rt.NewMachine(p)
	m.Run(func(r *rt.Rank) {
		d := New(r)
		busy := r.Rank() == 2
		for i := 0; i < 2000; i++ {
			if d.Pump(!busy) {
				panic("detected termination with a busy rank")
			}
		}
		// Rank 2 goes idle; now everyone should detect.
		deadline := time.Now().Add(10 * time.Second)
		for !d.Pump(true) {
			if time.Now().After(deadline) {
				panic("no detection after all idle")
			}
		}
	})
}

func TestDetectionAfterMessageStorm(t *testing.T) {
	// Ranks exchange real visitor-like traffic over KindMailbox, counting
	// sends/receives; once the storm drains, detection must fire on all
	// ranks with matched global counters.
	p, perRank := 6, 200
	if testing.Short() {
		p, perRank = 3, 50
	}
	m := rt.NewMachine(p)
	m.Run(func(r *rt.Rank) {
		d := New(r)
		sent := 0
		buf := make([]byte, 8)
		for !d.Pump(false) {
			if sent < perRank {
				dest := (r.Rank() + sent) % p
				binary.LittleEndian.PutUint64(buf, uint64(sent))
				r.Send(dest, rt.KindMailbox, 0, append([]byte(nil), buf...))
				d.CountSent(1)
				sent++
			}
			for range r.Recv(rt.KindMailbox) {
				d.CountReceived(1)
			}
			if sent == perRank {
				// Only now can the system quiesce; report idle when no
				// pending deliveries.
				for range r.Recv(rt.KindMailbox) {
					d.CountReceived(1)
				}
				if d.Pump(true) {
					break
				}
			}
		}
		// Safety: on exit the global counters matched; locally we may have
		// sent and received different amounts, that's fine.
	})
}

func TestWavesAreCounted(t *testing.T) {
	m := rt.NewMachine(2)
	waves := make([]uint64, 2)
	m.Run(func(r *rt.Rank) {
		d := New(r)
		deadline := time.Now().Add(10 * time.Second)
		for !d.Pump(true) {
			if time.Now().After(deadline) {
				panic("timeout")
			}
		}
		waves[r.Rank()] = d.Waves
	})
	if waves[0] < 2 {
		t.Fatalf("root completed %d waves, need at least 2 for the double-wave rule", waves[0])
	}
}

func TestPumpAfterDoneStaysDone(t *testing.T) {
	m := rt.NewMachine(3)
	m.Run(func(r *rt.Rank) {
		d := New(r)
		deadline := time.Now().Add(10 * time.Second)
		for !d.Pump(true) {
			if time.Now().After(deadline) {
				panic("timeout")
			}
		}
		for i := 0; i < 10; i++ {
			if !d.Pump(true) {
				panic("detector forgot termination")
			}
		}
	})
}

func TestCountersAccumulate(t *testing.T) {
	m := rt.NewMachine(1)
	m.Run(func(r *rt.Rank) {
		d := New(r)
		d.CountSent(3)
		d.CountSent(2)
		d.CountReceived(5)
		if d.Sent() != 5 || d.Received() != 5 {
			panic("counter arithmetic broken")
		}
	})
}

func TestSequentialTraversalsFreshDetectors(t *testing.T) {
	// Two traversals back to back on the same machine: the second detector
	// must not be confused by the first's control traffic.
	p := 4
	m := rt.NewMachine(p)
	phases := 3
	if testing.Short() {
		phases = 2
	}
	m.Run(func(r *rt.Rank) {
		for phase := 0; phase < phases; phase++ {
			d := New(r)
			deadline := time.Now().Add(10 * time.Second)
			for !d.Pump(true) {
				if time.Now().After(deadline) {
					panic("timeout in phase")
				}
			}
			r.Barrier()
		}
	})
}
