// Package termination implements distributed quiescence detection for the
// asynchronous visitor queue, following the counting approach the paper
// adopts from Mattern (§V, global_empty): an asynchronous reduction of the
// global visitor send and receive counts, repeated in waves.
//
// Protocol. Rank 0 initiates counting waves over a binary tree. Each wave
// accumulates, across all ranks, the monotone counters S (messages sent) and
// R (messages received) plus an all-idle flag. The system is declared
// quiescent when two consecutive waves report identical counts with S == R
// and all ranks idle in both waves.
//
// Safety: counters are per-rank monotone. Equal aggregate S across two waves
// implies equal per-rank values, so no rank sent between its two reads
// (likewise receives). S == R then rules out in-flight messages: a message
// sent before a wave-1 read but not yet received would leave R < S, and a
// send after a wave-1 read would change S by wave 2. With both waves idle and
// no queued work, no rank can create new messages. Liveness: ranks answer
// wave requests from inside the traversal loop even while busy, so waves
// always complete; once the system is quiet two identical waves follow.
//
// Checking for non-termination is asynchronous — a busy rank answers a wave
// with its current counters and keeps working; the final synchronization
// happens only after the queues are already empty, as the paper notes.
package termination

import (
	"encoding/binary"

	"havoqgt/internal/obs"
	"havoqgt/internal/rt"
)

// Control message types (carried in the low bits of rt.Msg.Tag; the high
// bits carry the detector instance ID so many detectors — one per in-flight
// query — can share the control plane without stealing each other's waves).
const (
	tagReq  uint32 = 1 // root→leaves: report counters for wave N
	tagAck  uint32 = 2 // child→parent: aggregated (S, R, idle) for wave N
	tagDone uint32 = 3 // root→leaves: quiescence detected, stop

	typeBits = 2                    // low bits holding the message type
	typeMask = 1<<typeBits - 1      // 0b11
	MaxID    = 1<<(32-typeBits) - 1 // largest detector instance ID
)

// Detector tracks one traversal's visitor counters and drives detection
// waves. Create one per rank per traversal with New, or one per rank per
// *query* with Mux.Detector when multiple traversals share the machine.
type Detector struct {
	r   *rt.Rank
	id  uint32 // instance ID, 0 on the classic single-traversal path
	mux *Mux   // control-plane demultiplexer; nil = exclusive KindControl use

	sent     uint64 // visitors sent by this rank (monotone)
	received uint64 // visitors received by this rank (monotone)

	// In-progress wave aggregation state.
	wave       uint64
	acksWanted int
	acksSeen   int
	accS, accR uint64
	accIdle    bool

	// Root-only: previous completed wave's result.
	rootWaveOpen bool
	prevValid    bool
	prevS, prevR uint64
	prevIdle     bool

	done bool
	// Waves counts completed waves (exported for tests/metrics).
	Waves uint64

	// Machine-wide observability counters (root increments them).
	obsWaves   *obs.Counter
	obsRetests *obs.Counter
}

// New returns a detector bound to the rank, with exclusive use of the
// control message plane (instance ID 0).
func New(r *rt.Rank) *Detector {
	return &Detector{
		r:          r,
		obsWaves:   r.Obs().Counter(obs.TermWaves),
		obsRetests: r.Obs().Counter(obs.TermRetests),
	}
}

// tag namespaces a control message type with this detector's instance ID.
func (d *Detector) tag(typ uint32) uint32 { return d.id<<typeBits | typ }

// recv returns the pending control messages addressed to this detector:
// everything on the control plane for an exclusive detector, or just this
// instance's slice of the shared plane under a Mux.
func (d *Detector) recv() []rt.Msg {
	if d.mux != nil {
		d.mux.poll()
		return d.mux.take(d.id)
	}
	return d.r.Recv(rt.KindControl)
}

// Mux demultiplexes one rank's control message plane across many detector
// instances, keyed by the instance ID carried in the message tag. Create one
// per rank, then mint per-query detectors with Detector. Messages for
// instances not yet registered are buffered until that instance pumps —
// asynchronous query admission means a fast rank's first wave can reach a
// rank that has not created the query's detector yet.
//
// A Mux (like the Detectors it serves) is confined to its rank's goroutine.
type Mux struct {
	r      *rt.Rank
	queues map[uint32][]rt.Msg
	dead   map[uint32]struct{} // retired ids whose late waves are dropped
}

// NewMux returns a control-plane demultiplexer for the rank.
func NewMux(r *rt.Rank) *Mux {
	return &Mux{r: r, queues: make(map[uint32][]rt.Msg)}
}

// Detector mints the detector instance for id on this rank. Every rank of
// the machine must mint the same id for waves to aggregate; ids must not be
// reused until the previous instance detected quiescence.
func (m *Mux) Detector(id uint32) *Detector {
	if id > MaxID {
		panic("termination: detector instance id overflows the tag namespace")
	}
	return &Detector{
		r:          m.r,
		id:         id,
		mux:        m,
		obsWaves:   m.r.Obs().Counter(obs.TermWaves),
		obsRetests: m.r.Obs().Counter(obs.TermRetests),
	}
}

// poll drains newly arrived control messages into per-instance queues.
// Messages for retired ids are dropped on the floor: after a forced abort the
// surviving ranks keep emitting waves for the id until they abort too, and
// buffering those would pin memory forever.
func (m *Mux) poll() {
	for _, msg := range m.r.Recv(rt.KindControl) {
		id := msg.Tag >> typeBits
		if _, gone := m.dead[id]; gone {
			continue
		}
		m.queues[id] = append(m.queues[id], msg)
	}
}

// take removes and returns the queued messages for instance id.
func (m *Mux) take(id uint32) []rt.Msg {
	msgs := m.queues[id]
	if msgs != nil {
		delete(m.queues, id)
	}
	return msgs
}

// Release drops any remaining buffered messages for a retired instance.
// Safe only after the instance's Pump returned true on this rank: global
// quiescence plus DONE propagation guarantee no further control traffic for
// the id.
func (m *Mux) Release(id uint32) { delete(m.queues, id) }

// Retire drops the instance's buffered messages AND blacklists the id so
// late-arriving waves are discarded at poll time instead of re-buffered.
// This is the forced-abort teardown (process failure elsewhere in the
// cluster): quiescence never happened, so other ranks may still emit control
// traffic for the id. Ids are never reused within an engine's lifetime, so
// the blacklist entry (one id per aborted query) is a bounded, permanent
// tombstone.
func (m *Mux) Retire(id uint32) {
	delete(m.queues, id)
	if m.dead == nil {
		m.dead = make(map[uint32]struct{})
	}
	m.dead[id] = struct{}{}
}

// CountSent records n visitor sends.
func (d *Detector) CountSent(n uint64) { d.sent += n }

// CountReceived records n visitor receipts.
func (d *Detector) CountReceived(n uint64) { d.received += n }

// Sent returns the local monotone send counter.
func (d *Detector) Sent() uint64 { return d.sent }

// Received returns the local monotone receive counter.
func (d *Detector) Received() uint64 { return d.received }

func (d *Detector) parent() int { return (d.r.Rank() - 1) / 2 }

func (d *Detector) children() (c [2]int, n int) {
	if l := 2*d.r.Rank() + 1; l < d.r.Size() {
		c[n] = l
		n++
	}
	if rr := 2*d.r.Rank() + 2; rr < d.r.Size() {
		c[n] = rr
		n++
	}
	return c, n
}

// Pump processes pending control messages and, on the root, launches waves
// while the root itself is idle. localIdle must be true iff the caller's
// local visitor queue is empty and it is not executing a visitor. Returns
// true once global quiescence has been detected (on every rank, exactly
// once detection completes).
func (d *Detector) Pump(localIdle bool) bool {
	if d.done {
		return true
	}
	for _, m := range d.recv() {
		switch m.Tag & typeMask {
		case tagReq:
			d.startWave(binary.LittleEndian.Uint64(m.Payload), localIdle)
		case tagAck:
			w := binary.LittleEndian.Uint64(m.Payload[0:])
			if w != d.wave || d.acksWanted < 0 {
				break // stale ack from an already-finished wave
			}
			s := binary.LittleEndian.Uint64(m.Payload[8:])
			r := binary.LittleEndian.Uint64(m.Payload[16:])
			idle := m.Payload[24] == 1
			d.accS += s
			d.accR += r
			d.accIdle = d.accIdle && idle
			d.acksSeen++
			d.maybeFinishWave()
		case tagDone:
			d.forwardDone()
			d.done = true
			return true
		}
	}
	// Root: start a wave when idle and none outstanding.
	if d.r.Rank() == 0 && localIdle && !d.rootWaveOpen && !d.done {
		d.wave++
		// Mark the wave open before starting it: on small machines the wave
		// can complete synchronously inside startWave, which clears the flag.
		d.rootWaveOpen = true
		d.startWave(d.wave, localIdle)
	}
	return d.done
}

// startWave begins participating in wave w: forward the request to children
// and prime the local aggregation with our own counters.
func (d *Detector) startWave(w uint64, localIdle bool) {
	d.wave = w
	d.accS = d.sent
	d.accR = d.received
	d.accIdle = localIdle
	d.acksSeen = 0
	c, n := d.children()
	d.acksWanted = n
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], w)
	for i := 0; i < n; i++ {
		d.r.Send(c[i], rt.KindControl, d.tag(tagReq), append([]byte(nil), buf[:]...))
	}
	d.maybeFinishWave()
}

// maybeFinishWave sends the aggregate up (or, at the root, evaluates the
// quiescence condition) once all children have answered.
func (d *Detector) maybeFinishWave() {
	if d.acksWanted < 0 || d.acksSeen < d.acksWanted {
		return
	}
	d.acksWanted = -1 // guard against double-finish until next wave
	if d.r.Rank() != 0 {
		buf := make([]byte, 25)
		binary.LittleEndian.PutUint64(buf[0:], d.wave)
		binary.LittleEndian.PutUint64(buf[8:], d.accS)
		binary.LittleEndian.PutUint64(buf[16:], d.accR)
		if d.accIdle {
			buf[24] = 1
		}
		d.r.Send(d.parent(), rt.KindControl, d.tag(tagAck), buf)
		return
	}
	// Root: wave complete.
	d.Waves++
	d.obsWaves.Inc()
	d.rootWaveOpen = false
	quiescent := d.prevValid &&
		d.accIdle && d.prevIdle &&
		d.accS == d.accR &&
		d.accS == d.prevS && d.accR == d.prevR
	d.prevValid = true
	d.prevS, d.prevR, d.prevIdle = d.accS, d.accR, d.accIdle
	if quiescent {
		d.forwardDone()
		d.done = true
	} else {
		// The wave did not confirm quiescence: the detector must retest
		// with another wave (the paper's repeated global_empty cycles).
		d.obsRetests.Inc()
	}
}

// forwardDone propagates the DONE signal to this rank's children.
func (d *Detector) forwardDone() {
	c, n := d.children()
	for i := 0; i < n; i++ {
		d.r.Send(c[i], rt.KindControl, d.tag(tagDone), nil)
	}
}
