package net

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []frame{
		{kind: 0, from: 0, to: 1, tag: 0, payload: nil},
		{kind: 2, from: 7, to: 3, tag: 0xDEADBEEF, delayNS: 12345, payload: []byte("hello")},
		{kind: kindNetCtl, flags: flagPing, from: 4, payload: make([]byte, 8)},
		{kind: 1, from: 1000000, to: 999999, tag: 1, payload: bytes.Repeat([]byte{0xAB}, 4096)},
	}
	for i, f := range cases {
		enc := appendFrame(nil, f)
		n := binary.LittleEndian.Uint32(enc)
		if int(n) != len(enc)-lenPrefixLen {
			t.Fatalf("case %d: length field %d, want %d", i, n, len(enc)-lenPrefixLen)
		}
		got, err := decodeFrame(enc[lenPrefixLen:])
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if got.kind != f.kind || got.flags != f.flags || got.from != f.from ||
			got.to != f.to || got.tag != f.tag || got.delayNS != f.delayNS ||
			!bytes.Equal(got.payload, f.payload) {
			t.Fatalf("case %d: round trip mismatch: sent %+v got %+v", i, f, got)
		}
	}
}

func TestFrameDecodeRejects(t *testing.T) {
	// Short buffer.
	if _, err := decodeFrame(make([]byte, frameHeadLen-1)); err == nil {
		t.Fatal("short frame accepted")
	}
	// Wrong version.
	enc := appendFrame(nil, frame{kind: 1, to: 2})
	enc[lenPrefixLen] = ProtoVersion + 1
	if _, err := decodeFrame(enc[lenPrefixLen:]); err == nil {
		t.Fatal("wrong-version frame accepted")
	}
}

func TestPreambleRoundTrip(t *testing.T) {
	pre := appendPreamble(nil, 42, 7)
	if len(pre) != preambleLen {
		t.Fatalf("preamble length %d, want %d", len(pre), preambleLen)
	}
	from, err := decodePreamble(pre, 7)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if from != 42 {
		t.Fatalf("from = %d, want 42", from)
	}
}

func TestPreambleRejects(t *testing.T) {
	pre := appendPreamble(nil, 1, 5)

	if _, err := decodePreamble(pre[:preambleLen-1], 5); err == nil {
		t.Fatal("short preamble accepted")
	}
	if _, err := decodePreamble(pre, 6); err == nil {
		t.Fatal("wrong-epoch preamble accepted (stale worker not fenced)")
	}
	bad := append([]byte(nil), pre...)
	bad[0] = 'X'
	if _, err := decodePreamble(bad, 5); err == nil {
		t.Fatal("bad magic accepted")
	}
	badVer := append([]byte(nil), pre...)
	badVer[4] = ProtoVersion + 1
	if _, err := decodePreamble(badVer, 5); err == nil {
		t.Fatal("wrong protocol version accepted")
	}
}
