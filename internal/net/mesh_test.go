package net

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"havoqgt/internal/check"
	"havoqgt/internal/obs"
)

// delivered collects inbound messages thread-safely.
type delivered struct {
	mu   sync.Mutex
	msgs []string
}

func (d *delivered) fn(from, to int, kind uint8, tag uint32, payload []byte, delay time.Duration) {
	d.mu.Lock()
	d.msgs = append(d.msgs, fmt.Sprintf("%d->%d k%d t%d %q d%v", from, to, kind, tag, payload, delay))
	d.mu.Unlock()
}

func (d *delivered) len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.msgs)
}

func (d *delivered) get(i int) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.msgs[i]
}

// startPair brings up a fully connected 2-process mesh on ephemeral localhost
// ports: process 0 hosts rank 0, process 1 hosts rank 1.
func startPair(t *testing.T, epoch uint64, ping time.Duration) (m0, m1 *Mesh, d0, d1 *delivered) {
	t.Helper()
	m0, err := NewMesh("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	m1, err = NewMesh("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d0, d1 = &delivered{}, &delivered{}
	owner := []int{0, 1}
	if err := m0.Start(Config{
		Local: 0, Epoch: epoch, Owner: owner,
		Peers:   map[int]string{1: m1.Addr()},
		Deliver: d0.fn, Obs: obs.NewRegistry(), PingInterval: ping,
	}); err != nil {
		t.Fatal(err)
	}
	if err := m1.Start(Config{
		Local: 1, Epoch: epoch, Owner: owner,
		Peers:   map[int]string{0: m0.Addr()},
		Deliver: d1.fn, Obs: obs.NewRegistry(), PingInterval: ping,
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		m0.Close()
		m1.Close()
	})
	return m0, m1, d0, d1
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestMeshDeliversInOrder(t *testing.T) {
	check.NoLeaks(t)
	m0, _, _, d1 := startPair(t, 1, -1)

	const n = 500
	for i := 0; i < n; i++ {
		m0.Send(0, 1, 0, uint32(i), []byte{byte(i)}, 0)
	}
	waitFor(t, "all frames", func() bool { return d1.len() == n })
	for i := 0; i < n; i++ {
		want := fmt.Sprintf("0->1 k0 t%d %q d0s", i, []byte{byte(i)})
		if d1.get(i) != want {
			t.Fatalf("frame %d out of order or corrupted: got %q want %q", i, d1.get(i), want)
		}
	}
}

func TestMeshBidirectionalAndDelay(t *testing.T) {
	check.NoLeaks(t)
	m0, m1, d0, d1 := startPair(t, 3, -1)

	m0.Send(0, 1, 2, 9, []byte("ab"), 5*time.Millisecond)
	m1.Send(1, 0, 1, 4, []byte("cd"), 0)
	waitFor(t, "both directions", func() bool { return d0.len() == 1 && d1.len() == 1 })
	if got, want := d1.get(0), `0->1 k2 t9 "ab" d5ms`; got != want {
		t.Fatalf("got %q want %q", got, want)
	}
	if got, want := d0.get(0), `1->0 k1 t4 "cd" d0s`; got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

// TestMeshEpochFencing: a mesh from a different cluster epoch dials in and
// must be refused — nothing it sends may reach Deliver.
func TestMeshEpochFencing(t *testing.T) {
	check.NoLeaks(t)
	_, m1, _, d1 := startPair(t, 10, -1)

	stale, err := NewMesh("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stale.Close()
	dStale := &delivered{}
	if err := stale.Start(Config{
		Local: 0, Epoch: 9, Owner: []int{0, 1},
		Peers:   map[int]string{1: m1.Addr()},
		Deliver: dStale.fn, Obs: obs.NewRegistry(), PingInterval: -1,
	}); err != nil {
		t.Fatal(err)
	}
	stale.Send(0, 1, 0, 77, []byte("stale"), 0)
	time.Sleep(100 * time.Millisecond)
	if d1.len() != 0 {
		t.Fatalf("stale-epoch frame delivered: %q", d1.get(0))
	}
}

// TestMeshRTTProbes: with probing on, both sides accumulate per-peer RTT
// samples and the counters move.
func TestMeshRTTProbes(t *testing.T) {
	check.NoLeaks(t)
	reg0 := obs.NewRegistry()
	m0, err := NewMesh("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	m1, err := NewMesh("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m0.Close()
	defer m1.Close()
	d := &delivered{}
	owner := []int{0, 1}
	if err := m0.Start(Config{Local: 0, Epoch: 1, Owner: owner,
		Peers: map[int]string{1: m1.Addr()}, Deliver: d.fn, Obs: reg0,
		PingInterval: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := m1.Start(Config{Local: 1, Epoch: 1, Owner: owner,
		Peers: map[int]string{0: m0.Addr()}, Deliver: d.fn, Obs: obs.NewRegistry(),
		PingInterval: -1}); err != nil {
		t.Fatal(err)
	}
	rtt := reg0.Histogram(obs.NetPeerRTTNS(1))
	waitFor(t, "rtt samples", func() bool { return rtt.Count() > 0 })
}

// TestMeshReconnect: frames enqueued while the peer's listener is down are
// delivered after the listener comes up; the reconnect counter moves.
func TestMeshReconnect(t *testing.T) {
	check.NoLeaks(t)
	reg0 := obs.NewRegistry()
	m0, err := NewMesh("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m0.Close()

	// Reserve an address for the future peer, then close it so the first
	// dials fail.
	tmp, err := NewMesh("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peerAddr := tmp.Addr()
	tmp.ln.Close()

	d := &delivered{}
	if err := m0.Start(Config{Local: 0, Epoch: 2, Owner: []int{0, 1},
		Peers: map[int]string{1: peerAddr}, Deliver: d.fn, Obs: reg0,
		PingInterval: -1}); err != nil {
		t.Fatal(err)
	}
	m0.Send(0, 1, 0, 1, []byte("early"), 0)
	time.Sleep(60 * time.Millisecond) // let at least one dial fail

	// Bring the peer up on the reserved address.
	m1, err := NewMesh(peerAddr)
	if err != nil {
		t.Fatalf("rebind %s: %v", peerAddr, err)
	}
	defer m1.Close()
	d1 := &delivered{}
	if err := m1.Start(Config{Local: 1, Epoch: 2, Owner: []int{0, 1},
		Peers: map[int]string{}, Deliver: d1.fn, Obs: obs.NewRegistry(),
		PingInterval: -1}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "redelivery after reconnect", func() bool { return d1.len() == 1 })
	if got, want := d1.get(0), `0->1 k0 t1 "early" d0s`; got != want {
		t.Fatalf("got %q want %q", got, want)
	}
	if reg0.Counter(obs.NetReconnects).Value() == 0 {
		t.Fatal("reconnect counter did not move")
	}
}
