package net

import (
	"net"
	"sync"
	"time"

	"havoqgt/internal/obs"
)

// Dial/backoff tuning. The first dial of a freshly started cluster races the
// peer's listener coming up, so the floor is small; the cap keeps a dead peer
// from being hammered.
const (
	dialTimeout  = 5 * time.Second
	writeTimeout = 30 * time.Second
	backoffFloor = 25 * time.Millisecond
	backoffCap   = 2 * time.Second

	// peerPoolCap bounds the per-peer free-list of encoded-frame buffers
	// (same idiom as the mailbox envelope pool: LIFO, capped, drop beyond).
	peerPoolCap = 64
)

// peer owns the outbound half of one mesh edge: a FIFO of encoded frames fed
// by local rank goroutines and drained by a dedicated writer goroutine over
// one TCP connection. A frame is removed from the queue only after the whole
// write succeeded, so a connection that dies mid-stream resends everything
// not yet written; per-destination order is never reordered because there is
// exactly one writer and one queue.
type peer struct {
	id   int // remote process id
	addr string
	m    *Mesh

	mu     sync.Mutex
	cond   *sync.Cond
	queue  [][]byte // encoded frames, length-prefix included
	pool   [][]byte // free-list of consumed frame buffers
	closed bool

	failedOnce bool // writer-goroutine-owned: a dial attempt has failed
	rtt        *obs.Histogram

	wg sync.WaitGroup
}

func newPeer(id int, addr string, m *Mesh) *peer {
	p := &peer{id: id, addr: addr, m: m}
	p.rtt = m.cfg.Obs.Histogram(obs.NetPeerRTTNS(id))
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(1)
	go p.writeLoop()
	return p
}

// getBuf returns a recycled encode buffer, or nil (append allocates).
func (p *peer) getBuf() []byte {
	n := len(p.pool)
	if n == 0 {
		return nil
	}
	b := p.pool[n-1]
	p.pool[n-1] = nil
	p.pool = p.pool[:n-1]
	return b[:0]
}

// enqueue encodes the frame into a pooled buffer and appends it to the
// outbound FIFO. Never blocks: the queue is unbounded (bounded in practice by
// the reliable layer's send windows and the collectives' lockstep).
func (p *peer) enqueue(f frame) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	buf := appendFrame(p.getBuf(), f)
	p.queue = append(p.queue, buf)
	p.mu.Unlock()
	p.cond.Signal()
}

// writeLoop drains the FIFO over a (re)dialed connection.
func (p *peer) writeLoop() {
	defer p.wg.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	backoff := backoffFloor
	everConnected := false
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		buf := p.queue[0]
		p.mu.Unlock()

		if conn == nil {
			c, err := p.dial(everConnected)
			if err != nil {
				if p.sleepClosed(backoff) {
					return
				}
				if backoff *= 2; backoff > backoffCap {
					backoff = backoffCap
				}
				continue
			}
			conn, backoff, everConnected = c, backoffFloor, true
		}
		// A hung socket must fail fast, not stall the writer forever (the
		// cluster watchdog then sees a reconnect storm instead of a freeze).
		conn.SetWriteDeadline(time.Now().Add(writeTimeout))
		if _, err := conn.Write(buf); err != nil {
			conn.Close()
			conn = nil
			continue // frame stays at the queue head and is resent
		}
		p.m.framesOut.Inc()
		p.m.bytesOut.Add(uint64(len(buf)))
		p.mu.Lock()
		p.queue[0] = nil
		p.queue = p.queue[1:]
		if cap(buf) > 0 && len(p.pool) < peerPoolCap {
			p.pool = append(p.pool, buf)
		}
		p.mu.Unlock()
	}
}

// dial establishes the connection and ships the preamble. reconnect marks
// whether a connection existed before (for the reconnect counter; first-ever
// dial attempts after a failure also count).
func (p *peer) dial(reconnect bool) (net.Conn, error) {
	if reconnect || p.failedOnce {
		p.m.reconnects.Inc()
	}
	c, err := net.DialTimeout("tcp", p.addr, dialTimeout)
	if err != nil {
		p.failedOnce = true
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	pre := appendPreamble(nil, p.m.cfg.Local, p.m.cfg.Epoch)
	if _, err := c.Write(pre); err != nil {
		p.failedOnce = true
		c.Close()
		return nil, err
	}
	return c, nil
}

// sleepClosed sleeps d unless the peer closes first; reports closed.
func (p *peer) sleepClosed(d time.Duration) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		p.mu.Lock()
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return true
		}
		time.Sleep(backoffFloor / 5)
	}
	return false
}

// close stops the writer; queued-but-unwritten frames are dropped (the
// cluster is shutting down or reforming under a new epoch).
func (p *peer) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}
