package net

import (
	"net"
	"sync"
	"time"

	"havoqgt/internal/obs"
)

// Dial/backoff tuning. The first dial of a freshly started cluster races the
// peer's listener coming up, so the floor is small; the cap keeps a dead peer
// from being hammered.
const (
	dialTimeout  = 5 * time.Second
	writeTimeout = 30 * time.Second
	backoffFloor = 25 * time.Millisecond
	backoffCap   = 2 * time.Second

	// peerPoolCap bounds the per-peer free-list of encoded-frame buffers
	// (same idiom as the mailbox envelope pool: LIFO, capped, drop beyond).
	peerPoolCap = 64
)

// peer owns the outbound half of one mesh edge: a FIFO of encoded frames fed
// by local rank goroutines and drained by a dedicated writer goroutine over
// one TCP connection. A frame is removed from the queue only after the whole
// write succeeded, so a connection that dies mid-stream resends everything
// not yet written; per-destination order is never reordered because there is
// exactly one writer and one queue.
type peer struct {
	id int // remote process id
	m  *Mesh

	mu     sync.Mutex
	cond   *sync.Cond
	addr   string   // dial target; empty until the peer has an address
	gen    uint64   // bumped by redirect: invalidates in-flight pops/dials
	conn   net.Conn // active connection, owned by the writer, closed by redirect/close
	queue  [][]byte // encoded frames, length-prefix included
	pool   [][]byte // free-list of consumed frame buffers
	closed bool

	failedOnce bool // writer-goroutine-owned: a dial attempt has failed
	rtt        *obs.Histogram

	wg sync.WaitGroup
}

func newPeer(id int, addr string, m *Mesh) *peer {
	p := &peer{id: id, addr: addr, m: m}
	p.rtt = m.cfg.Obs.Histogram(obs.NetPeerRTTNS(id))
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(1)
	go p.writeLoop()
	return p
}

// getBuf returns a recycled encode buffer, or nil (append allocates).
func (p *peer) getBuf() []byte {
	n := len(p.pool)
	if n == 0 {
		return nil
	}
	b := p.pool[n-1]
	p.pool[n-1] = nil
	p.pool = p.pool[:n-1]
	return b[:0]
}

// enqueue encodes the frame into a pooled buffer and appends it to the
// outbound FIFO. Never blocks: the queue is unbounded (bounded in practice by
// the reliable layer's send windows and the collectives' lockstep).
func (p *peer) enqueue(f frame) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	buf := appendFrame(p.getBuf(), f)
	p.queue = append(p.queue, buf)
	p.mu.Unlock()
	p.cond.Signal()
}

// writeLoop drains the FIFO over a (re)dialed connection. Every pop and every
// adopted connection is guarded by the redirect generation: a redirect that
// lands mid-write has already flushed the queue and closed the connection, so
// the writer must neither pop from the new (empty) queue nor keep using a
// socket aimed at the old address.
func (p *peer) writeLoop() {
	defer p.wg.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	backoff := backoffFloor
	everConnected := false
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		buf := p.queue[0]
		gen := p.gen
		addr := p.addr
		p.mu.Unlock()

		if addr == "" {
			// No address yet (the slot is dead and has not re-joined): idle
			// like a failed dial, without touching the reconnect counter.
			if p.sleepClosed(backoff) {
				return
			}
			continue
		}
		if conn == nil {
			c, err := p.dial(addr, everConnected)
			if err != nil {
				if p.sleepClosed(backoff) {
					return
				}
				if backoff *= 2; backoff > backoffCap {
					backoff = backoffCap
				}
				continue
			}
			p.mu.Lock()
			if p.closed || p.gen != gen {
				// Redirected (or closed) while dialing: this socket points at
				// the old address/epoch. Drop it and start over.
				p.mu.Unlock()
				c.Close()
				continue
			}
			p.conn = c
			p.mu.Unlock()
			conn, backoff, everConnected = c, backoffFloor, true
		}
		// A hung socket must fail fast, not stall the writer forever (the
		// cluster watchdog then sees a reconnect storm instead of a freeze).
		conn.SetWriteDeadline(time.Now().Add(writeTimeout))
		if _, err := conn.Write(buf); err != nil {
			conn.Close()
			p.mu.Lock()
			if p.conn == conn {
				p.conn = nil
			}
			p.mu.Unlock()
			conn = nil
			continue // frame stays at the queue head and is resent
		}
		p.m.framesOut.Inc()
		p.m.bytesOut.Add(uint64(len(buf)))
		p.mu.Lock()
		if p.gen == gen {
			p.queue[0] = nil
			p.queue = p.queue[1:]
			if cap(buf) > 0 && len(p.pool) < peerPoolCap {
				p.pool = append(p.pool, buf)
			}
		} else {
			// The queue this frame came from was flushed by a redirect while
			// we were writing to the now-closed old connection; nothing to
			// pop, and the next iteration re-dials the new address.
			conn = nil
		}
		p.mu.Unlock()
	}
}

// dial establishes the connection and ships the preamble. reconnect marks
// whether a connection existed before (for the reconnect counter; first-ever
// dial attempts after a failure also count).
func (p *peer) dial(addr string, reconnect bool) (net.Conn, error) {
	if reconnect || p.failedOnce {
		p.m.reconnects.Inc()
	}
	c, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		p.failedOnce = true
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	pre := appendPreamble(nil, p.m.cfg.Local, p.m.epoch.Load())
	if _, err := c.Write(pre); err != nil {
		p.failedOnce = true
		c.Close()
		return nil, err
	}
	return c, nil
}

// redirect points the peer at a new address under the (already stored) new
// epoch: drop the queued frames — they belong to queries the old epoch
// aborted — bump the generation so the writer abandons any in-flight pop or
// dial, and close the current connection out from under the writer so it
// re-dials with the new preamble.
func (p *peer) redirect(addr string) {
	p.mu.Lock()
	if p.closed || p.addr == addr {
		p.mu.Unlock()
		return
	}
	p.addr = addr
	p.gen++
	for i := range p.queue {
		p.queue[i] = nil
	}
	p.queue = p.queue[:0]
	c := p.conn
	p.conn = nil
	p.mu.Unlock()
	if c != nil {
		c.Close()
	}
	p.cond.Broadcast()
}

// sleepClosed sleeps d unless the peer closes first; reports closed.
func (p *peer) sleepClosed(d time.Duration) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		p.mu.Lock()
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return true
		}
		time.Sleep(backoffFloor / 5)
	}
	return false
}

// close stops the writer; queued-but-unwritten frames are dropped (the
// cluster is shutting down or reforming under a new epoch). The active
// connection is closed out from under the writer so a blocked Write fails
// immediately instead of riding out its deadline.
func (p *peer) close() {
	p.mu.Lock()
	p.closed = true
	c := p.conn
	p.conn = nil
	p.mu.Unlock()
	p.cond.Broadcast()
	if c != nil {
		c.Close()
	}
	p.wg.Wait()
}
