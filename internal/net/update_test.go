package net

import (
	"sync"
	"testing"
	"time"

	"havoqgt/internal/check"
	"havoqgt/internal/obs"
)

// deadAddr reserves a localhost port and closes it, so dials to it fail (or
// hang refused) for the duration of the test.
func deadAddr(t *testing.T) string {
	t.Helper()
	tmp, err := NewMesh("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := tmp.Addr()
	tmp.ln.Close()
	return addr
}

// TestMeshUpdateRedirect: a peer dies and a replacement comes up on a new
// address under a bumped epoch. Update must drop the stale queue, re-dial the
// new address with the new preamble, and deliver post-Update traffic.
func TestMeshUpdateRedirect(t *testing.T) {
	check.NoLeaks(t)
	m0, err := NewMesh("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m0.Close()
	dead := deadAddr(t)
	d0 := &delivered{}
	if err := m0.Start(Config{Local: 0, Epoch: 1, Owner: []int{0, 1},
		Peers: map[int]string{1: dead}, Deliver: d0.fn, Obs: obs.NewRegistry(),
		PingInterval: -1}); err != nil {
		t.Fatal(err)
	}
	// Enqueue toward the dead peer: these frames belong to the old epoch and
	// must be discarded by the redirect, never replayed at the replacement.
	m0.Send(0, 1, 0, 11, []byte("stale"), 0)
	time.Sleep(50 * time.Millisecond) // let at least one dial fail

	m1, err := NewMesh("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m1.Close()
	d1 := &delivered{}
	if err := m1.Start(Config{Local: 1, Epoch: 2, Owner: []int{0, 1},
		Peers: map[int]string{}, Deliver: d1.fn, Obs: obs.NewRegistry(),
		PingInterval: -1}); err != nil {
		t.Fatal(err)
	}

	m0.Update(2, map[int]string{1: m1.Addr()})
	m0.Send(0, 1, 0, 12, []byte("fresh"), 0)
	waitFor(t, "post-update frame", func() bool { return d1.len() == 1 })
	if got, want := d1.get(0), `0->1 k0 t12 "fresh" d0s`; got != want {
		t.Fatalf("got %q want %q (stale frame replayed?)", got, want)
	}
}

// TestMeshUpdateKeepsUnchangedPeers: an Update that only bumps the epoch must
// not disturb an established connection to a peer whose address is unchanged
// — the preamble is validated at connect time only, so the surviving edge
// keeps its FIFO.
func TestMeshUpdateKeepsUnchangedPeers(t *testing.T) {
	check.NoLeaks(t)
	m0, m1, _, d1 := startPair(t, 7, -1)
	_ = m1
	m0.Send(0, 1, 0, 1, []byte("before"), 0)
	waitFor(t, "pre-update frame", func() bool { return d1.len() == 1 })

	m0.Update(8, map[int]string{1: m1.Addr()})
	m0.Send(0, 1, 0, 2, []byte("after"), 0)
	waitFor(t, "post-update frame", func() bool { return d1.len() == 2 })
	if got, want := d1.get(1), `0->1 k0 t2 "after" d0s`; got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

// TestMeshAddresslessPeerLearnsAddr: a process id named by Owner but absent
// from the peer address table (a slot that is dead at Start) gets an idle
// writer; Update supplies the address once the slot re-joins and traffic
// flows.
func TestMeshAddresslessPeerLearnsAddr(t *testing.T) {
	check.NoLeaks(t)
	m0, err := NewMesh("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m0.Close()
	d0 := &delivered{}
	if err := m0.Start(Config{Local: 0, Epoch: 3, Owner: []int{0, 1},
		Peers: map[int]string{}, Deliver: d0.fn, Obs: obs.NewRegistry(),
		PingInterval: -1}); err != nil {
		t.Fatal(err)
	}
	m1, err := NewMesh("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m1.Close()
	d1 := &delivered{}
	if err := m1.Start(Config{Local: 1, Epoch: 3, Owner: []int{0, 1},
		Peers: map[int]string{}, Deliver: d1.fn, Obs: obs.NewRegistry(),
		PingInterval: -1}); err != nil {
		t.Fatal(err)
	}
	m0.Update(3, map[int]string{1: m1.Addr()})
	m0.Send(0, 1, 0, 5, []byte("hello"), 0)
	waitFor(t, "frame to late-addressed peer", func() bool { return d1.len() == 1 })
}

// TestMeshCloseDuringReconnectBackoff: Close racing an active reconnect
// backoff (dials failing against a dead address) with concurrent senders must
// return promptly and leak nothing. Run under -race this also exercises the
// peer writer's closed/gen handoffs.
func TestMeshCloseDuringReconnectBackoff(t *testing.T) {
	check.NoLeaks(t)
	for i := 0; i < 8; i++ {
		m, err := NewMesh("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		d := &delivered{}
		if err := m.Start(Config{Local: 0, Epoch: 1, Owner: []int{0, 1},
			Peers: map[int]string{1: deadAddr(t)}, Deliver: d.fn,
			Obs: obs.NewRegistry(), PingInterval: -1}); err != nil {
			t.Fatal(err)
		}
		m.Send(0, 1, 0, 1, []byte("x"), 0)
		time.Sleep(time.Duration(i) * 7 * time.Millisecond) // land Close at varied backoff phases
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				m.Send(0, 1, 0, uint32(j), []byte("y"), 0)
			}
		}()
		start := time.Now()
		done := make(chan struct{})
		go func() {
			defer wg.Done()
			m.Close()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("Close wedged during reconnect backoff")
		}
		wg.Wait()
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("Close took %v during backoff", elapsed)
		}
	}
}

// TestMeshReconnectCounterAccuracy: repeated dial failures move the reconnect
// counter (the first-ever attempt is not a REconnect), and the counter goes
// quiet once a connection is established — no phantom reconnects while the
// edge is healthy.
func TestMeshReconnectCounterAccuracy(t *testing.T) {
	check.NoLeaks(t)
	reg := obs.NewRegistry()
	m0, err := NewMesh("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m0.Close()
	addr := deadAddr(t)
	d := &delivered{}
	if err := m0.Start(Config{Local: 0, Epoch: 4, Owner: []int{0, 1},
		Peers: map[int]string{1: addr}, Deliver: d.fn, Obs: reg,
		PingInterval: -1}); err != nil {
		t.Fatal(err)
	}
	rec := reg.Counter(obs.NetReconnects)
	m0.Send(0, 1, 0, 1, []byte("z"), 0)
	// Every failed dial after the first increments the counter.
	waitFor(t, "repeated reconnect attempts", func() bool { return rec.Value() >= 2 })

	// Bring the peer up; once connected and drained the counter must freeze.
	m1, err := NewMesh(addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer m1.Close()
	d1 := &delivered{}
	if err := m1.Start(Config{Local: 1, Epoch: 4, Owner: []int{0, 1},
		Peers: map[int]string{}, Deliver: d1.fn, Obs: obs.NewRegistry(),
		PingInterval: -1}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "delivery after reconnect", func() bool { return d1.len() == 1 })
	settled := rec.Value()
	for i := 0; i < 20; i++ {
		m0.Send(0, 1, 0, uint32(2+i), []byte("w"), 0)
	}
	waitFor(t, "healthy-edge traffic", func() bool { return d1.len() == 21 })
	if got := rec.Value(); got != settled {
		t.Fatalf("reconnect counter moved on a healthy edge: %d -> %d", settled, got)
	}
}
