// Package net is the TCP byte transport behind rt.Fabric: it carries rt
// messages between the processes of a havoqd cluster as length-prefixed
// frames over per-peer connections.
//
// Layering (DESIGN.md §10): this package moves bytes and preserves per-peer
// FIFO order — nothing more. Loss recovery for the data plane is the reliable
// mailbox's job (seq/ack/CRC/retransmit, riding unchanged on top); fault
// injection interposes at rt.Machine.send BEFORE frames reach this package,
// so internal/faults shapes networked traffic exactly as it shapes loopback
// traffic. A frame accepted by the reader is delivered exactly once; a
// connection that dies mid-write is re-dialed with backoff and the unwritten
// frames are resent (frames already handed to a dead kernel socket may be
// lost — the documented loss window the reliable mode exists to cover).
package net

import (
	"encoding/binary"
	"fmt"
)

// Wire format. Every frame is
//
//	[u32 length][u8 version][u8 kind][u16 flags][u32 from][u32 to][u32 tag][u64 delay_ns][payload]
//
// with length counting everything after the length field (header remainder +
// payload, little-endian throughout). kind is the rt message kind for data
// frames, or kindNetCtl for transport-internal ping/pong probes (flags
// discriminate). delay_ns carries a fault-injected delivery postponement so
// the receiving machine stamps the same visibility horizon an in-process
// inbox would have.
const (
	// ProtoVersion is the frame + preamble wire version; bumped on any
	// incompatible change so mismatched builds fail the handshake instead of
	// corrupting each other's streams.
	ProtoVersion = 1

	frameHeadLen = 24      // bytes after the length field, before payload
	lenPrefixLen = 4       // the u32 length field itself
	MaxFrame     = 1 << 26 // 64 MiB: largest accepted frame (length field value)

	// kindNetCtl marks transport-internal control frames (never delivered to
	// the machine).
	kindNetCtl = 0xFF

	flagPing uint16 = 1 << 0
	flagPong uint16 = 1 << 1
)

// frame is one decoded wire frame.
type frame struct {
	kind    uint8
	flags   uint16
	from    int
	to      int
	tag     uint32
	delayNS uint64
	payload []byte
}

// appendFrame encodes f onto dst and returns the extended buffer.
func appendFrame(dst []byte, f frame) []byte {
	n := frameHeadLen + len(f.payload)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, ProtoVersion, f.kind)
	dst = binary.LittleEndian.AppendUint16(dst, f.flags)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(f.from))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(f.to))
	dst = binary.LittleEndian.AppendUint32(dst, f.tag)
	dst = binary.LittleEndian.AppendUint64(dst, f.delayNS)
	return append(dst, f.payload...)
}

// decodeFrame parses the post-length portion of a frame. The returned
// frame's payload aliases buf.
func decodeFrame(buf []byte) (frame, error) {
	if len(buf) < frameHeadLen {
		return frame{}, fmt.Errorf("net: short frame: %d bytes", len(buf))
	}
	if buf[0] != ProtoVersion {
		return frame{}, fmt.Errorf("net: frame version %d, want %d", buf[0], ProtoVersion)
	}
	f := frame{
		kind:    buf[1],
		flags:   binary.LittleEndian.Uint16(buf[2:]),
		from:    int(binary.LittleEndian.Uint32(buf[4:])),
		to:      int(binary.LittleEndian.Uint32(buf[8:])),
		tag:     binary.LittleEndian.Uint32(buf[12:]),
		delayNS: binary.LittleEndian.Uint64(buf[16:]),
		payload: buf[frameHeadLen:],
	}
	return f, nil
}

// Connection preamble: written once by the dialing side before any frame,
// validated by the accepting side before any delivery.
//
//	[4 byte magic "HVQN"][u8 version][u8 pad][u16 pad][u32 from][u64 epoch]
//
// The epoch is the cluster generation minted by the coordinator: a process
// from a previous cluster incarnation (a stale worker that missed its
// shutdown) presents the wrong epoch and is refused at accept, which fences
// its traffic off the new cluster's message plane.
const preambleLen = 20

var preambleMagic = [4]byte{'H', 'V', 'Q', 'N'}

// appendPreamble encodes the connection preamble.
func appendPreamble(dst []byte, from int, epoch uint64) []byte {
	dst = append(dst, preambleMagic[:]...)
	dst = append(dst, ProtoVersion, 0)
	dst = binary.LittleEndian.AppendUint16(dst, 0)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(from))
	return binary.LittleEndian.AppendUint64(dst, epoch)
}

// decodePreamble validates a connection preamble and returns the sender's
// process id.
func decodePreamble(buf []byte, wantEpoch uint64) (from int, err error) {
	if len(buf) != preambleLen {
		return 0, fmt.Errorf("net: preamble length %d, want %d", len(buf), preambleLen)
	}
	if [4]byte(buf[:4]) != preambleMagic {
		return 0, fmt.Errorf("net: bad preamble magic %q", buf[:4])
	}
	if buf[4] != ProtoVersion {
		return 0, fmt.Errorf("net: peer speaks protocol version %d, want %d", buf[4], ProtoVersion)
	}
	epoch := binary.LittleEndian.Uint64(buf[12:])
	if epoch != wantEpoch {
		return 0, fmt.Errorf("net: peer cluster epoch %d, want %d (stale worker fenced)", epoch, wantEpoch)
	}
	return int(binary.LittleEndian.Uint32(buf[8:])), nil
}
