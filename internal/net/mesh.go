package net

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"havoqgt/internal/obs"
)

// DeliverFunc receives one inbound rt message decoded off the wire. The
// payload is freshly allocated per frame and owned by the callee (it flows
// into rt inboxes and from there into mailbox pools, which require exclusive
// references).
type DeliverFunc func(from, to int, kind uint8, tag uint32, payload []byte, delay time.Duration)

// Config wires a started Mesh to its cluster.
type Config struct {
	// Local is this process's id in the cluster.
	Local int
	// Epoch is the cluster generation minted by the coordinator; connections
	// presenting any other epoch are refused (see frame.go preamble).
	Epoch uint64
	// Peers maps every remote process id to its mesh listen address.
	Peers map[int]string
	// Owner maps a global rank to the process id hosting it; Owner[r] ==
	// Local means the rank is hosted here (those sends never reach the mesh).
	Owner []int
	// Deliver receives inbound data frames.
	Deliver DeliverFunc
	// Obs receives the transport metrics (net.* counters, per-peer RTT
	// histograms). Required.
	Obs *obs.Registry
	// PingInterval spaces the RTT probes per peer (0 = DefaultPingInterval;
	// negative disables probing).
	PingInterval time.Duration
}

// DefaultPingInterval spaces RTT probes when Config.PingInterval is zero.
const DefaultPingInterval = 250 * time.Millisecond

// Mesh is one process's endpoint of the cluster byte fabric: a listener for
// inbound frames and one outbound peer (queue + writer goroutine + TCP
// connection) per remote process. It implements rt.Fabric.
//
// Lifecycle: NewMesh binds the listener (so the address — possibly :0
// ephemeral — is known before cluster join), Start attaches the cluster
// configuration and spawns the accept/writer/ping machinery once the
// coordinator has handed out the peer table, Close tears everything down.
type Mesh struct {
	ln net.Listener

	cfg   Config
	peers map[int]*peer
	// epoch is the live fencing epoch: cfg.Epoch at Start, advanced by
	// Update when the coordinator reforms the cluster around a re-joined
	// worker. Read by the accept path (preamble validation) and the dialers.
	epoch atomic.Uint64

	mu     sync.Mutex
	conns  map[net.Conn]struct{} // accepted inbound connections
	closed bool

	wg sync.WaitGroup

	framesOut  *obs.Counter
	framesIn   *obs.Counter
	bytesOut   *obs.Counter
	bytesIn    *obs.Counter
	reconnects *obs.Counter

	pingStop chan struct{}
}

// NewMesh binds the mesh listener on addr (":0" picks an ephemeral port;
// Addr reports the bound address) without accepting anything yet.
func NewMesh(addr string) (*Mesh, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("net: mesh listen: %w", err)
	}
	return &Mesh{ln: ln, conns: make(map[net.Conn]struct{})}, nil
}

// Addr returns the listener's bound address.
func (m *Mesh) Addr() string { return m.ln.Addr().String() }

// Start attaches the cluster configuration: spawn one outbound peer per
// remote process, the accept loop, and the RTT probe loop. Must be called
// exactly once, before any rank traffic.
func (m *Mesh) Start(cfg Config) error {
	if cfg.Obs == nil {
		return errors.New("net: mesh config needs an obs registry")
	}
	if cfg.Deliver == nil {
		return errors.New("net: mesh config needs a deliver func")
	}
	m.cfg = cfg
	m.epoch.Store(cfg.Epoch)
	m.framesOut = cfg.Obs.Counter(obs.NetFramesOut)
	m.framesIn = cfg.Obs.Counter(obs.NetFramesIn)
	m.bytesOut = cfg.Obs.Counter(obs.NetBytesOut)
	m.bytesIn = cfg.Obs.Counter(obs.NetBytesIn)
	m.reconnects = cfg.Obs.Counter(obs.NetReconnects)
	// One peer per remote process named by either the address table or the
	// rank-owner map. A peer whose address is still unknown (a slot that is
	// dead at Start and will re-join later) gets an empty address: its writer
	// idles until Update supplies one. Keeping the full set here means the
	// peers map is immutable after Start — Send and the read loops touch it
	// without locks.
	ids := make(map[int]struct{}, len(cfg.Peers))
	for id := range cfg.Peers {
		ids[id] = struct{}{}
	}
	for _, id := range cfg.Owner {
		ids[id] = struct{}{}
	}
	m.peers = make(map[int]*peer, len(ids))
	for id := range ids {
		if id == cfg.Local {
			continue
		}
		m.peers[id] = newPeer(id, cfg.Peers[id], m)
	}
	m.wg.Add(1)
	go m.acceptLoop()
	interval := cfg.PingInterval
	if interval == 0 {
		interval = DefaultPingInterval
	}
	if interval > 0 {
		m.pingStop = make(chan struct{})
		m.wg.Add(1)
		go m.pingLoop(interval)
	}
	return nil
}

// Send implements rt.Fabric: route the message to the process hosting the
// destination rank. Called inline from rank goroutines, so it only encodes
// and enqueues; the peer's writer goroutine does the blocking I/O.
func (m *Mesh) Send(from, to int, kind uint8, tag uint32, payload []byte, delay time.Duration) {
	owner := m.cfg.Owner[to]
	p := m.peers[owner]
	if p == nil {
		panic(fmt.Sprintf("net: no peer for process %d hosting rank %d", owner, to))
	}
	p.enqueue(frame{kind: kind, from: from, to: to, tag: tag, delayNS: uint64(delay), payload: payload})
}

// Update re-points a started mesh at a refreshed cluster layout: the new
// fencing epoch and the current peer addresses (a re-joined worker listens
// somewhere new). The connection to a peer whose address changed is dropped
// and its queued frames discarded — they belong to queries the old epoch
// already aborted — and the writer re-dials through the epoch-fenced
// preamble with the usual capped backoff (a peer that has not adopted the
// new epoch yet refuses the dial until it has). Connections to unchanged
// peers are left untouched: the preamble is validated only at connect time,
// so a surviving edge keeps its FIFO and carries the new epoch's frames
// without loss.
func (m *Mesh) Update(epoch uint64, peers map[int]string) {
	m.epoch.Store(epoch)
	for id, addr := range peers {
		if id == m.cfg.Local || addr == "" {
			continue
		}
		if p := m.peers[id]; p != nil {
			p.redirect(addr)
		}
	}
}

// acceptLoop admits inbound connections and spawns a reader per connection.
func (m *Mesh) acceptLoop() {
	defer m.wg.Done()
	for {
		c, err := m.ln.Accept()
		if err != nil {
			return // listener closed
		}
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			c.Close()
			return
		}
		m.conns[c] = struct{}{}
		m.mu.Unlock()
		m.wg.Add(1)
		go m.readLoop(c)
	}
}

// dropConn unregisters and closes an inbound connection.
func (m *Mesh) dropConn(c net.Conn) {
	m.mu.Lock()
	delete(m.conns, c)
	m.mu.Unlock()
	c.Close()
}

// readLoop validates the preamble then decodes frames until the connection
// ends. Data frames are delivered with a freshly allocated payload; net
// control frames answer pings and close the RTT loop on pongs.
func (m *Mesh) readLoop(c net.Conn) {
	defer m.wg.Done()
	defer m.dropConn(c)
	var pre [preambleLen]byte
	if _, err := io.ReadFull(c, pre[:]); err != nil {
		return
	}
	peerID, err := decodePreamble(pre[:], m.epoch.Load())
	if err != nil {
		// Wrong epoch / version / magic: refuse by closing. The stale dialer
		// sees a broken connection, not a seat at the new cluster's table.
		return
	}
	var head [lenPrefixLen]byte
	var buf []byte
	for {
		if _, err := io.ReadFull(c, head[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(head[:])
		if n < frameHeadLen || n > MaxFrame {
			return // protocol violation: drop the connection
		}
		if uint32(cap(buf)) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(c, buf); err != nil {
			return
		}
		f, err := decodeFrame(buf)
		if err != nil {
			return
		}
		m.framesIn.Inc()
		m.bytesIn.Add(uint64(lenPrefixLen + n))
		if f.kind == kindNetCtl {
			m.handleCtl(peerID, f)
			continue
		}
		// Exclusive payload copy for the machine: buf is reused next frame.
		payload := append([]byte(nil), f.payload...)
		m.cfg.Deliver(f.from, f.to, f.kind, f.tag, payload, time.Duration(f.delayNS))
	}
}

// handleCtl answers transport-internal control frames: echo pings back
// through our outbound edge to the prober, observe RTT on pongs.
func (m *Mesh) handleCtl(peerID int, f frame) {
	switch {
	case f.flags&flagPing != 0:
		if p := m.peers[peerID]; p != nil {
			echo := append([]byte(nil), f.payload...)
			p.enqueue(frame{kind: kindNetCtl, flags: flagPong, from: m.cfg.Local, payload: echo})
		}
	case f.flags&flagPong != 0:
		if p := m.peers[peerID]; p != nil && len(f.payload) == 8 {
			sent := int64(binary.LittleEndian.Uint64(f.payload))
			if rtt := time.Now().UnixNano() - sent; rtt > 0 {
				p.rtt.Observe(uint64(rtt))
			}
		}
	}
}

// pingLoop probes every peer on the interval: payload is the send timestamp,
// echoed verbatim by the receiver, observed as RTT on return.
func (m *Mesh) pingLoop(interval time.Duration) {
	defer m.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.pingStop:
			return
		case <-t.C:
			var stamp [8]byte
			binary.LittleEndian.PutUint64(stamp[:], uint64(time.Now().UnixNano()))
			for _, p := range m.peers {
				p.enqueue(frame{kind: kindNetCtl, flags: flagPing, from: m.cfg.Local, payload: stamp[:]})
			}
		}
	}
}

// Close tears the mesh down: stop probing, close the listener and every
// connection, join every goroutine. Safe to call more than once.
func (m *Mesh) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	conns := make([]net.Conn, 0, len(m.conns))
	for c := range m.conns {
		conns = append(conns, c)
	}
	m.mu.Unlock()
	if m.pingStop != nil {
		close(m.pingStop)
	}
	m.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	for _, p := range m.peers {
		p.close()
	}
	m.wg.Wait()
	return nil
}
