package ref

// Sequential PageRank reference in deterministic fixed-point arithmetic.
// Floating-point PageRank is scheduling-dependent in a distributed setting
// (summation order changes low bits), so the engine's pagerank query and
// this reference both work in integer fixed-point: ranks are scaled by
// PRScale, the damping factor is the exact rational PRAlphaNum/PRAlphaDen,
// and per-edge contributions use truncating integer division. Every rank of
// the machine, the cluster, and this loop then produce bit-identical values,
// which is what makes pagerank results hashable for cluster equivalence
// checks.

// PRScale is the fixed-point scale: a rank of 1.0 is PRScale. 2^40 leaves
// 24 high bits of headroom (total mass is ≤ n·base + S ≈ 2·PRScale) and
// ample low-bit precision for the damping rational.
const PRScale = uint64(1) << 40

// PRAlphaNum/PRAlphaDen is the damping factor 0.85 as an exact rational.
const (
	PRAlphaNum = 85
	PRAlphaDen = 100
)

// PRBase returns the per-vertex teleport mass (1-α)/n at fixed point.
func PRBase(n uint64) uint64 { return PRScale / PRAlphaDen * (PRAlphaDen - PRAlphaNum) / n }

// PRContrib returns the per-edge contribution a vertex with the given rank
// and degree sends each neighbor: (α·rank/deg), truncating.
func PRContrib(rank, deg uint64) uint64 { return rank * PRAlphaNum / PRAlphaDen / deg }

// PageRank runs iters synchronous fixed-point PageRank iterations and
// returns the per-vertex ranks. Duplicate edges count with multiplicity and
// self-loops feed a vertex's own rank, exactly as the distributed kernel
// counts them; dangling (degree-0) vertices keep the teleport mass only
// (their damped mass leaks, the standard simplification).
func PageRank(adj Adj, iters int) []uint64 {
	n := uint64(len(adj))
	ranks := make([]uint64, n)
	for v := range ranks {
		ranks[v] = PRScale / n
	}
	if iters <= 0 {
		return ranks
	}
	base := PRBase(n)
	contrib := make([]uint64, n)
	next := make([]uint64, n)
	for k := 0; k < iters; k++ {
		for v := range contrib {
			if deg := uint64(len(adj[v])); deg > 0 {
				contrib[v] = PRContrib(ranks[v], deg)
			}
		}
		for v := range next {
			acc := base
			for _, u := range adj[v] {
				acc += contrib[u]
			}
			next[v] = acc
		}
		ranks, next = next, ranks
	}
	return ranks
}
