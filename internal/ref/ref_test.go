package ref

import (
	"testing"

	"havoqgt/internal/graph"
	"havoqgt/internal/xrand"
)

func TestBuildAdjSorted(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 5}, {Src: 0, Dst: 1}, {Src: 0, Dst: 3}, {Src: 2, Dst: 0}}
	adj := BuildAdj(edges, 6)
	if len(adj[0]) != 3 || adj[0][0] != 1 || adj[0][1] != 3 || adj[0][2] != 5 {
		t.Fatalf("adj[0] = %v", adj[0])
	}
	if !adj.HasEdge(2, 0) || adj.HasEdge(2, 1) {
		t.Fatal("HasEdge wrong")
	}
}

func TestBFSLine(t *testing.T) {
	edges := graph.Undirect([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}})
	levels, parents := BFS(BuildAdj(edges, 4), 0)
	for v, want := range []uint32{0, 1, 2, 3} {
		if levels[v] != want {
			t.Fatalf("level(%d) = %d", v, levels[v])
		}
	}
	if parents[3] != 2 || parents[0] != 0 {
		t.Fatalf("parents = %v", parents)
	}
	if MaxLevel(levels) != 3 {
		t.Fatalf("MaxLevel = %d", MaxLevel(levels))
	}
}

func TestBFSDisconnected(t *testing.T) {
	edges := graph.Undirect([]graph.Edge{{Src: 0, Dst: 1}})
	levels, parents := BFS(BuildAdj(edges, 4), 0)
	if levels[2] != Unreached || parents[2] != graph.Nil {
		t.Fatal("unreachable vertex has level/parent")
	}
}

func TestKCorePeeling(t *testing.T) {
	// Triangle with a tail: 2-core is the triangle.
	edges := graph.Simplify(graph.Undirect([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}, {Src: 2, Dst: 3}}))
	alive := KCore(BuildAdj(edges, 4), 2)
	want := []bool{true, true, true, false}
	for v := range want {
		if alive[v] != want[v] {
			t.Fatalf("2-core membership of %d = %v", v, alive[v])
		}
	}
	if CoreSize(alive) != 3 {
		t.Fatalf("core size %d", CoreSize(alive))
	}
}

func TestKCoreDegeneracyOrderInvariant(t *testing.T) {
	// k-core of k-core is itself: peeling twice changes nothing.
	rng := xrand.New(3)
	var pairs []graph.Edge
	for i := 0; i < 400; i++ {
		pairs = append(pairs, graph.Edge{Src: graph.Vertex(rng.Uint64n(64)), Dst: graph.Vertex(rng.Uint64n(64))})
	}
	edges := graph.Simplify(graph.Undirect(pairs))
	adj := BuildAdj(edges, 64)
	alive := KCore(adj, 3)
	// Rebuild the subgraph and peel again.
	var sub []graph.Edge
	for _, e := range edges {
		if alive[e.Src] && alive[e.Dst] {
			sub = append(sub, e)
		}
	}
	alive2 := KCore(BuildAdj(sub, 64), 3)
	for v := range alive {
		if alive[v] != alive2[v] {
			t.Fatalf("peeling not idempotent at vertex %d", v)
		}
	}
	// Every surviving vertex must have >= 3 surviving neighbors.
	for v := range alive {
		if !alive[v] {
			continue
		}
		deg := 0
		for _, u := range adj[v] {
			if alive[u] {
				deg++
			}
		}
		if deg < 3 {
			t.Fatalf("vertex %d in 3-core has %d core neighbors", v, deg)
		}
	}
}

func TestCountTrianglesKnown(t *testing.T) {
	k4 := graph.Simplify(graph.Undirect([]graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3}, {Src: 1, Dst: 2}, {Src: 1, Dst: 3}, {Src: 2, Dst: 3}}))
	if got := CountTriangles(BuildAdj(k4, 4)); got != 4 {
		t.Fatalf("K4 has %d triangles", got)
	}
	ring := graph.Simplify(graph.Undirect([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0}}))
	if got := CountTriangles(BuildAdj(ring, 4)); got != 0 {
		t.Fatalf("C4 has %d triangles", got)
	}
}

func TestCountTrianglesCompleteGraph(t *testing.T) {
	// K_n has C(n,3) triangles.
	n := uint64(9)
	var pairs []graph.Edge
	for a := uint64(0); a < n; a++ {
		for b := a + 1; b < n; b++ {
			pairs = append(pairs, graph.Edge{Src: graph.Vertex(a), Dst: graph.Vertex(b)})
		}
	}
	edges := graph.Simplify(graph.Undirect(pairs))
	want := n * (n - 1) * (n - 2) / 6
	if got := CountTriangles(BuildAdj(edges, n)); got != want {
		t.Fatalf("K%d has %d triangles, want %d", n, got, want)
	}
}

func TestReachedEdges(t *testing.T) {
	edges := graph.Undirect([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 5, Dst: 6}})
	adj := BuildAdj(edges, 8)
	levels, _ := BFS(adj, 0)
	if got := ReachedEdges(adj, levels); got != 2 {
		t.Fatalf("ReachedEdges = %d, want 2", got)
	}
}

func TestCoreNumbersKnown(t *testing.T) {
	// Triangle (coreness 2) with a tail (coreness 1) and an isolate (0).
	edges := graph.Simplify(graph.Undirect([]graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}, {Src: 2, Dst: 3},
	}))
	got := CoreNumbers(BuildAdj(edges, 5))
	want := []uint32{2, 2, 2, 1, 0}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("coreness(%d) = %d, want %d (all: %v)", v, got[v], want[v], got)
		}
	}
}

func TestCoreNumbersConsistentWithKCore(t *testing.T) {
	// Property: coreness(v) >= k  <=>  v in k-core, for every k.
	rng := xrand.New(8)
	var pairs []graph.Edge
	for i := 0; i < 500; i++ {
		pairs = append(pairs, graph.Edge{
			Src: graph.Vertex(rng.Uint64n(96)), Dst: graph.Vertex(rng.Uint64n(96)),
		})
	}
	edges := graph.Simplify(graph.Undirect(pairs))
	adj := BuildAdj(edges, 96)
	coreness := CoreNumbers(adj)
	for _, k := range []uint32{1, 2, 3, 4, 5, 8} {
		alive := KCore(adj, k)
		for v := range alive {
			if alive[v] != (coreness[v] >= k) {
				t.Fatalf("k=%d vertex %d: in-core=%v but coreness=%d", k, v, alive[v], coreness[v])
			}
		}
	}
}
