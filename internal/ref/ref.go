// Package ref provides sequential in-memory reference implementations of
// BFS, k-core decomposition, and triangle counting. They serve two roles:
// ground truth for validating the distributed asynchronous implementations
// (property tests compare results on random graphs), and the single-node
// baseline series in the experiment harness.
package ref

import (
	"slices"

	"havoqgt/internal/graph"
)

// Unreached marks vertices not reached by BFS.
const Unreached = ^uint32(0)

// Adj is a sequential adjacency-list graph.
type Adj [][]graph.Vertex

// BuildAdj builds adjacency lists from a directed edge list (store both
// directions beforehand for undirected semantics). Lists are sorted.
func BuildAdj(edges []graph.Edge, n uint64) Adj {
	adj := make(Adj, n)
	deg := make([]uint32, n)
	for _, e := range edges {
		deg[e.Src]++
	}
	for v := range adj {
		adj[v] = make([]graph.Vertex, 0, deg[v])
	}
	for _, e := range edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
	}
	for v := range adj {
		slices.Sort(adj[v])
	}
	return adj
}

// HasEdge reports whether u→v exists (binary search).
func (a Adj) HasEdge(u, v graph.Vertex) bool {
	_, ok := slices.BinarySearch(a[u], v)
	return ok
}

// BFS returns levels and parents of a breadth-first search from source.
func BFS(adj Adj, source graph.Vertex) (levels []uint32, parents []graph.Vertex) {
	levels = make([]uint32, len(adj))
	parents = make([]graph.Vertex, len(adj))
	for i := range levels {
		levels[i] = Unreached
		parents[i] = graph.Nil
	}
	levels[source] = 0
	parents[source] = source
	queue := []graph.Vertex{source}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, t := range adj[v] {
			if levels[t] == Unreached {
				levels[t] = levels[v] + 1
				parents[t] = v
				queue = append(queue, t)
			}
		}
	}
	return levels, parents
}

// KCore returns the k-core membership of a simple undirected graph
// (adjacency must contain both directions, no duplicates or self loops),
// by iterative peeling.
func KCore(adj Adj, k uint32) []bool {
	alive := make([]bool, len(adj))
	deg := make([]uint32, len(adj))
	var queue []graph.Vertex
	for v := range adj {
		alive[v] = true
		deg[v] = uint32(len(adj[v]))
		if deg[v] < k {
			alive[v] = false
			queue = append(queue, graph.Vertex(v))
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, t := range adj[v] {
			if !alive[t] {
				continue
			}
			deg[t]--
			if deg[t] < k {
				alive[t] = false
				queue = append(queue, t)
			}
		}
	}
	return alive
}

// CountTriangles counts triangles in a simple undirected graph: for every
// vertex a and neighbor pair a < m < w, check the closing edge m–w.
func CountTriangles(adj Adj) uint64 {
	var count uint64
	for av := range adj {
		a := graph.Vertex(av)
		nbrs := adj[a]
		// Larger neighbors only (lists are sorted).
		i, _ := slices.BinarySearch(nbrs, a+1)
		larger := nbrs[i:]
		for x := 0; x < len(larger); x++ {
			for y := x + 1; y < len(larger); y++ {
				if adj.HasEdge(larger[x], larger[y]) {
					count++
				}
			}
		}
	}
	return count
}

// CoreSize returns the number of true entries.
func CoreSize(alive []bool) uint64 {
	var n uint64
	for _, a := range alive {
		if a {
			n++
		}
	}
	return n
}

// MaxLevel returns the deepest finite BFS level.
func MaxLevel(levels []uint32) uint32 {
	var mx uint32
	for _, l := range levels {
		if l != Unreached && l > mx {
			mx = l
		}
	}
	return mx
}

// ReachedEdges returns the Graph500 traversed-edge count: directed edges
// incident to reached vertices, halved.
func ReachedEdges(adj Adj, levels []uint32) uint64 {
	var sum uint64
	for v := range adj {
		if levels[v] != Unreached {
			sum += uint64(len(adj[v]))
		}
	}
	return sum / 2
}

// CoreNumbers returns each vertex's core number: the largest k such that the
// vertex belongs to the k-core. Computed by the standard peeling order
// (repeatedly removing a minimum-degree vertex).
func CoreNumbers(adj Adj) []uint32 {
	n := len(adj)
	deg := make([]int, n)
	for v := range adj {
		deg[v] = len(adj[v])
	}
	removed := make([]bool, n)
	coreNum := make([]uint32, n)
	// Bucket queue over degrees for O(V + E).
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	buckets := make([][]graph.Vertex, maxDeg+1)
	for v := range adj {
		buckets[deg[v]] = append(buckets[deg[v]], graph.Vertex(v))
	}
	k := 0
	for d := 0; d <= maxDeg; {
		if len(buckets[d]) == 0 {
			d++
			continue
		}
		v := buckets[d][len(buckets[d])-1]
		buckets[d] = buckets[d][:len(buckets[d])-1]
		if removed[v] || deg[v] != d {
			continue // stale bucket entry
		}
		if d > k {
			k = d
		}
		coreNum[v] = uint32(k)
		removed[v] = true
		for _, t := range adj[v] {
			if removed[t] {
				continue
			}
			deg[t]--
			buckets[deg[t]] = append(buckets[deg[t]], t)
			if deg[t] < d {
				d = deg[t] // a neighbor fell into an earlier bucket
			}
		}
	}
	return coreNum
}
