package ref

import (
	"container/heap"

	"havoqgt/internal/graph"
)

// WeightFunc supplies edge weights for the weighted reference algorithms.
type WeightFunc func(u, v graph.Vertex) uint64

// UnreachedDist marks vertices not reached by Dijkstra.
const UnreachedDist = ^uint64(0)

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	v graph.Vertex
	d uint64
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].d < q[j].d }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// Dijkstra returns shortest-path distances and parents from source under w.
func Dijkstra(adj Adj, source graph.Vertex, w WeightFunc) (dist []uint64, parents []graph.Vertex) {
	dist = make([]uint64, len(adj))
	parents = make([]graph.Vertex, len(adj))
	for i := range dist {
		dist[i] = UnreachedDist
		parents[i] = graph.Nil
	}
	dist[source] = 0
	parents[source] = source
	q := &pq{{v: source, d: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.d != dist[it.v] {
			continue // stale entry
		}
		for _, t := range adj[it.v] {
			nd := it.d + w(it.v, t)
			if nd < dist[t] {
				dist[t] = nd
				parents[t] = it.v
				heap.Push(q, pqItem{v: t, d: nd})
			}
		}
	}
	return dist, parents
}

// Components returns the per-vertex component label (smallest vertex id in
// the component) and the number of components.
func Components(adj Adj) ([]graph.Vertex, uint64) {
	labels := make([]graph.Vertex, len(adj))
	for i := range labels {
		labels[i] = graph.Nil
	}
	var count uint64
	for v := range adj {
		if labels[v] != graph.Nil {
			continue
		}
		count++
		root := graph.Vertex(v)
		labels[v] = root
		queue := []graph.Vertex{root}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, t := range adj[u] {
				if labels[t] == graph.Nil {
					labels[t] = root
					queue = append(queue, t)
				}
			}
		}
	}
	return labels, count
}
