// Package mailbox implements the paper's routed, aggregating communication
// layer (§III-B). Dense all-to-all visitor traffic is routed through a
// synthetic topology — 1D (direct), 2D (√p×√p), or 3D — so each rank only
// maintains O(p), O(√p), or O(p^(1/3)) communication channels, at the cost of
// extra hops. Aggregation buffers per channel batch small visitor records
// into large transport messages; routing multiplies the aggregation
// opportunity by the channel fan-in, which is the effect the paper exploits
// on BG/P.
package mailbox

import (
	"fmt"
	"math"
)

// Topology computes next hops for routed delivery. Implementations must
// guarantee that repeatedly applying NextHop reaches dest in a bounded number
// of hops.
type Topology interface {
	// NextHop returns the rank to forward to next on the route from `from`
	// to `dest`. Precondition: from != dest.
	NextHop(from, dest int) int
	// MaxChannels returns an upper bound on the number of distinct next hops
	// a rank uses (the per-rank channel count the topology targets).
	MaxChannels() int
	// Diameter returns the maximum hop count between any pair.
	Diameter() int
	Name() string
}

// Direct is the 1D topology: every rank sends straight to the destination.
// p-1 channels per rank, 1 hop.
type Direct struct{ P int }

// NewDirect returns the direct (unrouted) topology for p ranks.
func NewDirect(p int) Direct { return Direct{P: p} }

func (t Direct) NextHop(from, dest int) int { return dest }
func (t Direct) MaxChannels() int           { return t.P - 1 }
func (t Direct) Diameter() int              { return 1 }
func (t Direct) Name() string               { return "1d" }

// Grid2D arranges ranks in a rows×cols grid (row-major). A message from
// (r_f, c_f) to (r_d, c_d) first travels along the sender's row to the
// destination's column — rank (r_f, c_d) — then down that column. This is the
// routing of Figure 4: rank 11 (row 2, col 3 of a 4×4 grid) sending to rank 5
// (row 1, col 1) is first aggregated and routed through rank 9 (row 2,
// col 1). Channels per rank: (cols-1)+(rows-1) = O(√p); 2 hops.
type Grid2D struct {
	P, Rows, Cols int
}

// NewGrid2D returns a 2D routing topology for p ranks, choosing the exact
// factorization p = rows×cols closest to square (so every routing pivot
// exists). A prime p degenerates to a 1×p grid, which is honest: such rank
// counts cannot be gridded, and the paper's machines use power-of-two or
// torus-shaped partitions.
func NewGrid2D(p int) Grid2D {
	rows, cols := factor2(p)
	return Grid2D{P: p, Rows: rows, Cols: cols}
}

// factor2 returns (a, b) with a*b = p, a <= b, a as large as possible.
func factor2(p int) (a, b int) {
	if p < 1 {
		return 1, 1
	}
	a = 1
	for d := 1; d*d <= p; d++ {
		if p%d == 0 {
			a = d
		}
	}
	return a, p / a
}

func (t Grid2D) coords(r int) (row, col int) { return r / t.Cols, r % t.Cols }
func (t Grid2D) rank(row, col int) int       { return row*t.Cols + col }

func (t Grid2D) NextHop(from, dest int) int {
	rf, cf := t.coords(from)
	_, cd := t.coords(dest)
	if cf != cd {
		// Move along the row to the destination column. With a ragged last
		// row the pivot rank may not exist; fall back to direct delivery.
		if pivot := t.rank(rf, cd); pivot < t.P {
			return pivot
		}
		return dest
	}
	return dest // same column: one hop down the column
}

func (t Grid2D) MaxChannels() int { return (t.Cols - 1) + (t.Rows - 1) }
func (t Grid2D) Diameter() int    { return 2 }
func (t Grid2D) Name() string     { return "2d" }

// Grid3D arranges ranks in an x×y×z grid and routes by fixing one coordinate
// per hop (x, then y, then z), mirroring the BG/P 3D-torus-shaped routing the
// paper uses at 131K cores. Channels per rank: (dx-1)+(dy-1)+(dz-1) =
// O(p^(1/3)); 3 hops.
type Grid3D struct {
	P, DX, DY, DZ int
}

// NewGrid3D returns a 3D routing topology for p ranks using the exact
// factorization p = dx×dy×dz closest to cubic.
func NewGrid3D(p int) Grid3D {
	if p < 1 {
		p = 1
	}
	// Largest divisor of p not exceeding cbrt(p), then square-factor the rest.
	cbrt := int(math.Cbrt(float64(p)))
	dz := 1
	for d := 1; d <= cbrt+1 && d <= p; d++ {
		if p%d == 0 && d*d*d <= p {
			dz = d
		}
	}
	dy, dx := factor2(p / dz)
	return Grid3D{P: p, DX: dx, DY: dy, DZ: dz}
}

func (t Grid3D) coords(r int) (x, y, z int) {
	x = r % t.DX
	y = (r / t.DX) % t.DY
	z = r / (t.DX * t.DY)
	return
}

func (t Grid3D) rank(x, y, z int) int { return x + t.DX*(y+t.DY*z) }

func (t Grid3D) NextHop(from, dest int) int {
	xf, yf, zf := t.coords(from)
	xd, yd, zd := t.coords(dest)
	var hop int
	switch {
	case xf != xd:
		hop = t.rank(xd, yf, zf)
	case yf != yd:
		hop = t.rank(xf, yd, zf)
	default:
		hop = t.rank(xf, yf, zd)
	}
	if hop >= t.P {
		return dest // ragged grid edge: fall back to direct delivery
	}
	return hop
}

func (t Grid3D) MaxChannels() int { return (t.DX - 1) + (t.DY - 1) + (t.DZ - 1) }
func (t Grid3D) Diameter() int    { return 3 }
func (t Grid3D) Name() string     { return "3d" }

// ByName constructs a topology from its name ("1d", "2d", "3d").
func ByName(name string, p int) (Topology, error) {
	switch name {
	case "1d", "direct":
		return NewDirect(p), nil
	case "2d":
		return NewGrid2D(p), nil
	case "3d":
		return NewGrid3D(p), nil
	default:
		return nil, fmt.Errorf("mailbox: unknown topology %q", name)
	}
}
