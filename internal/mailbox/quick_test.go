package mailbox

import (
	"testing"
	"testing/quick"
)

// TestQuickRoutesTerminate: for any (p, from, dest) and every topology, the
// route reaches the destination within the topology's diameter.
func TestQuickRoutesTerminate(t *testing.T) {
	f := func(pSel uint8, fromSel, destSel uint16) bool {
		p := int(pSel)%128 + 1
		from := int(fromSel) % p
		dest := int(destSel) % p
		if from == dest {
			return true
		}
		for _, topo := range []Topology{NewDirect(p), NewGrid2D(p), NewGrid3D(p)} {
			cur := from
			hops := 0
			for cur != dest {
				next := topo.NextHop(cur, dest)
				if next < 0 || next >= p || next == cur {
					return false
				}
				cur = next
				hops++
				if hops > topo.Diameter() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGridFactorizationsExact: the 2D and 3D grids always factor p
// exactly (every routing pivot exists).
func TestQuickGridFactorizationsExact(t *testing.T) {
	f := func(pSel uint16) bool {
		p := int(pSel)%1024 + 1
		g2 := NewGrid2D(p)
		if g2.Rows*g2.Cols != p {
			return false
		}
		g3 := NewGrid3D(p)
		return g3.DX*g3.DY*g3.DZ == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
