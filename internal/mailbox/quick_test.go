package mailbox

import (
	"testing"
	"testing/quick"

	"havoqgt/internal/rt"
)

// TestQuickRoutesTerminate: for any (p, from, dest) and every topology, the
// route reaches the destination within the topology's diameter.
func TestQuickRoutesTerminate(t *testing.T) {
	f := func(pSel uint8, fromSel, destSel uint16) bool {
		p := int(pSel)%128 + 1
		from := int(fromSel) % p
		dest := int(destSel) % p
		if from == dest {
			return true
		}
		for _, topo := range []Topology{NewDirect(p), NewGrid2D(p), NewGrid3D(p)} {
			cur := from
			hops := 0
			for cur != dest {
				next := topo.NextHop(cur, dest)
				if next < 0 || next >= p || next == cur {
					return false
				}
				cur = next
				hops++
				if hops > topo.Diameter() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickChannelsUsedWithinBound: after any sequence of sends with
// flushes interleaved, a rank's ChannelsUsed never exceeds the topology's
// MaxChannels bound. Guards the distinct-hop counting fix: counting buffer
// (re)creations instead of distinct hops inflates past the bound as soon as
// a FlushAll lands between sends to the same next hop.
func TestQuickChannelsUsedWithinBound(t *testing.T) {
	f := func(pSel uint8, dests []uint16, flushMask uint8) bool {
		p := int(pSel)%32 + 1
		ok := true
		m := rt.NewMachine(p)
		m.Run(func(r *rt.Rank) {
			if r.Rank() != 0 {
				return
			}
			for _, topo := range []Topology{NewDirect(p), NewGrid2D(p), NewGrid3D(p)} {
				box := New(r, topo, nil, WithFlushBytes(1<<20))
				for i, d := range dests {
					box.Send(int(d)%p, []byte("q"))
					if i%8 == int(flushMask)%8 {
						box.FlushAll()
					}
				}
				if got := box.Stats().ChannelsUsed; got > topo.MaxChannels() {
					t.Logf("%s p=%d: ChannelsUsed=%d exceeds MaxChannels=%d",
						topo.Name(), p, got, topo.MaxChannels())
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGridFactorizationsExact: the 2D and 3D grids always factor p
// exactly (every routing pivot exists).
func TestQuickGridFactorizationsExact(t *testing.T) {
	f := func(pSel uint16) bool {
		p := int(pSel)%1024 + 1
		g2 := NewGrid2D(p)
		if g2.Rows*g2.Cols != p {
			return false
		}
		g3 := NewGrid3D(p)
		return g3.DX*g3.DY*g3.DZ == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
