package mailbox

import (
	"fmt"
	"testing"
	"time"

	"havoqgt/internal/obs"
	"havoqgt/internal/rt"
	"havoqgt/internal/termination"
)

// TestObsCountersPopulateAcrossSubsystems runs one all-to-all exchange on a
// 2D-routed machine and checks that the machine's obs.Registry saw activity
// from every wired subsystem — transport, mailbox, and termination — then
// verifies that Machine.ResetStats (the single reset path) zeroes them all.
func TestObsCountersPopulateAcrossSubsystems(t *testing.T) {
	p := 4
	m := rt.NewMachine(p)
	m.Run(func(r *rt.Rank) {
		det := termination.New(r)
		box := New(r, NewGrid2D(p), det)
		for dest := 0; dest < p; dest++ {
			box.Send(dest, []byte(fmt.Sprintf("%d->%d", r.Rank(), dest)))
		}
		deadline := time.Now().Add(20 * time.Second)
		for {
			box.Poll()
			box.FlushAll()
			if det.Pump(box.Idle()) {
				break
			}
			if time.Now().After(deadline) {
				panic("exchange did not quiesce")
			}
		}
	})

	snap := m.Obs().Snapshot()
	if got := snap.Counter(obs.MBRecordsSent); got != uint64(p*p) {
		t.Fatalf("%s = %d, want %d", obs.MBRecordsSent, got, p*p)
	}
	if got := snap.Counter(obs.MBRecordsDelivered); got != uint64(p*p) {
		t.Fatalf("%s = %d, want %d", obs.MBRecordsDelivered, got, p*p)
	}
	// Routed records must have taken at least one hop each beyond loopback.
	if snap.Counter(obs.MBHops) == 0 {
		t.Fatalf("%s is zero after a routed exchange", obs.MBHops)
	}
	for _, name := range []string{
		obs.RTMsgs, obs.RTBytes,
		obs.RTKindMsgs("mailbox"), obs.RTKindMsgs("control"),
		obs.MBEnvelopesSent, obs.MBEnvelopesRecv,
		obs.TermWaves,
	} {
		if snap.Counter(name) == 0 {
			t.Fatalf("counter %s is zero after a full exchange", name)
		}
	}
	// Mattern's double-wave rule: at least two completed waves.
	if waves := snap.Counter(obs.TermWaves); waves < 2 {
		t.Fatalf("%s = %d, want >= 2", obs.TermWaves, waves)
	}
	if h, ok := snap.Histograms[obs.MBEnvelopeBytes]; !ok || h.Count == 0 {
		t.Fatalf("histogram %s missing or empty", obs.MBEnvelopeBytes)
	}

	// One reset path for everything: ResetStats must zero every subsystem's
	// counters, per-rank vectors, and histograms at once.
	m.ResetStats()
	after := m.Obs().Snapshot()
	for name, v := range after.Counters {
		if v != 0 {
			t.Fatalf("counter %s = %d after ResetStats, want 0", name, v)
		}
	}
	for name, h := range after.Histograms {
		if h.Count != 0 {
			t.Fatalf("histogram %s count = %d after ResetStats, want 0", name, h.Count)
		}
	}
}
