// Fuzz targets for the message plane. Seed corpora live under
// testdata/fuzz/<Target>/ (the committed regression corpus); CI runs each
// target briefly via `make fuzz-smoke`.
package mailbox_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	"havoqgt/internal/check"
	"havoqgt/internal/mailbox"
	"havoqgt/internal/rt"
)

const fuzzRanks = 3 // matches check.HostileCorpusRanks

// refDecode is an independent reimplementation of the hardened envelope
// decoding rules, used as the differential oracle for FuzzEnvelopeDecode.
// It returns the payloads deliverable to rank `self` of a size-p machine,
// the number of records that must be re-forwarded, and the number of decode
// errors.
func refDecode(p []byte, size, self int) (deliver [][]byte, forwarded int, errs uint64) {
	const hdr = 12 // [finalDest u32][tag u32][payloadLen u32]
	for len(p) > 0 {
		if len(p) < hdr {
			return deliver, forwarded, errs + 1
		}
		dest := int(binary.LittleEndian.Uint32(p[0:]))
		n := int(binary.LittleEndian.Uint32(p[8:]))
		if n > len(p)-hdr {
			return deliver, forwarded, errs + 1
		}
		rec := p[hdr : hdr+n]
		p = p[hdr+n:]
		switch {
		case dest < 0 || dest >= size:
			errs++
		case dest == self:
			deliver = append(deliver, append([]byte(nil), rec...))
		default:
			forwarded++
		}
	}
	return deliver, forwarded, errs
}

// FuzzEnvelopeDecode feeds arbitrary bytes to Box.Poll as a transport
// envelope. Poll must never panic, must agree with the independent reference
// decoder on deliveries/forwards/errors, and delivered payloads must be
// exclusive copies (mutating the envelope afterwards cannot change them).
func FuzzEnvelopeDecode(f *testing.F) {
	f.Add([]byte{})
	for _, h := range check.HostileCorpus() {
		f.Add(h.Payload)
	}
	f.Add(check.Envelope(
		check.EnvRecord{Dest: 0, Payload: []byte("self")},
		check.EnvRecord{Dest: 1, Payload: []byte("forward")},
		check.EnvRecord{Dest: 2, Payload: bytes.Repeat([]byte{0xAB}, 64)},
	))
	f.Fuzz(func(t *testing.T, data []byte) {
		wantDeliver, wantForward, wantErrs := refDecode(data, fuzzRanks, 0)
		// Two identical rounds through one Box. Round 1 exercises the cold
		// decode path; between rounds the consumed envelope is recycled into
		// the box's buffer pool (and scribbled over by the test while
		// pool-resident), and FlushAll clears the aggregation buffers — so
		// round 2 decodes into forwarding buffers drawn from poisoned pooled
		// memory. Both rounds must agree exactly with the reference decoder.
		rounds := make([][]mailbox.Record, 2)
		var st mailbox.Stats
		m := rt.NewMachine(fuzzRanks)
		m.Run(func(r *rt.Rank) {
			if r.Rank() != 0 {
				return
			}
			box := mailbox.New(r, mailbox.NewDirect(fuzzRanks), nil, mailbox.WithFlushBytes(1<<30))
			for round := 0; round < 2; round++ {
				envelope := append([]byte(nil), data...)
				r.Send(0, rt.KindMailbox, 0, envelope)
				recs := box.Poll()
				if got := box.PendingRecords(); got != wantForward {
					t.Fatalf("round %d: PendingRecords = %d, want %d forwarded-in-buffer",
						round, got, wantForward)
				}
				// Delivered payloads must not alias the envelope: scribbling
				// over it after Poll cannot alter them. (After round 1 this
				// also poisons the pooled copy of the envelope buffer.)
				for i := range envelope {
					envelope[i] = 0xFF
				}
				// Records expire at the box's next Poll, so snapshot copies
				// for the cross-round comparison below.
				for _, rec := range recs {
					rounds[round] = append(rounds[round], mailbox.Record{
						Tag:     rec.Tag,
						Payload: append([]byte(nil), rec.Payload...),
					})
				}
				// Ship the parked forwards so round 2's enqueues draw fresh
				// buffers from the (poisoned) pool.
				box.FlushAll()
			}
			st = box.Stats()
		})
		for round, recs := range rounds {
			if len(recs) != len(wantDeliver) {
				t.Fatalf("round %d: delivered %d records, reference decoder says %d",
					round, len(recs), len(wantDeliver))
			}
			for i, rec := range recs {
				if !bytes.Equal(rec.Payload, wantDeliver[i]) {
					t.Fatalf("round %d: record %d = %x, want %x (aliasing or framing bug)",
						round, i, rec.Payload, wantDeliver[i])
				}
			}
		}
		if st.RecordsForwarded != uint64(2*wantForward) {
			t.Fatalf("RecordsForwarded = %d, want %d", st.RecordsForwarded, uint64(2*wantForward))
		}
		if st.DecodeErrors != 2*wantErrs {
			t.Fatalf("DecodeErrors = %d, want %d", st.DecodeErrors, 2*wantErrs)
		}
	})
}

// FuzzTopologyRoute checks, for arbitrary (p, from, dest) and every
// topology, that repeated NextHop application reaches dest within the
// topology's diameter, never leaves [0, p), and never stalls.
func FuzzTopologyRoute(f *testing.F) {
	f.Add(uint16(16), uint16(11), uint16(5))   // paper Figure 4 route
	f.Add(uint16(1), uint16(0), uint16(0))     // single rank
	f.Add(uint16(17), uint16(16), uint16(3))   // prime p: ragged grids
	f.Add(uint16(27), uint16(26), uint16(0))   // perfect cube
	f.Add(uint16(510), uint16(13), uint16(77)) // large non-square
	f.Fuzz(func(t *testing.T, pSel, fromSel, destSel uint16) {
		p := int(pSel)%512 + 1
		from := int(fromSel) % p
		dest := int(destSel) % p
		if from == dest {
			return
		}
		for _, topo := range []mailbox.Topology{
			mailbox.NewDirect(p), mailbox.NewGrid2D(p), mailbox.NewGrid3D(p),
		} {
			cur, hops := from, 0
			for cur != dest {
				next := topo.NextHop(cur, dest)
				if next < 0 || next >= p {
					t.Fatalf("%s p=%d: NextHop(%d,%d) = %d out of range", topo.Name(), p, cur, dest, next)
				}
				if next == cur {
					t.Fatalf("%s p=%d: NextHop(%d,%d) did not advance", topo.Name(), p, cur, dest)
				}
				cur = next
				hops++
				if hops > topo.Diameter() {
					t.Fatalf("%s p=%d: route %d->%d exceeded diameter %d", topo.Name(), p, from, dest, topo.Diameter())
				}
			}
		}
	})
}
