//go:build !race

package mailbox

// raceEnabled: see alloc_budget_race_test.go.
const raceEnabled = false
