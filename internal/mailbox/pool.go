package mailbox

// Envelope-buffer pooling and arena-backed delivery: the allocation story of
// the message-plane hot path (DESIGN.md §9).
//
// Two kinds of memory dominate the Send→route→deliver→drain cycle:
//
//   - aggregation/envelope buffers: the per-next-hop byte buffers records
//     are framed into before shipping. Buffers a Box consumes (inbound
//     envelopes on the raw path, post-frame-copy aggregation buffers on the
//     reliable path) feed a per-Box free-list that future outbound buffers
//     are drawn from, so at steady state envelope memory circulates between
//     ranks instead of being reallocated per shipment.
//
//   - delivered record payloads: previously one heap copy per record.
//     Box.deliver now batch-copies each poll epoch's records into one
//     grow-only arena and hands out capacity-clamped sub-slices (appending
//     to a Record.Payload reallocates instead of running into a sibling).
//     Two arenas alternate across Poll calls, so a poll's records stay valid
//     while the caller processes them and expire at the next Poll, when
//     their arena is reset and reused.
//
// Safety rule: a buffer enters the pool only while it provably has a single
// live reference. On the raw path that is true for a drained envelope on the
// perfect transport (the sender shipped and forgot it; the transport held
// exactly one inbox entry); once a fault-injecting rt.Transport has been
// installed, a Duplicate fate can make two inbox entries alias one payload,
// so rt.Rank.ExclusiveDelivery latches false and inbound recycling stops for
// the machine's lifetime. Reliable-path frames are NEVER pooled in either
// direction: the sender retains (and retransmits) the very buffer it
// shipped, so both the receiver's drained frame and the sender's acked frame
// can still be aliased by in-flight retransmission copies.

// envPoolCap bounds the per-Box free-list; buffers offered beyond the cap
// are dropped for the garbage collector.
const envPoolCap = 64

// envPool is a per-Box LIFO free-list of envelope/aggregation buffers. It is
// rank-confined (Box is not concurrency-safe) so it needs no locking; LIFO
// keeps the hottest (cache-resident) buffer on top.
type envPool struct {
	free [][]byte
}

// get returns a recycled zero-length buffer with retained capacity, or nil
// when the pool is empty (the caller lets append allocate).
func (p *envPool) get() []byte {
	n := len(p.free)
	if n == 0 {
		return nil
	}
	b := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	return b[:0]
}

// put offers a consumed buffer to the pool, reporting whether it was kept.
// Zero-capacity buffers and offers beyond the cap are dropped.
func (p *envPool) put(b []byte) bool {
	if cap(b) == 0 || len(p.free) >= envPoolCap {
		return false
	}
	p.free = append(p.free, b)
	return true
}

// size returns the number of pooled buffers.
func (p *envPool) size() int { return len(p.free) }
