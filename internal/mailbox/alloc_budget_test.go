package mailbox

// Steady-state allocation budgets for the message-plane hot paths. These are
// the enforceable artifact of the zero-allocation rework (`make bench-smoke`
// runs them in CI): each test warms a path to steady state, then measures
// testing.AllocsPerRun over full send→deliver→drain cycles and fails if the
// per-cycle average creeps above a small epsilon. Under the race detector
// the paths still execute but the numeric assertions are skipped
// (raceEnabled; the instrumented runtime allocates on its own schedule).

import (
	"encoding/binary"
	"runtime"
	"testing"

	"havoqgt/internal/rt"
	"havoqgt/internal/termination"
)

// budgetEpsilon tolerates stray runtime-internal allocations (GC metadata,
// background goroutine wakeups) that AllocsPerRun can observe; anything
// above it means a real per-cycle allocation has crept back into the path.
const budgetEpsilon = 0.1

// TestAllocBudgetLoopback pins the delivery half: at steady state a
// 64-record Send+Poll cycle on the loopback path must allocate nothing —
// payload copies land in the recycled arena, the Record batch reuses the
// previous epoch's slice, and no envelope buffers are involved.
func TestAllocBudgetLoopback(t *testing.T) {
	rt.NewMachine(1).Run(func(r *rt.Rank) {
		box := New(r, NewDirect(1), termination.New(r))
		payload := make([]byte, benchPayloadBytes)
		cycle := func() {
			for i := 0; i < 64; i++ {
				box.Send(0, payload)
			}
			if got := len(box.Poll()); got != 64 {
				t.Fatalf("loopback poll returned %d records, want 64", got)
			}
		}
		for i := 0; i < 8; i++ {
			cycle() // warm both arena epochs and the delivered slices
		}
		avg := testing.AllocsPerRun(100, cycle)
		if raceEnabled {
			t.Skipf("race detector active: measured %.2f allocs/cycle, not asserted", avg)
		}
		if avg > budgetEpsilon {
			t.Errorf("loopback steady state allocates %.2f per 64-record cycle, want ~0", avg)
		}
	})
}

// TestAllocBudgetDecodeDeliver pins the receive half: draining and decoding
// a multi-record envelope into delivered records must allocate nothing at
// steady state (the drained envelope is recycled into the box's pool, the
// record payloads are carved from the recycled arena).
func TestAllocBudgetDecodeDeliver(t *testing.T) {
	rt.NewMachine(1).Run(func(r *rt.Rank) {
		box := New(r, NewDirect(1), nil)
		// One envelope holding 32 records addressed to this rank.
		const recs = 32
		env := make([]byte, 0, recs*(recordHeader+benchPayloadBytes))
		var hdr [recordHeader]byte
		for i := 0; i < recs; i++ {
			binary.LittleEndian.PutUint32(hdr[0:], 0) // dest: self
			binary.LittleEndian.PutUint32(hdr[4:], uint32(i))
			binary.LittleEndian.PutUint32(hdr[8:], benchPayloadBytes)
			env = append(env, hdr[:]...)
			env = append(env, make([]byte, benchPayloadBytes)...)
		}
		cycle := func() {
			r.Send(0, rt.KindMailbox, 0, env)
			if got := len(box.Poll()); got != recs {
				t.Fatalf("poll returned %d records, want %d", got, recs)
			}
		}
		for i := 0; i < 8; i++ {
			cycle()
		}
		avg := testing.AllocsPerRun(100, cycle)
		if raceEnabled {
			t.Skipf("race detector active: measured %.2f allocs/cycle, not asserted", avg)
		}
		if avg > budgetEpsilon {
			t.Errorf("decode/deliver steady state allocates %.2f per envelope, want ~0", avg)
		}
	})
}

// TestAllocBudgetRoutedSteadyState pins the full duplex cycle on a 2-rank
// machine: once envelope buffers circulate (each rank's consumed inbound
// envelopes back its outbound aggregation buffers), a ship-sized burst of
// records costs at most a handful of allocations machine-wide. AllocsPerRun
// cannot be used here — both ranks run concurrently and it counts global
// mallocs — so the main goroutine brackets a lockstep measured phase with
// runtime.ReadMemStats while the ranks coordinate over channels.
func TestAllocBudgetRoutedSteadyState(t *testing.T) {
	const p = 2
	const burst = 64 // records per cycle per rank; flush threshold 1 KiB
	const warmRounds, rounds = 32, 200
	warmed := make(chan struct{}, p)
	start := make(chan struct{})
	var ms1, ms2 runtime.MemStats
	m := rt.NewMachine(p)
	go func() {
		for i := 0; i < p; i++ {
			<-warmed
		}
		runtime.GC()
		runtime.ReadMemStats(&ms1)
		close(start)
	}()
	m.Run(func(r *rt.Rank) {
		det := termination.New(r)
		box := New(r, NewDirect(p), det, WithFlushBytes(1024))
		other := 1 - r.Rank()
		payload := make([]byte, benchPayloadBytes)
		cycle := func() {
			for i := 0; i < burst; i++ {
				box.Send(other, payload)
			}
			box.FlushAll()
			box.Poll()
		}
		drain := func() {
			for !det.Pump(box.Idle()) {
				box.Poll()
				box.FlushAll()
			}
		}
		// Warm until buffer circulation is established, ending fully
		// quiescent (empty inboxes, empty aggregation buffers, full pools).
		for i := 0; i < warmRounds; i++ {
			cycle()
		}
		drain()
		warmed <- struct{}{}
		<-start
		for i := 0; i < rounds; i++ {
			cycle()
		}
		drain()
	})
	runtime.ReadMemStats(&ms2)
	perBurst := float64(ms2.Mallocs-ms1.Mallocs) / rounds
	t.Logf("routed steady state: %.2f mallocs per %d-record burst pair (machine-wide)", perBurst, burst)
	if raceEnabled {
		t.Skipf("race detector active: measured %.2f mallocs/burst, not asserted", perBurst)
	}
	// Pre-pooling, one burst pair cost well over 2*burst mallocs (a payload
	// copy per delivered record on each side, plus envelope buffers, Msg
	// queues, and per-poll delivered slices). Budget: at least a 5x margin
	// under that floor, machine-wide.
	if perBurst > float64(2*burst)/5 {
		t.Errorf("routed steady state allocates %.1f per %d-record burst pair, want < %.0f (5x under the pre-pooling floor)",
			perBurst, burst, float64(2*burst)/5)
	}
}
