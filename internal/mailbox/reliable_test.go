package mailbox

import (
	"fmt"
	"testing"
	"time"

	"havoqgt/internal/faults"
	"havoqgt/internal/rt"
	"havoqgt/internal/termination"
)

// reliableExchange runs an all-to-all exchange of msgs records per pair over
// reliable boxes, under the given fault plan (nil = perfect transport), and
// returns the per-rank received payloads plus per-rank stats.
func reliableExchange(t *testing.T, p, msgs int, topo Topology, plan *faults.Plan) ([][]string, []Stats) {
	t.Helper()
	m := rt.NewMachine(p)
	if plan != nil {
		inj := faults.New(*plan, m.Obs())
		m.SetTransport(inj)
		inj.Arm()
	}
	got := make([][]string, p)
	stats := make([]Stats, p)
	m.Run(func(r *rt.Rank) {
		det := termination.New(r)
		box := New(r, topo, det, WithFlushBytes(64), WithReliable(),
			WithRTO(time.Millisecond, 20*time.Millisecond))
		if !box.Reliable() {
			panic("WithReliable did not take")
		}
		for dest := 0; dest < p; dest++ {
			for i := 0; i < msgs; i++ {
				box.Send(dest, []byte(fmt.Sprintf("%d->%d#%d", r.Rank(), dest, i)))
			}
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			for _, rec := range box.Poll() {
				got[r.Rank()] = append(got[r.Rank()], string(rec.Payload))
			}
			box.FlushAll()
			if det.Pump(box.Idle()) {
				break
			}
			if time.Now().After(deadline) {
				panic("reliable exchange did not quiesce")
			}
		}
		stats[r.Rank()] = box.Stats()
	})
	return got, stats
}

// checkExactlyOnce asserts every expected record arrived exactly once.
func checkExactlyOnce(t *testing.T, got [][]string, p, msgs int, label string) {
	t.Helper()
	for rank := 0; rank < p; rank++ {
		counts := map[string]int{}
		for _, s := range got[rank] {
			counts[s]++
		}
		if len(got[rank]) != p*msgs {
			t.Fatalf("%s: rank %d received %d records, want %d", label, rank, len(got[rank]), p*msgs)
		}
		for from := 0; from < p; from++ {
			for i := 0; i < msgs; i++ {
				key := fmt.Sprintf("%d->%d#%d", from, rank, i)
				if counts[key] != 1 {
					t.Fatalf("%s: rank %d got record %q %d times, want exactly once",
						label, rank, key, counts[key])
				}
			}
		}
	}
}

func TestReliablePerfectTransport(t *testing.T) {
	// Reliability protocol under no faults: plain exactly-once delivery, and
	// the logical-once envelope conservation law still holds.
	got, stats := reliableExchange(t, 4, 10, NewDirect(4), nil)
	checkExactlyOnce(t, got, 4, 10, "perfect")
	var sent, recv uint64
	for _, s := range stats {
		sent += s.EnvelopesSent
		recv += s.EnvelopesRecv
	}
	if sent != recv {
		t.Fatalf("envelope conservation violated: sent %d != recv %d", sent, recv)
	}
}

func TestReliableSurvivesMessageFaults(t *testing.T) {
	// Drop + duplicate + corrupt + reorder on the mailbox plane: the seq/ack/
	// retransmit protocol must still deliver every record exactly once and
	// keep the conservation laws intact.
	topos := map[string]func(int) Topology{
		"direct": func(p int) Topology { return NewDirect(p) },
		"2d":     func(p int) Topology { return NewGrid2D(p) },
	}
	for name, mk := range topos {
		t.Run(name, func(t *testing.T) {
			const p, msgs = 4, 25
			plan := &faults.Plan{
				Seed: 0xfa517,
				Msgs: []faults.MsgRule{{
					From: faults.Wildcard, To: faults.Wildcard, Kind: int(rt.KindMailbox),
					Drop: 0.10, Duplicate: 0.05, Corrupt: 0.05, Reorder: 0.25,
				}},
			}
			got, stats := reliableExchange(t, p, msgs, mk(p), plan)
			checkExactlyOnce(t, got, p, msgs, name)
			var sent, recv, retrans uint64
			for _, s := range stats {
				sent += s.EnvelopesSent
				recv += s.EnvelopesRecv
				retrans += s.Retransmits
			}
			if sent != recv {
				t.Fatalf("%s: envelope conservation violated under faults: sent %d != recv %d",
					name, sent, recv)
			}
			if retrans == 0 {
				t.Errorf("%s: 10%% drop rate but zero retransmits — fault plan not engaged?", name)
			}
		})
	}
}

func TestUnreliableBoxLosesRecordsUnderDrops(t *testing.T) {
	// Negative control: without WithReliable the same drop schedule must
	// lose records (otherwise the reliable test proves nothing). Termination
	// can hang when drops eat S-counted records, so this drives a fixed
	// number of poll rounds instead of waiting for quiescence.
	const p = 4
	m := rt.NewMachine(p)
	inj := faults.New(faults.Plan{
		Seed: 0xfa517,
		Msgs: []faults.MsgRule{{
			From: faults.Wildcard, To: faults.Wildcard, Kind: int(rt.KindMailbox),
			Drop: 0.5,
		}},
	}, m.Obs())
	m.SetTransport(inj)
	var lost [8]bool
	m.Run(func(r *rt.Rank) {
		box := New(r, NewDirect(p), nil, WithFlushBytes(16))
		recv := 0
		for dest := 0; dest < p; dest++ {
			if dest != r.Rank() {
				for i := 0; i < 20; i++ {
					box.Send(dest, []byte("record-payload"))
				}
			}
		}
		box.FlushAll()
		deadline := time.Now().Add(time.Second)
		for time.Now().Before(deadline) {
			recv += len(box.Poll())
		}
		lost[r.Rank()] = recv < (p-1)*20
	})
	anyLost := false
	for _, l := range lost[:p] {
		anyLost = anyLost || l
	}
	if !anyLost {
		t.Fatal("50% drop rate lost nothing on the raw path; injector inert?")
	}
}
