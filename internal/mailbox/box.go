package mailbox

import (
	"encoding/binary"

	"havoqgt/internal/rt"
	"havoqgt/internal/termination"
)

// DefaultFlushBytes is the per-channel aggregation threshold: a channel's
// buffer is shipped once it holds at least this many payload bytes. Idle
// ranks flush everything (FlushAll) so aggregation never stalls termination.
const DefaultFlushBytes = 4096

// recordHeader is the per-record framing inside an aggregated envelope:
// [finalDest u32][payloadLen u32].
const recordHeader = 8

// Stats counts mailbox activity on one rank.
type Stats struct {
	RecordsSent      uint64 // records entered via Send on this rank
	RecordsDelivered uint64 // records delivered to this rank (final dest)
	RecordsForwarded uint64 // records re-routed through this rank
	EnvelopesSent    uint64 // transport messages shipped
	EnvelopesRecv    uint64
	ChannelsUsed     int // distinct next-hop ranks actually used
}

// Box is one rank's routed mailbox: the paper's `mailbox` abstraction with
// send(rank, data) and receive() (§V), implemented over the aggregation and
// routing network of §III-B.
type Box struct {
	r    *rt.Rank
	topo Topology
	det  *termination.Detector

	flushBytes int
	buffers    map[int][]byte // next-hop rank -> pending aggregated records
	delivered  []Record
	stats      Stats
}

// Record is one delivered visitor record.
type Record struct {
	Payload []byte
}

// Option configures a Box.
type Option func(*Box)

// WithFlushBytes sets the per-channel aggregation threshold.
func WithFlushBytes(n int) Option {
	return func(b *Box) { b.flushBytes = n }
}

// New returns a mailbox for the rank using the given routing topology. The
// detector, if non-nil, is fed with end-to-end record counts: one send at the
// originating rank, one receive at the final destination (records parked in
// intermediate aggregation buffers are exactly the S−R in-flight gap the
// termination waves must see drain to zero).
func New(r *rt.Rank, topo Topology, det *termination.Detector, opts ...Option) *Box {
	b := &Box{
		r:          r,
		topo:       topo,
		det:        det,
		flushBytes: DefaultFlushBytes,
		buffers:    make(map[int][]byte),
	}
	for _, o := range opts {
		o(b)
	}
	return b
}

// Send routes one record toward dest, buffering it for aggregation. The
// record bytes are copied; the caller may reuse its buffer.
func (b *Box) Send(dest int, record []byte) {
	b.stats.RecordsSent++
	if b.det != nil {
		b.det.CountSent(1)
	}
	if dest == b.r.Rank() {
		// Loopback delivery, as MPI self-sends do.
		b.deliver(record, true)
		return
	}
	b.enqueue(dest, record)
}

// enqueue appends a framed record to the aggregation buffer of the next hop
// toward dest, shipping the buffer if it crossed the flush threshold.
func (b *Box) enqueue(dest int, record []byte) {
	hop := b.topo.NextHop(b.r.Rank(), dest)
	buf := b.buffers[hop]
	if buf == nil {
		b.stats.ChannelsUsed++
	}
	var hdr [recordHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(dest))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(record)))
	buf = append(buf, hdr[:]...)
	buf = append(buf, record...)
	if len(buf) >= b.flushBytes {
		b.ship(hop, buf)
		buf = nil
	}
	b.buffers[hop] = buf
}

// ship sends one aggregated envelope to the next hop.
func (b *Box) ship(hop int, buf []byte) {
	b.r.Send(hop, rt.KindMailbox, 0, buf)
	b.stats.EnvelopesSent++
}

// deliver appends a record addressed to this rank to the delivered queue.
// copyBytes is set for loopback sends whose caller may reuse the buffer.
func (b *Box) deliver(record []byte, copyBytes bool) {
	if copyBytes {
		record = append([]byte(nil), record...)
	}
	b.delivered = append(b.delivered, Record{Payload: record})
	b.stats.RecordsDelivered++
	if b.det != nil {
		b.det.CountReceived(1)
	}
}

// Poll drains incoming envelopes, re-forwards records routed through this
// rank, and returns the records whose final destination is this rank —
// including loopback records Sent since the previous Poll. The caller owns
// the returned slice.
func (b *Box) Poll() []Record {
	for _, m := range b.r.Recv(rt.KindMailbox) {
		b.stats.EnvelopesRecv++
		p := m.Payload
		for len(p) >= recordHeader {
			dest := int(binary.LittleEndian.Uint32(p[0:]))
			n := int(binary.LittleEndian.Uint32(p[4:]))
			rec := p[recordHeader : recordHeader+n]
			p = p[recordHeader+n:]
			if dest == b.r.Rank() {
				b.deliver(rec, false)
			} else {
				b.stats.RecordsForwarded++
				b.enqueue(dest, rec)
			}
		}
	}
	out := b.delivered
	b.delivered = nil
	return out
}

// FlushAll ships every non-empty aggregation buffer. Called when the rank
// runs out of local work so partially filled buffers cannot stall the
// traversal or termination detection.
func (b *Box) FlushAll() {
	for hop, buf := range b.buffers {
		if len(buf) > 0 {
			b.ship(hop, buf)
			b.buffers[hop] = nil
		}
	}
}

// Idle reports whether this rank's mailbox holds no buffered outbound
// records.
func (b *Box) Idle() bool {
	for _, buf := range b.buffers {
		if len(buf) > 0 {
			return false
		}
	}
	return true
}

// Stats returns a snapshot of this rank's mailbox counters.
func (b *Box) Stats() Stats { return b.stats }
