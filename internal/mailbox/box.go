package mailbox

import (
	"encoding/binary"
	"time"

	"havoqgt/internal/obs"
	"havoqgt/internal/rt"
	"havoqgt/internal/termination"
)

// DefaultFlushBytes is the per-channel aggregation threshold, measured in
// framed envelope bytes — record payloads PLUS the 12-byte recordHeader each
// record carries — i.e. exactly the transport message size a shipped buffer
// produces. A channel's buffer is shipped once the framed bytes reach the
// threshold (a single record may overshoot it; the whole record still ships
// in one envelope). Idle ranks flush everything (FlushAll) so aggregation
// never stalls termination.
//
// The threshold deliberately counts framing, not raw payload: the quantity
// being bounded is the wire/transport unit. WithFlushBytes documents the
// same semantic, and TestFlushThresholdCountsFramedBytes pins the boundary.
const DefaultFlushBytes = 4096

// recordHeader is the per-record framing inside an aggregated envelope:
// [finalDest u32][tag u32][payloadLen u32]. The tag is a caller-defined
// record namespace — the multi-query engine stores a compact query ID there
// so one shared mailbox can interleave many concurrent traversals and
// demultiplex delivered records back to their queries. Single-traversal
// callers use tag 0.
const recordHeader = 12

// Stats counts mailbox activity on one rank for one Box lifetime (one
// traversal). The same counts are mirrored into the machine's obs.Registry
// under the mailbox.* names, where they accumulate machine-wide until
// obs.Registry.Reset; Stats stays per-Box so back-to-back traversals see
// fresh numbers.
type Stats struct {
	RecordsSent      uint64 // records entered via Send on this rank
	RecordsDelivered uint64 // records delivered to this rank (final dest)
	RecordsForwarded uint64 // records re-routed through this rank
	EnvelopesSent    uint64 // logical envelopes shipped (retransmits excluded)
	EnvelopesRecv    uint64 // envelopes accepted (duplicates excluded)
	Hops             uint64 // transport hops taken by routed records
	Flushes          uint64 // idle-driven FlushAll envelope shipments
	DecodeErrors     uint64 // malformed envelope contents rejected by Poll
	ChannelsUsed     int    // distinct next-hop ranks actually used

	// Reliable-delivery counters (zero unless the Box was built
	// WithReliable; see reliable.go for the protocol).
	Retransmits    uint64 // frames re-sent after an RTO expiry
	DupDropped     uint64 // already-delivered duplicate frames discarded
	CorruptDropped uint64 // frames/acks failing the CRC check
	StaleDropped   uint64 // frames/acks from a previous traversal's epoch
	AcksSent       uint64 // cumulative acks shipped

	// Envelope-buffer pool counters (see pool.go / DESIGN.md §9). The pool
	// hit rate PoolHits/PoolGets measures how close the plane runs to zero
	// steady-state allocation; PoolBytesRecycled is the capacity returned to
	// the pool over the Box lifetime.
	PoolGets          uint64 // requests for a fresh aggregation buffer
	PoolHits          uint64 // requests served from the free-list
	PoolBytesRecycled uint64 // buffer capacity accepted back into the pool
}

// AggregationRatio returns records per shipped envelope — the direct
// measure of how much the aggregation layer batches per topology.
func (s Stats) AggregationRatio() float64 {
	if s.EnvelopesSent == 0 {
		return 0
	}
	return float64(s.RecordsSent+s.RecordsForwarded) / float64(s.EnvelopesSent)
}

// metrics bundles the rank's obs handles for the hot paths.
type metrics struct {
	rank          int
	recordsSent   *obs.PerRank
	delivered     *obs.PerRank
	forwarded     *obs.PerRank
	envelopesSent *obs.PerRank
	envelopesRecv *obs.PerRank
	hops          *obs.PerRank
	flushes       *obs.PerRank
	decodeErrors  *obs.PerRank
	envelopeBytes *obs.Histogram

	poolGets     *obs.PerRank
	poolHits     *obs.PerRank
	poolRecycled *obs.PerRank
	poolFree     *obs.Gauge
	arenaBytes   *obs.Histogram

	retransmits    *obs.PerRank
	dupDropped     *obs.PerRank
	corruptDropped *obs.PerRank
	staleDropped   *obs.PerRank
	acksSent       *obs.PerRank
}

func newMetrics(r *rt.Rank) metrics {
	reg, p := r.Obs(), r.Size()
	return metrics{
		rank:          r.Rank(),
		recordsSent:   reg.PerRank(obs.MBRecordsSent, p),
		delivered:     reg.PerRank(obs.MBRecordsDelivered, p),
		forwarded:     reg.PerRank(obs.MBRecordsForwarded, p),
		envelopesSent: reg.PerRank(obs.MBEnvelopesSent, p),
		envelopesRecv: reg.PerRank(obs.MBEnvelopesRecv, p),
		hops:          reg.PerRank(obs.MBHops, p),
		flushes:       reg.PerRank(obs.MBFlushes, p),
		decodeErrors:  reg.PerRank(obs.MBDecodeErrors, p),
		envelopeBytes: reg.Histogram(obs.MBEnvelopeBytes),

		poolGets:     reg.PerRank(obs.MBPoolGets, p),
		poolHits:     reg.PerRank(obs.MBPoolHits, p),
		poolRecycled: reg.PerRank(obs.MBPoolRecycledBytes, p),
		poolFree:     reg.Gauge(obs.MBPoolFree),
		arenaBytes:   reg.Histogram(obs.MBArenaPollBytes),

		retransmits:    reg.PerRank(obs.MBRetransmits, p),
		dupDropped:     reg.PerRank(obs.MBDupDropped, p),
		corruptDropped: reg.PerRank(obs.MBCorruptDropped, p),
		staleDropped:   reg.PerRank(obs.MBStaleDropped, p),
		acksSent:       reg.PerRank(obs.MBAcksSent, p),
	}
}

// FlowCounter receives end-to-end record counts partitioned by record tag.
// The multi-query engine registers one to feed each in-flight query's
// termination detector independently; the single-traversal path wraps its
// lone detector in an adapter that ignores the tag. Implementations are
// invoked only from the owning rank's goroutine (Send/Poll are not
// concurrency-safe), so they need no internal locking.
type FlowCounter interface {
	// CountSent records n records entering the mailbox under tag (at the
	// originating rank).
	CountSent(tag uint32, n uint64)
	// CountReceived records n records delivered at their final destination
	// under tag.
	CountReceived(tag uint32, n uint64)
}

// detFlow adapts a single termination detector to the FlowCounter seam for
// the classic one-traversal-per-machine path (every record shares tag 0).
type detFlow struct{ det *termination.Detector }

func (f detFlow) CountSent(_ uint32, n uint64)     { f.det.CountSent(n) }
func (f detFlow) CountReceived(_ uint32, n uint64) { f.det.CountReceived(n) }

// Box is one rank's routed mailbox: the paper's `mailbox` abstraction with
// send(rank, data) and receive() (§V), implemented over the aggregation and
// routing network of §III-B.
type Box struct {
	r     *rt.Rank
	topo  Topology
	flows FlowCounter // nil = no flow accounting

	flushBytes int
	buffers    map[int][]byte   // next-hop rank -> pending aggregated records
	channels   map[int]struct{} // distinct next-hop ranks ever used (Stats.ChannelsUsed)
	stats      Stats
	met        metrics
	inFlush    bool // inside FlushAll (attributes shipments to MBFlushes)

	// pool is the per-Box free-list of aggregation/envelope buffers
	// (pool.go). It is fed by consumed inbound envelopes (raw path, exclusive
	// delivery only) and by aggregation buffers whose records the reliable
	// layer has copied into a frame; enqueue draws new outbound buffers from
	// it.
	pool envPool

	// Arena-backed delivery (pool.go): each poll epoch's delivered record
	// payloads are batch-copied into one grow-only arena and handed out as
	// capacity-clamped sub-slices. delivered/arena accumulate the current
	// epoch; deliveredPrev/arenaPrev hold the previous epoch's (possibly
	// still referenced by the caller) storage and are reset and reused when
	// Poll rolls the epoch over.
	delivered     []Record
	deliveredPrev []Record
	arena         []byte
	arenaPrev     []byte

	// msgScratch is the reusable rt.Msg drain buffer handed to
	// rt.Rank.RecvInto on the raw path.
	msgScratch []rt.Msg

	// rel, when non-nil, runs the seq/ack/retransmit protocol of reliable.go
	// under every envelope; wantRel and the RTO bounds stage the WithReliable
	// option until New can mint the box epoch.
	rel             *reliable
	wantRel         bool
	rtoBase, rtoMax time.Duration
}

// Record is one delivered visitor record. The payload is a copy carved from
// the Box's delivery arena: it never aliases transport buffers, and it is
// capacity-clamped so appending to it reallocates instead of running into a
// sibling record's bytes. Payloads are valid until the NEXT Poll on the same
// Box — at that point their arena is reset and reused for a new epoch — so a
// caller that parks a Record across polls must copy the payload out
// (append([]byte(nil), p...)). Mutating a payload in place within its epoch
// is safe and affects no other record. Tag is the record namespace stamped
// at Send time (query ID under the multi-query engine, 0 on the
// single-traversal path).
type Record struct {
	Tag     uint32
	Payload []byte
}

// Option configures a Box.
type Option func(*Box)

// WithFlushBytes sets the per-channel aggregation threshold, measured in
// framed envelope bytes — record payloads plus the 12-byte per-record
// header — exactly the size of the transport message a ship produces (see
// DefaultFlushBytes).
func WithFlushBytes(n int) Option {
	return func(b *Box) { b.flushBytes = n }
}

// WithFlows installs a tag-aware flow counter, replacing (or standing in
// for) the single-detector accounting. The multi-query engine uses this to
// route per-record send/receive counts to the record's query.
func WithFlows(fc FlowCounter) Option {
	return func(b *Box) { b.flows = fc }
}

// WithReliable enables sequence-numbered, acked, checksummed envelope
// delivery with capped exponential-backoff retransmission (see reliable.go).
// Must be set uniformly across all ranks of a machine — mailboxes are
// created collectively, and a reliable box speaks a framed wire format a
// raw box would reject as decode errors.
func WithReliable() Option {
	return func(b *Box) { b.wantRel = true }
}

// WithRTO overrides the reliable layer's retransmission-timeout bounds: the
// first retransmit of a frame fires after base, each further one doubles the
// backoff up to max. Zero values keep DefaultRTOBase/DefaultRTOMax. Only
// meaningful together with WithReliable.
func WithRTO(base, max time.Duration) Option {
	return func(b *Box) { b.rtoBase, b.rtoMax = base, max }
}

// New returns a mailbox for the rank using the given routing topology. The
// detector, if non-nil, is fed with end-to-end record counts: one send at the
// originating rank, one receive at the final destination (records parked in
// intermediate aggregation buffers are exactly the S−R in-flight gap the
// termination waves must see drain to zero).
func New(r *rt.Rank, topo Topology, det *termination.Detector, opts ...Option) *Box {
	b := &Box{
		r:          r,
		topo:       topo,
		flushBytes: DefaultFlushBytes,
		buffers:    make(map[int][]byte),
		channels:   make(map[int]struct{}),
		met:        newMetrics(r),
	}
	if det != nil {
		b.flows = detFlow{det: det}
	}
	for _, o := range opts {
		o(b)
	}
	if b.wantRel {
		// Minting the epoch advances the rank's machine-level generation
		// counter; done collectively (every rank constructs its box), all
		// ranks observe the same epoch for this traversal.
		b.rel = newReliable(r, b, b.rtoBase, b.rtoMax)
	}
	return b
}

// Reliable reports whether this box runs the reliable-delivery protocol.
func (b *Box) Reliable() bool { return b.rel != nil }

// Send routes one tag-0 record toward dest, buffering it for aggregation.
// The record bytes are copied; the caller may reuse its buffer.
func (b *Box) Send(dest int, record []byte) { b.SendTagged(dest, 0, record) }

// SendTagged routes one record toward dest under the given tag. The tag
// travels in the record header and comes back out on the delivered Record,
// letting one mailbox multiplex records of many concurrent traversals.
func (b *Box) SendTagged(dest int, tag uint32, record []byte) {
	b.stats.RecordsSent++
	b.met.recordsSent.Inc(b.met.rank)
	if b.flows != nil {
		b.flows.CountSent(tag, 1)
	}
	if dest == b.r.Rank() {
		// Loopback delivery, as MPI self-sends do.
		b.deliver(tag, record)
		return
	}
	b.enqueue(dest, tag, record)
}

// enqueue appends a framed record to the aggregation buffer of the next hop
// toward dest, shipping the buffer if it crossed the flush threshold.
func (b *Box) enqueue(dest int, tag uint32, record []byte) {
	hop := b.topo.NextHop(b.r.Rank(), dest)
	b.stats.Hops++
	b.met.hops.Inc(b.met.rank)
	buf := b.buffers[hop]
	if buf == nil {
		// A fresh outbound buffer: draw recycled capacity from the pool so
		// steady-state aggregation reallocates nothing.
		buf = b.getBuf()
	}
	// Count distinct next-hop channels, not buffer (re)creations: a buffer is
	// nil again after every ship/FlushAll, so keying the count off buffer
	// existence would inflate ChannelsUsed past Topology.MaxChannels.
	if _, seen := b.channels[hop]; !seen {
		b.channels[hop] = struct{}{}
		b.stats.ChannelsUsed++
	}
	var hdr [recordHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(dest))
	binary.LittleEndian.PutUint32(hdr[4:], tag)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(record)))
	buf = append(buf, hdr[:]...)
	buf = append(buf, record...)
	if len(buf) >= b.flushBytes {
		b.ship(hop, buf)
		buf = nil
	}
	b.buffers[hop] = buf
}

// ship sends one aggregated envelope to the next hop. Stats count logical
// envelopes: a reliable box's retransmissions of the same envelope are
// accounted under Stats.Retransmits, not here, so envelope conservation
// (Σsent == Σrecv at quiescence) holds under faults too.
func (b *Box) ship(hop int, buf []byte) {
	if b.rel != nil {
		// rel.send copies the framed records into a fresh frame it retains
		// for retransmission; the aggregation buffer is exclusively ours
		// again the moment send returns, so it goes straight back to the
		// pool (safe even under fault injection — this buffer never entered
		// the transport).
		b.rel.send(hop, buf)
		b.recycle(buf)
	} else {
		b.r.Send(hop, rt.KindMailbox, 0, buf)
	}
	b.stats.EnvelopesSent++
	b.met.envelopesSent.Inc(b.met.rank)
	b.met.envelopeBytes.Observe(uint64(len(buf)))
	if b.inFlush {
		b.stats.Flushes++
		b.met.flushes.Inc(b.met.rank)
	}
}

// deliver appends a record addressed to this rank to the delivered queue.
// The bytes are always copied — delivered payloads must never alias the
// incoming envelope's backing array nor a loopback caller's reusable buffer
// — but instead of one heap allocation per record, the copy lands in the
// current poll epoch's grow-only arena and the Record gets a
// capacity-clamped sub-slice (appending to it reallocates rather than
// running into the next record's bytes). Arena storage is reclaimed at the
// next-plus-one Poll; see Record for the ownership contract.
func (b *Box) deliver(tag uint32, record []byte) {
	off := len(b.arena)
	b.arena = append(b.arena, record...)
	end := len(b.arena)
	b.delivered = append(b.delivered, Record{Tag: tag, Payload: b.arena[off:end:end]})
	b.stats.RecordsDelivered++
	b.met.delivered.Inc(b.met.rank)
	if b.flows != nil {
		b.flows.CountReceived(tag, 1)
	}
}

// getBuf returns an empty aggregation buffer, recycled from the pool when
// one is available. A pool miss allocates the buffer at full flush-threshold
// capacity (plus slack for the record that crosses the threshold) in one
// shot, instead of paying append's doubling chain on every fill.
func (b *Box) getBuf() []byte {
	b.stats.PoolGets++
	b.met.poolGets.Inc(b.met.rank)
	buf := b.pool.get()
	if buf == nil {
		return make([]byte, 0, b.flushBytes+b.flushBytes/4)
	}
	b.stats.PoolHits++
	b.met.poolHits.Inc(b.met.rank)
	b.met.poolFree.Add(-1)
	return buf
}

// recycle offers a consumed buffer to the pool. The caller is responsible
// for the safety rule in pool.go: the buffer must provably hold its only
// live reference.
func (b *Box) recycle(buf []byte) {
	if b.pool.put(buf) {
		b.stats.PoolBytesRecycled += uint64(cap(buf))
		b.met.poolRecycled.Add(b.met.rank, uint64(cap(buf)))
		b.met.poolFree.Add(1)
	}
}

// decodeError counts one malformed envelope datum (Stats.DecodeErrors and
// the mailbox.decode_errors obs metric).
func (b *Box) decodeError() {
	b.stats.DecodeErrors++
	b.met.decodeErrors.Inc(b.met.rank)
}

// Reliable-protocol accounting (invoked from reliable.go).

func (b *Box) retransmitted() {
	b.stats.Retransmits++
	b.met.retransmits.Inc(b.met.rank)
}

func (b *Box) dupDropped() {
	b.stats.DupDropped++
	b.met.dupDropped.Inc(b.met.rank)
}

func (b *Box) corruptDropped() {
	b.stats.CorruptDropped++
	b.met.corruptDropped.Inc(b.met.rank)
}

func (b *Box) staleDropped() {
	b.stats.StaleDropped++
	b.met.staleDropped.Inc(b.met.rank)
}

func (b *Box) ackSent() {
	b.stats.AcksSent++
	b.met.acksSent.Inc(b.met.rank)
}

// decodeEnvelope walks one envelope's framed records, delivering records
// addressed to this rank and re-forwarding the rest. Malformed framing never
// panics: a record whose header length exceeds the remaining bytes (or a
// truncated trailing header) discards the rest of the envelope, and a record
// whose dest is outside [0, p) is skipped — both counted as decode errors.
func (b *Box) decodeEnvelope(p []byte) {
	for len(p) > 0 {
		if len(p) < recordHeader {
			b.decodeError() // truncated header tail
			return
		}
		dest := int(binary.LittleEndian.Uint32(p[0:]))
		tag := binary.LittleEndian.Uint32(p[4:])
		n := int(binary.LittleEndian.Uint32(p[8:]))
		if n > len(p)-recordHeader {
			b.decodeError() // oversized length: would run past the envelope
			return
		}
		rec := p[recordHeader : recordHeader+n]
		p = p[recordHeader+n:]
		if dest < 0 || dest >= b.r.Size() {
			b.decodeError() // misrouted dest: NextHop preconditions violated
			continue
		}
		if dest == b.r.Rank() {
			b.deliver(tag, rec)
		} else {
			b.stats.RecordsForwarded++
			b.met.forwarded.Inc(b.met.rank)
			b.enqueue(dest, tag, rec)
		}
	}
}

// Poll drains incoming envelopes, re-forwards records routed through this
// rank, and returns the records whose final destination is this rank —
// including loopback records Sent since the previous Poll. The returned
// slice and every Record.Payload in it stay valid until the NEXT Poll on
// this Box, when their arena epoch is reclaimed; callers that park records
// longer must copy payloads out (see Record).
func (b *Box) Poll() []Record {
	if b.rel != nil {
		// Reliable path: the protocol layer validates, dedups, orders, acks,
		// and drives retransmission; only accepted envelopes reach decode.
		// Frames are never recycled here — the sender retains and
		// retransmits the very buffer it shipped (see pool.go).
		for _, payload := range b.rel.poll() {
			b.stats.EnvelopesRecv++
			b.met.envelopesRecv.Inc(b.met.rank)
			b.decodeEnvelope(payload)
		}
	} else {
		// Raw path: a drained envelope on the perfect transport is the
		// receiver's exclusive copy (the sender shipped and forgot it), so
		// after decode its buffer feeds this rank's aggregation pool.
		// ExclusiveDelivery latches false once a fault-injecting transport
		// has existed (Duplicate fates alias payloads) and recycling stops.
		exclusive := b.r.ExclusiveDelivery()
		b.msgScratch = b.r.RecvInto(rt.KindMailbox, b.msgScratch[:0])
		for i := range b.msgScratch {
			m := &b.msgScratch[i]
			b.stats.EnvelopesRecv++
			b.met.envelopesRecv.Inc(b.met.rank)
			b.decodeEnvelope(m.Payload)
			if exclusive {
				b.recycle(m.Payload)
			}
			m.Payload = nil // drop the reference either way
		}
	}
	if len(b.arena) > 0 {
		b.met.arenaBytes.Observe(uint64(len(b.arena)))
	}
	// Roll the delivery epoch: hand the current batch to the caller, reclaim
	// the previous batch's storage for the next one. Two epochs alternate so
	// the caller's records survive exactly one Poll boundary.
	out := b.delivered
	prev := b.deliveredPrev
	for i := range prev {
		prev[i] = Record{}
	}
	b.delivered = prev[:0]
	b.deliveredPrev = out
	b.arena, b.arenaPrev = b.arenaPrev[:0], b.arena
	return out
}

// PendingRecords counts records currently parked in this rank's aggregation
// buffers — the per-rank term of the machine-wide conservation law
// Σsent == Σdelivered + Σpending that internal/check asserts between flush
// rounds (buffers are self-framed and well-formed by construction).
func (b *Box) PendingRecords() int {
	total := 0
	for _, buf := range b.buffers {
		for len(buf) >= recordHeader {
			n := int(binary.LittleEndian.Uint32(buf[8:]))
			buf = buf[recordHeader+n:]
			total++
		}
	}
	return total
}

// PendingByTag counts records parked in this rank's aggregation buffers per
// record tag — the per-query pending term of the per-query conservation law
// the engine's invariant checks assert mid-flight.
func (b *Box) PendingByTag() map[uint32]int {
	out := make(map[uint32]int)
	for _, buf := range b.buffers {
		for len(buf) >= recordHeader {
			tag := binary.LittleEndian.Uint32(buf[4:])
			n := int(binary.LittleEndian.Uint32(buf[8:]))
			buf = buf[recordHeader+n:]
			out[tag]++
		}
	}
	return out
}

// FlushAll ships every non-empty aggregation buffer. Called when the rank
// runs out of local work so partially filled buffers cannot stall the
// traversal or termination detection.
func (b *Box) FlushAll() {
	b.inFlush = true
	for hop, buf := range b.buffers {
		if len(buf) > 0 {
			b.ship(hop, buf)
			b.buffers[hop] = nil
		}
	}
	b.inFlush = false
}

// Idle reports whether this rank's mailbox holds no buffered outbound
// records — and, on a reliable box, no unacknowledged frames: a rank stays
// non-idle (and keeps retransmitting via Poll) until its deliveries are
// confirmed, so quiescence implies the message plane is truly drained.
func (b *Box) Idle() bool {
	for _, buf := range b.buffers {
		if len(buf) > 0 {
			return false
		}
	}
	return b.rel == nil || b.rel.idle()
}

// Stats returns a snapshot of this rank's mailbox counters.
func (b *Box) Stats() Stats { return b.stats }
