package mailbox

import (
	"encoding/binary"
	"time"

	"havoqgt/internal/obs"
	"havoqgt/internal/rt"
	"havoqgt/internal/termination"
)

// DefaultFlushBytes is the per-channel aggregation threshold: a channel's
// buffer is shipped once it holds at least this many payload bytes. Idle
// ranks flush everything (FlushAll) so aggregation never stalls termination.
const DefaultFlushBytes = 4096

// recordHeader is the per-record framing inside an aggregated envelope:
// [finalDest u32][tag u32][payloadLen u32]. The tag is a caller-defined
// record namespace — the multi-query engine stores a compact query ID there
// so one shared mailbox can interleave many concurrent traversals and
// demultiplex delivered records back to their queries. Single-traversal
// callers use tag 0.
const recordHeader = 12

// Stats counts mailbox activity on one rank for one Box lifetime (one
// traversal). The same counts are mirrored into the machine's obs.Registry
// under the mailbox.* names, where they accumulate machine-wide until
// obs.Registry.Reset; Stats stays per-Box so back-to-back traversals see
// fresh numbers.
type Stats struct {
	RecordsSent      uint64 // records entered via Send on this rank
	RecordsDelivered uint64 // records delivered to this rank (final dest)
	RecordsForwarded uint64 // records re-routed through this rank
	EnvelopesSent    uint64 // logical envelopes shipped (retransmits excluded)
	EnvelopesRecv    uint64 // envelopes accepted (duplicates excluded)
	Hops             uint64 // transport hops taken by routed records
	Flushes          uint64 // idle-driven FlushAll envelope shipments
	DecodeErrors     uint64 // malformed envelope contents rejected by Poll
	ChannelsUsed     int    // distinct next-hop ranks actually used

	// Reliable-delivery counters (zero unless the Box was built
	// WithReliable; see reliable.go for the protocol).
	Retransmits    uint64 // frames re-sent after an RTO expiry
	DupDropped     uint64 // already-delivered duplicate frames discarded
	CorruptDropped uint64 // frames/acks failing the CRC check
	StaleDropped   uint64 // frames/acks from a previous traversal's epoch
	AcksSent       uint64 // cumulative acks shipped
}

// AggregationRatio returns records per shipped envelope — the direct
// measure of how much the aggregation layer batches per topology.
func (s Stats) AggregationRatio() float64 {
	if s.EnvelopesSent == 0 {
		return 0
	}
	return float64(s.RecordsSent+s.RecordsForwarded) / float64(s.EnvelopesSent)
}

// metrics bundles the rank's obs handles for the hot paths.
type metrics struct {
	rank          int
	recordsSent   *obs.PerRank
	delivered     *obs.PerRank
	forwarded     *obs.PerRank
	envelopesSent *obs.PerRank
	envelopesRecv *obs.PerRank
	hops          *obs.PerRank
	flushes       *obs.PerRank
	decodeErrors  *obs.PerRank
	envelopeBytes *obs.Histogram

	retransmits    *obs.PerRank
	dupDropped     *obs.PerRank
	corruptDropped *obs.PerRank
	staleDropped   *obs.PerRank
	acksSent       *obs.PerRank
}

func newMetrics(r *rt.Rank) metrics {
	reg, p := r.Obs(), r.Size()
	return metrics{
		rank:          r.Rank(),
		recordsSent:   reg.PerRank(obs.MBRecordsSent, p),
		delivered:     reg.PerRank(obs.MBRecordsDelivered, p),
		forwarded:     reg.PerRank(obs.MBRecordsForwarded, p),
		envelopesSent: reg.PerRank(obs.MBEnvelopesSent, p),
		envelopesRecv: reg.PerRank(obs.MBEnvelopesRecv, p),
		hops:          reg.PerRank(obs.MBHops, p),
		flushes:       reg.PerRank(obs.MBFlushes, p),
		decodeErrors:  reg.PerRank(obs.MBDecodeErrors, p),
		envelopeBytes: reg.Histogram(obs.MBEnvelopeBytes),

		retransmits:    reg.PerRank(obs.MBRetransmits, p),
		dupDropped:     reg.PerRank(obs.MBDupDropped, p),
		corruptDropped: reg.PerRank(obs.MBCorruptDropped, p),
		staleDropped:   reg.PerRank(obs.MBStaleDropped, p),
		acksSent:       reg.PerRank(obs.MBAcksSent, p),
	}
}

// FlowCounter receives end-to-end record counts partitioned by record tag.
// The multi-query engine registers one to feed each in-flight query's
// termination detector independently; the single-traversal path wraps its
// lone detector in an adapter that ignores the tag. Implementations are
// invoked only from the owning rank's goroutine (Send/Poll are not
// concurrency-safe), so they need no internal locking.
type FlowCounter interface {
	// CountSent records n records entering the mailbox under tag (at the
	// originating rank).
	CountSent(tag uint32, n uint64)
	// CountReceived records n records delivered at their final destination
	// under tag.
	CountReceived(tag uint32, n uint64)
}

// detFlow adapts a single termination detector to the FlowCounter seam for
// the classic one-traversal-per-machine path (every record shares tag 0).
type detFlow struct{ det *termination.Detector }

func (f detFlow) CountSent(_ uint32, n uint64)     { f.det.CountSent(n) }
func (f detFlow) CountReceived(_ uint32, n uint64) { f.det.CountReceived(n) }

// Box is one rank's routed mailbox: the paper's `mailbox` abstraction with
// send(rank, data) and receive() (§V), implemented over the aggregation and
// routing network of §III-B.
type Box struct {
	r     *rt.Rank
	topo  Topology
	flows FlowCounter // nil = no flow accounting

	flushBytes int
	buffers    map[int][]byte   // next-hop rank -> pending aggregated records
	channels   map[int]struct{} // distinct next-hop ranks ever used (Stats.ChannelsUsed)
	delivered  []Record
	stats      Stats
	met        metrics
	inFlush    bool // inside FlushAll (attributes shipments to MBFlushes)

	// rel, when non-nil, runs the seq/ack/retransmit protocol of reliable.go
	// under every envelope; wantRel and the RTO bounds stage the WithReliable
	// option until New can mint the box epoch.
	rel             *reliable
	wantRel         bool
	rtoBase, rtoMax time.Duration
}

// Record is one delivered visitor record. The payload is an exclusive copy
// owned by the receiver: it never aliases transport buffers or sibling
// records, so callers may retain or mutate it freely. Tag is the record
// namespace stamped at Send time (query ID under the multi-query engine,
// 0 on the single-traversal path).
type Record struct {
	Tag     uint32
	Payload []byte
}

// Option configures a Box.
type Option func(*Box)

// WithFlushBytes sets the per-channel aggregation threshold.
func WithFlushBytes(n int) Option {
	return func(b *Box) { b.flushBytes = n }
}

// WithFlows installs a tag-aware flow counter, replacing (or standing in
// for) the single-detector accounting. The multi-query engine uses this to
// route per-record send/receive counts to the record's query.
func WithFlows(fc FlowCounter) Option {
	return func(b *Box) { b.flows = fc }
}

// WithReliable enables sequence-numbered, acked, checksummed envelope
// delivery with capped exponential-backoff retransmission (see reliable.go).
// Must be set uniformly across all ranks of a machine — mailboxes are
// created collectively, and a reliable box speaks a framed wire format a
// raw box would reject as decode errors.
func WithReliable() Option {
	return func(b *Box) { b.wantRel = true }
}

// WithRTO overrides the reliable layer's retransmission-timeout bounds: the
// first retransmit of a frame fires after base, each further one doubles the
// backoff up to max. Zero values keep DefaultRTOBase/DefaultRTOMax. Only
// meaningful together with WithReliable.
func WithRTO(base, max time.Duration) Option {
	return func(b *Box) { b.rtoBase, b.rtoMax = base, max }
}

// New returns a mailbox for the rank using the given routing topology. The
// detector, if non-nil, is fed with end-to-end record counts: one send at the
// originating rank, one receive at the final destination (records parked in
// intermediate aggregation buffers are exactly the S−R in-flight gap the
// termination waves must see drain to zero).
func New(r *rt.Rank, topo Topology, det *termination.Detector, opts ...Option) *Box {
	b := &Box{
		r:          r,
		topo:       topo,
		flushBytes: DefaultFlushBytes,
		buffers:    make(map[int][]byte),
		channels:   make(map[int]struct{}),
		met:        newMetrics(r),
	}
	if det != nil {
		b.flows = detFlow{det: det}
	}
	for _, o := range opts {
		o(b)
	}
	if b.wantRel {
		// Minting the epoch advances the rank's machine-level generation
		// counter; done collectively (every rank constructs its box), all
		// ranks observe the same epoch for this traversal.
		b.rel = newReliable(r, b, b.rtoBase, b.rtoMax)
	}
	return b
}

// Reliable reports whether this box runs the reliable-delivery protocol.
func (b *Box) Reliable() bool { return b.rel != nil }

// Send routes one tag-0 record toward dest, buffering it for aggregation.
// The record bytes are copied; the caller may reuse its buffer.
func (b *Box) Send(dest int, record []byte) { b.SendTagged(dest, 0, record) }

// SendTagged routes one record toward dest under the given tag. The tag
// travels in the record header and comes back out on the delivered Record,
// letting one mailbox multiplex records of many concurrent traversals.
func (b *Box) SendTagged(dest int, tag uint32, record []byte) {
	b.stats.RecordsSent++
	b.met.recordsSent.Inc(b.met.rank)
	if b.flows != nil {
		b.flows.CountSent(tag, 1)
	}
	if dest == b.r.Rank() {
		// Loopback delivery, as MPI self-sends do.
		b.deliver(tag, record)
		return
	}
	b.enqueue(dest, tag, record)
}

// enqueue appends a framed record to the aggregation buffer of the next hop
// toward dest, shipping the buffer if it crossed the flush threshold.
func (b *Box) enqueue(dest int, tag uint32, record []byte) {
	hop := b.topo.NextHop(b.r.Rank(), dest)
	b.stats.Hops++
	b.met.hops.Inc(b.met.rank)
	buf := b.buffers[hop]
	// Count distinct next-hop channels, not buffer (re)creations: a buffer is
	// nil again after every ship/FlushAll, so keying the count off buffer
	// existence would inflate ChannelsUsed past Topology.MaxChannels.
	if _, seen := b.channels[hop]; !seen {
		b.channels[hop] = struct{}{}
		b.stats.ChannelsUsed++
	}
	var hdr [recordHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(dest))
	binary.LittleEndian.PutUint32(hdr[4:], tag)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(record)))
	buf = append(buf, hdr[:]...)
	buf = append(buf, record...)
	if len(buf) >= b.flushBytes {
		b.ship(hop, buf)
		buf = nil
	}
	b.buffers[hop] = buf
}

// ship sends one aggregated envelope to the next hop. Stats count logical
// envelopes: a reliable box's retransmissions of the same envelope are
// accounted under Stats.Retransmits, not here, so envelope conservation
// (Σsent == Σrecv at quiescence) holds under faults too.
func (b *Box) ship(hop int, buf []byte) {
	if b.rel != nil {
		b.rel.send(hop, buf)
	} else {
		b.r.Send(hop, rt.KindMailbox, 0, buf)
	}
	b.stats.EnvelopesSent++
	b.met.envelopesSent.Inc(b.met.rank)
	b.met.envelopeBytes.Observe(uint64(len(buf)))
	if b.inFlush {
		b.stats.Flushes++
		b.met.flushes.Inc(b.met.rank)
	}
}

// deliver appends a record addressed to this rank to the delivered queue.
// The bytes are always copied: delivered payloads must never alias the
// incoming envelope's backing array (a caller mutating — or appending to —
// one Record.Payload would silently corrupt sibling records and block
// transport buffer reuse) nor a loopback caller's reusable buffer.
func (b *Box) deliver(tag uint32, record []byte) {
	record = append(make([]byte, 0, len(record)), record...)
	b.delivered = append(b.delivered, Record{Tag: tag, Payload: record})
	b.stats.RecordsDelivered++
	b.met.delivered.Inc(b.met.rank)
	if b.flows != nil {
		b.flows.CountReceived(tag, 1)
	}
}

// decodeError counts one malformed envelope datum (Stats.DecodeErrors and
// the mailbox.decode_errors obs metric).
func (b *Box) decodeError() {
	b.stats.DecodeErrors++
	b.met.decodeErrors.Inc(b.met.rank)
}

// Reliable-protocol accounting (invoked from reliable.go).

func (b *Box) retransmitted() {
	b.stats.Retransmits++
	b.met.retransmits.Inc(b.met.rank)
}

func (b *Box) dupDropped() {
	b.stats.DupDropped++
	b.met.dupDropped.Inc(b.met.rank)
}

func (b *Box) corruptDropped() {
	b.stats.CorruptDropped++
	b.met.corruptDropped.Inc(b.met.rank)
}

func (b *Box) staleDropped() {
	b.stats.StaleDropped++
	b.met.staleDropped.Inc(b.met.rank)
}

func (b *Box) ackSent() {
	b.stats.AcksSent++
	b.met.acksSent.Inc(b.met.rank)
}

// decodeEnvelope walks one envelope's framed records, delivering records
// addressed to this rank and re-forwarding the rest. Malformed framing never
// panics: a record whose header length exceeds the remaining bytes (or a
// truncated trailing header) discards the rest of the envelope, and a record
// whose dest is outside [0, p) is skipped — both counted as decode errors.
func (b *Box) decodeEnvelope(p []byte) {
	for len(p) > 0 {
		if len(p) < recordHeader {
			b.decodeError() // truncated header tail
			return
		}
		dest := int(binary.LittleEndian.Uint32(p[0:]))
		tag := binary.LittleEndian.Uint32(p[4:])
		n := int(binary.LittleEndian.Uint32(p[8:]))
		if n > len(p)-recordHeader {
			b.decodeError() // oversized length: would run past the envelope
			return
		}
		rec := p[recordHeader : recordHeader+n]
		p = p[recordHeader+n:]
		if dest < 0 || dest >= b.r.Size() {
			b.decodeError() // misrouted dest: NextHop preconditions violated
			continue
		}
		if dest == b.r.Rank() {
			b.deliver(tag, rec)
		} else {
			b.stats.RecordsForwarded++
			b.met.forwarded.Inc(b.met.rank)
			b.enqueue(dest, tag, rec)
		}
	}
}

// Poll drains incoming envelopes, re-forwards records routed through this
// rank, and returns the records whose final destination is this rank —
// including loopback records Sent since the previous Poll. The caller owns
// the returned slice and every Record.Payload in it (payloads are exclusive
// copies; see Record).
func (b *Box) Poll() []Record {
	if b.rel != nil {
		// Reliable path: the protocol layer validates, dedups, orders, acks,
		// and drives retransmission; only accepted envelopes reach decode.
		for _, payload := range b.rel.poll() {
			b.stats.EnvelopesRecv++
			b.met.envelopesRecv.Inc(b.met.rank)
			b.decodeEnvelope(payload)
		}
	} else {
		for _, m := range b.r.Recv(rt.KindMailbox) {
			b.stats.EnvelopesRecv++
			b.met.envelopesRecv.Inc(b.met.rank)
			b.decodeEnvelope(m.Payload)
		}
	}
	out := b.delivered
	b.delivered = nil
	return out
}

// PendingRecords counts records currently parked in this rank's aggregation
// buffers — the per-rank term of the machine-wide conservation law
// Σsent == Σdelivered + Σpending that internal/check asserts between flush
// rounds (buffers are self-framed and well-formed by construction).
func (b *Box) PendingRecords() int {
	total := 0
	for _, buf := range b.buffers {
		for len(buf) >= recordHeader {
			n := int(binary.LittleEndian.Uint32(buf[8:]))
			buf = buf[recordHeader+n:]
			total++
		}
	}
	return total
}

// PendingByTag counts records parked in this rank's aggregation buffers per
// record tag — the per-query pending term of the per-query conservation law
// the engine's invariant checks assert mid-flight.
func (b *Box) PendingByTag() map[uint32]int {
	out := make(map[uint32]int)
	for _, buf := range b.buffers {
		for len(buf) >= recordHeader {
			tag := binary.LittleEndian.Uint32(buf[4:])
			n := int(binary.LittleEndian.Uint32(buf[8:]))
			buf = buf[recordHeader+n:]
			out[tag]++
		}
	}
	return out
}

// FlushAll ships every non-empty aggregation buffer. Called when the rank
// runs out of local work so partially filled buffers cannot stall the
// traversal or termination detection.
func (b *Box) FlushAll() {
	b.inFlush = true
	for hop, buf := range b.buffers {
		if len(buf) > 0 {
			b.ship(hop, buf)
			b.buffers[hop] = nil
		}
	}
	b.inFlush = false
}

// Idle reports whether this rank's mailbox holds no buffered outbound
// records — and, on a reliable box, no unacknowledged frames: a rank stays
// non-idle (and keeps retransmitting via Poll) until its deliveries are
// confirmed, so quiescence implies the message plane is truly drained.
func (b *Box) Idle() bool {
	for _, buf := range b.buffers {
		if len(buf) > 0 {
			return false
		}
	}
	return b.rel == nil || b.rel.idle()
}

// Stats returns a snapshot of this rank's mailbox counters.
func (b *Box) Stats() Stats { return b.stats }
