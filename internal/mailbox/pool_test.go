package mailbox

// Tests for the zero-allocation message plane (pool.go, DESIGN.md §9):
// flush-threshold semantics, arena delivery isolation under hostile callers,
// cross-epoch arena recycling, pool round-trips, and the fault-injection
// recycling gate.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"havoqgt/internal/obs"
	"havoqgt/internal/rt"
	"havoqgt/internal/termination"
)

// TestFlushThresholdCountsFramedBytes pins the flush-threshold semantic
// documented on DefaultFlushBytes/WithFlushBytes: the threshold is measured
// in FRAMED envelope bytes — payload plus the 12-byte per-record header —
// so with T=64, a 51-byte payload (framed 63) stays buffered and a 52-byte
// payload (framed 64) ships immediately.
func TestFlushThresholdCountsFramedBytes(t *testing.T) {
	const threshold = 64
	cases := []struct {
		name      string
		payloads  []int // payload sizes sent in order to rank 1
		wantShips uint64
		wantPend  int
	}{
		{"one under (framed 63)", []int{threshold - recordHeader - 1}, 0, 1},
		{"exactly at (framed 64)", []int{threshold - recordHeader}, 1, 0},
		{"single overshoot ships whole", []int{500}, 1, 0},
		{"two records cross together", []int{20, 20}, 1, 0}, // framed 32+32 = 64
		{"two records stay under", []int{20, 19}, 0, 2},     // framed 32+31 = 63
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := rt.NewMachine(2)
			m.Run(func(r *rt.Rank) {
				if r.Rank() != 0 {
					return
				}
				box := New(r, NewDirect(2), nil, WithFlushBytes(threshold))
				for _, n := range tc.payloads {
					box.Send(1, bytes.Repeat([]byte{0x42}, n))
				}
				if got := box.Stats().EnvelopesSent; got != tc.wantShips {
					t.Errorf("EnvelopesSent = %d, want %d", got, tc.wantShips)
				}
				if got := box.PendingRecords(); got != tc.wantPend {
					t.Errorf("PendingRecords = %d, want %d", got, tc.wantPend)
				}
			})
		})
	}
}

// pumpExchange runs a full all-to-all exchange (msgs records from every rank
// to every rank, loopback included) and hands each poll batch to inspect
// before the next Poll invalidates it. Returns per-rank received payload
// counts.
func pumpExchange(t *testing.T, p int, topo Topology, msgs int, reliable bool,
	inspect func(rank int, recs []Record)) []int {
	t.Helper()
	got := make([]int, p)
	m := rt.NewMachine(p)
	m.Run(func(r *rt.Rank) {
		det := termination.New(r)
		opts := []Option{WithFlushBytes(96)} // small: force many envelopes
		if reliable {
			opts = append(opts, WithReliable())
		}
		box := New(r, topo, det, opts...)
		for dest := 0; dest < p; dest++ {
			for i := 0; i < msgs; i++ {
				box.Send(dest, []byte(fmt.Sprintf("%d->%d#%d", r.Rank(), dest, i)))
			}
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			recs := box.Poll()
			got[r.Rank()] += len(recs)
			if len(recs) > 0 && inspect != nil {
				inspect(r.Rank(), recs)
			}
			box.FlushAll()
			if det.Pump(box.Idle()) {
				break
			}
			if time.Now().After(deadline) {
				panic("exchange did not quiesce")
			}
		}
	})
	return got
}

// TestDeliveredRecordsIsolatedUnderMutation is the anti-aliasing regression
// suite for arena delivery: for every topology, raw and reliable, a hostile
// consumer that appends to and scribbles over every delivered payload must
// not be able to corrupt any sibling record in the same poll batch.
func TestDeliveredRecordsIsolatedUnderMutation(t *testing.T) {
	const p, msgs = 9, 6
	for _, reliable := range []bool{false, true} {
		for _, topo := range []Topology{NewDirect(p), NewGrid2D(p), NewGrid3D(p)} {
			name := fmt.Sprintf("%s/reliable=%v", topo.Name(), reliable)
			t.Run(name, func(t *testing.T) {
				got := pumpExchange(t, p, topo, msgs, reliable, func(rank int, recs []Record) {
					// Pass 1: snapshot every payload before touching any.
					snaps := make([]string, len(recs))
					for i, rec := range recs {
						snaps[i] = string(rec.Payload)
					}
					// Pass 2: append to every payload, then mutate the grown
					// copy. Payloads are capacity-clamped arena sub-slices, so
					// the append must reallocate — writing through the grown
					// slice cannot touch the arena.
					for i := range recs {
						g := append(recs[i].Payload, 0xEE, 0xEE, 0xEE)
						for j := range g {
							g[j] = 0xEE
						}
					}
					for i, rec := range recs {
						if string(rec.Payload) != snaps[i] {
							t.Errorf("rank %d: append to a sibling corrupted record %d", rank, i)
						}
					}
					// Pass 3: scribble each payload in place with a per-record
					// fill, then verify no scribble bled into a neighbor.
					for i := range recs {
						fill := byte(i)
						for j := range recs[i].Payload {
							recs[i].Payload[j] = fill
						}
					}
					for i, rec := range recs {
						for j, b := range rec.Payload {
							if b != byte(i) {
								t.Fatalf("rank %d: record %d byte %d = %#x, want fill %#x (arena overlap)",
									rank, i, j, b, byte(i))
							}
						}
					}
				})
				for rank, n := range got {
					if n != p*msgs {
						t.Errorf("rank %d received %d records, want %d", rank, n, p*msgs)
					}
				}
			})
		}
	}
}

// TestArenaRecyclesAcrossPolls pins the double-buffered epoch contract on
// the loopback path: records from poll N stay intact through poll N+1 and
// their arena storage is reused by poll N+2 (the allocation win), while
// poll N+1's records live in the other arena.
func TestArenaRecyclesAcrossPolls(t *testing.T) {
	m := rt.NewMachine(1)
	m.Run(func(r *rt.Rank) {
		box := New(r, NewDirect(1), nil)
		poll := func(tag uint32) Record {
			box.SendTagged(0, tag, bytes.Repeat([]byte{byte(tag)}, 32))
			recs := box.Poll()
			if len(recs) != 1 {
				t.Fatalf("poll %d: got %d records, want 1", tag, len(recs))
			}
			return recs[0]
		}
		r1 := poll(1)
		p1 := &r1.Payload[0]
		s1 := string(r1.Payload)
		r2 := poll(2)
		p2 := &r2.Payload[0]
		// Epoch survival: r1's bytes must still be intact after poll 2.
		if string(r1.Payload) != s1 {
			t.Fatal("poll-1 record corrupted by poll 2 (epoch contract broken)")
		}
		if p1 == p2 {
			t.Fatal("consecutive polls share an arena: records would not survive one poll")
		}
		r3 := poll(3)
		p3 := &r3.Payload[0]
		// Recycling: poll 3 must reuse poll 1's arena storage, or the plane
		// still allocates per epoch.
		if p1 != p3 {
			t.Fatal("poll-3 record not carved from poll-1's recycled arena")
		}
		if p2 == p3 {
			t.Fatal("polls 2 and 3 share an arena")
		}
	})
}

// TestEnvelopePoolRoundTrip checks receiver-side envelope recycling on the
// raw path: a rank that both receives and sends should serve outbound
// aggregation buffers from consumed inbound envelopes (pool hits), with the
// per-Box stats mirrored into the obs registry.
func TestEnvelopePoolRoundTrip(t *testing.T) {
	const p, msgs = 2, 400
	var stats [p]Stats
	m := rt.NewMachine(p)
	m.Run(func(r *rt.Rank) {
		det := termination.New(r)
		box := New(r, NewDirect(p), det, WithFlushBytes(256))
		other := 1 - r.Rank()
		deadline := time.Now().Add(20 * time.Second)
		// Send in waves interleaved with polling, so envelopes consumed from
		// the peer re-enter the pool in time to back later outbound buffers
		// — the steady-state circulation the pool exists for.
		sent := 0
		for {
			for i := 0; i < 20 && sent < msgs; i, sent = i+1, sent+1 {
				box.Send(other, bytes.Repeat([]byte{byte(sent)}, 48))
			}
			box.Poll()
			box.FlushAll()
			if sent == msgs && det.Pump(box.Idle()) {
				break
			}
			if time.Now().After(deadline) {
				panic("round trip did not quiesce")
			}
		}
		stats[r.Rank()] = box.Stats()
	})
	var gets, hits, recycled uint64
	for rank, st := range stats {
		if st.PoolGets == 0 {
			t.Errorf("rank %d: no pool gets recorded", rank)
		}
		if st.PoolHits > st.PoolGets {
			t.Errorf("rank %d: hits %d exceed gets %d", rank, st.PoolHits, st.PoolGets)
		}
		gets += st.PoolGets
		hits += st.PoolHits
		recycled += st.PoolBytesRecycled
	}
	if hits == 0 {
		t.Error("no pool hits across the machine: receiver-side recycling is dead")
	}
	if recycled == 0 {
		t.Error("no bytes recycled: consumed envelopes are not re-entering pools")
	}
	reg := m.Obs()
	if got := reg.PerRank(obs.MBPoolGets, p).Total(); got != gets {
		t.Errorf("obs %s = %d, want %d", obs.MBPoolGets, got, gets)
	}
	if got := reg.PerRank(obs.MBPoolHits, p).Total(); got != hits {
		t.Errorf("obs %s = %d, want %d", obs.MBPoolHits, got, hits)
	}
	if got := reg.PerRank(obs.MBPoolRecycledBytes, p).Total(); got != recycled {
		t.Errorf("obs %s = %d, want %d", obs.MBPoolRecycledBytes, got, recycled)
	}
	if free := reg.Gauge(obs.MBPoolFree).Value(); free < 0 {
		t.Errorf("pool-free gauge negative: %d", free)
	}
}

// cleanTransport is a pass-through Transport: its mere installation must
// latch ExclusiveDelivery false and disable inbound recycling forever.
type cleanTransport struct{}

func (cleanTransport) Fate(_, _ int, _ uint8, _ uint64, _ int) rt.Fate { return rt.Fate{} }
func (cleanTransport) Stall(int) time.Duration                         { return 0 }

// TestRecyclingDisabledOnceTransportInstalled pins the safety gate: after
// any fault-injecting Transport has existed on the machine — even a
// pass-through one, even if since removed — a drained payload is no longer
// provably exclusive, so raw-path envelope recycling must stay off.
func TestRecyclingDisabledOnceTransportInstalled(t *testing.T) {
	const p = 2
	m := rt.NewMachine(p)
	m.SetTransport(cleanTransport{})
	m.SetTransport(nil) // removal must NOT re-enable recycling
	var stats [p]Stats
	m.Run(func(r *rt.Rank) {
		if r.ExclusiveDelivery() {
			t.Errorf("rank %d: ExclusiveDelivery true after a transport was installed", r.Rank())
		}
		det := termination.New(r)
		box := New(r, NewDirect(p), det, WithFlushBytes(256))
		other := 1 - r.Rank()
		for i := 0; i < 200; i++ {
			box.Send(other, bytes.Repeat([]byte{byte(i)}, 48))
		}
		deadline := time.Now().Add(20 * time.Second)
		for {
			box.Poll()
			box.FlushAll()
			if det.Pump(box.Idle()) {
				break
			}
			if time.Now().After(deadline) {
				panic("exchange did not quiesce")
			}
		}
		stats[r.Rank()] = box.Stats()
	})
	for rank, st := range stats {
		if st.PoolBytesRecycled != 0 {
			t.Errorf("rank %d: %d bytes recycled on the raw path under a transport (aliasing hazard)",
				rank, st.PoolBytesRecycled)
		}
		if st.PoolHits != 0 {
			t.Errorf("rank %d: %d pool hits with recycling disabled", rank, st.PoolHits)
		}
	}
}

// TestReliableRecyclesAggregationBuffersUnderTransport checks the one
// recycling path that stays legal under fault injection: reliable-mode
// aggregation buffers are copied into frames at ship time, so they return
// to the pool even when ExclusiveDelivery is false. (Frames themselves are
// never pooled; see reliable.go.)
func TestReliableRecyclesAggregationBuffersUnderTransport(t *testing.T) {
	const p = 2
	m := rt.NewMachine(p)
	m.SetTransport(cleanTransport{})
	var stats [p]Stats
	m.Run(func(r *rt.Rank) {
		det := termination.New(r)
		box := New(r, NewDirect(p), det, WithReliable(), WithFlushBytes(256))
		other := 1 - r.Rank()
		for i := 0; i < 200; i++ {
			box.Send(other, bytes.Repeat([]byte{byte(i)}, 48))
		}
		deadline := time.Now().Add(20 * time.Second)
		for {
			box.Poll()
			box.FlushAll()
			if det.Pump(box.Idle()) {
				break
			}
			if time.Now().After(deadline) {
				panic("reliable exchange did not quiesce")
			}
		}
		stats[r.Rank()] = box.Stats()
	})
	var hits, recycled uint64
	for _, st := range stats {
		hits += st.PoolHits
		recycled += st.PoolBytesRecycled
	}
	if hits == 0 || recycled == 0 {
		t.Errorf("reliable path recycled nothing under a transport (hits=%d, bytes=%d); "+
			"post-frame-copy buffers are exclusively the sender's and must be pooled", hits, recycled)
	}
}

// TestEnvPoolBounds covers the free-list edge cases directly.
func TestEnvPoolBounds(t *testing.T) {
	var p envPool
	if b := p.get(); b != nil {
		t.Fatalf("empty pool returned %v", b)
	}
	if p.put(nil) {
		t.Fatal("pool accepted a zero-capacity buffer")
	}
	for i := 0; i < envPoolCap; i++ {
		if !p.put(make([]byte, 8)) {
			t.Fatalf("pool rejected buffer %d below cap", i)
		}
	}
	if p.put(make([]byte, 8)) {
		t.Fatal("pool accepted a buffer beyond envPoolCap")
	}
	if p.size() != envPoolCap {
		t.Fatalf("size = %d, want %d", p.size(), envPoolCap)
	}
	b := p.get()
	if b == nil || len(b) != 0 || cap(b) != 8 {
		t.Fatalf("get returned len=%d cap=%d, want empty with retained capacity", len(b), cap(b))
	}
}
