package mailbox

import (
	"fmt"
	"testing"
	"time"

	"havoqgt/internal/rt"
	"havoqgt/internal/termination"
)

func TestDirectTopology(t *testing.T) {
	d := NewDirect(8)
	for from := 0; from < 8; from++ {
		for dest := 0; dest < 8; dest++ {
			if from == dest {
				continue
			}
			if hop := d.NextHop(from, dest); hop != dest {
				t.Fatalf("direct NextHop(%d,%d) = %d", from, dest, hop)
			}
		}
	}
	if d.Diameter() != 1 || d.MaxChannels() != 7 {
		t.Fatalf("direct metadata wrong: %+v", d)
	}
}

func TestPaperFigure4Routing(t *testing.T) {
	// Figure 4: 16 ranks in a 4×4 grid; rank 11 sending to rank 5 routes
	// through rank 9.
	g := NewGrid2D(16)
	if g.Rows != 4 || g.Cols != 4 {
		t.Fatalf("16 ranks should form 4×4, got %dx%d", g.Rows, g.Cols)
	}
	if hop := g.NextHop(11, 5); hop != 9 {
		t.Fatalf("NextHop(11,5) = %d, want 9 (Figure 4)", hop)
	}
	if hop := g.NextHop(9, 5); hop != 5 {
		t.Fatalf("NextHop(9,5) = %d, want 5", hop)
	}
}

// routeLength walks a topology's route and returns the hop count.
func routeLength(t *testing.T, topo Topology, from, dest, p int) int {
	t.Helper()
	hops := 0
	cur := from
	for cur != dest {
		next := topo.NextHop(cur, dest)
		if next < 0 || next >= p {
			t.Fatalf("%s: NextHop(%d,%d)=%d out of range", topo.Name(), cur, dest, next)
		}
		if next == cur {
			t.Fatalf("%s: NextHop(%d,%d) did not advance", topo.Name(), cur, dest)
		}
		cur = next
		hops++
		if hops > p {
			t.Fatalf("%s: route %d->%d did not terminate", topo.Name(), from, dest)
		}
	}
	return hops
}

func TestAllRoutesTerminateWithinDiameter(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 9, 16, 17, 25, 27, 64} {
		for _, topo := range []Topology{NewDirect(p), NewGrid2D(p), NewGrid3D(p)} {
			for from := 0; from < p; from++ {
				for dest := 0; dest < p; dest++ {
					if from == dest {
						continue
					}
					if h := routeLength(t, topo, from, dest, p); h > topo.Diameter() {
						t.Fatalf("%s p=%d: route %d->%d takes %d hops (> %d)",
							topo.Name(), p, from, dest, h, topo.Diameter())
					}
				}
			}
		}
	}
}

func TestRoutedChannelCountsBelowBound(t *testing.T) {
	// The point of 2D/3D routing: each rank talks to far fewer than p-1
	// next hops.
	for _, p := range []int{16, 64} {
		for _, topo := range []Topology{NewGrid2D(p), NewGrid3D(p)} {
			for from := 0; from < p; from++ {
				hops := map[int]bool{}
				for dest := 0; dest < p; dest++ {
					if dest != from {
						hops[topo.NextHop(from, dest)] = true
					}
				}
				if len(hops) > topo.MaxChannels() {
					t.Fatalf("%s p=%d rank %d uses %d channels (bound %d)",
						topo.Name(), p, from, len(hops), topo.MaxChannels())
				}
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"1d", "2d", "3d", "direct"} {
		if _, err := ByName(name, 8); err != nil {
			t.Errorf("ByName(%q) failed: %v", name, err)
		}
	}
	if _, err := ByName("hypercube", 8); err == nil {
		t.Error("unknown topology accepted")
	}
}

// deliverAll runs a full exchange where every rank sends `msgs` records to
// every other rank, and returns per-rank received payload sets.
func deliverAll(t *testing.T, p int, topo Topology, flushBytes int) [][]string {
	t.Helper()
	got := make([][]string, p)
	m := rt.NewMachine(p)
	m.Run(func(r *rt.Rank) {
		det := termination.New(r)
		box := New(r, topo, det, WithFlushBytes(flushBytes))
		for dest := 0; dest < p; dest++ {
			box.Send(dest, []byte(fmt.Sprintf("%d->%d", r.Rank(), dest)))
		}
		deadline := time.Now().Add(20 * time.Second)
		for {
			for _, rec := range box.Poll() {
				got[r.Rank()] = append(got[r.Rank()], string(rec.Payload))
			}
			box.FlushAll()
			if det.Pump(box.Idle()) {
				break
			}
			if time.Now().After(deadline) {
				panic("mailbox exchange did not quiesce")
			}
		}
	})
	return got
}

func TestRoutedDeliveryAllTopologies(t *testing.T) {
	// The p=16 sweep across all three topologies dominates this package's
	// runtime; short mode keeps the smaller counts, which still exercise
	// loopback, direct, and multi-hop forwarding paths under -race.
	ps := []int{1, 2, 5, 16}
	if testing.Short() {
		ps = []int{1, 2, 5}
	}
	for _, p := range ps {
		for _, topo := range []Topology{NewDirect(p), NewGrid2D(p), NewGrid3D(p)} {
			got := deliverAll(t, p, topo, 64)
			for rank := 0; rank < p; rank++ {
				if len(got[rank]) != p {
					t.Fatalf("%s p=%d: rank %d received %d records, want %d",
						topo.Name(), p, rank, len(got[rank]), p)
				}
				seen := map[string]bool{}
				for _, s := range got[rank] {
					seen[s] = true
				}
				for from := 0; from < p; from++ {
					if !seen[fmt.Sprintf("%d->%d", from, rank)] {
						t.Fatalf("%s p=%d: rank %d missing record from %d", topo.Name(), p, rank, from)
					}
				}
			}
		}
	}
}

func TestAggregationReducesEnvelopes(t *testing.T) {
	// With a large flush threshold, many records to one destination must
	// travel in few envelopes.
	p := 4
	m := rt.NewMachine(p)
	envs := make([]uint64, p)
	m.Run(func(r *rt.Rank) {
		det := termination.New(r)
		box := New(r, NewDirect(p), det, WithFlushBytes(1<<20))
		if r.Rank() == 0 {
			for i := 0; i < 1000; i++ {
				box.Send(1, []byte("payload-xx"))
			}
		}
		deadline := time.Now().Add(20 * time.Second)
		for {
			box.Poll()
			box.FlushAll()
			if det.Pump(box.Idle()) {
				break
			}
			if time.Now().After(deadline) {
				panic("no quiesce")
			}
		}
		envs[r.Rank()] = box.Stats().EnvelopesSent
	})
	if envs[0] > 4 {
		t.Fatalf("1000 aggregated records used %d envelopes", envs[0])
	}
}

func TestFlushThresholdShipsEagerly(t *testing.T) {
	p := 2
	m := rt.NewMachine(p)
	m.Run(func(r *rt.Rank) {
		box := New(r, NewDirect(p), nil, WithFlushBytes(32))
		if r.Rank() == 0 {
			box.Send(1, make([]byte, 64)) // exceeds threshold alone
			if !box.Idle() {
				panic("oversized record not shipped eagerly")
			}
			return
		}
		deadline := time.Now().Add(10 * time.Second)
		for len(box.Poll()) == 0 {
			if time.Now().After(deadline) {
				panic("record never arrived")
			}
		}
	})
}

func TestLoopbackDelivery(t *testing.T) {
	m := rt.NewMachine(1)
	m.Run(func(r *rt.Rank) {
		det := termination.New(r)
		box := New(r, NewDirect(1), det)
		box.Send(0, []byte("self"))
		recs := box.Poll()
		if len(recs) != 1 || string(recs[0].Payload) != "self" {
			panic("loopback delivery broken")
		}
		if det.Sent() != 1 || det.Received() != 1 {
			panic("loopback not counted symmetrically")
		}
	})
}

func TestChannelsUsedNotInflatedByFlush(t *testing.T) {
	// Regression: ChannelsUsed counted aggregation-buffer (re)creations, so a
	// FlushAll between sends to the same destination double-counted the
	// channel. It must count distinct next-hop ranks only.
	p := 2
	m := rt.NewMachine(p)
	m.Run(func(r *rt.Rank) {
		if r.Rank() != 0 {
			// Drain whatever rank 0 ships so the machine can stop cleanly.
			box := New(r, NewDirect(p), nil)
			deadline := time.Now().Add(10 * time.Second)
			for n := 0; n < 3; {
				n += len(box.Poll())
				if time.Now().After(deadline) {
					panic("records never arrived")
				}
			}
			return
		}
		box := New(r, NewDirect(p), nil, WithFlushBytes(1<<20))
		for i := 0; i < 3; i++ {
			box.Send(1, []byte("x"))
			box.FlushAll() // buffer is nil'd; next Send re-creates it
		}
		if got := box.Stats().ChannelsUsed; got != 1 {
			panic(fmt.Sprintf("ChannelsUsed = %d after flushes between sends, want 1", got))
		}
	})
}

func TestDeliveredRecordsDoNotAlias(t *testing.T) {
	// Regression: records delivered from one envelope shared its backing
	// array, so appending to (or scribbling over) one Record.Payload could
	// corrupt its siblings. Each payload must be an exclusive copy.
	p := 2
	m := rt.NewMachine(p)
	m.Run(func(r *rt.Rank) {
		box := New(r, NewDirect(p), nil, WithFlushBytes(1))
		if r.Rank() == 0 {
			// Two records in one envelope: big flush threshold on a manual
			// FlushAll keeps them in a single transport message.
			agg := New(r, NewDirect(p), nil, WithFlushBytes(1<<20))
			agg.Send(1, []byte("first"))
			agg.Send(1, []byte("second"))
			agg.FlushAll()
			return
		}
		deadline := time.Now().Add(10 * time.Second)
		var recs []Record
		for len(recs) < 2 {
			recs = append(recs, box.Poll()...)
			if time.Now().After(deadline) {
				panic("records never arrived")
			}
		}
		// Mutate record 0 aggressively: grow it and scribble over it.
		recs[0].Payload = append(recs[0].Payload, []byte("-overflow-overflow")...)
		for i := range recs[0].Payload {
			recs[0].Payload[i] = 0xFF
		}
		if string(recs[1].Payload) != "second" {
			panic(fmt.Sprintf("sibling record corrupted by mutation: %q", recs[1].Payload))
		}
		// Loopback deliveries must not alias the sender's reusable buffer.
		buf := []byte("loop")
		box.Send(1, buf)
		got := box.Poll()
		copy(buf, "XXXX")
		if len(got) != 1 || string(got[0].Payload) != "loop" {
			panic("loopback record aliases the caller's buffer")
		}
	})
}

func TestStatsForwarding(t *testing.T) {
	if testing.Short() {
		// Needs the 4x4 grid to pin the pivot rank; forwarding itself is
		// still covered in short mode by TestRoutedDeliveryAllTopologies
		// at p=5.
		t.Skip("p=16 grid is slow under -race; skipping in short mode")
	}
	// On a 2D grid, a two-hop route must register one forwarded record at
	// the pivot rank.
	p := 16
	m := rt.NewMachine(p)
	stats := make([]Stats, p)
	m.Run(func(r *rt.Rank) {
		det := termination.New(r)
		box := New(r, NewGrid2D(p), det, WithFlushBytes(1))
		if r.Rank() == 11 {
			box.Send(5, []byte("x"))
		}
		deadline := time.Now().Add(20 * time.Second)
		for {
			box.Poll()
			box.FlushAll()
			if det.Pump(box.Idle()) {
				break
			}
			if time.Now().After(deadline) {
				panic("no quiesce")
			}
		}
		stats[r.Rank()] = box.Stats()
	})
	if stats[9].RecordsForwarded != 1 {
		t.Fatalf("pivot rank 9 forwarded %d records, want 1", stats[9].RecordsForwarded)
	}
	if stats[5].RecordsDelivered != 1 {
		t.Fatalf("rank 5 delivered %d records, want 1", stats[5].RecordsDelivered)
	}
}
