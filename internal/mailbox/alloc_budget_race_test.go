//go:build race

package mailbox

// raceEnabled reports that this binary was built with the race detector,
// whose runtime instrumentation allocates unpredictably — the allocation
// budget tests skip their assertions (but still execute the paths) when set.
const raceEnabled = true
