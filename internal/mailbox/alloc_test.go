package mailbox

// Message-plane allocation benchmarks and steady-state allocation budgets.
//
// The routed aggregating mailbox is the system's per-record hot path: every
// visitor crosses Send → enqueue (framing) → ship → transport → Poll →
// decodeEnvelope → deliver → drain. BENCH_msgplane.json records the
// before/after numbers for the pooled-envelope + arena-delivery rework; the
// TestAllocBudget* tests below pin the steady-state budgets so allocation
// regressions fail `make bench-smoke` (and CI), not just benchmarks.
//
// The budget tests are skipped under the race detector (the race runtime
// instruments allocations) — see alloc_budget_race_test.go / _norace.

import (
	"testing"
	"time"

	"havoqgt/internal/rt"
	"havoqgt/internal/termination"
)

// benchPayload is a typical visitor wire size (BFS records are 20 bytes,
// triangle records 24).
const benchPayloadBytes = 24

// runRoutedBench drives b.N records from rank 0 to rank 1 through a routed
// box and runs the machine to quiescence, so AllocsPerOp covers the full
// Send→route→deliver→drain cycle per record (both ranks' allocations).
func runRoutedBench(b *testing.B, opts ...Option) {
	b.ReportAllocs()
	p := 2
	m := rt.NewMachine(p)
	payload := make([]byte, benchPayloadBytes)
	m.Run(func(r *rt.Rank) {
		det := termination.New(r)
		box := New(r, NewDirect(p), det, append([]Option{WithFlushBytes(4096)}, opts...)...)
		if r.Rank() == 0 {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				box.Send(1, payload)
				if i&511 == 511 {
					box.Poll() // drain acks / drive retransmit timers (reliable path)
				}
			}
			box.FlushAll()
		}
		deadline := time.Now().Add(60 * time.Second)
		for !det.Pump(box.Idle()) {
			box.Poll()
			box.FlushAll()
			if time.Now().After(deadline) {
				panic("mailbox benchmark did not quiesce")
			}
		}
	})
}

// BenchmarkMsgPlaneRouted is the raw-path hot loop: aggregated envelopes over
// the perfect transport. AllocsPerOp here is the headline number of the
// zero-allocation message plane work.
func BenchmarkMsgPlaneRouted(b *testing.B) { runRoutedBench(b) }

// BenchmarkMsgPlaneReliable is the same exchange under the seq/ack/CRC
// reliable protocol (frames retained until acked).
func BenchmarkMsgPlaneReliable(b *testing.B) { runRoutedBench(b, WithReliable()) }

// BenchmarkMsgPlaneLoopback isolates the deliver/drain half: self-sends skip
// the transport entirely, so every allocation observed is the delivery path's
// own (record copy + delivered-queue bookkeeping).
func BenchmarkMsgPlaneLoopback(b *testing.B) {
	b.ReportAllocs()
	rt.NewMachine(1).Run(func(r *rt.Rank) {
		box := New(r, NewDirect(1), termination.New(r))
		payload := make([]byte, benchPayloadBytes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			box.Send(0, payload)
			if i&63 == 63 {
				if got := len(box.Poll()); got != 64 {
					panic("loopback poll lost records")
				}
			}
		}
		box.Poll()
	})
}
