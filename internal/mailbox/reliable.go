package mailbox

// Reliable envelope delivery: the recovery half of the message-plane fault
// model. A Box built WithReliable wraps every aggregated envelope in a
// sequence-numbered, checksummed frame and runs a per-hop selective-repeat
// protocol — cumulative acks, idempotent duplicate suppression, in-order
// release of out-of-order arrivals, and capped exponential-backoff
// retransmission — so a fault-injecting transport (internal/faults) that
// drops, duplicates, reorders, or bit-flips mailbox envelopes no longer
// violates the internal/check conservation laws: every logical envelope is
// delivered exactly once, eventually.
//
// Wire format, multiplexed on rt.KindMailbox by the rt.Msg tag:
//
//	data (tag relData): [epoch u32][seq u64][crc64 u64][framed records...]
//	ack  (tag relAck):  [epoch u32][cumAck u64][crc64 u64]
//
// The CRC (ECMA crc64 over header fields + records) turns payload corruption
// into loss: a corrupted frame is dropped unacknowledged and the sender
// retransmits the intact original (senders keep an exclusive copy of every
// unacked frame). cumAck is the receiver's next-needed sequence number, so
// one ack retires every lower-numbered frame at once.
//
// The epoch — minted collectively via rt.Rank.NextBoxEpoch at Box creation —
// fences traversals from each other: a retransmission that outlives its
// traversal and lands in the next traversal's inbox carries a stale epoch
// and is discarded (counted under mailbox.stale_dropped) instead of being
// decoded into the wrong traversal's sequence space.
//
// Stats stay logical-once: EnvelopesSent counts logical envelopes (not
// retransmissions; those are Stats.Retransmits), EnvelopesRecv counts
// accepted envelopes (not duplicates; those are Stats.DupDropped), so the
// machine-wide envelope conservation law Σsent == Σrecv still holds at
// quiescence under any fault schedule the protocol survives.
//
// What is NOT tolerated: loss on the control (termination) and collective
// planes — the reliable layer guards only rt.KindMailbox traffic. Delay and
// reordering on those planes are safe (the detector and collectives are
// sequence-tagged); loss is not, and fault plans must not drop them.

import (
	"encoding/binary"
	"hash/crc64"
	"time"

	"havoqgt/internal/rt"
)

// Wire tags multiplexed on rt.KindMailbox by the reliable layer. The raw
// (unreliable) path ships envelopes with tag 0; a reliable Box never sees
// tag-0 traffic because mailboxes are created collectively with uniform
// options.
const (
	relData uint32 = 1
	relAck  uint32 = 2
)

// relHeader is the reliable frame prefix: [epoch u32][seq u64][crc64 u64].
// An ack frame is exactly one header with cumAck in the seq slot.
const relHeader = 20

// Default retransmission timeout bounds (see WithRTO).
const (
	DefaultRTOBase = 2 * time.Millisecond
	DefaultRTOMax  = 50 * time.Millisecond
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// frameCRC computes the checksum of a data or ack frame: header fields
// (epoch+seq, bytes [0:12]) plus the record bytes past the header.
func frameCRC(frame []byte) uint64 {
	c := crc64.Update(0, crcTable, frame[:12])
	return crc64.Update(c, crcTable, frame[relHeader:])
}

// outEnv is one unacknowledged outbound frame.
//
// The STRUCT is recycled through the reliable layer's freelist once its
// frame is acked; the FRAME BYTES never are, in either direction (pool.go's
// safety rule): the sender ships the very buffer it retains for
// retransmission, so until the machine is quiescent an acked frame can
// still be aliased by a delayed retransmission copy sitting in the
// receiver's inbox — reusing those bytes could morph a stale in-flight copy
// into a different valid-looking frame.
type outEnv struct {
	seq      uint64
	frame    []byte // exclusive copy, retained until acked; never pooled
	lastSend time.Time
	rto      time.Duration // next retransmit backoff
}

// outPeer is the sender half of one hop's channel.
type outPeer struct {
	nextSeq uint64
	unacked []*outEnv // ascending seq
}

// inPeer is the receiver half of one hop's channel.
type inPeer struct {
	expected uint64            // next in-order seq needed
	held     map[uint64][]byte // out-of-order frames parked until the gap fills
}

// envFreeCap bounds the outEnv struct freelist; retired structs beyond the
// cap are left for the garbage collector.
const envFreeCap = 64

// reliable is the per-Box protocol state.
type reliable struct {
	r         *rt.Rank
	b         *Box // stats / metrics backref
	epoch     uint32
	base, max time.Duration
	out       map[int]*outPeer
	in        map[int]*inPeer

	// envFree recycles outEnv structs (not their frames; see outEnv) so the
	// steady-state send path allocates only the frame itself.
	envFree []*outEnv

	// ackPool recycles 20-byte ack frames. An ack is built by the receiver,
	// consumed by exactly the sender that drains it, and never retained by
	// either side — so on an exclusive-delivery transport the consumed
	// payload can back the consumer's next outbound ack. Gated on
	// rt.Rank.ExclusiveDelivery like every inbound-recycling path.
	ackPool [][]byte

	// deliverScratch is the reusable accepted-envelope slice returned by
	// poll; Box.Poll decodes (copying payload bytes into its arena) before
	// the next poll reuses it.
	deliverScratch [][]byte
}

func newReliable(r *rt.Rank, b *Box, base, max time.Duration) *reliable {
	if base <= 0 {
		base = DefaultRTOBase
	}
	if max < base {
		max = DefaultRTOMax
		if max < base {
			max = base
		}
	}
	return &reliable{
		r:     r,
		b:     b,
		epoch: r.NextBoxEpoch(),
		base:  base,
		max:   max,
		out:   make(map[int]*outPeer),
		in:    make(map[int]*inPeer),
	}
}

func (rl *reliable) outPeer(hop int) *outPeer {
	op := rl.out[hop]
	if op == nil {
		op = &outPeer{}
		rl.out[hop] = op
	}
	return op
}

func (rl *reliable) inPeer(from int) *inPeer {
	ip := rl.in[from]
	if ip == nil {
		ip = &inPeer{held: make(map[uint64][]byte)}
		rl.in[from] = ip
	}
	return ip
}

// getEnv returns an outEnv struct, recycled from the freelist when possible.
func (rl *reliable) getEnv() *outEnv {
	if n := len(rl.envFree); n > 0 {
		e := rl.envFree[n-1]
		rl.envFree[n-1] = nil
		rl.envFree = rl.envFree[:n-1]
		return e
	}
	return new(outEnv)
}

// putEnv retires an acked outEnv to the freelist, dropping its frame
// reference (the frame bytes are never reused; see outEnv).
func (rl *reliable) putEnv(e *outEnv) {
	e.frame = nil
	if len(rl.envFree) < envFreeCap {
		rl.envFree = append(rl.envFree, e)
	}
}

// send frames records as the hop's next sequence number, retains the frame
// for retransmission, and ships it. The records buffer is copied into the
// frame, so the caller may recycle it the moment send returns.
func (rl *reliable) send(hop int, records []byte) {
	op := rl.outPeer(hop)
	seq := op.nextSeq
	op.nextSeq++
	frame := make([]byte, relHeader+len(records))
	binary.LittleEndian.PutUint32(frame[0:], rl.epoch)
	binary.LittleEndian.PutUint64(frame[4:], seq)
	copy(frame[relHeader:], records)
	binary.LittleEndian.PutUint64(frame[12:], frameCRC(frame))
	e := rl.getEnv()
	e.seq, e.frame, e.lastSend, e.rto = seq, frame, time.Now(), rl.base
	op.unacked = append(op.unacked, e)
	rl.r.Send(hop, rt.KindMailbox, relData, frame)
}

// poll drains the transport, returning accepted envelope record-bytes in
// per-peer sequence order, then drives the retransmission timers. Exactly
// the reliable analogue of the raw path's rt.Rank.Recv loop.
func (rl *reliable) poll() [][]byte {
	// Reuse last poll's accepted-envelope slice: Box.Poll finished decoding
	// (and copying) its contents before calling us again.
	for i := range rl.deliverScratch {
		rl.deliverScratch[i] = nil
	}
	out := rl.deliverScratch[:0]
	rl.b.msgScratch = rl.r.RecvInto(rt.KindMailbox, rl.b.msgScratch[:0])
	for i := range rl.b.msgScratch {
		m := &rl.b.msgScratch[i]
		switch m.Tag {
		case relAck:
			rl.handleAck(*m)
		case relData:
			out = rl.handleData(*m, out)
		default:
			// Unframed traffic on a reliable box: misconfiguration, count it
			// where envelope malformations are counted.
			rl.b.decodeError()
		}
		m.Payload = nil
	}
	rl.tick()
	rl.deliverScratch = out
	return out
}

func (rl *reliable) handleAck(m rt.Msg) {
	p := m.Payload
	if len(p) != relHeader || frameCRC(p) != binary.LittleEndian.Uint64(p[12:]) {
		rl.b.corruptDropped() // damaged ack: ignore, data will be re-acked
		return
	}
	if binary.LittleEndian.Uint32(p[0:]) != rl.epoch {
		rl.b.staleDropped()
		return
	}
	cum := binary.LittleEndian.Uint64(p[4:])
	op := rl.outPeer(m.From)
	i := 0
	for i < len(op.unacked) && op.unacked[i].seq < cum {
		rl.putEnv(op.unacked[i]) // struct back to the freelist, frame to the GC
		i++
	}
	if i > 0 {
		n := copy(op.unacked, op.unacked[i:])
		for j := n; j < len(op.unacked); j++ {
			op.unacked[j] = nil
		}
		op.unacked = op.unacked[:n]
	}
	// The drained ack frame has a single live reference (neither side retains
	// acks) — on an exclusive-delivery transport it can back this rank's next
	// outbound ack.
	rl.recycleAck(p)
}

// recycleAck offers a consumed ack frame to the ack pool.
func (rl *reliable) recycleAck(p []byte) {
	if cap(p) < relHeader || len(rl.ackPool) >= envPoolCap || !rl.r.ExclusiveDelivery() {
		return
	}
	rl.ackPool = append(rl.ackPool, p[:relHeader])
}

func (rl *reliable) handleData(m rt.Msg, out [][]byte) [][]byte {
	p := m.Payload
	if len(p) < relHeader || frameCRC(p) != binary.LittleEndian.Uint64(p[12:]) {
		// Corruption becomes loss: no ack, the sender retransmits the intact
		// frame it retained.
		rl.b.corruptDropped()
		return out
	}
	if binary.LittleEndian.Uint32(p[0:]) != rl.epoch {
		rl.b.staleDropped()
		return out
	}
	seq := binary.LittleEndian.Uint64(p[4:])
	ip := rl.inPeer(m.From)
	switch {
	case seq < ip.expected:
		// Already delivered: idempotent drop, but re-ack — the original ack
		// may have been the lost message.
		rl.b.dupDropped()
	case seq == ip.expected:
		out = append(out, p[relHeader:])
		ip.expected++
		// Release any parked frames the gap was blocking, in order.
		for {
			held, ok := ip.held[ip.expected]
			if !ok {
				break
			}
			delete(ip.held, ip.expected)
			out = append(out, held)
			ip.expected++
		}
	default:
		// Future frame: park it until the gap fills (selective repeat).
		if _, dup := ip.held[seq]; dup {
			rl.b.dupDropped()
		} else {
			ip.held[seq] = p[relHeader:]
		}
	}
	rl.sendAck(m.From, ip.expected)
	return out
}

// sendAck ships a cumulative ack: cum is the next sequence number the
// receiver needs, retiring every lower-numbered unacked frame at the sender.
func (rl *reliable) sendAck(to int, cum uint64) {
	var frame []byte
	if n := len(rl.ackPool); n > 0 {
		frame = rl.ackPool[n-1]
		rl.ackPool[n-1] = nil
		rl.ackPool = rl.ackPool[:n-1]
	} else {
		frame = make([]byte, relHeader)
	}
	binary.LittleEndian.PutUint32(frame[0:], rl.epoch)
	binary.LittleEndian.PutUint64(frame[4:], cum)
	binary.LittleEndian.PutUint64(frame[12:], frameCRC(frame))
	rl.b.ackSent()
	rl.r.Send(to, rt.KindMailbox, relAck, frame)
}

// tick retransmits every unacked frame whose RTO expired, doubling its
// backoff up to the cap. Driven from Box.Poll, which every rank loop calls
// continuously.
func (rl *reliable) tick() {
	now := time.Now()
	for hop, op := range rl.out {
		for _, e := range op.unacked {
			if now.Sub(e.lastSend) < e.rto {
				continue
			}
			e.lastSend = now
			e.rto *= 2
			if e.rto > rl.max {
				e.rto = rl.max
			}
			rl.b.retransmitted()
			rl.r.Send(hop, rt.KindMailbox, relData, e.frame)
		}
	}
}

// idle reports whether every outbound frame has been acknowledged. Folded
// into Box.Idle so a rank keeps driving retransmission (and stays non-idle
// for termination detection) until its deliveries are confirmed — quiescence
// then implies the message plane is truly drained, and no retransmission can
// leak into a later phase.
func (rl *reliable) idle() bool {
	for _, op := range rl.out {
		if len(op.unacked) > 0 {
			return false
		}
	}
	return true
}
