package check

import (
	"strings"
	"testing"

	"havoqgt/internal/mailbox"
)

// TestConservationCrossTopology is the seeded conservation matrix: every
// algorithm × every routing topology × several rank counts, each run
// differentially against internal/ref AND through the full invariant set
// (record/envelope conservation, hop and channel bounds, detector S/R
// agreement). Graphs stay tiny — the value is the cross product.
func TestConservationCrossTopology(t *testing.T) {
	ranks := []int{1, 4, 9}
	n, ef := uint64(32), 3
	if testing.Short() {
		ranks = []int{1, 4}
		n, ef = 24, 2
	}
	for _, algo := range Algos() {
		for _, topo := range Topologies() {
			for _, p := range ranks {
				c := Case{
					Algo:       algo,
					Seed:       0xC0FFEE ^ uint64(p),
					N:          n,
					EdgeFactor: ef,
					Ranks:      p,
					Topo:       topo,
					FlushBytes: 64,
					K:          2,
				}
				t.Run(c.String(), func(t *testing.T) {
					if err := c.Run(); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestConservationDegenerateFlushThresholds pins the flush-threshold
// extremes on one algorithm per topology: 1 byte (every record ships alone —
// maximum envelope count) and 1 MiB (nothing ships until idle FlushAll — the
// path that used to corrupt ChannelsUsed).
func TestConservationDegenerateFlushThresholds(t *testing.T) {
	for _, topo := range Topologies() {
		for _, flush := range []int{1, 1 << 20} {
			c := Case{
				Algo:       "bfs",
				Seed:       7,
				N:          24,
				EdgeFactor: 2,
				Ranks:      4,
				Topo:       topo,
				FlushBytes: flush,
			}
			t.Run(c.String(), func(t *testing.T) {
				if err := c.Run(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestViolationReporting sanity-checks the checker itself: fabricated stats
// that lose records, leak envelopes, blow the channel bound, or hide decode
// errors must each trip their invariant — a checker that can't fail proves
// nothing.
func TestViolationReporting(t *testing.T) {
	topo := mailbox.NewGrid2D(16)
	trips := func(stats []mailbox.Stats, invariant string) {
		t.Helper()
		vs := MailboxQuiesced(topo, stats)
		for _, v := range vs {
			if v.Invariant == invariant {
				if !strings.Contains(Error(vs).Error(), invariant) {
					t.Fatalf("Error() dropped violation %q", invariant)
				}
				return
			}
		}
		t.Fatalf("fabricated %s breach not detected; got %v", invariant, vs)
	}
	trips([]mailbox.Stats{{RecordsSent: 5, RecordsDelivered: 4}}, "record-conservation")
	trips([]mailbox.Stats{{EnvelopesSent: 3, EnvelopesRecv: 2}}, "envelope-conservation")
	trips([]mailbox.Stats{{RecordsSent: 2, RecordsDelivered: 2, Hops: 100}}, "hop-bound")
	trips([]mailbox.Stats{{ChannelsUsed: topo.MaxChannels() + 1}}, "channel-bound")
	trips([]mailbox.Stats{{DecodeErrors: 1}}, "clean-decode")

	// And a clean set passes.
	clean := []mailbox.Stats{
		{RecordsSent: 4, RecordsDelivered: 3, EnvelopesSent: 2, EnvelopesRecv: 1, Hops: 3, ChannelsUsed: 2},
		{RecordsDelivered: 1, RecordsForwarded: 1, EnvelopesSent: 1, EnvelopesRecv: 2, Hops: 1, ChannelsUsed: 1},
	}
	if vs := MailboxQuiesced(topo, clean); len(vs) != 0 {
		t.Fatalf("clean stats flagged: %v", vs)
	}
}
