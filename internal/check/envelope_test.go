package check

import (
	"testing"

	"havoqgt/internal/mailbox"
	"havoqgt/internal/obs"
	"havoqgt/internal/rt"
)

// pollHostile injects one raw envelope into rank 0's transport inbox and
// polls a mailbox over a p-rank machine, returning the delivered records and
// the box stats. Poll must never panic, whatever the envelope holds.
func pollHostile(p int, topo mailbox.Topology, payload []byte) (recs []mailbox.Record, st mailbox.Stats, reg *obs.Registry) {
	m := rt.NewMachine(p)
	reg = m.Obs()
	m.Run(func(r *rt.Rank) {
		if r.Rank() != 0 {
			return
		}
		r.Send(0, rt.KindMailbox, 0, payload)
		box := mailbox.New(r, topo, nil)
		recs = box.Poll()
		st = box.Stats()
	})
	return recs, st, reg
}

// TestHostileEnvelopeCorpus drives Box.Poll with every adversarial envelope:
// truncated, oversized-length, zero-length, and misrouted-dest records. The
// pre-hardening decoder panicked on the oversized and truncated entries via
// a slice out-of-range; now each malformed datum is counted and skipped and
// well-formed records around the damage still arrive.
func TestHostileEnvelopeCorpus(t *testing.T) {
	for _, h := range HostileCorpus() {
		t.Run(h.Name, func(t *testing.T) {
			topo := mailbox.NewDirect(HostileCorpusRanks)
			recs, st, reg := pollHostile(HostileCorpusRanks, topo, h.Payload)
			if len(recs) != h.WantDelivered {
				t.Fatalf("delivered %d records, want %d", len(recs), h.WantDelivered)
			}
			if st.DecodeErrors != h.WantErrors {
				t.Fatalf("DecodeErrors = %d, want %d", st.DecodeErrors, h.WantErrors)
			}
			if got := reg.Snapshot().Counter(obs.MBDecodeErrors); got != h.WantErrors {
				t.Fatalf("obs %s = %d, want %d", obs.MBDecodeErrors, got, h.WantErrors)
			}
			// Accounting stays coherent even on hostile input.
			if st.RecordsDelivered != uint64(h.WantDelivered) {
				t.Fatalf("RecordsDelivered = %d, want %d", st.RecordsDelivered, h.WantDelivered)
			}
		})
	}
}

// TestHostileCorpusAcrossTopologies re-runs the corpus under 2D and 3D
// routing: misrouted dests must be rejected before NextHop sees them (an
// out-of-range dest would otherwise drive grid arithmetic off the topology).
func TestHostileCorpusAcrossTopologies(t *testing.T) {
	for _, name := range Topologies() {
		topo, err := mailbox.ByName(name, HostileCorpusRanks)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range HostileCorpus() {
			recs, st, _ := pollHostile(HostileCorpusRanks, topo, h.Payload)
			if len(recs) != h.WantDelivered || st.DecodeErrors != h.WantErrors {
				t.Fatalf("%s/%s: delivered=%d errors=%d, want %d/%d",
					name, h.Name, len(recs), st.DecodeErrors, h.WantDelivered, h.WantErrors)
			}
		}
	}
}

// TestEnvelopeFramingMatchesMailbox proves check.Envelope and the mailbox
// agree on framing: an envelope built here round-trips through Poll with the
// exact payload bytes.
func TestEnvelopeFramingMatchesMailbox(t *testing.T) {
	payloads := [][]byte{[]byte("alpha"), {}, []byte("bravo-charlie")}
	env := Envelope(
		EnvRecord{Dest: 0, Payload: payloads[0]},
		EnvRecord{Dest: 0, Payload: payloads[1]},
		EnvRecord{Dest: 0, Payload: payloads[2]},
	)
	recs, st, _ := pollHostile(2, mailbox.NewDirect(2), env)
	if len(recs) != len(payloads) {
		t.Fatalf("delivered %d records, want %d", len(recs), len(payloads))
	}
	for i, rec := range recs {
		if string(rec.Payload) != string(payloads[i]) {
			t.Fatalf("record %d = %q, want %q", i, rec.Payload, payloads[i])
		}
	}
	if st.DecodeErrors != 0 {
		t.Fatalf("well-formed envelope counted %d decode errors", st.DecodeErrors)
	}
}
