package check

import (
	"fmt"
	"testing"

	"havoqgt/internal/mailbox"
	"havoqgt/internal/rt"
)

// TestRecordConservationMidFlight asserts the full per-machine conservation
// law — Σsent == Σdelivered + Σforwarded-in-buffers — at synchronization
// points *between* flush rounds, not just after quiescence. A huge flush
// threshold parks every routed record in aggregation buffers, so each
// Poll→barrier→snapshot round sees the in-flight gap entirely inside
// Box.PendingRecords; Diameter()+1 flush rounds drain it to zero.
func TestRecordConservationMidFlight(t *testing.T) {
	for _, name := range Topologies() {
		for _, p := range []int{4, 9} {
			t.Run(fmt.Sprintf("%s/p=%d", name, p), func(t *testing.T) {
				topo, err := mailbox.ByName(name, p)
				if err != nil {
					t.Fatal(err)
				}
				rounds := topo.Diameter() + 1
				stats := make([]mailbox.Stats, p)
				pending := make([]int, p)
				perRound := make([][]Violation, rounds)
				m := rt.NewMachine(p)
				m.Run(func(r *rt.Rank) {
					box := mailbox.New(r, topo, nil, mailbox.WithFlushBytes(1<<20))
					for dest := 0; dest < p; dest++ {
						box.Send(dest, []byte(fmt.Sprintf("%d->%d", r.Rank(), dest)))
					}
					for round := 0; round < rounds; round++ {
						// All sends/ships happened-before the barrier; Poll then
						// drains everything in flight into deliveries or buffers.
						r.Barrier()
						box.Poll()
						r.Barrier()
						// Transport quiet: snapshot and check conservation.
						stats[r.Rank()] = box.Stats()
						pending[r.Rank()] = box.PendingRecords()
						r.Barrier()
						if r.Rank() == 0 {
							perRound[round] = MailboxInFlight(topo, stats, pending)
						}
						box.FlushAll()
					}
				})
				for round, vs := range perRound {
					if err := Error(vs); err != nil {
						t.Fatalf("round %d: %v", round, err)
					}
				}
				// After Diameter()+1 flush rounds everything must have landed.
				var sent, delivered, pend uint64
				for r := 0; r < p; r++ {
					sent += stats[r].RecordsSent
					delivered += stats[r].RecordsDelivered
					pend += uint64(pending[r])
				}
				if sent != uint64(p*p) {
					t.Fatalf("Σsent = %d, want %d", sent, p*p)
				}
				if pend != 0 || delivered != sent {
					t.Fatalf("after %d rounds: delivered=%d pending=%d of %d sent",
						rounds, delivered, pend, sent)
				}
			})
		}
	}
}
