package check

// Chaos-plan generation for the fault-injection harness. A chaos case is a
// differential Case (algorithm × graph × machine × topology, verified
// against internal/ref) with a seeded faults.Plan armed on the transport for
// the traversal phase. The plans are drawn from four families that together
// cover the fault model in DESIGN.md §8:
//
//   - lossy:    drop/duplicate/corrupt on the mailbox plane (each ≤ 10%),
//     plus mild delay everywhere — requires the reliable mailbox.
//   - churn:    heavy delay + reordering on EVERY plane, no loss — the base
//     stack must tolerate this without the reliable layer (visitor
//     application is order-independent and the termination waves are
//     versioned), so Reliable stays off to keep that claim honest.
//   - stall:    periodic rank stalls plus delay — models GC pauses, OS
//     scheduling jitter and stragglers.
//   - combined: lossy mailbox + churn + stalls at once.
//
// Everything is derived deterministically from (seed, index): a failing
// chaos case reproduces from the two integers printed in its name.

import (
	"fmt"
	"time"

	"havoqgt/internal/faults"
	"havoqgt/internal/rt"
	"havoqgt/internal/xrand"
)

// ChaosFamily names the shape of a generated fault plan.
type ChaosFamily int

const (
	FamilyLossy ChaosFamily = iota
	FamilyChurn
	FamilyStall
	FamilyCombined
	numFamilies
)

func (f ChaosFamily) String() string {
	switch f {
	case FamilyLossy:
		return "lossy"
	case FamilyChurn:
		return "churn"
	case FamilyStall:
		return "stall"
	case FamilyCombined:
		return "combined"
	}
	return fmt.Sprintf("family(%d)", int(f))
}

// Family returns the plan family ChaosPlan assigns to index (round-robin,
// so any contiguous index range covers all four).
func Family(index int) ChaosFamily { return ChaosFamily(index % int(numFamilies)) }

// ChaosPlan derives fault plan number index from seed. The second return is
// whether the plan's rules require the reliable mailbox: true exactly when
// the plan can lose or damage mailbox frames (drop/duplicate/corrupt), which
// the base protocol is documented NOT to survive.
func ChaosPlan(seed uint64, index int) (faults.Plan, bool) {
	rng := xrand.New(xrand.Mix64(seed ^ (uint64(index)+1)*0x9e3779b97f4a7c15))
	plan := faults.Plan{Seed: rng.Uint64()}

	// Rule builders; all probabilities are drawn per-plan so the sweep
	// covers a spread of rates, with drop capped at 10%.
	lossyMailbox := func() faults.MsgRule {
		return faults.MsgRule{
			From: faults.Wildcard, To: faults.Wildcard, Kind: int(rt.KindMailbox),
			Drop:      0.02 + 0.08*rng.Float64(),
			Duplicate: 0.05 * rng.Float64(),
			Corrupt:   0.05 * rng.Float64(),
		}
	}
	churnEverywhere := func() faults.MsgRule {
		return faults.MsgRule{
			From: faults.Wildcard, To: faults.Wildcard, Kind: faults.Wildcard,
			Delay:    0.2 + 0.4*rng.Float64(),
			DelayMin: 20 * time.Microsecond,
			DelayMax: time.Duration(100+rng.Intn(400)) * time.Microsecond,
			Reorder:  0.2 + 0.4*rng.Float64(),
		}
	}
	mildDelayEverywhere := func() faults.MsgRule {
		return faults.MsgRule{
			From: faults.Wildcard, To: faults.Wildcard, Kind: faults.Wildcard,
			Delay:    0.1 + 0.2*rng.Float64(),
			DelayMin: 10 * time.Microsecond,
			DelayMax: 200 * time.Microsecond,
		}
	}
	stalls := func() []faults.StallRule {
		rank := faults.Wildcard // every rank stutters...
		if rng.Bool(0.5) {
			rank = 0 // ...or one straggler limps
		}
		return []faults.StallRule{{
			Rank:     rank,
			After:    time.Duration(rng.Intn(3)) * time.Millisecond,
			Duration: time.Duration(200+rng.Intn(800)) * time.Microsecond,
			Period:   time.Duration(2+rng.Intn(6)) * time.Millisecond,
		}}
	}

	reliable := false
	switch Family(index) {
	case FamilyLossy:
		plan.Msgs = []faults.MsgRule{lossyMailbox(), mildDelayEverywhere()}
		reliable = true
	case FamilyChurn:
		plan.Msgs = []faults.MsgRule{churnEverywhere()}
	case FamilyStall:
		plan.Msgs = []faults.MsgRule{mildDelayEverywhere()}
		plan.Stalls = stalls()
	case FamilyCombined:
		plan.Msgs = []faults.MsgRule{lossyMailbox(), churnEverywhere()}
		plan.Stalls = stalls()
		reliable = true
	}
	return plan, reliable
}

// ChaosCaseAt builds the deterministic chaos case for (algo, topo, seed,
// index): a small random graph whose traversal exchanges enough messages for
// the plan's rates to bite, with the plan from ChaosPlan armed and the
// reliable mailbox switched on exactly when the plan requires it.
func ChaosCaseAt(algo, topo string, seed uint64, index int) Case {
	rng := xrand.New(xrand.Mix64(seed + uint64(index)*0x61c8864680b583eb))
	plan, reliable := ChaosPlan(seed, index)
	return Case{
		Algo:       algo,
		Seed:       rng.Uint64(),
		N:          32 + rng.Uint64n(32),
		EdgeFactor: 2 + rng.Intn(3),
		Ranks:      []int{3, 4, 5, 8}[rng.Intn(4)],
		Topo:       topo,
		FlushBytes: []int{1, 24, 256}[rng.Intn(3)],
		K:          1 + uint32(rng.Intn(3)),
		Fault:      &plan,
		Reliable:   reliable,
		RTOBase:    time.Millisecond,
		RTOMax:     20 * time.Millisecond,
	}
}
