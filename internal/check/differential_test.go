package check

import (
	"testing"

	"havoqgt/internal/xrand"
)

// TestDifferentialRandomized is the randomized differential harness entry
// point: seeded cases drawn over {algorithm × graph × rank count × topology
// × flush threshold}, each compared against internal/ref and run through the
// conservation invariants. Failures print the full Case string, which is
// sufficient to replay the run deterministically.
func TestDifferentialRandomized(t *testing.T) {
	cases := 48
	if testing.Short() {
		cases = 10
	}
	rng := xrand.New(0xD1FF)
	for i := 0; i < cases; i++ {
		c := RandomCase(rng)
		t.Run(c.String(), func(t *testing.T) {
			if err := c.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDifferentialReplaySeeds pins a few historically interesting shapes:
// single-rank machines (pure loopback), prime rank counts (ragged grids
// with fallback-to-direct routing), and the degenerate 1-byte threshold.
func TestDifferentialReplaySeeds(t *testing.T) {
	pinned := []Case{
		{Algo: "bfs", Seed: 1, N: 40, EdgeFactor: 2, Ranks: 1, Topo: "3d", FlushBytes: 1},
		{Algo: "sssp", Seed: 2, N: 33, EdgeFactor: 3, Ranks: 5, Topo: "2d", FlushBytes: 1},
		{Algo: "cc", Seed: 3, N: 48, EdgeFactor: 1, Ranks: 7, Topo: "3d", FlushBytes: 24},
		{Algo: "kcore", Seed: 4, N: 30, EdgeFactor: 4, Ranks: 5, Topo: "2d", FlushBytes: 1, K: 3},
		{Algo: "triangle", Seed: 5, N: 26, EdgeFactor: 3, Ranks: 3, Topo: "3d", FlushBytes: 1 << 20},
	}
	if testing.Short() {
		pinned = pinned[:3]
	}
	for _, c := range pinned {
		t.Run(c.String(), func(t *testing.T) {
			if err := c.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
