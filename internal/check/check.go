// Package check is the correctness-tooling subsystem for the message plane
// and its clients: conservation-law invariant checkers over the routed
// aggregating mailbox (§III-B), a randomized differential harness that runs
// every distributed algorithm against the sequential references in
// internal/ref across topologies, rank counts and flush thresholds, and a
// hostile-input envelope corpus driving the hardened envelope decoder.
//
// The invariants are the laws a quiesced traversal cannot legally violate:
//
//   - record conservation:  Σ sent == Σ delivered (+ Σ pending mid-flight)
//   - envelope conservation: Σ envelopes sent == Σ envelopes received
//   - hop bound:             Σ hops  ≤ diameter × Σ records sent
//   - channel bound:         per rank, ChannelsUsed ≤ Topology.MaxChannels()
//   - clean decode:          Σ decode errors == 0
//   - S/R agreement:         per rank, detector S == mailbox records sent and
//     detector R == mailbox records delivered; globally Σ S == Σ R (the gap
//     the four-counter termination waves must see drain)
//
// These checks are cheap (they read per-rank Stats snapshots) and are meant
// to run after every traversal in tests, keeping the message plane honest as
// perf work (buffer pooling, async flush) lands on top of it.
package check

import (
	"fmt"
	"strings"

	"havoqgt/internal/core"
	"havoqgt/internal/mailbox"
)

// Violation describes one failed invariant.
type Violation struct {
	Invariant string // short machine-usable name, e.g. "record-conservation"
	Detail    string // human-readable explanation with the observed numbers
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// violations builds a []Violation with printf-style details.
type violations []Violation

func (vs *violations) addf(invariant, format string, args ...any) {
	*vs = append(*vs, Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
}

// Error folds a violation list into a single error (nil when empty).
func Error(vs []Violation) error {
	if len(vs) == 0 {
		return nil
	}
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.String()
	}
	return fmt.Errorf("check: %d invariant violation(s):\n  %s", len(vs), strings.Join(parts, "\n  "))
}

// MailboxQuiesced checks the conservation laws over per-rank mailbox stats
// after a fully quiesced exchange: no records may remain in aggregation
// buffers or in flight, so sent and delivered must balance exactly.
func MailboxQuiesced(topo mailbox.Topology, stats []mailbox.Stats) []Violation {
	pending := make([]int, len(stats))
	return MailboxInFlight(topo, stats, pending)
}

// MailboxInFlight checks the conservation laws at a mid-traversal
// synchronization point: pending[r] is rank r's Box.PendingRecords() — the
// records parked in its aggregation buffers — and the transport must hold no
// undrained envelopes when the snapshot is taken (poll-then-barrier).
func MailboxInFlight(topo mailbox.Topology, stats []mailbox.Stats, pending []int) []Violation {
	var vs violations
	if len(pending) != len(stats) {
		vs.addf("arity", "pending has %d entries for %d ranks", len(pending), len(stats))
		return vs
	}
	var sent, delivered, forwarded, envSent, envRecv, hops, decodeErrs uint64
	var pend uint64
	for r, s := range stats {
		sent += s.RecordsSent
		delivered += s.RecordsDelivered
		forwarded += s.RecordsForwarded
		envSent += s.EnvelopesSent
		envRecv += s.EnvelopesRecv
		hops += s.Hops
		decodeErrs += s.DecodeErrors
		pend += uint64(pending[r])
		if topo != nil && s.ChannelsUsed > topo.MaxChannels() {
			vs.addf("channel-bound", "rank %d used %d next-hop channels, topology %s bounds it at %d",
				r, s.ChannelsUsed, topo.Name(), topo.MaxChannels())
		}
	}
	if sent != delivered+pend {
		vs.addf("record-conservation",
			"Σsent=%d != Σdelivered=%d + Σpending-in-buffers=%d (lost or duplicated records)",
			sent, delivered, pend)
	}
	if envSent != envRecv {
		vs.addf("envelope-conservation", "Σenvelopes sent=%d != Σenvelopes received=%d", envSent, envRecv)
	}
	if topo != nil {
		if d := uint64(topo.Diameter()); hops > d*sent {
			vs.addf("hop-bound", "Σhops=%d exceeds diameter(%d) × Σsent(%d) = %d on %s",
				hops, d, sent, d*sent, topo.Name())
		}
	}
	if hops < forwarded {
		vs.addf("hop-bound", "Σhops=%d < Σforwarded=%d (every forward is at least one hop)", hops, forwarded)
	}
	if decodeErrs != 0 {
		vs.addf("clean-decode", "Σdecode errors=%d on a healthy exchange (envelope corruption)", decodeErrs)
	}
	return vs
}

// MessageTraversal checks the conservation laws for traversals that drive
// the mailbox directly (direction-optimizing BFS) rather than through the
// visitor queue: the queue-level push/receive accounting does not apply, but
// record and envelope conservation and the detector's S/R agreement with the
// mailbox counters still must hold.
func MessageTraversal(topo mailbox.Topology, stats []core.Stats) []Violation {
	mb := make([]mailbox.Stats, len(stats))
	for r, s := range stats {
		mb[r] = s.Mailbox
	}
	vs := violations(MailboxQuiesced(topo, mb))
	var detS, detR uint64
	for r, s := range stats {
		detS += s.DetectorSent
		detR += s.DetectorReceived
		if s.DetectorSent != s.Mailbox.RecordsSent {
			vs.addf("detector-agreement", "rank %d: detector S=%d != mailbox records sent=%d",
				r, s.DetectorSent, s.Mailbox.RecordsSent)
		}
		if s.DetectorReceived != s.Mailbox.RecordsDelivered {
			vs.addf("detector-agreement", "rank %d: detector R=%d != mailbox records delivered=%d",
				r, s.DetectorReceived, s.Mailbox.RecordsDelivered)
		}
	}
	if detS != detR {
		vs.addf("termination-drain", "ΣS=%d != ΣR=%d after detection (the S−R gap never drained)", detS, detR)
	}
	return vs
}

// Traversal checks every conservation law over per-rank core.Stats after a
// quiesced traversal (the snapshot core.Queue.Run records at termination),
// including the termination detector's S/R agreement with the mailbox
// counters.
func Traversal(topo mailbox.Topology, stats []core.Stats) []Violation {
	mb := make([]mailbox.Stats, len(stats))
	for r, s := range stats {
		mb[r] = s.Mailbox
	}
	vs := violations(MailboxQuiesced(topo, mb))
	var detS, detR uint64
	for r, s := range stats {
		detS += s.DetectorSent
		detR += s.DetectorReceived
		if s.DetectorSent != s.Mailbox.RecordsSent {
			vs.addf("detector-agreement", "rank %d: detector S=%d != mailbox records sent=%d",
				r, s.DetectorSent, s.Mailbox.RecordsSent)
		}
		if s.DetectorReceived != s.Mailbox.RecordsDelivered {
			vs.addf("detector-agreement", "rank %d: detector R=%d != mailbox records delivered=%d",
				r, s.DetectorReceived, s.Mailbox.RecordsDelivered)
		}
		if s.Received != s.Mailbox.RecordsDelivered {
			vs.addf("queue-agreement", "rank %d: visitors received=%d != mailbox records delivered=%d",
				r, s.Received, s.Mailbox.RecordsDelivered)
		}
		// Every visitor push either gets ghost-filtered or becomes a mailbox
		// send; replica forwards send again. Anything else is a leak.
		if want := s.Pushed - s.GhostFiltered + s.Forwarded; want != s.Mailbox.RecordsSent {
			vs.addf("push-accounting",
				"rank %d: pushed(%d) − ghost-filtered(%d) + replica-forwarded(%d) = %d != mailbox records sent=%d",
				r, s.Pushed, s.GhostFiltered, s.Forwarded, want, s.Mailbox.RecordsSent)
		}
	}
	if detS != detR {
		vs.addf("termination-drain", "ΣS=%d != ΣR=%d after detection (the S−R gap never drained)", detS, detR)
	}
	return vs
}
