package check

import (
	"fmt"
	"time"

	"havoqgt/internal/algos/bfs"
	"havoqgt/internal/algos/cc"
	"havoqgt/internal/algos/kcore"
	"havoqgt/internal/algos/pagerank"
	"havoqgt/internal/algos/sssp"
	"havoqgt/internal/algos/triangle"
	"havoqgt/internal/core"
	"havoqgt/internal/faults"
	"havoqgt/internal/graph"
	"havoqgt/internal/mailbox"
	"havoqgt/internal/partition"
	"havoqgt/internal/ref"
	"havoqgt/internal/rt"
	"havoqgt/internal/xrand"
)

// Algos lists the algorithms the differential harness can exercise.
func Algos() []string {
	return []string{"bfs", "bfs_do", "sssp", "cc", "kcore", "triangle", "pagerank"}
}

// Topologies lists the routing topologies the harness sweeps.
func Topologies() []string { return []string{"1d", "2d", "3d"} }

// Case is one randomized differential run: an algorithm on a random graph,
// executed on the simulated machine under a routing topology and a flush
// threshold, compared against the sequential reference in internal/ref, with
// the conservation invariants asserted on the traversal's stats.
type Case struct {
	Algo       string // one of Algos()
	Seed       uint64 // graph shape, source vertex and edge weights
	N          uint64 // vertices
	EdgeFactor int    // ≈ directed edges per vertex before undirecting
	Ranks      int    // simulated machine size
	Topo       string // "1d", "2d", "3d"
	FlushBytes int    // mailbox aggregation threshold (1 = degenerate)
	K          uint32 // k-core parameter (kcore only)

	// Fault, when non-nil, arms a deterministic injector on the machine's
	// transport for the traversal phase only — graph construction runs
	// clean, because the fault model covers the query-time message plane,
	// not the bulk-synchronous build collectives.
	Fault *faults.Plan
	// Reliable runs the mailbox's seq/ack/retransmit protocol underneath
	// the traversal so the case survives drop/duplicate/corrupt rules on
	// the mailbox plane. Delay/reorder-only plans do not need it.
	Reliable        bool
	RTOBase, RTOMax time.Duration
}

func (c Case) String() string {
	return fmt.Sprintf("%s/seed=%d/n=%d/ef=%d/p=%d/%s/flush=%d",
		c.Algo, c.Seed, c.N, c.EdgeFactor, c.Ranks, c.Topo, c.FlushBytes)
}

// flushGrid holds the threshold sweep, including the degenerate 1-byte
// threshold (every record ships alone) and a huge one (nothing ships until
// FlushAll).
var flushGrid = []int{1, 24, 256, 4096, 1 << 20}

// RandomCase draws a case from rng. Sizes stay small so thousands of cases
// run in seconds; the coverage comes from the cross product, not the scale.
func RandomCase(rng *xrand.Rand) Case {
	algos, topos := Algos(), Topologies()
	return Case{
		Algo:       algos[rng.Intn(len(algos))],
		Seed:       rng.Uint64(),
		N:          8 + rng.Uint64n(56),
		EdgeFactor: 1 + rng.Intn(4),
		Ranks:      []int{1, 2, 3, 4, 5, 8, 9}[rng.Intn(7)],
		Topo:       topos[rng.Intn(len(topos))],
		FlushBytes: flushGrid[rng.Intn(len(flushGrid))],
		K:          1 + uint32(rng.Intn(4)),
	}
}

// Edges returns the case's deterministic random edge list. kcore requires a
// simple undirected graph; the rest — triangle counting included, which
// dedupes internally — tolerate duplicates and self-loops, which the
// partition builder keeps.
func (c Case) Edges() []graph.Edge {
	rng := xrand.New(c.Seed)
	m := int(c.N) * c.EdgeFactor
	pairs := make([]graph.Edge, m)
	for i := range pairs {
		pairs[i] = graph.Edge{
			Src: graph.Vertex(rng.Uint64n(c.N)),
			Dst: graph.Vertex(rng.Uint64n(c.N)),
		}
	}
	if c.Algo == "kcore" {
		return graph.Simplify(graph.Undirect(pairs))
	}
	return graph.Undirect(pairs)
}

// source derives the deterministic source vertex for BFS/SSSP.
func (c Case) source() graph.Vertex {
	return graph.Vertex(xrand.Mix64(c.Seed^0xA5A5) % c.N)
}

// iters derives the deterministic pagerank iteration count.
func (c Case) iters() uint32 {
	return 1 + uint32(xrand.Mix64(c.Seed^0x5151)%12)
}

// Run executes the case and returns a non-nil error describing any
// divergence from the reference implementation or any violated conservation
// invariant.
func (c Case) Run() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%s: panic: %v", c, r)
		}
	}()
	topo, err := mailbox.ByName(c.Topo, c.Ranks)
	if err != nil {
		return fmt.Errorf("%s: %w", c, err)
	}
	edges := c.Edges()
	stats := make([]core.Stats, c.Ranks)
	gathered := newGather(c.N)

	run := func(fn func(r *rt.Rank, part *partition.Part, cfg core.Config) core.Stats) {
		m := rt.NewMachine(c.Ranks)
		parts := make([]*partition.Part, c.Ranks)
		m.Run(func(r *rt.Rank) {
			var local []graph.Edge
			for i, e := range edges {
				if i%c.Ranks == r.Rank() {
					local = append(local, e)
				}
			}
			part, err := partition.BuildEdgeList(r, local, c.N)
			if err != nil {
				panic(err)
			}
			parts[r.Rank()] = part
		})
		if c.Fault != nil {
			inj := faults.New(*c.Fault, m.Obs())
			m.SetTransport(inj)
			inj.Arm()
		}
		m.Run(func(r *rt.Rank) {
			cfg := core.Config{Topology: topo, FlushBytes: c.FlushBytes,
				Reliable: c.Reliable, RTOBase: c.RTOBase, RTOMax: c.RTOMax}
			stats[r.Rank()] = fn(r, parts[r.Rank()], cfg)
		})
	}

	adj := ref.BuildAdj(edges, c.N)
	switch c.Algo {
	case "bfs", "bfs_do":
		run(func(r *rt.Rank, part *partition.Part, cfg core.Config) core.Stats {
			var res *bfs.Result
			if c.Algo == "bfs_do" {
				res = bfs.RunDO(r, part, c.source(), cfg)
			} else {
				res = bfs.Run(r, part, c.source(), cfg)
			}
			gathered.set(part, func(v graph.Vertex) uint64 {
				i, _ := part.LocalIndex(v)
				return uint64(res.Level[i])
			})
			return res.Stats
		})
		want, _ := ref.BFS(adj, c.source())
		for v := uint64(0); v < c.N; v++ {
			if uint32(gathered.values[v]) != want[v] {
				return fmt.Errorf("%s: bfs level(%d) = %d, ref says %d",
					c, v, uint32(gathered.values[v]), want[v])
			}
		}
	case "sssp":
		run(func(r *rt.Rank, part *partition.Part, cfg core.Config) core.Stats {
			res := sssp.Run(r, part, c.source(), c.Seed, cfg)
			gathered.set(part, func(v graph.Vertex) uint64 {
				i, _ := part.LocalIndex(v)
				return res.Dist[i]
			})
			return res.Stats
		})
		want, _ := ref.Dijkstra(adj, c.source(), func(u, v graph.Vertex) uint64 {
			return sssp.Weight(u, v, c.Seed)
		})
		for v := uint64(0); v < c.N; v++ {
			if gathered.values[v] != want[v] {
				return fmt.Errorf("%s: sssp dist(%d) = %d, ref says %d",
					c, v, gathered.values[v], want[v])
			}
		}
	case "cc":
		run(func(r *rt.Rank, part *partition.Part, cfg core.Config) core.Stats {
			res := cc.Run(r, part, cfg)
			gathered.set(part, func(v graph.Vertex) uint64 {
				i, _ := part.LocalIndex(v)
				return uint64(res.Label[i])
			})
			return res.Stats
		})
		want, _ := ref.Components(adj)
		for v := uint64(0); v < c.N; v++ {
			if graph.Vertex(gathered.values[v]) != want[v] {
				return fmt.Errorf("%s: cc label(%d) = %d, ref says %d",
					c, v, gathered.values[v], want[v])
			}
		}
	case "kcore":
		run(func(r *rt.Rank, part *partition.Part, cfg core.Config) core.Stats {
			res := kcore.Run(r, part, c.K, cfg)
			gathered.set(part, func(v graph.Vertex) uint64 {
				if res.InCore(v) {
					return 1
				}
				return 0
			})
			return res.Stats
		})
		want := ref.KCore(adj, c.K)
		for v := uint64(0); v < c.N; v++ {
			if (gathered.values[v] == 1) != want[v] {
				return fmt.Errorf("%s: kcore(%d) in-core=%v, ref says %v",
					c, v, gathered.values[v] == 1, want[v])
			}
		}
	case "triangle":
		counts := make([]uint64, c.Ranks)
		run(func(r *rt.Rank, part *partition.Part, cfg core.Config) core.Stats {
			res := triangle.Run(r, part, cfg)
			counts[r.Rank()] = res.GlobalCount
			return res.Stats
		})
		// The distributed counter dedupes internally, so its answer on the
		// raw multigraph must equal the reference on the simplified graph.
		want := ref.CountTriangles(ref.BuildAdj(graph.Simplify(edges), c.N))
		for rank, got := range counts {
			if got != want {
				return fmt.Errorf("%s: rank %d counted %d triangles, ref says %d", c, rank, got, want)
			}
		}
	case "pagerank":
		run(func(r *rt.Rank, part *partition.Part, cfg core.Config) core.Stats {
			res := pagerank.Run(r, part, c.iters(), cfg)
			gathered.set(part, func(v graph.Vertex) uint64 {
				i, _ := part.LocalIndex(v)
				return res.Rank[i]
			})
			return res.Stats
		})
		want := ref.PageRank(adj, int(c.iters()))
		for v := uint64(0); v < c.N; v++ {
			if gathered.values[v] != want[v] {
				return fmt.Errorf("%s: pagerank rank(%d) = %d, ref says %d",
					c, v, gathered.values[v], want[v])
			}
		}
	default:
		return fmt.Errorf("%s: unknown algorithm", c)
	}

	// The strict conservation laws describe a clean transport: an armed
	// injector legitimately perturbs the raw envelope/hop counters (dropped
	// frames are re-sent, corrupt frames are CRC-rejected), so under faults
	// the correctness bar is the reference comparison above, not the
	// transport-level ledger. Direction-optimizing BFS drives the mailbox
	// directly — no visitor queue — so it answers to the message-level laws
	// (MessageTraversal) rather than the queue push-accounting.
	if c.Fault == nil {
		check := Traversal
		if c.Algo == "bfs_do" {
			check = MessageTraversal
		}
		if err := Error(check(topo, stats)); err != nil {
			return fmt.Errorf("%s: %w", c, err)
		}
	}
	return nil
}

// gather collects one uint64 per master vertex across ranks (master ranges
// are disjoint, so concurrent set calls never collide).
type gather struct{ values []uint64 }

func newGather(n uint64) *gather { return &gather{values: make([]uint64, n)} }

func (g *gather) set(part *partition.Part, get func(v graph.Vertex) uint64) {
	lo, hi := part.Owners.MasterRange(part.Rank)
	for v := lo; v < hi; v++ {
		g.values[v] = get(graph.Vertex(v))
	}
}
