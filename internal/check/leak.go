package check

// Goroutine-leak checking for the runtime-heavy test suites. Every machine
// run spawns one goroutine per rank plus transport/engine workers; a fault or
// cancellation path that forgets to join one of them is invisible to a
// passing test but fatal to a long-lived server. NoLeaks turns that into a
// test failure with the culprit's stack.

import (
	"runtime"
	"strings"
	"time"
)

// TB is the subset of *testing.T that NoLeaks needs; taking the interface
// keeps this file importable from external test packages without dragging
// testing into the library build.
type TB interface {
	Helper()
	Cleanup(func())
	Errorf(format string, args ...any)
}

// leakGrace bounds how long NoLeaks waits for goroutine counts to settle
// after a test: closed servers and engines tear their workers down
// asynchronously, so the check polls rather than snapshots.
const leakGrace = 10 * time.Second

// NoLeaks snapshots the goroutine count and registers a cleanup that fails
// the test if the count has not returned to the baseline within leakGrace.
// Call it FIRST in a test or harness, before any cleanup that tears down
// engines or servers: cleanups run LIFO, so the leak check then runs last,
// after everything the test started has been asked to stop.
//
// The check is count-based with a settling window, so it tolerates unrelated
// background goroutines dying slowly but catches the real failure mode:
// workers that will never exit (blocked sends, lost cancellations, undrained
// mailboxes).
func NoLeaks(t TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(leakGrace)
		for {
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d goroutines alive %v after test end, %d at test start; suspect stacks:\n%s",
			runtime.NumGoroutine(), leakGrace, before, suspectStacks())
	})
}

// suspectStacks dumps all goroutine stacks, dropping the testing framework's
// own goroutines and the dumper itself so the report points at the leak.
func suspectStacks() string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	var keep []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if strings.Contains(g, "testing.") ||
			strings.Contains(g, "check.suspectStacks") {
			continue
		}
		keep = append(keep, g)
	}
	if len(keep) == 0 {
		return "(none beyond the testing framework; a background goroutine from an earlier test may still be settling)"
	}
	return strings.Join(keep, "\n\n")
}
