package check_test

// Chaos harness (`make chaos`): seeded fault plans × every algorithm × every
// routing topology, each run on the simulated machine with a deterministic
// fault injector armed on the transport. A case must produce the exact
// sequential-reference answer or fail with a typed error — never hang
// (per-case watchdog), never panic (Case.Run recovers panics into errors),
// never silently diverge (per-vertex reference comparison). External test
// package because the engine half imports internal/engine, which itself
// imports check.

import (
	"context"
	"errors"
	"testing"
	"time"

	"havoqgt/internal/check"
	"havoqgt/internal/core"
	"havoqgt/internal/engine"
	"havoqgt/internal/faults"
	"havoqgt/internal/generators"
	"havoqgt/internal/graph"
	"havoqgt/internal/obs"
	"havoqgt/internal/partition"
	"havoqgt/internal/ref"
	"havoqgt/internal/rt"
)

// chaosWatchdog bounds one chaos case. A case that misses it has hung —
// deadlock or lost termination — which is precisely the failure class this
// harness exists to catch; the watchdog converts it into a test failure
// instead of a stuck suite.
const chaosWatchdog = 90 * time.Second

func runWithWatchdog(t *testing.T, c check.Case) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- c.Run() }()
	select {
	case err := <-done:
		return err
	case <-time.After(chaosWatchdog):
		t.Fatalf("chaos watchdog: %s still running after %v (deadlock or lost termination)",
			c, chaosWatchdog)
		return nil
	}
}

// TestChaosSweep is the main matrix: 20 seeded fault plans (8 under -short;
// both cover all four plan families) × 5 algorithms × 3 topologies. The
// classic traversal path has no deadline escape hatch, so under these plans
// — loss only ever paired with the reliable mailbox — every single case must
// complete AND match the reference. The ≥95%-correct-at-drop≤10% acceptance
// bar is tallied explicitly over the lossy families.
func TestChaosSweep(t *testing.T) {
	check.NoLeaks(t) // zero leaked goroutines across the whole sweep
	const seed = 0xC4A05EED
	plans := 20
	if testing.Short() {
		plans = 8
	}
	runs, lossyRuns, lossyCorrect := 0, 0, 0
	for idx := 0; idx < plans; idx++ {
		fam := check.Family(idx)
		lossy := fam == check.FamilyLossy || fam == check.FamilyCombined
		for _, topo := range check.Topologies() {
			for _, algo := range check.Algos() {
				c := check.ChaosCaseAt(algo, topo, seed, idx)
				err := runWithWatchdog(t, c)
				runs++
				if lossy {
					lossyRuns++
					if err == nil {
						lossyCorrect++
					}
				}
				if err != nil {
					t.Errorf("plan %d (%s): %v", idx, fam, err)
				}
			}
		}
	}
	if lossyRuns > 0 && float64(lossyCorrect) < 0.95*float64(lossyRuns) {
		t.Errorf("lossy plans (drop ≤ 10%%): %d/%d correct completions, need ≥ 95%%",
			lossyCorrect, lossyRuns)
	}
	t.Logf("chaos sweep: %d runs over %d plans; lossy %d/%d correct", runs, plans, lossyCorrect, lossyRuns)
}

// buildChaosEngine builds a partitioned RMAT graph on a fresh machine, arms
// the fault plan on its transport (build phase runs clean), and starts a
// multi-query engine over it.
func buildChaosEngine(t *testing.T, scale uint, p int, topo string,
	opts engine.Options, idx int) (*engine.Engine, []graph.Edge, uint64) {
	t.Helper()
	check.NoLeaks(t)
	plan, reliable := check.ChaosPlan(0xE4617E, idx)
	if !reliable {
		t.Fatalf("plan %d (%s) does not require the reliable mailbox; pick a lossy index", idx, check.Family(idx))
	}
	gen := generators.NewGraph500(scale, 42)
	n := gen.NumVertices()
	var edges []graph.Edge
	for r := 0; r < p; r++ {
		edges = append(edges, graph.Undirect(gen.GenerateChunk(r, p))...)
	}
	m := rt.NewMachine(p)
	parts := make([]*partition.Part, p)
	ghosts := make([]*core.GhostTable, p)
	m.Run(func(r *rt.Rank) {
		local := graph.Undirect(gen.GenerateChunk(r.Rank(), r.Size()))
		part, err := partition.BuildEdgeList(r, local, n)
		if err != nil {
			panic(err)
		}
		parts[r.Rank()] = part
		ghosts[r.Rank()] = core.BuildGhostTable(part, core.DefaultGhostsPerPartition)
	})
	inj := faults.New(plan, m.Obs())
	m.SetTransport(inj)
	inj.Arm()
	e, err := engine.Start(engine.Config{Machine: m, Parts: parts, Ghosts: ghosts, Topology: topo}, opts)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	return e, edges, n
}

// TestChaosEngineRecovery runs the multi-query engine's full recovery ladder
// under lossy chaos plans: a BFS whose first deadline is too tight must climb
// the checkpoint-resume ladder to the exact answer (typed timeout errors in
// between, never a wrong result), an undeadlined CC must simply absorb every
// fault through the reliable mailbox, and both the injected faults and the
// retransmissions they forced must be visible in the obs registry.
func TestChaosEngineRecovery(t *testing.T) {
	indices := []int{0, 4} // FamilyLossy slots in the round-robin
	if testing.Short() {
		indices = indices[:1]
	}
	for _, idx := range indices {
		// FlushBytes 32 keeps envelopes tiny, so the traversal emits many
		// frames and even a 2% drop rule is guaranteed to bite.
		e, edges, n := buildChaosEngine(t, 9, 4, "2d",
			engine.Options{MaxInFlight: 4, FlushBytes: 32, Reliable: true,
				RTOBase: time.Millisecond, RTOMax: 20 * time.Millisecond}, idx)
		adj := ref.BuildAdj(edges, n)
		const src = 3
		wantLv, _ := ref.BFS(adj, src)
		wantLabels, wantCount := ref.Components(adj)

		// Deadline ladder: 2ms is tight for a faulty scale-8 plane, so some
		// attempts expire; each expiry must surface context.DeadlineExceeded
		// and resume from its checkpoint with a doubled budget.
		spec := engine.Spec{Algo: engine.AlgoBFS, Source: src, Deadline: 2 * time.Millisecond}
		timeouts := 0
		for {
			tk, err := e.Submit(spec)
			if err != nil {
				t.Fatalf("plan %d: Submit: %v", idx, err)
			}
			res := tk.Wait()
			if werr := tk.Err(); werr != nil {
				if !errors.Is(werr, context.DeadlineExceeded) {
					t.Fatalf("plan %d: attempt error %v, want DeadlineExceeded", idx, werr)
				}
				if timeouts++; timeouts > 24 {
					t.Fatalf("plan %d: deadline ladder did not converge in 24 attempts", idx)
				}
				if cp := tk.Checkpoint(); cp != nil {
					spec = cp.ResumeSpec(spec.Deadline * 2)
				} else {
					spec.Deadline *= 2
				}
				continue
			}
			for v := uint64(0); v < n; v++ {
				if res.Levels[v] != wantLv[v] {
					t.Fatalf("plan %d: bfs level(%d) = %d, ref says %d", idx, v, res.Levels[v], wantLv[v])
				}
			}
			break
		}

		// No deadline: the reliable mailbox alone must carry CC to the exact
		// fixpoint through drops, duplicates and corruption.
		tk, err := e.Submit(engine.Spec{Algo: engine.AlgoCC})
		if err != nil {
			t.Fatalf("plan %d: Submit cc: %v", idx, err)
		}
		res := tk.Wait()
		if werr := tk.Err(); werr != nil {
			t.Fatalf("plan %d: cc failed under reliable mailbox: %v", idx, werr)
		}
		if res.Components != wantCount {
			t.Fatalf("plan %d: cc count %d, ref says %d", idx, res.Components, wantCount)
		}
		for v := uint64(0); v < n; v++ {
			if res.Labels[v] != wantLabels[v] {
				t.Fatalf("plan %d: cc label(%d) = %d, ref says %d", idx, v, res.Labels[v], wantLabels[v])
			}
		}

		// The newer query types must likewise absorb every fault through the
		// reliable mailbox: direction-optimizing BFS bit-identical to the
		// top-down reference levels, pagerank bit-identical to the sequential
		// fixed-point reference, triangles exact on the raw multigraph.
		tkDO, err := e.Submit(engine.Spec{Algo: engine.AlgoBFSDO, Source: src})
		if err != nil {
			t.Fatalf("plan %d: Submit bfs_do: %v", idx, err)
		}
		resDO := tkDO.Wait()
		if werr := tkDO.Err(); werr != nil {
			t.Fatalf("plan %d: bfs_do failed under reliable mailbox: %v", idx, werr)
		}
		for v := uint64(0); v < n; v++ {
			if resDO.Levels[v] != wantLv[v] {
				t.Fatalf("plan %d: bfs_do level(%d) = %d, ref says %d", idx, v, resDO.Levels[v], wantLv[v])
			}
		}
		tkPR, err := e.Submit(engine.Spec{Algo: engine.AlgoPageRank, Iters: 6})
		if err != nil {
			t.Fatalf("plan %d: Submit pagerank: %v", idx, err)
		}
		resPR := tkPR.Wait()
		if werr := tkPR.Err(); werr != nil {
			t.Fatalf("plan %d: pagerank failed under reliable mailbox: %v", idx, werr)
		}
		wantPR := ref.PageRank(adj, 6)
		for v := uint64(0); v < n; v++ {
			if resPR.Ranks[v] != wantPR[v] {
				t.Fatalf("plan %d: pagerank rank(%d) = %d, ref says %d", idx, v, resPR.Ranks[v], wantPR[v])
			}
		}
		tkTri, err := e.Submit(engine.Spec{Algo: engine.AlgoTriangles})
		if err != nil {
			t.Fatalf("plan %d: Submit triangles: %v", idx, err)
		}
		resTri := tkTri.Wait()
		if werr := tkTri.Err(); werr != nil {
			t.Fatalf("plan %d: triangles failed under reliable mailbox: %v", idx, werr)
		}
		if wantTri := ref.CountTriangles(ref.BuildAdj(graph.Simplify(edges), n)); resTri.Triangles != wantTri {
			t.Fatalf("plan %d: triangles %d, ref says %d", idx, resTri.Triangles, wantTri)
		}

		reg := e.Obs()
		if reg.Counter(obs.FaultInjected("drop")).Value() == 0 {
			t.Errorf("plan %d: lossy plan injected no drops; adversary inert", idx)
		}
		if reg.PerRank(obs.MBRetransmits, 1).Total() == 0 {
			t.Errorf("plan %d: drops injected but no retransmissions recorded", idx)
		}
		t.Logf("plan %d: bfs converged after %d timeouts; drops=%d retransmits=%d", idx, timeouts,
			reg.Counter(obs.FaultInjected("drop")).Value(), reg.PerRank(obs.MBRetransmits, 1).Total())
		if err := e.Close(); err != nil {
			t.Fatalf("plan %d: Close: %v", idx, err)
		}
	}
}
