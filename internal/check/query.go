package check

// Per-query conservation invariants for the multi-query engine: the laws of
// MailboxQuiesced/Traversal restated per record tag (query ID). Every tagged
// record must be conserved within its own query — one query leaking a record
// into another's accounting would desynchronize that query's four-counter
// termination detector — and each query's detector S/R must agree with the
// mailbox's per-tag flow counts on every rank. The same laws hold for a
// query cancelled mid-flight: cancellation only stops visitors from being
// applied, the records themselves still drain and are still counted.

// QueryFlow is one rank's flow account for a single query ID: the mailbox's
// end-to-end record counts under the query's tag, and the query's
// termination-detector counters at quiescence.
type QueryFlow struct {
	Sent        uint64 // records entered under the tag on this rank
	Delivered   uint64 // records delivered under the tag on this rank
	DetSent     uint64 // per-query detector S at quiescence
	DetReceived uint64 // per-query detector R at quiescence
}

// QueryConservation checks one quiesced query's conservation laws from its
// per-rank flow accounts: globally Σsent == Σdelivered (no stranded or
// leaked records anywhere in the shared message plane, including after a
// mid-flight cancellation), and on every rank the detector's monotone S/R
// must equal the mailbox's per-tag counts (the agreement that makes the
// four-counter waves sound per query).
func QueryConservation(id uint32, perRank []QueryFlow) []Violation {
	var vs violations
	var sent, delivered, detS, detR uint64
	for r, f := range perRank {
		sent += f.Sent
		delivered += f.Delivered
		detS += f.DetSent
		detR += f.DetReceived
		if f.DetSent != f.Sent {
			vs.addf("query-detector-agreement", "query %d rank %d: detector S=%d != tagged records sent=%d",
				id, r, f.DetSent, f.Sent)
		}
		if f.DetReceived != f.Delivered {
			vs.addf("query-detector-agreement", "query %d rank %d: detector R=%d != tagged records delivered=%d",
				id, r, f.DetReceived, f.Delivered)
		}
	}
	if sent != delivered {
		vs.addf("query-record-conservation",
			"query %d: Σsent=%d != Σdelivered=%d at quiescence (stranded or leaked tagged records)",
			id, sent, delivered)
	}
	if detS != detR {
		vs.addf("query-termination-drain",
			"query %d: ΣS=%d != ΣR=%d after detection (the per-query S−R gap never drained)", id, detS, detR)
	}
	return vs
}

// QueryConservationMidFlight checks a query's conservation law at a
// mid-flight synchronization point: pending[r] is rank r's count of records
// parked in aggregation buffers under this query's tag
// (mailbox.Box.PendingByTag), and the transport must hold no undrained
// envelopes when the snapshot is taken.
func QueryConservationMidFlight(id uint32, perRank []QueryFlow, pending []int) []Violation {
	var vs violations
	if len(pending) != len(perRank) {
		vs.addf("arity", "query %d: pending has %d entries for %d ranks", id, len(pending), len(perRank))
		return vs
	}
	var sent, delivered, pend uint64
	for r, f := range perRank {
		sent += f.Sent
		delivered += f.Delivered
		pend += uint64(pending[r])
	}
	if sent != delivered+pend {
		vs.addf("query-record-conservation",
			"query %d: Σsent=%d != Σdelivered=%d + Σpending-in-buffers=%d mid-flight",
			id, sent, delivered, pend)
	}
	return vs
}
