package check

import "encoding/binary"

// envelope framing constants, mirroring internal/mailbox: each record is
// [finalDest u32][tag u32][payloadLen u32][payload]. Kept in sync by
// TestEnvelopeFramingMatchesMailbox.
const recordHeader = 12

// EnvRecord is one record to frame into a synthetic envelope.
type EnvRecord struct {
	Dest    int
	Tag     uint32 // record namespace (query ID); 0 on the classic path
	Payload []byte
}

// Envelope frames records exactly as mailbox aggregation buffers do, for
// injecting synthetic (well-formed) envelopes into a Box under test.
func Envelope(records ...EnvRecord) []byte {
	var buf []byte
	for _, rec := range records {
		var hdr [recordHeader]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(rec.Dest))
		binary.LittleEndian.PutUint32(hdr[4:], rec.Tag)
		binary.LittleEndian.PutUint32(hdr[8:], uint32(len(rec.Payload)))
		buf = append(buf, hdr[:]...)
		buf = append(buf, rec.Payload...)
	}
	return buf
}

// HostileEnvelope is one adversarial envelope for the decoder, with the
// outcome the hardened decoder must produce.
type HostileEnvelope struct {
	Name    string
	Payload []byte
	// WantDelivered is the number of well-formed records addressed to rank 0
	// of a size-p machine that must still come out of Poll.
	WantDelivered int
	// WantErrors is the number of decode errors the envelope must count.
	WantErrors uint64
}

// HostileCorpusRanks is the machine size the corpus expectations assume.
const HostileCorpusRanks = 3

// HostileCorpus returns the adversarial envelope set: truncated headers,
// oversized record lengths, zero-length records, misrouted destinations, and
// combinations burying valid records around the damage. Every entry must be
// decoded by Box.Poll on rank 0 of a HostileCorpusRanks-rank machine without
// panicking, with exactly the listed deliveries and decode errors.
func HostileCorpus() []HostileEnvelope {
	valid := EnvRecord{Dest: 0, Payload: []byte("ok")}
	oversized := func() []byte {
		var hdr [recordHeader]byte
		binary.LittleEndian.PutUint32(hdr[0:], 0)
		binary.LittleEndian.PutUint32(hdr[8:], 0xFFFF) // claims 65535 payload bytes
		return append(hdr[:], 'x', 'y')                // ...but carries 2
	}
	return []HostileEnvelope{
		{Name: "empty", Payload: []byte{}, WantDelivered: 0, WantErrors: 0},
		{Name: "truncated-header", Payload: []byte{0, 0, 0}, WantDelivered: 0, WantErrors: 1},
		{Name: "oversized-length", Payload: oversized(), WantDelivered: 0, WantErrors: 1},
		{Name: "oversized-length-max", Payload: func() []byte {
			var hdr [recordHeader]byte
			binary.LittleEndian.PutUint32(hdr[8:], ^uint32(0)) // length 2^32−1
			return hdr[:]
		}(), WantDelivered: 0, WantErrors: 1},
		{Name: "zero-length-record", Payload: Envelope(EnvRecord{Dest: 0}), WantDelivered: 1, WantErrors: 0},
		{Name: "misrouted-dest", Payload: Envelope(EnvRecord{Dest: HostileCorpusRanks + 7, Payload: []byte("lost")}),
			WantDelivered: 0, WantErrors: 1},
		{Name: "misrouted-dest-huge", Payload: func() []byte {
			var hdr [recordHeader]byte
			binary.LittleEndian.PutUint32(hdr[0:], ^uint32(0)) // dest 2^32−1
			binary.LittleEndian.PutUint32(hdr[8:], 0)          // zero-length payload
			return hdr[:]
		}(), WantDelivered: 0, WantErrors: 1},
		{Name: "valid-then-truncated", Payload: append(Envelope(valid), 1, 2, 3),
			WantDelivered: 1, WantErrors: 1},
		{Name: "valid-then-oversized", Payload: append(Envelope(valid), oversized()...),
			WantDelivered: 1, WantErrors: 1},
		{Name: "misrouted-between-valid", Payload: Envelope(
			valid,
			EnvRecord{Dest: 99, Payload: []byte("bad")},
			EnvRecord{Dest: 0, Payload: []byte("ok2")},
		), WantDelivered: 2, WantErrors: 1},
	}
}
