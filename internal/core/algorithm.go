// Package core implements the paper's primary contribution: the distributed
// asynchronous visitor queue (§IV–§V, Algorithm 1). Traversal algorithms are
// expressed as visitors — vertex-centric procedures with the ability to pass
// visitor state to other vertices — and the queue provides parallelism,
// asynchronous transmission through the routed mailbox, scheduling via a
// local priority queue, replica forwarding for split adjacency lists, ghost
// filtering for high in-degree hubs, and termination detection.
package core

import "havoqgt/internal/graph"

// Visitor is the stored state representing a vertex to be visited (Table I).
// Concrete visitor types are small value structs defined by each algorithm.
type Visitor interface {
	// Vertex returns the vertex this visitor targets.
	Vertex() graph.Vertex
}

// Algorithm supplies the visitor procedures of Table I for visitor type V,
// plus the wire codec the mailbox needs. One Algorithm value exists per rank
// per traversal and owns that rank's algorithm state arrays (e.g. BFS
// levels); PreVisit and Visit therefore run with exclusive access to the
// vertex's local (master or replica) state.
type Algorithm[V Visitor] interface {
	// PreVisit performs a preliminary evaluation of the state and returns
	// true if the visit should proceed. Called on every rank that holds
	// state for the vertex (master first, then replicas down the chain).
	PreVisit(v V) bool

	// Visit is the main visitor procedure. It may push new visitors into
	// the queue. It sees only the local portion of the vertex's adjacency
	// list; replicas of a split vertex each visit their own portion.
	Visit(v V, q *Queue[V])

	// Less orders visitors in the local min-heap priority queue. Algorithms
	// with no ordering requirement return false.
	Less(a, b V) bool

	// Encode appends v's wire form to buf and returns it.
	Encode(v V, buf []byte) []byte
	// Decode parses one visitor from buf (which holds exactly one record).
	// Decode must NOT retain buf: the mailbox hands out arena sub-slices
	// that are reclaimed at its next Poll (mailbox.Record), so the visitor
	// must be reconstructed into value-typed fields (all in-tree algorithms
	// decode into plain structs).
	Decode(buf []byte) V
}

// BucketAlgorithm is implemented by algorithms whose visitor ordering is a
// coarse monotone priority — delta-stepping SSSP being the canonical case.
// When an algorithm implements it, the queue replaces the binary-heap local
// scheduler with a calendar of FIFO buckets drained in bucket order: push and
// pop become O(1) amortized (the residual heap orders bucket indices, of
// which there are ~MaxPriority/Δ, not visitors), and visitors within one
// bucket execute in arrival order, preserving page-level locality of the
// mailbox's aggregated batches. Correctness only needs Bucket to be
// consistent with Less (a Less b ⇒ Bucket(a) <= Bucket(b)): label-correcting
// kernels converge to the same fixpoint under any drain order, bucket order
// merely keeps the work near-optimal.
type BucketAlgorithm[V Visitor] interface {
	Algorithm[V]
	// Bucket returns the visitor's scheduling bucket (e.g. ⌊Dist/Δ⌋).
	Bucket(v V) uint64
}

// GhostAlgorithm is implemented by algorithms that explicitly declare ghost
// usage (§IV-B). Ghosts are an imprecise local filter: the ghost copy of a
// hub's state is never globally synchronized, so only algorithms tolerant of
// stale state (e.g. BFS) can opt in; algorithms needing precise event counts
// (k-core, triangle counting) must not.
type GhostAlgorithm[V Visitor] interface {
	Algorithm[V]
	// PreVisitGhost applies the visitor to the local ghost copy identified
	// by ghostIdx (an index into the rank's ghost table, usable for a
	// parallel ghost-state array). It returns true if the visitor should
	// still be transmitted to the vertex's master partition.
	PreVisitGhost(v V, ghostIdx int) bool
}
