package core

// RowPager is the visitor queue's window onto an out-of-core partition
// store (internal/ooc implements it; core deliberately does not import ooc).
// When a queue has a pager, a popped visitor whose adjacency page is not
// resident is *parked* on that page instead of executed — the paper's
// latency-hiding move: traversal keeps running on resident vertices while
// the device fetch proceeds underneath (§VIII-A).
//
// All methods are called only from the rank's single engine goroutine, so
// implementations need internal synchronization only against their own fetch
// workers, not against concurrent queue calls.
type RowPager interface {
	// RowResident reports whether every page of row's adjacency span is
	// resident. When it is not, RowResident enqueues asynchronous demand
	// fetches for all absent pages and returns the page key the caller should
	// park on (the span's last absent page); the key will later appear in a
	// Drain result when its fetch completes. Rows whose spans are impractical
	// to fault in asynchronously (wider than the cache) are reported resident
	// — the serving read path then faults synchronously, which always
	// terminates.
	RowResident(row int) (key int64, resident bool)

	// PrefetchRow hints that row's adjacency will be visited soon (it just
	// entered a local heap — frontier composition). Best-effort: the pager
	// may drop hints under load; correctness never depends on them.
	PrefetchRow(row int)

	// Drain returns the page keys whose fetches completed since the last
	// Drain (successfully or not — a failed page is also "ready": parked
	// visitors must retry and surface the device error on the synchronous
	// path rather than wait forever). Drained pages stay pinned against
	// eviction until released.
	Drain() []int64

	// Release drops the eviction pins on a Drain batch. The caller invokes it
	// after Unpark has run the batch's parked visitors; between Drain and
	// Release the pages are guaranteed resident, so unparked visitors execute
	// against the fetched data instead of racing the fetch pipeline's
	// evictions (the race otherwise degenerates into park/fetch/evict
	// livelock under tight budgets). Releasing failed or unknown keys is a
	// no-op.
	Release(pages []int64)
}
