package core

import (
	"sort"
	"testing"
	"testing/quick"

	"havoqgt/internal/graph"
)

// heapHarness exposes the queue's heap for property testing without a
// traversal.
func newHeapHarness(locality bool) *Queue[orderVisitor] {
	return &Queue[orderVisitor]{algo: &orderAlgo{}, localityOrder: locality}
}

// TestQuickHeapPopsSorted: for any push sequence, pops come out
// non-decreasing under the algorithm's Less, and with the locality
// tie-break, equal priorities come out in vertex order.
func TestQuickHeapPopsSorted(t *testing.T) {
	f := func(raw []uint16) bool {
		q := newHeapHarness(true)
		for i := 0; i+1 < len(raw); i += 2 {
			q.heapPush(orderVisitor{v: graph.Vertex(raw[i] % 64), prio: uint32(raw[i+1] % 8)})
		}
		var out []orderVisitor
		for len(q.heap) > 0 {
			out = append(out, q.heapPop())
		}
		for i := 1; i < len(out); i++ {
			a, b := out[i-1], out[i]
			if a.prio > b.prio {
				return false
			}
			if a.prio == b.prio && a.v > b.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHeapIsPermutation: pops return exactly the pushed multiset.
func TestQuickHeapIsPermutation(t *testing.T) {
	f := func(raw []uint16) bool {
		q := newHeapHarness(false)
		var in []orderVisitor
		for i := 0; i+1 < len(raw); i += 2 {
			v := orderVisitor{v: graph.Vertex(raw[i]), prio: uint32(raw[i+1])}
			in = append(in, v)
			q.heapPush(v)
		}
		var out []orderVisitor
		for len(q.heap) > 0 {
			out = append(out, q.heapPop())
		}
		if len(in) != len(out) {
			return false
		}
		key := func(o orderVisitor) uint64 { return uint64(o.prio)<<32 | uint64(o.v) }
		sort.Slice(in, func(i, j int) bool { return key(in[i]) < key(in[j]) })
		sort.Slice(out, func(i, j int) bool { return key(out[i]) < key(out[j]) })
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
