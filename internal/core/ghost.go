package core

import (
	"slices"

	"havoqgt/internal/graph"
	"havoqgt/internal/partition"
)

// DefaultGhostsPerPartition is the ghost-table size used throughout the
// paper's BFS experiments ("All other BFS experiments in this work use 256
// ghost vertices per partition", §VII-E2).
const DefaultGhostsPerPartition = 256

// GhostTable maps a small set of high in-degree remote hub vertices to dense
// indices. Each partition identifies its ghosts locally, from its own edges'
// targets — ghost information represents only the local partition's view of
// remote hubs and is never globally synchronized (§IV-B).
type GhostTable struct {
	idx      map[graph.Vertex]int
	vertices []graph.Vertex
}

// BuildGhostTable scans the rank's local edge targets and selects up to k
// remote vertices with the highest local in-edge count. Only vertices that
// appear at least twice locally are candidates: a ghost can only filter when
// the partition has multiple edges to the hub (the paper's degree(v) > p
// observation).
func BuildGhostTable(part *partition.Part, k int) *GhostTable {
	t := &GhostTable{idx: make(map[graph.Vertex]int)}
	if k <= 0 {
		return t
	}
	counts := make(map[graph.Vertex]uint32)
	m := part.CSR
	for row := 0; row < m.NumRows(); row++ {
		for _, tgt := range m.Row(row) {
			if part.Master(tgt) != part.Rank {
				counts[tgt]++
			}
		}
	}
	type cand struct {
		v graph.Vertex
		c uint32
	}
	cands := make([]cand, 0, len(counts))
	for v, c := range counts {
		if c >= 2 {
			cands = append(cands, cand{v, c})
		}
	}
	slices.SortFunc(cands, func(a, b cand) int {
		switch {
		case a.c > b.c:
			return -1
		case a.c < b.c:
			return 1
		case a.v < b.v:
			return -1
		case a.v > b.v:
			return 1
		default:
			return 0
		}
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	for i, c := range cands {
		t.idx[c.v] = i
		t.vertices = append(t.vertices, c.v)
	}
	return t
}

// Lookup returns the ghost index of v, if v is ghosted on this rank.
func (t *GhostTable) Lookup(v graph.Vertex) (int, bool) {
	i, ok := t.idx[v]
	return i, ok
}

// Len returns the number of ghosts in the table.
func (t *GhostTable) Len() int { return len(t.vertices) }

// Vertices returns the ghosted vertices in index order.
func (t *GhostTable) Vertices() []graph.Vertex { return t.vertices }
