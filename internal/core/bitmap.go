package core

import "math/bits"

// Bitmap is a dense bit-per-vertex set used by the direction-optimizing BFS
// frontier (DESIGN.md §14): bottom-up phases test "is any neighbor in the
// frontier" against a replicated bitmap instead of materializing per-vertex
// visitor records, and level deltas travel between ranks as sparse word
// lists (index, word) rather than per-vertex messages.
type Bitmap struct{ words []uint64 }

// NewBitmap returns an all-zero bitmap holding n bits.
func NewBitmap(n uint64) Bitmap { return Bitmap{words: make([]uint64, (n+63)/64)} }

// Set sets bit i.
func (b Bitmap) Set(i uint64) { b.words[i>>6] |= 1 << (i & 63) }

// Get reports bit i.
func (b Bitmap) Get(i uint64) bool { return b.words[i>>6]&(1<<(i&63)) != 0 }

// Clear zeroes every bit, keeping the backing array.
func (b Bitmap) Clear() { clear(b.words) }

// Words exposes the backing words (little-endian bit order within a word)
// for sparse serialization and bulk merges.
func (b Bitmap) Words() []uint64 { return b.words }

// OrWord merges one word at index w (bulk OR of a received level delta).
func (b Bitmap) OrWord(w uint32, v uint64) { b.words[w] |= v }

// Count returns the number of set bits.
func (b Bitmap) Count() uint64 {
	var n uint64
	for _, w := range b.words {
		n += uint64(bits.OnesCount64(w))
	}
	return n
}

// CopyFrom overwrites b with src (same length).
func (b Bitmap) CopyFrom(src Bitmap) { copy(b.words, src.words) }
