package core

import (
	"encoding/binary"
	"testing"

	"havoqgt/internal/graph"
	"havoqgt/internal/partition"
	"havoqgt/internal/rt"
)

// buildPart builds a single-rank edge-list partition for unit tests.
func buildPart(t *testing.T, edges []graph.Edge, n uint64) *partition.Part {
	t.Helper()
	var part *partition.Part
	rt.NewMachine(1).Run(func(r *rt.Rank) {
		var err error
		part, err = partition.BuildEdgeList(r, edges, n)
		if err != nil {
			panic(err)
		}
	})
	return part
}

// buildParts builds a p-rank edge-list partition.
func buildParts(t *testing.T, edges []graph.Edge, n uint64, p int) []*partition.Part {
	t.Helper()
	parts := make([]*partition.Part, p)
	rt.NewMachine(p).Run(func(r *rt.Rank) {
		var local []graph.Edge
		for i, e := range edges {
			if i%p == r.Rank() {
				local = append(local, e)
			}
		}
		part, err := partition.BuildEdgeList(r, local, n)
		if err != nil {
			panic(err)
		}
		parts[r.Rank()] = part
	})
	return parts
}

func TestGhostTableSelectsHighInDegreeRemotes(t *testing.T) {
	// Rank 0 holds sources 0..k with many edges to a remote hub vertex.
	var edges []graph.Edge
	n := uint64(64)
	hub := graph.Vertex(60)
	for v := uint64(0); v < 16; v++ {
		edges = append(edges, graph.Edge{Src: graph.Vertex(v), Dst: hub})
		edges = append(edges, graph.Edge{Src: graph.Vertex(v), Dst: graph.Vertex(v + 16)})
	}
	// Give the hub some out-edges so it exists as a source elsewhere.
	edges = append(edges, graph.Edge{Src: hub, Dst: 0})
	parts := buildParts(t, edges, n, 2)
	gt := BuildGhostTable(parts[0], 8)
	if _, ok := gt.Lookup(hub); !ok {
		t.Fatalf("hub %d not ghosted; table = %v", hub, gt.Vertices())
	}
	if gt.Len() > 8 {
		t.Fatalf("table exceeded k: %d", gt.Len())
	}
}

func TestGhostTableExcludesLocalAndRareTargets(t *testing.T) {
	var edges []graph.Edge
	n := uint64(32)
	// Local target (same rank, p=1): never ghosted.
	for v := uint64(0); v < 8; v++ {
		edges = append(edges, graph.Edge{Src: graph.Vertex(v), Dst: 9})
	}
	part := buildPart(t, edges, n)
	gt := BuildGhostTable(part, 8)
	if gt.Len() != 0 {
		t.Fatalf("single-rank build ghosted local vertices: %v", gt.Vertices())
	}
}

func TestGhostTableRequiresMultiplicity(t *testing.T) {
	// Remote targets seen only once cannot filter anything and must not be
	// selected.
	edges := []graph.Edge{
		{Src: 0, Dst: 30}, {Src: 0, Dst: 31},
		{Src: 1, Dst: 30},
		{Src: 16, Dst: 0}, {Src: 17, Dst: 0},
	}
	parts := buildParts(t, edges, 32, 2)
	gt := BuildGhostTable(parts[0], 8)
	for _, v := range gt.Vertices() {
		if v == 31 {
			t.Fatal("target seen once was ghosted")
		}
	}
}

func TestGhostTableZeroK(t *testing.T) {
	part := buildPart(t, []graph.Edge{{Src: 0, Dst: 1}}, 4)
	if gt := BuildGhostTable(part, 0); gt.Len() != 0 {
		t.Fatal("k=0 produced ghosts")
	}
}

// orderVisitor is a minimal visitor for heap tests.
type orderVisitor struct {
	v    graph.Vertex
	prio uint32
}

func (o orderVisitor) Vertex() graph.Vertex { return o.v }

type orderAlgo struct{ executed []orderVisitor }

func (a *orderAlgo) PreVisit(v orderVisitor) bool { return true }
func (a *orderAlgo) Visit(v orderVisitor, q *Queue[orderVisitor]) {
	a.executed = append(a.executed, v)
}
func (a *orderAlgo) Less(x, y orderVisitor) bool { return x.prio < y.prio }
func (a *orderAlgo) Encode(v orderVisitor, buf []byte) []byte {
	var w [12]byte
	binary.LittleEndian.PutUint64(w[0:], uint64(v.v))
	binary.LittleEndian.PutUint32(w[8:], v.prio)
	return append(buf, w[:]...)
}
func (a *orderAlgo) Decode(buf []byte) orderVisitor {
	return orderVisitor{
		v:    graph.Vertex(binary.LittleEndian.Uint64(buf)),
		prio: binary.LittleEndian.Uint32(buf[8:]),
	}
}

func TestLocalQueueOrdering(t *testing.T) {
	// Push visitors with mixed priorities and verify execution order:
	// priority first, vertex id as tie-break (locality order, §V-A).
	var edges []graph.Edge
	n := uint64(16)
	for v := uint64(0); v < n; v++ {
		edges = append(edges, graph.Edge{Src: graph.Vertex(v), Dst: graph.Vertex((v + 1) % n)})
	}
	algo := &orderAlgo{}
	rt.NewMachine(1).Run(func(r *rt.Rank) {
		part, err := partition.BuildEdgeList(r, edges, n)
		if err != nil {
			panic(err)
		}
		q := NewQueue[orderVisitor](r, part, algo, Config{})
		push := []orderVisitor{
			{v: 9, prio: 1}, {v: 3, prio: 0}, {v: 7, prio: 0},
			{v: 1, prio: 1}, {v: 5, prio: 0},
		}
		for _, v := range push {
			q.Push(v)
		}
		q.Run()
	})
	want := []orderVisitor{
		{v: 3, prio: 0}, {v: 5, prio: 0}, {v: 7, prio: 0},
		{v: 1, prio: 1}, {v: 9, prio: 1},
	}
	if len(algo.executed) != len(want) {
		t.Fatalf("executed %d visitors, want %d", len(algo.executed), len(want))
	}
	for i := range want {
		if algo.executed[i] != want[i] {
			t.Fatalf("execution order %v, want %v", algo.executed, want)
		}
	}
}

func TestLocalQueueOrderingWithoutLocality(t *testing.T) {
	// With locality order disabled, equal priorities may execute in any
	// order, but priority classes must still be respected.
	var edges []graph.Edge
	n := uint64(16)
	for v := uint64(0); v < n; v++ {
		edges = append(edges, graph.Edge{Src: graph.Vertex(v), Dst: graph.Vertex((v + 1) % n)})
	}
	algo := &orderAlgo{}
	rt.NewMachine(1).Run(func(r *rt.Rank) {
		part, err := partition.BuildEdgeList(r, edges, n)
		if err != nil {
			panic(err)
		}
		q := NewQueue[orderVisitor](r, part, algo, Config{DisableLocalityOrder: true})
		for _, v := range []orderVisitor{{v: 9, prio: 2}, {v: 3, prio: 1}, {v: 7, prio: 1}} {
			q.Push(v)
		}
		q.Run()
	})
	if algo.executed[len(algo.executed)-1].prio != 2 {
		t.Fatalf("priority 2 did not execute last: %v", algo.executed)
	}
}

func TestQueueStatsConsistency(t *testing.T) {
	var edges []graph.Edge
	n := uint64(16)
	for v := uint64(0); v < n; v++ {
		edges = append(edges, graph.Edge{Src: graph.Vertex(v), Dst: graph.Vertex((v + 1) % n)})
	}
	algo := &orderAlgo{}
	var stats Stats
	rt.NewMachine(1).Run(func(r *rt.Rank) {
		part, err := partition.BuildEdgeList(r, edges, n)
		if err != nil {
			panic(err)
		}
		q := NewQueue[orderVisitor](r, part, algo, Config{})
		for i := uint64(0); i < 10; i++ {
			q.Push(orderVisitor{v: graph.Vertex(i % n), prio: uint32(i)})
		}
		q.Run()
		stats = q.Stats()
	})
	if stats.Pushed != 10 || stats.Received != 10 || stats.Queued != 10 || stats.Executed != 10 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Mailbox.RecordsSent != 10 || stats.Mailbox.RecordsDelivered != 10 {
		t.Fatalf("mailbox stats = %+v", stats.Mailbox)
	}
}

func TestDefaultGhostsConstant(t *testing.T) {
	if DefaultGhostsPerPartition != 256 {
		t.Fatal("paper uses 256 ghosts per partition for all BFS experiments")
	}
}

// backToBackAlgo floods one hop from a seed vertex; used to stress
// consecutive traversals with cross-rank traffic and no barriers between.
type floodAlgo struct {
	part  *partition.Part
	seen  []bool
	round uint32
}

type floodVisitor struct {
	v     graph.Vertex
	round uint32
	hops  uint32
}

func (f floodVisitor) Vertex() graph.Vertex { return f.v }

func (a *floodAlgo) PreVisit(v floodVisitor) bool {
	if v.round != a.round {
		// A visitor from another traversal reached this queue: the phase
		// isolation is broken.
		panic("cross-traversal visitor contamination")
	}
	i, ok := a.part.LocalIndex(v.v)
	if !ok || a.seen[i] {
		return false
	}
	a.seen[i] = true
	return true
}

func (a *floodAlgo) Visit(v floodVisitor, q *Queue[floodVisitor]) {
	if v.hops == 0 {
		return
	}
	for _, t := range q.OutEdges(v.v) {
		q.Push(floodVisitor{v: t, round: v.round, hops: v.hops - 1})
	}
}

func (a *floodAlgo) Less(x, y floodVisitor) bool { return false }

func (a *floodAlgo) Encode(v floodVisitor, buf []byte) []byte {
	var w [16]byte
	binary.LittleEndian.PutUint64(w[0:], uint64(v.v))
	binary.LittleEndian.PutUint32(w[8:], v.round)
	binary.LittleEndian.PutUint32(w[12:], v.hops)
	return append(buf, w[:]...)
}

func (a *floodAlgo) Decode(buf []byte) floodVisitor {
	return floodVisitor{
		v:     graph.Vertex(binary.LittleEndian.Uint64(buf[0:])),
		round: binary.LittleEndian.Uint32(buf[8:]),
		hops:  binary.LittleEndian.Uint32(buf[12:]),
	}
}

func TestConsecutiveTraversalsDoNotContaminate(t *testing.T) {
	// Many back-to-back traversals on one machine with NO explicit barriers
	// between them: Run's end-of-traversal barrier must isolate the phases.
	var edges []graph.Edge
	n := uint64(64)
	for v := uint64(0); v < n; v++ {
		edges = append(edges, graph.Edge{Src: graph.Vertex(v), Dst: graph.Vertex((v + 1) % n)})
		edges = append(edges, graph.Edge{Src: graph.Vertex(v), Dst: graph.Vertex((v + 7) % n)})
	}
	p := 4
	rt.NewMachine(p).Run(func(r *rt.Rank) {
		var local []graph.Edge
		for i, e := range edges {
			if i%p == r.Rank() {
				local = append(local, e)
			}
		}
		part, err := partition.BuildEdgeList(r, local, n)
		if err != nil {
			panic(err)
		}
		for round := uint32(0); round < 20; round++ {
			algo := &floodAlgo{part: part, seen: make([]bool, part.StateLen), round: round}
			q := NewQueue[floodVisitor](r, part, algo, Config{})
			lo, hi := part.Owners.MasterRange(part.Rank)
			for v := lo; v < hi; v++ {
				q.Push(floodVisitor{v: graph.Vertex(v), round: round, hops: 3})
			}
			q.Run()
		}
	})
}
