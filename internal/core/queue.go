package core

import (
	"runtime"
	"time"

	"havoqgt/internal/graph"
	"havoqgt/internal/mailbox"
	"havoqgt/internal/obs"
	"havoqgt/internal/partition"
	"havoqgt/internal/rt"
	"havoqgt/internal/termination"
)

// visitBatch bounds how many local visitors execute between mailbox polls,
// so incoming traffic keeps draining while the local queue is deep.
const visitBatch = 256

// Stats counts one rank's visitor-queue activity for a traversal.
type Stats struct {
	Pushed        uint64 // visitors pushed on this rank
	GhostFiltered uint64 // visitors suppressed by the local ghost filter
	Received      uint64 // visitors delivered to this rank
	Queued        uint64 // visitors whose PreVisit returned true
	Executed      uint64 // visitors whose Visit ran
	Forwarded     uint64 // visitors forwarded along a replica chain
	Parked        uint64 // visitors parked waiting for an adjacency page
	Unparked      uint64 // parked visitors re-queued after their page arrived
	Mailbox       mailbox.Stats
	DetectorWaves uint64
	// DetectorSent/DetectorReceived are the termination detector's monotone
	// S and R counters at quiescence. The mailbox feeds the detector (one
	// CountSent per Send, one CountReceived per delivery), so after a quiesced
	// traversal they must agree exactly with Mailbox.RecordsSent and
	// Mailbox.RecordsDelivered on every rank — the S−R in-flight gap the
	// four-counter waves watch drain. internal/check asserts this.
	DetectorSent     uint64
	DetectorReceived uint64
}

// Config tunes a Queue.
type Config struct {
	// Topology routes the mailbox; nil selects mailbox.NewDirect.
	Topology mailbox.Topology
	// FlushBytes is the mailbox aggregation threshold (0 = default).
	FlushBytes int
	// Ghosts enables ghost filtering with the given table. The algorithm
	// must implement GhostAlgorithm; otherwise the table is ignored.
	Ghosts *GhostTable
	// LocalityOrder breaks priority ties by vertex identifier to improve
	// page-level locality of CSR reads (§V-A). On by default via NewQueue;
	// set DisableLocalityOrder to ablate.
	DisableLocalityOrder bool
	// DisableBucketOrder forces the binary-heap local scheduler even when the
	// algorithm implements BucketAlgorithm — the single-priority-queue
	// baseline for delta-stepping ablations (bench-algos "before" numbers).
	DisableBucketOrder bool
	// Reliable runs the mailbox's seq/ack/retransmit protocol under every
	// envelope (mailbox.WithReliable), surviving message drop, duplication,
	// reordering, and corruption injected by a faulty transport. Must be set
	// uniformly across ranks.
	Reliable bool
	// RTOBase/RTOMax bound the reliable layer's retransmission backoff
	// (0 = mailbox defaults). Only meaningful with Reliable.
	RTOBase, RTOMax time.Duration
	// Pager, when non-nil, marks the partition's CSR targets as out-of-core:
	// Step parks visitors whose adjacency pages are absent instead of
	// blocking on the device, and the queue owner must feed Pager.Drain
	// results back through Unpark. Engine mode only.
	Pager RowPager
}

// Queue is one rank's end of the distributed asynchronous visitor queue
// (Algorithm 1). Create one per rank per traversal with NewQueue, push the
// initial visitors, then call Run — or, for the multi-query engine, create
// one per rank per *query* with NewQueueShared over a shared mailbox and
// drive it incrementally with Deliver/Step/PumpTermination.
type Queue[V Visitor] struct {
	rank *rt.Rank
	part *partition.Part
	algo Algorithm[V]

	ghostAlgo GhostAlgorithm[V] // nil when ghosts unused
	ghosts    *GhostTable

	mb  *mailbox.Box
	det *termination.Detector

	tag       uint32 // record tag stamped on every push (query ID; 0 classic)
	shared    bool   // mailbox is shared with other queues (engine mode)
	cancelled bool   // drain without applying (see Cancel)

	heap          []V
	cal           *calendar[V] // non-nil: bucket scheduler replaces the heap
	localityOrder bool
	encBuf        []byte

	// Out-of-core parking (engine mode with cfg.Pager): visitors whose
	// adjacency page missed the cache, keyed by the page they wait for.
	// nParked is maintained alongside so idle checks are O(1).
	pager   RowPager
	parked  map[int64][]V
	nParked int

	stats Stats
	met   queueMetrics
}

// queueMetrics bundles the rank's obs handles for the visitor-queue hot
// paths. Counters accumulate machine-wide (reset via obs.Registry.Reset);
// the Stats struct stays per-Queue for per-traversal reads.
type queueMetrics struct {
	rank          int
	pushed        *obs.PerRank
	ghostFiltered *obs.PerRank
	received      *obs.PerRank
	queued        *obs.PerRank
	executed      *obs.PerRank
	forwarded     *obs.PerRank
	parked        *obs.PerRank
	unparked      *obs.PerRank
	queueDepth    *obs.Histogram
}

func newQueueMetrics(r *rt.Rank) queueMetrics {
	reg, p := r.Obs(), r.Size()
	return queueMetrics{
		rank:          r.Rank(),
		pushed:        reg.PerRank(obs.CorePushed, p),
		ghostFiltered: reg.PerRank(obs.CoreGhostFiltered, p),
		received:      reg.PerRank(obs.CoreReceived, p),
		queued:        reg.PerRank(obs.CoreQueued, p),
		executed:      reg.PerRank(obs.CoreExecuted, p),
		forwarded:     reg.PerRank(obs.CoreForwarded, p),
		parked:        reg.PerRank(obs.CoreParked, p),
		unparked:      reg.PerRank(obs.CoreUnparked, p),
		queueDepth:    reg.Histogram(obs.CoreQueueDepth),
	}
}

// NewQueue builds the rank's queue over the partitioned graph. Must be
// created collectively (every rank of the machine), since termination
// detection spans all ranks.
func NewQueue[V Visitor](r *rt.Rank, part *partition.Part, algo Algorithm[V], cfg Config) *Queue[V] {
	topo := cfg.Topology
	if topo == nil {
		topo = mailbox.NewDirect(r.Size())
	}
	det := termination.New(r)
	var opts []mailbox.Option
	if cfg.FlushBytes > 0 {
		opts = append(opts, mailbox.WithFlushBytes(cfg.FlushBytes))
	}
	if cfg.Reliable {
		opts = append(opts, mailbox.WithReliable(), mailbox.WithRTO(cfg.RTOBase, cfg.RTOMax))
	}
	q := &Queue[V]{
		rank:          r,
		part:          part,
		algo:          algo,
		mb:            mailbox.New(r, topo, det, opts...),
		det:           det,
		localityOrder: !cfg.DisableLocalityOrder,
		met:           newQueueMetrics(r),
	}
	if cfg.Ghosts != nil && cfg.Ghosts.Len() > 0 {
		if ga, ok := algo.(GhostAlgorithm[V]); ok {
			q.ghostAlgo = ga
			q.ghosts = cfg.Ghosts
		}
	}
	if ba, ok := algo.(BucketAlgorithm[V]); ok && !cfg.DisableBucketOrder {
		q.cal = newCalendar[V](ba)
	}
	return q
}

// NewQueueShared builds a queue for one query of the multi-query engine:
// visitors travel through the caller-owned shared mailbox stamped with tag
// (the query ID), and termination detection runs on the caller-minted
// per-query detector. The caller owns the poll loop — it must route
// delivered records with matching tag into Deliver, drive execution with
// Step, and pump PumpTermination; Run must not be called on a shared queue.
func NewQueueShared[V Visitor](r *rt.Rank, part *partition.Part, algo Algorithm[V],
	cfg Config, mb *mailbox.Box, det *termination.Detector, tag uint32) *Queue[V] {
	q := &Queue[V]{
		rank:          r,
		part:          part,
		algo:          algo,
		mb:            mb,
		det:           det,
		tag:           tag,
		shared:        true,
		localityOrder: !cfg.DisableLocalityOrder,
		pager:         cfg.Pager,
		met:           newQueueMetrics(r),
	}
	if q.pager != nil {
		q.parked = make(map[int64][]V)
	}
	if cfg.Ghosts != nil && cfg.Ghosts.Len() > 0 {
		if ga, ok := algo.(GhostAlgorithm[V]); ok {
			q.ghostAlgo = ga
			q.ghosts = cfg.Ghosts
		}
	}
	if ba, ok := algo.(BucketAlgorithm[V]); ok && !cfg.DisableBucketOrder {
		q.cal = newCalendar[V](ba)
	}
	return q
}

// Part returns the partition this queue traverses.
func (q *Queue[V]) Part() *partition.Part { return q.part }

// Rank returns the underlying simulated rank.
func (q *Queue[V]) Rank() *rt.Rank { return q.rank }

// LocalRow returns the CSR row index for a locally held vertex.
func (q *Queue[V]) LocalRow(v graph.Vertex) int {
	i, ok := q.part.LocalIndex(v)
	if !ok {
		panic("core: visitor delivered to rank without state for its vertex")
	}
	return i
}

// OutEdges returns the local portion of v's adjacency list. The slice is
// valid until the next OutEdges call (external stores reuse a buffer).
func (q *Queue[V]) OutEdges(v graph.Vertex) []graph.Vertex {
	return q.part.CSR.Row(q.LocalRow(v))
}

// Push inserts a visitor into the distributed queue (Algorithm 1, PUSH):
// apply the local ghost filter if ghost information for the vertex is stored
// locally, then transmit the visitor to the vertex's master partition
// through the routed mailbox.
func (q *Queue[V]) Push(v V) {
	q.stats.Pushed++
	q.met.pushed.Inc(q.met.rank)
	dest := q.part.Master(v.Vertex())
	if q.ghostAlgo != nil && dest != q.part.Rank {
		if gi, ok := q.ghosts.Lookup(v.Vertex()); ok {
			if !q.ghostAlgo.PreVisitGhost(v, gi) {
				q.stats.GhostFiltered++
				q.met.ghostFiltered.Inc(q.met.rank)
				return
			}
		}
	}
	q.encBuf = q.algo.Encode(v, q.encBuf[:0])
	q.mb.SendTagged(dest, q.tag, q.encBuf)
}

// receive handles one delivered visitor (Algorithm 1, CHECK_MAILBOX body):
// PreVisit against local state; if it proceeds, queue locally and forward to
// the next replica when the vertex's adjacency list continues on a later
// partition. A cancelled queue drains the record without applying it — the
// delivery was already counted toward termination by the mailbox, so the
// query still quiesces, but no new state changes or pushes happen.
// receive applies one delivered record. Recycle-epoch handshake with the
// mailbox's arena delivery (mailbox.Record): rec.Payload is only valid until
// the next mailbox Poll, and Algorithm.Decode is required to deserialize
// into a value-typed visitor without retaining the payload slice — every
// in-tree algorithm does — so nothing here outlives the epoch.
func (q *Queue[V]) receive(rec mailbox.Record) {
	q.stats.Received++
	q.met.received.Inc(q.met.rank)
	if q.cancelled {
		return
	}
	v := q.algo.Decode(rec.Payload)
	if !q.algo.PreVisit(v) {
		return
	}
	q.stats.Queued++
	q.met.queued.Inc(q.met.rank)
	q.schedPush(v)
	if q.pager != nil {
		// Frontier-composition prefetch: this visitor just joined the local
		// heap, so its adjacency page will be wanted within the next few Step
		// slices — hint the pager now so the read overlaps queued work.
		if i, ok := q.part.LocalIndex(v.Vertex()); ok {
			q.pager.PrefetchRow(i)
		}
	}
	if next, ok := q.part.ShouldForward(v.Vertex()); ok {
		q.stats.Forwarded++
		q.met.forwarded.Inc(q.met.rank)
		q.encBuf = q.algo.Encode(v, q.encBuf[:0])
		q.mb.SendTagged(next, q.tag, q.encBuf)
	}
}

// Deliver routes one record (already demultiplexed by tag) into the queue.
// Engine mode only; the classic Run path consumes its own mailbox.
func (q *Queue[V]) Deliver(rec mailbox.Record) { q.receive(rec) }

// Step executes up to batch locally queued visitors, returning whether any
// work happened. Engine mode's slice of the DO_TRAVERSAL loop: the engine
// interleaves Step calls across all in-flight queries on the rank.
//
// With an out-of-core pager, a popped visitor whose adjacency page is absent
// is parked on that page (the pager has already enqueued the demand fetch)
// and the loop moves on to the next visitor — the visit slot is spent hiding
// device latency behind resident work instead of blocking on it. Parking
// counts as progress: the queue did advance its frontier bookkeeping, and
// reporting false here could let the rank loop sleep while fetches it must
// drain are in flight.
func (q *Queue[V]) Step(batch int) bool {
	if q.schedLen() == 0 {
		return false
	}
	q.met.queueDepth.Observe(uint64(q.schedLen()))
	for i := 0; i < batch && q.schedLen() > 0; i++ {
		v := q.schedPop()
		if q.pager != nil {
			if key, resident := q.pager.RowResident(q.LocalRow(v.Vertex())); !resident {
				q.parked[key] = append(q.parked[key], v)
				q.nParked++
				q.stats.Parked++
				q.met.parked.Inc(q.met.rank)
				continue
			}
		}
		q.stats.Executed++
		q.met.executed.Inc(q.met.rank)
		q.algo.Visit(v, q)
	}
	return true
}

// Unpark runs the visitors parked on the given pages (called by the rank
// loop with a Pager.Drain result) and reports whether any work happened.
// Waiters execute immediately and unconditionally — not via the heap, and
// with no residency re-check. Both halves matter under a tight budget:
// a visitor that round-trips through the heap finds its page evicted by the
// time Step pops it, re-parks, and the traversal degenerates into a
// park/fetch/evict livelock (millions of parks per thousand visits, ranks
// never quiescing); and a re-check at drain time reintroduces the same cycle
// for multi-page rows — park on page p, p arrives pinned, re-park on p+1, p
// is released and evicted before p+1 completes, re-park on p, forever.
// Executing unconditionally bounds every visitor to exactly one park per
// heap pop: the parked page itself is pinned resident from Drain to Release
// (the rank loop's contract with the pager), and any other span page that
// lost the residency race faults synchronously in the serving read path — a
// bounded stall, traded for guaranteed forward progress. PreVisit is not
// re-run: it already mutated per-vertex state at delivery, and running it
// again would drop the visitor (e.g. BFS's "level already set" filter);
// stale visitors are self-pruned by each algorithm's Visit re-check.
func (q *Queue[V]) Unpark(pages []int64) bool {
	if q.nParked == 0 {
		return false
	}
	any := false
	for _, pg := range pages {
		vs, ok := q.parked[pg]
		if !ok {
			continue
		}
		delete(q.parked, pg)
		q.nParked -= len(vs)
		any = true
		for _, v := range vs {
			q.stats.Unparked++
			q.met.unparked.Inc(q.met.rank)
			q.stats.Executed++
			q.met.executed.Inc(q.met.rank)
			q.algo.Visit(v, q)
		}
	}
	return any
}

// LocalIdle reports whether this queue holds no executable local work.
// Parked visitors are pending work — a queue with visits waiting on device
// pages must not report idle, or termination detection could declare
// quiescence with traversal still to do.
func (q *Queue[V]) LocalIdle() bool { return q.schedLen() == 0 && q.nParked == 0 }

// Cancel marks the queue cancelled on this rank: the local visitor heap is
// discarded and subsequent deliveries are drained without being applied.
// Termination detection still runs to quiescence so the query's tagged
// records fully drain from the message plane before the ID is retired.
func (q *Queue[V]) Cancel() {
	q.cancelled = true
	var zero V
	for i := range q.heap {
		q.heap[i] = zero
	}
	q.heap = q.heap[:0]
	if q.cal != nil {
		q.cal.clear()
	}
	// Parked visitors are dropped too: their demand fetches may still
	// complete, but Unpark on a cancelled queue has nothing to re-queue and
	// the pages simply age out of the cache.
	clear(q.parked)
	q.nParked = 0
}

// Cancelled reports whether Cancel was called on this rank.
func (q *Queue[V]) Cancelled() bool { return q.cancelled }

// PumpTermination drives this query's detector with the caller-computed
// local idle state and returns true at global quiescence, snapshotting the
// detector counters into Stats exactly once. Unlike Run, no end-of-traversal
// barrier is needed: records of other queries cannot be misattributed — the
// tag demultiplexes them — so ranks may retire the query independently.
func (q *Queue[V]) PumpTermination(localIdle bool) bool {
	if !q.det.Pump(localIdle && q.schedLen() == 0 && q.nParked == 0) {
		return false
	}
	q.stats.DetectorWaves = q.det.Waves
	q.stats.DetectorSent = q.det.Sent()
	q.stats.DetectorReceived = q.det.Received()
	return true
}

// Run executes the asynchronous traversal to completion (Algorithm 1,
// DO_TRAVERSAL): drain the mailbox, execute locally queued visitors in
// priority order, and participate in termination detection; returns when the
// distributed queue is globally empty. Initial visitors must have been
// pushed before Run (on whichever ranks create them).
func (q *Queue[V]) Run() {
	idleSpins := 0
	for {
		progress := false
		for _, rec := range q.mb.Poll() {
			q.receive(rec)
			progress = true
		}
		if q.schedLen() > 0 {
			// Sample local queue depth once per visit batch.
			q.met.queueDepth.Observe(uint64(q.schedLen()))
		}
		for i := 0; i < visitBatch && q.schedLen() > 0; i++ {
			v := q.schedPop()
			q.stats.Executed++
			q.met.executed.Inc(q.met.rank)
			q.algo.Visit(v, q)
			progress = true
		}
		if progress {
			idleSpins = 0
			// Answer termination waves even while busy; checking for
			// non-termination is asynchronous (§V).
			q.det.Pump(false)
			continue
		}
		// Out of local work: flush aggregation buffers so partial batches
		// cannot stall the traversal, then report idle.
		q.mb.FlushAll()
		idle := q.schedLen() == 0 && q.mb.Idle()
		if q.det.Pump(idle) {
			q.stats.Mailbox = q.mb.Stats()
			q.stats.DetectorWaves = q.det.Waves
			q.stats.DetectorSent = q.det.Sent()
			q.stats.DetectorReceived = q.det.Received()
			// End-of-traversal barrier: no rank may leave Run (and start
			// pushing a *next* traversal's visitors) while another rank
			// could still poll this traversal's mailbox — a record consumed
			// by the wrong queue would unbalance the next traversal's
			// termination counters and hang it.
			q.rank.Barrier()
			return
		}
		idleSpins++
		if idleSpins < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// Stats returns the rank's traversal counters (valid after Run).
func (q *Queue[V]) Stats() Stats { return q.stats }

// --- local scheduler dispatch: calendar of buckets when the algorithm
// implements BucketAlgorithm (delta-stepping), binary min-heap otherwise.

func (q *Queue[V]) schedPush(v V) {
	if q.cal != nil {
		q.cal.push(v)
		return
	}
	q.heapPush(v)
}

func (q *Queue[V]) schedPop() V {
	if q.cal != nil {
		return q.cal.pop()
	}
	return q.heapPop()
}

func (q *Queue[V]) schedLen() int {
	if q.cal != nil {
		return q.cal.n
	}
	return len(q.heap)
}

// calendar is the delta-stepping bucket scheduler: visitors land in FIFO
// buckets keyed by BucketAlgorithm.Bucket, drained in ascending bucket order.
// Push and pop are O(1) amortized — the small residual heap in order sorts
// bucket indices (hundreds at most for SSSP's ⌊Dist/Δ⌋), not visitors
// (thousands to millions). Empty buckets keep their allocated backing arrays
// in a free list, so steady-state operation allocates nothing.
type calendar[V Visitor] struct {
	algo    BucketAlgorithm[V]
	buckets map[uint64][]V
	order   []uint64 // min-heap of bucket indices present in buckets
	free    [][]V    // spent bucket backing arrays for reuse
	n       int
}

func newCalendar[V Visitor](algo BucketAlgorithm[V]) *calendar[V] {
	return &calendar[V]{algo: algo, buckets: make(map[uint64][]V)}
}

func (c *calendar[V]) push(v V) {
	b := c.algo.Bucket(v)
	s, ok := c.buckets[b]
	if !ok {
		if f := len(c.free); f > 0 {
			s = c.free[f-1][:0]
			c.free = c.free[:f-1]
		}
		c.orderPush(b)
	}
	c.buckets[b] = append(s, v)
	c.n++
}

// pop returns a visitor from the lowest-indexed non-empty bucket. Within a
// bucket the drain is LIFO — bucket membership already bounds the priority
// spread to Δ, and the label-correcting kernels this serves converge under
// any within-bucket order; LIFO keeps the pop at a slice truncation.
func (c *calendar[V]) pop() V {
	b := c.order[0]
	s := c.buckets[b]
	last := len(s) - 1
	v := s[last]
	var zero V
	s[last] = zero
	if last == 0 {
		delete(c.buckets, b)
		c.orderPop()
		c.free = append(c.free, s[:0])
	} else {
		c.buckets[b] = s[:last]
	}
	c.n--
	return v
}

func (c *calendar[V]) clear() {
	clear(c.buckets)
	c.order = c.order[:0]
	c.n = 0
}

func (c *calendar[V]) orderPush(b uint64) {
	c.order = append(c.order, b)
	i := len(c.order) - 1
	for i > 0 {
		p := (i - 1) / 2
		if c.order[i] >= c.order[p] {
			break
		}
		c.order[i], c.order[p] = c.order[p], c.order[i]
		i = p
	}
}

func (c *calendar[V]) orderPop() {
	last := len(c.order) - 1
	c.order[0] = c.order[last]
	c.order = c.order[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && c.order[l] < c.order[small] {
			small = l
		}
		if r < last && c.order[r] < c.order[small] {
			small = r
		}
		if small == i {
			break
		}
		c.order[i], c.order[small] = c.order[small], c.order[i]
		i = small
	}
}

// --- local min-heap priority queue, ordered by the algorithm's Less with an
// optional vertex-identifier tie-break for external-memory locality (§V-A).

func (q *Queue[V]) less(a, b V) bool {
	if q.algo.Less(a, b) {
		return true
	}
	if q.localityOrder && !q.algo.Less(b, a) {
		return a.Vertex() < b.Vertex()
	}
	return false
}

func (q *Queue[V]) heapPush(v V) {
	q.heap = append(q.heap, v)
	i := len(q.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(q.heap[i], q.heap[p]) {
			break
		}
		q.heap[i], q.heap[p] = q.heap[p], q.heap[i]
		i = p
	}
}

func (q *Queue[V]) heapPop() V {
	top := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	var zero V
	q.heap[last] = zero
	q.heap = q.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(q.heap) && q.less(q.heap[l], q.heap[small]) {
			small = l
		}
		if r < len(q.heap) && q.less(q.heap[r], q.heap[small]) {
			small = r
		}
		if small == i {
			break
		}
		q.heap[i], q.heap[small] = q.heap[small], q.heap[i]
		i = small
	}
	return top
}
