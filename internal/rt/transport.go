package rt

// Transport fault interposition: the first of the three fault-plane choke
// points (rt transport, mailbox reliability, pagecache device). A Transport
// installed with Machine.SetTransport is consulted once per Send and once per
// inbox drain, letting internal/faults inject deterministic message drops,
// duplicates, delays, payload corruption, and rank stall windows without the
// message plane above knowing anything about fault schedules.
//
// The perfect transport (no Transport installed) keeps the exact semantics
// the package documents: unbounded asynchronous delivery with per-pair FIFO
// ordering. A faulty transport deliberately weakens those guarantees —
// messages may be lost, repeated, delayed past later messages (reordering),
// or bit-flipped — which is precisely the environment the mailbox's
// sequence-numbered, acked, checksummed reliable mode exists to survive.

import (
	"sync/atomic"
	"time"
)

// Fate is a Transport's verdict for one message. The zero value delivers the
// message normally.
type Fate struct {
	// Drop discards the message: it never reaches the destination inbox.
	Drop bool
	// Duplicate enqueues the message twice (both copies subject to Delay).
	Duplicate bool
	// Delay postpones the message's visibility at the receiver beyond the
	// machine's simulated latency. Unequal delays across messages of one
	// sender→receiver pair break the FIFO non-overtaking guarantee — that is
	// the reorder fault.
	Delay time.Duration
	// Corrupt flips one bit of a copy of the payload (the original buffer is
	// never mutated: senders may retain references for retransmission).
	Corrupt bool
	// CorruptBit selects the flipped bit, taken modulo the payload bit
	// length. Only meaningful when Corrupt is set.
	CorruptBit uint64
}

// Transport decides the fate of transported messages and the stall state of
// ranks. Implementations must be safe for concurrent use from every rank
// goroutine, and — to keep fault schedules reproducible — should derive each
// verdict as a pure function of the identifying arguments (the per-pair seq
// makes that possible regardless of goroutine interleaving).
type Transport interface {
	// Fate is consulted once per Send. seq is the index of this message in
	// the (from, to, kind) stream: the transport maintains one monotone
	// counter per directed pair per kind, so the n-th mailbox envelope from
	// rank 2 to rank 5 always presents the same identity to the injector no
	// matter how goroutines interleave.
	Fate(from, to int, kind uint8, seq uint64, payloadLen int) Fate

	// Stall reports how much longer rank r's inbound delivery stays frozen
	// (0 = not stalled). While stalled, the rank drains nothing — modeling a
	// straggler or temporarily unresponsive process. Its queued messages are
	// released when the window passes.
	Stall(rank int) time.Duration
}

// SetTransport installs (or, with nil, removes) a fault-injecting transport.
// Install before Run for reproducible schedules; the hook itself is safe to
// swap at any time.
func (m *Machine) SetTransport(t Transport) {
	if t == nil {
		m.transport.Store(nil)
		return
	}
	m.seqOnce.Do(func() {
		m.pairSeqs = make([]atomic.Uint64, m.p*m.p*int(numKinds))
	})
	// Latch the exclusivity loss before the injector can duplicate anything:
	// recycling layers that read ExclusiveDelivery afterwards must see it.
	m.hadTransport.Store(true)
	m.transport.Store(&t)
}

// transportHook returns the installed Transport, or nil.
func (m *Machine) transportHook() Transport {
	if p := m.transport.Load(); p != nil {
		return *p
	}
	return nil
}

// pairSeq returns the next per-(from,to,kind) sequence number. Only called
// with a transport installed (pairSeqs allocated by SetTransport).
func (m *Machine) pairSeq(from, to int, kind uint8) uint64 {
	i := (from*m.p+to)*int(numKinds) + int(kind)
	return m.pairSeqs[i].Add(1) - 1
}

// corruptCopy returns payload with one bit flipped, never mutating the
// original backing array.
func corruptCopy(payload []byte, bit uint64) []byte {
	if len(payload) == 0 {
		return payload
	}
	p := append([]byte(nil), payload...)
	bit %= uint64(len(p)) * 8
	p[bit/8] ^= 1 << (bit % 8)
	return p
}
