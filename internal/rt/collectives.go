package rt

import (
	"encoding/binary"
	"math"
)

// Collectives are built from point-to-point messages, as in the paper's
// MPI-only implementation. Every rank must invoke the same sequence of
// collective calls; a per-rank sequence number tags each call so a fast
// rank's next collective cannot be confused with the current one.
//
// Reductions and broadcasts use a binomial-style binary tree rooted at rank
// 0 (O(lg p) depth); the barrier is a dissemination barrier (O(lg p) rounds).

// ReduceOp is a binary associative, commutative reduction operator on uint64.
type ReduceOp func(a, b uint64) uint64

// Predefined reduction operators.
var (
	Sum ReduceOp = func(a, b uint64) uint64 { return a + b }
	Min ReduceOp = func(a, b uint64) uint64 { return min(a, b) }
	Max ReduceOp = func(a, b uint64) uint64 { return max(a, b) }
)

// nextTag allocates the tag for the next collective call. Rounds within one
// collective are distinguished in the low 6 bits.
func (r *Rank) nextTag() uint32 {
	r.collSeq++
	return r.collSeq << 6
}

func (r *Rank) parent() int { return (r.rank - 1) / 2 }
func (r *Rank) children() []int {
	var c []int
	if l := 2*r.rank + 1; l < r.m.p {
		c = append(c, l)
	}
	if rr := 2*r.rank + 2; rr < r.m.p {
		c = append(c, rr)
	}
	return c
}

// Barrier blocks until every rank has entered the barrier.
func (r *Rank) Barrier() {
	tag := r.nextTag()
	p := r.m.p
	if p == 1 {
		return
	}
	for k, round := 1, uint32(0); k < p; k, round = k<<1, round+1 {
		to := (r.rank + k) % p
		from := (r.rank - k + p) % p
		rtag := tag | round
		r.Send(to, KindColl, rtag, nil)
		r.waitMatch(KindColl, func(m Msg) bool { return m.Tag == rtag && m.From == from })
	}
}

// AllReduceU64 combines x across all ranks with op and returns the result on
// every rank.
//
// Scratch discipline (shared with AllReduceF64): the 8-byte payloads come
// from the rank's collective scratch pool. An up-phase contribution is built
// by one child and consumed by exactly one parent, so the parent recycles it
// into its own pool after reading the value — buffers circulate up the tree
// and interior ranks reach steady-state zero allocation. The down-phase
// result buffer is sent to up to two children (shared aliases) and is never
// recycled by anyone.
func (r *Rank) AllReduceU64(x uint64, op ReduceOp) uint64 {
	tag := r.nextTag()
	acc := x
	for _, c := range r.children() {
		m := r.waitMatch(KindColl, func(m Msg) bool { return m.Tag == tag && m.From == c })
		acc = op(acc, binary.LittleEndian.Uint64(m.Payload))
		r.collRecycle(m.Payload)
	}
	if r.rank != 0 {
		buf := r.collBuf()
		binary.LittleEndian.PutUint64(buf, acc)
		r.Send(r.parent(), KindColl, tag, buf)
		m := r.waitMatch(KindColl, func(m Msg) bool { return m.Tag == tag|1 && m.From == r.parent() })
		acc = binary.LittleEndian.Uint64(m.Payload)
	}
	if cs := r.children(); len(cs) > 0 {
		buf := r.collBuf()
		binary.LittleEndian.PutUint64(buf, acc)
		for _, c := range cs {
			r.Send(c, KindColl, tag|1, buf)
		}
	}
	return acc
}

// AllReduceF64 combines a float64 across all ranks (sum/min/max semantics via
// op applied to float values).
func (r *Rank) AllReduceF64(x float64, op func(a, b float64) float64) float64 {
	// Reuse the u64 tree by shipping IEEE bits and applying op on decoded
	// values; implemented directly to keep op on floats. Scratch discipline
	// as in AllReduceU64.
	tag := r.nextTag()
	acc := x
	for _, c := range r.children() {
		m := r.waitMatch(KindColl, func(m Msg) bool { return m.Tag == tag && m.From == c })
		acc = op(acc, math.Float64frombits(binary.LittleEndian.Uint64(m.Payload)))
		r.collRecycle(m.Payload)
	}
	if r.rank != 0 {
		buf := r.collBuf()
		binary.LittleEndian.PutUint64(buf, math.Float64bits(acc))
		r.Send(r.parent(), KindColl, tag, buf)
		m := r.waitMatch(KindColl, func(m Msg) bool { return m.Tag == tag|1 && m.From == r.parent() })
		acc = math.Float64frombits(binary.LittleEndian.Uint64(m.Payload))
	}
	if cs := r.children(); len(cs) > 0 {
		buf := r.collBuf()
		binary.LittleEndian.PutUint64(buf, math.Float64bits(acc))
		for _, c := range cs {
			r.Send(c, KindColl, tag|1, buf)
		}
	}
	return acc
}

// Broadcast distributes root's payload to every rank and returns it. Non-root
// callers may pass nil.
func (r *Rank) Broadcast(root int, payload []byte) []byte {
	tag := r.nextTag()
	// Rotate ranks so the tree is rooted at `root`.
	rel := (r.rank - root + r.m.p) % r.m.p
	parentRel := (rel - 1) / 2
	if rel != 0 {
		from := (parentRel + root) % r.m.p
		m := r.waitMatch(KindColl, func(m Msg) bool { return m.Tag == tag && m.From == from })
		payload = m.Payload
	}
	for _, cRel := range []int{2*rel + 1, 2*rel + 2} {
		if cRel < r.m.p {
			r.Send((cRel+root)%r.m.p, KindColl, tag, payload)
		}
	}
	return payload
}

// AllGatherU64 returns every rank's x, indexed by rank, on every rank.
func (r *Rank) AllGatherU64(x uint64) []uint64 {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, x)
	parts := r.AllGatherBytes(buf)
	out := make([]uint64, len(parts))
	for i, p := range parts {
		out[i] = binary.LittleEndian.Uint64(p)
	}
	return out
}

// AllGatherBytes returns every rank's payload, indexed by rank, on every
// rank. Gather to rank 0 then broadcast (simple and sufficient at simulated
// scales).
func (r *Rank) AllGatherBytes(payload []byte) [][]byte {
	tag := r.nextTag()
	p := r.m.p
	parts := make([][]byte, p)
	if r.rank == 0 {
		parts[0] = payload
		for n := 1; n < p; n++ {
			m := r.waitMatch(KindColl, func(m Msg) bool { return m.Tag == tag })
			parts[m.From] = m.Payload
		}
	} else {
		r.Send(0, KindColl, tag, payload)
	}
	// Broadcast the concatenation with a length table.
	var packed []byte
	if r.rank == 0 {
		packed = packParts(parts)
	}
	packed = r.Broadcast(0, packed)
	return unpackParts(packed, p)
}

// AllToAllv sends out[i] to rank i and returns in[i] received from rank i, on
// every rank. Entries may be nil/empty; a message is still exchanged so the
// collective synchronizes. out must have length Size().
func (r *Rank) AllToAllv(out [][]byte) [][]byte {
	p := r.m.p
	if len(out) != p {
		panic("rt: AllToAllv requires one (possibly empty) payload per rank")
	}
	tag := r.nextTag()
	in := make([][]byte, p)
	in[r.rank] = out[r.rank]
	for i := 1; i < p; i++ {
		to := (r.rank + i) % p
		r.Send(to, KindColl, tag, out[to])
	}
	for n := 1; n < p; n++ {
		m := r.waitMatch(KindColl, func(m Msg) bool { return m.Tag == tag })
		in[m.From] = m.Payload
	}
	return in
}

// packParts serializes a rank-indexed slice of byte slices.
func packParts(parts [][]byte) []byte {
	size := 8 * len(parts)
	for _, p := range parts {
		size += len(p)
	}
	buf := make([]byte, 0, size)
	var hdr [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(hdr[:], uint64(len(p)))
		buf = append(buf, hdr[:]...)
		buf = append(buf, p...)
	}
	return buf
}

// unpackParts reverses packParts.
func unpackParts(buf []byte, p int) [][]byte {
	parts := make([][]byte, p)
	off := 0
	for i := 0; i < p; i++ {
		n := int(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
		parts[i] = buf[off : off+n : off+n]
		off += n
	}
	return parts
}
