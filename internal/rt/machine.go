// Package rt simulates a distributed-memory machine: p ranks, each a
// goroutine with strictly private state, connected only by a byte-level
// message transport. It stands in for MPI in the paper's environment
// (non-blocking point-to-point communication, collectives built from
// point-to-point messages) so the visitor-queue framework above it is
// structured exactly as a distributed program.
//
// Discipline: rank code must never share mutable state with other ranks
// except through Send/Recv. The experiment harness enforces per-rank result
// slots for anything it needs back.
//
// The transport is asynchronous and unbounded: Send never blocks, Recv never
// blocks (it returns what has arrived). Per sender→receiver pair, message
// order is preserved (FIFO), matching MPI's non-overtaking guarantee, which
// the visitor queue's replica-forwarding chain relies on.
package rt

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"havoqgt/internal/obs"
)

// Message kinds multiplexed over the transport. Each subsystem owns a kind so
// its traffic can be drained independently (no head-of-line blocking between,
// say, visitor delivery and termination-detection control waves).
const (
	KindMailbox uint8 = iota // routed visitor traffic (internal/mailbox)
	KindControl              // termination detection (internal/termination)
	KindColl                 // collectives (this package)
	numKinds
)

// KindName returns the metric label for a message kind.
func KindName(kind uint8) string {
	switch kind {
	case KindMailbox:
		return "mailbox"
	case KindControl:
		return "control"
	case KindColl:
		return "coll"
	default:
		return "unknown"
	}
}

// Msg is one transported message.
type Msg struct {
	From    int
	To      int
	Kind    uint8
	Tag     uint32 // collective sequence / subsystem-defined tag
	Payload []byte

	sentAt    int64 // UnixNano at send, for the transport latency histogram
	deliverAt int64 // UnixNano at which the message becomes drainable
}

// inbox is a rank's receive queue. Padded to a cache line multiple to avoid
// false sharing between adjacent ranks' inboxes.
type inbox struct {
	mu sync.Mutex
	q  []Msg
	_  [64 - 8]byte //nolint:unused // padding
}

// Stats aggregates transport counters across all ranks. It is a thin
// adapter over the machine's obs.Registry, kept for existing callers; new
// code should read the registry snapshot directly.
type Stats struct {
	MsgsSent  uint64
	BytesSent uint64
	// Per kind.
	MsgsByKind  [numKinds]uint64
	BytesByKind [numKinds]uint64
}

// Machine is a simulated distributed machine with a fixed number of ranks.
// All transport counters live in the machine's obs.Registry (one registry
// per machine), which downstream subsystems reach through Rank.Obs.
type Machine struct {
	p       int
	inboxes []inbox

	// Local rank window and byte fabric (see fabric.go). An in-process
	// machine hosts [0, p) and has no fabric; a cluster machine hosts
	// [localLo, localHi) and ships everything else through the fabric.
	localLo, localHi int
	fabric           Fabric

	// simLatency (ns) delays message visibility: a message sent at T is
	// deliverable only at T+simLatency, modeling interconnect / external
	// memory transfer latency that the real system would pay. 0 (the
	// default) keeps the transport instantaneous. See SetSimLatency.
	simLatency atomic.Int64

	// transport, when set, injects faults at the send/drain choke points
	// (see transport.go). pairSeqs hold the per-(from,to,kind) monotone
	// message counters that give every message a deterministic identity.
	// hadTransport latches (and never clears) once any Transport has been
	// installed: fault kinds like Duplicate enqueue two inbox references to
	// one payload, so from that point on a drained payload is no longer
	// provably the receiver's exclusive copy — buffer-recycling layers
	// (mailbox envelope pools, collective scratch) consult ExclusiveDelivery
	// and shut themselves off for the machine's remaining lifetime instead of
	// tracking per-message alias counts.
	transport    atomic.Pointer[Transport]
	hadTransport atomic.Bool
	seqOnce      sync.Once
	pairSeqs     []atomic.Uint64

	// boxEpochs are per-rank monotone generation counters handed to routed
	// mailboxes (Rank.NextBoxEpoch): boxes created collectively across ranks
	// observe the same epoch, which lets a reliable mailbox discard stale
	// retransmissions that outlive the traversal that sent them.
	boxEpochs []atomic.Uint32

	reg       *obs.Registry
	msgsSent  *obs.PerRank // per source rank
	bytesSent *obs.PerRank
	kindMsgs  [numKinds]*obs.Counter
	kindBytes [numKinds]*obs.Counter
	latency   *obs.Histogram // send→drain transport latency, nanoseconds

	// Collective scratch-pool accounting (see Rank.collBuf/collRecycle):
	// hits are collective payload sends served from recycled buffers.
	collHits   *obs.Counter
	collMisses *obs.Counter
}

// NewMachine returns a machine with p ranks. p must be >= 1.
func NewMachine(p int) *Machine {
	if p < 1 {
		panic("rt: machine needs at least one rank")
	}
	reg := obs.NewRegistry()
	m := &Machine{
		p:          p,
		localLo:    0,
		localHi:    p,
		inboxes:    make([]inbox, p),
		boxEpochs:  make([]atomic.Uint32, p),
		reg:        reg,
		msgsSent:   reg.PerRank(obs.RTMsgs, p),
		bytesSent:  reg.PerRank(obs.RTBytes, p),
		latency:    reg.Histogram(obs.RTMsgLatencyNS),
		collHits:   reg.Counter(obs.RTCollScratchHits),
		collMisses: reg.Counter(obs.RTCollScratchMisses),
	}
	for k := uint8(0); k < numKinds; k++ {
		m.kindMsgs[k] = reg.Counter(obs.RTKindMsgs(KindName(k)))
		m.kindBytes[k] = reg.Counter(obs.RTKindBytes(KindName(k)))
	}
	return m
}

// Size returns the number of ranks.
func (m *Machine) Size() int { return m.p }

// SetSimLatency makes every message take at least d of wall-clock time from
// Send to visibility at the receiver, emulating a distributed machine whose
// interconnect (or external-memory fabric) is not free. Messages already in
// flight keep the delay that was set when they were sent deliverable; the
// per-pair FIFO guarantee is unaffected because delivery is released in
// queue order. Safe to call between phases; d <= 0 restores instantaneous
// delivery.
func (m *Machine) SetSimLatency(d time.Duration) {
	if d < 0 {
		d = 0
	}
	m.simLatency.Store(int64(d))
}

// Obs returns the machine's metrics registry.
func (m *Machine) Obs() *obs.Registry { return m.reg }

// Run executes fn concurrently on every locally hosted rank and waits for
// all of them to return (every rank on an in-process machine; the local
// window on a cluster machine, where the other processes run their own
// windows of the same collective phase). A panic on any rank is re-raised on
// the caller with the rank identified. Run may be called again for subsequent
// phases; inboxes persist across calls (they should be empty between
// well-formed phases).
func (m *Machine) Run(fn func(*Rank)) {
	var wg sync.WaitGroup
	panics := make([]any, m.p)
	for r := m.localLo; r < m.localHi; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[r] = p
				}
			}()
			fn(&Rank{m: m, rank: r})
		}(r)
	}
	wg.Wait()
	for r, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("rt: rank %d panicked: %v", r, p))
		}
	}
}

// send delivers a message to the destination inbox. Never blocks. With a
// fault-injecting Transport installed, the message may be dropped,
// duplicated, delayed, or bit-flipped first; the injector accounts every
// such decision in the machine's obs registry.
func (m *Machine) send(msg Msg) {
	if msg.To < 0 || msg.To >= m.p {
		panic(fmt.Sprintf("rt: send to invalid rank %d (size %d)", msg.To, m.p))
	}
	now := time.Now().UnixNano()
	msg.sentAt = now
	msg.deliverAt = now + m.simLatency.Load()
	copies := 1
	var fabricDelay time.Duration
	if tp := m.transportHook(); tp != nil {
		seq := m.pairSeq(msg.From, msg.To, msg.Kind)
		f := tp.Fate(msg.From, msg.To, msg.Kind, seq, len(msg.Payload))
		switch {
		case f.Drop:
			copies = 0
		case f.Duplicate:
			copies = 2
		}
		msg.deliverAt += int64(f.Delay)
		fabricDelay = f.Delay
		if f.Corrupt {
			msg.Payload = corruptCopy(msg.Payload, f.CorruptBit)
		}
	}
	if copies > 0 {
		if m.IsLocal(msg.To) {
			ib := &m.inboxes[msg.To]
			ib.mu.Lock()
			for c := 0; c < copies; c++ {
				ib.q = append(ib.q, msg)
			}
			ib.mu.Unlock()
		} else {
			// Remote destination: the fault verdict is already applied, so the
			// fabric ships the (possibly corrupted, duplicated, delayed)
			// message exactly as a local inbox would have seen it. Injected
			// delay rides along for the receiver to stamp its horizon.
			for c := 0; c < copies; c++ {
				m.fabric.Send(msg.From, msg.To, msg.Kind, msg.Tag, msg.Payload, fabricDelay)
			}
		}
	}
	// Counters track send attempts (logical transport load): a dropped
	// message still consumed the sender's bandwidth; the fault itself is
	// counted under faults.injected.* by the injector.
	m.msgsSent.Inc(msg.From)
	m.bytesSent.Add(msg.From, uint64(len(msg.Payload)))
	m.kindMsgs[msg.Kind].Inc()
	m.kindBytes[msg.Kind].Add(uint64(len(msg.Payload)))
}

// drain removes and returns the deliverable queued messages for rank r,
// recording each message's send→drain latency. Only messages whose
// deliverAt horizon has passed are released. On the perfect transport all
// messages of a pair share the same latency, so a prefix scan releases them
// in FIFO order; a fault-injecting transport assigns unequal delays, so the
// whole queue is scanned and ready messages are compacted out — the
// overtaking this permits is the injected reorder fault. A stalled rank
// drains nothing until its stall window passes.
func (m *Machine) drain(r int, into []Msg) []Msg {
	first := len(into)
	tp := m.transportHook()
	if tp != nil && tp.Stall(r) > 0 {
		return into
	}
	ib := &m.inboxes[r]
	ib.mu.Lock()
	if n := len(ib.q); n > 0 {
		now := time.Now().UnixNano()
		if tp == nil {
			// Perfect transport: uniform latency, release the ready prefix.
			ready := 0
			for ready < n && ib.q[ready].deliverAt <= now {
				ready++
			}
			if ready > 0 {
				into = append(into, ib.q[:ready]...)
				rest := copy(ib.q, ib.q[ready:])
				ib.q = ib.q[:rest]
			}
		} else {
			// Faulty transport: per-message delays, release every ready
			// message and compact the rest in place (stable, so messages
			// with equal horizons keep their relative order).
			kept := ib.q[:0]
			for _, msg := range ib.q {
				if msg.deliverAt <= now {
					into = append(into, msg)
				} else {
					kept = append(kept, msg)
				}
			}
			for i := len(kept); i < n; i++ {
				ib.q[i] = Msg{}
			}
			ib.q = kept
		}
	}
	ib.mu.Unlock()
	if len(into) > first {
		now := time.Now().UnixNano()
		for i := first; i < len(into); i++ {
			if d := now - into[i].sentAt; d > 0 {
				m.latency.Observe(uint64(d))
			} else {
				m.latency.Observe(0)
			}
		}
	}
	return into
}

// Stats returns a snapshot of the transport counters (adapter over the
// obs registry).
func (m *Machine) Stats() Stats {
	var s Stats
	s.MsgsSent = m.msgsSent.Total()
	s.BytesSent = m.bytesSent.Total()
	for k := 0; k < int(numKinds); k++ {
		s.MsgsByKind[k] = m.kindMsgs[k].Value()
		s.BytesByKind[k] = m.kindBytes[k].Value()
	}
	return s
}

// ResetStats zeroes every metric of the machine — transport, mailbox,
// termination, and visitor-queue counters alike — through the single
// obs.Registry.Reset path, so an experiment phase boundary can never
// observe a half-reset counter set split across subsystems.
func (m *Machine) ResetStats() { m.reg.Reset() }
