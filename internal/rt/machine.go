// Package rt simulates a distributed-memory machine: p ranks, each a
// goroutine with strictly private state, connected only by a byte-level
// message transport. It stands in for MPI in the paper's environment
// (non-blocking point-to-point communication, collectives built from
// point-to-point messages) so the visitor-queue framework above it is
// structured exactly as a distributed program.
//
// Discipline: rank code must never share mutable state with other ranks
// except through Send/Recv. The experiment harness enforces per-rank result
// slots for anything it needs back.
//
// The transport is asynchronous and unbounded: Send never blocks, Recv never
// blocks (it returns what has arrived). Per sender→receiver pair, message
// order is preserved (FIFO), matching MPI's non-overtaking guarantee, which
// the visitor queue's replica-forwarding chain relies on.
package rt

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Message kinds multiplexed over the transport. Each subsystem owns a kind so
// its traffic can be drained independently (no head-of-line blocking between,
// say, visitor delivery and termination-detection control waves).
const (
	KindMailbox uint8 = iota // routed visitor traffic (internal/mailbox)
	KindControl              // termination detection (internal/termination)
	KindColl                 // collectives (this package)
	numKinds
)

// Msg is one transported message.
type Msg struct {
	From    int
	To      int
	Kind    uint8
	Tag     uint32 // collective sequence / subsystem-defined tag
	Payload []byte
}

// inbox is a rank's receive queue. Padded to a cache line multiple to avoid
// false sharing between adjacent ranks' inboxes.
type inbox struct {
	mu sync.Mutex
	q  []Msg
	_  [64 - 8]byte //nolint:unused // padding
}

// Stats aggregates transport counters across all ranks.
type Stats struct {
	MsgsSent  uint64
	BytesSent uint64
	// Per kind.
	MsgsByKind  [numKinds]uint64
	BytesByKind [numKinds]uint64
}

// Machine is a simulated distributed machine with a fixed number of ranks.
type Machine struct {
	p       int
	inboxes []inbox

	msgsSent  []atomic.Uint64 // per source rank, padded by slice stride
	bytesSent []atomic.Uint64
	kindMsgs  [numKinds]atomic.Uint64
	kindBytes [numKinds]atomic.Uint64
}

// NewMachine returns a machine with p ranks. p must be >= 1.
func NewMachine(p int) *Machine {
	if p < 1 {
		panic("rt: machine needs at least one rank")
	}
	return &Machine{
		p:         p,
		inboxes:   make([]inbox, p),
		msgsSent:  make([]atomic.Uint64, p),
		bytesSent: make([]atomic.Uint64, p),
	}
}

// Size returns the number of ranks.
func (m *Machine) Size() int { return m.p }

// Run executes fn concurrently on every rank and waits for all ranks to
// return. A panic on any rank is re-raised on the caller with the rank
// identified. Run may be called again for subsequent phases; inboxes persist
// across calls (they should be empty between well-formed phases).
func (m *Machine) Run(fn func(*Rank)) {
	var wg sync.WaitGroup
	panics := make([]any, m.p)
	for r := 0; r < m.p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[r] = p
				}
			}()
			fn(&Rank{m: m, rank: r})
		}(r)
	}
	wg.Wait()
	for r, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("rt: rank %d panicked: %v", r, p))
		}
	}
}

// send delivers a message to the destination inbox. Never blocks.
func (m *Machine) send(msg Msg) {
	if msg.To < 0 || msg.To >= m.p {
		panic(fmt.Sprintf("rt: send to invalid rank %d (size %d)", msg.To, m.p))
	}
	ib := &m.inboxes[msg.To]
	ib.mu.Lock()
	ib.q = append(ib.q, msg)
	ib.mu.Unlock()
	m.msgsSent[msg.From].Add(1)
	m.bytesSent[msg.From].Add(uint64(len(msg.Payload)))
	m.kindMsgs[msg.Kind].Add(1)
	m.kindBytes[msg.Kind].Add(uint64(len(msg.Payload)))
}

// drain removes and returns all queued messages for rank r.
func (m *Machine) drain(r int, into []Msg) []Msg {
	ib := &m.inboxes[r]
	ib.mu.Lock()
	if len(ib.q) > 0 {
		into = append(into, ib.q...)
		ib.q = ib.q[:0]
	}
	ib.mu.Unlock()
	return into
}

// Stats returns a snapshot of the transport counters.
func (m *Machine) Stats() Stats {
	var s Stats
	for r := 0; r < m.p; r++ {
		s.MsgsSent += m.msgsSent[r].Load()
		s.BytesSent += m.bytesSent[r].Load()
	}
	for k := 0; k < int(numKinds); k++ {
		s.MsgsByKind[k] = m.kindMsgs[k].Load()
		s.BytesByKind[k] = m.kindBytes[k].Load()
	}
	return s
}

// ResetStats zeroes the transport counters (between experiment phases).
func (m *Machine) ResetStats() {
	for r := 0; r < m.p; r++ {
		m.msgsSent[r].Store(0)
		m.bytesSent[r].Store(0)
	}
	for k := 0; k < int(numKinds); k++ {
		m.kindMsgs[k].Store(0)
		m.kindBytes[k].Store(0)
	}
}
