package rt

import (
	"runtime"
	"time"

	"havoqgt/internal/obs"
)

// Rank is one simulated process. It is created by Machine.Run and must only
// be used by the goroutine it was handed to.
type Rank struct {
	m    *Machine
	rank int

	// pending holds received-but-unconsumed messages, separated by kind so
	// subsystems drain independently.
	pending [numKinds][]Msg
	scratch []Msg // reusable drain buffer

	collSeq  uint32   // collective sequence number (see collectives.go)
	collPool [][]byte // recycled 8-byte collective scratch buffers
}

// collPoolCap bounds the per-rank collective scratch free-list.
const collPoolCap = 32

// Rank returns this rank's id in [0, Size()).
func (r *Rank) Rank() int { return r.rank }

// Size returns the number of ranks in the machine.
func (r *Rank) Size() int { return r.m.p }

// Machine returns the underlying machine (for stats; rank code must not use
// it to touch other ranks' state).
func (r *Rank) Machine() *Machine { return r.m }

// Obs returns the machine's metrics registry, through which every subsystem
// holding a Rank (mailbox, termination, visitor queue, algorithm drivers)
// reports into one coherent data source.
func (r *Rank) Obs() *obs.Registry { return r.m.reg }

// NextBoxEpoch returns this rank's next mailbox generation number. The
// counter lives on the machine (it survives across Run phases), and every
// rank advances it once per routed-mailbox construction; since mailboxes are
// created collectively, all ranks observe the same epoch for the same
// traversal, letting a reliable mailbox reject stale retransmissions from a
// previous traversal's channels.
func (r *Rank) NextBoxEpoch() uint32 { return r.m.boxEpochs[r.rank].Add(1) }

// Send posts a message to rank `to`. It never blocks.
func (r *Rank) Send(to int, kind uint8, tag uint32, payload []byte) {
	r.m.send(Msg{From: r.rank, To: to, Kind: kind, Tag: tag, Payload: payload})
}

// Poll drains this rank's transport inbox into the per-kind pending queues.
func (r *Rank) Poll() {
	r.scratch = r.m.drain(r.rank, r.scratch[:0])
	for _, msg := range r.scratch {
		r.pending[msg.Kind] = append(r.pending[msg.Kind], msg)
	}
	r.scratch = r.scratch[:0]
}

// Recv polls and returns all pending messages of the given kind. The returned
// slice is owned by the caller; the pending queue is reset.
func (r *Rank) Recv(kind uint8) []Msg {
	r.Poll()
	msgs := r.pending[kind]
	r.pending[kind] = nil
	return msgs
}

// RecvInto polls and appends all pending messages of the given kind to buf,
// returning it. Unlike Recv, the pending queue keeps its backing array (its
// entries are zeroed so payload references are released), so a steady-state
// poll loop that reuses buf across calls allocates nothing. Message payload
// ownership is the same as Recv's.
func (r *Rank) RecvInto(kind uint8, buf []Msg) []Msg {
	r.Poll()
	q := r.pending[kind]
	buf = append(buf, q...)
	for i := range q {
		q[i] = Msg{}
	}
	r.pending[kind] = q[:0]
	return buf
}

// ExclusiveDelivery reports whether payloads drained from the transport are
// provably the receiver's exclusive reference. True on the perfect transport:
// a sender that ships a buffer never touches it again, and exactly one inbox
// entry references it. Installing any fault-injecting Transport permanently
// flips this to false (a Duplicate fate enqueues two references to one
// payload), which tells buffer-recycling layers — the mailbox envelope pool,
// the collective scratch pool — to stop reusing consumed buffers rather than
// risk aliasing. The flag is sticky because a duplicated message can outlive
// the injector that minted it.
func (r *Rank) ExclusiveDelivery() bool { return !r.m.hadTransport.Load() }

// collBuf returns an 8-byte scratch buffer for a collective payload,
// preferring a recycled one (see collRecycle).
func (r *Rank) collBuf() []byte {
	if n := len(r.collPool); n > 0 {
		b := r.collPool[n-1]
		r.collPool[n-1] = nil
		r.collPool = r.collPool[:n-1]
		r.m.collHits.Inc()
		return b[:8]
	}
	r.m.collMisses.Inc()
	return make([]byte, 8)
}

// collRecycle hands a consumed collective payload back to the rank's scratch
// pool. Only up-phase reduction contributions qualify: they are built by one
// child, consumed by exactly one parent, and never retained — whereas a
// broadcast's down-buffer is shared by every child it was sent to and must
// not be recycled. Skipped entirely once fault injection has broken delivery
// exclusivity (ExclusiveDelivery).
func (r *Rank) collRecycle(b []byte) {
	if cap(b) < 8 || len(r.collPool) >= collPoolCap || !r.ExclusiveDelivery() {
		return
	}
	r.collPool = append(r.collPool, b[:8])
}

// HasPending reports whether messages of the given kind are queued
// (after polling).
func (r *Rank) HasPending(kind uint8) bool {
	r.Poll()
	return len(r.pending[kind]) > 0
}

// waitMatch blocks until a message of the given kind arrives satisfying
// match, removes it from pending, and returns it. Other messages of the kind
// stay queued in arrival order. Used by collectives, which must tolerate
// messages from a later collective arriving early.
func (r *Rank) waitMatch(kind uint8, match func(Msg) bool) Msg {
	for spin := 0; ; spin++ {
		r.Poll()
		q := r.pending[kind]
		for i, msg := range q {
			if match(msg) {
				r.pending[kind] = append(q[:i], q[i+1:]...)
				return msg
			}
		}
		idleWait(spin)
	}
}

// idleWait backs off progressively while a rank spins waiting for messages:
// yield for a while, then sleep briefly so oversubscribed simulations (more
// ranks than cores) don't burn the host.
func idleWait(spin int) {
	switch {
	case spin < 64:
		runtime.Gosched()
	default:
		time.Sleep(20 * time.Microsecond)
	}
}
