package rt

import (
	"runtime"
	"time"

	"havoqgt/internal/obs"
)

// Rank is one simulated process. It is created by Machine.Run and must only
// be used by the goroutine it was handed to.
type Rank struct {
	m    *Machine
	rank int

	// pending holds received-but-unconsumed messages, separated by kind so
	// subsystems drain independently.
	pending [numKinds][]Msg
	scratch []Msg // reusable drain buffer

	collSeq uint32 // collective sequence number (see collectives.go)
}

// Rank returns this rank's id in [0, Size()).
func (r *Rank) Rank() int { return r.rank }

// Size returns the number of ranks in the machine.
func (r *Rank) Size() int { return r.m.p }

// Machine returns the underlying machine (for stats; rank code must not use
// it to touch other ranks' state).
func (r *Rank) Machine() *Machine { return r.m }

// Obs returns the machine's metrics registry, through which every subsystem
// holding a Rank (mailbox, termination, visitor queue, algorithm drivers)
// reports into one coherent data source.
func (r *Rank) Obs() *obs.Registry { return r.m.reg }

// NextBoxEpoch returns this rank's next mailbox generation number. The
// counter lives on the machine (it survives across Run phases), and every
// rank advances it once per routed-mailbox construction; since mailboxes are
// created collectively, all ranks observe the same epoch for the same
// traversal, letting a reliable mailbox reject stale retransmissions from a
// previous traversal's channels.
func (r *Rank) NextBoxEpoch() uint32 { return r.m.boxEpochs[r.rank].Add(1) }

// Send posts a message to rank `to`. It never blocks.
func (r *Rank) Send(to int, kind uint8, tag uint32, payload []byte) {
	r.m.send(Msg{From: r.rank, To: to, Kind: kind, Tag: tag, Payload: payload})
}

// Poll drains this rank's transport inbox into the per-kind pending queues.
func (r *Rank) Poll() {
	r.scratch = r.m.drain(r.rank, r.scratch[:0])
	for _, msg := range r.scratch {
		r.pending[msg.Kind] = append(r.pending[msg.Kind], msg)
	}
	r.scratch = r.scratch[:0]
}

// Recv polls and returns all pending messages of the given kind. The returned
// slice is owned by the caller; the pending queue is reset.
func (r *Rank) Recv(kind uint8) []Msg {
	r.Poll()
	msgs := r.pending[kind]
	r.pending[kind] = nil
	return msgs
}

// HasPending reports whether messages of the given kind are queued
// (after polling).
func (r *Rank) HasPending(kind uint8) bool {
	r.Poll()
	return len(r.pending[kind]) > 0
}

// waitMatch blocks until a message of the given kind arrives satisfying
// match, removes it from pending, and returns it. Other messages of the kind
// stay queued in arrival order. Used by collectives, which must tolerate
// messages from a later collective arriving early.
func (r *Rank) waitMatch(kind uint8, match func(Msg) bool) Msg {
	for spin := 0; ; spin++ {
		r.Poll()
		q := r.pending[kind]
		for i, msg := range q {
			if match(msg) {
				r.pending[kind] = append(q[:i], q[i+1:]...)
				return msg
			}
		}
		idleWait(spin)
	}
}

// idleWait backs off progressively while a rank spins waiting for messages:
// yield for a while, then sleep briefly so oversubscribed simulations (more
// ranks than cores) don't burn the host.
func idleWait(spin int) {
	switch {
	case spin < 64:
		runtime.Gosched()
	default:
		time.Sleep(20 * time.Microsecond)
	}
}
