package rt

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestPointToPointDelivery(t *testing.T) {
	m := NewMachine(4)
	got := make([]string, 4)
	m.Run(func(r *Rank) {
		next := (r.Rank() + 1) % r.Size()
		r.Send(next, KindMailbox, 0, []byte(fmt.Sprintf("from-%d", r.Rank())))
		var msgs []Msg
		for len(msgs) == 0 {
			msgs = r.Recv(KindMailbox)
		}
		got[r.Rank()] = string(msgs[0].Payload)
	})
	for i := 0; i < 4; i++ {
		want := fmt.Sprintf("from-%d", (i+3)%4)
		if got[i] != want {
			t.Errorf("rank %d received %q, want %q", i, got[i], want)
		}
	}
}

func TestFIFOPerPair(t *testing.T) {
	m := NewMachine(2)
	var fail atomic.Bool
	m.Run(func(r *Rank) {
		if r.Rank() == 0 {
			for i := 0; i < 1000; i++ {
				r.Send(1, KindMailbox, uint32(i), nil)
			}
			return
		}
		seen := 0
		for seen < 1000 {
			for _, msg := range r.Recv(KindMailbox) {
				if msg.Tag != uint32(seen) {
					fail.Store(true)
					return
				}
				seen++
			}
		}
	})
	if fail.Load() {
		t.Fatal("messages reordered within a sender-receiver pair")
	}
}

func TestKindsAreIndependent(t *testing.T) {
	m := NewMachine(2)
	m.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, KindControl, 7, []byte("ctl"))
			r.Send(1, KindMailbox, 8, []byte("mb"))
			return
		}
		var mb, ctl []Msg
		for len(mb) == 0 || len(ctl) == 0 {
			mb = append(mb, r.Recv(KindMailbox)...)
			ctl = append(ctl, r.Recv(KindControl)...)
		}
		if string(mb[0].Payload) != "mb" || string(ctl[0].Payload) != "ctl" {
			panic("kind demultiplexing broken")
		}
	})
}

func TestRunPropagatesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rank panic not propagated")
		}
	}()
	NewMachine(3).Run(func(r *Rank) {
		if r.Rank() == 1 {
			panic("boom")
		}
	})
}

func TestStatsCounting(t *testing.T) {
	m := NewMachine(2)
	m.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, KindMailbox, 0, make([]byte, 100))
		} else {
			for len(r.Recv(KindMailbox)) == 0 {
			}
		}
	})
	s := m.Stats()
	if s.MsgsSent != 1 || s.BytesSent != 100 {
		t.Fatalf("stats = %+v", s)
	}
	m.ResetStats()
	if s := m.Stats(); s.MsgsSent != 0 {
		t.Fatalf("reset failed: %+v", s)
	}
}

func TestBarrier(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 16} {
		m := NewMachine(p)
		var phase atomic.Int32
		ok := true
		m.Run(func(r *Rank) {
			phase.Add(1)
			r.Barrier()
			if int(phase.Load()) != p {
				ok = false
			}
			r.Barrier()
		})
		if !ok {
			t.Fatalf("p=%d: barrier released before all ranks arrived", p)
		}
	}
}

func TestAllReduceU64(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8, 13} {
		m := NewMachine(p)
		sums := make([]uint64, p)
		mins := make([]uint64, p)
		maxs := make([]uint64, p)
		m.Run(func(r *Rank) {
			x := uint64(r.Rank() + 1)
			sums[r.Rank()] = r.AllReduceU64(x, Sum)
			mins[r.Rank()] = r.AllReduceU64(x, Min)
			maxs[r.Rank()] = r.AllReduceU64(x, Max)
		})
		wantSum := uint64(p * (p + 1) / 2)
		for i := 0; i < p; i++ {
			if sums[i] != wantSum {
				t.Errorf("p=%d rank %d: sum=%d want %d", p, i, sums[i], wantSum)
			}
			if mins[i] != 1 || maxs[i] != uint64(p) {
				t.Errorf("p=%d rank %d: min=%d max=%d", p, i, mins[i], maxs[i])
			}
		}
	}
}

func TestAllReduceF64(t *testing.T) {
	p := 6
	m := NewMachine(p)
	out := make([]float64, p)
	m.Run(func(r *Rank) {
		out[r.Rank()] = r.AllReduceF64(0.5, func(a, b float64) float64 { return a + b })
	})
	for i, v := range out {
		if v != 3.0 {
			t.Errorf("rank %d: %v, want 3.0", i, v)
		}
	}
}

func TestBroadcast(t *testing.T) {
	for _, root := range []int{0, 1, 4} {
		p := 5
		m := NewMachine(p)
		out := make([]string, p)
		m.Run(func(r *Rank) {
			var payload []byte
			if r.Rank() == root {
				payload = []byte("hello")
			}
			out[r.Rank()] = string(r.Broadcast(root, payload))
		})
		for i, s := range out {
			if s != "hello" {
				t.Errorf("root=%d rank %d got %q", root, i, s)
			}
		}
	}
}

func TestAllGatherU64(t *testing.T) {
	p := 7
	m := NewMachine(p)
	outs := make([][]uint64, p)
	m.Run(func(r *Rank) {
		outs[r.Rank()] = r.AllGatherU64(uint64(r.Rank() * 10))
	})
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if outs[i][j] != uint64(j*10) {
				t.Fatalf("rank %d slot %d = %d", i, j, outs[i][j])
			}
		}
	}
}

func TestAllGatherBytesEmptyPayloads(t *testing.T) {
	p := 4
	m := NewMachine(p)
	outs := make([][][]byte, p)
	m.Run(func(r *Rank) {
		var payload []byte
		if r.Rank()%2 == 0 {
			payload = []byte{byte(r.Rank())}
		}
		outs[r.Rank()] = r.AllGatherBytes(payload)
	})
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			wantLen := 0
			if j%2 == 0 {
				wantLen = 1
			}
			if len(outs[i][j]) != wantLen {
				t.Fatalf("rank %d slot %d len=%d want %d", i, j, len(outs[i][j]), wantLen)
			}
		}
	}
}

func TestAllToAllv(t *testing.T) {
	for _, p := range []int{1, 2, 3, 6} {
		m := NewMachine(p)
		ok := true
		m.Run(func(r *Rank) {
			out := make([][]byte, p)
			for i := 0; i < p; i++ {
				out[i] = []byte(fmt.Sprintf("%d->%d", r.Rank(), i))
			}
			in := r.AllToAllv(out)
			for i := 0; i < p; i++ {
				if string(in[i]) != fmt.Sprintf("%d->%d", i, r.Rank()) {
					ok = false
				}
			}
		})
		if !ok {
			t.Fatalf("p=%d: AllToAllv misdelivered", p)
		}
	}
}

func TestCollectivesBackToBack(t *testing.T) {
	// Stress sequencing: many collectives in a row must not cross-talk.
	p := 5
	m := NewMachine(p)
	ok := true
	m.Run(func(r *Rank) {
		for i := 0; i < 50; i++ {
			if r.AllReduceU64(uint64(i), Max) != uint64(i) {
				ok = false
			}
			r.Barrier()
			g := r.AllGatherU64(uint64(r.Rank()))
			for j := range g {
				if g[j] != uint64(j) {
					ok = false
				}
			}
		}
	})
	if !ok {
		t.Fatal("collective sequencing broke under repetition")
	}
}

func TestSendToInvalidRankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("send to invalid rank did not panic")
		}
	}()
	NewMachine(2).Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(5, KindMailbox, 0, nil)
		}
	})
}

func TestCollectivesAtLargerScale(t *testing.T) {
	// Stress the tree/dissemination algorithms well past the small sizes
	// the other tests use.
	p := 32
	m := NewMachine(p)
	ok := true
	m.Run(func(r *Rank) {
		sum := r.AllReduceU64(uint64(r.Rank()), Sum)
		if sum != uint64(p*(p-1)/2) {
			ok = false
		}
		r.Barrier()
		g := r.AllGatherU64(uint64(r.Rank() * 3))
		for i := range g {
			if g[i] != uint64(i*3) {
				ok = false
			}
		}
		out := make([][]byte, p)
		for i := range out {
			out[i] = []byte{byte(r.Rank()), byte(i)}
		}
		in := r.AllToAllv(out)
		for i := range in {
			if in[i][0] != byte(i) || in[i][1] != byte(r.Rank()) {
				ok = false
			}
		}
	})
	if !ok {
		t.Fatal("collectives broke at p=32")
	}
}

func TestMachineReusableAcrossPhases(t *testing.T) {
	// The harness runs construction and several traversals on one machine;
	// phases separated by barriers must not interfere.
	m := NewMachine(4)
	for phase := 0; phase < 3; phase++ {
		m.Run(func(r *Rank) {
			r.Send((r.Rank()+1)%4, KindMailbox, uint32(phase), nil)
			for {
				msgs := r.Recv(KindMailbox)
				if len(msgs) > 0 {
					if msgs[0].Tag != uint32(phase) {
						panic("stale message crossed phases")
					}
					break
				}
			}
			r.Barrier()
		})
	}
}

func TestBroadcastLargePayload(t *testing.T) {
	p := 5
	m := NewMachine(p)
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	ok := true
	m.Run(func(r *Rank) {
		var in []byte
		if r.Rank() == 2 {
			in = payload
		}
		got := r.Broadcast(2, in)
		if len(got) != len(payload) || got[12345] != payload[12345] {
			ok = false
		}
	})
	if !ok {
		t.Fatal("large broadcast corrupted")
	}
}

func TestSimLatencyDelaysDelivery(t *testing.T) {
	const delay = 30 * time.Millisecond
	m := NewMachine(2)
	m.SetSimLatency(delay)
	var measured time.Duration
	m.Run(func(r *Rank) {
		if r.Rank() == 0 {
			start := time.Now()
			r.Send(1, KindMailbox, 0, []byte("hello"))
			// Sender's own view: nothing to measure.
			_ = start
			return
		}
		start := time.Now()
		var msgs []Msg
		for len(msgs) == 0 {
			msgs = r.Recv(KindMailbox)
		}
		measured = time.Since(start)
		if string(msgs[0].Payload) != "hello" {
			t.Errorf("payload %q", msgs[0].Payload)
		}
	})
	// The receiver spun from its own start, which is at most the sender's
	// send time plus scheduling noise; the message must not have been
	// visible well before the configured delay elapsed.
	if measured < delay/2 {
		t.Errorf("message visible after %v; configured delay %v", measured, delay)
	}
}

func TestSimLatencyPreservesFIFO(t *testing.T) {
	m := NewMachine(2)
	m.SetSimLatency(2 * time.Millisecond)
	const n = 50
	m.Run(func(r *Rank) {
		if r.Rank() == 0 {
			for i := 0; i < n; i++ {
				r.Send(1, KindMailbox, uint32(i), nil)
			}
			return
		}
		var got []uint32
		for len(got) < n {
			for _, msg := range r.Recv(KindMailbox) {
				got = append(got, msg.Tag)
			}
		}
		for i, tag := range got {
			if tag != uint32(i) {
				t.Errorf("message %d has tag %d (reordered)", i, tag)
				return
			}
		}
	})
}

func TestSimLatencyZeroIsInstantaneous(t *testing.T) {
	m := NewMachine(2)
	m.SetSimLatency(5 * time.Millisecond)
	m.SetSimLatency(0) // reset
	m.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, KindMailbox, 7, nil)
			return
		}
		var msgs []Msg
		for len(msgs) == 0 {
			msgs = r.Recv(KindMailbox)
		}
		if msgs[0].Tag != 7 {
			t.Errorf("tag %d", msgs[0].Tag)
		}
	})
}
