package rt

// Fabric is the byte-transport choke point that lets a Machine span OS
// process boundaries. An in-process Machine hosts every rank and never
// consults it; a cluster Machine (NewClusterMachine) hosts a window of the
// global rank space and hands every message addressed outside that window to
// the fabric, which ships the bytes to the process hosting the destination
// and calls Deliver on that process's Machine.
//
// The fabric slots in UNDER the fault plane: Machine.send consults the
// installed Transport (drop / duplicate / delay / corrupt / stall verdicts)
// before routing, so internal/faults interposes on networked messages exactly
// as it does on loopback ones, and the reliable mailbox above survives the
// same injected faults either way. The fabric itself must preserve per
// (sender process → receiver process) FIFO order — the property TCP gives a
// single connection — because the perfect-transport contract the mailbox and
// collectives rely on is per-pair non-overtaking.

import "time"

// Fabric ships one message to the process hosting rank `to`. Implementations
// must be safe for concurrent use from every local rank goroutine, must not
// block indefinitely (rank loops call this inline), and must preserve the
// order of Send calls per destination process. delay is the fault-injected
// delivery postponement (zero on the perfect transport); it rides the wire so
// the receiving Machine can stamp the message's visibility horizon.
type Fabric interface {
	Send(from, to int, kind uint8, tag uint32, payload []byte, delay time.Duration)
}

// NewClusterMachine returns a Machine that is one process's share of a
// p-rank distributed machine: it hosts ranks [lo, hi) locally (goroutines,
// inboxes) and routes messages addressed to any other rank through the
// fabric. Size() still reports the global p, so topologies, collectives, and
// termination trees span the whole cluster; Run executes fn only for the
// local ranks.
func NewClusterMachine(p, lo, hi int, fabric Fabric) *Machine {
	if lo < 0 || hi > p || lo >= hi {
		panic("rt: cluster machine needs a non-empty local rank window inside [0, p)")
	}
	if fabric == nil && (lo != 0 || hi != p) {
		panic("rt: cluster machine with remote ranks needs a fabric")
	}
	m := NewMachine(p)
	m.localLo, m.localHi = lo, hi
	m.fabric = fabric
	return m
}

// LocalSize returns the number of ranks this process hosts (p for an
// in-process machine).
func (m *Machine) LocalSize() int { return m.localHi - m.localLo }

// LocalRange returns the half-open window of locally hosted ranks.
func (m *Machine) LocalRange() (lo, hi int) { return m.localLo, m.localHi }

// IsLocal reports whether rank r is hosted by this process.
func (m *Machine) IsLocal(r int) bool { return r >= m.localLo && r < m.localHi }

// Deliver injects a message received from the fabric into a local rank's
// inbox. It is the receive half of Fabric: the remote process's Machine
// routed the bytes here, and this call makes them drainable by the
// destination rank (after the fault-injected delay, if any). Safe for
// concurrent use from fabric reader goroutines.
func (m *Machine) Deliver(from, to int, kind uint8, tag uint32, payload []byte, delay time.Duration) {
	if !m.IsLocal(to) {
		panic("rt: fabric delivered a message for a rank this process does not host")
	}
	now := time.Now().UnixNano()
	msg := Msg{
		From: from, To: to, Kind: kind, Tag: tag, Payload: payload,
		sentAt:    now,
		deliverAt: now + int64(delay),
	}
	ib := &m.inboxes[to]
	ib.mu.Lock()
	ib.q = append(ib.q, msg)
	ib.mu.Unlock()
}
