package rt_test

// External-package leak tests for the machine runtime: check imports core,
// which imports rt, so the leak checker can only be used from rt_test. The
// machine must join every rank goroutine (and any transport worker) before
// Run returns — on the happy path, on panic recovery, and with an armed
// fault injector delaying traffic at exit time.

import (
	"testing"
	"time"

	"havoqgt/internal/check"
	"havoqgt/internal/faults"
	"havoqgt/internal/rt"
)

func TestMachineRunJoinsAllGoroutines(t *testing.T) {
	check.NoLeaks(t)
	for round := 0; round < 3; round++ {
		m := rt.NewMachine(4)
		m.Run(func(r *rt.Rank) {
			next := (r.Rank() + 1) % r.Size()
			for i := 0; i < 100; i++ {
				r.Send(next, rt.KindMailbox, 0, []byte{byte(i)})
			}
			got := 0
			for got < 100 {
				got += len(r.Recv(rt.KindMailbox))
			}
		})
	}
}

func TestMachineRunJoinsAfterRankPanic(t *testing.T) {
	check.NoLeaks(t)
	m := rt.NewMachine(4)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("rank panic did not propagate out of Run")
			}
		}()
		m.Run(func(r *rt.Rank) {
			if r.Rank() == 2 {
				panic("deliberate")
			}
			// Other ranks park briefly so the panicking rank wins the race;
			// Run must still reap them.
			time.Sleep(5 * time.Millisecond)
		})
	}()
}

func TestFaultInjectorWorkersExitWithMachine(t *testing.T) {
	check.NoLeaks(t)
	m := rt.NewMachine(3)
	inj := faults.New(faults.Plan{
		Seed: 0x1eaf,
		Msgs: []faults.MsgRule{{
			From: faults.Wildcard, To: faults.Wildcard, Kind: faults.Wildcard,
			Delay: 1.0, DelayMin: 200 * time.Microsecond, DelayMax: 2 * time.Millisecond,
		}},
	}, m.Obs())
	m.SetTransport(inj)
	inj.Arm()
	m.Run(func(r *rt.Rank) {
		next := (r.Rank() + 1) % r.Size()
		for i := 0; i < 50; i++ {
			r.Send(next, rt.KindMailbox, 0, nil)
		}
		got := 0
		for got < 50 {
			got += len(r.Recv(rt.KindMailbox))
		}
	})
	// Delayed deliveries may still be parked in timers when ranks return;
	// the leak check (with its settling window) verifies they all unwind.
}
