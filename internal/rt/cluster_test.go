package rt

import (
	"sync"
	"testing"
	"time"
)

// memFabric glues several cluster Machines together in one process: Send
// looks up the Machine hosting the destination rank and calls Deliver on it,
// copying the payload the way a wire would. Per-destination order is
// preserved (Deliver is called inline), matching the Fabric contract.
type memFabric struct {
	mu       sync.RWMutex
	machines []*Machine
}

func (f *memFabric) attach(m *Machine) {
	f.mu.Lock()
	f.machines = append(f.machines, m)
	f.mu.Unlock()
}

func (f *memFabric) Send(from, to int, kind uint8, tag uint32, payload []byte, delay time.Duration) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	for _, m := range f.machines {
		if m.IsLocal(to) {
			m.Deliver(from, to, kind, tag, append([]byte(nil), payload...), delay)
			return
		}
	}
	panic("memFabric: no machine hosts the destination rank")
}

// splitMachines builds one cluster Machine per contiguous window so that the
// windows partition [0, p).
func splitMachines(t *testing.T, p int, cuts []int) []*Machine {
	t.Helper()
	f := &memFabric{}
	var ms []*Machine
	lo := 0
	for _, hi := range append(cuts, p) {
		m := NewClusterMachine(p, lo, hi, f)
		f.attach(m)
		ms = append(ms, m)
		lo = hi
	}
	return ms
}

// runAll runs fn as one collective phase across every machine of the cluster,
// mirroring N processes each running their local window.
func runAll(ms []*Machine, fn func(*Rank)) {
	var wg sync.WaitGroup
	for _, m := range ms {
		wg.Add(1)
		go func(m *Machine) {
			defer wg.Done()
			m.Run(fn)
		}(m)
	}
	wg.Wait()
}

func TestClusterMachineWindows(t *testing.T) {
	ms := splitMachines(t, 8, []int{3, 5})
	wantLocal := [][2]int{{0, 3}, {3, 5}, {5, 8}}
	for i, m := range ms {
		if m.Size() != 8 {
			t.Fatalf("machine %d: Size() = %d, want 8", i, m.Size())
		}
		lo, hi := m.LocalRange()
		if lo != wantLocal[i][0] || hi != wantLocal[i][1] {
			t.Fatalf("machine %d: window [%d,%d), want %v", i, lo, hi, wantLocal[i])
		}
		if m.LocalSize() != hi-lo {
			t.Fatalf("machine %d: LocalSize() = %d, want %d", i, m.LocalSize(), hi-lo)
		}
		for r := 0; r < 8; r++ {
			if got, want := m.IsLocal(r), r >= lo && r < hi; got != want {
				t.Fatalf("machine %d: IsLocal(%d) = %v, want %v", i, r, got, want)
			}
		}
	}
}

// TestClusterMachinePointToPoint rings a message around the full rank space:
// every hop between machines crosses the fabric, every hop inside a window is
// a local inbox delivery.
func TestClusterMachinePointToPoint(t *testing.T) {
	const p = 6
	ms := splitMachines(t, p, []int{2, 4})
	got := make([]uint32, p)
	runAll(ms, func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, KindMailbox, 100, []byte{1})
			return
		}
		for {
			msgs := r.Recv(KindMailbox)
			if len(msgs) == 0 {
				time.Sleep(100 * time.Microsecond)
				continue
			}
			m := msgs[0]
			got[r.Rank()] = m.Tag
			if next := r.Rank() + 1; next < p {
				r.Send(next, KindMailbox, m.Tag+1, []byte{byte(next)})
			}
			return
		}
	})
	// Rank 0 never receives; ranks 1..p-1 see an incrementing tag chain.
	for r := 1; r < p; r++ {
		if got[r] != uint32(99+r) {
			t.Fatalf("rank %d saw tag %d, want %d", r, got[r], 99+r)
		}
	}
}

// TestClusterMachineCollectives runs the built-in collectives across machine
// boundaries: they are pure point-to-point message protocols, so a correct
// fabric makes them span processes untouched.
func TestClusterMachineCollectives(t *testing.T) {
	const p = 7
	ms := splitMachines(t, p, []int{1, 4})
	sums := make([]uint64, p)
	maxs := make([]uint64, p)
	runAll(ms, func(r *Rank) {
		sums[r.Rank()] = r.AllReduceU64(uint64(r.Rank()+1), Sum)
		maxs[r.Rank()] = r.AllReduceU64(uint64(r.Rank()*10), Max)
	})
	wantSum := uint64(p * (p + 1) / 2)
	wantMax := uint64((p - 1) * 10)
	for r := 0; r < p; r++ {
		if sums[r] != wantSum {
			t.Fatalf("rank %d: AllReduceSum = %d, want %d", r, sums[r], wantSum)
		}
		if maxs[r] != wantMax {
			t.Fatalf("rank %d: AllReduceMax = %d, want %d", r, maxs[r], wantMax)
		}
	}
}

// TestClusterMachineFaultChokePoint verifies the fault plane interposes on
// fabric-routed sends at the same choke point as local ones: a transport that
// drops everything starves the remote receiver, and the sticky
// ExclusiveDelivery latch flips exactly as in-process.
func TestClusterMachineFaultChokePoint(t *testing.T) {
	ms := splitMachines(t, 2, []int{1})
	ms[0].SetTransport(dropAll{})
	delivered := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		ms[0].Run(func(r *Rank) {
			if r.ExclusiveDelivery() {
				t.Error("ExclusiveDelivery must latch false once a transport is installed")
			}
			r.Send(1, KindMailbox, 7, []byte("dropped"))
		})
	}()
	go func() {
		defer wg.Done()
		ms[1].Run(func(r *Rank) {
			deadline := time.Now().Add(50 * time.Millisecond)
			for time.Now().Before(deadline) {
				if len(r.Recv(KindMailbox)) > 0 {
					close(delivered)
					return
				}
				time.Sleep(time.Millisecond)
			}
		})
	}()
	wg.Wait()
	select {
	case <-delivered:
		t.Fatal("drop-all transport let a fabric-routed message through")
	default:
	}
}

type dropAll struct{}

func (dropAll) Fate(from, to int, kind uint8, seq uint64, payloadLen int) Fate {
	return Fate{Drop: true}
}
func (dropAll) Stall(rank int) time.Duration { return 0 }

func TestDeliverPanicsOnRemoteRank(t *testing.T) {
	ms := splitMachines(t, 2, []int{1})
	defer func() {
		if recover() == nil {
			t.Fatal("Deliver for a non-local rank must panic")
		}
	}()
	ms[0].Deliver(0, 1, KindMailbox, 0, nil, 0)
}
