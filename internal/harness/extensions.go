package harness

import (
	"time"

	"havoqgt/internal/algos/cc"
	"havoqgt/internal/algos/sssp"
	"havoqgt/internal/algos/triangle"
	"havoqgt/internal/graph"
	"havoqgt/internal/rt"
)

// Extensions benchmarks the framework features beyond the paper's three
// evaluation kernels: SSSP and connected components (the other kernels of
// the authors' earlier asynchronous framework, §IV-A), the wedge-sampling
// approximate triangle counter (§VI-C's suggested extension), and the
// single-node multithreaded queue (Table II's Leviathan configuration).
func Extensions(s Sizing) *Table {
	t := &Table{
		Title:   "Extensions: SSSP, connected components, sampled triangles, single-node smp",
		Columns: []string{"kernel", "graph", "p", "time", "result"},
		Notes: []string{
			"these kernels are not in the paper's evaluation; they exercise the same visitor queue",
		},
	}
	p := min(8, s.MaxP)
	spec := RMATSpec(s.VertsPerRankLog2+2, s.Seed)

	// SSSP.
	var ssspTime time.Duration
	var maxDist uint64
	m := rt.NewMachine(p)
	m.Run(func(r *rt.Rank) {
		env, err := (CommonOpts{P: p, Topology: "2d", Seed: s.Seed}).setup(r, spec)
		if err != nil {
			panic(err)
		}
		src := pickSourcesDistributed(r, env, s.Seed)
		r.Barrier()
		if r.Rank() == 0 {
			m.ResetStats()
		}
		r.Barrier()
		start := time.Now()
		res := sssp.Run(r, env.part, src, s.Seed, (CommonOpts{P: p, Topology: "2d"}).coreConfig(env, 256))
		r.Barrier()
		elapsed := time.Since(start)
		if r.Rank() == 0 {
			RecordProfile(PhaseProfile{
				Graph: spec.Name, Algo: "sssp", Phase: "sssp.run",
				Topology: "2d", P: p,
				WallNS: elapsed.Nanoseconds(), Metrics: m.Obs().Snapshot(),
			})
		}
		lo, hi := env.part.Owners.MasterRange(env.part.Rank)
		var localMax uint64
		for v := lo; v < hi; v++ {
			i, _ := env.part.LocalIndex(graph.Vertex(v))
			if d := res.Dist[i]; d != sssp.Unreached && d > localMax {
				localMax = d
			}
		}
		g := r.AllReduceU64(localMax, rt.Max)
		if r.Rank() == 0 {
			ssspTime, maxDist = elapsed, g
		}
	})
	t.AddRow("sssp", spec.Name, p, ssspTime.Round(time.Millisecond), maxDist)

	// Connected components.
	var ccTime time.Duration
	var comps uint64
	m = rt.NewMachine(p)
	m.Run(func(r *rt.Rank) {
		env, err := (CommonOpts{P: p, Topology: "2d", Seed: s.Seed}).setup(r, spec)
		if err != nil {
			panic(err)
		}
		r.Barrier()
		if r.Rank() == 0 {
			m.ResetStats()
		}
		r.Barrier()
		start := time.Now()
		res := cc.Run(r, env.part, (CommonOpts{P: p, Topology: "2d"}).coreConfig(env, 256))
		r.Barrier()
		elapsed := time.Since(start)
		if r.Rank() == 0 {
			RecordProfile(PhaseProfile{
				Graph: spec.Name, Algo: "cc", Phase: "cc.run",
				Topology: "2d", P: p,
				WallNS: elapsed.Nanoseconds(), Metrics: m.Obs().Snapshot(),
			})
		}
		n := cc.NumComponents(r, res)
		if r.Rank() == 0 {
			ccTime, comps = elapsed, n
		}
	})
	t.AddRow("cc", spec.Name, p, ccTime.Round(time.Millisecond), comps)

	// Exact vs sampled triangle counting.
	swSpec := SWSpec(uint64(1)<<(s.VertsPerRankLog2+1), 16, 0.05, s.Seed)
	exact, err := RunTriangles(TriangleOpts{CommonOpts: CommonOpts{P: p, Topology: "2d", Seed: s.Seed}, Graph: swSpec})
	if err != nil {
		panic(err)
	}
	t.AddRow("tc-exact", swSpec.Name, p, exact.Time.Round(time.Millisecond), exact.Triangles)

	var sampTime time.Duration
	var estimate float64
	m = rt.NewMachine(p)
	m.Run(func(r *rt.Rank) {
		opts := CommonOpts{P: p, Topology: "2d", Simplify: true, Seed: s.Seed}
		env, err := opts.setup(r, swSpec)
		if err != nil {
			panic(err)
		}
		r.Barrier()
		start := time.Now()
		res := triangle.RunOpts(r, env.part, opts.coreConfig(env, 0),
			triangle.Options{SampleProb: 0.25, SampleSeed: s.Seed})
		r.Barrier()
		elapsed := time.Since(start)
		if r.Rank() == 0 {
			sampTime, estimate = elapsed, res.Estimate()
		}
	})
	t.AddRow("tc-sampled-25%", swSpec.Name, p, sampTime.Round(time.Millisecond), uint64(estimate))

	// Single-node multithreaded BFS (Leviathan-style, DRAM).
	start := time.Now()
	smpTEPS, err := RunSMPBFS(spec, 4, nil, s.Sources, s.Seed)
	if err != nil {
		panic(err)
	}
	t.AddRow("smp-bfs (1 node, 4 threads)", spec.Name, 1, time.Since(start).Round(time.Millisecond), uint64(smpTEPS))
	return t
}

// pickSourcesDistributed picks one valid source (helper for extensions).
func pickSourcesDistributed(r *rt.Rank, env *rankEnv, seed uint64) graph.Vertex {
	srcs := pickSources(r, env.part, 1, seed)
	if len(srcs) == 0 {
		return 0
	}
	return srcs[0]
}
