package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"havoqgt/internal/obs"
)

// PhaseProfile is the communication profile of one timed experiment phase
// (one traversal), captured from the simulated machine's obs.Registry
// between phase-bracketing barriers. Every figure/table row the harness
// produces can be joined against these profiles: messages, bytes, and hops
// per rank and per kind, mailbox aggregation behaviour, termination waves,
// and the phase spans recorded by the algorithm drivers — all sourced from
// internal/obs, not from ad-hoc subsystem counters.
type PhaseProfile struct {
	Graph    string       `json:"graph"`
	Algo     string       `json:"algo"`
	Phase    string       `json:"phase"`
	Topology string       `json:"topology"`
	P        int          `json:"p"`
	WallNS   int64        `json:"wall_ns"`
	Metrics  obs.Snapshot `json:"metrics"`
}

// profileLog collects every phase profile of the process, in order.
// Access is mutex-guarded so concurrent experiments (parallel tests) stay
// safe.
var profileLog struct {
	mu       sync.Mutex
	profiles []PhaseProfile
}

// RecordProfile appends one phase profile to the process-wide log.
func RecordProfile(p PhaseProfile) {
	profileLog.mu.Lock()
	profileLog.profiles = append(profileLog.profiles, p)
	profileLog.mu.Unlock()
}

// Profiles returns a copy of the recorded phase profiles.
func Profiles() []PhaseProfile {
	profileLog.mu.Lock()
	defer profileLog.mu.Unlock()
	return append([]PhaseProfile(nil), profileLog.profiles...)
}

// ResetProfiles clears the profile log (between experiment batches).
func ResetProfiles() {
	profileLog.mu.Lock()
	profileLog.profiles = nil
	profileLog.mu.Unlock()
}

// WriteProfilesJSON writes all recorded phase profiles as one indented JSON
// array.
func WriteProfilesJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Profiles())
}

// WriteProfilesCSV writes one row per (phase, metric): the flat join of the
// profile header with the snapshot's counter totals, ready for plotting the
// paper's communication figures.
func WriteProfilesCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"graph", "algo", "phase", "topology", "p", "wall_ns", "metric", "value"}); err != nil {
		return err
	}
	for _, p := range Profiles() {
		base := []string{p.Graph, p.Algo, p.Phase, p.Topology, fmt.Sprint(p.P), fmt.Sprint(p.WallNS)}
		names := make([]string, 0, len(p.Metrics.Counters))
		for name := range p.Metrics.Counters {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			row := append(append([]string(nil), base...), name, fmt.Sprint(p.Metrics.Counters[name]))
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
