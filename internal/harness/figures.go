package harness

import (
	"fmt"
	"time"

	"havoqgt/internal/generators"
	"havoqgt/internal/graph"
	"havoqgt/internal/mailbox"
	"havoqgt/internal/partition"
	"havoqgt/internal/ref"
	"havoqgt/internal/rt"
)

// Sizing scales every experiment. Defaults reproduce the paper's series
// shapes at laptop scale; the paper's own parameters are recorded in the
// notes of each table.
type Sizing struct {
	Seed uint64
	// MaxP is the largest simulated rank count in weak-scaling sweeps.
	MaxP int
	// VertsPerRankLog2 is the weak-scaling vertices-per-rank exponent
	// (paper: 18 on BG/P).
	VertsPerRankLog2 uint
	// HubScaleMax is the largest RMAT scale in the hub-growth census
	// (paper: 30).
	HubScaleMax uint
	// Sources is the number of BFS roots per measurement.
	Sources int
}

// DefaultSizing targets tens of seconds for the full experiment suite.
func DefaultSizing() Sizing {
	return Sizing{
		Seed:             42,
		MaxP:             16,
		VertsPerRankLog2: 12,
		HubScaleMax:      20,
		Sources:          4,
	}
}

// BenchSizing targets sub-second per-experiment runs for testing.B loops.
func BenchSizing() Sizing {
	return Sizing{
		Seed:             42,
		MaxP:             4,
		VertsPerRankLog2: 10,
		HubScaleMax:      14,
		Sources:          1,
	}
}

func (s Sizing) pSweep() []int {
	var ps []int
	for p := 1; p <= s.MaxP; p *= 2 {
		ps = append(ps, p)
	}
	return ps
}

// Figure1 reproduces the hub-growth census: total edges belonging to the
// max-degree vertex and to vertices with degree >= 1,000 and >= 10,000, as
// RMAT scale grows.
func Figure1(s Sizing) *Table {
	t := &Table{
		Title:   "Figure 1: hub growth for Graph500 (RMAT) graphs",
		Columns: []string{"scale", "vertices", "undirected-edges", "max-degree", "edges-deg>=1k", "edges-deg>=10k"},
		Notes: []string{
			"paper sweeps scale up to 30; average degree fixed at 16 (undirected 32)",
			"expected shape: all three hub series grow steadily with scale",
		},
	}
	for scale := s.HubScaleMax - 6; scale <= s.HubScaleMax; scale++ {
		g := generators.NewGraph500(scale, s.Seed)
		edges := graph.Undirect(g.Generate())
		deg := graph.OutDegrees(edges, g.NumVertices())
		c := graph.Census(deg)
		t.AddRow(scale, c.NumVertices, c.NumEdges/2, c.MaxDegree, c.EdgesDeg1K, c.EdgesDeg10K)
	}
	return t
}

// Figure2 reproduces the weak-scaled partition-imbalance comparison of 1D
// and 2D block partitioning (plus the paper's edge-list partitioning, which
// is balanced by construction).
func Figure2(s Sizing) *Table {
	// Imbalance is a pure counting model (no simulated machine), so the
	// sweep extends well past the traversal experiments' rank counts; the
	// 1D-vs-2D gap emerges once the max hub degree approaches |E|/p.
	verts := s.VertsPerRankLog2 - 2
	t := &Table{
		Title:   "Figure 2: weak scaling of partition imbalance (max/mean edges per partition)",
		Columns: []string{"p", "scale", "imbalance-1d", "imbalance-2d", "imbalance-edgelist"},
		Notes: []string{
			fmt.Sprintf("weak scaled at 2^%d vertices per partition (paper: 2^18)", verts),
			"expected shape: 1D grows with p, 2D stays low, edge-list is exactly balanced",
		},
	}
	var ps []int
	for p := 4; p <= 64*s.MaxP && verts+log2(p) <= s.HubScaleMax; p *= 4 {
		ps = append(ps, p)
	}
	for _, p := range ps {
		scale := verts + log2(p)
		g := generators.NewGraph500(scale, s.Seed)
		edges := graph.Undirect(g.Generate())
		n := g.NumVertices()
		t.AddRow(p, scale,
			partition.Imbalance(partition.OneDEdgeCounts(edges, n, p)),
			partition.Imbalance(partition.TwoDEdgeCounts(edges, n, p)),
			partition.Imbalance(partition.EdgeListEdgeCounts(uint64(len(edges)), p)),
		)
	}
	return t
}

// Figure3 demonstrates edge list partitioning on the paper's example graph
// (8 vertices, 16 edges, 4 partitions).
func Figure3() *Table {
	src := []graph.Vertex{0, 1, 1, 2, 2, 2, 2, 2, 2, 3, 4, 5, 5, 6, 7, 7}
	dst := []graph.Vertex{1, 0, 2, 1, 3, 4, 5, 6, 7, 2, 2, 2, 7, 2, 2, 5}
	edges := make([]graph.Edge, len(src))
	for i := range src {
		edges[i] = graph.Edge{Src: src[i], Dst: dst[i]}
	}
	const p = 4
	t := &Table{
		Title:   "Figure 3: edge list partitioning example (8 vertices, 16 edges, 4 partitions)",
		Columns: []string{"partition", "edges", "first-src", "last-src", "forwards-to", "min_owner(2)", "min_owner(5)"},
		Notes: []string{
			"expected: vertices 2 and 5 span partitions; min_owner(2)=0, max_owner(2)=2, min_owner(5)=2, max_owner(5)=3",
		},
	}
	parts := make([]*partition.Part, p)
	m := rt.NewMachine(p)
	m.Run(func(r *rt.Rank) {
		var local []graph.Edge
		for i, e := range edges {
			if i%p == r.Rank() {
				local = append(local, e)
			}
		}
		part, err := partition.BuildEdgeList(r, local, 8)
		if err != nil {
			panic(err)
		}
		parts[r.Rank()] = part
	})
	for rank, part := range parts {
		var first, last, fwd string = "-", "-", "-"
		if part.CSR.NumEdges() > 0 {
			for row := 0; row < part.CSR.NumRows(); row++ {
				if part.CSR.Degree(row) > 0 {
					if first == "-" {
						first = fmt.Sprint(part.Vertex(row))
					}
					last = fmt.Sprint(part.Vertex(row))
				}
			}
		}
		if part.HasForward {
			fwd = fmt.Sprintf("v%d->rank%d", part.ForwardVertex, part.ForwardTo)
		}
		t.AddRow(rank, part.LocalEdges(), first, last, fwd,
			part.Master(2), part.Master(5))
	}
	return t
}

// Figure4 demonstrates 2D communicator routing for 16 ranks, including the
// paper's example route 11 -> 9 -> 5, and the channel-count reductions of 2D
// and 3D routing.
func Figure4(s Sizing) *Table {
	t := &Table{
		Title:   "Figure 4: routed mailbox topologies (channels per rank, hops)",
		Columns: []string{"p", "topology", "max-channels", "hops", "route 11->5 (p=16)"},
		Notes: []string{
			"expected: 2D routes rank 11 to rank 5 through rank 9; channels drop from p-1 to O(sqrt p) / O(p^(1/3))",
		},
	}
	for _, p := range []int{16, 64, 256} {
		for _, name := range []string{"1d", "2d", "3d"} {
			topo, err := mailbox.ByName(name, p)
			if err != nil {
				panic(err)
			}
			route := "-"
			if p == 16 {
				hops := []int{11}
				cur := 11
				for cur != 5 {
					cur = topo.NextHop(cur, 5)
					hops = append(hops, cur)
				}
				route = fmt.Sprint(hops)
			}
			t.AddRow(p, name, topo.MaxChannels(), topo.Diameter(), route)
		}
	}
	return t
}

// Figure5 reproduces the weak scaling of asynchronous BFS on RMAT graphs,
// with a sequential in-memory reference point (standing in for the Graph500
// reference series the paper compares against).
func Figure5(s Sizing) *Table {
	t := &Table{
		Title:   "Figure 5: weak scaling of asynchronous BFS (RMAT)",
		Columns: []string{"p", "scale", "edges", "TEPS", "TEPS/rank", "visitors", "ghost-filtered", "seq-ref-TEPS"},
		Notes: []string{
			fmt.Sprintf("weak scaled at 2^%d vertices per rank (paper: 2^18, up to 131K cores)", s.VertsPerRankLog2),
			"256 ghosts per partition, 3d routed mailbox, as in the paper's BFS runs",
			"all ranks share one host: aggregate TEPS saturating at the core count is expected;",
			"the paper's shape claim is near-linear weak scaling of TEPS with p",
		},
	}
	for _, p := range s.pSweep() {
		scale := s.VertsPerRankLog2 + log2(p)
		spec := RMATSpec(scale, s.Seed)
		res, err := RunBFS(BFSOpts{
			CommonOpts: CommonOpts{P: p, Topology: "3d", Seed: s.Seed},
			Graph:      spec,
			Sources:    s.Sources,
			Ghosts:     256,
		})
		if err != nil {
			panic(err)
		}
		seqTEPS := sequentialBFSTEPS(spec, s.Sources, s.Seed)
		t.AddRow(p, scale, res.GlobalEdges/2, res.TEPS, res.TEPS/float64(p),
			res.Stats.VisitorsExecuted, res.Stats.GhostFiltered, seqTEPS)
	}
	return t
}

// sequentialBFSTEPS times the in-memory reference BFS on the same graph.
func sequentialBFSTEPS(spec GraphSpec, sources int, seed uint64) float64 {
	edges := graph.Undirect(spec.GenChunk(0, 1))
	adj := ref.BuildAdj(edges, spec.NumVertices)
	var total time.Duration
	var traversed uint64
	for i := 0; i < sources; i++ {
		src := pickSequentialSource(adj, seed+uint64(i))
		start := time.Now()
		levels, _ := ref.BFS(adj, src)
		total += time.Since(start)
		traversed += ref.ReachedEdges(adj, levels)
	}
	if total == 0 {
		return 0
	}
	return float64(traversed) / total.Seconds()
}

// Figure6 reproduces the weak scaling of k-core decomposition on RMAT
// graphs, computing cores 4, 16, and 64.
func Figure6(s Sizing) *Table {
	t := &Table{
		Title:   "Figure 6: weak scaling of k-core decomposition (RMAT), k = 4, 16, 64",
		Columns: []string{"p", "scale", "k", "time", "core-size", "visitors"},
		Notes: []string{
			fmt.Sprintf("weak scaled at 2^%d vertices per rank (paper: 2^18 vertices, 2^22 undirected edges per core)", s.VertsPerRankLog2),
			"expected shape: near-linear weak scaling (time roughly flat as p grows with the graph)",
		},
	}
	for _, p := range s.pSweep() {
		scale := s.VertsPerRankLog2 + log2(p)
		results, err := RunKCore(KCoreOpts{
			CommonOpts: CommonOpts{P: p, Topology: "3d", Seed: s.Seed},
			Graph:      RMATSpec(scale, s.Seed),
			Ks:         []uint32{4, 16, 64},
		})
		if err != nil {
			panic(err)
		}
		for _, res := range results {
			t.AddRow(p, scale, res.K, res.Time.Round(time.Millisecond), res.CoreSize, res.Stats.VisitorsExecuted)
		}
	}
	return t
}

// Figure7 reproduces the weak scaling of triangle counting on Small World
// graphs at rewire probabilities 0%, 10%, 20%, 30%.
func Figure7(s Sizing) *Table {
	t := &Table{
		Title:   "Figure 7: weak scaling of triangle counting (Small World, degree 32)",
		Columns: []string{"p", "n", "rewire", "time", "triangles", "visitors"},
		Notes: []string{
			"small-world graphs isolate hub effects: uniform degree, rewire controls structure",
			"expected shape: rewiring destroys ring triangles; time stays near-flat under weak scaling",
		},
	}
	for _, p := range s.pSweep() {
		n := uint64(p) << (s.VertsPerRankLog2 - 1)
		for _, rw := range []float64{0, 0.1, 0.2, 0.3} {
			res, err := RunTriangles(TriangleOpts{
				CommonOpts: CommonOpts{P: p, Topology: "3d", Seed: s.Seed},
				Graph:      SWSpec(n, 32, rw, s.Seed),
			})
			if err != nil {
				panic(err)
			}
			t.AddRow(p, n, rw, res.Time.Round(time.Millisecond), res.Triangles, res.Stats.VisitorsExecuted)
		}
	}
	return t
}

// Figure10 reproduces the diameter effect on BFS: Small World graphs of
// fixed size whose rewire probability controls the diameter; BFS level depth
// is the x-axis as in the paper.
func Figure10(s Sizing) *Table {
	t := &Table{
		Title:   "Figure 10: effect of graph diameter on BFS performance (Small World)",
		Columns: []string{"rewire", "bfs-depth", "time", "TEPS"},
		Notes: []string{
			"fixed graph size and rank count; decreasing rewire increases diameter",
			"expected shape: BFS time grows (TEPS falls) with BFS level depth",
		},
	}
	p := min(8, s.MaxP)
	n := uint64(1) << (s.VertsPerRankLog2 + 2)
	for _, rw := range []float64{0.3, 0.1, 0.03, 0.01, 0.003, 0.001} {
		res, err := RunBFS(BFSOpts{
			CommonOpts: CommonOpts{P: p, Topology: "2d", Seed: s.Seed},
			Graph:      SWSpec(n, 16, rw, s.Seed),
			Sources:    1,
			Ghosts:     256,
		})
		if err != nil {
			panic(err)
		}
		t.AddRow(rw, res.MaxLevel, res.TotalTime.Round(time.Millisecond), res.TEPS)
	}
	return t
}

// Figure11 reproduces the max-degree effect on triangle counting:
// preferential-attachment graphs of fixed size whose rewire probability
// flattens the hubs; maximum vertex degree is the x-axis.
func Figure11(s Sizing) *Table {
	t := &Table{
		Title:   "Figure 11: effect of max vertex degree on triangle counting (PA + rewire)",
		Columns: []string{"rewire", "max-degree", "time", "triangles", "visitors"},
		Notes: []string{
			"fixed graph size and rank count; lower rewire -> heavier hubs",
			"expected shape: time grows with maximum vertex degree",
		},
	}
	p := min(8, s.MaxP)
	n := uint64(1) << s.VertsPerRankLog2
	for _, rw := range []float64{1.0, 0.75, 0.5, 0.25, 0.0} {
		res, err := RunTriangles(TriangleOpts{
			CommonOpts: CommonOpts{P: p, Topology: "2d", Seed: s.Seed},
			Graph:      PASpec(n, 8, rw, s.Seed),
		})
		if err != nil {
			panic(err)
		}
		t.AddRow(rw, res.MaxDegree, res.Time.Round(time.Millisecond), res.Triangles, res.Stats.VisitorsExecuted)
	}
	return t
}

// Figure12 reproduces the edge list partitioning vs 1D comparison for BFS on
// RMAT graphs (the paper reduces graph sizes so 1D does not run out of
// memory).
func Figure12(s Sizing) *Table {
	t := &Table{
		Title:   "Figure 12: edge list partitioning vs 1D (BFS on RMAT)",
		Columns: []string{"p", "scale", "TEPS-edgelist", "TEPS-1d", "edgelist/1d", "imbalance-1d"},
		Notes: []string{
			fmt.Sprintf("weak scaled at 2^%d vertices per rank (paper: 2^17, reduced for 1D feasibility)", s.VertsPerRankLog2-1),
			"expected shape: edge-list stays near-linear; 1D slows down as hub imbalance grows",
		},
	}
	for _, p := range s.pSweep() {
		scale := s.VertsPerRankLog2 - 1 + log2(p)
		spec := RMATSpec(scale, s.Seed)
		el, err := RunBFS(BFSOpts{
			CommonOpts: CommonOpts{P: p, Topology: "2d", Partition: EdgeList, Seed: s.Seed},
			Graph:      spec, Sources: s.Sources, Ghosts: 256,
		})
		if err != nil {
			panic(err)
		}
		oned, err := RunBFS(BFSOpts{
			CommonOpts: CommonOpts{P: p, Topology: "2d", Partition: OneD, Seed: s.Seed},
			Graph:      spec, Sources: s.Sources, Ghosts: 256,
		})
		if err != nil {
			panic(err)
		}
		g := generators.NewGraph500(scale, s.Seed)
		und := graph.Undirect(g.Generate())
		imb := partition.Imbalance(partition.OneDEdgeCounts(und, g.NumVertices(), p))
		ratio := 0.0
		if oned.TEPS > 0 {
			ratio = el.TEPS / oned.TEPS
		}
		t.AddRow(p, scale, el.TEPS, oned.TEPS, ratio, imb)
	}
	return t
}

// Figure13 reproduces the ghost-vertex sweep: percent BFS improvement of k
// ghosts per partition over no ghosts.
func Figure13(s Sizing) *Table {
	t := &Table{
		Title:   "Figure 13: percent improvement of ghost vertices vs no ghosts (BFS, RMAT)",
		Columns: []string{"ghosts", "TEPS", "improvement-%", "ghost-filtered-visitors"},
		Notes: []string{
			"paper: 4096 cores, 2^30 vertices; 1 ghost already gives >12%, 512 gives 19.5%",
			"expected shape: monotone-ish improvement, saturating by a few hundred ghosts",
		},
	}
	p := min(8, s.MaxP)
	scale := s.VertsPerRankLog2 + 3
	spec := RMATSpec(scale, s.Seed)
	base, err := RunBFS(BFSOpts{
		CommonOpts: CommonOpts{P: p, Topology: "2d", Seed: s.Seed},
		Graph:      spec, Sources: s.Sources, Ghosts: 0,
	})
	if err != nil {
		panic(err)
	}
	t.AddRow(0, base.TEPS, 0.0, 0)
	for _, k := range []int{1, 4, 16, 64, 256, 512} {
		res, err := RunBFS(BFSOpts{
			CommonOpts: CommonOpts{P: p, Topology: "2d", Seed: s.Seed},
			Graph:      spec, Sources: s.Sources, Ghosts: k,
		})
		if err != nil {
			panic(err)
		}
		imp := 0.0
		if base.TEPS > 0 {
			imp = 100 * (res.TEPS - base.TEPS) / base.TEPS
		}
		t.AddRow(k, res.TEPS, imp, res.Stats.GhostFiltered)
	}
	return t
}

// log2 of a positive power of two (or floor(log2) otherwise).
func log2(p int) uint {
	var l uint
	for p > 1 {
		p >>= 1
		l++
	}
	return l
}

// pickSequentialSource returns the first vertex with edges at or after a
// seeded offset — deterministic per (graph, seed).
func pickSequentialSource(adj ref.Adj, seed uint64) graph.Vertex {
	n := uint64(len(adj))
	start := (seed*2654435761 + 12345) % n
	for i := uint64(0); i < n; i++ {
		v := graph.Vertex((start + i) % n)
		if len(adj[v]) > 0 {
			return v
		}
	}
	return 0
}
