package harness

import (
	"fmt"
	"strings"
	"testing"

	"havoqgt/internal/extmem"
	"havoqgt/internal/rt"
)

func tinySizing() Sizing {
	return Sizing{Seed: 42, MaxP: 4, VertsPerRankLog2: 9, HubScaleMax: 12, Sources: 2}
}

func TestRunBFSSmoke(t *testing.T) {
	res, err := RunBFS(BFSOpts{
		CommonOpts: CommonOpts{P: 4, Topology: "2d", Seed: 1},
		Graph:      RMATSpec(10, 1),
		Sources:    2,
		Ghosts:     64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TEPS <= 0 || res.TraversedEdges == 0 {
		t.Fatalf("BFS produced no work: %+v", res)
	}
	if res.Stats.VisitorsExecuted == 0 {
		t.Fatal("no visitors executed")
	}
	if res.GlobalEdges == 0 || res.NumVertices != 1024 {
		t.Fatalf("graph metadata wrong: %+v", res)
	}
}

func TestRunBFSExternalMemory(t *testing.T) {
	nv := extmem.DefaultNVRAM()
	nv.Latency = 0 // keep the test fast; the cache path is what we exercise
	nv.CacheBytes = 1 << 14
	res, err := RunBFS(BFSOpts{
		CommonOpts: CommonOpts{P: 2, NVRAM: &nv, Seed: 1},
		Graph:      RMATSpec(10, 1),
		Sources:    1,
		Ghosts:     0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache.Hits+res.Cache.Misses == 0 {
		t.Fatal("external run never touched the page cache")
	}
}

func TestRunKCoreSmoke(t *testing.T) {
	results, err := RunKCore(KCoreOpts{
		CommonOpts: CommonOpts{P: 3, Seed: 2},
		Graph:      RMATSpec(9, 2),
		Ks:         []uint32{2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("expected 2 results, got %d", len(results))
	}
	// Monotonicity: the 4-core is contained in the 2-core.
	if results[1].CoreSize > results[0].CoreSize {
		t.Fatalf("4-core (%d) larger than 2-core (%d)", results[1].CoreSize, results[0].CoreSize)
	}
}

func TestRunTrianglesSmoke(t *testing.T) {
	res, err := RunTriangles(TriangleOpts{
		CommonOpts: CommonOpts{P: 3, Seed: 3},
		Graph:      SWSpec(1<<9, 8, 0.05, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	// A low-rewire ring lattice of degree 8 is triangle-rich.
	if res.Triangles == 0 {
		t.Fatal("small-world graph reported zero triangles")
	}
	if res.MaxDegree == 0 {
		t.Fatal("max degree not computed")
	}
}

func TestFigure1Shape(t *testing.T) {
	tab := Figure1(tinySizing())
	if len(tab.Rows) < 3 {
		t.Fatalf("too few rows: %d", len(tab.Rows))
	}
	// Hub series must grow with scale: compare first and last max-degree.
	first := tab.Rows[0]
	last := tab.Rows[len(tab.Rows)-1]
	if first[3] >= last[3] && len(first[3]) >= len(last[3]) {
		t.Fatalf("max degree did not grow: %s -> %s", first[3], last[3])
	}
}

func TestFigure2Shape(t *testing.T) {
	tab := Figure2(tinySizing())
	lastRow := tab.Rows[len(tab.Rows)-1]
	var i1d, iel float64
	if _, err := sscan(lastRow[2], &i1d); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(lastRow[4], &iel); err != nil {
		t.Fatal(err)
	}
	if i1d <= iel {
		t.Fatalf("1D imbalance %v not worse than edge-list %v", i1d, iel)
	}
	if iel > 1.01 {
		t.Fatalf("edge-list imbalance %v", iel)
	}
}

func TestFigure3MatchesPaper(t *testing.T) {
	tab := Figure3()
	if len(tab.Rows) != 4 {
		t.Fatalf("expected 4 partitions, got %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[1] != "4" {
			t.Fatalf("partition %s has %s edges, want 4", row[0], row[1])
		}
		if row[5] != "0" || row[6] != "2" {
			t.Fatalf("owners wrong: min_owner(2)=%s min_owner(5)=%s", row[5], row[6])
		}
	}
}

func TestFigure4Route(t *testing.T) {
	tab := Figure4(tinySizing())
	found := false
	for _, row := range tab.Rows {
		if row[0] == "16" && row[1] == "2d" {
			if !strings.Contains(row[4], "[11 9 5]") {
				t.Fatalf("2D route = %s, want [11 9 5]", row[4])
			}
			found = true
		}
	}
	if !found {
		t.Fatal("p=16 2d row missing")
	}
}

func TestFigure5Runs(t *testing.T) {
	tab := Figure5(tinySizing())
	if len(tab.Rows) != 3 { // p = 1, 2, 4
		t.Fatalf("expected 3 rows, got %d", len(tab.Rows))
	}
}

func TestFigure13GhostsImprove(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy figure runner")
	}
	s := tinySizing()
	s.VertsPerRankLog2 = 10
	tab := Figure13(s)
	// The last rows must show nonzero ghost-filtered visitors.
	last := tab.Rows[len(tab.Rows)-1]
	if last[3] == "0" {
		t.Fatal("512 ghosts filtered nothing")
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{Title: "t", Columns: []string{"a", "b"}, Notes: []string{"n"}}
	tab.AddRow(1, 2.5)
	out := tab.String()
	for _, want := range []string{"== t ==", "a", "b", "1", "2.5", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// sscan parses a float.
func sscan(s string, f *float64) (int, error) {
	return fmt.Sscan(s, f)
}

// Full-figure smoke tests are moderately heavy; skip them in -short runs.

func TestFigure6Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy figure runner")
	}
	tab := Figure6(tinySizing())
	if len(tab.Rows) != 9 { // 3 rank counts x 3 k values
		t.Fatalf("expected 9 rows, got %d", len(tab.Rows))
	}
}

func TestFigure7Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy figure runner")
	}
	tab := Figure7(tinySizing())
	if len(tab.Rows) != 12 { // 3 rank counts x 4 rewire probabilities
		t.Fatalf("expected 12 rows, got %d", len(tab.Rows))
	}
	// Rewire 0 (first row per p) must be triangle-rich; ring triangles decay
	// with rewire.
	var t0, t3 float64
	if _, err := sscan(tab.Rows[0][4], &t0); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(tab.Rows[3][4], &t3); err != nil {
		t.Fatal(err)
	}
	if t0 <= t3 {
		t.Fatalf("rewiring should destroy triangles: %v -> %v", t0, t3)
	}
}

func TestFigure8Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy figure runner")
	}
	s := tinySizing()
	s.MaxP = 2
	tab := Figure8(s)
	if len(tab.Rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(tab.Rows))
	}
}

func TestFigure10DiameterShape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy figure runner")
	}
	tab := Figure10(tinySizing())
	// BFS depth must increase as rewire decreases (rows are ordered from
	// high rewire to low).
	var first, last float64
	if _, err := sscan(tab.Rows[0][1], &first); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(tab.Rows[len(tab.Rows)-1][1], &last); err != nil {
		t.Fatal(err)
	}
	if last <= first {
		t.Fatalf("diameter did not grow as rewire fell: depth %v -> %v", first, last)
	}
}

func TestFigure11MaxDegreeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy figure runner")
	}
	tab := Figure11(tinySizing())
	// Max degree must grow as rewire falls (rows ordered 1.0 -> 0.0).
	var first, last float64
	if _, err := sscan(tab.Rows[0][1], &first); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(tab.Rows[len(tab.Rows)-1][1], &last); err != nil {
		t.Fatal(err)
	}
	if last <= first {
		t.Fatalf("max degree did not grow as rewire fell: %v -> %v", first, last)
	}
}

func TestFigure12Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy figure runner")
	}
	tab := Figure12(tinySizing())
	if len(tab.Rows) != 3 {
		t.Fatalf("expected 3 rows, got %d", len(tab.Rows))
	}
}

func TestTableIIRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy figure runner")
	}
	s := tinySizing()
	tab := TableII(s)
	if len(tab.Rows) != 4 {
		t.Fatalf("expected 4 machine rows, got %d", len(tab.Rows))
	}
}

func TestRunBFSWithValidation(t *testing.T) {
	res, err := RunBFS(BFSOpts{
		CommonOpts: CommonOpts{P: 3, Topology: "2d", Seed: 4},
		Graph:      RMATSpec(9, 4),
		Sources:    2,
		Ghosts:     64,
		Validate:   true, // panics inside if the traversal is wrong
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TEPS <= 0 {
		t.Fatal("no TEPS")
	}
}

func TestRunSMPBFS(t *testing.T) {
	teps, err := RunSMPBFS(RMATSpec(10, 2), 4, nil, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if teps <= 0 {
		t.Fatal("no TEPS from smp run")
	}
	nv := extmem.DefaultNVRAM()
	nv.Latency = 0
	nv.CacheBytes = 1 << 14
	teps2, err := RunSMPBFS(RMATSpec(10, 2), 4, &nv, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if teps2 <= 0 {
		t.Fatal("no TEPS from external smp run")
	}
}

func TestExtensionsRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	tab := Extensions(tinySizing())
	if len(tab.Rows) != 5 {
		t.Fatalf("expected 5 extension rows, got %d", len(tab.Rows))
	}
}

func TestPickSourcesDeterministicAcrossRanks(t *testing.T) {
	// Every rank must derive the same source list without coordination
	// beyond the degree check.
	spec := RMATSpec(9, 6)
	lists := make([][]uint64, 3)
	rt.NewMachine(3).Run(func(r *rt.Rank) {
		env, err := (CommonOpts{P: 3, Seed: 6}).setup(r, spec)
		if err != nil {
			panic(err)
		}
		srcs := pickSources(r, env.part, 4, 6)
		vals := make([]uint64, len(srcs))
		for i, s := range srcs {
			vals[i] = uint64(s)
		}
		lists[r.Rank()] = vals
	})
	for rank := 1; rank < 3; rank++ {
		if len(lists[rank]) != len(lists[0]) {
			t.Fatalf("rank %d picked %d sources, rank 0 picked %d", rank, len(lists[rank]), len(lists[0]))
		}
		for i := range lists[0] {
			if lists[rank][i] != lists[0][i] {
				t.Fatalf("rank %d source %d differs", rank, i)
			}
		}
	}
	// All picked sources must have edges.
	if len(lists[0]) != 4 {
		t.Fatalf("wanted 4 sources, got %d", len(lists[0]))
	}
}
