package harness

import (
	"encoding/binary"
	"fmt"

	"havoqgt/internal/algos/bfs"
	"havoqgt/internal/graph"
	"havoqgt/internal/partition"
	"havoqgt/internal/rt"
)

// ValidateBFS performs distributed Graph500-style validation of a BFS
// result, collectively across all ranks:
//
//  1. the source has level 0 and is its own parent;
//  2. a vertex is unreached iff it has no parent;
//  3. every reached vertex's parent is reached at exactly level-1;
//  4. for every stored edge (u, v): if u is reached then v is reached and
//     their levels differ by at most 1.
//
// Levels of remote vertices are fetched with one request/response exchange
// against their master partitions. Returns nil when every rank's checks
// pass; otherwise an error describing the first local failure.
func ValidateBFS(r *rt.Rank, part *partition.Part, b *bfs.BFS, source graph.Vertex) error {
	var firstErr error
	fail := func(format string, args ...any) {
		if firstErr == nil {
			firstErr = fmt.Errorf(format, args...)
		}
	}

	localLevel := func(v graph.Vertex) (uint32, bool) {
		i, ok := part.LocalIndex(v)
		if !ok {
			return 0, false
		}
		return b.Level[i], true
	}

	// (1) and (2): local structural checks over the master range.
	lo, hi := part.Owners.MasterRange(part.Rank)
	for u := lo; u < hi; u++ {
		v := graph.Vertex(u)
		i, _ := part.LocalIndex(v)
		lvl, par := b.Level[i], b.Parent[i]
		switch {
		case v == source:
			if lvl != 0 || par != source {
				fail("source %d has level %d parent %d", v, lvl, par)
			}
		case lvl == bfs.Unreached:
			if par != graph.Nil {
				fail("unreached vertex %d has parent %d", v, par)
			}
		default:
			if par == graph.Nil {
				fail("reached vertex %d (level %d) has no parent", v, lvl)
			}
		}
	}

	// Gather the remote vertices whose levels we need: every local edge
	// target and every reached master vertex's parent.
	need := make(map[graph.Vertex]uint32)
	addNeed := func(v graph.Vertex) {
		if _, ok := part.LocalIndex(v); !ok {
			need[v] = bfs.Unreached
		}
	}
	m := part.CSR
	for row := 0; row < m.NumRows(); row++ {
		for _, t := range m.Row(row) {
			addNeed(t)
		}
	}
	for u := lo; u < hi; u++ {
		i, _ := part.LocalIndex(graph.Vertex(u))
		if b.Level[i] != bfs.Unreached && b.Parent[i] != graph.Nil {
			addNeed(b.Parent[i])
		}
	}

	// Request/response exchange: ids to masters, levels back.
	reqs := make([][]byte, r.Size())
	for v := range need {
		o := part.Master(v)
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		reqs[o] = append(reqs[o], buf[:]...)
	}
	got := r.AllToAllv(reqs)
	resps := make([][]byte, r.Size())
	for from, payload := range got {
		out := make([]byte, 0, len(payload)/8*12)
		for off := 0; off+8 <= len(payload); off += 8 {
			v := graph.Vertex(binary.LittleEndian.Uint64(payload[off:]))
			lvl, ok := localLevel(v)
			if !ok {
				fail("asked for level of %d which is not local", v)
				lvl = bfs.Unreached
			}
			var rec [12]byte
			binary.LittleEndian.PutUint64(rec[0:], uint64(v))
			binary.LittleEndian.PutUint32(rec[8:], lvl)
			out = append(out, rec[:]...)
		}
		resps[from] = out
	}
	answers := r.AllToAllv(resps)
	for _, payload := range answers {
		for off := 0; off+12 <= len(payload); off += 12 {
			v := graph.Vertex(binary.LittleEndian.Uint64(payload[off:]))
			need[v] = binary.LittleEndian.Uint32(payload[off+8:])
		}
	}
	level := func(v graph.Vertex) uint32 {
		if l, ok := localLevel(v); ok {
			return l
		}
		return need[v]
	}

	// (3): parent levels.
	for u := lo; u < hi; u++ {
		v := graph.Vertex(u)
		i, _ := part.LocalIndex(v)
		if v == source || b.Level[i] == bfs.Unreached {
			continue
		}
		if pl := level(b.Parent[i]); pl != b.Level[i]-1 {
			fail("vertex %d at level %d has parent %d at level %d", v, b.Level[i], b.Parent[i], pl)
		}
	}

	// (4): level consistency across every stored edge.
	for row := 0; row < m.NumRows(); row++ {
		u := part.Vertex(row)
		lu, _ := localLevel(u)
		for _, t := range m.Row(row) {
			lt := level(t)
			switch {
			case lu == bfs.Unreached && lt == bfs.Unreached:
			case lu == bfs.Unreached || lt == bfs.Unreached:
				fail("edge %d-%d crosses the reached boundary (levels %d, %d)", u, t, lu, lt)
			default:
				d := int64(lu) - int64(lt)
				if d < -1 || d > 1 {
					fail("edge %d-%d spans levels %d and %d", u, t, lu, lt)
				}
			}
		}
	}

	var local uint64
	if firstErr != nil {
		local = 1
	}
	if r.AllReduceU64(local, rt.Sum) == 0 {
		return nil
	}
	if firstErr == nil {
		return fmt.Errorf("harness: BFS validation failed on another rank")
	}
	return firstErr
}
