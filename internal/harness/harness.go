// Package harness runs the paper's experiments end to end on the simulated
// distributed machine: it generates graphs in parallel (one chunk per rank),
// builds the partitioned representation, optionally moves edge storage onto
// simulated NVRAM behind the user-space page cache, runs the distributed
// algorithms, and aggregates timings and counters into result rows.
//
// Every figure and table of the paper's evaluation section (§VII) has a
// runner in figures.go; cmd/experiments and the root benchmarks are thin
// wrappers around this package.
package harness

import (
	"fmt"
	"time"

	"havoqgt/internal/algos/bfs"
	"havoqgt/internal/algos/kcore"
	"havoqgt/internal/algos/triangle"
	"havoqgt/internal/core"
	"havoqgt/internal/extmem"
	"havoqgt/internal/generators"
	"havoqgt/internal/graph"
	"havoqgt/internal/mailbox"
	"havoqgt/internal/partition"
	"havoqgt/internal/rt"
	"havoqgt/internal/xrand"
)

// GraphSpec describes a synthetic input graph that every rank can generate
// its own chunk of.
type GraphSpec struct {
	Name        string
	NumVertices uint64
	// GenChunk returns rank's share of the directed generator edges.
	GenChunk func(rank, size int) []graph.Edge
	// NumGenEdges is the number of directed generator edges (before
	// undirecting).
	NumGenEdges uint64
}

// RMATSpec is a Graph500-parameter RMAT graph of the given scale.
func RMATSpec(scale uint, seed uint64) GraphSpec {
	g := generators.NewGraph500(scale, seed)
	return GraphSpec{
		Name:        fmt.Sprintf("rmat-s%d", scale),
		NumVertices: g.NumVertices(),
		GenChunk:    g.GenerateChunk,
		NumGenEdges: g.NumEdges(),
	}
}

// PASpec is a preferential-attachment graph with optional rewiring.
func PASpec(n, m uint64, rewire float64, seed uint64) GraphSpec {
	g := generators.NewPA(n, m, rewire, seed)
	return GraphSpec{
		Name:        fmt.Sprintf("pa-n%d-m%d-r%.2f", n, m, rewire),
		NumVertices: n,
		GenChunk:    g.GenerateChunk,
		NumGenEdges: g.NumEdges(),
	}
}

// SWSpec is a Watts–Strogatz small-world graph with the given ring degree
// and rewire probability.
func SWSpec(n, k uint64, rewire float64, seed uint64) GraphSpec {
	g := generators.NewSmallWorld(n, k, rewire, seed)
	return GraphSpec{
		Name:        fmt.Sprintf("sw-n%d-k%d-r%.4f", n, k, rewire),
		NumVertices: n,
		GenChunk:    g.GenerateChunk,
		NumGenEdges: g.NumEdges(),
	}
}

// PartitionKind selects the graph partitioning strategy.
type PartitionKind string

const (
	EdgeList PartitionKind = "edgelist" // the paper's edge list partitioning
	OneD     PartitionKind = "1d"       // traditional 1D baseline
)

// CommonOpts configure a distributed run.
type CommonOpts struct {
	P                    int           // number of simulated ranks
	Topology             string        // "1d", "2d", "3d" (default "1d")
	Partition            PartitionKind // default EdgeList
	Simplify             bool          // globally remove self loops + duplicates
	NVRAM                *extmem.NVRAMConfig
	FlushBytes           int
	DisableLocalityOrder bool
	Seed                 uint64
}

func (o CommonOpts) topologyName() string {
	if o.Topology == "" {
		return "1d"
	}
	return o.Topology
}

func (o CommonOpts) topology(p int) (mailbox.Topology, error) {
	return mailbox.ByName(o.topologyName(), p)
}

func (o CommonOpts) build(r *rt.Rank, local []graph.Edge, n uint64) (*partition.Part, error) {
	switch {
	case o.Partition == OneD:
		return partition.Build1D(r, local, n)
	case o.Simplify:
		return partition.BuildEdgeListSimple(r, local, n)
	default:
		return partition.BuildEdgeList(r, local, n)
	}
}

// rankEnv is the per-rank state the runners build before the timed section.
type rankEnv struct {
	r     *rt.Rank
	part  *partition.Part
	store *extmem.Store // nil in DRAM runs
	topo  mailbox.Topology
}

// setup generates this rank's chunk, builds the partition, and applies the
// storage configuration. Collective.
func (o CommonOpts) setup(r *rt.Rank, spec GraphSpec) (*rankEnv, error) {
	directed := spec.GenChunk(r.Rank(), r.Size())
	local := graph.Undirect(directed)
	part, err := o.build(r, local, spec.NumVertices)
	if err != nil {
		return nil, err
	}
	env := &rankEnv{r: r, part: part}
	if o.NVRAM != nil {
		cfg := *o.NVRAM
		store, err := extmem.ExternalizeCSR(part.CSR, cfg)
		if err != nil {
			return nil, err
		}
		env.store = store
	}
	env.topo, err = o.topology(r.Size())
	if err != nil {
		return nil, err
	}
	return env, nil
}

// coreConfig assembles the visitor-queue config for this rank.
func (o CommonOpts) coreConfig(env *rankEnv, ghosts int) core.Config {
	cfg := core.Config{
		Topology:             env.topo,
		FlushBytes:           o.FlushBytes,
		DisableLocalityOrder: o.DisableLocalityOrder,
	}
	if ghosts > 0 {
		cfg.Ghosts = core.BuildGhostTable(env.part, ghosts)
	}
	return cfg
}

// pickSources selects n distinct source vertices with at least one edge,
// using a shared deterministic RNG so every rank picks the same vertices
// without communication beyond a degree check.
func pickSources(r *rt.Rank, part *partition.Part, n int, seed uint64) []graph.Vertex {
	rng := xrand.New(xrand.Mix64(seed) ^ 0xb105f00d)
	var sources []graph.Vertex
	seen := map[graph.Vertex]bool{}
	for attempts := 0; len(sources) < n && attempts < 10000; attempts++ {
		v := graph.Vertex(rng.Uint64n(part.NumVertices))
		if seen[v] {
			continue
		}
		seen[v] = true
		var hasEdges uint64
		if part.IsMaster(v) && part.GlobalDegree(v) > 0 {
			hasEdges = 1
		}
		if r.AllReduceU64(hasEdges, rt.Max) == 1 {
			sources = append(sources, v)
		}
	}
	return sources
}

// AggStats are cluster-wide sums of the per-rank queue counters.
type AggStats struct {
	VisitorsExecuted uint64
	VisitorsPushed   uint64
	GhostFiltered    uint64
	Forwarded        uint64
	EnvelopesSent    uint64
	RecordsSent      uint64
	DetectorWaves    uint64
}

func reduceStats(r *rt.Rank, s core.Stats) AggStats {
	return AggStats{
		VisitorsExecuted: r.AllReduceU64(s.Executed, rt.Sum),
		VisitorsPushed:   r.AllReduceU64(s.Pushed, rt.Sum),
		GhostFiltered:    r.AllReduceU64(s.GhostFiltered, rt.Sum),
		Forwarded:        r.AllReduceU64(s.Forwarded, rt.Sum),
		EnvelopesSent:    r.AllReduceU64(s.Mailbox.EnvelopesSent, rt.Sum),
		RecordsSent:      r.AllReduceU64(s.Mailbox.RecordsSent, rt.Sum),
		DetectorWaves:    r.AllReduceU64(s.DetectorWaves, rt.Max),
	}
}

// CacheAgg aggregates page-cache statistics across ranks.
type CacheAgg struct {
	Hits, Misses uint64
}

// HitRate returns the cluster-wide cache hit rate.
func (c CacheAgg) HitRate() float64 {
	if c.Hits+c.Misses == 0 {
		return 1
	}
	return float64(c.Hits) / float64(c.Hits+c.Misses)
}

func reduceCache(r *rt.Rank, env *rankEnv) CacheAgg {
	var h, m uint64
	if env.store != nil {
		st := env.store.Cache().Stats()
		h, m = st.Hits, st.Misses
	}
	return CacheAgg{
		Hits:   r.AllReduceU64(h, rt.Sum),
		Misses: r.AllReduceU64(m, rt.Sum),
	}
}

// BFSResult summarizes a BFS experiment.
type BFSResult struct {
	Graph          string
	P              int
	NumVertices    uint64
	GlobalEdges    uint64 // stored directed edges
	BuildTime      time.Duration
	Sources        int
	TotalTime      time.Duration // summed traversal time over sources
	TraversedEdges uint64        // summed over sources (undirected count)
	TEPS           float64
	MaxLevel       uint32
	Stats          AggStats
	Cache          CacheAgg
}

// BFSOpts configure a BFS experiment.
type BFSOpts struct {
	CommonOpts
	Graph    GraphSpec
	Sources  int  // BFS roots to run and sum (Graph500 style)
	Ghosts   int  // ghost table size per partition (0 = none)
	Validate bool // run Graph500-style distributed validation per source
}

// RunBFS executes the experiment and returns aggregate results.
func RunBFS(o BFSOpts) (BFSResult, error) {
	if o.Sources <= 0 {
		o.Sources = 1
	}
	res := BFSResult{Graph: o.Graph.Name, P: o.P, NumVertices: o.Graph.NumVertices, Sources: o.Sources}
	var runErr error
	m := rt.NewMachine(o.P)
	m.Run(func(r *rt.Rank) {
		buildStart := time.Now()
		env, err := o.setup(r, o.Graph)
		if err != nil {
			panic(err)
		}
		r.Barrier()
		if r.Rank() == 0 {
			res.BuildTime = time.Since(buildStart)
			res.GlobalEdges = env.part.GlobalEdges
		}
		sources := pickSources(r, env.part, o.Sources, o.Seed)
		var agg AggStats
		var traversed uint64
		var total time.Duration
		var maxLevel uint32
		for si, src := range sources {
			if env.store != nil {
				env.store.Cache().ResetStats()
			}
			cfg := o.coreConfig(env, o.Ghosts)
			r.Barrier()
			if r.Rank() == 0 {
				// One reset path for every subsystem's counters: the phase
				// starts from a coherent zero across rt/mailbox/termination.
				m.ResetStats()
			}
			r.Barrier()
			start := time.Now()
			out := bfs.Run(r, env.part, src, cfg)
			r.Barrier()
			elapsed := time.Since(start)
			if r.Rank() == 0 {
				RecordProfile(PhaseProfile{
					Graph: o.Graph.Name, Algo: "bfs",
					Phase:    fmt.Sprintf("bfs.src%d", si),
					Topology: o.topologyName(), P: o.P,
					WallNS:  elapsed.Nanoseconds(),
					Metrics: m.Obs().Snapshot(),
				})
			}
			if o.Validate {
				if err := ValidateBFS(r, env.part, out.BFS, src); err != nil {
					panic(fmt.Sprintf("BFS validation failed: %v", err))
				}
			}
			reached := r.AllReduceU64(out.ReachedEdges(), rt.Sum) / 2
			lvl := uint32(r.AllReduceU64(uint64(out.MaxLevel()), rt.Max))
			s := reduceStats(r, out.Stats)
			if r.Rank() == 0 {
				total += elapsed
				traversed += reached
				if lvl > maxLevel {
					maxLevel = lvl
				}
				agg.VisitorsExecuted += s.VisitorsExecuted
				agg.VisitorsPushed += s.VisitorsPushed
				agg.GhostFiltered += s.GhostFiltered
				agg.Forwarded += s.Forwarded
				agg.EnvelopesSent += s.EnvelopesSent
				agg.RecordsSent += s.RecordsSent
				agg.DetectorWaves = max(agg.DetectorWaves, s.DetectorWaves)
			}
		}
		cache := reduceCache(r, env)
		if r.Rank() == 0 {
			res.TotalTime = total
			res.TraversedEdges = traversed
			res.MaxLevel = maxLevel
			res.Stats = agg
			res.Cache = cache
			if total > 0 {
				res.TEPS = float64(traversed) / total.Seconds()
			}
			if len(sources) == 0 {
				runErr = fmt.Errorf("harness: no BFS source with edges found")
			}
		}
		if env.store != nil {
			env.store.Close()
		}
	})
	return res, runErr
}

// KCoreResult summarizes one k of a k-core experiment.
type KCoreResult struct {
	Graph       string
	P           int
	K           uint32
	GlobalEdges uint64
	Time        time.Duration
	CoreSize    uint64
	Stats       AggStats
}

// KCoreOpts configure a k-core experiment (one traversal per k).
type KCoreOpts struct {
	CommonOpts
	Graph GraphSpec
	Ks    []uint32
}

// RunKCore executes the experiment for each k.
func RunKCore(o KCoreOpts) ([]KCoreResult, error) {
	o.Simplify = true // k-core requires a simple graph
	results := make([]KCoreResult, len(o.Ks))
	m := rt.NewMachine(o.P)
	m.Run(func(r *rt.Rank) {
		env, err := o.setup(r, o.Graph)
		if err != nil {
			panic(err)
		}
		for i, k := range o.Ks {
			cfg := o.coreConfig(env, 0) // k-core cannot use ghosts
			r.Barrier()
			if r.Rank() == 0 {
				m.ResetStats()
			}
			r.Barrier()
			start := time.Now()
			out := kcore.Run(r, env.part, k, cfg)
			r.Barrier()
			elapsed := time.Since(start)
			if r.Rank() == 0 {
				RecordProfile(PhaseProfile{
					Graph: o.Graph.Name, Algo: "kcore",
					Phase:    fmt.Sprintf("kcore.k%d", k),
					Topology: o.topologyName(), P: o.P,
					WallNS:  elapsed.Nanoseconds(),
					Metrics: m.Obs().Snapshot(),
				})
			}
			size := kcore.GlobalCoreSize(r, out)
			s := reduceStats(r, out.Stats)
			if r.Rank() == 0 {
				results[i] = KCoreResult{
					Graph: o.Graph.Name, P: o.P, K: k,
					GlobalEdges: env.part.GlobalEdges,
					Time:        elapsed, CoreSize: size, Stats: s,
				}
			}
		}
		if env.store != nil {
			env.store.Close()
		}
	})
	return results, nil
}

// TriangleResult summarizes a triangle-counting experiment.
type TriangleResult struct {
	Graph       string
	P           int
	GlobalEdges uint64
	MaxDegree   uint64
	Time        time.Duration
	Triangles   uint64
	Stats       AggStats
}

// TriangleOpts configure a triangle-counting experiment.
type TriangleOpts struct {
	CommonOpts
	Graph GraphSpec
}

// RunTriangles executes the experiment.
func RunTriangles(o TriangleOpts) (TriangleResult, error) {
	o.Simplify = true // triangle counting requires a simple graph
	var res TriangleResult
	m := rt.NewMachine(o.P)
	m.Run(func(r *rt.Rank) {
		env, err := o.setup(r, o.Graph)
		if err != nil {
			panic(err)
		}
		// Max degree (over masters) for the Figure 11 x-axis.
		var localMax uint64
		lo, hi := env.part.Owners.MasterRange(env.part.Rank)
		for v := lo; v < hi; v++ {
			if d := env.part.GlobalDegree(graph.Vertex(v)); d > localMax {
				localMax = d
			}
		}
		maxDeg := r.AllReduceU64(localMax, rt.Max)
		cfg := o.coreConfig(env, 0) // triangle counting cannot use ghosts
		r.Barrier()
		if r.Rank() == 0 {
			m.ResetStats()
		}
		r.Barrier()
		start := time.Now()
		out := triangle.Run(r, env.part, cfg)
		r.Barrier()
		elapsed := time.Since(start)
		if r.Rank() == 0 {
			RecordProfile(PhaseProfile{
				Graph: o.Graph.Name, Algo: "triangle",
				Phase:    "triangle.count",
				Topology: o.topologyName(), P: o.P,
				WallNS:  elapsed.Nanoseconds(),
				Metrics: m.Obs().Snapshot(),
			})
		}
		s := reduceStats(r, out.Stats)
		if r.Rank() == 0 {
			res = TriangleResult{
				Graph: o.Graph.Name, P: o.P,
				GlobalEdges: env.part.GlobalEdges, MaxDegree: maxDeg,
				Time: elapsed, Triangles: out.GlobalCount, Stats: s,
			}
		}
		if env.store != nil {
			env.store.Close()
		}
	})
	return res, nil
}
