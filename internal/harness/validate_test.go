package harness

import (
	"strings"
	"testing"

	"havoqgt/internal/algos/bfs"
	"havoqgt/internal/core"
	"havoqgt/internal/generators"
	"havoqgt/internal/graph"
	"havoqgt/internal/partition"
	"havoqgt/internal/rt"
)

func TestValidateBFSAcceptsCorrectRun(t *testing.T) {
	g := generators.NewGraph500(9, 17)
	n := g.NumVertices()
	errs := make([]error, 4)
	rt.NewMachine(4).Run(func(r *rt.Rank) {
		local := graph.Undirect(g.GenerateChunk(r.Rank(), r.Size()))
		part, err := partition.BuildEdgeList(r, local, n)
		if err != nil {
			panic(err)
		}
		res := bfs.Run(r, part, 1, core.Config{Ghosts: core.BuildGhostTable(part, 64)})
		errs[r.Rank()] = ValidateBFS(r, part, res.BFS, 1)
	})
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: correct BFS failed validation: %v", rank, err)
		}
	}
}

func TestValidateBFSRejectsCorruptedLevels(t *testing.T) {
	g := generators.NewGraph500(8, 3)
	n := g.NumVertices()
	errs := make([]error, 3)
	rt.NewMachine(3).Run(func(r *rt.Rank) {
		local := graph.Undirect(g.GenerateChunk(r.Rank(), r.Size()))
		part, err := partition.BuildEdgeList(r, local, n)
		if err != nil {
			panic(err)
		}
		res := bfs.Run(r, part, 0, core.Config{})
		if r.Rank() == 1 {
			// Corrupt one reached master vertex's level.
			lo, hi := part.Owners.MasterRange(part.Rank)
			for v := lo; v < hi; v++ {
				i, _ := part.LocalIndex(graph.Vertex(v))
				if res.Level[i] != bfs.Unreached && res.Level[i] > 0 {
					res.Level[i] += 7
					break
				}
			}
		}
		errs[r.Rank()] = ValidateBFS(r, part, res.BFS, 0)
	})
	failed := false
	for _, err := range errs {
		if err != nil {
			failed = true
		}
	}
	if !failed {
		t.Fatal("corrupted levels passed validation")
	}
}

func TestValidateBFSRejectsBadParent(t *testing.T) {
	edges := graph.Undirect([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}})
	errs := make([]error, 2)
	rt.NewMachine(2).Run(func(r *rt.Rank) {
		part, err := partition.BuildEdgeList(r, edges, 4)
		if err != nil {
			panic(err)
		}
		res := bfs.Run(r, part, 0, core.Config{})
		// Point vertex 3's parent at vertex 0 (level 0, not level 2).
		if i, ok := part.LocalIndex(3); ok && part.IsMaster(3) {
			res.Parent[i] = 0
		}
		errs[r.Rank()] = ValidateBFS(r, part, res.BFS, 0)
	})
	anyErr := errs[0] != nil || errs[1] != nil
	if !anyErr {
		t.Fatal("bad parent passed validation")
	}
	for _, err := range errs {
		if err != nil && !strings.Contains(err.Error(), "parent") && !strings.Contains(err.Error(), "another rank") {
			t.Fatalf("unexpected validation error: %v", err)
		}
	}
}

func TestValidateBFSDisconnected(t *testing.T) {
	edges := graph.Undirect([]graph.Edge{{Src: 0, Dst: 1}, {Src: 4, Dst: 5}})
	errs := make([]error, 2)
	rt.NewMachine(2).Run(func(r *rt.Rank) {
		part, err := partition.BuildEdgeList(r, edges, 8)
		if err != nil {
			panic(err)
		}
		res := bfs.Run(r, part, 0, core.Config{})
		errs[r.Rank()] = ValidateBFS(r, part, res.BFS, 0)
	})
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: disconnected graph failed validation: %v", rank, err)
		}
	}
}
