package harness

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table is a printable experiment result: the same rows/series the paper's
// figure or table reports.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}
