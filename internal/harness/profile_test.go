package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"havoqgt/internal/obs"
)

// TestRunBFSRecordsPhaseProfiles verifies that every timed BFS source drops a
// communication profile sourced from the machine's obs.Registry: nonzero
// transport and mailbox counters, the right topology label, and phase spans.
func TestRunBFSRecordsPhaseProfiles(t *testing.T) {
	before := len(Profiles())
	spec := RMATSpec(8, 31)
	sources := 2
	if _, err := RunBFS(BFSOpts{
		CommonOpts: CommonOpts{P: 3, Topology: "2d", Seed: 31},
		Graph:      spec,
		Sources:    sources,
	}); err != nil {
		t.Fatal(err)
	}
	var mine []PhaseProfile
	for _, p := range Profiles()[before:] {
		if p.Algo == "bfs" && p.Graph == spec.Name {
			mine = append(mine, p)
		}
	}
	if len(mine) != sources {
		t.Fatalf("recorded %d bfs profiles, want %d (one per source)", len(mine), sources)
	}
	for _, p := range mine {
		if p.Topology != "2d" || p.P != 3 {
			t.Fatalf("profile header wrong: topology=%q p=%d", p.Topology, p.P)
		}
		if p.WallNS <= 0 {
			t.Fatalf("profile %s has no wall time", p.Phase)
		}
		for _, name := range []string{obs.RTMsgs, obs.RTBytes, obs.MBRecordsSent, obs.MBHops, obs.TermWaves} {
			if p.Metrics.Counter(name) == 0 {
				t.Fatalf("profile %s: counter %s is zero", p.Phase, name)
			}
		}
		if ranks := p.Metrics.PerRank[obs.RTMsgs]; len(ranks) != 3 {
			t.Fatalf("profile %s: per-rank %s has %d slots, want 3", p.Phase, obs.RTMsgs, len(ranks))
		}
		var sawSpan bool
		for _, ev := range p.Metrics.Spans {
			if ev.Name == "bfs.run" {
				sawSpan = true
			}
		}
		if !sawSpan {
			t.Fatalf("profile %s: no bfs.run span captured", p.Phase)
		}
	}
}

// TestWriteProfiles checks both profile exporters round-trip the recorded log.
func TestWriteProfiles(t *testing.T) {
	ResetProfiles()
	defer ResetProfiles()
	RecordProfile(PhaseProfile{
		Graph: "g", Algo: "bfs", Phase: "bfs.src0", Topology: "3d", P: 8,
		WallNS:  123,
		Metrics: obs.Snapshot{Counters: map[string]uint64{obs.RTMsgs: 7, obs.MBHops: 9}},
	})

	var jbuf bytes.Buffer
	if err := WriteProfilesJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	var back []PhaseProfile
	if err := json.Unmarshal(jbuf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Topology != "3d" || back[0].Metrics.Counter(obs.MBHops) != 9 {
		t.Fatalf("JSON round-trip mangled the profile: %+v", back)
	}

	var cbuf bytes.Buffer
	if err := WriteProfilesCSV(&cbuf); err != nil {
		t.Fatal(err)
	}
	out := cbuf.String()
	for _, want := range []string{
		"graph,algo,phase,topology,p,wall_ns,metric,value",
		"g,bfs,bfs.src0,3d,8,123," + obs.RTMsgs + ",7",
		"g,bfs,bfs.src0,3d,8,123," + obs.MBHops + ",9",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q:\n%s", want, out)
		}
	}
}
