package harness

import (
	"fmt"
	"time"

	"havoqgt/internal/csr"
	"havoqgt/internal/extmem"
	"havoqgt/internal/graph"
	"havoqgt/internal/mailbox"
	"havoqgt/internal/ref"
	"havoqgt/internal/smp"
)

// RunSMPBFS times the single-node multithreaded asynchronous BFS (the
// paper's Leviathan configuration, reference [4]) on the given graph with
// edges optionally on simulated NVRAM. Returns summed TEPS over the sources.
func RunSMPBFS(spec GraphSpec, threads int, nv *extmem.NVRAMConfig, sources int, seed uint64) (float64, error) {
	edges := graph.Undirect(spec.GenChunk(0, 1))
	graph.SortEdges(edges)
	m, err := csr.FromSortedEdges(edges, 0, int(spec.NumVertices))
	if err != nil {
		return 0, err
	}
	views := []*csr.Matrix{m}
	var store *extmem.Store
	if nv != nil {
		store, err = extmem.ExternalizeCSR(m, *nv)
		if err != nil {
			return 0, err
		}
		defer store.Close()
		views = make([]*csr.Matrix, threads)
		for i := range views {
			v, err := m.WithTargets(store.View())
			if err != nil {
				return 0, err
			}
			views[i] = v
		}
	} else {
		views = make([]*csr.Matrix, threads)
		for i := range views {
			views[i] = m
		}
	}
	adj := ref.BuildAdj(edges, spec.NumVertices) // for source picking + TEPS
	var total time.Duration
	var traversed uint64
	for i := 0; i < sources; i++ {
		src := pickSequentialSource(adj, seed+uint64(i))
		start := time.Now()
		res := smp.BFSWithViews(views, spec.NumVertices, src)
		total += time.Since(start)
		for v := uint64(0); v < spec.NumVertices; v++ {
			if res.Level[v] != smp.Unreached {
				traversed += uint64(len(adj[v]))
			}
		}
	}
	if total == 0 {
		return 0, nil
	}
	return float64(traversed/2) / total.Seconds(), nil
}

// Figure8 reproduces the weak scaling of distributed external-memory BFS:
// every rank stores its edge partition on simulated node-local NVRAM behind
// the user-space page cache, with a fixed DRAM cache budget per rank.
func Figure8(s Sizing) *Table {
	t := &Table{
		Title:   "Figure 8: weak scaling of distributed external-memory BFS (RMAT on simulated NVRAM)",
		Columns: []string{"p", "scale", "edges", "TEPS", "TEPS/rank", "cache-hit-%"},
		Notes: []string{
			"paper: 17B edges per node on Fusion-io NAND Flash, 1T+ edges at 64 nodes",
			"expected shape: TEPS scales with p while each rank's edge set exceeds its cache",
		},
	}
	nv := extmem.DefaultNVRAM()
	// Budget the cache at ~1/8 of each rank's edge bytes so the run is
	// genuinely external.
	for _, p := range s.pSweep() {
		scale := s.VertsPerRankLog2 + log2(p)
		spec := RMATSpec(scale, s.Seed)
		perRankBytes := int(spec.NumGenEdges * 2 * 8 / uint64(p))
		cfg := nv
		cfg.CacheBytes = max(cfg.PageSize, perRankBytes/8)
		res, err := RunBFS(BFSOpts{
			CommonOpts: CommonOpts{P: p, Topology: "3d", NVRAM: &cfg, Seed: s.Seed},
			Graph:      spec,
			Sources:    s.Sources,
			Ghosts:     256,
		})
		if err != nil {
			panic(err)
		}
		t.AddRow(p, scale, res.GlobalEdges/2, res.TEPS, res.TEPS/float64(p),
			100*res.Cache.HitRate())
	}
	return t
}

// Figure9 reproduces the data-scaling experiment: computational resources
// (ranks, DRAM cache budget) held constant while the graph grows, comparing
// against all-DRAM storage of the same graph. The paper's headline: 32x
// larger data than DRAM with only a 39% TEPS degradation.
func Figure9(s Sizing) *Table {
	t := &Table{
		Title:   "Figure 9: increasing external-memory usage at fixed compute (BFS, RMAT)",
		Columns: []string{"scale", "data-vs-cache", "TEPS-dram", "TEPS-nvram", "degradation-%", "cache-hit-%"},
		Notes: []string{
			"paper: 64 Hyperion nodes, 34B to 1T edges; at 32x data NVRAM is only 39% slower than DRAM",
			"expected shape: graceful degradation as the data:cache ratio grows to ~32x",
		},
	}
	p := min(8, s.MaxP)
	baseScale := s.VertsPerRankLog2 + 2
	// Fix the per-rank cache to the base graph's per-rank edge bytes, so the
	// base run is ~1x (fully cached) and each +1 scale doubles the ratio.
	baseSpec := RMATSpec(baseScale, s.Seed)
	cacheBytes := int(baseSpec.NumGenEdges * 2 * 8 / uint64(p))
	nv := extmem.DefaultNVRAM()
	nv.CacheBytes = cacheBytes
	for scale := baseScale; scale <= baseScale+5; scale++ {
		spec := RMATSpec(scale, s.Seed)
		ratio := 1 << (scale - baseScale)
		dram, err := RunBFS(BFSOpts{
			CommonOpts: CommonOpts{P: p, Topology: "2d", Seed: s.Seed},
			Graph:      spec, Sources: s.Sources, Ghosts: 256,
		})
		if err != nil {
			panic(err)
		}
		nvram, err := RunBFS(BFSOpts{
			CommonOpts: CommonOpts{P: p, Topology: "2d", NVRAM: &nv, Seed: s.Seed},
			Graph:      spec, Sources: s.Sources, Ghosts: 256,
		})
		if err != nil {
			panic(err)
		}
		deg := 0.0
		if dram.TEPS > 0 {
			deg = 100 * (dram.TEPS - nvram.TEPS) / dram.TEPS
		}
		t.AddRow(scale, fmt.Sprintf("%dx", ratio), dram.TEPS, nvram.TEPS, deg,
			100*nvram.Cache.HitRate())
	}
	return t
}

// TableII reproduces the paper's November 2011 Graph500 results table: the
// same BFS on three storage configurations standing in for the three
// machines (Hyperion-DIT DRAM vs Fusion-io, Trestles' commodity SATA SSDs,
// and single-node Leviathan).
func TableII(s Sizing) *Table {
	t := &Table{
		Title:   "Table II: Graph500-style BFS results across storage configurations",
		Columns: []string{"machine-analog", "ranks", "storage", "scale", "TEPS"},
		Notes: []string{
			"paper: Hyperion-DIT 1,004 MTEPS DRAM scale 31 / 609 MTEPS Fusion-io scale 36;",
			"Trestles 242 MTEPS SATA SSD scale 36; Leviathan single node 52 MTEPS scale 36",
			"expected shape: DRAM > enterprise NVRAM > commodity SSD > single node",
		},
	}
	p := min(8, s.MaxP)
	scaleDRAM := s.VertsPerRankLog2 + 2
	scaleNV := scaleDRAM + 3 // NVRAM configs run a larger graph, as in the paper

	addRun := func(name string, ranks int, storage string, scale uint, nv *extmem.NVRAMConfig) {
		res, err := RunBFS(BFSOpts{
			CommonOpts: CommonOpts{P: ranks, Topology: "2d", NVRAM: nv, Seed: s.Seed},
			Graph:      RMATSpec(scale, s.Seed),
			Sources:    s.Sources,
			Ghosts:     256,
		})
		if err != nil {
			panic(err)
		}
		t.AddRow(name, ranks, storage, scale, res.TEPS)
	}

	fio := extmem.DefaultNVRAM()
	fio.CacheBytes = 1 << 21
	ssd := extmem.CommoditySSD()
	ssd.CacheBytes = 1 << 21

	addRun("Hyperion-DIT (DRAM)", p, "DRAM", scaleDRAM, nil)
	addRun("Hyperion-DIT (Fusion-io)", p, "sim-NVRAM", scaleNV, &fio)
	addRun("Trestles (SATA SSD)", p, "sim-SSD", scaleNV, &ssd)
	// Leviathan is a single host running the multithreaded asynchronous
	// visitor queue of reference [4] (internal/smp), not the distributed
	// framework.
	leviathan := fio
	smpTEPS, err := RunSMPBFS(RMATSpec(scaleNV, s.Seed), 4, &leviathan, s.Sources, s.Seed)
	if err != nil {
		panic(err)
	}
	t.AddRow("Leviathan (single node, smp)", 1, "sim-NVRAM", scaleNV, smpTEPS)
	return t
}

// AblationTopology compares the three routing topologies on the same BFS
// workload: envelope counts, channel bounds, and TEPS.
func AblationTopology(s Sizing) *Table {
	t := &Table{
		Title:   "Ablation: mailbox routing topology (BFS, RMAT)",
		Columns: []string{"topology", "max-channels", "envelopes", "records", "TEPS"},
		Notes: []string{
			"routing trades hops for fewer channels and more aggregation per channel",
		},
	}
	p := s.MaxP
	spec := RMATSpec(s.VertsPerRankLog2+log2(p), s.Seed)
	for _, name := range []string{"1d", "2d", "3d"} {
		res, err := RunBFS(BFSOpts{
			CommonOpts: CommonOpts{P: p, Topology: name, Seed: s.Seed},
			Graph:      spec, Sources: s.Sources, Ghosts: 256,
		})
		if err != nil {
			panic(err)
		}
		topo, err := mailbox.ByName(name, p)
		if err != nil {
			panic(err)
		}
		t.AddRow(name, topo.MaxChannels(), res.Stats.EnvelopesSent, res.Stats.RecordsSent, res.TEPS)
	}
	return t
}

// AblationLocality compares visitor locality ordering on vs off for
// external-memory BFS (the §V-A optimization), reporting cache hit rates.
func AblationLocality(s Sizing) *Table {
	t := &Table{
		Title:   "Ablation: visitor locality ordering (external-memory BFS)",
		Columns: []string{"locality-order", "TEPS", "cache-hit-%"},
		Notes: []string{
			"ordering equal-priority visitors by vertex id improves page-level locality (paper §V-A)",
		},
	}
	p := min(8, s.MaxP)
	spec := RMATSpec(s.VertsPerRankLog2+3, s.Seed)
	nv := extmem.DefaultNVRAM()
	nv.CacheBytes = int(spec.NumGenEdges * 2 * 8 / uint64(p) / 16)
	for _, disable := range []bool{false, true} {
		res, err := RunBFS(BFSOpts{
			CommonOpts: CommonOpts{P: p, Topology: "2d", NVRAM: &nv, DisableLocalityOrder: disable, Seed: s.Seed},
			Graph:      spec, Sources: s.Sources, Ghosts: 256,
		})
		if err != nil {
			panic(err)
		}
		t.AddRow(!disable, res.TEPS, 100*res.Cache.HitRate())
	}
	return t
}

// AblationAggregation sweeps the mailbox flush threshold.
func AblationAggregation(s Sizing) *Table {
	t := &Table{
		Title:   "Ablation: mailbox aggregation threshold (BFS, RMAT)",
		Columns: []string{"flush-bytes", "envelopes", "TEPS"},
		Notes: []string{
			"larger aggregation buffers amortize per-message cost until latency dominates",
		},
	}
	p := s.MaxP
	spec := RMATSpec(s.VertsPerRankLog2+log2(p), s.Seed)
	for _, fb := range []int{64, 512, 4096, 32768} {
		res, err := RunBFS(BFSOpts{
			CommonOpts: CommonOpts{P: p, Topology: "2d", FlushBytes: fb, Seed: s.Seed},
			Graph:      spec, Sources: s.Sources, Ghosts: 256,
		})
		if err != nil {
			panic(err)
		}
		t.AddRow(fb, res.Stats.EnvelopesSent, res.TEPS)
	}
	return t
}
