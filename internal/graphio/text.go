package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"havoqgt/internal/graph"
)

// ReadText parses a plain-text edge list: one "src dst" pair per line,
// separated by whitespace, tabs, or commas. Lines starting with '#' or '%'
// (the SNAP and Matrix Market comment conventions) are skipped. Returns the
// edges and the implied vertex count (max id + 1).
func ReadText(r io.Reader) ([]graph.Edge, uint64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []graph.Edge
	var maxV graph.Vertex
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.FieldsFunc(line, func(r rune) bool {
			return r == ' ' || r == '\t' || r == ','
		})
		if len(fields) < 2 {
			return nil, 0, fmt.Errorf("graphio: line %d: want 'src dst', got %q", lineNo, line)
		}
		src, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("graphio: line %d: bad source %q", lineNo, fields[0])
		}
		dst, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("graphio: line %d: bad target %q", lineNo, fields[1])
		}
		e := graph.Edge{Src: graph.Vertex(src), Dst: graph.Vertex(dst)}
		edges = append(edges, e)
		maxV = max(maxV, e.Src, e.Dst)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	if len(edges) == 0 {
		return nil, 0, nil
	}
	return edges, uint64(maxV) + 1, nil
}

// WriteText writes a plain-text edge list, one tab-separated pair per line.
func WriteText(w io.Writer, edges []graph.Edge) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	for _, e := range edges {
		if _, err := fmt.Fprintf(bw, "%d\t%d\n", e.Src, e.Dst); err != nil {
			return err
		}
	}
	return bw.Flush()
}
