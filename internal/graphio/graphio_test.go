package graphio

import (
	"os"
	"path/filepath"
	"testing"

	"havoqgt/internal/graph"
	"havoqgt/internal/xrand"
)

func tmpGraph(t *testing.T, n uint64, edges []graph.Edge) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.hvqg")
	if err := WriteFile(path, n, edges); err != nil {
		t.Fatal(err)
	}
	return path
}

func randEdges(n uint64, m int, seed uint64) []graph.Edge {
	rng := xrand.New(seed)
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.Vertex(rng.Uint64n(n)), Dst: graph.Vertex(rng.Uint64n(n))}
	}
	return edges
}

func TestRoundTrip(t *testing.T) {
	edges := randEdges(100, 500, 1)
	path := tmpGraph(t, 100, edges)
	h, got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices != 100 || h.NumEdges != 500 {
		t.Fatalf("header = %+v", h)
	}
	for i := range edges {
		if got[i] != edges[i] {
			t.Fatalf("edge %d = %v, want %v", i, got[i], edges[i])
		}
	}
}

func TestChunksCoverFile(t *testing.T) {
	edges := randEdges(64, 101, 2) // odd count exercises remainders
	path := tmpGraph(t, 64, edges)
	for _, size := range []int{1, 2, 3, 7} {
		var combined []graph.Edge
		for rank := 0; rank < size; rank++ {
			chunk, err := ReadChunk(path, rank, size)
			if err != nil {
				t.Fatal(err)
			}
			combined = append(combined, chunk...)
		}
		if len(combined) != len(edges) {
			t.Fatalf("size=%d: %d edges, want %d", size, len(combined), len(edges))
		}
		for i := range edges {
			if combined[i] != edges[i] {
				t.Fatalf("size=%d: edge %d differs", size, i)
			}
		}
	}
}

func TestEmptyEdgeList(t *testing.T) {
	path := tmpGraph(t, 8, nil)
	h, got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges != 0 || len(got) != 0 {
		t.Fatal("empty list round trip failed")
	}
}

func TestBadMagicRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.bin")
	if err := os.WriteFile(path, []byte("NOPE12345678901234567890"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHeader(path); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestTruncatedFileRejected(t *testing.T) {
	edges := randEdges(16, 10, 3)
	path := tmpGraph(t, 16, edges)
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-8], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadChunk(path, 0, 1); err == nil {
		t.Fatal("truncated file accepted")
	}
}

func TestInvalidChunkArgs(t *testing.T) {
	path := tmpGraph(t, 4, nil)
	if _, err := ReadChunk(path, 1, 1); err == nil {
		t.Fatal("rank >= size accepted")
	}
	if _, err := ReadChunk(path, 0, 0); err == nil {
		t.Fatal("size 0 accepted")
	}
}
