package graphio

import (
	"bytes"
	"strings"
	"testing"

	"havoqgt/internal/graph"
)

func TestReadTextBasic(t *testing.T) {
	in := "# a comment\n% another\n0\t1\n2 3\n4,5\n\n  6   7  \n"
	edges, n, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}, {Src: 4, Dst: 5}, {Src: 6, Dst: 7}}
	if len(edges) != len(want) || n != 8 {
		t.Fatalf("got %v n=%d", edges, n)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("edge %d = %v, want %v", i, edges[i], want[i])
		}
	}
}

func TestReadTextErrors(t *testing.T) {
	for _, bad := range []string{"0\n", "a b\n", "1 x\n"} {
		if _, _, err := ReadText(strings.NewReader(bad)); err == nil {
			t.Fatalf("input %q accepted", bad)
		}
	}
}

func TestReadTextEmpty(t *testing.T) {
	edges, n, err := ReadText(strings.NewReader("# nothing\n"))
	if err != nil || edges != nil || n != 0 {
		t.Fatalf("empty input: %v %d %v", edges, n, err)
	}
}

func TestTextRoundTrip(t *testing.T) {
	edges := randEdges(50, 200, 4)
	var buf bytes.Buffer
	if err := WriteText(&buf, edges); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(edges) {
		t.Fatalf("round trip %d edges, want %d", len(got), len(edges))
	}
	for i := range edges {
		if got[i] != edges[i] {
			t.Fatalf("edge %d = %v, want %v", i, got[i], edges[i])
		}
	}
}

func TestReadTextExtraColumnsIgnored(t *testing.T) {
	// SNAP-style files sometimes carry weights or timestamps.
	edges, _, err := ReadText(strings.NewReader("1 2 99\n3 4 0.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 2 || edges[1] != (graph.Edge{Src: 3, Dst: 4}) {
		t.Fatalf("edges = %v", edges)
	}
}
