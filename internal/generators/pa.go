package generators

import (
	"havoqgt/internal/graph"
	"havoqgt/internal/xrand"
)

// PA holds the parameters of the Preferential Attachment (Barabási–Albert)
// generator. Vertices arrive one at a time and attach M edges to existing
// vertices with probability proportional to their current degree, producing a
// scale-free graph with heavy hubs. Rewire replaces each target with a
// uniformly random vertex with the given probability, interpolating between a
// pure PA graph (Rewire=0) and an Erdős–Rényi-like random graph (Rewire=1) —
// the knob Figure 11 sweeps to control the maximum vertex degree.
type PA struct {
	NumVertices uint64
	M           uint64  // edges attached per arriving vertex
	Rewire      float64 // probability each edge's target is rewired uniformly
	Seed        uint64
	Permute     bool
}

// NewPA returns a preferential-attachment generator with label permutation
// enabled.
func NewPA(n, m uint64, rewire float64, seed uint64) PA {
	return PA{NumVertices: n, M: m, Rewire: rewire, Seed: seed, Permute: true}
}

// NumEdges returns the number of generated (directed) edges:
// (NumVertices - M) * M, since the first M vertices form the seed set.
func (p PA) NumEdges() uint64 {
	if p.NumVertices <= p.M {
		return 0
	}
	return (p.NumVertices - p.M) * p.M
}

// Generate produces the full PA edge list.
func (p PA) Generate() []graph.Edge { return p.GenerateChunk(0, 1) }

// GenerateChunk produces rank's share of the edges when split across size
// ranks. The generator uses the pointer-chasing formulation of preferential
// attachment (Sanders & Schulz style): the target of edge i is found by
// drawing a uniform "slot" among the 2i endpoint slots of earlier edges and
// copying that endpoint, resolving recursively. Because every edge draws from
// its own deterministic substream, any chunk decomposition yields the same
// global edge list, with attachment probability exactly proportional to
// degree.
func (p PA) GenerateChunk(rank, size int) []graph.Edge {
	if rank < 0 || size <= 0 || rank >= size {
		panic("generators: invalid chunk rank/size")
	}
	if p.M == 0 || p.NumVertices <= p.M {
		return nil
	}
	total := p.NumEdges()
	lo, hi := chunkRange(total, rank, size)
	edges := make([]graph.Edge, 0, hi-lo)
	var perm *xrand.Bijection
	if p.Permute {
		perm = xrand.NewBijection(p.NumVertices, p.Seed^0x5bd1e995c3b2ae35)
	}
	for i := lo; i < hi; i++ {
		src := p.M + i/p.M
		dst := p.resolveTarget(i)
		rng := p.edgeRNG(i)
		// The rewire draw must be independent of the draws used inside
		// resolveTarget; edgeRNG streams are per-purpose.
		if p.Rewire > 0 && rng.Bool(p.Rewire) {
			dst = rng.Uint64n(p.NumVertices)
		}
		if perm != nil {
			src = perm.Apply(src)
			dst = perm.Apply(dst)
		}
		edges = append(edges, graph.Edge{Src: graph.Vertex(src), Dst: graph.Vertex(dst)})
	}
	return edges
}

// edgeRNG returns the rewire-decision stream for edge i.
func (p PA) edgeRNG(i uint64) xrand.Rand {
	return xrand.Seeded(xrand.Mix64(p.Seed^0x9e3779b97f4a7c15) ^ xrand.Mix64(i+1))
}

// slotRNG returns the slot-selection stream for edge i.
func (p PA) slotRNG(i uint64) xrand.Rand {
	return xrand.Seeded(xrand.Mix64(p.Seed+0x2545f4914f6cdd1d) ^ xrand.Mix64(i))
}

// resolveTarget computes the attachment target of edge i without storing the
// growing endpoint array. Edge i has 2i earlier endpoint slots: slot 2j is
// the source of edge j (known in closed form) and slot 2j+1 is the target of
// edge j (resolved by chasing edge j's own slot draw). Drawing a uniform slot
// is exactly degree-proportional attachment, and because each edge's draw is
// a pure function of (Seed, edge index), any rank can resolve any edge.
func (p PA) resolveTarget(i uint64) uint64 {
	for {
		if i == 0 {
			// First edge: attach uniformly within the seed set [0, M).
			rng := p.slotRNG(0)
			return rng.Uint64n(p.M)
		}
		rng := p.slotRNG(i)
		r := rng.Uint64n(2 * i)
		j := r / 2
		if r%2 == 0 {
			return p.M + j/p.M // source of edge j, closed form
		}
		i = j // copy the target of edge j: re-run its own resolution
	}
}
