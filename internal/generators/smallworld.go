package generators

import (
	"havoqgt/internal/graph"
	"havoqgt/internal/xrand"
)

// SmallWorld holds the parameters of the Watts–Strogatz small-world
// generator: a ring lattice where every vertex connects to its K nearest
// neighbors (K/2 on each side), with each edge's far endpoint rewired to a
// uniformly random vertex with probability Rewire. Rewire=0 is a ring
// (diameter ~ N/K); increasing Rewire collapses the diameter toward that of a
// random graph, which is the knob Figures 7 and 10 sweep. Degree stays
// uniform (~K), isolating diameter effects from hub effects.
type SmallWorld struct {
	NumVertices uint64
	K           uint64  // ring degree; K/2 neighbors on each side
	Rewire      float64 // per-edge rewire probability
	Seed        uint64
	Permute     bool
}

// NewSmallWorld returns a small-world generator with label permutation
// enabled.
func NewSmallWorld(n, k uint64, rewire float64, seed uint64) SmallWorld {
	return SmallWorld{NumVertices: n, K: k, Rewire: rewire, Seed: seed, Permute: true}
}

// NumEdges returns the number of generated (directed) edges: N * K/2.
func (p SmallWorld) NumEdges() uint64 { return p.NumVertices * (p.K / 2) }

// Generate produces the full small-world edge list.
func (p SmallWorld) Generate() []graph.Edge { return p.GenerateChunk(0, 1) }

// GenerateChunk produces rank's share of the edges when split across size
// ranks; each edge is generated from its own substream so any decomposition
// yields the same global list.
func (p SmallWorld) GenerateChunk(rank, size int) []graph.Edge {
	if rank < 0 || size <= 0 || rank >= size {
		panic("generators: invalid chunk rank/size")
	}
	half := p.K / 2
	if half == 0 || p.NumVertices < 2 {
		return nil
	}
	total := p.NumEdges()
	lo, hi := chunkRange(total, rank, size)
	edges := make([]graph.Edge, 0, hi-lo)
	var perm *xrand.Bijection
	if p.Permute {
		perm = xrand.NewBijection(p.NumVertices, p.Seed^0x7f4a7c159e3779b9)
	}
	for i := lo; i < hi; i++ {
		v := i / half
		j := i % half
		dst := (v + j + 1) % p.NumVertices
		rng := xrand.Seeded(xrand.Mix64(p.Seed^0xc3b2ae355bd1e995) ^ xrand.Mix64(i+1))
		if p.Rewire > 0 && rng.Bool(p.Rewire) {
			// Rewire to a uniform non-self endpoint.
			dst = rng.Uint64n(p.NumVertices - 1)
			if dst >= v {
				dst++
			}
		}
		src := v
		if perm != nil {
			src = perm.Apply(src)
			dst = perm.Apply(dst)
		}
		edges = append(edges, graph.Edge{Src: graph.Vertex(src), Dst: graph.Vertex(dst)})
	}
	return edges
}
