// Package generators implements the three synthetic graph models used in the
// paper's evaluation (§VII-A):
//
//   - RMAT with the Graph500 V1.2 generator parameters (scale-free, the
//     Graph500 benchmark input),
//   - Preferential Attachment (Barabási–Albert) with an optional random
//     rewire step to interpolate toward a random graph,
//   - Small World (Watts–Strogatz) with uniform degree and a rewire
//     probability controlling the diameter.
//
// After generation all vertex labels are uniformly permuted (via a keyed
// Feistel bijection) to destroy any locality artifacts from the generators,
// exactly as the paper does.
//
// Generators are deterministic given (params, seed) and support distributed
// generation: GenerateChunk produces rank r's share of the edges so that the
// concatenation over all ranks equals the full edge list.
package generators

import (
	"havoqgt/internal/graph"
	"havoqgt/internal/xrand"
)

// Graph500EdgeFactor is the benchmark's ratio of (directed generator) edges
// to vertices. Average undirected degree 16 means edgefactor 16.
const Graph500EdgeFactor = 16

// RMAT holds the parameters of the recursive-matrix generator.
// The Graph500 V1.2 specification fixes A=0.57, B=0.19, C=0.19, D=0.05.
type RMAT struct {
	Scale      uint   // graph has 2^Scale vertices
	EdgeFactor uint64 // number of generated edges = EdgeFactor << Scale
	A, B, C    float64
	// D is implicitly 1-A-B-C.
	Seed uint64
	// Permute applies a uniform label permutation after generation
	// (Graph500 requires it; defaults should set it true).
	Permute bool
	// NoiseAB perturbs the quadrant probabilities per level as the Graph500
	// reference generator does; kept optional and off by default for exact
	// reproducibility across chunk decompositions.
}

// NewGraph500 returns the RMAT parameters mandated by the Graph500 V1.2
// specification for the given scale.
func NewGraph500(scale uint, seed uint64) RMAT {
	return RMAT{
		Scale:      scale,
		EdgeFactor: Graph500EdgeFactor,
		A:          0.57, B: 0.19, C: 0.19,
		Seed:    seed,
		Permute: true,
	}
}

// NumVertices returns 2^Scale.
func (p RMAT) NumVertices() uint64 { return uint64(1) << p.Scale }

// NumEdges returns the number of generated (directed) edges.
func (p RMAT) NumEdges() uint64 { return p.EdgeFactor << p.Scale }

// Generate produces the full RMAT edge list.
func (p RMAT) Generate() []graph.Edge {
	return p.GenerateChunk(0, 1)
}

// GenerateChunk produces rank's share of the edge list when generation is
// split across size ranks. Each edge index is generated from its own
// deterministic substream, so the union over ranks is identical to Generate()
// regardless of size.
func (p RMAT) GenerateChunk(rank, size int) []graph.Edge {
	if rank < 0 || size <= 0 || rank >= size {
		panic("generators: invalid chunk rank/size")
	}
	total := p.NumEdges()
	lo, hi := chunkRange(total, rank, size)
	edges := make([]graph.Edge, 0, hi-lo)
	var perm *xrand.Bijection
	if p.Permute {
		perm = xrand.NewBijection(p.NumVertices(), p.Seed^0xa5a5a5a5a5a5a5a5)
	}
	for i := lo; i < hi; i++ {
		rng := xrand.Seeded(xrand.Mix64(p.Seed) ^ xrand.Mix64(i+0x100000000))
		src, dst := p.edge(&rng)
		if perm != nil {
			src = perm.Apply(src)
			dst = perm.Apply(dst)
		}
		edges = append(edges, graph.Edge{Src: graph.Vertex(src), Dst: graph.Vertex(dst)})
	}
	return edges
}

// edge samples one (src, dst) pair by recursive quadrant descent.
func (p RMAT) edge(rng *xrand.Rand) (src, dst uint64) {
	ab := p.A + p.B
	abc := ab + p.C
	for level := uint(0); level < p.Scale; level++ {
		r := rng.Float64()
		switch {
		case r < p.A:
			// top-left quadrant: no bits set
		case r < ab:
			dst |= 1 << level
		case r < abc:
			src |= 1 << level
		default:
			src |= 1 << level
			dst |= 1 << level
		}
	}
	return src, dst
}

// chunkRange splits [0, total) into size contiguous ranges and returns the
// rank-th one. Ranges differ in length by at most one.
func chunkRange(total uint64, rank, size int) (lo, hi uint64) {
	q := total / uint64(size)
	r := total % uint64(size)
	u := uint64(rank)
	lo = q*u + min(u, r)
	hi = lo + q
	if u < r {
		hi++
	}
	return lo, hi
}
