package generators

import (
	"testing"

	"havoqgt/internal/graph"
)

func TestChunkRangeCoversAll(t *testing.T) {
	for _, total := range []uint64{0, 1, 7, 100, 101} {
		for _, size := range []int{1, 2, 3, 7, 16} {
			var sum uint64
			prev := uint64(0)
			for r := 0; r < size; r++ {
				lo, hi := chunkRange(total, r, size)
				if lo != prev {
					t.Fatalf("total=%d size=%d rank=%d: lo=%d, want %d", total, size, r, lo, prev)
				}
				if hi < lo {
					t.Fatalf("negative range at rank %d", r)
				}
				sum += hi - lo
				prev = hi
			}
			if sum != total || prev != total {
				t.Fatalf("total=%d size=%d: covered %d", total, size, sum)
			}
		}
	}
}

func TestRMATChunksMatchFull(t *testing.T) {
	p := NewGraph500(8, 42)
	full := p.Generate()
	for _, size := range []int{2, 3, 5} {
		var combined []graph.Edge
		for r := 0; r < size; r++ {
			combined = append(combined, p.GenerateChunk(r, size)...)
		}
		if len(combined) != len(full) {
			t.Fatalf("size=%d: %d edges, want %d", size, len(combined), len(full))
		}
		for i := range full {
			if combined[i] != full[i] {
				t.Fatalf("size=%d: edge %d = %v, want %v", size, i, combined[i], full[i])
			}
		}
	}
}

func TestRMATInRangeAndSized(t *testing.T) {
	p := NewGraph500(10, 7)
	edges := p.Generate()
	if uint64(len(edges)) != p.NumEdges() {
		t.Fatalf("generated %d edges, want %d", len(edges), p.NumEdges())
	}
	n := p.NumVertices()
	for _, e := range edges {
		if uint64(e.Src) >= n || uint64(e.Dst) >= n {
			t.Fatalf("edge %v out of range (n=%d)", e, n)
		}
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := NewGraph500(9, 1).Generate()
	b := NewGraph500(9, 1).Generate()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed RMAT differs at edge %d", i)
		}
	}
	c := NewGraph500(9, 2).Generate()
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > len(a)/10 {
		t.Fatalf("different seeds look identical: %d/%d equal", same, len(a))
	}
}

func TestRMATIsSkewed(t *testing.T) {
	// RMAT with Graph500 parameters must produce hubs: max degree far above
	// the mean (16).
	p := NewGraph500(12, 3)
	edges := graph.Undirect(p.Generate())
	deg := graph.OutDegrees(edges, p.NumVertices())
	c := graph.Census(deg)
	if c.MaxDegree < 200 {
		t.Fatalf("max degree %d too small for a scale-free graph (mean 32)", c.MaxDegree)
	}
}

func TestRMATPermutationChangesLayoutNotStructure(t *testing.T) {
	p := NewGraph500(8, 5)
	p.Permute = false
	plain := p.Generate()
	p.Permute = true
	perm := p.Generate()
	// Degree multiset (as a sorted histogram) must be preserved.
	n := p.NumVertices()
	h1 := graph.DegreeHistogram(graph.OutDegrees(plain, n))
	h2 := graph.DegreeHistogram(graph.OutDegrees(perm, n))
	if len(h1) != len(h2) {
		t.Fatalf("degree histograms differ in support: %d vs %d", len(h1), len(h2))
	}
	for d, c := range h1 {
		if h2[d] != c {
			t.Fatalf("degree %d: %d vertices plain vs %d permuted", d, c, h2[d])
		}
	}
	// But the edge lists themselves must differ (labels scrambled).
	same := 0
	for i := range plain {
		if plain[i] == perm[i] {
			same++
		}
	}
	if same > len(plain)/10 {
		t.Fatalf("permutation left %d/%d edges unchanged", same, len(plain))
	}
}

func TestPAChunksMatchFull(t *testing.T) {
	p := NewPA(1<<8, 4, 0.1, 11)
	full := p.Generate()
	var combined []graph.Edge
	for r := 0; r < 3; r++ {
		combined = append(combined, p.GenerateChunk(r, 3)...)
	}
	if len(combined) != len(full) {
		t.Fatalf("%d edges, want %d", len(combined), len(full))
	}
	for i := range full {
		if combined[i] != full[i] {
			t.Fatalf("edge %d = %v, want %v", i, combined[i], full[i])
		}
	}
}

func TestPAEdgeCountAndRange(t *testing.T) {
	p := NewPA(1000, 3, 0, 2)
	edges := p.Generate()
	if uint64(len(edges)) != p.NumEdges() {
		t.Fatalf("generated %d, want %d", len(edges), p.NumEdges())
	}
	for _, e := range edges {
		if uint64(e.Src) >= 1000 || uint64(e.Dst) >= 1000 {
			t.Fatalf("edge %v out of range", e)
		}
	}
}

func TestPAIsSkewedAndRewireFlattens(t *testing.T) {
	n := uint64(1 << 13)
	pure := NewPA(n, 8, 0, 9)
	rewired := NewPA(n, 8, 0.9, 9)
	maxDeg := func(p PA) uint32 {
		edges := graph.Undirect(p.Generate())
		return graph.Census(graph.OutDegrees(edges, n)).MaxDegree
	}
	mp, mr := maxDeg(pure), maxDeg(rewired)
	if mp < 100 {
		t.Fatalf("pure PA max degree %d, expected heavy hub", mp)
	}
	if mr*2 > mp {
		t.Fatalf("rewiring should flatten hubs: pure %d vs rewired %d", mp, mr)
	}
}

func TestSmallWorldDegreeUniform(t *testing.T) {
	p := NewSmallWorld(1<<10, 8, 0, 4)
	edges := p.Generate()
	if uint64(len(edges)) != p.NumEdges() {
		t.Fatalf("generated %d, want %d", len(edges), p.NumEdges())
	}
	deg := graph.OutDegrees(edges, p.NumVertices)
	for v, d := range deg {
		if d != 4 { // K/2 out-edges per vertex
			t.Fatalf("vertex %d out-degree %d, want 4", v, d)
		}
	}
}

func TestSmallWorldChunksMatchFull(t *testing.T) {
	p := NewSmallWorld(1<<9, 6, 0.2, 8)
	full := p.Generate()
	var combined []graph.Edge
	for r := 0; r < 4; r++ {
		combined = append(combined, p.GenerateChunk(r, 4)...)
	}
	for i := range full {
		if combined[i] != full[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestSmallWorldRewireNoSelfLoops(t *testing.T) {
	p := NewSmallWorld(1<<9, 4, 1.0, 3)
	p.Permute = false
	for _, e := range p.Generate() {
		if e.IsSelfLoop() {
			t.Fatalf("rewire produced self loop %v", e)
		}
	}
}

func TestGeneratorsRejectBadChunks(t *testing.T) {
	for _, f := range []func(){
		func() { NewGraph500(4, 1).GenerateChunk(2, 2) },
		func() { NewPA(16, 2, 0, 1).GenerateChunk(-1, 2) },
		func() { NewSmallWorld(16, 2, 0, 1).GenerateChunk(0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid chunk did not panic")
				}
			}()
			f()
		}()
	}
}
