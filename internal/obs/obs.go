// Package obs is the repository's unified observability layer: a lock-cheap
// metrics registry (named counters, per-rank counter vectors, gauges, and
// power-of-two histograms) plus a phase-scoped span/tracing API.
//
// The paper's entire evaluation is communication behaviour — messages, bytes,
// hops, and quiescence waves per BFS/CC/k-core phase — so every subsystem of
// the simulated machine (internal/rt, internal/mailbox, internal/termination,
// internal/core, the algorithm drivers) reports into one Registry attached to
// the rt.Machine. The experiment harness snapshots the registry between
// phases and exports JSON/CSV rows carrying the full communication profile,
// following the measurement methodology of Ammar & Özsu's "Experimental
// Analysis of Distributed Graph Systems" and the per-device/per-phase
// instrumentation style of FlashGraph.
//
// Concurrency model. Metric handles are registered once (get-or-create under
// a mutex) and then updated with plain atomic operations; per-rank vectors
// give each simulated rank a cache-line-padded slot so the hot send/receive
// paths never contend. Snapshot and Reset may run concurrently with updates:
// they see a momentary, per-cell-atomic view, which is exact whenever the
// caller brackets them with machine barriers (as the harness does).
//
// Tracing. Setting the HAVOQ_TRACE environment variable streams one JSON
// line per completed span: "1" or "stderr" to standard error, any other
// non-empty value to that file (append).
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// padBytes pads a 8-byte atomic out to a 64-byte cache line so adjacent
// ranks' slots never false-share.
const padBytes = 56

// Counter is a monotonically increasing cluster-wide counter.
type Counter struct {
	v atomic.Uint64
	_ [padBytes]byte //nolint:unused // padding
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) reset() { c.v.Store(0) }

// paddedU64 is one rank's cache-line-isolated slot of a PerRank vector.
type paddedU64 struct {
	v atomic.Uint64
	_ [padBytes]byte //nolint:unused // padding
}

// PerRank is a counter vector with one padded slot per simulated rank, so
// hot per-rank paths (transport sends, mailbox records) update without any
// cross-rank cache traffic.
type PerRank struct {
	cells []paddedU64
}

// Add adds n to rank's slot.
func (c *PerRank) Add(rank int, n uint64) { c.cells[rank].v.Add(n) }

// Inc adds one to rank's slot.
func (c *PerRank) Inc(rank int) { c.cells[rank].v.Add(1) }

// Rank returns rank's slot value.
func (c *PerRank) Rank(rank int) uint64 { return c.cells[rank].v.Load() }

// Len returns the number of rank slots.
func (c *PerRank) Len() int { return len(c.cells) }

// Total sums all rank slots.
func (c *PerRank) Total() uint64 {
	var t uint64
	for i := range c.cells {
		t += c.cells[i].v.Load()
	}
	return t
}

// Values returns a copy of the per-rank values.
func (c *PerRank) Values() []uint64 {
	out := make([]uint64, len(c.cells))
	for i := range c.cells {
		out[i] = c.cells[i].v.Load()
	}
	return out
}

func (c *PerRank) reset() {
	for i := range c.cells {
		c.cells[i].v.Store(0)
	}
}

// Gauge is an instantaneous signed value (queue depth, buffer occupancy).
type Gauge struct {
	v atomic.Int64
	_ [padBytes]byte //nolint:unused // padding
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) reset() { g.v.Store(0) }

// Registry holds every metric of one simulated machine. The zero value is
// not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	perRank  map[string]*PerRank
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	spanMu sync.Mutex
	spans  []SpanEvent

	tracer *tracer
}

// MaxSpanLog bounds the in-memory span log; older spans are dropped (they
// have already been streamed if tracing is enabled).
const MaxSpanLog = 4096

// NewRegistry returns an empty registry. Tracing is armed from the
// HAVOQ_TRACE environment variable (see package comment).
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		perRank:  make(map[string]*PerRank),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		tracer:   tracerFromEnv(),
	}
}

// Counter returns the named counter, creating it on first use. Handles are
// stable across Reset.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// PerRank returns the named per-rank counter vector with at least p slots,
// creating it on first use. Handles are stable across Reset.
func (r *Registry) PerRank(name string, p int) *PerRank {
	r.mu.RLock()
	c := r.perRank[name]
	r.mu.RUnlock()
	if c != nil && c.Len() >= p {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c = r.perRank[name]
	if c == nil || c.Len() < p {
		grown := &PerRank{cells: make([]paddedU64, p)}
		if c != nil {
			for i := range c.cells {
				grown.cells[i].v.Store(c.cells[i].v.Load())
			}
		}
		c = grown
		r.perRank[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every registered metric and clears the span log, atomically
// per cell. This is the single reset path for the whole machine — subsystem
// adapters (rt.Machine.ResetStats, the harness's per-phase brackets) must
// funnel through it so an experiment phase can never observe a half-reset
// counter set split across subsystems.
func (r *Registry) Reset() {
	r.mu.RLock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, c := range r.perRank {
		c.reset()
	}
	for _, g := range r.gauges {
		g.reset()
	}
	for _, h := range r.hists {
		h.reset()
	}
	r.mu.RUnlock()
	r.spanMu.Lock()
	r.spans = nil
	r.spanMu.Unlock()
}

// counterTotals returns the instantaneous totals of every counter and
// per-rank vector (per-rank vectors summed), keyed by name. Used to compute
// span deltas.
func (r *Registry) counterTotals() map[string]uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]uint64, len(r.counters)+len(r.perRank))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, c := range r.perRank {
		out[name] = c.Total()
	}
	return out
}

// CounterNames returns the sorted names of all registered counters and
// per-rank vectors.
func (r *Registry) CounterNames() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.counters)+len(r.perRank))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.perRank {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}
