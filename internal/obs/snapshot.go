package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Snapshot is a point-in-time copy of every metric in a Registry, suitable
// for JSON/CSV export. Per-rank vectors carry both the total and the
// per-rank breakdown.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters,omitempty"`
	PerRank    map[string][]uint64     `json:"per_rank,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
	Spans      []SpanEvent             `json:"spans,omitempty"`
}

// Snapshot copies the registry's current state. Concurrent updates are
// tolerated (each cell is read atomically); bracket with a barrier for an
// exact phase boundary.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)+len(r.perRank)),
		PerRank:    make(map[string][]uint64, len(r.perRank)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, c := range r.perRank {
		vals := c.Values()
		s.PerRank[name] = vals
		var t uint64
		for _, v := range vals {
			t += v
		}
		s.Counters[name] = t
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	r.mu.RUnlock()
	s.Spans = r.Spans()
	return s
}

// Counter returns the snapshot total for name (counters and per-rank vector
// totals share one namespace), or 0 when absent.
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// WriteJSON writes the snapshot as one indented JSON document.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV writes the snapshot as metric rows:
//
//	type,name,detail,value
//
// Counters emit one "total" row plus one row per rank when a per-rank
// breakdown exists; histograms emit count/sum/mean plus one row per
// non-empty bucket (detail "le=<bound>"); spans emit their duration with
// detail "rank=<r>". Rows are sorted by (type, name) for diff-stability.
func (s Snapshot) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"type", "name", "detail", "value"}); err != nil {
		return err
	}
	for _, name := range sortedKeys(s.Counters) {
		if err := cw.Write([]string{"counter", name, "total", fmt.Sprint(s.Counters[name])}); err != nil {
			return err
		}
		for rank, v := range s.PerRank[name] {
			if err := cw.Write([]string{"counter", name, fmt.Sprintf("rank=%d", rank), fmt.Sprint(v)}); err != nil {
				return err
			}
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if err := cw.Write([]string{"gauge", name, "", fmt.Sprint(s.Gauges[name])}); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		rows := [][]string{
			{"histogram", name, "count", fmt.Sprint(h.Count)},
			{"histogram", name, "sum", fmt.Sprint(h.Sum)},
			{"histogram", name, "mean", fmt.Sprintf("%.4g", h.Mean())},
		}
		for _, b := range h.Buckets {
			rows = append(rows, []string{"histogram", name, fmt.Sprintf("le=%d", b.UpperBound), fmt.Sprint(b.Count)})
		}
		for _, row := range rows {
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	for _, ev := range s.Spans {
		if err := cw.Write([]string{"span", ev.Name, fmt.Sprintf("rank=%d", ev.Rank), fmt.Sprint(ev.DurNS)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
