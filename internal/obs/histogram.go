package obs

import (
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the number of histogram buckets. Bucket 0 holds the value 0;
// bucket i (1 <= i < NumBuckets-1) holds values v with bits.Len64(v) == i,
// i.e. v in [2^(i-1), 2^i - 1]; the last bucket is the overflow bucket for
// everything at or above 2^(NumBuckets-2). 44 buckets cover nanosecond
// latencies up to ~2.4 hours and byte sizes up to 4 TiB before overflowing.
const NumBuckets = 44

// Histogram is a power-of-two exponential histogram of uint64 observations
// (message latency in nanoseconds, envelope bytes, queue depths). Updates
// are a single atomic add on the bucket plus two atomic adds for count/sum.
type Histogram struct {
	counts [NumBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
}

// BucketIndex returns the bucket an observation of v lands in.
func BucketIndex(v uint64) int {
	b := bits.Len64(v)
	if b >= NumBuckets-1 {
		return NumBuckets - 1
	}
	return b
}

// BucketUpperBound returns the inclusive upper bound of bucket i
// (math.MaxUint64 for the overflow bucket).
func BucketUpperBound(i int) uint64 {
	switch {
	case i <= 0:
		return 0
	case i >= NumBuckets-1:
		return ^uint64(0)
	default:
		return 1<<uint(i) - 1
	}
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.counts[BucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Mean returns the average observation (0 with no observations).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// HistBucket is one non-empty bucket of a histogram snapshot.
type HistBucket struct {
	// UpperBound is the inclusive upper bound of the bucket.
	UpperBound uint64 `json:"le"`
	Count      uint64 `json:"count"`
}

// HistSnapshot is a point-in-time copy of a histogram. Only non-empty
// buckets are materialized.
type HistSnapshot struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := 0; i < NumBuckets; i++ {
		if n := h.counts[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, HistBucket{UpperBound: BucketUpperBound(i), Count: n})
		}
	}
	return s
}

// Quantile returns an upper-bound estimate of the q-quantile (0 <= q <= 1)
// from the bucketed counts: the upper bound of the bucket in which the
// q-quantile observation falls. Returns 0 with no observations.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(s.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= target {
			return b.UpperBound
		}
	}
	return s.Buckets[len(s.Buckets)-1].UpperBound
}

// Mean returns the snapshot's average observation (0 with no observations).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Sub returns the histogram delta s − prev: the distribution of
// observations recorded between the two snapshots of one monotonically
// growing histogram (prev taken first). Buckets absent from prev are kept
// whole; buckets that did not grow are dropped. This is how per-phase
// percentiles are computed from a registry that is never reset mid-serve.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	prevCounts := make(map[uint64]uint64, len(prev.Buckets))
	for _, b := range prev.Buckets {
		prevCounts[b.UpperBound] = b.Count
	}
	out := HistSnapshot{Count: s.Count - prev.Count, Sum: s.Sum - prev.Sum}
	for _, b := range s.Buckets {
		if d := b.Count - prevCounts[b.UpperBound]; d > 0 {
			out.Buckets = append(out.Buckets, HistBucket{UpperBound: b.UpperBound, Count: d})
		}
	}
	return out
}
