package obs

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// TraceEnv is the environment variable that arms span streaming: "1" or
// "stderr" streams to standard error, any other non-empty value appends to
// that file path, empty or "0" disables tracing.
const TraceEnv = "HAVOQ_TRACE"

// SpanEvent is one completed phase span: a named, rank-attributed timed
// section with the cluster-wide counter deltas that accrued inside it.
type SpanEvent struct {
	Name  string `json:"name"`
	Rank  int    `json:"rank"`
	Start int64  `json:"start_unix_ns"`
	DurNS int64  `json:"duration_ns"`
	// Deltas maps counter name -> increase during the span. Only the span
	// from rank 0 carries deltas (counters are cluster-wide; attributing the
	// same delta to every rank's span would multiply-count it).
	Deltas map[string]uint64 `json:"deltas,omitempty"`
}

// Span is an in-progress phase measurement created by Registry.StartPhase.
type Span struct {
	reg   *Registry
	name  string
	rank  int
	start time.Time
	base  map[string]uint64 // counter totals at start; nil on ranks != 0
	done  bool
}

// StartPhase opens a phase-scoped span, e.g. StartPhase("bfs.run", rank).
// The returned span must be closed with End (or Cancel). On rank 0 the span
// snapshots all counter totals so End can attach the phase's cluster-wide
// counter deltas; other ranks record timing only.
func (r *Registry) StartPhase(name string, rank int) *Span {
	s := &Span{reg: r, name: name, rank: rank, start: time.Now()}
	if rank == 0 {
		s.base = r.counterTotals()
	}
	return s
}

// End closes the span: the duration is recorded into the histogram
// "phase.<name>.ns", the completed SpanEvent is appended to the registry's
// span log, and — if tracing is enabled — streamed as one JSON line.
// End is idempotent; the first call wins.
func (s *Span) End() SpanEvent {
	if s.done {
		return SpanEvent{Name: s.name, Rank: s.rank}
	}
	s.done = true
	dur := time.Since(s.start)
	ev := SpanEvent{
		Name:  s.name,
		Rank:  s.rank,
		Start: s.start.UnixNano(),
		DurNS: dur.Nanoseconds(),
	}
	if s.base != nil {
		now := s.reg.counterTotals()
		deltas := make(map[string]uint64)
		for name, v := range now {
			if d := v - s.base[name]; d > 0 {
				deltas[name] = d
			}
		}
		if len(deltas) > 0 {
			ev.Deltas = deltas
		}
	}
	s.reg.Histogram("phase." + s.name + ".ns").Observe(uint64(dur.Nanoseconds()))
	s.reg.spanMu.Lock()
	if len(s.reg.spans) < MaxSpanLog {
		s.reg.spans = append(s.reg.spans, ev)
	}
	s.reg.spanMu.Unlock()
	s.reg.tracer.emit(ev)
	return ev
}

// Cancel abandons the span without recording anything.
func (s *Span) Cancel() { s.done = true }

// Spans returns a copy of the completed-span log (cleared by Reset).
func (r *Registry) Spans() []SpanEvent {
	r.spanMu.Lock()
	defer r.spanMu.Unlock()
	return append([]SpanEvent(nil), r.spans...)
}

// TraceEnabled reports whether span streaming is armed.
func (r *Registry) TraceEnabled() bool { return r.tracer != nil }

// tracer streams span events as JSON lines to a writer.
type tracer struct {
	mu  sync.Mutex
	w   io.Writer
	enc *json.Encoder
}

// tracerFromEnv builds a tracer from TraceEnv, or nil when disabled. A file
// target that cannot be opened falls back to stderr rather than silently
// dropping the trace.
func tracerFromEnv() *tracer {
	v := os.Getenv(TraceEnv)
	switch v {
	case "", "0":
		return nil
	case "1", "stderr":
		return newTracer(os.Stderr)
	}
	f, err := os.OpenFile(v, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return newTracer(os.Stderr)
	}
	return newTracer(f)
}

func newTracer(w io.Writer) *tracer {
	return &tracer{w: w, enc: json.NewEncoder(w)}
}

// emit writes one span event; nil-safe.
func (t *tracer) emit(ev SpanEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	_ = t.enc.Encode(ev)
	t.mu.Unlock()
}
