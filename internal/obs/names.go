package obs

// Canonical metric names. Every subsystem of the simulated machine reports
// under these names so the harness can build communication profiles without
// knowing subsystem internals. Per-rank metrics are PerRank vectors (the
// snapshot carries the per-rank breakdown and the total under the same
// name); the rest are plain counters or histograms.
const (
	// Transport (internal/rt), per source rank.
	RTMsgs  = "rt.msgs"  // transport messages sent
	RTBytes = "rt.bytes" // transport payload bytes sent

	// Transport, per message kind ("mailbox", "control", "coll"):
	// "rt.msgs.<kind>" and "rt.bytes.<kind>" via RTKindMsgs/RTKindBytes.

	// RTMsgLatencyNS is the histogram of simulated transport latency —
	// nanoseconds between a message's send and the destination rank
	// draining it.
	RTMsgLatencyNS = "rt.msg_latency_ns"

	// Collective scratch-pool accounting: 8-byte reduction payloads served
	// from recycled buffers (hits) vs freshly allocated (misses). Recycling
	// is disabled once a fault-injecting transport has been installed, so
	// chaos runs report only misses.
	RTCollScratchHits   = "rt.coll_scratch_hits"
	RTCollScratchMisses = "rt.coll_scratch_misses"

	// Routed mailbox (internal/mailbox), per rank.
	MBRecordsSent      = "mailbox.records_sent"      // records entered via Send
	MBRecordsDelivered = "mailbox.records_delivered" // records delivered at final dest
	MBRecordsForwarded = "mailbox.records_forwarded" // records re-routed through a rank
	MBEnvelopesSent    = "mailbox.envelopes_sent"    // aggregated transport messages shipped
	MBEnvelopesRecv    = "mailbox.envelopes_recv"
	MBFlushes          = "mailbox.flushes" // idle-driven FlushAll envelope shipments
	// MBDecodeErrors counts malformed envelope contents rejected by Box.Poll
	// (truncated headers, oversized record lengths, out-of-range dests). Any
	// nonzero value on a healthy traversal indicates envelope corruption.
	MBDecodeErrors = "mailbox.decode_errors"
	// MBHops counts transport hops taken by routed records: every enqueue
	// toward a next hop is one hop (loopback delivery is zero hops), so
	// hops = non-loopback records sent + records forwarded. The per-record
	// mean hop count is MBHops / MBRecordsSent; it approaches the
	// topology's diameter as routing indirection grows (1 for 1D, up to 2
	// for 2D, 3 for 3D).
	MBHops = "mailbox.hops"

	// MBEnvelopeBytes is the histogram of aggregation buffer occupancy at
	// ship time (framed envelope bytes — record payloads plus per-record
	// headers): how full buffers are when they go out, the direct measure of
	// aggregation quality per topology.
	MBEnvelopeBytes = "mailbox.envelope_bytes"

	// Envelope-buffer pool accounting (DESIGN.md §9). A "get" is one request
	// for an empty aggregation buffer; a "hit" is a get served from the
	// per-box free-list (fed by consumed inbound envelopes on the raw path
	// and by post-frame-copy aggregation buffers on the reliable path).
	// RecycledBytes counts buffer capacity returned to the pool; PoolFree is
	// the machine-wide gauge of buffers currently parked in pools. The pool
	// hit rate, hits/gets, is the direct measure of how close the message
	// plane runs to zero steady-state allocation.
	MBPoolGets          = "mailbox.pool_gets"
	MBPoolHits          = "mailbox.pool_hits"
	MBPoolRecycledBytes = "mailbox.pool_recycled_bytes"
	MBPoolFree          = "mailbox.pool_free"

	// MBArenaPollBytes is the histogram of delivery-arena occupancy at each
	// Poll handoff: the bytes of record payloads delivered in one poll epoch,
	// all carved from one grow-only arena instead of per-record allocations.
	MBArenaPollBytes = "mailbox.arena_poll_bytes"

	// Reliable-delivery counters (mailbox.WithReliable): the recovery half
	// of the fault plane. Retransmits counts envelope re-sends after an RTO
	// expiry; the *Dropped counters classify inbound envelopes discarded by
	// the reliability layer (already-delivered duplicates, checksum
	// failures, and stale epochs from a previous traversal's channels).
	MBRetransmits    = "mailbox.retransmits"
	MBDupDropped     = "mailbox.dup_dropped"
	MBCorruptDropped = "mailbox.corrupt_dropped"
	MBStaleDropped   = "mailbox.stale_dropped"
	MBAcksSent       = "mailbox.acks_sent"

	// Networked byte transport (internal/net): the TCP fabric that carries
	// rt messages between cluster processes. Frames are the unit on the wire
	// (one rt message per frame, plus ping/pong probes); bytes count framed
	// payload + header. Reconnects counts dial attempts made after an
	// established connection broke or a previous attempt failed — zero on a
	// healthy localhost cluster.
	NetFramesOut  = "net.frames_out"
	NetFramesIn   = "net.frames_in"
	NetBytesOut   = "net.bytes_out"
	NetBytesIn    = "net.bytes_in"
	NetReconnects = "net.reconnects"

	// Termination detection (internal/termination).
	TermWaves   = "term.waves"   // completed quiescence-detection waves
	TermRetests = "term.retests" // waves that completed without detecting quiescence

	// Visitor queue (internal/core), per rank.
	CorePushed        = "core.pushed"
	CoreGhostFiltered = "core.ghost_filtered"
	CoreReceived      = "core.received"
	CoreQueued        = "core.queued"
	CoreExecuted      = "core.executed"
	CoreForwarded     = "core.forwarded"

	// CoreQueueDepth is the histogram of local priority-queue depth sampled
	// once per visit batch.
	CoreQueueDepth = "core.queue_depth"

	// Multi-query execution engine (internal/engine).
	EngineSubmitted = "engine.submitted" // queries accepted by Submit
	EngineCompleted = "engine.completed" // queries run to quiescence
	EngineCancelled = "engine.cancelled" // queries cancelled (incl. deadline expiry)
	EngineRejected  = "engine.rejected"  // queries refused by admission control

	// EngineInFlight / EngineWaiting are gauges of the admission controller's
	// current occupancy: traversals executing vs. parked in the wait queue.
	EngineInFlight = "engine.in_flight"
	EngineWaiting  = "engine.waiting"

	// EngineQueryNS is the histogram of end-to-end query latency
	// (submit→completion), nanoseconds.
	EngineQueryNS = "engine.query_ns"

	// EngineDeadlineExpired counts queries cancelled by their own deadline
	// (a subset of EngineCancelled); EngineResumed counts queries admitted
	// with a checkpoint from a previous attempt (the recovery path).
	EngineDeadlineExpired = "engine.deadline_expired"
	EngineResumed         = "engine.resumed"

	// Out-of-core serving (internal/ooc + core parking). When a partition's
	// CSR targets live behind the page cache, a visitor popped for a vertex
	// whose adjacency page is absent is parked (CoreParked) instead of
	// executed, a demand fetch is issued, and the visitor re-enters the heap
	// when the page arrives (CoreUnparked). Parked − Unparked is the gauge of
	// visits currently pending on device I/O.
	CoreParked   = "core.parked"
	CoreUnparked = "core.unparked"

	// Pager fetch pipeline: demand fetches (a parked visit needs the page),
	// prefetches issued ahead of the wave from frontier composition, and
	// prefetches dropped because the prefetch queue was full (demand fetches
	// are never dropped).
	OOCDemandFetches   = "ooc.demand_fetches"
	OOCPrefetches      = "ooc.prefetches"
	OOCPrefetchDropped = "ooc.prefetch_dropped"

	// Device-retry plane (pagecache.RetryDevice) aggregated across ranks:
	// re-issued read attempts and reads that consumed their whole attempt
	// budget (each of which surfaced a pagecache.ErrExhausted upward).
	PCRetries   = "pagecache.retries"
	PCExhausted = "pagecache.exhausted"

	// Front-door traffic plane (internal/traffic): the admission layer in
	// front of the engine. Admitted counts requests that passed their
	// tenant's token bucket; QuotaShed counts requests refused by it (the
	// 429 + Retry-After path). CollapseLeaders counts engine executions led
	// on behalf of a collapse group; CollapseHits counts requests that
	// joined an identical in-flight execution instead of starting their
	// own. CacheHits/CacheMisses/CacheEvictions account the bounded result
	// cache, with CacheBytes/CacheEntries gauges of its current occupancy;
	// Tenants gauges the distinct token buckets installed.
	TrafficAdmitted        = "traffic.admitted"
	TrafficQuotaShed       = "traffic.quota_shed"
	TrafficCollapseLeaders = "traffic.collapse_leaders"
	TrafficCollapseHits    = "traffic.collapse_hits"
	TrafficCacheHits       = "traffic.cache_hits"
	TrafficCacheMisses     = "traffic.cache_misses"
	TrafficCacheEvictions  = "traffic.cache_evictions"
	TrafficCacheBytes      = "traffic.cache_bytes"
	TrafficCacheEntries    = "traffic.cache_entries"
	TrafficTenants         = "traffic.tenants"

	// TrafficRequestNS is the histogram of end-to-end served-request latency
	// at the HTTP front door (admission through response serialization),
	// nanoseconds. The loadbench percentiles (p50/p99/p999) come from
	// per-phase deltas of this histogram.
	TrafficRequestNS = "traffic.request_ns"
)

// FaultInjected returns the injected-fault counter name for a fault kind
// ("drop", "duplicate", "delay", "reorder", "corrupt", "stall",
// "device_read_error", "device_torn_read", "device_torn_write"). Every fault
// the internal/faults injector actually fires is counted under one of these,
// so experiments can report fault rates alongside communication profiles.
func FaultInjected(kind string) string { return "faults.injected." + kind }

// NetPeerRTTNS returns the per-peer round-trip-time histogram name for the
// networked transport's ping/pong probes (nanoseconds, one histogram per
// remote cluster process).
func NetPeerRTTNS(peer int) string { return "net.rtt_ns.p" + itoa(peer) }

// itoa is a dependency-free positive-int formatter (names.go stays
// import-free).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// RTKindMsgs returns the per-kind transport message counter name.
func RTKindMsgs(kind string) string { return "rt.msgs." + kind }

// RTKindBytes returns the per-kind transport byte counter name.
func RTKindBytes(kind string) string { return "rt.bytes." + kind }
