package obs

import "testing"

func TestHistSnapshotSubDelta(t *testing.T) {
	var h Histogram
	h.Observe(10)
	h.Observe(1000)
	before := h.Snapshot()
	h.Observe(10) // grows an existing bucket
	h.Observe(1 << 30)
	h.Observe(1 << 30) // new bucket, two observations
	after := h.Snapshot()

	d := after.Sub(before)
	if d.Count != 3 {
		t.Fatalf("delta count = %d, want 3", d.Count)
	}
	if want := uint64(10 + 2*(1<<30)); d.Sum != want {
		t.Fatalf("delta sum = %d, want %d", d.Sum, want)
	}
	got := map[uint64]uint64{}
	for _, b := range d.Buckets {
		got[b.UpperBound] = b.Count
	}
	if got[BucketUpperBound(BucketIndex(10))] != 1 {
		t.Fatalf("bucket for 10: %v", got)
	}
	if got[BucketUpperBound(BucketIndex(1<<30))] != 2 {
		t.Fatalf("bucket for 1<<30: %v", got)
	}
	// The value observed only before both snapshots must not appear.
	if _, ok := got[BucketUpperBound(BucketIndex(1000))]; ok {
		t.Fatalf("unchanged bucket leaked into delta: %v", got)
	}
}

func TestHistSnapshotSubQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(1 << 40) // old expensive phase
	}
	before := h.Snapshot()
	for i := 0; i < 100; i++ {
		h.Observe(100) // new cheap phase
	}
	d := h.Snapshot().Sub(before)
	// Quantiles over the delta reflect only the new phase: without Sub the
	// old 2^40 observations would dominate the p99.
	if q := d.Quantile(0.99); q >= 1<<40 {
		t.Fatalf("delta p99 = %d, contaminated by pre-phase observations", q)
	}
	if q := d.Quantile(0.5); q < 100 {
		t.Fatalf("delta p50 = %d, want >= 100", q)
	}
}

func TestHistSnapshotSubEmptyDelta(t *testing.T) {
	var h Histogram
	h.Observe(5)
	s := h.Snapshot()
	d := s.Sub(s)
	if d.Count != 0 || d.Sum != 0 || len(d.Buckets) != 0 {
		t.Fatalf("self-delta not empty: %+v", d)
	}
	if q := d.Quantile(0.99); q != 0 {
		t.Fatalf("empty delta quantile = %d", q)
	}
}
