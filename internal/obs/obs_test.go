package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentCounterIncrements mirrors TestStatsCounting in
// internal/rt/rt_test.go at the registry level: many goroutines hammering
// shared counter/per-rank/histogram handles must total exactly (run under
// -race in CI).
func TestConcurrentCounterIncrements(t *testing.T) {
	reg := NewRegistry()
	const workers = 8
	const perWorker = 10000
	c := reg.Counter("test.counter")
	pr := reg.PerRank("test.per_rank", workers)
	h := reg.Histogram("test.hist")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				pr.Add(w, 2)
				h.Observe(uint64(i))
				// Exercise the get-or-create path concurrently too.
				reg.Counter("test.counter").Add(1)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != 2*workers*perWorker {
		t.Errorf("counter = %d, want %d", got, 2*workers*perWorker)
	}
	if got := pr.Total(); got != 2*workers*perWorker {
		t.Errorf("per-rank total = %d, want %d", got, 2*workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		if got := pr.Rank(w); got != 2*perWorker {
			t.Errorf("rank %d = %d, want %d", w, got, 2*perWorker)
		}
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{1 << 10, 11},
		{1<<42 - 1, 42},
		{1 << 42, NumBuckets - 1}, // overflow bucket
		{^uint64(0), NumBuckets - 1},
	}
	for _, c := range cases {
		if got := BucketIndex(c.v); got != c.want {
			t.Errorf("BucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Upper bounds bracket their bucket: v <= BucketUpperBound(BucketIndex(v)).
	for _, c := range cases {
		ub := BucketUpperBound(BucketIndex(c.v))
		if c.v > ub {
			t.Errorf("value %d above its bucket upper bound %d", c.v, ub)
		}
	}
	if BucketUpperBound(0) != 0 {
		t.Errorf("bucket 0 upper bound = %d, want 0", BucketUpperBound(0))
	}
	if BucketUpperBound(3) != 7 {
		t.Errorf("bucket 3 upper bound = %d, want 7", BucketUpperBound(3))
	}
	if BucketUpperBound(NumBuckets-1) != ^uint64(0) {
		t.Error("overflow bucket must be unbounded")
	}

	h := &Histogram{}
	for _, v := range []uint64{0, 1, 2, 3, 7, 8, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 7 || s.Sum != 1021 {
		t.Fatalf("snapshot count/sum = %d/%d, want 7/1021", s.Count, s.Sum)
	}
	wantBuckets := map[uint64]uint64{0: 1, 1: 1, 3: 2, 7: 1, 15: 1, 1023: 1}
	if len(s.Buckets) != len(wantBuckets) {
		t.Fatalf("got %d non-empty buckets, want %d: %+v", len(s.Buckets), len(wantBuckets), s.Buckets)
	}
	for _, b := range s.Buckets {
		if wantBuckets[b.UpperBound] != b.Count {
			t.Errorf("bucket le=%d count=%d, want %d", b.UpperBound, b.Count, wantBuckets[b.UpperBound])
		}
	}
	if q := s.Quantile(0.5); q != 3 {
		t.Errorf("p50 = %d, want 3 (4th of 7 observations falls in le=3)", q)
	}
	if q := s.Quantile(1.0); q != 1023 {
		t.Errorf("p100 = %d, want 1023", q)
	}
}

func TestSnapshotAndResetSemantics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a").Add(5)
	reg.PerRank("b", 3).Add(1, 7)
	reg.PerRank("b", 3).Add(2, 3)
	reg.Gauge("g").Set(-4)
	reg.Histogram("h").Observe(100)
	sp := reg.StartPhase("phase", 0)
	reg.Counter("a").Add(10)
	ev := sp.End()

	if ev.Deltas["a"] != 10 {
		t.Errorf("span delta for a = %d, want 10", ev.Deltas["a"])
	}
	if ev.DurNS < 0 {
		t.Errorf("span duration negative: %d", ev.DurNS)
	}

	s := reg.Snapshot()
	if s.Counter("a") != 15 {
		t.Errorf("counter a = %d, want 15", s.Counter("a"))
	}
	if s.Counter("b") != 10 {
		t.Errorf("per-rank total b = %d, want 10", s.Counter("b"))
	}
	if got := s.PerRank["b"]; len(got) != 3 || got[1] != 7 || got[2] != 3 {
		t.Errorf("per-rank breakdown b = %v, want [0 7 3]", got)
	}
	if s.Gauges["g"] != -4 {
		t.Errorf("gauge g = %d, want -4", s.Gauges["g"])
	}
	if s.Histograms["h"].Count != 1 {
		t.Errorf("histogram h count = %d, want 1", s.Histograms["h"].Count)
	}
	if len(s.Spans) != 1 || s.Spans[0].Name != "phase" {
		t.Fatalf("spans = %+v, want one span named 'phase'", s.Spans)
	}

	// Reset zeroes everything through the one shared path, while existing
	// handles stay live.
	a := reg.Counter("a")
	reg.Reset()
	post := reg.Snapshot()
	if post.Counter("a") != 0 || post.Counter("b") != 0 || post.Gauges["g"] != 0 {
		t.Fatalf("reset left residue: %+v", post)
	}
	if post.Histograms["h"].Count != 0 {
		t.Fatalf("histogram survived reset: %+v", post.Histograms["h"])
	}
	if len(post.Spans) != 0 {
		t.Fatalf("span log survived reset: %+v", post.Spans)
	}
	a.Inc()
	if reg.Snapshot().Counter("a") != 1 {
		t.Fatal("pre-reset handle detached from registry")
	}
}

func TestPerRankGrowsPreservingValues(t *testing.T) {
	reg := NewRegistry()
	small := reg.PerRank("v", 2)
	small.Add(1, 9)
	big := reg.PerRank("v", 5)
	if big.Len() != 5 {
		t.Fatalf("len = %d, want 5", big.Len())
	}
	if big.Rank(1) != 9 {
		t.Fatalf("growth dropped existing value: rank1 = %d", big.Rank(1))
	}
	if reg.Snapshot().Counter("v") != 9 {
		t.Fatalf("total = %d, want 9", reg.Snapshot().Counter("v"))
	}
}

func TestSpanRankZeroOnlyDeltas(t *testing.T) {
	reg := NewRegistry()
	sp1 := reg.StartPhase("p", 1)
	reg.Counter("x").Add(3)
	if ev := sp1.End(); ev.Deltas != nil {
		t.Errorf("non-root span carried deltas: %+v", ev.Deltas)
	}
	sp0 := reg.StartPhase("p", 0)
	reg.Counter("x").Add(4)
	if ev := sp0.End(); ev.Deltas["x"] != 4 {
		t.Errorf("root span delta = %v, want x=4", ev.Deltas)
	}
	// Duration histogram exists for the phase.
	if reg.Histogram("phase.p.ns").Count() != 2 {
		t.Errorf("phase histogram count = %d, want 2", reg.Histogram("phase.p.ns").Count())
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	reg := NewRegistry()
	sp := reg.StartPhase("once", 0)
	sp.End()
	sp.End()
	if n := len(reg.Spans()); n != 1 {
		t.Fatalf("double End recorded %d spans, want 1", n)
	}
	sp2 := reg.StartPhase("cancelled", 0)
	sp2.Cancel()
	sp2.End()
	if n := len(reg.Spans()); n != 1 {
		t.Fatalf("cancelled span recorded; %d spans, want 1", n)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.PerRank(RTMsgs, 2).Add(0, 11)
	reg.PerRank(MBHops, 2).Add(1, 4)
	reg.Histogram(MBEnvelopeBytes).Observe(4096)
	var buf bytes.Buffer
	if err := reg.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if back.Counter(RTMsgs) != 11 || back.Counter(MBHops) != 4 {
		t.Fatalf("round trip lost counters: %+v", back.Counters)
	}
	if back.Histograms[MBEnvelopeBytes].Count != 1 {
		t.Fatalf("round trip lost histogram: %+v", back.Histograms)
	}
}

func TestSnapshotCSV(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("z.total").Add(2)
	reg.PerRank("a.vec", 2).Add(0, 1)
	reg.Gauge("g").Set(5)
	reg.Histogram("h").Observe(3)
	reg.StartPhase("ph", 0).End()
	var buf bytes.Buffer
	if err := reg.Snapshot().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"type,name,detail,value",
		"counter,a.vec,total,1",
		"counter,a.vec,rank=0,1",
		"counter,z.total,total,2",
		"gauge,g,,5",
		"histogram,h,count,1",
		"histogram,h,le=3,1",
		"span,ph,rank=0,",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestTracerStreamsSpans(t *testing.T) {
	var buf bytes.Buffer
	reg := NewRegistry()
	reg.tracer = newTracer(&buf)
	if !reg.TraceEnabled() {
		t.Fatal("tracer not armed")
	}
	reg.StartPhase("traced.phase", 3).End()
	var ev SpanEvent
	if err := json.Unmarshal(buf.Bytes(), &ev); err != nil {
		t.Fatalf("trace line not JSON: %v\n%s", err, buf.String())
	}
	if ev.Name != "traced.phase" || ev.Rank != 3 {
		t.Fatalf("trace event = %+v", ev)
	}
}

func TestSpanLogBounded(t *testing.T) {
	reg := NewRegistry()
	for i := 0; i < MaxSpanLog+50; i++ {
		reg.StartPhase("p", 1).End()
	}
	if n := len(reg.Spans()); n != MaxSpanLog {
		t.Fatalf("span log length = %d, want bound %d", n, MaxSpanLog)
	}
}

func TestHistogramMeanAndQuantileEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 {
		t.Error("empty histogram mean != 0")
	}
	if (HistSnapshot{}).Quantile(0.5) != 0 {
		t.Error("empty snapshot quantile != 0")
	}
}

func TestSpanDurationsArePlausible(t *testing.T) {
	reg := NewRegistry()
	sp := reg.StartPhase("sleepy", 0)
	time.Sleep(2 * time.Millisecond)
	ev := sp.End()
	if ev.DurNS < int64(time.Millisecond) {
		t.Errorf("span duration %dns, want >= 1ms", ev.DurNS)
	}
}
