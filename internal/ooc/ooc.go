// Package ooc puts a partition's CSR target array out of core for the
// serving engine: the adjacency bytes move onto a (simulated or file-backed)
// block device behind the concurrent page cache, and a Pager turns cache
// misses into asynchronous fetches so the engine's rank loop parks visits on
// missing pages instead of blocking on the device — the paper's
// latency-hiding traversal (§VIII-A) applied to the multi-query engine.
//
// Layering (bottom up): MemDevice+SimDevice (modeled NVRAM) or FileDevice
// (real file), an optional fault-injection wrapper, pagecache.RetryDevice
// (transient-fault absorption), pagecache.Cache (CLOCK, load-coalescing),
// extmem.Store (vertex decoding, the csr.TargetStore face), and Pager (the
// core.RowPager face the visitor queues park against).
package ooc

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"havoqgt/internal/csr"
	"havoqgt/internal/extmem"
	"havoqgt/internal/obs"
	"havoqgt/internal/pagecache"
	"havoqgt/internal/partition"
)

// Config shapes one partition's out-of-core backing.
type Config struct {
	// ResidentFraction is the DRAM budget as a fraction of the partition's
	// serialized target bytes, in (0, 1]. 1/8 means the cache holds at most
	// one eighth of the adjacency data; the rest faults in on demand.
	ResidentFraction float64
	// PageSize is the cache page size in bytes (default 4096).
	PageSize int
	// Latency and QueueDepth model the NVRAM device (pagecache.SimDevice)
	// when Dir is empty: per-read service latency and sustained concurrent
	// reads. Defaults follow extmem.DefaultNVRAM (25µs, 64).
	Latency    time.Duration
	QueueDepth int
	// Dir, when non-empty, stores the serialized targets in a real file
	// under it (pagecache.FileDevice) instead of simulated NVRAM. The file
	// is removed on Restore/Close.
	Dir string
	// Rank names the backing file within Dir.
	Rank int
	// RetryAttempts/RetryBackoff tune the RetryDevice under the cache
	// (<= 0 / 0 select its defaults).
	RetryAttempts int
	RetryBackoff  time.Duration
	// WrapDevice, when non-nil, interposes on the device stack between the
	// base device and the retry layer — the fault plane's hook point
	// (faults.FaultyDevice).
	WrapDevice func(pagecache.BlockDevice) pagecache.BlockDevice
	// Fetchers is the pager's fetch worker count (default min(QueueDepth, 8)).
	Fetchers int
	// PrefetchQueue bounds the pager's prefetch backlog; hints beyond it are
	// dropped and counted (default 256). Demand fetches are never dropped.
	PrefetchQueue int
	// Obs, when non-nil, receives the ooc.* and pagecache.* counters.
	Obs *obs.Registry
}

func (c Config) normalized() Config {
	def := extmem.DefaultNVRAM()
	if c.PageSize <= 0 {
		c.PageSize = def.PageSize
	}
	if c.Latency <= 0 {
		c.Latency = def.Latency
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = def.QueueDepth
	}
	if c.Fetchers <= 0 {
		c.Fetchers = min(c.QueueDepth, 8)
	}
	if c.PrefetchQueue <= 0 {
		c.PrefetchQueue = 256
	}
	return c
}

// Store is one partition's out-of-core backing: the device stack, the cache,
// the extmem target store spliced into the partition's CSR, and the pager.
// Restore undoes the whole thing, putting the original in-memory targets
// back — memory-budget sweeps Externalize and Restore per budget point.
type Store struct {
	part  *partition.Part
	orig  csr.MemTargets
	ext   *extmem.Store
	cache *pagecache.Cache
	retry *pagecache.RetryDevice
	pager *Pager
	path  string // backing file to remove, "" for simulated NVRAM
}

// Snapshot is a point-in-time view of the store's counters.
type Snapshot struct {
	Cache           pagecache.Stats
	Retries         uint64
	Exhausted       uint64
	DemandFetches   uint64
	Prefetches      uint64
	PrefetchDropped uint64
}

// Externalize moves part's in-memory CSR targets onto an out-of-core device
// stack per cfg and returns the Store managing it. The partition's CSR reads
// through the page cache from here on; attach Store.Pager() to the engine so
// traversal parks on misses instead of blocking.
func Externalize(part *partition.Part, cfg Config) (*Store, error) {
	cfg = cfg.normalized()
	if cfg.ResidentFraction <= 0 || cfg.ResidentFraction > 1 {
		return nil, fmt.Errorf("ooc: resident fraction %v outside (0, 1]", cfg.ResidentFraction)
	}
	mem, ok := part.CSR.Targets().(csr.MemTargets)
	if !ok {
		return nil, fmt.Errorf("ooc: partition targets already external")
	}

	var base pagecache.BlockDevice
	var path string
	if cfg.Dir != "" {
		path = filepath.Join(cfg.Dir, fmt.Sprintf("targets-rank%04d.hvqt", cfg.Rank))
		if err := extmem.WriteTargetsFile(path, mem); err != nil {
			return nil, fmt.Errorf("ooc: write targets file: %w", err)
		}
		fd, err := pagecache.OpenFile(path)
		if err != nil {
			os.Remove(path)
			return nil, err
		}
		base = fd
	} else {
		base = pagecache.NewSimDevice(
			&pagecache.MemDevice{Data: extmem.SerializeTargets(mem)},
			cfg.Latency, cfg.QueueDepth)
	}
	dev := base
	if cfg.WrapDevice != nil {
		dev = cfg.WrapDevice(dev)
	}
	retry := pagecache.NewRetryDevice(dev, cfg.RetryAttempts, cfg.RetryBackoff)
	if cfg.Obs != nil {
		retry.SetCounters(cfg.Obs.Counter(obs.PCRetries), cfg.Obs.Counter(obs.PCExhausted))
	}

	frames := framesFor(cfg.ResidentFraction, int64(len(mem))*extmem.VertexBytes,
		retry.Size(), cfg.PageSize)
	cache, err := pagecache.New(retry, cfg.PageSize, frames)
	if err != nil {
		if path != "" {
			base.Close()
			os.Remove(path)
		}
		return nil, err
	}
	ext := extmem.NewStore(cache, uint64(len(mem)))
	if err := part.CSR.ReplaceTargets(ext); err != nil {
		cache.Close()
		if path != "" {
			os.Remove(path)
		}
		return nil, err
	}
	s := &Store{
		part:  part,
		orig:  mem,
		ext:   ext,
		cache: cache,
		retry: retry,
		path:  path,
		pager: NewPager(part.CSR, cache, cfg.Fetchers, cfg.PrefetchQueue, cfg.Obs),
	}
	return s, nil
}

// framesFor sizes the cache: the resident fraction applies to the payload
// (target) bytes, clamped to at least minFrames so the cache stays
// functional at extreme budgets and to the device's own page count so a 1.0
// fraction doesn't over-allocate.
func framesFor(fraction float64, targetBytes, devSize int64, pageSize int) int {
	const minFrames = 4
	frames := int((fraction*float64(targetBytes) + float64(pageSize) - 1) / float64(pageSize))
	if frames < minFrames {
		frames = minFrames
	}
	if totalPages := int((devSize + int64(pageSize) - 1) / int64(pageSize)); totalPages > minFrames && frames > totalPages {
		frames = totalPages
	}
	return frames
}

// Pager returns the fetch engine to register with the serving engine
// (engine.Config.Pagers). It satisfies core.RowPager structurally.
func (s *Store) Pager() *Pager { return s.pager }

// CacheStats returns the page cache counters.
func (s *Store) CacheStats() pagecache.Stats { return s.cache.Stats() }

// Stats returns all of the store's counters in one snapshot.
func (s *Store) Stats() Snapshot {
	d, p, dr := s.pager.counts()
	return Snapshot{
		Cache:           s.cache.Stats(),
		Retries:         s.retry.Retries(),
		Exhausted:       s.retry.Exhausted(),
		DemandFetches:   d,
		Prefetches:      p,
		PrefetchDropped: dr,
	}
}

// ResetStats zeroes the cache counters (device retry counters and pager
// counters are monotone and left alone; diff snapshots instead).
func (s *Store) ResetStats() { s.cache.ResetStats() }

// Restore tears the out-of-core stack down: stop the pager workers, splice
// the original in-memory targets back into the partition's CSR, close the
// cache (and the device chain under it), and remove the backing file.
func (s *Store) Restore() error {
	s.pager.Close()
	if err := s.part.CSR.ReplaceTargets(s.orig); err != nil {
		return err
	}
	err := s.ext.Close()
	if s.path != "" {
		if rmErr := os.Remove(s.path); err == nil {
			err = rmErr
		}
	}
	return err
}

// Close is Restore: the store has no half-teardown state.
func (s *Store) Close() error { return s.Restore() }
