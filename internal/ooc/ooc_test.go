package ooc

import (
	"errors"
	"testing"
	"time"

	"havoqgt/internal/csr"
	"havoqgt/internal/extmem"
	"havoqgt/internal/graph"
	"havoqgt/internal/pagecache"
)

// testMatrix builds a CSR matrix with the given per-row degrees whose targets
// read through a page cache of `frames` pages of `pageSize` bytes, over a
// device wrapped by wrap (identity when nil).
func testMatrix(t *testing.T, degrees []uint64, pageSize, frames int,
	wrap func(pagecache.BlockDevice) pagecache.BlockDevice) (*csr.Matrix, *pagecache.Cache) {
	t.Helper()
	offsets := make([]uint64, len(degrees)+1)
	for i, d := range degrees {
		offsets[i+1] = offsets[i] + d
	}
	mem := make(csr.MemTargets, offsets[len(degrees)])
	for i := range mem {
		mem[i] = graph.Vertex(i * 7)
	}
	var dev pagecache.BlockDevice = &pagecache.MemDevice{Data: extmem.SerializeTargets(mem)}
	if wrap != nil {
		dev = wrap(dev)
	}
	cache, err := pagecache.New(dev, pageSize, frames)
	if err != nil {
		t.Fatal(err)
	}
	m, err := csr.New(offsets, extmem.NewStore(cache, uint64(len(mem))))
	if err != nil {
		t.Fatal(err)
	}
	return m, cache
}

// waitResident drives the RowResident/Drain/Release cycle until the row is
// resident, the way the rank loop does, bounded by a deadline. Releasing the
// drain batch matters: drained pages stay pinned until released, and the
// fetch workers stall once enough completions sit unconsumed.
func waitResident(t *testing.T, p *Pager, row int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, resident := p.RowResident(row); resident {
			return
		}
		p.Release(p.Drain())
		if time.Now().After(deadline) {
			t.Fatalf("row %d never became resident", row)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestPagerDemandFetch exercises the park-and-drain cycle: a miss returns a
// page key, the fetch completes asynchronously, Drain eventually reports the
// key, and the row is then resident.
func TestPagerDemandFetch(t *testing.T) {
	// 64 rows of 16 targets = 8 KiB of targets over 256-byte pages; 4 frames.
	degrees := make([]uint64, 64)
	for i := range degrees {
		degrees[i] = 16
	}
	m, cache := testMatrix(t, degrees, 256, 4, nil)
	p := NewPager(m, cache, 2, 16, nil)
	defer p.Close()

	key, resident := p.RowResident(0)
	if resident {
		t.Fatal("row 0 resident on a cold cache")
	}
	deadline := time.Now().Add(5 * time.Second)
	seen := false
	for !seen {
		batch := p.Drain()
		for _, pg := range batch {
			if pg == key {
				seen = true
			}
		}
		p.Release(batch)
		if time.Now().After(deadline) {
			t.Fatalf("page %d never drained", key)
		}
	}
	waitResident(t, p, 0)
	demand, _, _ := p.counts()
	if demand == 0 {
		t.Fatal("no demand fetch counted")
	}
	// The row's targets must now read correctly through the cache.
	if got := m.Row(0); got[3] != graph.Vertex(21) {
		t.Fatalf("row 0 target 3 = %d, want 21", got[3])
	}
}

// TestPagerPrefetch verifies PrefetchRow makes a row resident without any
// demand fetch being recorded.
func TestPagerPrefetch(t *testing.T) {
	degrees := make([]uint64, 64)
	for i := range degrees {
		degrees[i] = 16
	}
	m, cache := testMatrix(t, degrees, 256, 8, nil)
	p := NewPager(m, cache, 2, 16, nil)
	defer p.Close()

	p.PrefetchRow(3)
	deadline := time.Now().Add(5 * time.Second)
	for {
		p.Release(p.Drain())
		if _, resident := p.RowResident(3); resident {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("prefetched row never became resident")
		}
		time.Sleep(100 * time.Microsecond)
	}
	demand, prefetch, _ := p.counts()
	if demand != 0 {
		t.Fatalf("demand = %d after pure prefetch, want 0", demand)
	}
	if prefetch == 0 {
		t.Fatal("no prefetch counted")
	}
}

// gateDev holds every read open until released — pins fetches in flight.
type gateDev struct {
	pagecache.BlockDevice
	gate chan struct{}
}

func (d *gateDev) ReadAt(p []byte, off int64) (int, error) {
	<-d.gate
	return d.BlockDevice.ReadAt(p, off)
}

// TestPagerDedupsQueuedPages checks that repeated misses on the same absent
// page (same or different rows) enqueue exactly one fetch.
func TestPagerDedupsQueuedPages(t *testing.T) {
	gate := make(chan struct{})
	degrees := make([]uint64, 64)
	for i := range degrees {
		degrees[i] = 16
	}
	m, cache := testMatrix(t, degrees, 256, 4, func(d pagecache.BlockDevice) pagecache.BlockDevice {
		return &gateDev{BlockDevice: d, gate: gate}
	})
	p := NewPager(m, cache, 2, 16, nil)
	defer p.Close()

	k1, r1 := p.RowResident(0)
	k2, r2 := p.RowResident(1) // rows 0 and 1 share page 0 (32 rows/page)
	if r1 || r2 {
		t.Fatal("rows resident on a cold cache")
	}
	if k1 != k2 {
		t.Fatalf("rows 0 and 1 parked on different pages %d, %d", k1, k2)
	}
	demand, _, _ := p.counts()
	if demand != 1 {
		t.Fatalf("demand = %d for a coalesced page, want 1", demand)
	}
	close(gate)
	waitResident(t, p, 0)
}

// TestPagerWideRowIsResident checks the span cap: a row spanning more pages
// than half the cache is reported resident (synchronous streaming read path)
// instead of parking on a set of pages that can never be cached at once.
func TestPagerWideRowIsResident(t *testing.T) {
	// Row 0 has 1024 targets = 8 KiB = 32 pages of 256 bytes; cache has 4
	// frames, so maxSpan = 2.
	m, cache := testMatrix(t, []uint64{1024, 4}, 256, 4, nil)
	p := NewPager(m, cache, 1, 16, nil)
	defer p.Close()

	if _, resident := p.RowResident(0); !resident {
		t.Fatal("wide row not reported resident")
	}
	demand, prefetch, _ := p.counts()
	if demand != 0 || prefetch != 0 {
		t.Fatalf("wide row enqueued fetches: demand=%d prefetch=%d", demand, prefetch)
	}
	// The synchronous path must still read it correctly.
	if got := m.Row(0); got[1000] != graph.Vertex(7000) {
		t.Fatalf("row 0 target 1000 = %d, want 7000", got[1000])
	}
}

// TestPagerEmptyRowIsResident: no targets, nothing to fetch.
func TestPagerEmptyRowIsResident(t *testing.T) {
	m, cache := testMatrix(t, []uint64{0, 16, 0}, 256, 4, nil)
	p := NewPager(m, cache, 1, 16, nil)
	defer p.Close()
	if _, resident := p.RowResident(0); !resident {
		t.Fatal("empty row not resident")
	}
	if _, resident := p.RowResident(2); !resident {
		t.Fatal("empty row not resident")
	}
}

// failDev fails every read: the permanent-failure path.
type failDev struct{ pagecache.BlockDevice }

var errBroken = errors.New("device broken")

func (d *failDev) ReadAt(p []byte, off int64) (int, error) { return 0, errBroken }

// TestPagerFailedPageUnparks checks the sticky-failure policy: a page whose
// fetch fails permanently is still reported by Drain (so parked visitors
// wake), and subsequent RowResident calls treat it as resident so the visit
// proceeds to the synchronous read path, which surfaces the device error
// instead of parking forever.
func TestPagerFailedPageUnparks(t *testing.T) {
	degrees := make([]uint64, 64)
	for i := range degrees {
		degrees[i] = 16
	}
	m, cache := testMatrix(t, degrees, 256, 4, func(d pagecache.BlockDevice) pagecache.BlockDevice {
		return &failDev{BlockDevice: d}
	})
	p := NewPager(m, cache, 1, 16, nil)
	defer p.Close()

	key, resident := p.RowResident(0)
	if resident {
		t.Fatal("row resident on a cold failing cache")
	}
	deadline := time.Now().Add(5 * time.Second)
	seen := false
	for !seen {
		for _, pg := range p.Drain() {
			if pg == key {
				seen = true
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("failed page never drained: parked visitors would wait forever")
		}
	}
	if _, resident := p.RowResident(0); !resident {
		t.Fatal("failed page must be treated as resident so the visit surfaces the error")
	}
	if p.FailedPages() == 0 {
		t.Fatal("failure not recorded")
	}
}

// TestPagerPinsDrainedPagesUntilRelease is the flow-control regression test:
// a demand-fetched page must stay resident from Drain until Release no matter
// how much other traffic churns the cache, and the fetch workers must stall
// once pinCap completions sit unreleased — otherwise fetches evict each
// other's pages before their parked visitors run and the traversal
// degenerates into a park/fetch/evict livelock.
func TestPagerPinsDrainedPagesUntilRelease(t *testing.T) {
	degrees := make([]uint64, 64)
	for i := range degrees {
		degrees[i] = 32 // one 256-byte page per row
	}
	m, cache := testMatrix(t, degrees, 256, 4, nil)
	p := NewPager(m, cache, 2, 16, nil) // 4 frames: fetchers and pinCap clamp to 1
	defer p.Close()

	key, resident := p.RowResident(0)
	if resident {
		t.Fatal("row 0 resident on a cold cache")
	}
	var batch []int64
	deadline := time.Now().Add(5 * time.Second)
	for len(batch) == 0 {
		batch = p.Drain()
		if time.Now().After(deadline) {
			t.Fatal("demand page never drained")
		}
	}

	// Churn every other page through the cache. The drained-but-unreleased
	// page must survive all of it.
	buf := make([]byte, 8)
	for row := 1; row < 64; row++ {
		if _, err := cache.ReadAt(buf, int64(row)*256); err != nil {
			t.Fatal(err)
		}
	}
	if !cache.Resident(key * 256) {
		t.Fatal("drained page evicted before Release")
	}

	// pinCap is exhausted: a new demand fetch must not complete until the
	// pin is released.
	var row2 int
	for row2 = 1; row2 < 64; row2++ {
		if !cache.Resident(int64(row2) * 256) {
			break
		}
	}
	key2, r2 := p.RowResident(row2)
	if r2 {
		t.Fatalf("row %d unexpectedly resident", row2)
	}
	time.Sleep(20 * time.Millisecond)
	for _, pg := range p.Drain() {
		if pg == key2 {
			t.Fatal("fetch completed while pinCap was exhausted — workers are not stalling")
		}
	}
	p.Release(batch)
	deadline = time.Now().Add(5 * time.Second)
	for {
		got := p.Drain()
		p.Release(got)
		done := false
		for _, pg := range got {
			if pg == key2 {
				done = true
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fetch never resumed after Release")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestPagerPrefetchQueueBound checks that prefetch hints beyond the queue
// bound are dropped and counted, never blocking the caller.
func TestPagerPrefetchQueueBound(t *testing.T) {
	gate := make(chan struct{})
	degrees := make([]uint64, 512)
	for i := range degrees {
		degrees[i] = 32 // one page per row: 32 targets * 8B = 256B
	}
	m, cache := testMatrix(t, degrees, 256, 4, func(d pagecache.BlockDevice) pagecache.BlockDevice {
		return &gateDev{BlockDevice: d, gate: gate}
	})
	p := NewPager(m, cache, 1, 4, nil) // tiny prefetch queue, gated device
	defer p.Close()

	for row := 0; row < 512; row++ {
		p.PrefetchRow(row)
	}
	_, prefetch, dropped := p.counts()
	if dropped == 0 {
		t.Fatalf("no prefetch drops with a full queue (accepted %d)", prefetch)
	}
	// 1 fetch may be in flight at the worker plus 4 queued.
	if prefetch > 5 {
		t.Fatalf("accepted %d prefetches into a 4-deep queue", prefetch)
	}
	close(gate)
}

// TestPagerCloseUnblocksAndReportsResident: after Close every row reads as
// resident (fail-open: the synchronous path still works) and no worker leaks.
func TestPagerCloseFailsOpen(t *testing.T) {
	degrees := make([]uint64, 64)
	for i := range degrees {
		degrees[i] = 16
	}
	m, cache := testMatrix(t, degrees, 256, 4, nil)
	p := NewPager(m, cache, 2, 16, nil)
	p.Close()
	p.Close() // idempotent
	if _, resident := p.RowResident(0); !resident {
		t.Fatal("closed pager must report rows resident")
	}
	p.PrefetchRow(1) // must not panic or block
}
