package ooc

import (
	"sync"

	"havoqgt/internal/csr"
	"havoqgt/internal/extmem"
	"havoqgt/internal/obs"
	"havoqgt/internal/pagecache"
)

// Pager is the asynchronous fetch engine between the rank loop and one
// partition's page cache. It satisfies core.RowPager structurally (core
// defines the interface; neither package imports the other):
//
//   - RowResident answers "can this visit run now?" and, on a miss, enqueues
//     a demand fetch for the first missing page of the row's span — the rank
//     loop parks the visitor on the returned page key.
//   - PrefetchRow enqueues best-effort fetches for rows that just entered a
//     local heap (frontier composition), so pages arrive ahead of the wave.
//   - Drain hands completed page keys back to the rank loop, which unparks
//     the visitors waiting on them.
//
// Fetch workers pull pages (demand strictly before prefetch) and fault them
// in via Cache.Touch, so the device's queue depth is actually exercised:
// many fetches proceed concurrently while the rank goroutine keeps executing
// resident visits. The queued set dedups fetches across queries parked on
// the same page.
//
// RowResident/PrefetchRow/Drain are called only from the owning rank's
// engine goroutine; the mutex synchronizes that goroutine against the fetch
// workers.
type Pager struct {
	m        *csr.Matrix
	cache    *pagecache.Cache
	pageSize int64
	// maxSpan bounds the page span a row may park on: a row wider than half
	// the cache could never have all its pages resident at once, so such
	// rows are reported resident and read synchronously instead (the read
	// path streams through the cache page by page and always terminates).
	maxSpan int64

	mu       sync.Mutex
	cond     sync.Cond
	demand   []int64            // FIFO, never dropped
	prefetch []int64            // FIFO, bounded by prefetchCap
	queued   map[int64]struct{} // pages enqueued or being fetched
	failed   map[int64]error    // sticky fetch failures (see RowResident)
	done     []int64            // completed pages awaiting Drain
	pinned   map[int64]struct{} // pages fetched-and-pinned, awaiting Release
	closed   bool
	wg       sync.WaitGroup

	prefetchCap int
	// pinCap bounds fetched-but-unconsumed pages: workers stall once pinCap
	// pages sit pinned awaiting Release, coupling the fetch rate to the rank
	// loop's consumption rate. Without it, fetches evict each other's pages
	// before their parked visitors run (see Unpark in internal/core).
	pinCap int

	// Monotone counters, mirrored into obs when a registry was given.
	nDemand, nPrefetch, nDropped uint64
	cDemand, cPrefetch, cDropped *obs.Counter
}

// NewPager builds a pager over a matrix whose targets read through cache,
// with the given fetch worker count and prefetch queue bound. reg may be nil.
func NewPager(m *csr.Matrix, cache *pagecache.Cache, fetchers, prefetchCap int, reg *obs.Registry) *Pager {
	if fetchers <= 0 {
		fetchers = 1
	}
	if prefetchCap <= 0 {
		prefetchCap = 256
	}
	// Scale the fetch pipeline to the cache, not just the device: pages
	// loaded faster than parked visitors consume them evict each other (and
	// the pages other waiters are about to run against), collapsing the hit
	// rate exactly when the budget is tightest. In-flight fetches are capped
	// at a quarter of the frames and completed-but-unconsumed pages (pinned,
	// see worker/Release) at another quarter, so at least half the frames
	// always stay reclaimable for the serving read path.
	if maxF := cache.NumFrames() / 4; fetchers > maxF {
		fetchers = max(1, maxF)
	}
	if maxP := cache.NumFrames() / 2; prefetchCap > maxP {
		prefetchCap = max(2, maxP)
	}
	p := &Pager{
		m:           m,
		cache:       cache,
		pageSize:    int64(cache.PageSize()),
		maxSpan:     int64(max(1, cache.NumFrames()/2)),
		queued:      make(map[int64]struct{}),
		failed:      make(map[int64]error),
		pinned:      make(map[int64]struct{}),
		prefetchCap: prefetchCap,
		pinCap:      max(1, cache.NumFrames()/4),
	}
	p.cond.L = &p.mu
	if reg != nil {
		p.cDemand = reg.Counter(obs.OOCDemandFetches)
		p.cPrefetch = reg.Counter(obs.OOCPrefetches)
		p.cDropped = reg.Counter(obs.OOCPrefetchDropped)
	}
	p.wg.Add(fetchers)
	for i := 0; i < fetchers; i++ {
		go p.worker()
	}
	return p
}

// span returns the inclusive device-page range of row's adjacency bytes and
// whether the row has any targets at all.
func (p *Pager) span(row int) (p0, p1 int64, ok bool) {
	lo, hi := p.m.RowSpan(row)
	if lo == hi {
		return 0, 0, false
	}
	p0 = int64(lo) * extmem.VertexBytes / p.pageSize
	p1 = (int64(hi)*extmem.VertexBytes - 1) / p.pageSize
	return p0, p1, true
}

// RowResident implements core.RowPager. On a miss it enqueues demand fetches
// for EVERY absent page of the row's span and returns the last such page as
// the park key: the fetch FIFO preserves order, so by the time the last
// page's completion drains, the earlier pages have been fetched too —
// usually in the same Drain batch, hence pinned together while the unparked
// visitor runs. (Parking on the first absent page instead invites a
// ping-pong: its batch is released before the later pages arrive, and the
// later pages' arrival finds the first evicted again.) The key is guaranteed
// to appear in a future Drain — the enqueue happens before the caller parks,
// and completion strictly follows the enqueue, so the unpark signal cannot
// be lost. Pages whose fetch failed permanently are treated as resident: the
// visit proceeds to the synchronous read path, which surfaces the device
// error instead of parking the visitor forever.
func (p *Pager) RowResident(row int) (int64, bool) {
	p0, p1, ok := p.span(row)
	if !ok || p1-p0+1 > p.maxSpan {
		return 0, true
	}
	key, parked := int64(0), false
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return 0, true
	}
	for pg := p0; pg <= p1; pg++ {
		if p.cache.Resident(pg * p.pageSize) {
			continue
		}
		if _, bad := p.failed[pg]; bad {
			continue
		}
		if _, dup := p.queued[pg]; !dup {
			p.queued[pg] = struct{}{}
			p.demand = append(p.demand, pg)
			p.nDemand++
			if p.cDemand != nil {
				p.cDemand.Inc()
			}
			p.cond.Signal()
		}
		key, parked = pg, true
	}
	p.mu.Unlock()
	if parked {
		return key, false
	}
	return 0, true
}

// PrefetchRow implements core.RowPager: best-effort fetch hints for every
// absent page of row's span, dropped (and counted) when the prefetch queue
// is full.
func (p *Pager) PrefetchRow(row int) {
	p0, p1, ok := p.span(row)
	if !ok || p1-p0+1 > p.maxSpan {
		return
	}
	for pg := p0; pg <= p1; pg++ {
		if p.cache.Resident(pg * p.pageSize) {
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return
		}
		_, dup := p.queued[pg]
		_, bad := p.failed[pg]
		switch {
		case dup || bad:
		case len(p.prefetch) >= p.prefetchCap:
			p.nDropped++
			if p.cDropped != nil {
				p.cDropped.Inc()
			}
		default:
			p.queued[pg] = struct{}{}
			p.prefetch = append(p.prefetch, pg)
			p.nPrefetch++
			if p.cPrefetch != nil {
				p.cPrefetch.Inc()
			}
			p.cond.Signal()
		}
		p.mu.Unlock()
	}
}

// Drain implements core.RowPager: the pages whose fetches completed since
// the last Drain. Failed pages are included — their parked visitors must
// retry (and take the fail-stop synchronous path) rather than wait forever.
func (p *Pager) Drain() []int64 {
	p.mu.Lock()
	d := p.done
	p.done = nil
	p.mu.Unlock()
	return d
}

// FailedPages returns the number of pages whose fetch failed permanently.
func (p *Pager) FailedPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.failed)
}

// Depths reports the pager's instantaneous queue state: demand and prefetch
// FIFO lengths, pages handed to a worker but not yet completed, and
// completions awaiting Drain. Diagnostic — values are stale on return.
func (p *Pager) Depths() (demand, prefetch, inflight, done int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.demand), len(p.prefetch),
		len(p.queued) - len(p.demand) - len(p.prefetch), len(p.done)
}

func (p *Pager) counts() (demand, prefetch, dropped uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nDemand, p.nPrefetch, p.nDropped
}

// worker is one fetch goroutine: pop a page (demand first), fault it in with
// the frame pinned, report completion. The pin holds the page resident until
// the rank loop has drained the completion and run the parked visitors
// (Release); workers stall once pinCap completions sit unconsumed, so the
// fetch pipeline can never run ahead of consumption and evict pages whose
// waiters have not executed yet.
func (p *Pager) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for !p.closed && (len(p.demand) == 0 && len(p.prefetch) == 0 || len(p.pinned) >= p.pinCap) {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		var pg int64
		if len(p.demand) > 0 {
			pg = p.demand[0]
			p.demand = p.demand[1:]
		} else {
			pg = p.prefetch[0]
			p.prefetch = p.prefetch[1:]
		}
		p.mu.Unlock()

		err := p.cache.TouchPin(pg * p.pageSize)

		p.mu.Lock()
		delete(p.queued, pg)
		if err != nil {
			p.failed[pg] = err
		} else if p.closed {
			// Close already dropped all pins; don't strand a new one.
			p.cache.Unpin(pg * p.pageSize)
		} else if _, dup := p.pinned[pg]; dup {
			// Already holding a pin for this page (a prior completion not yet
			// released); fold the new pin into it rather than leaking one.
			p.cache.Unpin(pg * p.pageSize)
		} else {
			p.pinned[pg] = struct{}{}
		}
		p.done = append(p.done, pg)
		p.mu.Unlock()
	}
}

// Release drops the pager's pins on the given fetched pages. The rank loop
// calls it after Unpark has run the visitors parked on a Drain batch — until
// then the pages cannot be evicted, so every demand fetch is consumed at
// least once. Releasing unknown pages (failed loads, already released) is a
// no-op.
func (p *Pager) Release(pages []int64) {
	p.mu.Lock()
	freed := false
	for _, pg := range pages {
		if _, ok := p.pinned[pg]; !ok {
			continue
		}
		delete(p.pinned, pg)
		p.cache.Unpin(pg * p.pageSize)
		freed = true
	}
	if freed {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// Close stops the fetch workers and waits for them. Pending queue entries
// are discarded; parked visitors are owned by the queues, which a cancel or
// engine shutdown clears separately.
func (p *Pager) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for pg := range p.pinned {
		p.cache.Unpin(pg * p.pageSize)
	}
	clear(p.pinned)
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}
