// Package xrand provides the deterministic random-number machinery used by
// the graph generators and the experiment harness:
//
//   - SplitMix64: a tiny stateless-seedable generator, used to expand one
//     64-bit seed into independent stream seeds.
//   - Xoshiro256**: the main generator, one independent instance per
//     simulated rank so graph generation is reproducible at any rank count.
//   - Bijection: a keyed Feistel permutation of [0, n) used to uniformly
//     permute vertex labels after generation without materializing the
//     permutation (every rank can evaluate it independently, which is how a
//     distributed generator destroys generator locality artifacts).
//
// Everything here is deterministic given the seed; no global state.
package xrand

import "math/bits"

// SplitMix64 is the 64-bit splitmix generator of Steele, Lea, and Flood. Its
// zero value is a valid generator seeded with 0.
type SplitMix64 struct{ state uint64 }

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Next returns the next value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 applies the splitmix64 finalizer to x. It is a high-quality 64-bit
// mixing function (bijective), used as the Feistel round function and for
// hashing seeds.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Rand is an xoshiro256** generator. Create with New; the zero value is not
// usable (xoshiro must not have an all-zero state).
type Rand struct{ s [4]uint64 }

// New returns a generator seeded from seed via splitmix64, per the xoshiro
// authors' recommendation.
func New(seed uint64) *Rand {
	r := Seeded(seed)
	return &r
}

// Seeded returns a generator by value. Hot loops that create one generator
// per item (the chunk-parallel graph generators) use this to keep the state
// on the stack instead of allocating.
func Seeded(seed uint64) Rand {
	var r Rand
	sm := NewSplitMix64(seed)
	for i := range r.s {
		r.s[i] = sm.Next()
	}
	// An all-zero state is invalid; splitmix of any seed never yields four
	// zeros in a row, but be defensive anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// NewStream returns a generator for stream index i derived from seed. Streams
// with distinct (seed, i) are statistically independent; this is how each
// simulated rank gets its own generator.
func NewStream(seed uint64, i int) *Rand {
	return New(Mix64(seed) ^ Mix64(uint64(i)*0x9e3779b97f4a7c15+1))
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). n must be > 0.
// Uses Lemire's multiply-shift rejection method.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
