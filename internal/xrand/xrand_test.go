package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a, b := NewSplitMix64(42), NewSplitMix64(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("splitmix streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestSplitMix64SeedsDiffer(t *testing.T) {
	a, b := NewSplitMix64(1), NewSplitMix64(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("xoshiro streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestNewStreamIndependence(t *testing.T) {
	a, b := NewStream(9, 0), NewStream(9, 1)
	same := 0
	for i := 0; i < 256; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 0 and 1 collided %d/256 times", same)
	}
}

func TestUint64nRange(t *testing.T) {
	r := New(3)
	for _, n := range []uint64{1, 2, 3, 7, 100, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) returned %d", n, v)
			}
		}
	}
}

func TestUint64nUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d has %d draws, want ~%.0f", b, c, want)
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 returned %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(6)
	var sum float64
	const draws = 100000
	for i := 0; i < draws; i++ {
		sum += r.Float64()
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(8)
	xs := make([]int, 50)
	for i := range xs {
		xs[i] = i
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, x := range xs {
		if seen[x] {
			t.Fatalf("value %d duplicated after shuffle", x)
		}
		seen[x] = true
	}
}

func TestMix64Bijective(t *testing.T) {
	// Spot check: distinct inputs give distinct outputs.
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 10000; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("Mix64 collision: %d and %d", prev, i)
		}
		seen[h] = i
	}
}

func TestBijectionRoundTrip(t *testing.T) {
	for _, n := range []uint64{1, 2, 3, 16, 100, 1023, 1024, 1 << 16} {
		b := NewBijection(n, 99)
		for x := uint64(0); x < min(n, 2048); x++ {
			y := b.Apply(x)
			if y >= n {
				t.Fatalf("n=%d: Apply(%d)=%d out of range", n, x, y)
			}
			if got := b.Invert(y); got != x {
				t.Fatalf("n=%d: Invert(Apply(%d)) = %d", n, x, got)
			}
		}
	}
}

func TestBijectionIsPermutation(t *testing.T) {
	const n = 4096
	b := NewBijection(n, 7)
	seen := make([]bool, n)
	for x := uint64(0); x < n; x++ {
		y := b.Apply(x)
		if seen[y] {
			t.Fatalf("Apply(%d) collides", x)
		}
		seen[y] = true
	}
}

func TestBijectionQuickPermutationProperty(t *testing.T) {
	// Property: for any (seed, size), Apply stays in range and is injective
	// on a sample.
	f := func(seed uint64, sizeSel uint16) bool {
		n := uint64(sizeSel)%5000 + 1
		b := NewBijection(n, seed)
		seen := make(map[uint64]bool)
		for x := uint64(0); x < min(n, 256); x++ {
			y := b.Apply(x)
			if y >= n || seen[y] {
				return false
			}
			seen[y] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBijectionScrambles(t *testing.T) {
	// The permutation should not be close to identity.
	const n = 1 << 12
	b := NewBijection(n, 123)
	fixed := 0
	for x := uint64(0); x < n; x++ {
		if b.Apply(x) == x {
			fixed++
		}
	}
	if fixed > 10 {
		t.Fatalf("%d fixed points out of %d", fixed, n)
	}
}
