package xrand

// Bijection is a keyed pseudorandom permutation of [0, n). It is evaluated
// pointwise in O(1) with no stored permutation table, so every simulated rank
// can apply the same global vertex-label permutation independently — the
// "uniformly permuted to destroy any locality artifacts" step the paper
// applies after graph generation.
//
// Construction: a balanced Feistel network over the smallest even bit-width
// covering n, with the splitmix64 finalizer as the round function, and
// cycle-walking to restrict the domain to [0, n).
type Bijection struct {
	n        uint64
	halfBits uint
	halfMask uint64
	keys     [4]uint64
}

// NewBijection returns a permutation of [0, n) keyed by seed. n must be > 0.
func NewBijection(n uint64, seed uint64) *Bijection {
	if n == 0 {
		panic("xrand: NewBijection with n == 0")
	}
	bits := uint(1)
	for uint64(1)<<bits < n {
		bits++
	}
	if bits%2 != 0 {
		bits++
	}
	b := &Bijection{n: n, halfBits: bits / 2, halfMask: (uint64(1) << (bits / 2)) - 1}
	sm := NewSplitMix64(seed)
	for i := range b.keys {
		b.keys[i] = sm.Next()
	}
	return b
}

// N returns the size of the permuted domain.
func (b *Bijection) N() uint64 { return b.n }

func (b *Bijection) encryptOnce(x uint64) uint64 {
	l := (x >> b.halfBits) & b.halfMask
	r := x & b.halfMask
	for _, k := range b.keys {
		l, r = r, l^(Mix64(r^k)&b.halfMask)
	}
	return l<<b.halfBits | r
}

func (b *Bijection) decryptOnce(x uint64) uint64 {
	l := (x >> b.halfBits) & b.halfMask
	r := x & b.halfMask
	for i := len(b.keys) - 1; i >= 0; i-- {
		k := b.keys[i]
		l, r = r^(Mix64(l^k)&b.halfMask), l
	}
	return l<<b.halfBits | r
}

// Apply maps x in [0, n) to its permuted value in [0, n).
func (b *Bijection) Apply(x uint64) uint64 {
	if x >= b.n {
		panic("xrand: Bijection.Apply input out of range")
	}
	// Cycle-walk: the Feistel network permutes [0, 2^bits); iterate until the
	// image lands back inside [0, n). Terminates because the network is a
	// bijection of the power-of-two domain, so walking follows a cycle that
	// must re-enter [0, n) (x itself is in [0, n)).
	y := b.encryptOnce(x)
	for y >= b.n {
		y = b.encryptOnce(y)
	}
	return y
}

// Invert maps a permuted value back to its preimage.
func (b *Bijection) Invert(y uint64) uint64 {
	if y >= b.n {
		panic("xrand: Bijection.Invert input out of range")
	}
	x := b.decryptOnce(y)
	for x >= b.n {
		x = b.decryptOnce(x)
	}
	return x
}
