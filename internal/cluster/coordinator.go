package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"havoqgt/internal/algos/pagerank"
	"havoqgt/internal/engine"
	"havoqgt/internal/graph"
	"havoqgt/internal/ref"
)

// ErrCoordinatorClosed reports a Submit after Close.
var ErrCoordinatorClosed = errors.New("cluster: coordinator closed")

// joinReadTimeout bounds how long an accepted connection may dawdle before
// its join line arrives; a port-scanner or half-open socket must not pin a
// handler goroutine forever.
const joinReadTimeout = 60 * time.Second

// wconn is one joined worker's control connection. Writes serialize on encMu
// (results for different queries interleave from multiple goroutines).
type wconn struct {
	slot  int
	info  workerInfo
	conn  net.Conn
	encMu sync.Mutex
	enc   *json.Encoder
	// last is the UnixNano of the most recent inbound message — any message:
	// pongs, results, acks all prove the process is alive. Read by the
	// failure detector.
	last atomic.Int64
}

func (w *wconn) send(m msg) error {
	w.encMu.Lock()
	defer w.encMu.Unlock()
	return w.enc.Encode(&m)
}

// Coordinator owns one cluster: it admits cfg.Workers join handshakes, seals
// the layout, broadcasts it, and from then on is the single point of global
// admission — queries enter here, fan out to every worker, and assemble from
// the workers' disjoint master-range partials.
//
// It is also the failure detector. Heartbeats ping every worker on the
// control connection; a worker silent past cfg.Liveness (or whose connection
// dies) is declared dead: its slot reopens, every in-flight query fails with
// a typed *WorkerLostError (never a hang), survivors are told to force-abort,
// and Submit sheds with *DegradedError until the cluster is whole again. A
// fresh process may then join the dead slot: the epoch is bumped, the new
// layout rebroadcast (survivors re-point their meshes and ack), the re-joiner
// rebuilds its partitions locally, and admission resumes when every slot has
// confirmed the current epoch.
type Coordinator struct {
	cfg  ClusterConfig
	sum  string
	n    uint64 // vertices
	ln   net.Listener
	logf func(format string, args ...any)

	mu      sync.Mutex
	epoch   uint64        // current fencing epoch; bumped on every re-join
	workers []*wconn      // by slot; nil = never joined, or dead
	epochOK []uint64      // per slot: last epoch confirmed by ready/layout-ack (0 = none)
	joined  int           // currently connected workers
	formed  bool          // all slots joined at least once (initial collective build started)
	wholeCh chan struct{} // closed while every slot is confirmed at the current epoch
	queries map[uint32]*Query
	nextQID uint32
	closed  bool
	statsW  *statsWaiter // at most one outstanding NetStats sweep

	sem chan struct{} // global MaxInFlight admission

	hbStop chan struct{}
	wg     sync.WaitGroup
}

// NewCoordinator binds addr (":0" works; see Addr) and starts accepting
// joins. logf may be nil.
func NewCoordinator(addr string, cfg ClusterConfig, logf func(string, ...any)) (*Coordinator, error) {
	cfg = cfg.normalized()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	c := &Coordinator{
		cfg:     cfg,
		sum:     cfg.Checksum(),
		epoch:   uint64(time.Now().UnixNano()),
		n:       uint64(1) << cfg.Scale,
		ln:      ln,
		logf:    logf,
		workers: make([]*wconn, cfg.Workers),
		epochOK: make([]uint64, cfg.Workers),
		wholeCh: make(chan struct{}),
		queries: make(map[uint32]*Query),
		nextQID: 1,
		sem:     make(chan struct{}, cfg.MaxInFlight),
		hbStop:  make(chan struct{}),
	}
	c.wg.Add(2)
	go c.acceptLoop()
	go c.heartbeatLoop()
	return c, nil
}

// Addr returns the bound control address (resolves ":0").
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Epoch returns the current cluster epoch: minted at startup, bumped by one
// on every re-join so stale mesh dialers are fenced out.
func (c *Coordinator) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// NumVertices returns the configured graph's vertex count.
func (c *Coordinator) NumVertices() uint64 { return c.n }

// wholeLocked reports whether every slot is occupied AND confirmed at the
// current epoch (ready for re-joiners / initial formation, layout-ack for
// survivors of a heal). Caller holds c.mu.
func (c *Coordinator) wholeLocked() bool {
	for s, w := range c.workers {
		if w == nil || c.epochOK[s] != c.epoch {
			return false
		}
	}
	return true
}

// missingLocked lists the slots that keep the cluster from being whole.
func (c *Coordinator) missingLocked() []int {
	var out []int
	for s, w := range c.workers {
		if w == nil || c.epochOK[s] != c.epoch {
			out = append(out, s)
		}
	}
	return out
}

// maybeWholeLocked closes wholeCh if the cluster just became whole.
func (c *Coordinator) maybeWholeLocked() {
	if !c.wholeLocked() {
		return
	}
	select {
	case <-c.wholeCh:
	default:
		close(c.wholeCh)
	}
}

// unwholeLocked replaces a closed wholeCh with a fresh open one (degradation
// or an epoch bump invalidated the old confirmations).
func (c *Coordinator) unwholeLocked() {
	select {
	case <-c.wholeCh:
		c.wholeCh = make(chan struct{})
	default:
	}
}

// Whole reports whether every slot is confirmed at the current epoch.
func (c *Coordinator) Whole() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wholeLocked()
}

// Missing returns the slots currently dead or not yet healed to the current
// epoch (empty when the cluster is whole). For /healthz.
func (c *Coordinator) Missing() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.missingLocked()
}

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go c.handleConn(conn)
	}
}

// handleConn runs one connection: the join handshake, then (if admitted) the
// worker's inbound message stream until the connection dies or the worker is
// evicted.
func (c *Coordinator) handleConn(conn net.Conn) {
	defer c.wg.Done()
	dec := json.NewDecoder(conn)
	conn.SetReadDeadline(time.Now().Add(joinReadTimeout))
	var join msg
	if err := dec.Decode(&join); err != nil || join.Type != "join" {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})

	w := &wconn{conn: conn, enc: json.NewEncoder(conn)}
	refuse := func(code, detail string) {
		w.send(msg{Type: "error", Code: code, Detail: detail})
		conn.Close()
	}
	if join.Version != Version {
		refuse(codeVersion, fmt.Sprintf("coordinator speaks %q, worker %q", Version, join.Version))
		return
	}
	if join.ConfigSum != c.sum {
		refuse(codeConfig, fmt.Sprintf("coordinator config %s, worker %s", c.sum, join.ConfigSum))
		return
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		refuse(codeSealed, "coordinator closed")
		return
	}
	slot := join.Slot
	if slot >= 0 {
		if slot >= c.cfg.Workers {
			c.mu.Unlock()
			refuse(codeSlot, fmt.Sprintf("slot %d out of range [0, %d)", slot, c.cfg.Workers))
			return
		}
		if c.workers[slot] != nil {
			c.mu.Unlock()
			refuse(codeSlot, fmt.Sprintf("slot %d already joined", slot))
			return
		}
	} else {
		slot = -1
		for i, ww := range c.workers {
			if ww == nil {
				slot = i
				break
			}
		}
		if slot < 0 {
			c.mu.Unlock()
			refuse(codeSealed, fmt.Sprintf("cluster whole: all %d slots occupied", c.cfg.Workers))
			return
		}
	}
	// A join on an already-formed cluster is a re-join into a dead slot: the
	// survivors are serving, so the newcomer rebuilds locally, and the epoch
	// is bumped so connections from the dead process's mesh can never land.
	rejoin := c.formed
	lo, hi := c.cfg.window(slot)
	w.slot = slot
	w.info = workerInfo{Slot: slot, MeshAddr: join.MeshAddr, Lo: lo, Hi: hi}
	w.last.Store(time.Now().UnixNano())
	c.workers[slot] = w
	c.epochOK[slot] = 0
	c.joined++
	seal := false
	if rejoin {
		c.epoch++
		c.unwholeLocked()
	} else if c.joined == c.cfg.Workers {
		c.formed = true
		seal = true
	}
	epoch := c.epoch
	c.mu.Unlock()

	verb := "joined"
	if rejoin {
		verb = "RE-joined"
	}
	c.logf("cluster: worker %d %s from %s (mesh %s, ranks [%d,%d), epoch %d)",
		slot, verb, conn.RemoteAddr(), join.MeshAddr, lo, hi, epoch)
	if err := w.send(msg{Type: "joined", Slot: slot, Rejoin: rejoin}); err != nil {
		c.dropWorker(w, "joined verdict write failed")
		return
	}
	if seal || rejoin {
		c.broadcastLayout()
	}

	for {
		var m msg
		if err := dec.Decode(&m); err != nil {
			c.dropWorker(w, "control connection lost")
			return
		}
		w.last.Store(time.Now().UnixNano())
		switch m.Type {
		case "ready":
			c.confirmEpoch(w, m.Epoch)
			c.logf("cluster: worker %d ready (epoch %d)", w.slot, m.Epoch)
		case "layout-ack":
			c.confirmEpoch(w, m.Epoch)
		case "pong":
			// w.last already refreshed; nothing else to do.
		case "result":
			c.mu.Lock()
			q := c.queries[m.QID]
			c.mu.Unlock()
			if q != nil {
				q.addPartial(&m)
			}
		case "stats":
			c.mu.Lock()
			sw := c.statsW
			if sw != nil && m.Net != nil {
				sw.totals.add(m.Net)
				sw.remaining--
				if sw.remaining == 0 {
					c.statsW = nil
					close(sw.done)
				}
			}
			c.mu.Unlock()
		}
	}
}

// confirmEpoch records that the worker runs at the given epoch, possibly
// completing a heal. Confirmations for superseded epochs (a layout-ack racing
// the next re-join's bump) are kept as-is: they still mark the worker
// control-plane-live but do not count toward wholeness.
func (c *Coordinator) confirmEpoch(w *wconn, epoch uint64) {
	c.mu.Lock()
	if c.workers[w.slot] == w && epoch > c.epochOK[w.slot] {
		c.epochOK[w.slot] = epoch
		c.maybeWholeLocked()
	}
	whole := c.wholeLocked()
	c.mu.Unlock()
	if whole {
		c.logf("cluster: whole at epoch %d; admitting queries", epoch)
	}
}

// dropWorker declares a worker dead: its control connection failed, or the
// failure detector saw silence past the liveness window. Frees the slot for
// a re-join, fails every in-flight query with a typed *WorkerLostError
// (queries span all workers, so all are doomed), and tells survivors to
// force-abort — with a worker gone, cancel-drain could never quiesce
// (termination waves need every rank of the machine).
func (c *Coordinator) dropWorker(w *wconn, why string) {
	c.mu.Lock()
	if c.closed || c.workers[w.slot] != w {
		// Shutdown teardown, or an older drop already processed this wconn.
		c.mu.Unlock()
		w.conn.Close()
		return
	}
	c.workers[w.slot] = nil
	c.epochOK[w.slot] = 0
	c.joined--
	epoch := c.epoch
	formed := c.formed
	c.unwholeLocked()
	var doomed []*Query
	var survivors []*wconn
	if formed {
		for _, q := range c.queries {
			doomed = append(doomed, q)
		}
		for _, ww := range c.workers {
			if ww != nil {
				survivors = append(survivors, ww)
			}
		}
	}
	c.mu.Unlock()

	// Best-effort eviction notice: a live-but-stalled worker must learn it
	// was declared dead so it aborts its queries and re-joins fresh.
	w.send(msg{Type: "evicted"})
	w.conn.Close()
	if !formed {
		c.logf("cluster: worker %d lost before formation (%s); slot reopened", w.slot, why)
		return
	}
	c.logf("cluster: worker %d LOST (%s): epoch %d degraded, failing %d in-flight, notifying %d survivor(s)",
		w.slot, why, epoch, len(doomed), len(survivors))
	lost := &WorkerLostError{Slot: w.slot, Epoch: epoch}
	for _, q := range doomed {
		q.fail(lost)
	}
	for _, ww := range survivors {
		ww.send(msg{Type: "abort"})
	}
}

// heartbeatLoop is the failure detector: ping every connected worker each
// cfg.Heartbeat, and evict any worker that has confirmed an epoch (i.e. is
// past its build and serving its control loop) yet has been silent for
// longer than cfg.Liveness. Workers that have not confirmed yet are building
// partitions — a phase that legitimately goes quiet on the control plane —
// and are covered by the connection-error path plus WaitReady timeouts.
func (c *Coordinator) heartbeatLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-c.hbStop:
			return
		case <-t.C:
		}
		c.mu.Lock()
		live := make([]*wconn, 0, len(c.workers))
		confirmed := make([]bool, 0, len(c.workers))
		for s, w := range c.workers {
			if w != nil {
				live = append(live, w)
				confirmed = append(confirmed, c.epochOK[s] != 0)
			}
		}
		c.mu.Unlock()
		now := time.Now().UnixNano()
		for i, w := range live {
			if confirmed[i] && now-w.last.Load() > int64(c.cfg.Liveness) {
				c.dropWorker(w, fmt.Sprintf("no heartbeat for %v", c.cfg.Liveness))
				continue
			}
			if err := w.send(msg{Type: "ping"}); err != nil {
				c.dropWorker(w, "heartbeat write failed")
			}
		}
	}
}

// broadcastLayout ships the current cluster layout — every live worker's
// mesh address and rank window plus the fencing epoch — to all connected
// workers. Sent at seal (initial formation) and on every re-join; survivors
// answer with layout-ack after re-pointing their meshes, the newcomer with
// ready after its local rebuild.
func (c *Coordinator) broadcastLayout() {
	c.mu.Lock()
	epoch := c.epoch
	infos := make([]workerInfo, 0, len(c.workers))
	conns := make([]*wconn, 0, len(c.workers))
	for _, w := range c.workers {
		if w != nil {
			infos = append(infos, w.info)
			conns = append(conns, w)
		}
	}
	c.mu.Unlock()
	c.logf("cluster: layout broadcast: %d/%d workers, epoch %d", len(conns), c.cfg.Workers, epoch)
	for _, w := range conns {
		w.send(msg{Type: "cluster", Epoch: epoch, Workers: infos})
	}
}

// WaitReady blocks until the cluster is whole — every worker built, started,
// and confirmed at the current epoch — or the timeout elapses. Valid both for
// initial formation and for healing after a worker loss.
func (c *Coordinator) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		if c.wholeLocked() {
			c.mu.Unlock()
			return nil
		}
		ch := c.wholeCh
		missing := c.missingLocked()
		c.mu.Unlock()
		wait := time.Until(deadline)
		if wait <= 0 {
			return fmt.Errorf("cluster: timed out after %v with slots %v dead or unconfirmed", timeout, missing)
		}
		select {
		case <-ch:
			// Whole at the epoch the channel belonged to; re-check, the
			// cluster may have degraded again.
		case <-time.After(wait):
			return fmt.Errorf("cluster: timed out after %v with slots %v dead or unconfirmed", timeout, missing)
		}
	}
}

// Query is the coordinator-side handle on one cluster-wide query.
type Query struct {
	c    *Coordinator
	id   uint32
	spec engine.Spec
	res  *engine.Result

	mu        sync.Mutex
	pending   int
	accumSum  uint64
	errDetail []string
	failErr   error // terminal typed failure (worker lost)
	finished  bool
	timer     *time.Timer

	done chan struct{}
}

// Submit admits a query globally (blocking while MaxInFlight queries are in
// flight) and fans it out to every worker. The returned Query completes when
// all workers have reported their master-range partials — or fails typed if
// a worker dies first. While the cluster is degraded, Submit sheds
// immediately with *DegradedError instead of queueing onto a cluster that
// cannot answer.
func (c *Coordinator) Submit(spec engine.Spec) (*Query, error) {
	switch spec.Algo {
	case engine.AlgoBFS, engine.AlgoBFSDO, engine.AlgoSSSP:
		if uint64(spec.Source) >= c.n {
			return nil, fmt.Errorf("cluster: source %d out of range [0, %d)", spec.Source, c.n)
		}
	case engine.AlgoCC, engine.AlgoTriangles:
	case engine.AlgoKCore:
		if spec.K < 1 {
			return nil, errors.New("cluster: kcore needs k >= 1")
		}
	case engine.AlgoPageRank:
		if spec.Iters > pagerank.MaxIters {
			return nil, fmt.Errorf("cluster: pagerank iters %d exceeds max %d", spec.Iters, pagerank.MaxIters)
		}
	default:
		return nil, fmt.Errorf("cluster: unknown algorithm %q", spec.Algo)
	}
	c.sem <- struct{}{} // global admission: one slot per in-flight query

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.sem
		return nil, ErrCoordinatorClosed
	}
	if !c.wholeLocked() {
		derr := &DegradedError{Missing: c.missingLocked(), Epoch: c.epoch}
		c.mu.Unlock()
		<-c.sem
		return nil, derr
	}
	// Registration happens under the same lock as the wholeness check: a
	// worker death after this point finds the query in c.queries and fails
	// it; there is no window where a query can fan out unseen and hang.
	q := &Query{
		c:       c,
		id:      c.nextQID,
		spec:    spec,
		res:     newClusterResult(spec, c.n),
		pending: c.cfg.Workers,
		done:    make(chan struct{}),
	}
	c.nextQID++
	c.queries[q.id] = q
	conns := append([]*wconn(nil), c.workers...)
	c.mu.Unlock()

	if spec.Deadline > 0 {
		q.timer = time.AfterFunc(spec.Deadline, q.Cancel)
	}
	sub := msg{
		Type: "submit", QID: q.id, Algo: string(spec.Algo),
		Source: uint64(spec.Source), WeightSeed: spec.WeightSeed, K: spec.K,
		Iters: spec.Iters,
	}
	for _, w := range conns {
		if w != nil {
			w.send(sub)
		}
	}
	return q, nil
}

// newClusterResult mirrors the engine's result initialization so a cancelled
// (partial) assembly still reads as "unreached", never as spurious zeros.
func newClusterResult(spec engine.Spec, n uint64) *engine.Result {
	res := &engine.Result{}
	switch spec.Algo {
	case engine.AlgoBFS, engine.AlgoBFSDO:
		res.Levels = make([]uint32, n)
		for i := range res.Levels {
			res.Levels[i] = ^uint32(0)
		}
	case engine.AlgoSSSP:
		res.Dist = make([]uint64, n)
		for i := range res.Dist {
			res.Dist[i] = ^uint64(0)
		}
	case engine.AlgoCC:
		res.Labels = make([]graph.Vertex, n)
		for i := range res.Labels {
			res.Labels[i] = graph.Vertex(i)
		}
	case engine.AlgoKCore:
		res.InCore = make([]bool, n)
	case engine.AlgoPageRank:
		res.Ranks = make([]uint64, n)
		if n > 0 {
			init := ref.PRScale / n
			for i := range res.Ranks {
				res.Ranks[i] = init
			}
		}
	}
	return res
}

// addPartial folds one worker's master-range result into the assembly; the
// last worker to report completes the query.
func (q *Query) addPartial(m *msg) {
	q.mu.Lock()
	if q.finished {
		q.mu.Unlock()
		return
	}
	if m.Err != "" {
		q.errDetail = append(q.errDetail, m.Err)
	}
	switch {
	case m.Levels != nil:
		copy(q.res.Levels[m.Lo:m.Hi], m.Levels)
	case m.Dist != nil:
		copy(q.res.Dist[m.Lo:m.Hi], m.Dist)
	case m.Labels != nil:
		dst := q.res.Labels[m.Lo:m.Hi]
		for i, v := range m.Labels {
			dst[i] = graph.Vertex(v)
		}
	case m.InCore != nil:
		copy(q.res.InCore[m.Lo:m.Hi], m.InCore)
	case m.Ranks != nil:
		copy(q.res.Ranks[m.Lo:m.Hi], m.Ranks)
	}
	q.accumSum += m.Accum
	if m.Lo == 0 && m.Hi > 0 {
		q.res.Waves = m.Waves // detector root lives on rank 0's worker
	}
	if m.Cancelled {
		q.res.Cancelled = true
	}
	q.pending--
	last := q.pending == 0
	if last {
		q.finished = true
		switch q.spec.Algo {
		case engine.AlgoCC:
			q.res.Components = q.accumSum
		case engine.AlgoKCore:
			q.res.CoreSize = q.accumSum
		case engine.AlgoTriangles:
			q.res.Triangles = q.accumSum
		}
		if q.timer != nil {
			q.timer.Stop()
		}
	}
	q.mu.Unlock()
	if last {
		q.c.mu.Lock()
		delete(q.c.queries, q.id)
		q.c.mu.Unlock()
		close(q.done)
		<-q.c.sem // release the admission slot
	}
}

// fail completes the query with a terminal typed error without waiting for
// the remaining partials — they are never coming (their worker is dead, and
// the survivors were told to abort). Idempotent against addPartial and
// against concurrent drops of different workers.
func (q *Query) fail(err error) {
	q.mu.Lock()
	if q.finished {
		q.mu.Unlock()
		return
	}
	q.finished = true
	q.failErr = err
	q.res.Cancelled = true
	if q.timer != nil {
		q.timer.Stop()
	}
	q.mu.Unlock()
	q.c.mu.Lock()
	delete(q.c.queries, q.id)
	q.c.mu.Unlock()
	close(q.done)
	<-q.c.sem
}

// ID returns the cluster-wide query ID (also the mailbox tag on every rank).
func (q *Query) ID() uint32 { return q.id }

// Done is closed once every worker has reported (or the query failed typed).
func (q *Query) Done() <-chan struct{} { return q.done }

// Wait blocks for assembly and returns the global result. The error is
// non-nil if any worker rejected or failed the query — in particular, a
// *WorkerLostError (errors.Is ErrWorkerLost) when a worker process died
// mid-query; the caller may WaitReady for the heal and resubmit.
func (q *Query) Wait() (*engine.Result, error) {
	<-q.done
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.failErr != nil {
		return q.res, q.failErr
	}
	if len(q.errDetail) > 0 {
		return q.res, fmt.Errorf("cluster: query %d failed on %d worker(s): %s",
			q.id, len(q.errDetail), q.errDetail[0])
	}
	return q.res, nil
}

// Cancel broadcasts cancellation; every worker flips the query into drain
// mode and still reports its (partial, monotone) master range.
func (q *Query) Cancel() {
	q.c.mu.Lock()
	conns := append([]*wconn(nil), q.c.workers...)
	q.c.mu.Unlock()
	for _, w := range conns {
		if w != nil {
			w.send(msg{Type: "cancel", QID: q.id})
		}
	}
}

// statsWaiter collects one NetStats sweep's replies.
type statsWaiter struct {
	remaining int
	totals    NetTotals
	done      chan struct{}
}

// NetStats sweeps every live worker's data-plane counters and returns the
// sum. One sweep at a time; callers serialize.
func (c *Coordinator) NetStats(timeout time.Duration) (NetTotals, error) {
	c.mu.Lock()
	if c.statsW != nil {
		c.mu.Unlock()
		return NetTotals{}, errors.New("cluster: a stats sweep is already in flight")
	}
	conns := make([]*wconn, 0, len(c.workers))
	for _, w := range c.workers {
		if w != nil {
			conns = append(conns, w)
		}
	}
	sw := &statsWaiter{remaining: len(conns), done: make(chan struct{})}
	c.statsW = sw
	c.mu.Unlock()

	for _, w := range conns {
		w.send(msg{Type: "stats"})
	}
	select {
	case <-sw.done:
		return sw.totals, nil
	case <-time.After(timeout):
		c.mu.Lock()
		if c.statsW == sw {
			c.statsW = nil
		}
		c.mu.Unlock()
		return sw.totals, fmt.Errorf("cluster: stats sweep timed out with %d workers unreported", sw.remaining)
	}
}

// Close shuts the cluster down: stop the failure detector, broadcast
// shutdown, drop every control connection, stop accepting. In-flight queries
// should be drained first (workers drain cleanly anyway, but their results
// will have nowhere to go).
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.wg.Wait()
		return nil
	}
	c.closed = true
	conns := append([]*wconn(nil), c.workers...)
	c.mu.Unlock()

	close(c.hbStop)
	for _, w := range conns {
		if w != nil {
			w.send(msg{Type: "shutdown"})
		}
	}
	c.ln.Close()
	for _, w := range conns {
		if w != nil {
			w.conn.Close()
		}
	}
	c.wg.Wait()
	return nil
}
