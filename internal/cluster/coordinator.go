package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"havoqgt/internal/engine"
	"havoqgt/internal/graph"
)

// ErrCoordinatorClosed reports a Submit after Close.
var ErrCoordinatorClosed = errors.New("cluster: coordinator closed")

// joinReadTimeout bounds how long an accepted connection may dawdle before
// its join line arrives; a port-scanner or half-open socket must not pin a
// handler goroutine forever.
const joinReadTimeout = 60 * time.Second

// wconn is one joined worker's control connection. Writes serialize on encMu
// (results for different queries interleave from multiple goroutines).
type wconn struct {
	slot  int
	info  workerInfo
	conn  net.Conn
	encMu sync.Mutex
	enc   *json.Encoder
}

func (w *wconn) send(m msg) error {
	w.encMu.Lock()
	defer w.encMu.Unlock()
	return w.enc.Encode(&m)
}

// Coordinator owns one cluster: it admits exactly cfg.Workers join
// handshakes, seals the layout, broadcasts it, and from then on is the single
// point of global admission — queries enter here, fan out to every worker,
// and assemble from the workers' disjoint master-range partials.
type Coordinator struct {
	cfg   ClusterConfig
	sum   string
	epoch uint64
	n     uint64 // vertices
	ln    net.Listener
	logf  func(format string, args ...any)

	mu      sync.Mutex
	workers []*wconn // by slot; nil until joined
	joined  int
	sealed  bool
	ready   int
	readyCh chan struct{}
	queries map[uint32]*Query
	nextQID uint32
	closed  bool
	statsW  *statsWaiter // at most one outstanding NetStats sweep

	sem chan struct{} // global MaxInFlight admission

	wg sync.WaitGroup
}

// NewCoordinator binds addr (":0" works; see Addr) and starts accepting
// joins. logf may be nil.
func NewCoordinator(addr string, cfg ClusterConfig, logf func(string, ...any)) (*Coordinator, error) {
	cfg = cfg.normalized()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	c := &Coordinator{
		cfg:     cfg,
		sum:     cfg.Checksum(),
		epoch:   uint64(time.Now().UnixNano()),
		n:       uint64(1) << cfg.Scale,
		ln:      ln,
		logf:    logf,
		workers: make([]*wconn, cfg.Workers),
		readyCh: make(chan struct{}),
		queries: make(map[uint32]*Query),
		nextQID: 1,
		sem:     make(chan struct{}, cfg.MaxInFlight),
	}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// Addr returns the bound control address (resolves ":0").
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Epoch returns the cluster epoch minted at startup.
func (c *Coordinator) Epoch() uint64 { return c.epoch }

// NumVertices returns the configured graph's vertex count.
func (c *Coordinator) NumVertices() uint64 { return c.n }

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go c.handleConn(conn)
	}
}

// handleConn runs one connection: the join handshake, then (if admitted) the
// worker's inbound message stream until the connection dies.
func (c *Coordinator) handleConn(conn net.Conn) {
	defer c.wg.Done()
	dec := json.NewDecoder(conn)
	conn.SetReadDeadline(time.Now().Add(joinReadTimeout))
	var join msg
	if err := dec.Decode(&join); err != nil || join.Type != "join" {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})

	w := &wconn{conn: conn, enc: json.NewEncoder(conn)}
	refuse := func(code, detail string) {
		w.send(msg{Type: "error", Code: code, Detail: detail})
		conn.Close()
	}
	if join.Version != Version {
		refuse(codeVersion, fmt.Sprintf("coordinator speaks %q, worker %q", Version, join.Version))
		return
	}
	if join.ConfigSum != c.sum {
		refuse(codeConfig, fmt.Sprintf("coordinator config %s, worker %s", c.sum, join.ConfigSum))
		return
	}

	c.mu.Lock()
	if c.sealed {
		c.mu.Unlock()
		refuse(codeSealed, fmt.Sprintf("cluster already has all %d workers", c.cfg.Workers))
		return
	}
	slot := join.Slot
	if slot >= 0 {
		if slot >= c.cfg.Workers {
			c.mu.Unlock()
			refuse(codeSlot, fmt.Sprintf("slot %d out of range [0, %d)", slot, c.cfg.Workers))
			return
		}
		if c.workers[slot] != nil {
			c.mu.Unlock()
			refuse(codeSlot, fmt.Sprintf("slot %d already joined", slot))
			return
		}
	} else {
		for i, ww := range c.workers {
			if ww == nil {
				slot = i
				break
			}
		}
	}
	lo, hi := c.cfg.window(slot)
	w.slot = slot
	w.info = workerInfo{Slot: slot, MeshAddr: join.MeshAddr, Lo: lo, Hi: hi}
	c.workers[slot] = w
	c.joined++
	seal := c.joined == c.cfg.Workers
	if seal {
		c.sealed = true
	}
	c.mu.Unlock()

	c.logf("cluster: worker %d joined from %s (mesh %s, ranks [%d,%d))",
		slot, conn.RemoteAddr(), join.MeshAddr, lo, hi)
	if err := w.send(msg{Type: "joined", Slot: slot}); err != nil {
		conn.Close()
		return
	}
	if seal {
		c.broadcastLayout()
	}

	for {
		var m msg
		if err := dec.Decode(&m); err != nil {
			conn.Close()
			return
		}
		switch m.Type {
		case "ready":
			c.mu.Lock()
			c.ready++
			if c.ready == c.cfg.Workers {
				close(c.readyCh)
			}
			c.mu.Unlock()
			c.logf("cluster: worker %d ready", w.slot)
		case "result":
			c.mu.Lock()
			q := c.queries[m.QID]
			c.mu.Unlock()
			if q != nil {
				q.addPartial(&m)
			}
		case "stats":
			c.mu.Lock()
			sw := c.statsW
			if sw != nil && m.Net != nil {
				sw.totals.add(m.Net)
				sw.remaining--
				if sw.remaining == 0 {
					c.statsW = nil
					close(sw.done)
				}
			}
			c.mu.Unlock()
		}
	}
}

// broadcastLayout ships the sealed cluster layout — every worker's mesh
// address and rank window plus the fencing epoch — to all workers.
func (c *Coordinator) broadcastLayout() {
	c.mu.Lock()
	infos := make([]workerInfo, len(c.workers))
	conns := make([]*wconn, len(c.workers))
	for i, w := range c.workers {
		infos[i] = w.info
		conns[i] = w
	}
	c.mu.Unlock()
	c.logf("cluster: sealed with %d workers / %d ranks, epoch %d", c.cfg.Workers, c.cfg.Ranks, c.epoch)
	for _, w := range conns {
		w.send(msg{Type: "cluster", Epoch: c.epoch, Workers: infos})
	}
}

// WaitReady blocks until every worker has built its partitions and started
// its engine, or the timeout elapses.
func (c *Coordinator) WaitReady(timeout time.Duration) error {
	select {
	case <-c.readyCh:
		return nil
	case <-time.After(timeout):
		c.mu.Lock()
		ready := c.ready
		c.mu.Unlock()
		return fmt.Errorf("cluster: timed out after %v with %d/%d workers ready", timeout, ready, c.cfg.Workers)
	}
}

// Query is the coordinator-side handle on one cluster-wide query.
type Query struct {
	c    *Coordinator
	id   uint32
	spec engine.Spec
	res  *engine.Result

	mu        sync.Mutex
	pending   int
	accumSum  uint64
	errDetail []string
	finished  bool
	timer     *time.Timer

	done chan struct{}
}

// Submit admits a query globally (blocking while MaxInFlight queries are in
// flight) and fans it out to every worker. The returned Query completes when
// all workers have reported their master-range partials.
func (c *Coordinator) Submit(spec engine.Spec) (*Query, error) {
	switch spec.Algo {
	case engine.AlgoBFS, engine.AlgoSSSP:
		if uint64(spec.Source) >= c.n {
			return nil, fmt.Errorf("cluster: source %d out of range [0, %d)", spec.Source, c.n)
		}
	case engine.AlgoCC:
	case engine.AlgoKCore:
		if spec.K < 1 {
			return nil, errors.New("cluster: kcore needs k >= 1")
		}
	default:
		return nil, fmt.Errorf("cluster: unknown algorithm %q", spec.Algo)
	}
	c.sem <- struct{}{} // global admission: one slot per in-flight query

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.sem
		return nil, ErrCoordinatorClosed
	}
	q := &Query{
		c:       c,
		id:      c.nextQID,
		spec:    spec,
		res:     newClusterResult(spec, c.n),
		pending: c.cfg.Workers,
		done:    make(chan struct{}),
	}
	c.nextQID++
	c.queries[q.id] = q
	conns := append([]*wconn(nil), c.workers...)
	c.mu.Unlock()

	if spec.Deadline > 0 {
		q.timer = time.AfterFunc(spec.Deadline, q.Cancel)
	}
	sub := msg{
		Type: "submit", QID: q.id, Algo: string(spec.Algo),
		Source: uint64(spec.Source), WeightSeed: spec.WeightSeed, K: spec.K,
	}
	for _, w := range conns {
		w.send(sub)
	}
	return q, nil
}

// newClusterResult mirrors the engine's result initialization so a cancelled
// (partial) assembly still reads as "unreached", never as spurious zeros.
func newClusterResult(spec engine.Spec, n uint64) *engine.Result {
	res := &engine.Result{}
	switch spec.Algo {
	case engine.AlgoBFS:
		res.Levels = make([]uint32, n)
		for i := range res.Levels {
			res.Levels[i] = ^uint32(0)
		}
	case engine.AlgoSSSP:
		res.Dist = make([]uint64, n)
		for i := range res.Dist {
			res.Dist[i] = ^uint64(0)
		}
	case engine.AlgoCC:
		res.Labels = make([]graph.Vertex, n)
		for i := range res.Labels {
			res.Labels[i] = graph.Vertex(i)
		}
	case engine.AlgoKCore:
		res.InCore = make([]bool, n)
	}
	return res
}

// addPartial folds one worker's master-range result into the assembly; the
// last worker to report completes the query.
func (q *Query) addPartial(m *msg) {
	q.mu.Lock()
	if q.finished {
		q.mu.Unlock()
		return
	}
	if m.Err != "" {
		q.errDetail = append(q.errDetail, m.Err)
	}
	switch {
	case m.Levels != nil:
		copy(q.res.Levels[m.Lo:m.Hi], m.Levels)
	case m.Dist != nil:
		copy(q.res.Dist[m.Lo:m.Hi], m.Dist)
	case m.Labels != nil:
		dst := q.res.Labels[m.Lo:m.Hi]
		for i, v := range m.Labels {
			dst[i] = graph.Vertex(v)
		}
	case m.InCore != nil:
		copy(q.res.InCore[m.Lo:m.Hi], m.InCore)
	}
	q.accumSum += m.Accum
	if m.Lo == 0 && m.Hi > 0 {
		q.res.Waves = m.Waves // detector root lives on rank 0's worker
	}
	if m.Cancelled {
		q.res.Cancelled = true
	}
	q.pending--
	last := q.pending == 0
	if last {
		q.finished = true
		switch q.spec.Algo {
		case engine.AlgoCC:
			q.res.Components = q.accumSum
		case engine.AlgoKCore:
			q.res.CoreSize = q.accumSum
		}
		if q.timer != nil {
			q.timer.Stop()
		}
	}
	q.mu.Unlock()
	if last {
		q.c.mu.Lock()
		delete(q.c.queries, q.id)
		q.c.mu.Unlock()
		close(q.done)
		<-q.c.sem // release the admission slot
	}
}

// ID returns the cluster-wide query ID (also the mailbox tag on every rank).
func (q *Query) ID() uint32 { return q.id }

// Done is closed once every worker has reported.
func (q *Query) Done() <-chan struct{} { return q.done }

// Wait blocks for assembly and returns the global result. The error is
// non-nil if any worker rejected or failed the query.
func (q *Query) Wait() (*engine.Result, error) {
	<-q.done
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.errDetail) > 0 {
		return q.res, fmt.Errorf("cluster: query %d failed on %d worker(s): %s",
			q.id, len(q.errDetail), q.errDetail[0])
	}
	return q.res, nil
}

// Cancel broadcasts cancellation; every worker flips the query into drain
// mode and still reports its (partial, monotone) master range.
func (q *Query) Cancel() {
	q.c.mu.Lock()
	conns := append([]*wconn(nil), q.c.workers...)
	q.c.mu.Unlock()
	for _, w := range conns {
		if w != nil {
			w.send(msg{Type: "cancel", QID: q.id})
		}
	}
}

// statsWaiter collects one NetStats sweep's replies.
type statsWaiter struct {
	remaining int
	totals    NetTotals
	done      chan struct{}
}

// NetStats sweeps every worker's data-plane counters and returns the
// cluster-wide sum. One sweep at a time; callers serialize.
func (c *Coordinator) NetStats(timeout time.Duration) (NetTotals, error) {
	c.mu.Lock()
	if c.statsW != nil {
		c.mu.Unlock()
		return NetTotals{}, errors.New("cluster: a stats sweep is already in flight")
	}
	sw := &statsWaiter{remaining: c.cfg.Workers, done: make(chan struct{})}
	c.statsW = sw
	conns := append([]*wconn(nil), c.workers...)
	c.mu.Unlock()

	for _, w := range conns {
		if w != nil {
			w.send(msg{Type: "stats"})
		}
	}
	select {
	case <-sw.done:
		return sw.totals, nil
	case <-time.After(timeout):
		c.mu.Lock()
		if c.statsW == sw {
			c.statsW = nil
		}
		c.mu.Unlock()
		return sw.totals, fmt.Errorf("cluster: stats sweep timed out with %d workers unreported", sw.remaining)
	}
}

// Close shuts the cluster down: broadcast shutdown, drop every control
// connection, stop accepting. In-flight queries should be drained first
// (workers drain cleanly anyway, but their results will have nowhere to go).
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.wg.Wait()
		return nil
	}
	c.closed = true
	conns := append([]*wconn(nil), c.workers...)
	c.mu.Unlock()

	for _, w := range conns {
		if w != nil {
			w.send(msg{Type: "shutdown"})
		}
	}
	c.ln.Close()
	for _, w := range conns {
		if w != nil {
			w.conn.Close()
		}
	}
	c.wg.Wait()
	return nil
}
