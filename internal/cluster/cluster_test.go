package cluster

import (
	"encoding/json"
	"errors"
	"net"
	"testing"
	"time"

	"havoqgt"
	"havoqgt/internal/check"
	"havoqgt/internal/engine"
)

// startWorkers launches n worker goroutines against the coordinator and
// returns a channel that yields each worker's exit error.
func startWorkers(t *testing.T, c *Coordinator, cfg ClusterConfig, n int) chan error {
	t.Helper()
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			errs <- RunWorker(WorkerOptions{
				Coordinator: c.Addr(), Config: cfg, Slot: -1, Logf: t.Logf,
			})
		}()
	}
	return errs
}

func drainWorkers(t *testing.T, errs chan error, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Errorf("worker exit: %v", err)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("timeout waiting for worker exit")
		}
	}
}

// TestClusterMatchesInProcess is the core equivalence check: a multi-worker
// cluster (separate machines glued by the real TCP mesh) must produce
// byte-identical deterministic results — BFS levels, SSSP distances, CC
// labels — to the single-process engine on the same generated graph.
func TestClusterMatchesInProcess(t *testing.T) {
	check.NoLeaks(t)
	cfg := ClusterConfig{Workers: 2, Ranks: 4, Scale: 9, Seed: 42}
	c, err := NewCoordinator("127.0.0.1:0", cfg, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	errs := startWorkers(t, c, cfg, cfg.Workers)
	if err := c.WaitReady(60 * time.Second); err != nil {
		t.Fatal(err)
	}

	const source, wseed = 3, 7
	qBFS, err := c.Submit(engine.Spec{Algo: engine.AlgoBFS, Source: source})
	if err != nil {
		t.Fatal(err)
	}
	qSSSP, err := c.Submit(engine.Spec{Algo: engine.AlgoSSSP, Source: source, WeightSeed: wseed})
	if err != nil {
		t.Fatal(err)
	}
	qCC, err := c.Submit(engine.Spec{Algo: engine.AlgoCC})
	if err != nil {
		t.Fatal(err)
	}
	qDO, err := c.Submit(engine.Spec{Algo: engine.AlgoBFSDO, Source: source})
	if err != nil {
		t.Fatal(err)
	}
	qPR, err := c.Submit(engine.Spec{Algo: engine.AlgoPageRank, Iters: 8})
	if err != nil {
		t.Fatal(err)
	}
	qTri, err := c.Submit(engine.Spec{Algo: engine.AlgoTriangles})
	if err != nil {
		t.Fatal(err)
	}
	resBFS, err := qBFS.Wait()
	if err != nil {
		t.Fatal(err)
	}
	resSSSP, err := qSSSP.Wait()
	if err != nil {
		t.Fatal(err)
	}
	resCC, err := qCC.Wait()
	if err != nil {
		t.Fatal(err)
	}
	resDO, err := qDO.Wait()
	if err != nil {
		t.Fatal(err)
	}
	resPR, err := qPR.Wait()
	if err != nil {
		t.Fatal(err)
	}
	resTri, err := qTri.Wait()
	if err != nil {
		t.Fatal(err)
	}

	// In-process reference on the identical generated graph.
	g, err := havoqgt.GenerateRMAT(cfg.Scale, cfg.Seed, havoqgt.Options{Ranks: cfg.Ranks})
	if err != nil {
		t.Fatal(err)
	}
	refBFS, err := g.BFS(source)
	if err != nil {
		t.Fatal(err)
	}
	refSSSP, err := g.ShortestPaths(source, wseed)
	if err != nil {
		t.Fatal(err)
	}
	refCC, err := g.Components()
	if err != nil {
		t.Fatal(err)
	}
	refPR, err := g.PageRank(8)
	if err != nil {
		t.Fatal(err)
	}
	refTri, err := g.CountTriangles()
	if err != nil {
		t.Fatal(err)
	}

	if got, want := HashResult(resBFS), HashU32s(refBFS.Levels); got != want {
		t.Errorf("bfs levels hash: cluster %016x, in-process %016x", got, want)
	}
	if got, want := HashResult(resSSSP), HashU64s(refSSSP.Distances); got != want {
		t.Errorf("sssp dist hash: cluster %016x, in-process %016x", got, want)
	}
	if got, want := HashResult(resCC), HashVertices(refCC.Labels); got != want {
		t.Errorf("cc labels hash: cluster %016x, in-process %016x", got, want)
	}
	if resCC.Components != refCC.Count {
		t.Errorf("components: cluster %d, in-process %d", resCC.Components, refCC.Count)
	}
	if got, want := HashResult(resDO), HashU32s(refBFS.Levels); got != want {
		t.Errorf("bfs_do levels hash: cluster %016x, in-process top-down %016x", got, want)
	}
	if got, want := HashResult(resPR), HashU64s(refPR.Ranks); got != want {
		t.Errorf("pagerank hash: cluster %016x, in-process %016x", got, want)
	}
	if resTri.Triangles != refTri {
		t.Errorf("triangles: cluster %d, in-process %d", resTri.Triangles, refTri)
	}
	if resBFS.Waves == 0 {
		t.Error("cluster BFS reported zero termination waves")
	}

	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	drainWorkers(t, errs, cfg.Workers)
}

// rawJoin dials the coordinator and performs a hand-rolled join, returning
// the decoded verdict. The connection stays open (caller closes).
func rawJoin(t *testing.T, addr string, join msg) (net.Conn, msg) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewEncoder(conn).Encode(&join); err != nil {
		t.Fatal(err)
	}
	var reply msg
	if err := json.NewDecoder(conn).Decode(&reply); err != nil {
		t.Fatalf("join verdict: %v", err)
	}
	return conn, reply
}

func TestJoinVersionMismatch(t *testing.T) {
	check.NoLeaks(t)
	cfg := ClusterConfig{Workers: 1, Ranks: 1, Scale: 5, Seed: 1}
	c, err := NewCoordinator("127.0.0.1:0", cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	old := joinVersion
	joinVersion = "havoqd-cluster/0-ancient"
	defer func() { joinVersion = old }()
	err = RunWorker(WorkerOptions{Coordinator: c.Addr(), Config: cfg, Slot: -1})
	if !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("got %v, want ErrVersionMismatch", err)
	}
}

func TestJoinConfigMismatch(t *testing.T) {
	check.NoLeaks(t)
	cfg := ClusterConfig{Workers: 1, Ranks: 1, Scale: 5, Seed: 1}
	c, err := NewCoordinator("127.0.0.1:0", cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	bad := cfg
	bad.Seed = 2 // a worker generating a different graph must be refused
	err = RunWorker(WorkerOptions{Coordinator: c.Addr(), Config: bad, Slot: -1})
	if !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("got %v, want ErrConfigMismatch", err)
	}
}

func TestJoinDuplicateSlot(t *testing.T) {
	check.NoLeaks(t)
	cfg := ClusterConfig{Workers: 2, Ranks: 2, Scale: 5, Seed: 1}
	c, err := NewCoordinator("127.0.0.1:0", cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	conn, reply := rawJoin(t, c.Addr(), msg{
		Type: "join", Version: Version, ConfigSum: cfg.Checksum(),
		Slot: 1, MeshAddr: "127.0.0.1:1",
	})
	defer conn.Close()
	if reply.Type != "joined" || reply.Slot != 1 {
		t.Fatalf("first join: %+v", reply)
	}

	err = RunWorker(WorkerOptions{Coordinator: c.Addr(), Config: cfg, Slot: 1})
	if !errors.Is(err, ErrDuplicateSlot) {
		t.Fatalf("got %v, want ErrDuplicateSlot", err)
	}
}

func TestJoinAfterSealed(t *testing.T) {
	check.NoLeaks(t)
	cfg := ClusterConfig{Workers: 1, Ranks: 1, Scale: 5, Seed: 1}
	c, err := NewCoordinator("127.0.0.1:0", cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Fill the only slot with a hand-rolled join; the cluster seals.
	conn, reply := rawJoin(t, c.Addr(), msg{
		Type: "join", Version: Version, ConfigSum: cfg.Checksum(),
		Slot: -1, MeshAddr: "127.0.0.1:1",
	})
	defer conn.Close()
	if reply.Type != "joined" {
		t.Fatalf("first join refused: %+v", reply)
	}

	err = RunWorker(WorkerOptions{Coordinator: c.Addr(), Config: cfg, Slot: -1})
	if !errors.Is(err, ErrSealed) {
		t.Fatalf("got %v, want ErrSealed", err)
	}
}

// TestCoordinatorDiesBeforeVerdict: the control connection drops before the
// join verdict arrives — the worker must fail typed, not hang or leak.
func TestCoordinatorDiesBeforeVerdict(t *testing.T) {
	check.NoLeaks(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			conn.Close() // hang up without a verdict
		}
	}()

	cfg := ClusterConfig{Workers: 1, Ranks: 1, Scale: 5, Seed: 1}
	err = RunWorker(WorkerOptions{Coordinator: ln.Addr().String(), Config: cfg, Slot: -1})
	if !errors.Is(err, ErrCoordinatorDown) {
		t.Fatalf("got %v, want ErrCoordinatorDown", err)
	}
}

// TestCoordinatorDiesMidJoin: the worker joined but the coordinator dies
// before the cluster seals (no layout ever arrives).
func TestCoordinatorDiesMidJoin(t *testing.T) {
	check.NoLeaks(t)
	cfg := ClusterConfig{Workers: 2, Ranks: 2, Scale: 5, Seed: 1}
	c, err := NewCoordinator("127.0.0.1:0", cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		done <- RunWorker(WorkerOptions{Coordinator: c.Addr(), Config: cfg, Slot: 0})
	}()

	// Wait until the worker's join landed, then kill the coordinator with
	// the second slot still open.
	deadline := time.Now().Add(10 * time.Second)
	for {
		c.mu.Lock()
		joined := c.joined
		c.mu.Unlock()
		if joined == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never joined")
		}
		time.Sleep(time.Millisecond)
	}
	c.Close()

	select {
	case err := <-done:
		if !errors.Is(err, ErrCoordinatorDown) {
			t.Fatalf("got %v, want ErrCoordinatorDown", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker hung after coordinator death")
	}
}

func TestSubmitValidation(t *testing.T) {
	check.NoLeaks(t)
	cfg := ClusterConfig{Workers: 1, Ranks: 1, Scale: 5, Seed: 1}
	c, err := NewCoordinator("127.0.0.1:0", cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Submit(engine.Spec{Algo: "betweenness"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := c.Submit(engine.Spec{Algo: engine.AlgoBFS, Source: 1 << 20}); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := c.Submit(engine.Spec{Algo: engine.AlgoBFSDO, Source: 1 << 20}); err == nil {
		t.Error("out-of-range bfs_do source accepted")
	}
	if _, err := c.Submit(engine.Spec{Algo: engine.AlgoKCore, K: 0}); err == nil {
		t.Error("k=0 kcore accepted")
	}
	if _, err := c.Submit(engine.Spec{Algo: engine.AlgoPageRank, Iters: 1000}); err == nil {
		t.Error("oversized pagerank iteration count accepted")
	}
}
