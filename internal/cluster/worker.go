package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"havoqgt/internal/core"
	"havoqgt/internal/engine"
	"havoqgt/internal/generators"
	"havoqgt/internal/graph"
	hnet "havoqgt/internal/net"
	"havoqgt/internal/obs"
	"havoqgt/internal/partition"
	"havoqgt/internal/rt"
)

// WorkerOptions configure one worker process.
type WorkerOptions struct {
	Coordinator string        // coordinator control address
	Config      ClusterConfig // must checksum-match the coordinator's
	Slot        int           // explicit worker slot, or -1 for coordinator-assigned
	MeshAddr    string        // data-plane listen address (default "127.0.0.1:0")
	JoinTimeout time.Duration // dial + handshake bound (default 30s)
	// JoinRetry keeps retrying a refused or failed join for this long before
	// giving up (0 = fail immediately). A restarted worker racing the failure
	// detector needs this: its old slot stays occupied until the detector
	// evicts the corpse, so the first joins bounce with ErrDuplicateSlot.
	JoinRetry time.Duration
	Logf      func(format string, args ...any)
}

// joinVersion is what this worker claims to speak; a var so the handshake
// rejection path is testable without forking a differently built binary.
var joinVersion = Version

func (o WorkerOptions) normalized() WorkerOptions {
	if o.MeshAddr == "" {
		o.MeshAddr = "127.0.0.1:0"
	}
	if o.JoinTimeout <= 0 {
		o.JoinTimeout = 30 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	o.Config = o.Config.normalized()
	return o
}

// RunWorker joins the coordinator, hosts this process's rank window until
// the coordinator orders shutdown, then tears everything down. It returns
// nil after a clean shutdown, a typed handshake error (ErrVersionMismatch,
// ErrConfigMismatch, ErrDuplicateSlot, ErrSealed) when the coordinator
// refuses the join, ErrEvicted when the coordinator's failure detector
// declared this worker dead, and ErrCoordinatorDown when the control
// connection dies without a verdict or before shutdown.
//
// With JoinRetry > 0, joins refused with ErrDuplicateSlot or ErrSealed and
// handshake-phase connection failures are retried until the window closes —
// the slot of a killed predecessor reopens only once the failure detector
// fires, so a fresh replacement must out-wait it.
func RunWorker(opts WorkerOptions) error {
	opts = opts.normalized()
	if err := opts.Config.validate(); err != nil {
		return err
	}
	deadline := time.Now().Add(opts.JoinRetry)
	for {
		joined, err := runWorkerSession(opts)
		if err == nil || joined || opts.JoinRetry <= 0 {
			return err
		}
		retryable := errors.Is(err, ErrDuplicateSlot) || errors.Is(err, ErrSealed) ||
			errors.Is(err, ErrCoordinatorDown)
		if !retryable || time.Now().After(deadline) {
			return err
		}
		opts.Logf("cluster: join refused (%v); retrying", err)
		time.Sleep(250 * time.Millisecond)
	}
}

// runWorkerSession is one join-to-teardown lifetime. joined reports whether
// the handshake got past the coordinator's verdict — errors after that point
// are session failures, not join refusals, and are never auto-retried.
func runWorkerSession(opts WorkerOptions) (joined bool, err error) {
	// Bind the data plane first: the join request must carry a dialable mesh
	// address, and binding ":0" resolves the port.
	mesh, err := hnet.NewMesh(opts.MeshAddr)
	if err != nil {
		return false, fmt.Errorf("cluster: bind mesh: %w", err)
	}
	meshStarted := false
	defer func() {
		if !meshStarted {
			mesh.Close()
		}
	}()

	conn, err := net.DialTimeout("tcp", opts.Coordinator, opts.JoinTimeout)
	if err != nil {
		return false, fmt.Errorf("%w: dial %s: %v", ErrCoordinatorDown, opts.Coordinator, err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(conn)

	// Handshake: join -> joined | error.
	conn.SetDeadline(time.Now().Add(opts.JoinTimeout))
	err = enc.Encode(&msg{
		Type: "join", Version: joinVersion, ConfigSum: opts.Config.Checksum(),
		Slot: opts.Slot, MeshAddr: mesh.Addr(),
	})
	if err != nil {
		return false, fmt.Errorf("%w: send join: %v", ErrCoordinatorDown, err)
	}
	var reply msg
	if err := dec.Decode(&reply); err != nil {
		return false, fmt.Errorf("%w: awaiting join verdict: %v", ErrCoordinatorDown, err)
	}
	switch reply.Type {
	case "joined":
	case "error":
		return false, codeToErr(reply.Code, reply.Detail)
	default:
		return false, fmt.Errorf("%w: unexpected %q during handshake", ErrCoordinatorDown, reply.Type)
	}
	slot := reply.Slot
	rejoin := reply.Rejoin
	opts.Logf("cluster: joined as worker %d (mesh %s, rejoin %t)", slot, mesh.Addr(), rejoin)

	// Layout: arrives once the last worker joins (or immediately on a
	// re-join), so no deadline — but a coordinator death here must still
	// surface as an error, not a hang. Heartbeat pings may interleave before
	// the layout lands; skip them.
	conn.SetDeadline(time.Time{})
	var layout msg
	for {
		if err := dec.Decode(&layout); err != nil {
			return true, fmt.Errorf("%w: awaiting cluster layout: %v", ErrCoordinatorDown, err)
		}
		if layout.Type == "cluster" {
			break
		}
		switch layout.Type {
		case "ping":
			continue
		case "evicted":
			return true, ErrEvicted
		default:
			return true, fmt.Errorf("%w: unexpected %q awaiting cluster layout", ErrCoordinatorDown, layout.Type)
		}
	}

	cfg := opts.Config
	p := cfg.Ranks
	lo, hi := cfg.window(slot)
	// Ownership comes from the config's static windows, not the layout: a
	// re-join-time layout lists only live workers, but every rank still has
	// exactly one home slot. Peer addresses come from the layout; a slot
	// absent there stays addressless and its mesh writer idles until a later
	// layout refresh supplies the address.
	owner := make([]int, p)
	for s := 0; s < cfg.Workers; s++ {
		slo, shi := cfg.window(s)
		for r := slo; r < shi; r++ {
			owner[r] = s
		}
	}
	peers := layoutPeers(layout.Workers, slot)

	// Data plane up: machine first (the mesh needs its Deliver), then the
	// mesh (the machine needs its Send). No frame moves until Run below.
	machine := rt.NewClusterMachine(p, lo, hi, mesh)
	err = mesh.Start(hnet.Config{
		Local: slot, Epoch: layout.Epoch, Peers: peers, Owner: owner,
		Deliver: machine.Deliver, Obs: machine.Obs(),
	})
	if err != nil {
		return true, fmt.Errorf("cluster: start mesh: %w", err)
	}
	meshStarted = true
	defer mesh.Close()

	// Graph construction. Initial formation builds collectively: every rank
	// everywhere generates its RMAT chunk and the partitioner's sample-sort
	// exchanges ride the mesh exactly as they ride in-process inboxes. A
	// re-joiner cannot do that — the survivors are serving queries, their
	// machines belong to their engines — so it replays the whole
	// deterministic build alone on a throwaway in-process machine and keeps
	// only its window's partitions.
	var parts []*partition.Part
	var ghosts []*core.GhostTable
	if rejoin {
		opts.Logf("cluster: worker %d re-join: local rebuild of scale-%d partitions for ranks [%d,%d)", slot, cfg.Scale, lo, hi)
		parts, ghosts, err = buildPartitions(rt.NewMachine(p), cfg, opts.Logf)
		if err == nil {
			for r := range parts {
				if r < lo || r >= hi {
					parts[r], ghosts[r] = nil, nil
				}
			}
		}
	} else {
		opts.Logf("cluster: worker %d building scale-%d partition for ranks [%d,%d)", slot, cfg.Scale, lo, hi)
		parts, ghosts, err = buildPartitions(machine, cfg, opts.Logf)
		if err == nil {
			for r := lo; r < hi; r++ {
				if parts[r] == nil {
					err = fmt.Errorf("cluster: build produced no partition for rank %d", r)
				}
			}
		}
	}
	if err != nil {
		return true, err
	}

	eng, err := engine.Start(engine.Config{
		Machine: machine, Parts: parts, Ghosts: ghosts, Topology: cfg.Topology,
	}, engine.Options{Reliable: cfg.Reliable})
	if err != nil {
		return true, fmt.Errorf("cluster: start engine: %w", err)
	}
	defer eng.Close()

	// The worker's contiguous global master range: results for every vertex
	// in [gLo, gHi) are owned here and shipped back per query.
	gLo, _ := parts[lo].Owners.MasterRange(lo)
	_, gHi := parts[hi-1].Owners.MasterRange(hi - 1)

	if err := enc.Encode(&msg{Type: "ready", Slot: slot, Epoch: layout.Epoch}); err != nil {
		return true, fmt.Errorf("%w: send ready: %v", ErrCoordinatorDown, err)
	}
	opts.Logf("cluster: worker %d ready (vertices [%d,%d), epoch %d)", slot, gLo, gHi, layout.Epoch)

	var (
		mu      sync.Mutex
		tickets = make(map[uint32]*engine.Ticket)
		sendMu  sync.Mutex // result senders run concurrently with the loop
		wg      sync.WaitGroup
	)
	send := func(m *msg) {
		sendMu.Lock()
		enc.Encode(m)
		sendMu.Unlock()
	}
	abortAll := func() {
		mu.Lock()
		for _, tk := range tickets {
			tk.Abort()
		}
		mu.Unlock()
	}

	serveErr := error(nil)
serve:
	for {
		var m msg
		if err := dec.Decode(&m); err != nil {
			serveErr = fmt.Errorf("%w: %v", ErrCoordinatorDown, err)
			break
		}
		switch m.Type {
		case "ping":
			send(&msg{Type: "pong", Slot: slot})
		case "submit":
			spec := engine.Spec{
				Algo:       engine.Algo(m.Algo),
				Source:     graph.Vertex(m.Source),
				WeightSeed: m.WeightSeed,
				K:          m.K,
				Iters:      m.Iters,
			}
			tk, err := eng.SubmitRemote(m.QID, spec)
			if err != nil {
				send(&msg{Type: "result", QID: m.QID, Err: err.Error()})
				continue
			}
			mu.Lock()
			tickets[m.QID] = tk
			mu.Unlock()
			wg.Add(1)
			go func(qid uint32, tk *engine.Ticket) {
				defer wg.Done()
				res := tk.Wait()
				mu.Lock()
				delete(tickets, qid)
				mu.Unlock()
				send(resultMsg(qid, res, gLo, gHi))
			}(m.QID, tk)
		case "cancel":
			mu.Lock()
			tk := tickets[m.QID]
			mu.Unlock()
			if tk != nil {
				tk.Cancel()
			}
		case "abort":
			// A worker elsewhere died: every in-flight query is doomed and
			// cooperative drain cannot quiesce (termination waves need every
			// rank of the machine). Force-retire them all; the coordinator
			// has already failed the queries typed.
			opts.Logf("cluster: worker %d force-aborting in-flight queries (peer worker lost)", slot)
			abortAll()
		case "cluster":
			// Layout refresh: a replacement worker healed a dead slot under a
			// bumped epoch. Re-point the mesh — the dead peer's queued frames
			// are dropped and its writer re-dials the new address with the new
			// epoch in the preamble — and ack so the coordinator can count
			// this survivor toward wholeness.
			mesh.Update(m.Epoch, layoutPeers(m.Workers, slot))
			send(&msg{Type: "layout-ack", Slot: slot, Epoch: m.Epoch})
			opts.Logf("cluster: worker %d adopted layout epoch %d", slot, m.Epoch)
		case "stats":
			reg := machine.Obs()
			send(&msg{Type: "stats", Slot: slot, Net: &NetTotals{
				BytesIn:    reg.Counter(obs.NetBytesIn).Value(),
				BytesOut:   reg.Counter(obs.NetBytesOut).Value(),
				FramesIn:   reg.Counter(obs.NetFramesIn).Value(),
				FramesOut:  reg.Counter(obs.NetFramesOut).Value(),
				Reconnects: reg.Counter(obs.NetReconnects).Value(),
			}})
		case "evicted":
			serveErr = ErrEvicted
			break serve
		case "shutdown":
			break serve
		}
	}

	if serveErr != nil {
		// The coordinator died or declared us dead with queries possibly in
		// flight. Cooperative drain is not an option — peer workers may
		// already be gone or aborting, so termination waves cannot complete.
		// Force-abort so the engine's Close below cannot hang.
		abortAll()
	}
	wg.Wait()
	opts.Logf("cluster: worker %d shutting down", slot)
	if err := eng.Close(); err != nil {
		return true, err
	}
	return true, serveErr
}

// layoutPeers extracts the mesh dial addresses of every other live worker
// from a layout message.
func layoutPeers(infos []workerInfo, self int) map[int]string {
	peers := make(map[int]string, len(infos))
	for _, wi := range infos {
		if wi.Slot != self && wi.MeshAddr != "" {
			peers[wi.Slot] = wi.MeshAddr
		}
	}
	return peers
}

// buildPartitions runs the deterministic RMAT generation + partitioning on
// the given machine — the shared cluster machine at formation (exchanges ride
// the mesh), or a throwaway in-process machine on re-join — and returns the
// per-rank partitions and ghost tables.
func buildPartitions(machine *rt.Machine, cfg ClusterConfig, logf func(string, ...any)) ([]*partition.Part, []*core.GhostTable, error) {
	p := cfg.Ranks
	n := uint64(1) << cfg.Scale
	gen := generators.NewGraph500(cfg.Scale, cfg.Seed)
	parts := make([]*partition.Part, p)
	ghosts := make([]*core.GhostTable, p)
	buildErrs := make([]error, p)
	machine.Run(func(r *rt.Rank) {
		local := graph.Undirect(gen.GenerateChunk(r.Rank(), p))
		var part *partition.Part
		var err error
		if cfg.Simplify {
			part, err = partition.BuildEdgeListSimple(r, local, n)
		} else {
			part, err = partition.BuildEdgeList(r, local, n)
		}
		if err != nil {
			buildErrs[r.Rank()] = err
			return
		}
		parts[r.Rank()] = part
		if cfg.Ghosts >= 0 {
			k := cfg.Ghosts
			if k == 0 {
				k = core.DefaultGhostsPerPartition
			}
			ghosts[r.Rank()] = core.BuildGhostTable(part, k)
		}
	})
	for r := 0; r < p; r++ {
		if buildErrs[r] != nil {
			return nil, nil, fmt.Errorf("cluster: build rank %d: %w", r, buildErrs[r])
		}
	}
	return parts, ghosts, nil
}

// resultMsg packages one query's worker-local outcome: the master-range
// slice of the deterministic arrays, the worker-local scalar accumulator,
// and (from rank 0's host only) the detector wave count.
func resultMsg(qid uint32, res *engine.Result, gLo, gHi uint64) *msg {
	m := &msg{Type: "result", QID: qid, Lo: gLo, Hi: gHi, Cancelled: res.Cancelled}
	switch {
	case res.Levels != nil:
		m.Levels = res.Levels[gLo:gHi]
	case res.Dist != nil:
		m.Dist = res.Dist[gLo:gHi]
	case res.Labels != nil:
		m.Labels = make([]uint64, gHi-gLo)
		for i, v := range res.Labels[gLo:gHi] {
			m.Labels[i] = uint64(v)
		}
		m.Accum = res.Components
	case res.InCore != nil:
		m.InCore = res.InCore[gLo:gHi]
		m.Accum = res.CoreSize
	case res.Ranks != nil:
		m.Ranks = res.Ranks[gLo:gHi]
	default:
		// Scalar-only results (triangle counting) carry the worker-local
		// accumulator with no per-vertex array.
		m.Accum = res.Triangles
	}
	m.Waves = res.Waves
	return m
}
