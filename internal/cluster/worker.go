package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"havoqgt/internal/core"
	"havoqgt/internal/engine"
	"havoqgt/internal/generators"
	"havoqgt/internal/graph"
	hnet "havoqgt/internal/net"
	"havoqgt/internal/obs"
	"havoqgt/internal/partition"
	"havoqgt/internal/rt"
)

// WorkerOptions configure one worker process.
type WorkerOptions struct {
	Coordinator string        // coordinator control address
	Config      ClusterConfig // must checksum-match the coordinator's
	Slot        int           // explicit worker slot, or -1 for coordinator-assigned
	MeshAddr    string        // data-plane listen address (default "127.0.0.1:0")
	JoinTimeout time.Duration // dial + handshake bound (default 30s)
	Logf        func(format string, args ...any)
}

// joinVersion is what this worker claims to speak; a var so the handshake
// rejection path is testable without forking a differently built binary.
var joinVersion = Version

func (o WorkerOptions) normalized() WorkerOptions {
	if o.MeshAddr == "" {
		o.MeshAddr = "127.0.0.1:0"
	}
	if o.JoinTimeout <= 0 {
		o.JoinTimeout = 30 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	o.Config = o.Config.normalized()
	return o
}

// RunWorker joins the coordinator, hosts this process's rank window until
// the coordinator orders shutdown, then tears everything down. It returns
// nil after a clean shutdown, a typed handshake error (ErrVersionMismatch,
// ErrConfigMismatch, ErrDuplicateSlot, ErrSealed) when the coordinator
// refuses the join, and ErrCoordinatorDown when the control connection dies
// without a verdict or before shutdown.
func RunWorker(opts WorkerOptions) error {
	opts = opts.normalized()
	if err := opts.Config.validate(); err != nil {
		return err
	}

	// Bind the data plane first: the join request must carry a dialable mesh
	// address, and binding ":0" resolves the port.
	mesh, err := hnet.NewMesh(opts.MeshAddr)
	if err != nil {
		return fmt.Errorf("cluster: bind mesh: %w", err)
	}
	meshStarted := false
	defer func() {
		if !meshStarted {
			mesh.Close()
		}
	}()

	conn, err := net.DialTimeout("tcp", opts.Coordinator, opts.JoinTimeout)
	if err != nil {
		return fmt.Errorf("%w: dial %s: %v", ErrCoordinatorDown, opts.Coordinator, err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(conn)

	// Handshake: join -> joined | error.
	conn.SetDeadline(time.Now().Add(opts.JoinTimeout))
	err = enc.Encode(&msg{
		Type: "join", Version: joinVersion, ConfigSum: opts.Config.Checksum(),
		Slot: opts.Slot, MeshAddr: mesh.Addr(),
	})
	if err != nil {
		return fmt.Errorf("%w: send join: %v", ErrCoordinatorDown, err)
	}
	var reply msg
	if err := dec.Decode(&reply); err != nil {
		return fmt.Errorf("%w: awaiting join verdict: %v", ErrCoordinatorDown, err)
	}
	switch reply.Type {
	case "joined":
	case "error":
		return codeToErr(reply.Code, reply.Detail)
	default:
		return fmt.Errorf("%w: unexpected %q during handshake", ErrCoordinatorDown, reply.Type)
	}
	slot := reply.Slot
	opts.Logf("cluster: joined as worker %d (mesh %s)", slot, mesh.Addr())

	// Layout: arrives once the last worker joins, so no deadline — but a
	// coordinator death here must still surface as an error, not a hang.
	conn.SetDeadline(time.Time{})
	var layout msg
	if err := dec.Decode(&layout); err != nil {
		return fmt.Errorf("%w: awaiting cluster layout: %v", ErrCoordinatorDown, err)
	}
	if layout.Type != "cluster" {
		return fmt.Errorf("%w: unexpected %q awaiting cluster layout", ErrCoordinatorDown, layout.Type)
	}

	cfg := opts.Config
	p := cfg.Ranks
	lo, hi := cfg.window(slot)
	owner := make([]int, p)
	peers := make(map[int]string, cfg.Workers-1)
	for _, wi := range layout.Workers {
		for r := wi.Lo; r < wi.Hi; r++ {
			owner[r] = wi.Slot
		}
		if wi.Slot != slot {
			peers[wi.Slot] = wi.MeshAddr
		}
	}

	// Data plane up: machine first (the mesh needs its Deliver), then the
	// mesh (the machine needs its Send). No frame moves until Run below.
	machine := rt.NewClusterMachine(p, lo, hi, mesh)
	err = mesh.Start(hnet.Config{
		Local: slot, Epoch: layout.Epoch, Peers: peers, Owner: owner,
		Deliver: machine.Deliver, Obs: machine.Obs(),
	})
	if err != nil {
		return fmt.Errorf("cluster: start mesh: %w", err)
	}
	meshStarted = true
	defer mesh.Close()

	// Collective graph construction across the whole cluster: every rank
	// everywhere generates its RMAT chunk and the partitioner's sample-sort
	// exchanges ride the mesh exactly as they ride the in-process inboxes.
	n := uint64(1) << cfg.Scale
	gen := generators.NewGraph500(cfg.Scale, cfg.Seed)
	parts := make([]*partition.Part, p)
	ghosts := make([]*core.GhostTable, p)
	buildErrs := make([]error, p)
	opts.Logf("cluster: worker %d building scale-%d partition for ranks [%d,%d)", slot, cfg.Scale, lo, hi)
	machine.Run(func(r *rt.Rank) {
		local := graph.Undirect(gen.GenerateChunk(r.Rank(), p))
		var part *partition.Part
		var err error
		if cfg.Simplify {
			part, err = partition.BuildEdgeListSimple(r, local, n)
		} else {
			part, err = partition.BuildEdgeList(r, local, n)
		}
		if err != nil {
			buildErrs[r.Rank()] = err
			return
		}
		parts[r.Rank()] = part
		if cfg.Ghosts >= 0 {
			k := cfg.Ghosts
			if k == 0 {
				k = core.DefaultGhostsPerPartition
			}
			ghosts[r.Rank()] = core.BuildGhostTable(part, k)
		}
	})
	for r := lo; r < hi; r++ {
		if buildErrs[r] != nil {
			return fmt.Errorf("cluster: build rank %d: %w", r, buildErrs[r])
		}
	}

	eng, err := engine.Start(engine.Config{
		Machine: machine, Parts: parts, Ghosts: ghosts, Topology: cfg.Topology,
	}, engine.Options{Reliable: cfg.Reliable})
	if err != nil {
		return fmt.Errorf("cluster: start engine: %w", err)
	}
	defer eng.Close()

	// The worker's contiguous global master range: results for every vertex
	// in [gLo, gHi) are owned here and shipped back per query.
	gLo, _ := parts[lo].Owners.MasterRange(lo)
	_, gHi := parts[hi-1].Owners.MasterRange(hi - 1)

	if err := enc.Encode(&msg{Type: "ready", Slot: slot}); err != nil {
		return fmt.Errorf("%w: send ready: %v", ErrCoordinatorDown, err)
	}
	opts.Logf("cluster: worker %d ready (vertices [%d,%d))", slot, gLo, gHi)

	var (
		mu      sync.Mutex
		tickets = make(map[uint32]*engine.Ticket)
		sendMu  sync.Mutex // result senders run concurrently with the loop
		wg      sync.WaitGroup
	)
	send := func(m *msg) {
		sendMu.Lock()
		enc.Encode(m)
		sendMu.Unlock()
	}

	serveErr := error(nil)
serve:
	for {
		var m msg
		if err := dec.Decode(&m); err != nil {
			serveErr = fmt.Errorf("%w: %v", ErrCoordinatorDown, err)
			break
		}
		switch m.Type {
		case "submit":
			spec := engine.Spec{
				Algo:       engine.Algo(m.Algo),
				Source:     graph.Vertex(m.Source),
				WeightSeed: m.WeightSeed,
				K:          m.K,
			}
			tk, err := eng.SubmitRemote(m.QID, spec)
			if err != nil {
				send(&msg{Type: "result", QID: m.QID, Err: err.Error()})
				continue
			}
			mu.Lock()
			tickets[m.QID] = tk
			mu.Unlock()
			wg.Add(1)
			go func(qid uint32, tk *engine.Ticket) {
				defer wg.Done()
				res := tk.Wait()
				mu.Lock()
				delete(tickets, qid)
				mu.Unlock()
				send(resultMsg(qid, res, gLo, gHi))
			}(m.QID, tk)
		case "cancel":
			mu.Lock()
			tk := tickets[m.QID]
			mu.Unlock()
			if tk != nil {
				tk.Cancel()
			}
		case "stats":
			reg := machine.Obs()
			send(&msg{Type: "stats", Slot: slot, Net: &NetTotals{
				BytesIn:    reg.Counter(obs.NetBytesIn).Value(),
				BytesOut:   reg.Counter(obs.NetBytesOut).Value(),
				FramesIn:   reg.Counter(obs.NetFramesIn).Value(),
				FramesOut:  reg.Counter(obs.NetFramesOut).Value(),
				Reconnects: reg.Counter(obs.NetReconnects).Value(),
			}})
		case "shutdown":
			break serve
		}
	}

	if serveErr != nil {
		// The coordinator died with queries possibly in flight. Flip them
		// all to drain so the engine's Close below can quiesce; the other
		// workers lost the same connection and do the same.
		mu.Lock()
		for _, tk := range tickets {
			tk.Cancel()
		}
		mu.Unlock()
	}
	wg.Wait()
	opts.Logf("cluster: worker %d shutting down", slot)
	if err := eng.Close(); err != nil {
		return err
	}
	return serveErr
}

// resultMsg packages one query's worker-local outcome: the master-range
// slice of the deterministic arrays, the worker-local scalar accumulator,
// and (from rank 0's host only) the detector wave count.
func resultMsg(qid uint32, res *engine.Result, gLo, gHi uint64) *msg {
	m := &msg{Type: "result", QID: qid, Lo: gLo, Hi: gHi, Cancelled: res.Cancelled}
	switch {
	case res.Levels != nil:
		m.Levels = res.Levels[gLo:gHi]
	case res.Dist != nil:
		m.Dist = res.Dist[gLo:gHi]
	case res.Labels != nil:
		m.Labels = make([]uint64, gHi-gLo)
		for i, v := range res.Labels[gLo:gHi] {
			m.Labels[i] = uint64(v)
		}
		m.Accum = res.Components
	case res.InCore != nil:
		m.InCore = res.InCore[gLo:gHi]
		m.Accum = res.CoreSize
	}
	m.Waves = res.Waves
	return m
}
