package cluster

import (
	"encoding/binary"
	"hash/fnv"

	"havoqgt/internal/engine"
	"havoqgt/internal/graph"
)

// Result hashing for cluster-vs-in-process equivalence checks. Only the
// DETERMINISTIC output of each traversal is hashed: BFS levels, SSSP
// distances, and component labels are fixpoints of monotone updates and do
// not depend on message timing or partition boundaries. Parent arrays are
// excluded on purpose — under asynchronous execution a vertex may be reached
// first through any of several equal-length paths, so parents legitimately
// differ between two correct runs.

// HashU32s digests a uint32 array (BFS levels).
func HashU32s(vals []uint32) uint64 {
	h := fnv.New64a()
	var b [4]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint32(b[:], v)
		h.Write(b[:])
	}
	return h.Sum64()
}

// HashU64s digests a uint64 array (SSSP distances).
func HashU64s(vals []uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	return h.Sum64()
}

// HashVertices digests a vertex array (CC labels).
func HashVertices(vals []graph.Vertex) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		h.Write(b[:])
	}
	return h.Sum64()
}

// HashResult digests a result's deterministic arrays: levels for BFS (both
// the top-down and direction-optimizing variants), distances for SSSP, labels
// for CC, fixed-point ranks for PageRank. Scalar-only results (triangle
// counting) hash the count itself. Returns 0 for results with no
// deterministic output (k-core membership is deterministic too, so it is
// included when present).
func HashResult(res *engine.Result) uint64 {
	switch {
	case res.Levels != nil:
		return HashU32s(res.Levels)
	case res.Dist != nil:
		return HashU64s(res.Dist)
	case res.Labels != nil:
		return HashVertices(res.Labels)
	case res.Ranks != nil:
		return HashU64s(res.Ranks)
	case res.Triangles != 0:
		return HashU64s([]uint64{res.Triangles})
	case res.InCore != nil:
		h := fnv.New64a()
		for _, in := range res.InCore {
			if in {
				h.Write([]byte{1})
			} else {
				h.Write([]byte{0})
			}
		}
		return h.Sum64()
	}
	return 0
}
