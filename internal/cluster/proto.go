// Package cluster runs the engine across OS processes: a coordinator owns
// rank discovery, partition assignment, global admission, and result
// assembly; workers each host a contiguous window of ranks on an
// rt.NewClusterMachine whose remote edges ride the internal/net TCP mesh.
//
// Two planes, deliberately separate:
//
//   - Control plane (this package): one JSON-lines TCP connection per worker
//     to the coordinator. Carries the join handshake, the sealed cluster
//     layout, query submit/cancel, per-worker partial results, and shutdown.
//     Low rate, latency-insensitive, human-debuggable with nc.
//
//   - Data plane (internal/net): the full worker-to-worker mesh carrying
//     rank-to-rank frames — visitor records, termination waves, collectives.
//     High rate, pooled, FIFO per edge.
//
// The handshake is epoch-fenced: the coordinator mints a cluster epoch at
// startup, hands it to joiners, and the mesh refuses connections from any
// other epoch — a worker from a torn-down cluster cannot inject frames into
// its successor. Joins are validated against the protocol version and a
// checksum of the shared ClusterConfig, so a worker launched with different
// flags (wrong scale, wrong rank count) is refused at join time instead of
// corrupting the run. Engine and mailbox semantics are unchanged: the fault
// transport still interposes at the same rt choke point, and reliable
// delivery rides on top exactly as in-process.
package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"time"
)

// Version names the control-plane protocol. Joins from any other version are
// refused with ErrVersionMismatch.
const Version = "havoqd-cluster/1"

// Handshake refusals, typed so workers (and their operators) can tell
// configuration mistakes apart from infrastructure failures. The coordinator
// transmits the matching wire code; Join folds it back into these values, so
// errors.Is works across the process boundary.
var (
	ErrVersionMismatch = errors.New("cluster: protocol version mismatch")
	ErrConfigMismatch  = errors.New("cluster: config checksum mismatch")
	ErrDuplicateSlot   = errors.New("cluster: worker slot already taken")
	ErrSealed          = errors.New("cluster: cluster already sealed")
	// ErrCoordinatorDown reports the control connection dying before (or
	// during) the handshake — the coordinator crashed, was unreachable, or
	// hung up without a verdict.
	ErrCoordinatorDown = errors.New("cluster: coordinator connection lost")
)

// Self-healing errors. Both sentinel targets have a struct carrier so callers
// can errors.Is for the class and errors.As for slot/epoch details.
var (
	// ErrWorkerLost is the class of WorkerLostError: an in-flight query died
	// because a worker process was declared dead mid-execution.
	ErrWorkerLost = errors.New("cluster: worker lost")
	// ErrClusterDegraded is the class of DegradedError: the cluster is not
	// whole (a slot is dead or still healing) and refuses new queries.
	ErrClusterDegraded = errors.New("cluster: degraded")
	// ErrEvicted is returned by RunWorker when the coordinator declared this
	// worker dead (a heartbeat lapse — e.g. a long stall — on a process that
	// is in fact alive). The worker has aborted its queries and torn down;
	// it may re-join as a fresh process.
	ErrEvicted = errors.New("cluster: worker evicted by coordinator")
)

// WorkerLostError fails every query in flight when a worker dies: the victim
// slot and the epoch that died with it.
type WorkerLostError struct {
	Slot  int
	Epoch uint64
}

func (e *WorkerLostError) Error() string {
	return fmt.Sprintf("cluster: worker %d lost (epoch %d): in-flight query aborted", e.Slot, e.Epoch)
}

// Is makes errors.Is(err, ErrWorkerLost) true for the carrier.
func (e *WorkerLostError) Is(target error) bool { return target == ErrWorkerLost }

// DegradedError rejects a submit while the cluster is not whole: the slots
// that are dead or not yet confirmed at the current epoch.
type DegradedError struct {
	Missing []int
	Epoch   uint64
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("cluster: degraded (epoch %d): slots %v dead or unhealed", e.Epoch, e.Missing)
}

// Is makes errors.Is(err, ErrClusterDegraded) true for the carrier.
func (e *DegradedError) Is(target error) bool { return target == ErrClusterDegraded }

// Wire error codes (msg.Code) for the refusals above.
const (
	codeVersion = "version-mismatch"
	codeConfig  = "config-mismatch"
	codeSlot    = "duplicate-slot"
	codeSealed  = "sealed"
)

func codeToErr(code, detail string) error {
	var base error
	switch code {
	case codeVersion:
		base = ErrVersionMismatch
	case codeConfig:
		base = ErrConfigMismatch
	case codeSlot:
		base = ErrDuplicateSlot
	case codeSealed:
		base = ErrSealed
	default:
		return fmt.Errorf("cluster: coordinator refused join (%s): %s", code, detail)
	}
	return fmt.Errorf("%w: %s", base, detail)
}

// ClusterConfig is the contract every process of one cluster must agree on.
// The coordinator is launched with it; each worker is launched with its own
// copy and the join handshake verifies the checksums match.
type ClusterConfig struct {
	Workers int // worker processes
	Ranks   int // total ranks, divided contiguously: Ranks/Workers per worker

	// Graph: a deterministic RMAT instance every worker generates locally.
	Scale uint
	Seed  uint64

	Topology string // mailbox routing ("1d" default)
	Ghosts   int    // hub-filter table entries per partition (0 = default)
	Reliable bool   // run the shared mailbox in reliable mode
	Simplify bool   // drop self loops and duplicate edges (required for kcore)

	MaxInFlight int // global (coordinator-side) concurrent-query bound

	// Failure detector tuning. Operational knobs, not cluster identity:
	// deliberately EXCLUDED from Checksum so a worker restarted with a
	// different liveness setting still joins.
	Heartbeat time.Duration // coordinator ping spacing (default 500ms)
	Liveness  time.Duration // silence after which a worker is declared dead (default 5s)
}

func (c ClusterConfig) normalized() ClusterConfig {
	if c.Topology == "" {
		c.Topology = "1d"
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 8
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 500 * time.Millisecond
	}
	if c.Liveness <= 0 {
		c.Liveness = 5 * time.Second
	}
	if c.Liveness < 2*c.Heartbeat {
		// A liveness window under two heartbeats would evict healthy workers
		// on scheduler jitter alone.
		c.Liveness = 2 * c.Heartbeat
	}
	return c
}

func (c ClusterConfig) validate() error {
	if c.Workers < 1 {
		return errors.New("cluster: need at least one worker")
	}
	if c.Ranks < c.Workers || c.Ranks%c.Workers != 0 {
		return fmt.Errorf("cluster: ranks (%d) must be a positive multiple of workers (%d)", c.Ranks, c.Workers)
	}
	return nil
}

// Checksum digests the fields every process must share. Topology and
// reliability change the message plane; scale/seed change the graph; worker
// and rank counts change the partition map — any divergence makes the
// cluster nonsense, so all of them are covered.
func (c ClusterConfig) Checksum() string {
	c = c.normalized()
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d|%d|%s|%d|%t|%t|%d",
		c.Workers, c.Ranks, c.Scale, c.Seed, c.Topology, c.Ghosts, c.Reliable, c.Simplify, c.MaxInFlight)
	return fmt.Sprintf("%016x", h.Sum64())
}

// ranksPerWorker returns the contiguous window width.
func (c ClusterConfig) ranksPerWorker() int { return c.Ranks / c.Workers }

// window returns worker slot s's rank window [lo, hi).
func (c ClusterConfig) window(s int) (lo, hi int) {
	w := c.ranksPerWorker()
	return s * w, (s + 1) * w
}

// workerInfo is one worker's entry in the sealed cluster layout.
type workerInfo struct {
	Slot     int    `json:"slot"`
	MeshAddr string `json:"meshAddr"`
	Lo       int    `json:"lo"`
	Hi       int    `json:"hi"`
}

// msg is the single control-plane message shape; Type selects which fields
// are meaningful. One struct keeps the codec trivial (a JSON line per
// message) at the cost of some slack — acceptable on a low-rate plane.
//
// Types, worker → coordinator: "join", "ready", "result", "stats",
// "layout-ack", "pong".
// Types, coordinator → worker: "joined", "error", "cluster", "submit",
// "cancel", "shutdown", "ping", "abort", "evicted".
type msg struct {
	Type string `json:"type"`

	// join / joined / error
	Version   string `json:"version,omitempty"`
	ConfigSum string `json:"configSum,omitempty"`
	Slot      int    `json:"slot"`
	MeshAddr  string `json:"meshAddr,omitempty"`
	Code      string `json:"code,omitempty"`
	Detail    string `json:"detail,omitempty"`
	// Rejoin marks a "joined" verdict on an already-formed cluster: the
	// worker must rebuild its partitions locally (the survivors are serving
	// and cannot run a collective build) under the bumped epoch.
	Rejoin bool `json:"rejoin,omitempty"`

	// cluster
	Epoch   uint64       `json:"epoch,omitempty"`
	Workers []workerInfo `json:"workers,omitempty"`

	// submit / cancel / result
	QID        uint32 `json:"qid,omitempty"`
	Algo       string `json:"algo,omitempty"`
	Source     uint64 `json:"source,omitempty"`
	WeightSeed uint64 `json:"weightSeed,omitempty"`
	K          uint32 `json:"k,omitempty"`
	Iters      uint32 `json:"iters,omitempty"`

	// result: the worker's contiguous master range [Lo, Hi) of the global
	// vertex space plus the per-algorithm array slice over it.
	Lo        uint64   `json:"vlo,omitempty"`
	Hi        uint64   `json:"vhi,omitempty"`
	Levels    []uint32 `json:"levels,omitempty"`
	Dist      []uint64 `json:"dist,omitempty"`
	Labels    []uint64 `json:"labels,omitempty"`
	InCore    []bool   `json:"inCore,omitempty"`
	Ranks     []uint64 `json:"ranks,omitempty"`
	Accum     uint64   `json:"accum,omitempty"` // worker-local component/core/triangle sum
	Waves     uint64   `json:"waves,omitempty"` // detector waves (slot hosting rank 0 only)
	Cancelled bool     `json:"cancelled,omitempty"`
	Err       string   `json:"err,omitempty"`

	// stats reply: the worker's data-plane counters.
	Net *NetTotals `json:"net,omitempty"`
}

// NetTotals aggregates the data-plane counters, per worker or cluster-wide.
type NetTotals struct {
	BytesIn    uint64 `json:"bytes_in"`
	BytesOut   uint64 `json:"bytes_out"`
	FramesIn   uint64 `json:"frames_in"`
	FramesOut  uint64 `json:"frames_out"`
	Reconnects uint64 `json:"reconnects"`
}

func (t *NetTotals) add(o *NetTotals) {
	t.BytesIn += o.BytesIn
	t.BytesOut += o.BytesOut
	t.FramesIn += o.FramesIn
	t.FramesOut += o.FramesOut
	t.Reconnects += o.Reconnects
}

// Sub returns t - o (for per-phase deltas).
func (t NetTotals) Sub(o NetTotals) NetTotals {
	return NetTotals{
		BytesIn:    t.BytesIn - o.BytesIn,
		BytesOut:   t.BytesOut - o.BytesOut,
		FramesIn:   t.FramesIn - o.FramesIn,
		FramesOut:  t.FramesOut - o.FramesOut,
		Reconnects: t.Reconnects - o.Reconnects,
	}
}
