package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"log"
	"net"
	"os"
	"os/exec"
	"strconv"
	"testing"
	"time"

	"havoqgt"
	"havoqgt/internal/check"
	"havoqgt/internal/engine"
)

// The failover tests need a worker the test can kill -9: a goroutine cannot
// be SIGKILLed, so the test binary re-execs itself as a worker process.
// TestMain intercepts the re-exec before any tests run.
func TestMain(m *testing.M) {
	if os.Getenv("HAVOQD_FAILOVER_WORKER") == "1" {
		os.Exit(failoverWorkerMain())
	}
	os.Exit(m.Run())
}

// failoverCfg is the shared contract of the kill-and-rejoin cluster; the
// helper process rebuilds it from the same constants, so the checksums match
// without shipping the config through the environment.
func failoverCfg() ClusterConfig {
	return ClusterConfig{
		Workers: 2, Ranks: 2, Scale: 8, Seed: 42,
		Heartbeat: 100 * time.Millisecond,
		Liveness:  time.Second,
	}
}

func failoverWorkerMain() int {
	log.SetPrefix("[worker] ")
	slot, err := strconv.Atoi(os.Getenv("HAVOQD_FAILOVER_SLOT"))
	if err != nil {
		log.Printf("bad slot: %v", err)
		return 2
	}
	err = RunWorker(WorkerOptions{
		Coordinator: os.Getenv("HAVOQD_FAILOVER_COORD"),
		Config:      failoverCfg(),
		Slot:        slot,
		JoinRetry:   30 * time.Second,
		Logf:        log.Printf,
	})
	if err != nil {
		log.Printf("worker exit: %v", err)
		return 1
	}
	return 0
}

// spawnFailoverWorker re-execs the test binary as a worker process for the
// given slot. Output is buffered and dumped only if the test fails.
func spawnFailoverWorker(t *testing.T, addr string, slot int) (*exec.Cmd, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(),
		"HAVOQD_FAILOVER_WORKER=1",
		"HAVOQD_FAILOVER_COORD="+addr,
		"HAVOQD_FAILOVER_SLOT="+strconv.Itoa(slot))
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn worker %d: %v", slot, err)
	}
	return cmd, &buf
}

// TestKillAndRejoin is the end-to-end self-healing check: SIGKILL a worker
// with queries in flight, and the cluster must (1) resolve every in-flight
// Wait with a typed *WorkerLostError instead of hanging, (2) report the dead
// slot and shed new submits with *DegradedError, (3) admit a replacement
// process into the dead slot under a bumped epoch, and (4) answer the
// retried queries hash-identically to the in-process engine.
func TestKillAndRejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills worker processes")
	}
	check.NoLeaks(t)
	cfg := failoverCfg()
	const source, wseed = 3, 7

	// In-process reference on the identical deterministic graph.
	g, err := havoqgt.GenerateRMAT(cfg.Scale, cfg.Seed, havoqgt.Options{Ranks: cfg.Ranks})
	if err != nil {
		t.Fatal(err)
	}
	refSSSP, err := g.ShortestPaths(source, wseed)
	if err != nil {
		t.Fatal(err)
	}
	refBFS, err := g.BFS(source)
	if err != nil {
		t.Fatal(err)
	}
	wantSSSP, wantBFS := HashU64s(refSSSP.Distances), HashU32s(refBFS.Levels)

	c, err := NewCoordinator("127.0.0.1:0", cfg, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	w0, log0 := spawnFailoverWorker(t, c.Addr(), 0)
	w1, log1 := spawnFailoverWorker(t, c.Addr(), 1)
	t.Cleanup(func() {
		w0.Process.Kill()
		w1.Process.Kill()
		w0.Wait()
		w1.Wait()
		if t.Failed() {
			t.Logf("worker 0 output:\n%s", log0.String())
			t.Logf("worker 1 output:\n%s", log1.String())
		}
	})
	if err := c.WaitReady(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	epochFormed := c.Epoch()

	// Baseline: the whole cluster answers correctly.
	q, err := c.Submit(engine.Spec{Algo: engine.AlgoSSSP, Source: source, WeightSeed: wseed})
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got := HashResult(res); got != wantSSSP {
		t.Fatalf("baseline sssp hash: cluster %016x, in-process %016x", got, wantSSSP)
	}

	// Burst, then SIGKILL worker 1 mid-flight. Depending on how fast the
	// queries and the failure detector race, each query either completed
	// (hash must match) or died typed — but every Wait MUST resolve.
	spec := engine.Spec{Algo: engine.AlgoSSSP, Source: source, WeightSeed: wseed}
	var inflight []*Query
	for i := 0; i < 4; i++ {
		q, err := c.Submit(spec)
		if err != nil {
			t.Fatalf("burst submit %d: %v", i, err)
		}
		inflight = append(inflight, q)
	}
	if err := w1.Process.Kill(); err != nil {
		t.Fatalf("kill worker 1: %v", err)
	}
	// Sneak more submits into the pre-detection window; once the detector
	// fires they shed typed instead.
	for i := 0; i < 3; i++ {
		q, err := c.Submit(spec)
		if err != nil {
			if !errors.Is(err, ErrClusterDegraded) {
				t.Fatalf("post-kill submit: got %v, want ErrClusterDegraded", err)
			}
			break
		}
		inflight = append(inflight, q)
		time.Sleep(50 * time.Millisecond)
	}
	for i, q := range inflight {
		select {
		case <-q.Done():
		case <-time.After(30 * time.Second):
			t.Fatalf("query %d hung after worker kill: in-flight Waits must resolve", i)
		}
		res, err := q.Wait()
		switch {
		case err == nil:
			if got := HashResult(res); got != wantSSSP {
				t.Errorf("query %d completed pre-kill but hash %016x != %016x", i, got, wantSSSP)
			}
		case errors.Is(err, ErrWorkerLost):
			var wl *WorkerLostError
			if !errors.As(err, &wl) {
				t.Fatalf("query %d: ErrWorkerLost without WorkerLostError carrier: %v", i, err)
			}
			if wl.Slot != 1 {
				t.Errorf("query %d: lost slot %d, want 1", i, wl.Slot)
			}
		default:
			t.Errorf("query %d: unexpected error %v", i, err)
		}
	}

	// The detector must report the dead slot and shed new work typed.
	deadline := time.Now().Add(10 * time.Second)
	for {
		missing := c.Missing()
		if len(missing) == 1 && missing[0] == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("Missing() = %v, want [1]", missing)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := c.Submit(spec); !errors.Is(err, ErrClusterDegraded) {
		t.Fatalf("degraded submit: got %v, want ErrClusterDegraded", err)
	}
	var de *DegradedError
	if _, err := c.Submit(spec); !errors.As(err, &de) || len(de.Missing) != 1 || de.Missing[0] != 1 {
		t.Fatalf("degraded submit carrier: %v", err)
	}

	// Heal: a fresh process re-joins the dead slot (join-retry outlasts any
	// residual eviction lag), the epoch bumps, and the cluster goes whole.
	w1b, log1b := spawnFailoverWorker(t, c.Addr(), 1)
	t.Cleanup(func() {
		w1b.Process.Kill()
		w1b.Wait()
		if t.Failed() {
			t.Logf("worker 1 (rejoined) output:\n%s", log1b.String())
		}
	})
	if err := c.WaitReady(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := c.Epoch(); got <= epochFormed {
		t.Errorf("epoch after re-join = %d, want > %d", got, epochFormed)
	}

	// Retried queries on the healed cluster must be hash-identical.
	qs, err := c.Submit(spec)
	if err != nil {
		t.Fatalf("post-heal submit: %v", err)
	}
	qb, err := c.Submit(engine.Spec{Algo: engine.AlgoBFS, Source: source})
	if err != nil {
		t.Fatalf("post-heal submit: %v", err)
	}
	resS, err := qs.Wait()
	if err != nil {
		t.Fatalf("post-heal sssp: %v", err)
	}
	if got := HashResult(resS); got != wantSSSP {
		t.Errorf("post-heal sssp hash: cluster %016x, in-process %016x", got, wantSSSP)
	}
	resB, err := qb.Wait()
	if err != nil {
		t.Fatalf("post-heal bfs: %v", err)
	}
	if got := HashResult(resB); got != wantBFS {
		t.Errorf("post-heal bfs hash: cluster %016x, in-process %016x", got, wantBFS)
	}

	// Clean shutdown: both live workers exit 0 on the shutdown broadcast.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	for _, w := range []*exec.Cmd{w0, w1b} {
		done := make(chan error, 1)
		go func() { done <- w.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("worker exit: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("worker did not exit after shutdown")
		}
	}
}

// TestHeartbeatDetectsSilentWorker: a worker whose process wedges without
// dropping its control connection (no FIN, no RST, just silence) must still
// be evicted by the heartbeat detector — connection-error detection alone
// cannot see this failure mode.
func TestHeartbeatDetectsSilentWorker(t *testing.T) {
	check.NoLeaks(t)
	cfg := ClusterConfig{
		Workers: 1, Ranks: 1, Scale: 5, Seed: 1,
		Heartbeat: 50 * time.Millisecond,
		Liveness:  300 * time.Millisecond,
	}
	c, err := NewCoordinator("127.0.0.1:0", cfg, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Hand-rolled worker: join, take the layout, confirm the epoch — then go
	// silent while keeping the socket open. One decoder for the whole
	// conversation: json.Decoder buffers past the current value, so a second
	// decoder on the same conn would miss messages the first one swallowed.
	conn, err := net.DialTimeout("tcp", c.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	dec := json.NewDecoder(conn)
	err = json.NewEncoder(conn).Encode(&msg{
		Type: "join", Version: Version, ConfigSum: cfg.Checksum(),
		Slot: 0, MeshAddr: "127.0.0.1:1",
	})
	if err != nil {
		t.Fatal(err)
	}
	var reply msg
	if err := dec.Decode(&reply); err != nil {
		t.Fatalf("join verdict: %v", err)
	}
	if reply.Type != "joined" {
		t.Fatalf("join refused: %+v", reply)
	}
	var layout msg
	for {
		if err := dec.Decode(&layout); err != nil {
			t.Fatalf("awaiting layout: %v", err)
		}
		if layout.Type == "cluster" {
			break
		}
	}
	if err := json.NewEncoder(conn).Encode(&msg{Type: "ready", Slot: 0, Epoch: layout.Epoch}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Silence. The worker sends nothing; the connection stays open. The
	// detector must evict within the liveness window (plus scheduling slack).
	deadline := time.Now().Add(10 * time.Second)
	for {
		missing := c.Missing()
		if len(missing) == 1 && missing[0] == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("silent worker never evicted: Missing() = %v", missing)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if c.Whole() {
		t.Error("cluster still whole after eviction")
	}
	if _, err := c.Submit(engine.Spec{Algo: engine.AlgoBFS, Source: 0}); !errors.Is(err, ErrClusterDegraded) {
		t.Errorf("submit on evicted cluster: got %v, want ErrClusterDegraded", err)
	}
}
