// Package extmem stores a CSR target array in (simulated or real) external
// memory behind the user-space page cache, implementing the distributed
// *external* memory configuration of §VII-C: vertex state stays in DRAM
// (semi-external model) while the edge set — the bulk of the data — lives on
// node-local NVRAM.
package extmem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"time"

	"havoqgt/internal/csr"
	"havoqgt/internal/graph"
	"havoqgt/internal/pagecache"
)

// VertexBytes is the serialized size of one target vertex in the on-device
// layout; pagers use it to map target-index spans onto device byte ranges.
const VertexBytes = 8

const vertexBytes = VertexBytes

// Store is a csr.TargetStore whose targets are read through a page cache.
type Store struct {
	cache *pagecache.Cache
	n     uint64
	buf   []graph.Vertex
	raw   []byte
}

var _ csr.TargetStore = (*Store)(nil)

// NewStore wraps a page cache holding n serialized targets.
func NewStore(cache *pagecache.Cache, n uint64) *Store {
	return &Store{cache: cache, n: n}
}

// Read returns targets[lo:hi] decoded from the cache. The returned slice is
// reused by the next Read.
func (s *Store) Read(lo, hi uint64) []graph.Vertex {
	if hi < lo || hi > s.n {
		panic(fmt.Sprintf("extmem: bad target range [%d,%d) of %d", lo, hi, s.n))
	}
	n := int(hi - lo)
	if cap(s.buf) < n {
		s.buf = make([]graph.Vertex, n)
		s.raw = make([]byte, n*vertexBytes)
	}
	s.buf = s.buf[:n]
	s.raw = s.raw[:n*vertexBytes]
	// A full read is required: the range check above guarantees the request
	// lies inside the device, so io.EOF with a complete buffer (legal under
	// the io.ReaderAt contract) is the only acceptable non-nil error.
	// Device failure here is fail-stop by design: transient faults are
	// expected to be absorbed below the cache (wrap the device in
	// pagecache.RetryDevice); an error surviving that is a broken device,
	// and a silently wrong adjacency list would be worse than a crash.
	if nr, err := s.cache.ReadAt(s.raw, int64(lo)*vertexBytes); err != nil &&
		!(errors.Is(err, io.EOF) && nr == len(s.raw)) {
		panic(fmt.Sprintf("extmem: device read failed after %d bytes: %v", nr, err))
	}
	for i := 0; i < n; i++ {
		s.buf[i] = graph.Vertex(binary.LittleEndian.Uint64(s.raw[i*vertexBytes:]))
	}
	return s.buf
}

// Len returns the number of stored targets.
func (s *Store) Len() uint64 { return s.n }

// View returns a Store sharing this store's page cache (and device) but
// owning its own read buffers, so multiple threads can read concurrently.
// Close the parent store once; views must not be closed.
func (s *Store) View() *Store { return NewStore(s.cache, s.n) }

// Close closes the cache and device.
func (s *Store) Close() error { return s.cache.Close() }

// Cache exposes the page cache for statistics.
func (s *Store) Cache() *pagecache.Cache { return s.cache }

// SerializeTargets encodes a target array into the on-device byte layout.
func SerializeTargets(targets []graph.Vertex) []byte {
	raw := make([]byte, len(targets)*vertexBytes)
	for i, v := range targets {
		binary.LittleEndian.PutUint64(raw[i*vertexBytes:], uint64(v))
	}
	return raw
}

// NVRAMConfig describes a simulated node-local NVRAM part.
type NVRAMConfig struct {
	Latency    time.Duration // per-read service latency
	QueueDepth int           // concurrent reads the device sustains
	PageSize   int           // cache page size in bytes
	CacheBytes int           // DRAM budget for cached pages
}

// DefaultNVRAM approximates an enterprise NAND-Flash card (Fusion-io class):
// tens of microseconds of latency hidden behind a deep queue.
func DefaultNVRAM() NVRAMConfig {
	return NVRAMConfig{
		Latency:    25 * time.Microsecond,
		QueueDepth: 64,
		PageSize:   4096,
		CacheBytes: 1 << 22, // 4 MiB per rank unless overridden
	}
}

// CommoditySSD approximates a SATA SSD (Trestles class): higher latency,
// shallower queue.
func CommoditySSD() NVRAMConfig {
	return NVRAMConfig{
		Latency:    90 * time.Microsecond,
		QueueDepth: 16,
		PageSize:   4096,
		CacheBytes: 1 << 22,
	}
}

// NewSimStore places serialized targets on a simulated NVRAM device behind a
// page cache sized to cfg.CacheBytes.
func NewSimStore(targets []graph.Vertex, cfg NVRAMConfig) (*Store, error) {
	dev := pagecache.NewSimDevice(&pagecache.MemDevice{Data: SerializeTargets(targets)}, cfg.Latency, cfg.QueueDepth)
	frames := max(1, cfg.CacheBytes/cfg.PageSize)
	cache, err := pagecache.New(dev, cfg.PageSize, frames)
	if err != nil {
		return nil, err
	}
	return NewStore(cache, uint64(len(targets))), nil
}

// Targets-file footer: [count u64][crc64(payload) u64][magic u64], appended
// after the serialized payload. A torn write — power failure truncating the
// file anywhere — removes or garbles the footer, so open-time validation
// (size arithmetic + magic + count) catches it without scanning the payload;
// VerifyTargetsFile additionally checks the payload CRC.
const (
	footerBytes  = 24
	targetsMagic = 0x48564f5154475431 // "HVOQTGT1"
)

var targetsCRC = crc64.MakeTable(crc64.ECMA)

// ErrCorruptTargets reports a targets file that fails validation — most
// likely a torn write truncated it. Callers should treat the file as
// unusable and rebuild it; there is no partial-recovery path.
var ErrCorruptTargets = errors.New("extmem: targets file corrupt or torn")

// WriteTargetsTo streams the serialized targets plus the integrity footer to
// w. Factored out of WriteTargetsFile so fault harnesses can interpose a
// torn writer on the byte stream.
func WriteTargetsTo(w io.Writer, targets []graph.Vertex) error {
	raw := SerializeTargets(targets)
	if _, err := w.Write(raw); err != nil {
		return err
	}
	var foot [footerBytes]byte
	binary.LittleEndian.PutUint64(foot[0:], uint64(len(targets)))
	binary.LittleEndian.PutUint64(foot[8:], crc64.Checksum(raw, targetsCRC))
	binary.LittleEndian.PutUint64(foot[16:], targetsMagic)
	_, err := w.Write(foot[:])
	return err
}

// WriteTargetsFile serializes targets to path (the real-file configuration),
// with the integrity footer that OpenFileStore validates.
func WriteTargetsFile(path string, targets []graph.Vertex) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTargetsTo(f, targets); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readFooter validates the O(1) footer invariants of an open device and
// returns the target count.
func readFooter(dev pagecache.BlockDevice) (uint64, uint64, error) {
	size := dev.Size()
	if size < footerBytes || (size-footerBytes)%vertexBytes != 0 {
		return 0, 0, fmt.Errorf("%w: size %d is not payload + footer", ErrCorruptTargets, size)
	}
	var foot [footerBytes]byte
	if n, err := dev.ReadAt(foot[:], size-footerBytes); err != nil || n != footerBytes {
		return 0, 0, fmt.Errorf("%w: footer unreadable (%d bytes, %v)", ErrCorruptTargets, n, err)
	}
	if binary.LittleEndian.Uint64(foot[16:]) != targetsMagic {
		return 0, 0, fmt.Errorf("%w: bad magic (torn write?)", ErrCorruptTargets)
	}
	count := binary.LittleEndian.Uint64(foot[0:])
	if count*vertexBytes != uint64(size)-footerBytes {
		return 0, 0, fmt.Errorf("%w: footer count %d does not match payload size %d",
			ErrCorruptTargets, count, size-footerBytes)
	}
	return count, binary.LittleEndian.Uint64(foot[8:]), nil
}

// VerifyTargetsFile deep-checks a targets file: footer invariants plus the
// full payload CRC (O(file size); OpenFileStore performs only the O(1)
// checks).
func VerifyTargetsFile(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(raw) < footerBytes || (len(raw)-footerBytes)%vertexBytes != 0 {
		return fmt.Errorf("%w: size %d is not payload + footer", ErrCorruptTargets, len(raw))
	}
	payload, foot := raw[:len(raw)-footerBytes], raw[len(raw)-footerBytes:]
	if binary.LittleEndian.Uint64(foot[16:]) != targetsMagic {
		return fmt.Errorf("%w: bad magic (torn write?)", ErrCorruptTargets)
	}
	if c := binary.LittleEndian.Uint64(foot[0:]); c*vertexBytes != uint64(len(payload)) {
		return fmt.Errorf("%w: footer count %d does not match payload size %d",
			ErrCorruptTargets, c, len(payload))
	}
	if crc64.Checksum(payload, targetsCRC) != binary.LittleEndian.Uint64(foot[8:]) {
		return fmt.Errorf("%w: payload checksum mismatch", ErrCorruptTargets)
	}
	return nil
}

// OpenFileStore opens a targets file through a page cache with the given
// page size and frame count, validating the integrity footer (returns an
// error wrapping ErrCorruptTargets on a torn or truncated file).
func OpenFileStore(path string, pageSize, frames int) (*Store, error) {
	dev, err := pagecache.OpenFile(path)
	if err != nil {
		return nil, err
	}
	count, _, err := readFooter(dev)
	if err != nil {
		dev.Close()
		return nil, err
	}
	cache, err := pagecache.New(dev, pageSize, frames)
	if err != nil {
		dev.Close()
		return nil, err
	}
	return NewStore(cache, count), nil
}

// ExternalizeCSR moves a matrix's in-memory targets onto simulated NVRAM,
// returning the store so callers can read cache statistics.
func ExternalizeCSR(m *csr.Matrix, cfg NVRAMConfig) (*Store, error) {
	mem, ok := m.Targets().(csr.MemTargets)
	if !ok {
		return nil, fmt.Errorf("extmem: matrix targets already external")
	}
	store, err := NewSimStore(mem, cfg)
	if err != nil {
		return nil, err
	}
	if err := m.ReplaceTargets(store); err != nil {
		store.Close()
		return nil, err
	}
	return store, nil
}
