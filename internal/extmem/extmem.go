// Package extmem stores a CSR target array in (simulated or real) external
// memory behind the user-space page cache, implementing the distributed
// *external* memory configuration of §VII-C: vertex state stays in DRAM
// (semi-external model) while the edge set — the bulk of the data — lives on
// node-local NVRAM.
package extmem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"havoqgt/internal/csr"
	"havoqgt/internal/graph"
	"havoqgt/internal/pagecache"
)

const vertexBytes = 8

// Store is a csr.TargetStore whose targets are read through a page cache.
type Store struct {
	cache *pagecache.Cache
	n     uint64
	buf   []graph.Vertex
	raw   []byte
}

var _ csr.TargetStore = (*Store)(nil)

// NewStore wraps a page cache holding n serialized targets.
func NewStore(cache *pagecache.Cache, n uint64) *Store {
	return &Store{cache: cache, n: n}
}

// Read returns targets[lo:hi] decoded from the cache. The returned slice is
// reused by the next Read.
func (s *Store) Read(lo, hi uint64) []graph.Vertex {
	if hi < lo || hi > s.n {
		panic(fmt.Sprintf("extmem: bad target range [%d,%d) of %d", lo, hi, s.n))
	}
	n := int(hi - lo)
	if cap(s.buf) < n {
		s.buf = make([]graph.Vertex, n)
		s.raw = make([]byte, n*vertexBytes)
	}
	s.buf = s.buf[:n]
	s.raw = s.raw[:n*vertexBytes]
	// A full read is required: the range check above guarantees the request
	// lies inside the device, so io.EOF with a complete buffer (legal under
	// the io.ReaderAt contract) is the only acceptable non-nil error.
	if nr, err := s.cache.ReadAt(s.raw, int64(lo)*vertexBytes); err != nil &&
		!(errors.Is(err, io.EOF) && nr == len(s.raw)) {
		panic(fmt.Sprintf("extmem: device read failed after %d bytes: %v", nr, err))
	}
	for i := 0; i < n; i++ {
		s.buf[i] = graph.Vertex(binary.LittleEndian.Uint64(s.raw[i*vertexBytes:]))
	}
	return s.buf
}

// Len returns the number of stored targets.
func (s *Store) Len() uint64 { return s.n }

// View returns a Store sharing this store's page cache (and device) but
// owning its own read buffers, so multiple threads can read concurrently.
// Close the parent store once; views must not be closed.
func (s *Store) View() *Store { return NewStore(s.cache, s.n) }

// Close closes the cache and device.
func (s *Store) Close() error { return s.cache.Close() }

// Cache exposes the page cache for statistics.
func (s *Store) Cache() *pagecache.Cache { return s.cache }

// SerializeTargets encodes a target array into the on-device byte layout.
func SerializeTargets(targets []graph.Vertex) []byte {
	raw := make([]byte, len(targets)*vertexBytes)
	for i, v := range targets {
		binary.LittleEndian.PutUint64(raw[i*vertexBytes:], uint64(v))
	}
	return raw
}

// NVRAMConfig describes a simulated node-local NVRAM part.
type NVRAMConfig struct {
	Latency    time.Duration // per-read service latency
	QueueDepth int           // concurrent reads the device sustains
	PageSize   int           // cache page size in bytes
	CacheBytes int           // DRAM budget for cached pages
}

// DefaultNVRAM approximates an enterprise NAND-Flash card (Fusion-io class):
// tens of microseconds of latency hidden behind a deep queue.
func DefaultNVRAM() NVRAMConfig {
	return NVRAMConfig{
		Latency:    25 * time.Microsecond,
		QueueDepth: 64,
		PageSize:   4096,
		CacheBytes: 1 << 22, // 4 MiB per rank unless overridden
	}
}

// CommoditySSD approximates a SATA SSD (Trestles class): higher latency,
// shallower queue.
func CommoditySSD() NVRAMConfig {
	return NVRAMConfig{
		Latency:    90 * time.Microsecond,
		QueueDepth: 16,
		PageSize:   4096,
		CacheBytes: 1 << 22,
	}
}

// NewSimStore places serialized targets on a simulated NVRAM device behind a
// page cache sized to cfg.CacheBytes.
func NewSimStore(targets []graph.Vertex, cfg NVRAMConfig) (*Store, error) {
	dev := pagecache.NewSimDevice(&pagecache.MemDevice{Data: SerializeTargets(targets)}, cfg.Latency, cfg.QueueDepth)
	frames := max(1, cfg.CacheBytes/cfg.PageSize)
	cache, err := pagecache.New(dev, cfg.PageSize, frames)
	if err != nil {
		return nil, err
	}
	return NewStore(cache, uint64(len(targets))), nil
}

// WriteTargetsFile serializes targets to path (the real-file configuration).
func WriteTargetsFile(path string, targets []graph.Vertex) error {
	return os.WriteFile(path, SerializeTargets(targets), 0o644)
}

// OpenFileStore opens a targets file through a page cache with the given
// page size and frame count.
func OpenFileStore(path string, pageSize, frames int) (*Store, error) {
	dev, err := pagecache.OpenFile(path)
	if err != nil {
		return nil, err
	}
	cache, err := pagecache.New(dev, pageSize, frames)
	if err != nil {
		dev.Close()
		return nil, err
	}
	return NewStore(cache, uint64(dev.Size()/vertexBytes)), nil
}

// ExternalizeCSR moves a matrix's in-memory targets onto simulated NVRAM,
// returning the store so callers can read cache statistics.
func ExternalizeCSR(m *csr.Matrix, cfg NVRAMConfig) (*Store, error) {
	mem, ok := m.Targets().(csr.MemTargets)
	if !ok {
		return nil, fmt.Errorf("extmem: matrix targets already external")
	}
	store, err := NewSimStore(mem, cfg)
	if err != nil {
		return nil, err
	}
	if err := m.ReplaceTargets(store); err != nil {
		store.Close()
		return nil, err
	}
	return store, nil
}
