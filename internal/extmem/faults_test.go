package extmem

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"havoqgt/internal/faults"
	"havoqgt/internal/graph"
	"havoqgt/internal/obs"
	"havoqgt/internal/pagecache"
)

func tornTargets(n int) []graph.Vertex {
	out := make([]graph.Vertex, n)
	for i := range out {
		out[i] = graph.Vertex(i * 31)
	}
	return out
}

func TestTornWriteDetectedAtOpen(t *testing.T) {
	targets := tornTargets(500)
	full := int64(500*vertexBytes + footerBytes)
	// Tear at several points: mid-payload, at an 8-byte boundary, inside the
	// footer, and one byte short of complete. All must be caught at open.
	for _, cut := range []int64{100, 128, full - footerBytes + 5, full - 1} {
		path := filepath.Join(t.TempDir(), "targets.bin")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		tw := faults.NewTornWriter(f, cut, obs.NewRegistry())
		if err := WriteTargetsTo(tw, targets); err != nil {
			t.Fatal(err)
		}
		f.Close()
		if !tw.Torn() {
			t.Fatalf("cut %d: TornWriter did not tear", cut)
		}
		if _, err := OpenFileStore(path, 256, 4); !errors.Is(err, ErrCorruptTargets) {
			t.Fatalf("cut %d: OpenFileStore = %v, want ErrCorruptTargets", cut, err)
		}
		if err := VerifyTargetsFile(path); !errors.Is(err, ErrCorruptTargets) {
			t.Fatalf("cut %d: VerifyTargetsFile = %v, want ErrCorruptTargets", cut, err)
		}
	}
}

func TestIntactFileVerifies(t *testing.T) {
	targets := tornTargets(300)
	path := filepath.Join(t.TempDir(), "targets.bin")
	if err := WriteTargetsFile(path, targets); err != nil {
		t.Fatal(err)
	}
	if err := VerifyTargetsFile(path); err != nil {
		t.Fatalf("intact file failed verification: %v", err)
	}
	s, err := OpenFileStore(path, 256, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 300 {
		t.Fatalf("Len = %d, want 300", s.Len())
	}
	got := s.Read(10, 20)
	for i, v := range got {
		if v != targets[10+i] {
			t.Fatalf("Read[%d] = %d, want %d", i, v, targets[10+i])
		}
	}
}

func TestPayloadBitRotCaughtByVerify(t *testing.T) {
	targets := tornTargets(300)
	path := filepath.Join(t.TempDir(), "targets.bin")
	if err := WriteTargetsFile(path, targets); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[57] ^= 0x10 // silent single-bit payload corruption
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifyTargetsFile(path); !errors.Is(err, ErrCorruptTargets) {
		t.Fatalf("VerifyTargetsFile missed payload bit rot: %v", err)
	}
}

func TestStoreOverFaultyDeviceWithRetry(t *testing.T) {
	// End-to-end device recovery: injected transient read errors and torn
	// reads below the cache, absorbed by RetryDevice, so Store.Read (which
	// is fail-stop) never sees them.
	targets := tornTargets(4096)
	reg := obs.NewRegistry()
	faulty := faults.NewFaultyDevice(
		&pagecache.MemDevice{Data: SerializeTargets(targets)},
		faults.Plan{Seed: 99, Device: faults.DeviceRule{ReadError: 0.3, TornRead: 0.2}},
		reg,
	)
	cache, err := pagecache.New(pagecache.NewRetryDevice(faulty, 0, 0), 512, 8)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(cache, uint64(len(targets)))
	defer s.Close()
	for lo := uint64(0); lo+64 <= s.Len(); lo += 64 {
		got := s.Read(lo, lo+64)
		for i, v := range got {
			if v != targets[lo+uint64(i)] {
				t.Fatalf("Read[%d+%d] = %d, want %d", lo, i, v, targets[lo+uint64(i)])
			}
		}
	}
	errs := reg.Counter(obs.FaultInjected("device_read_error")).Value()
	torn := reg.Counter(obs.FaultInjected("device_torn_read")).Value()
	if errs == 0 && torn == 0 {
		t.Fatal("no device faults injected; test exercised nothing")
	}
}
