package extmem

import (
	"path/filepath"
	"testing"
	"time"

	"havoqgt/internal/csr"
	"havoqgt/internal/graph"
	"havoqgt/internal/pagecache"
)

func testTargets(n int) []graph.Vertex {
	ts := make([]graph.Vertex, n)
	for i := range ts {
		ts[i] = graph.Vertex(i * 7)
	}
	return ts
}

func simStore(t *testing.T, targets []graph.Vertex) *Store {
	t.Helper()
	s, err := NewSimStore(targets, NVRAMConfig{
		Latency: 0, QueueDepth: 4, PageSize: 64, CacheBytes: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreReadRanges(t *testing.T) {
	targets := testTargets(1000)
	s := simStore(t, targets)
	defer s.Close()
	for _, r := range [][2]uint64{{0, 10}, {5, 5}, {990, 1000}, {0, 1000}, {123, 456}} {
		got := s.Read(r[0], r[1])
		if uint64(len(got)) != r[1]-r[0] {
			t.Fatalf("Read(%d,%d) returned %d targets", r[0], r[1], len(got))
		}
		for i, v := range got {
			if v != targets[r[0]+uint64(i)] {
				t.Fatalf("Read(%d,%d)[%d] = %d, want %d", r[0], r[1], i, v, targets[r[0]+uint64(i)])
			}
		}
	}
}

func TestStoreBadRangePanics(t *testing.T) {
	s := simStore(t, testTargets(10))
	defer s.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("bad range did not panic")
		}
	}()
	s.Read(5, 11)
}

func TestSerializeRoundTripThroughCSR(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 3}, {Src: 0, Dst: 9}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}}
	m, err := csr.FromSortedEdges(edges, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	store, err := ExternalizeCSR(m, NVRAMConfig{Latency: 0, QueueDepth: 2, PageSize: 16, CacheBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	row0 := m.Row(0)
	if len(row0) != 2 || row0[0] != 3 || row0[1] != 9 {
		t.Fatalf("externalized row 0 = %v", row0)
	}
	if !m.HasTarget(1, 2) || m.HasTarget(1, 3) {
		t.Fatal("externalized HasTarget wrong")
	}
	if _, err := ExternalizeCSR(m, DefaultNVRAM()); err == nil {
		t.Fatal("double externalize accepted")
	}
}

func TestCacheStatsFlowThrough(t *testing.T) {
	s := simStore(t, testTargets(1024))
	defer s.Close()
	s.Read(0, 8)
	s.Read(0, 8)
	st := s.Cache().Stats()
	if st.Misses == 0 {
		t.Fatal("no misses recorded on cold read")
	}
	if st.Hits == 0 {
		t.Fatal("no hits recorded on warm read")
	}
}

func TestFileStore(t *testing.T) {
	targets := testTargets(500)
	path := filepath.Join(t.TempDir(), "targets.bin")
	if err := WriteTargetsFile(path, targets); err != nil {
		t.Fatal(err)
	}
	s, err := OpenFileStore(path, 256, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 500 {
		t.Fatalf("file store len = %d", s.Len())
	}
	got := s.Read(100, 120)
	for i, v := range got {
		if v != targets[100+i] {
			t.Fatalf("file store Read[%d] = %d", i, v)
		}
	}
}

func TestSimLatencyObservable(t *testing.T) {
	s, err := NewSimStore(testTargets(4096), NVRAMConfig{
		Latency: 500 * time.Microsecond, QueueDepth: 1, PageSize: 64, CacheBytes: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	start := time.Now()
	s.Read(0, 8) // one cold page
	if time.Since(start) < 400*time.Microsecond {
		t.Fatal("simulated latency not observed")
	}
	start = time.Now()
	s.Read(0, 8) // warm
	if time.Since(start) > 300*time.Microsecond {
		t.Fatal("warm read paid device latency")
	}
}

func TestDeviceConfigs(t *testing.T) {
	if d := DefaultNVRAM(); d.Latency >= CommoditySSD().Latency {
		t.Fatal("enterprise NVRAM should be faster than commodity SSD")
	}
	if d := CommoditySSD(); d.QueueDepth >= DefaultNVRAM().QueueDepth {
		t.Fatal("commodity SSD should have shallower queue")
	}
}

func TestMemTargetsAgreeWithStore(t *testing.T) {
	// Property: an externalized store always returns the same data as the
	// in-memory targets it was built from.
	targets := testTargets(333)
	s := simStore(t, targets)
	defer s.Close()
	mem := csr.MemTargets(targets)
	for lo := uint64(0); lo < 333; lo += 37 {
		hi := min(lo+13, 333)
		a, b := mem.Read(lo, hi), s.Read(lo, hi)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("store and memory disagree at [%d,%d)[%d]", lo, hi, i)
			}
		}
	}
}

var _ pagecache.BlockDevice = (*pagecache.MemDevice)(nil)
