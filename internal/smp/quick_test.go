package smp

import (
	"testing"
	"testing/quick"

	"havoqgt/internal/csr"
	"havoqgt/internal/graph"
	"havoqgt/internal/ref"
	"havoqgt/internal/xrand"
)

// TestQuickBFSThreadCountInvariance: BFS levels are independent of the
// thread count and of the (arbitrary) visitor interleaving, for any random
// graph.
func TestQuickBFSThreadCountInvariance(t *testing.T) {
	f := func(seed uint64, sizeSel, threadSel uint8) bool {
		n := uint64(sizeSel)%96 + 4
		threads := int(threadSel)%6 + 1
		rng := xrand.New(seed)
		var pairs []graph.Edge
		for i := 0; i < int(n)*3; i++ {
			pairs = append(pairs, graph.Edge{
				Src: graph.Vertex(rng.Uint64n(n)), Dst: graph.Vertex(rng.Uint64n(n)),
			})
		}
		edges := graph.Undirect(pairs)
		sorted := append([]graph.Edge(nil), edges...)
		graph.SortEdges(sorted)
		m, err := csr.FromSortedEdges(sorted, 0, int(n))
		if err != nil {
			return false
		}
		src := graph.Vertex(rng.Uint64n(n))
		res := BFS(m, n, src, threads)
		want, _ := ref.BFS(ref.BuildAdj(edges, n), src)
		for v := uint64(0); v < n; v++ {
			if res.Level[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
