// Package smp implements the single-node multithreaded asynchronous visitor
// framework of the authors' earlier work (§IV-A, reference [4]): BFS, SSSP,
// and connected components over a shared CSR using per-thread prioritized
// visitor queues. This is how the paper's Table II "Leviathan" entry
// traverses a trillion-edge graph on one 40-core host backed by Fusion-io
// flash.
//
// Threads own disjoint vertex sets (vertex v belongs to thread v mod T),
// giving visitors exclusive access to vertex state without atomics on the
// data itself. Cross-thread visitors travel through per-thread inboxes;
// termination uses a shared pending-task counter.
//
// The CSR's target store may be a page-cache-backed NVRAM store (one view
// per thread, see csr.Matrix.WithTargets); many threads faulting
// concurrently is exactly the high-concurrency I/O pattern the paper
// identifies as necessary to extract performance from NAND Flash.
package smp

import (
	"runtime"

	"havoqgt/internal/csr"
	"havoqgt/internal/graph"
)

// Unreached is the level of vertices not reached by a traversal.
const Unreached = ^uint32(0)

// UnreachedDist is the distance of vertices not reached by SSSP.
const UnreachedDist = ^uint64(0)

// views validates and materializes per-thread matrix views for an in-memory
// matrix (shared safely) and checks coverage.
func memViews(m *csr.Matrix, n uint64, threads int) []*csr.Matrix {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if _, ok := m.Targets().(csr.MemTargets); !ok {
		panic("smp: in-memory entry point requires MemTargets; use the WithViews variant for external stores")
	}
	if uint64(m.NumRows()) != n {
		panic("smp: CSR must cover every vertex")
	}
	vs := make([]*csr.Matrix, threads)
	for i := range vs {
		vs[i] = m // MemTargets reads are pure slicing: safe to share
	}
	return vs
}

func checkViews(vs []*csr.Matrix, n uint64) {
	if len(vs) == 0 {
		panic("smp: need at least one view")
	}
	if uint64(vs[0].NumRows()) != n {
		panic("smp: CSR must cover every vertex")
	}
}

// --- BFS ---

// bfsVisitor carries a candidate level.
type bfsVisitor struct {
	v      graph.Vertex
	length uint32
	parent graph.Vertex
}

// BFSResult holds the traversal output and counters.
type BFSResult struct {
	Level  []uint32
	Parent []graph.Vertex

	VisitorsExecuted uint64
}

type bfsAlgo struct {
	views []*csr.Matrix
	res   *BFSResult
}

func (a *bfsAlgo) Owner(v bfsVisitor, threads int) int { return int(v.v) % threads }

func (a *bfsAlgo) PreVisit(t int, v bfsVisitor) bool {
	if v.length < a.res.Level[v.v] {
		a.res.Level[v.v] = v.length
		a.res.Parent[v.v] = v.parent
		return true
	}
	return false
}

func (a *bfsAlgo) Visit(t int, v bfsVisitor, emit func(bfsVisitor)) {
	if v.length != a.res.Level[v.v] {
		return
	}
	next := v.length + 1
	for _, tgt := range a.views[t].Row(int(v.v)) {
		emit(bfsVisitor{v: tgt, length: next, parent: v.v})
	}
}

func (a *bfsAlgo) Priority(v bfsVisitor) int { return int(v.length) }

// BFS runs a multithreaded asynchronous BFS from source over an in-memory
// CSR covering all n vertices (row i = vertex i, both directions stored).
// threads <= 0 selects GOMAXPROCS.
func BFS(m *csr.Matrix, n uint64, source graph.Vertex, threads int) *BFSResult {
	return BFSWithViews(memViews(m, n, threads), n, source)
}

// BFSWithViews runs the BFS with one matrix view per thread (external
// stores: extmem.Store.View over one shared page cache).
func BFSWithViews(views []*csr.Matrix, n uint64, source graph.Vertex) *BFSResult {
	checkViews(views, n)
	if uint64(source) >= n {
		panic("smp: source out of range")
	}
	res := &BFSResult{Level: make([]uint32, n), Parent: make([]graph.Vertex, n)}
	for i := range res.Level {
		res.Level[i] = Unreached
		res.Parent[i] = graph.Nil
	}
	algo := &bfsAlgo{views: views, res: res}
	res.VisitorsExecuted = run(len(views), []bfsVisitor{{v: source, length: 0, parent: source}}, algo)
	return res
}

// --- SSSP ---

// ssspVisitor carries a tentative distance.
type ssspVisitor struct {
	v      graph.Vertex
	dist   uint64
	parent graph.Vertex
}

// SSSPResult holds distances and parents.
type SSSPResult struct {
	Dist   []uint64
	Parent []graph.Vertex

	VisitorsExecuted uint64
}

type ssspAlgo struct {
	views  []*csr.Matrix
	res    *SSSPResult
	weight func(u, v graph.Vertex) uint64
}

func (a *ssspAlgo) Owner(v ssspVisitor, threads int) int { return int(v.v) % threads }

func (a *ssspAlgo) PreVisit(t int, v ssspVisitor) bool {
	if v.dist < a.res.Dist[v.v] {
		a.res.Dist[v.v] = v.dist
		a.res.Parent[v.v] = v.parent
		return true
	}
	return false
}

func (a *ssspAlgo) Visit(t int, v ssspVisitor, emit func(ssspVisitor)) {
	if v.dist != a.res.Dist[v.v] {
		return
	}
	for _, tgt := range a.views[t].Row(int(v.v)) {
		emit(ssspVisitor{v: tgt, dist: v.dist + a.weight(v.v, tgt), parent: v.v})
	}
}

// Priority buckets distances coarsely (delta-stepping style) so the local
// queues stay shallow without unbounded bucket arrays.
func (a *ssspAlgo) Priority(v ssspVisitor) int { return int(v.dist >> 6) }

// SSSP runs multithreaded single-source shortest paths with the given
// symmetric weight function over an in-memory CSR.
func SSSP(m *csr.Matrix, n uint64, source graph.Vertex, threads int, weight func(u, v graph.Vertex) uint64) *SSSPResult {
	return SSSPWithViews(memViews(m, n, threads), n, source, weight)
}

// SSSPWithViews is SSSP with one matrix view per thread.
func SSSPWithViews(views []*csr.Matrix, n uint64, source graph.Vertex, weight func(u, v graph.Vertex) uint64) *SSSPResult {
	checkViews(views, n)
	if uint64(source) >= n {
		panic("smp: source out of range")
	}
	res := &SSSPResult{Dist: make([]uint64, n), Parent: make([]graph.Vertex, n)}
	for i := range res.Dist {
		res.Dist[i] = UnreachedDist
		res.Parent[i] = graph.Nil
	}
	algo := &ssspAlgo{views: views, res: res, weight: weight}
	res.VisitorsExecuted = run(len(views), []ssspVisitor{{v: source, dist: 0, parent: source}}, algo)
	return res
}

// --- Connected components ---

// ccVisitor carries a candidate component label.
type ccVisitor struct {
	v     graph.Vertex
	label graph.Vertex
}

// CCResult holds per-vertex component labels (smallest vertex id in the
// component).
type CCResult struct {
	Label []graph.Vertex

	VisitorsExecuted uint64
}

// NumComponents counts component representatives.
func (r *CCResult) NumComponents() uint64 {
	var n uint64
	for v, l := range r.Label {
		if l == graph.Vertex(v) {
			n++
		}
	}
	return n
}

type ccAlgo struct {
	views []*csr.Matrix
	res   *CCResult
}

func (a *ccAlgo) Owner(v ccVisitor, threads int) int { return int(v.v) % threads }

func (a *ccAlgo) PreVisit(t int, v ccVisitor) bool {
	if v.label < a.res.Label[v.v] {
		a.res.Label[v.v] = v.label
		return true
	}
	return false
}

func (a *ccAlgo) Visit(t int, v ccVisitor, emit func(ccVisitor)) {
	if v.label != a.res.Label[v.v] {
		return
	}
	for _, tgt := range a.views[t].Row(int(v.v)) {
		emit(ccVisitor{v: tgt, label: v.label})
	}
}

func (a *ccAlgo) Priority(v ccVisitor) int { return 0 }

// CC runs multithreaded connected components over an in-memory CSR.
func CC(m *csr.Matrix, n uint64, threads int) *CCResult {
	return CCWithViews(memViews(m, n, threads), n)
}

// CCWithViews is CC with one matrix view per thread.
func CCWithViews(views []*csr.Matrix, n uint64) *CCResult {
	checkViews(views, n)
	res := &CCResult{Label: make([]graph.Vertex, n)}
	seeds := make([]ccVisitor, n)
	for v := uint64(0); v < n; v++ {
		res.Label[v] = graph.Nil
		seeds[v] = ccVisitor{v: graph.Vertex(v), label: graph.Vertex(v)}
	}
	algo := &ccAlgo{views: views, res: res}
	res.VisitorsExecuted = run(len(views), seeds, algo)
	return res
}
