package smp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Algo is a multithreaded visitor algorithm: threads own disjoint vertex
// sets, PreVisit/Visit run on the owner thread with exclusive access to the
// vertex's state, and Priority orders each thread's local queue (bucketed:
// small non-negative ints, lower first).
type Algo[V any] interface {
	// Owner returns the thread (0..threads-1) owning the visitor's vertex.
	Owner(v V, threads int) int
	// PreVisit evaluates and updates the vertex state; true queues the
	// visitor for Visit. Runs on the owner thread.
	PreVisit(t int, v V) bool
	// Visit expands the visitor, emitting new visitors. Runs on the owner
	// thread; emit may be called any number of times.
	Visit(t int, v V, emit func(V))
	// Priority buckets the local queue (0 = highest priority).
	Priority(v V) int
}

// genInbox is a mutex-protected visitor queue.
type genInbox[V any] struct {
	mu sync.Mutex
	q  []V
	_  [40]byte // pad
}

func (ib *genInbox[V]) put(vs []V) {
	ib.mu.Lock()
	ib.q = append(ib.q, vs...)
	ib.mu.Unlock()
}

func (ib *genInbox[V]) drain(into []V) []V {
	ib.mu.Lock()
	if len(ib.q) > 0 {
		into = append(into, ib.q...)
		ib.q = ib.q[:0]
	}
	ib.mu.Unlock()
	return into
}

// run executes the multithreaded asynchronous traversal to quiescence,
// seeded with the given visitors, and returns the number of visitors
// executed. Termination: a shared pending counter incremented before each
// enqueue and decremented when the visitor is rejected or fully visited —
// zero proves no visitor is queued or running anywhere.
func run[V any](threads int, seeds []V, algo Algo[V]) uint64 {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	inboxes := make([]genInbox[V], threads)
	var pending atomic.Int64
	var executed atomic.Uint64
	for _, v := range seeds {
		pending.Add(1)
		inboxes[algo.Owner(v, threads)].put([]V{v})
	}
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			genWorker(t, threads, inboxes, &pending, &executed, algo)
		}(t)
	}
	wg.Wait()
	return executed.Load()
}

func genWorker[V any](t, threads int, inboxes []genInbox[V], pending *atomic.Int64, executed *atomic.Uint64, algo Algo[V]) {
	var buckets [][]V
	minBucket := 0
	outbox := make([][]V, threads)
	var drained []V

	enqueueLocal := func(v V) {
		p := algo.Priority(v)
		for len(buckets) <= p {
			buckets = append(buckets, nil)
		}
		buckets[p] = append(buckets[p], v)
		if p < minBucket {
			minBucket = p
		}
	}

	receive := func(v V) {
		if algo.PreVisit(t, v) {
			enqueueLocal(v)
		} else {
			pending.Add(-1)
		}
	}

	emit := func(v V) {
		owner := algo.Owner(v, threads)
		pending.Add(1)
		if owner == t {
			receive(v)
			return
		}
		outbox[owner] = append(outbox[owner], v)
		if len(outbox[owner]) >= 128 {
			inboxes[owner].put(outbox[owner])
			outbox[owner] = outbox[owner][:0]
		}
	}

	idleSpins := 0
	for {
		progress := false
		drained = inboxes[t].drain(drained[:0])
		for _, v := range drained {
			progress = true
			receive(v)
		}
		for batch := 0; batch < 256; batch++ {
			for minBucket < len(buckets) && len(buckets[minBucket]) == 0 {
				minBucket++
			}
			if minBucket >= len(buckets) {
				break
			}
			b := buckets[minBucket]
			v := b[len(b)-1]
			buckets[minBucket] = b[:len(b)-1]
			progress = true
			executed.Add(1)
			algo.Visit(t, v, emit)
			pending.Add(-1)
		}
		if progress {
			idleSpins = 0
			continue
		}
		for o := range outbox {
			if len(outbox[o]) > 0 {
				inboxes[o].put(outbox[o])
				outbox[o] = outbox[o][:0]
			}
		}
		if pending.Load() == 0 {
			return
		}
		idleSpins++
		if idleSpins > 32 {
			runtime.Gosched()
		}
	}
}
