package smp

import (
	"testing"

	"havoqgt/internal/csr"
	"havoqgt/internal/extmem"
	"havoqgt/internal/generators"
	"havoqgt/internal/graph"
	"havoqgt/internal/ref"
	"havoqgt/internal/xrand"
)

// buildCSR builds a full-graph CSR from an undirected edge list.
func buildCSR(t *testing.T, edges []graph.Edge, n uint64) *csr.Matrix {
	t.Helper()
	sorted := append([]graph.Edge(nil), edges...)
	graph.SortEdges(sorted)
	m, err := csr.FromSortedEdges(sorted, 0, int(n))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func checkLevels(t *testing.T, edges []graph.Edge, n uint64, source graph.Vertex, got []uint32) {
	t.Helper()
	want, _ := ref.BFS(ref.BuildAdj(edges, n), source)
	for v := uint64(0); v < n; v++ {
		if got[v] != want[v] {
			t.Fatalf("level(%d) = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestBFSMatchesReference(t *testing.T) {
	rng := xrand.New(7)
	var pairs []graph.Edge
	for i := 0; i < 800; i++ {
		pairs = append(pairs, graph.Edge{
			Src: graph.Vertex(rng.Uint64n(256)), Dst: graph.Vertex(rng.Uint64n(256)),
		})
	}
	edges := graph.Undirect(pairs)
	m := buildCSR(t, edges, 256)
	for _, threads := range []int{1, 2, 4, 8} {
		res := BFS(m, 256, 9, threads)
		checkLevels(t, edges, 256, 9, res.Level)
	}
}

func TestBFSOnRMAT(t *testing.T) {
	g := generators.NewGraph500(11, 5)
	edges := graph.Undirect(g.Generate())
	n := g.NumVertices()
	m := buildCSR(t, edges, n)
	res := BFS(m, n, 1, 4)
	checkLevels(t, edges, n, 1, res.Level)
	if res.VisitorsExecuted == 0 {
		t.Fatal("no visitors executed")
	}
}

func TestBFSParentsValid(t *testing.T) {
	g := generators.NewGraph500(9, 2)
	edges := graph.Undirect(g.Generate())
	n := g.NumVertices()
	adj := ref.BuildAdj(edges, n)
	m := buildCSR(t, edges, n)
	res := BFS(m, n, 0, 4)
	for v := uint64(0); v < n; v++ {
		switch {
		case res.Level[v] == Unreached:
			if res.Parent[v] != graph.Nil {
				t.Fatalf("unreached %d has parent", v)
			}
		case graph.Vertex(v) == 0:
			if res.Parent[v] != 0 {
				t.Fatalf("source parent = %d", res.Parent[v])
			}
		default:
			pv := res.Parent[v]
			if res.Level[pv] != res.Level[v]-1 || !adj.HasEdge(pv, graph.Vertex(v)) {
				t.Fatalf("bad parent %d for %d", pv, v)
			}
		}
	}
}

func TestBFSExternalMemoryViews(t *testing.T) {
	g := generators.NewGraph500(10, 3)
	edges := graph.Undirect(g.Generate())
	n := g.NumVertices()
	m := buildCSR(t, edges, n)
	store, err := extmem.ExternalizeCSR(m, extmem.NVRAMConfig{
		Latency: 0, QueueDepth: 16, PageSize: 512, CacheBytes: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	threads := 4
	views := make([]*csr.Matrix, threads)
	for i := range views {
		v, err := m.WithTargets(store.View())
		if err != nil {
			t.Fatal(err)
		}
		views[i] = v
	}
	res := BFSWithViews(views, n, 2)
	checkLevels(t, edges, n, 2, res.Level)
	if st := store.Cache().Stats(); st.Hits+st.Misses == 0 {
		t.Fatal("external BFS never touched the cache")
	}
}

func TestBFSDisconnected(t *testing.T) {
	edges := graph.Undirect([]graph.Edge{{Src: 0, Dst: 1}, {Src: 3, Dst: 4}})
	m := buildCSR(t, edges, 6)
	res := BFS(m, 6, 0, 3)
	if res.Level[3] != Unreached || res.Level[1] != 1 {
		t.Fatalf("levels = %v", res.Level)
	}
}

func TestBFSSingleVertexGraph(t *testing.T) {
	m := buildCSR(t, nil, 1)
	res := BFS(m, 1, 0, 2)
	if res.Level[0] != 0 {
		t.Fatal("source not at level 0")
	}
}

func TestBFSRejectsExternalWithoutViews(t *testing.T) {
	g := generators.NewGraph500(8, 1)
	edges := graph.Undirect(g.Generate())
	m := buildCSR(t, edges, g.NumVertices())
	if _, err := extmem.ExternalizeCSR(m, extmem.NVRAMConfig{Latency: 0, QueueDepth: 2, PageSize: 512, CacheBytes: 4096}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("shared external store accepted without views")
		}
	}()
	BFS(m, g.NumVertices(), 0, 2)
}

func TestSSSPMatchesDijkstra(t *testing.T) {
	rng := xrand.New(11)
	var pairs []graph.Edge
	for i := 0; i < 600; i++ {
		pairs = append(pairs, graph.Edge{
			Src: graph.Vertex(rng.Uint64n(128)), Dst: graph.Vertex(rng.Uint64n(128)),
		})
	}
	edges := graph.Undirect(pairs)
	m := buildCSR(t, edges, 128)
	w := func(u, v graph.Vertex) uint64 {
		if u > v {
			u, v = v, u
		}
		return uint64(u+v)%17 + 1
	}
	want, _ := ref.Dijkstra(ref.BuildAdj(edges, 128), 3, w)
	for _, threads := range []int{1, 3, 8} {
		res := SSSP(m, 128, 3, threads, w)
		for v := uint64(0); v < 128; v++ {
			if res.Dist[v] != want[v] {
				t.Fatalf("threads=%d dist(%d) = %d, want %d", threads, v, res.Dist[v], want[v])
			}
		}
	}
}

func TestCCMatchesReference(t *testing.T) {
	rng := xrand.New(13)
	var pairs []graph.Edge
	for i := 0; i < 80; i++ { // sparse: several components
		pairs = append(pairs, graph.Edge{
			Src: graph.Vertex(rng.Uint64n(128)), Dst: graph.Vertex(rng.Uint64n(128)),
		})
	}
	edges := graph.Undirect(pairs)
	m := buildCSR(t, edges, 128)
	wantLabels, wantCount := ref.Components(ref.BuildAdj(edges, 128))
	for _, threads := range []int{1, 4} {
		res := CC(m, 128, threads)
		if res.NumComponents() != wantCount {
			t.Fatalf("threads=%d components = %d, want %d", threads, res.NumComponents(), wantCount)
		}
		for v := range wantLabels {
			if res.Label[v] != wantLabels[v] {
				t.Fatalf("threads=%d label(%d) = %d, want %d", threads, v, res.Label[v], wantLabels[v])
			}
		}
	}
}

func TestCCExternalViews(t *testing.T) {
	g := generators.NewGraph500(9, 7)
	edges := graph.Undirect(g.Generate())
	n := g.NumVertices()
	m := buildCSR(t, edges, n)
	store, err := extmem.ExternalizeCSR(m, extmem.NVRAMConfig{
		Latency: 0, QueueDepth: 8, PageSize: 256, CacheBytes: 1 << 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	views := make([]*csr.Matrix, 3)
	for i := range views {
		v, err := m.WithTargets(store.View())
		if err != nil {
			t.Fatal(err)
		}
		views[i] = v
	}
	res := CCWithViews(views, n)
	_, wantCount := ref.Components(ref.BuildAdj(edges, n))
	if res.NumComponents() != wantCount {
		t.Fatalf("components = %d, want %d", res.NumComponents(), wantCount)
	}
}
