package traffic

import (
	"fmt"
	"testing"
)

func ck(src, ver uint64) Key { return Key{Algo: "bfs", Source: src, Version: ver} }

func TestCacheHitAndMiss(t *testing.T) {
	c := newResultCache(1 << 20)
	if _, ok := c.get(ck(1, 1)); ok {
		t.Fatal("hit on empty cache")
	}
	if stored, _ := c.put(ck(1, 1), []byte("v1")); !stored {
		t.Fatal("put rejected")
	}
	val, ok := c.get(ck(1, 1))
	if !ok || string(val) != "v1" {
		t.Fatalf("get = %q, %v", val, ok)
	}
	if _, ok := c.get(ck(2, 1)); ok {
		t.Fatal("hit on absent key")
	}
}

func TestCacheEvictsLRUUnderBytePressure(t *testing.T) {
	// Room for exactly two entries of entrySize(100B) = 228B each.
	c := newResultCache(2 * (100 + cacheEntryOverhead))
	val := make([]byte, 100)
	c.put(ck(1, 1), val)
	c.put(ck(2, 1), val)
	c.get(ck(1, 1)) // refresh 1: key 2 becomes LRU
	if _, evicted := c.put(ck(3, 1), val); evicted != 1 {
		t.Fatalf("evicted %d entries, want 1", evicted)
	}
	if _, ok := c.get(ck(2, 1)); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.get(ck(1, 1)); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := c.get(ck(3, 1)); !ok {
		t.Fatal("new entry missing")
	}
	bytes, entries := c.stats()
	if entries != 2 || bytes > c.capacity {
		t.Fatalf("stats = %d bytes, %d entries; capacity %d", bytes, entries, c.capacity)
	}
}

func TestCacheRejectsOversizedValue(t *testing.T) {
	c := newResultCache(256)
	c.put(ck(1, 1), []byte("small"))
	if stored, _ := c.put(ck(2, 1), make([]byte, 512)); stored {
		t.Fatal("value larger than capacity stored")
	}
	// The oversized put must not have evicted anything.
	if _, ok := c.get(ck(1, 1)); !ok {
		t.Fatal("oversized put evicted an existing entry")
	}
}

func TestCachePutRefreshesExistingKey(t *testing.T) {
	c := newResultCache(1 << 20)
	c.put(ck(1, 1), []byte("old"))
	c.put(ck(1, 1), []byte("new-longer-value"))
	val, ok := c.get(ck(1, 1))
	if !ok || string(val) != "new-longer-value" {
		t.Fatalf("get = %q, %v", val, ok)
	}
	bytes, entries := c.stats()
	want := entrySize([]byte("new-longer-value"))
	if entries != 1 || bytes != want {
		t.Fatalf("stats = %d bytes, %d entries; want %d bytes, 1 entry", bytes, entries, want)
	}
}

func TestCachePurgeBelowDropsOldVersions(t *testing.T) {
	c := newResultCache(1 << 20)
	for v := uint64(1); v <= 3; v++ {
		for s := uint64(0); s < 4; s++ {
			c.put(ck(s, v), []byte(fmt.Sprintf("v%d-s%d", v, s)))
		}
	}
	if dropped := c.purgeBelow(3); dropped != 8 {
		t.Fatalf("dropped %d entries, want 8", dropped)
	}
	for s := uint64(0); s < 4; s++ {
		if _, ok := c.get(ck(s, 1)); ok {
			t.Fatalf("version-1 entry for source %d survived purge", s)
		}
		if _, ok := c.get(ck(s, 3)); !ok {
			t.Fatalf("current-version entry for source %d purged", s)
		}
	}
	bytes, entries := c.stats()
	if entries != 4 {
		t.Fatalf("%d entries after purge, want 4", entries)
	}
	if bytes <= 0 {
		t.Fatalf("bytes = %d after purge", bytes)
	}
}
