package traffic

// Per-tenant token-bucket quotas with batched accounting. The design rule is
// the paper's own: commit information, not traffic. The admission hot path is
// one atomic decrement on the tenant's token counter — no lock, no clock
// read, no allocation — and all bookkeeping (refill, clamping, tenant-table
// growth) happens on a coarse shared tick that amortizes across every
// request admitted inside the tick window. A million requests per second
// against one tenant cost exactly one refill per tick, not a million
// timestamp computations.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrQuotaExceeded is the typed quota-shed error. It carries the suggested
// Retry-After so HTTP layers can map it to 429 + Retry-After without
// re-deriving the refill schedule. Use errors.As to recover the value, or
// errors.Is(err, ErrQuota) to classify.
type ErrQuotaExceeded struct {
	// Tenant is the shedding tenant's identifier.
	Tenant string
	// RetryAfter is the suggested client back-off: by then at least one
	// refill tick has landed tokens in the bucket.
	RetryAfter time.Duration
}

func (e *ErrQuotaExceeded) Error() string {
	return fmt.Sprintf("traffic: tenant %q over quota (retry after %v)", e.Tenant, e.RetryAfter)
}

// Is makes errors.Is(err, ErrQuota) match any quota shed.
func (e *ErrQuotaExceeded) Is(target error) bool { return target == ErrQuota }

// ErrQuota is the classification sentinel for quota sheds (the per-instance
// detail lives in *ErrQuotaExceeded).
var ErrQuota = errors.New("traffic: quota exceeded")

// bucket is one tenant's token pool. tokens is scaled by tokenScale so
// fractional per-tick refill amounts accumulate instead of truncating to
// zero (a 2 req/s tenant on a 100ms tick earns 0.2 tokens per tick).
type bucket struct {
	tokens atomic.Int64
	_      [56]byte //nolint:unused // pad to a cache line; buckets sit in a shared map
}

const tokenScale = 1 << 20

// QuotaConfig tunes the limiter.
type QuotaConfig struct {
	// Rate is the sustained per-tenant request rate (tokens per second).
	// Default 100.
	Rate float64
	// Burst is the bucket capacity: how far a tenant can briefly exceed
	// Rate after idling. Default 2*Rate (min 1).
	Burst float64
	// Tick is the batched-refill period. Shorter ticks smooth admission at
	// the cost of more background work; the default 100ms keeps worst-case
	// added latency for a just-shed client at one tick. Default 100ms.
	Tick time.Duration
	// MaxTenants bounds the tenant table; once full, new tenants share the
	// overflow bucket instead of growing the map without bound (an API-key
	// churn attack otherwise turns the limiter itself into the memory
	// leak). Default 4096.
	MaxTenants int
}

func (c QuotaConfig) normalized() QuotaConfig {
	if c.Rate <= 0 {
		c.Rate = 100
	}
	if c.Burst <= 0 {
		c.Burst = 2 * c.Rate
	}
	if c.Burst < 1 {
		c.Burst = 1
	}
	if c.Tick <= 0 {
		c.Tick = 100 * time.Millisecond
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 4096
	}
	return c
}

// Limiter is the batched token-bucket quota table. Admit is safe for
// unbounded concurrency; refill runs on one background goroutine started by
// newLimiter and stopped by close.
type Limiter struct {
	cfg      QuotaConfig
	buckets  sync.Map // tenant string -> *bucket
	tenants  atomic.Int64
	overflow bucket // shared bucket for tenants past MaxTenants

	stop chan struct{}
	done chan struct{}
}

func newLimiter(cfg QuotaConfig) *Limiter {
	l := &Limiter{
		cfg:  cfg.normalized(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	l.overflow.tokens.Store(l.burstScaled())
	go l.refillLoop()
	return l
}

func (l *Limiter) burstScaled() int64 { return int64(l.cfg.Burst * tokenScale) }

func (l *Limiter) refillScaled() int64 {
	return int64(l.cfg.Rate * l.cfg.Tick.Seconds() * tokenScale)
}

// Admit spends one token from tenant's bucket. The hot path is a single
// atomic add; a tenant's first request takes the slow path once to install
// its bucket. Returns *ErrQuotaExceeded (matching ErrQuota) when the bucket
// is empty.
func (l *Limiter) Admit(tenant string) error {
	b := l.bucket(tenant)
	if b.tokens.Add(-tokenScale) >= 0 {
		return nil
	}
	// Empty: un-spend so a long shed streak can't dig a debt hole that
	// outlasts the overload (refill clamps at burst, not at zero, so debt
	// would otherwise persist).
	b.tokens.Add(tokenScale)
	return &ErrQuotaExceeded{Tenant: tenant, RetryAfter: l.retryAfter()}
}

// retryAfter suggests the earliest useful retry: the next refill tick,
// rounded up to a whole second for HTTP Retry-After friendliness.
func (l *Limiter) retryAfter() time.Duration {
	d := l.cfg.Tick
	if min := time.Second; d < min {
		d = min
	}
	return d
}

func (l *Limiter) bucket(tenant string) *bucket {
	if v, ok := l.buckets.Load(tenant); ok {
		return v.(*bucket)
	}
	if l.tenants.Load() >= int64(l.cfg.MaxTenants) {
		return &l.overflow
	}
	nb := &bucket{}
	nb.tokens.Store(l.burstScaled())
	if v, loaded := l.buckets.LoadOrStore(tenant, nb); loaded {
		return v.(*bucket)
	}
	l.tenants.Add(1)
	return nb
}

// Tenants returns the number of distinct tenants with installed buckets.
func (l *Limiter) Tenants() int64 { return l.tenants.Load() }

// refillLoop is the batched-accounting half: every Tick it adds one tick's
// worth of tokens to every bucket and clamps at Burst. CAS-free: between a
// Load and the Store an admitted request may spend a token that the clamp
// then forgets, which momentarily over-grants at most one in-flight request
// per tenant per tick — quota enforcement is a rate shape, not a ledger, and
// this imprecision is the price of a lock-free admission path.
func (l *Limiter) refillLoop() {
	defer close(l.done)
	t := time.NewTicker(l.cfg.Tick)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
		}
		refill, burst := l.refillScaled(), l.burstScaled()
		top := func(b *bucket) {
			if v := b.tokens.Load() + refill; v > burst {
				b.tokens.Store(burst)
			} else {
				b.tokens.Add(refill)
			}
		}
		l.buckets.Range(func(_, v any) bool {
			top(v.(*bucket))
			return true
		})
		top(&l.overflow)
	}
}

func (l *Limiter) close() {
	close(l.stop)
	<-l.done
}
