package traffic

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCollapseManyIntoOneExecution(t *testing.T) {
	var g group
	var execs atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	const n = 16
	key := Key{Algo: "bfs", Source: 7, Version: 1}
	var wg sync.WaitGroup
	vals := make([][]byte, n)
	joins := make([]bool, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			var exec func(context.Context) ([]byte, error)
			if i == 0 {
				exec = func(context.Context) ([]byte, error) {
					execs.Add(1)
					close(started)
					<-release
					return []byte("answer"), nil
				}
			} else {
				<-started // guarantee the leader is in flight before joining
				exec = func(context.Context) ([]byte, error) {
					execs.Add(1)
					return []byte("wrong leader"), nil
				}
			}
			val, joined, err := g.do(context.Background(), key, exec)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
			}
			vals[i], joins[i] = val, joined
		}()
	}
	go func() {
		<-started
		time.Sleep(10 * time.Millisecond) // let the followers enqueue
		close(release)
	}()
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Fatalf("%d executions for %d identical requests, want 1", got, n)
	}
	joinCount := 0
	for i := 0; i < n; i++ {
		if string(vals[i]) != "answer" {
			t.Fatalf("request %d got %q", i, vals[i])
		}
		if joins[i] {
			joinCount++
		}
	}
	if joinCount != n-1 {
		t.Fatalf("%d joins, want %d", joinCount, n-1)
	}
}

func TestCollapseDifferentKeysDoNotCollapse(t *testing.T) {
	var g group
	var execs atomic.Int64
	exec := func(context.Context) ([]byte, error) {
		execs.Add(1)
		return nil, nil
	}
	if _, _, err := g.do(context.Background(), Key{Source: 1}, exec); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.do(context.Background(), Key{Source: 2}, exec); err != nil {
		t.Fatal(err)
	}
	// Same source, different version: a version bump must miss.
	if _, _, err := g.do(context.Background(), Key{Source: 1, Version: 1}, exec); err != nil {
		t.Fatal(err)
	}
	if got := execs.Load(); got != 3 {
		t.Fatalf("%d executions, want 3", got)
	}
}

// TestCollapseFollowerCancelDoesNotCancelLeader is the satellite-mandated
// cancellation test: a collapsed follower abandoning must return promptly
// with its own context error while the leader's execution keeps running and
// completes.
func TestCollapseFollowerCancelDoesNotCancelLeader(t *testing.T) {
	var g group
	key := Key{Algo: "bfs", Source: 1}
	started := make(chan struct{})
	release := make(chan struct{})
	execCancelled := make(chan struct{})

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := g.do(context.Background(), key, func(ctx context.Context) ([]byte, error) {
			close(started)
			select {
			case <-release:
				return []byte("ok"), nil
			case <-ctx.Done():
				close(execCancelled)
				return nil, ctx.Err()
			}
		})
		leaderDone <- err
	}()
	<-started

	// Follower joins, then abandons.
	fctx, fcancel := context.WithCancel(context.Background())
	followerDone := make(chan struct{})
	var fjoined bool
	var ferr error
	go func() {
		defer close(followerDone)
		_, fjoined, ferr = g.do(fctx, key, func(context.Context) ([]byte, error) {
			t.Error("follower executed instead of joining")
			return nil, nil
		})
	}()
	time.Sleep(10 * time.Millisecond) // let the follower join
	fcancel()
	select {
	case <-followerDone:
	case <-time.After(time.Second):
		t.Fatal("cancelled follower did not return")
	}
	if !fjoined {
		t.Fatal("follower did not join the in-flight call")
	}
	if !errors.Is(ferr, context.Canceled) {
		t.Fatalf("follower error = %v, want context.Canceled", ferr)
	}

	// The leader still has a waiter: its execution must not be cancelled.
	select {
	case <-execCancelled:
		t.Fatal("follower cancellation cancelled the leader's execution")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader failed after follower cancel: %v", err)
	}
}

func TestCollapseLastWaiterGoneCancelsExecution(t *testing.T) {
	var g group
	key := Key{Algo: "bfs", Source: 2}
	started := make(chan struct{})
	execCancelled := make(chan struct{})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := g.do(ctx, key, func(execCtx context.Context) ([]byte, error) {
			close(started)
			<-execCtx.Done()
			close(execCancelled)
			return nil, execCtx.Err()
		})
		done <- err
	}()
	<-started
	cancel() // the only waiter leaves
	select {
	case <-execCancelled:
	case <-time.After(time.Second):
		t.Fatal("execution not cancelled after its last waiter left")
	}
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter error = %v, want context.Canceled", err)
	}
}

func TestCollapseSharedErrorReachesAllWaiters(t *testing.T) {
	var g group
	key := Key{Algo: "bfs", Source: 3}
	boom := errors.New("boom")
	started := make(chan struct{})
	release := make(chan struct{})

	const n = 4
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			exec := func(context.Context) ([]byte, error) {
				close(started)
				<-release
				return nil, boom
			}
			if i > 0 {
				<-started
				exec = func(context.Context) ([]byte, error) {
					t.Errorf("request %d executed", i)
					return nil, nil
				}
			}
			_, _, errs[i] = g.do(context.Background(), key, exec)
		}()
	}
	go func() {
		<-started
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("request %d error = %v, want boom", i, err)
		}
	}
}

func TestCollapseCallUnregisteredAfterCompletion(t *testing.T) {
	var g group
	var execs atomic.Int64
	key := Key{Algo: "bfs", Source: 4}
	exec := func(context.Context) ([]byte, error) {
		execs.Add(1)
		return nil, nil
	}
	// Sequential identical requests must each execute: collapsing applies to
	// concurrent requests only, completed calls must not linger in the map.
	for i := 0; i < 3; i++ {
		if _, joined, err := g.do(context.Background(), key, exec); err != nil || joined {
			t.Fatalf("request %d: joined=%v err=%v", i, joined, err)
		}
	}
	if got := execs.Load(); got != 3 {
		t.Fatalf("%d executions, want 3", got)
	}
}
