package traffic

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"havoqgt/internal/obs"
)

func testPlane(t *testing.T, cfg Config) *Plane {
	t.Helper()
	if cfg.Quota.Tick == 0 {
		cfg.Quota.Tick = time.Hour // keep refill out of the picture
	}
	p := New(cfg)
	t.Cleanup(p.Close)
	return p
}

func TestPlaneDoCachesSuccess(t *testing.T) {
	p := testPlane(t, Config{})
	var execs atomic.Int64
	exec := func(context.Context) ([]byte, error) {
		execs.Add(1)
		return []byte("result"), nil
	}
	key := Key{Algo: "bfs", Source: 1, Version: 1}

	val, outcome, err := p.Do(context.Background(), key, exec)
	if err != nil || string(val) != "result" || outcome != OutcomeExecuted {
		t.Fatalf("first Do = %q, %v, %v", val, outcome, err)
	}
	val, outcome, err = p.Do(context.Background(), key, exec)
	if err != nil || string(val) != "result" || outcome != OutcomeCached {
		t.Fatalf("second Do = %q, %v, %v", val, outcome, err)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("%d executions, want 1", got)
	}
}

func TestPlaneDoNeverCachesErrors(t *testing.T) {
	p := testPlane(t, Config{})
	boom := errors.New("boom")
	var execs atomic.Int64
	key := Key{Algo: "bfs", Source: 1, Version: 1}

	_, _, err := p.Do(context.Background(), key, func(context.Context) ([]byte, error) {
		execs.Add(1)
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failure must not be served from the cache: the next request
	// executes again and can succeed.
	val, outcome, err := p.Do(context.Background(), key, func(context.Context) ([]byte, error) {
		execs.Add(1)
		return []byte("recovered"), nil
	})
	if err != nil || string(val) != "recovered" || outcome != OutcomeExecuted {
		t.Fatalf("retry Do = %q, %v, %v", val, outcome, err)
	}
	if got := execs.Load(); got != 2 {
		t.Fatalf("%d executions, want 2", got)
	}
}

func TestPlaneVersionBumpInvalidates(t *testing.T) {
	p := testPlane(t, Config{})
	var execs atomic.Int64
	exec := func(context.Context) ([]byte, error) {
		execs.Add(1)
		return []byte("x"), nil
	}
	p.Do(context.Background(), Key{Source: 1, Version: 1}, exec)
	if _, outcome, _ := p.Do(context.Background(), Key{Source: 1, Version: 1}, exec); outcome != OutcomeCached {
		t.Fatalf("same-version outcome = %v, want cached", outcome)
	}
	// Version 2 misses by key and purges version-1 bytes.
	if _, outcome, _ := p.Do(context.Background(), Key{Source: 1, Version: 2}, exec); outcome != OutcomeExecuted {
		t.Fatalf("bumped-version outcome = %v, want executed", outcome)
	}
	if got := p.Version(); got != 2 {
		t.Fatalf("Version() = %d, want 2", got)
	}
	if got := execs.Load(); got != 2 {
		t.Fatalf("%d executions, want 2", got)
	}
}

func TestPlaneCacheDisabled(t *testing.T) {
	p := testPlane(t, Config{CacheBytes: -1})
	var execs atomic.Int64
	exec := func(context.Context) ([]byte, error) {
		execs.Add(1)
		return []byte("x"), nil
	}
	key := Key{Source: 1, Version: 1}
	p.Do(context.Background(), key, exec)
	if _, outcome, _ := p.Do(context.Background(), key, exec); outcome != OutcomeExecuted {
		t.Fatalf("outcome with caching disabled = %v, want executed", outcome)
	}
	if got := execs.Load(); got != 2 {
		t.Fatalf("%d executions, want 2", got)
	}
}

func TestPlaneCountersFlowIntoRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	p := testPlane(t, Config{Registry: reg, Quota: QuotaConfig{Rate: 1, Burst: 1}})
	if err := p.Admit("a"); err != nil {
		t.Fatal(err)
	}
	if err := p.Admit("a"); err == nil {
		t.Fatal("second request admitted past burst 1")
	}
	exec := func(context.Context) ([]byte, error) { return []byte("x"), nil }
	p.Do(context.Background(), Key{Source: 1, Version: 1}, exec)
	p.Do(context.Background(), Key{Source: 1, Version: 1}, exec)
	p.ObserveLatency(5 * time.Millisecond)

	s := reg.Snapshot()
	for name, want := range map[string]uint64{
		obs.TrafficAdmitted:        1,
		obs.TrafficQuotaShed:       1,
		obs.TrafficCollapseLeaders: 1,
		obs.TrafficCacheHits:       1,
		obs.TrafficCacheMisses:     1,
	} {
		if got := s.Counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if h := s.Histograms[obs.TrafficRequestNS]; h.Count != 1 {
		t.Errorf("%s count = %d, want 1", obs.TrafficRequestNS, h.Count)
	}
	if g := s.Gauges[obs.TrafficCacheEntries]; g != 1 {
		t.Errorf("%s = %d, want 1", obs.TrafficCacheEntries, g)
	}
	if g := s.Gauges[obs.TrafficCacheBytes]; g <= 0 {
		t.Errorf("%s = %d, want > 0", obs.TrafficCacheBytes, g)
	}
}

func TestPlaneEvictionCounter(t *testing.T) {
	reg := obs.NewRegistry()
	// Capacity for one 64B entry only: the second put evicts the first.
	p := testPlane(t, Config{Registry: reg, CacheBytes: 64 + cacheEntryOverhead})
	exec := func(context.Context) ([]byte, error) { return make([]byte, 64), nil }
	p.Do(context.Background(), Key{Source: 1, Version: 1}, exec)
	p.Do(context.Background(), Key{Source: 2, Version: 1}, exec)
	if got := reg.Snapshot().Counter(obs.TrafficCacheEvictions); got != 1 {
		t.Fatalf("%s = %d, want 1", obs.TrafficCacheEvictions, got)
	}
}
