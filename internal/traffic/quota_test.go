package traffic

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestQuotaAdmitWithinBurst(t *testing.T) {
	l := newLimiter(QuotaConfig{Rate: 10, Burst: 5, Tick: time.Hour})
	defer l.close()
	for i := 0; i < 5; i++ {
		if err := l.Admit("a"); err != nil {
			t.Fatalf("request %d within burst shed: %v", i, err)
		}
	}
	if err := l.Admit("a"); err == nil {
		t.Fatal("request past burst admitted")
	}
}

func TestQuotaShedIsTypedAndClassifiable(t *testing.T) {
	l := newLimiter(QuotaConfig{Rate: 1, Burst: 1, Tick: time.Hour})
	defer l.close()
	if err := l.Admit("a"); err != nil {
		t.Fatalf("first request shed: %v", err)
	}
	err := l.Admit("a")
	if err == nil {
		t.Fatal("second request admitted past burst 1")
	}
	if !errors.Is(err, ErrQuota) {
		t.Fatalf("shed error does not match ErrQuota: %v", err)
	}
	var qe *ErrQuotaExceeded
	if !errors.As(err, &qe) {
		t.Fatalf("shed error is not *ErrQuotaExceeded: %T", err)
	}
	if qe.Tenant != "a" {
		t.Fatalf("shed tenant = %q, want %q", qe.Tenant, "a")
	}
	if qe.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", qe.RetryAfter)
	}
}

func TestQuotaTenantsAreIndependent(t *testing.T) {
	l := newLimiter(QuotaConfig{Rate: 1, Burst: 1, Tick: time.Hour})
	defer l.close()
	if err := l.Admit("a"); err != nil {
		t.Fatalf("tenant a: %v", err)
	}
	if err := l.Admit("a"); err == nil {
		t.Fatal("tenant a admitted past burst")
	}
	// Tenant b's bucket is untouched by a's exhaustion.
	if err := l.Admit("b"); err != nil {
		t.Fatalf("tenant b shed by tenant a's usage: %v", err)
	}
	if got := l.Tenants(); got != 2 {
		t.Fatalf("Tenants() = %d, want 2", got)
	}
}

func TestQuotaRefillRestoresAdmission(t *testing.T) {
	l := newLimiter(QuotaConfig{Rate: 1000, Burst: 2, Tick: time.Millisecond})
	defer l.close()
	for l.Admit("a") == nil {
	}
	// 1000 req/s on a 1ms tick refills one token per tick.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if l.Admit("a") == nil {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("bucket never refilled")
}

func TestQuotaRefillClampsAtBurst(t *testing.T) {
	l := newLimiter(QuotaConfig{Rate: 1000, Burst: 3, Tick: time.Millisecond})
	defer l.close()
	time.Sleep(50 * time.Millisecond) // many ticks; bucket must clamp at burst
	admitted := 0
	for l.Admit("a") == nil {
		admitted++
		if admitted > 10 {
			break
		}
	}
	// The CAS-free refill may over-grant at most one in-flight request per
	// tick; sequential admission here can see burst+1 at worst.
	if admitted > 4 {
		t.Fatalf("admitted %d after idle, burst 3 did not clamp", admitted)
	}
}

func TestQuotaFractionalRefillAccumulates(t *testing.T) {
	// 2 req/s on a 100ms tick earns 0.2 tokens per tick: integer refill
	// would truncate to zero forever.
	l := newLimiter(QuotaConfig{Rate: 2, Burst: 1, Tick: 10 * time.Millisecond})
	defer l.close()
	for l.Admit("a") == nil {
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if l.Admit("a") == nil {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("fractional refill never accumulated into a whole token")
}

func TestQuotaOverflowBucketBoundsTenantTable(t *testing.T) {
	l := newLimiter(QuotaConfig{Rate: 1, Burst: 1, Tick: time.Hour, MaxTenants: 2})
	defer l.close()
	if err := l.Admit("a"); err != nil {
		t.Fatal(err)
	}
	if err := l.Admit("b"); err != nil {
		t.Fatal(err)
	}
	// c and d land past MaxTenants: they share the overflow bucket.
	if err := l.Admit("c"); err != nil {
		t.Fatalf("first overflow request shed: %v", err)
	}
	if err := l.Admit("d"); err == nil {
		t.Fatal("overflow bucket not shared: d admitted after c drained it")
	}
	if got := l.Tenants(); got != 2 {
		t.Fatalf("Tenants() = %d, want 2 (overflow tenants must not grow the table)", got)
	}
}

func TestQuotaConcurrentAdmitDoesNotOverAdmit(t *testing.T) {
	const burst = 100
	l := newLimiter(QuotaConfig{Rate: 1, Burst: burst, Tick: time.Hour})
	defer l.close()
	var admitted int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			for i := 0; i < 200; i++ {
				if l.Admit("a") == nil {
					local++
				}
			}
			mu.Lock()
			admitted += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	if admitted != burst {
		t.Fatalf("admitted %d of 1600 concurrent requests, want exactly burst %d", admitted, burst)
	}
}
