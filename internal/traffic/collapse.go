package traffic

// Hot-query collapsing: N identical concurrent requests fan into ONE engine
// execution whose result every requester shares. Scale-free graphs make this
// the dominant serving optimization — traffic against a power-law structure
// is power-law itself, so at any instant many clients are asking for the
// same hub traversal.
//
// The execution is detached from every individual requester: it runs under
// its own context that is cancelled only when ALL waiters have abandoned.
// A collapsed follower timing out therefore never cancels the leader's
// engine execution, and a leader disconnecting promotes the remaining
// followers' interest — the traversal keeps running as long as anyone still
// wants the answer (and its result is cached for the next asker even if the
// last waiter leaves between quiescence and delivery).

import (
	"context"
	"sync"
)

// call is one in-flight collapsed execution.
type call struct {
	done chan struct{} // closed after val/err are set and the call is unregistered
	val  []byte
	err  error

	waiters int // guarded by group.mu; execution cancels when it hits 0
	cancel  context.CancelFunc
}

// group deduplicates concurrent executions by Key.
type group struct {
	mu    sync.Mutex
	calls map[Key]*call
}

// do runs exec under key, collapsing into an already-running identical call
// when one exists. Returns the shared value, whether this request joined an
// existing execution (a collapse hit), and the shared error. If ctx expires
// while waiting, do returns ctx's error — and cancels the underlying
// execution only if no other waiter remains.
func (g *group) do(ctx context.Context, key Key, exec func(ctx context.Context) ([]byte, error)) ([]byte, bool, error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[Key]*call)
	}
	c, joined := g.calls[key]
	if joined {
		c.waiters++
	} else {
		execCtx, cancel := context.WithCancel(context.Background())
		c = &call{done: make(chan struct{}), waiters: 1, cancel: cancel}
		g.calls[key] = c
		go func() {
			val, err := exec(execCtx)
			cancel() // release the context's resources; exec has returned
			g.mu.Lock()
			// Unregister before signalling completion so a request arriving
			// after done observes a fresh map slot, never a spent call.
			if g.calls[key] == c {
				delete(g.calls, key)
			}
			c.val, c.err = val, err
			g.mu.Unlock()
			close(c.done)
		}()
	}
	g.mu.Unlock()

	select {
	case <-c.done:
		return c.val, joined, c.err
	case <-ctx.Done():
		g.mu.Lock()
		c.waiters--
		last := c.waiters == 0
		g.mu.Unlock()
		if last {
			// Nobody is listening anymore: stop paying for the traversal.
			c.cancel()
		}
		return nil, joined, ctx.Err()
	}
}
