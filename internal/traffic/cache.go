package traffic

// Bounded result cache: an LRU over serialized results with its capacity in
// bytes (a graph query answer ranges from a few hundred bytes of summary to
// megabytes of per-vertex arrays, so an entry-count bound would be
// meaningless). Keys carry the graph version, so a version bump makes every
// older entry unreachable immediately; purgeBelow reclaims their bytes.

import (
	"container/list"
	"sync"
)

// cacheEntryOverhead approximates the per-entry bookkeeping bytes (key,
// list element, map slot) charged against the capacity on top of the value
// itself, so a flood of tiny results can't hold unbounded entries.
const cacheEntryOverhead = 128

type cacheEntry struct {
	key Key
	val []byte
}

// resultCache is a mutex-guarded byte-bounded LRU. The lock is held only for
// pointer shuffling — values are stored by reference and never copied under
// the lock — so it is not a contention point even at high hit rates.
type resultCache struct {
	mu       sync.Mutex
	capacity int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[Key]*list.Element
}

func newResultCache(capacity int64) *resultCache {
	return &resultCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[Key]*list.Element),
	}
}

func entrySize(val []byte) int64 { return int64(len(val)) + cacheEntryOverhead }

// get returns the cached value for key and refreshes its recency. The
// returned slice is shared — callers must not mutate it.
func (c *resultCache) get(key Key) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// put inserts (or refreshes) key's value, evicting least-recently-used
// entries until the capacity holds. Values that alone exceed the capacity
// are not cached. Returns how many entries were evicted.
func (c *resultCache) put(key Key, val []byte) (stored bool, evicted int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	size := entrySize(val)
	if size > c.capacity {
		return false, 0
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += size - entrySize(e.val)
		e.val = val
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
		c.bytes += size
	}
	for c.bytes > c.capacity {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.remove(back)
		evicted++
	}
	return true, evicted
}

// purgeBelow drops every entry whose key's graph version is older than v,
// returning how many were dropped. Called on version advance: the stale
// entries are already unreachable (keys embed the version), this reclaims
// their bytes.
func (c *resultCache) purgeBelow(v uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var dropped int
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if el.Value.(*cacheEntry).key.Version < v {
			c.remove(el)
			dropped++
		}
		el = next
	}
	return dropped
}

func (c *resultCache) remove(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= entrySize(e.val)
}

func (c *resultCache) stats() (bytes int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes, c.ll.Len()
}
