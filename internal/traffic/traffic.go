// Package traffic is havoqd's front-door admission plane: the first layer of
// the system that thinks in users rather than ranks. It sits between the
// HTTP listener and the multi-query engine and applies, in order:
//
//  1. per-tenant token-bucket quotas with batched accounting (quota.go) —
//     the admission hot path is one atomic decrement, refill happens on a
//     coarse shared tick ("commit information, not traffic");
//  2. a bounded result cache over serialized responses, keyed by
//     (algo, source, params, graph version) and invalidated by graph-version
//     advance (cache.go) — scale-free traffic is hot-key traffic, and the
//     cheapest query is the one the engine never sees;
//  3. hot-query collapsing (collapse.go) — concurrent identical cache
//     misses fan into one engine execution whose result all of them share.
//
// Everything reports into the machine's obs registry under traffic.* names,
// so /stats exposes shed/collapse/cache behaviour next to the engine and
// message-plane counters it shapes.
package traffic

import (
	"context"
	"sync/atomic"
	"time"

	"havoqgt/internal/obs"
)

// Key identifies one logical query result: everything that determines the
// answer bytes, including the graph version so a snapshot swap (ROADMAP
// item 4) invalidates by key mismatch alone.
type Key struct {
	Algo       string
	Source     uint64
	WeightSeed uint64
	K          uint32
	Iters      uint32
	Full       bool
	// DeadlineMS separates requests with different deadline budgets:
	// their successful answers are identical, but their failure behaviour
	// is not, and a tight-deadline leader must not hand its timeout to a
	// patient follower.
	DeadlineMS int64
	Version    uint64
}

// Outcome classifies how a Do request was satisfied.
type Outcome int

const (
	// OutcomeExecuted: this request led its own engine execution.
	OutcomeExecuted Outcome = iota
	// OutcomeCollapsed: this request joined another request's in-flight
	// execution and shared its result.
	OutcomeCollapsed
	// OutcomeCached: served from the result cache, no execution at all.
	OutcomeCached
)

// String returns the outcome's wire label (used in response headers).
func (o Outcome) String() string {
	switch o {
	case OutcomeCollapsed:
		return "collapsed"
	case OutcomeCached:
		return "cached"
	default:
		return "executed"
	}
}

// Config tunes a Plane.
type Config struct {
	// Quota configures the per-tenant limiter.
	Quota QuotaConfig
	// CacheBytes bounds the result cache (serialized bytes + per-entry
	// overhead). 0 means the 64 MiB default; negative disables caching.
	CacheBytes int64
	// Registry receives the traffic.* metrics; nil creates a private one.
	Registry *obs.Registry
}

// DefaultCacheBytes is the result-cache capacity when Config.CacheBytes is 0.
const DefaultCacheBytes = 64 << 20

// Plane is the assembled front door. All methods are safe for unbounded
// concurrent use. Close stops the quota refill goroutine.
type Plane struct {
	lim     *Limiter
	grp     group
	cache   *resultCache // nil when caching is disabled
	version atomic.Uint64

	reg             *obs.Registry
	admitted        *obs.Counter
	shed            *obs.Counter
	collapseLeaders *obs.Counter
	collapseHits    *obs.Counter
	cacheHits       *obs.Counter
	cacheMisses     *obs.Counter
	cacheEvictions  *obs.Counter
	cacheBytes      *obs.Gauge
	cacheEntries    *obs.Gauge
	tenants         *obs.Gauge
	requestNS       *obs.Histogram
}

// New builds a Plane. The initial graph version is 1 (matching a freshly
// built Graph); SetVersion advances it.
func New(cfg Config) *Plane {
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	capacity := cfg.CacheBytes
	if capacity == 0 {
		capacity = DefaultCacheBytes
	}
	p := &Plane{
		lim:             newLimiter(cfg.Quota),
		reg:             reg,
		admitted:        reg.Counter(obs.TrafficAdmitted),
		shed:            reg.Counter(obs.TrafficQuotaShed),
		collapseLeaders: reg.Counter(obs.TrafficCollapseLeaders),
		collapseHits:    reg.Counter(obs.TrafficCollapseHits),
		cacheHits:       reg.Counter(obs.TrafficCacheHits),
		cacheMisses:     reg.Counter(obs.TrafficCacheMisses),
		cacheEvictions:  reg.Counter(obs.TrafficCacheEvictions),
		cacheBytes:      reg.Gauge(obs.TrafficCacheBytes),
		cacheEntries:    reg.Gauge(obs.TrafficCacheEntries),
		tenants:         reg.Gauge(obs.TrafficTenants),
		requestNS:       reg.Histogram(obs.TrafficRequestNS),
	}
	if capacity > 0 {
		p.cache = newResultCache(capacity)
	}
	p.version.Store(1)
	return p
}

// Close stops the background refill ticker. The Plane must not be used
// after Close.
func (p *Plane) Close() { p.lim.close() }

// Admit charges one request against tenant's quota. On success the request
// is counted admitted; on shed it is counted and *ErrQuotaExceeded
// (matching ErrQuota) is returned with the suggested Retry-After.
func (p *Plane) Admit(tenant string) error {
	if err := p.lim.Admit(tenant); err != nil {
		p.shed.Inc()
		return err
	}
	p.admitted.Inc()
	p.tenants.Set(p.lim.Tenants())
	return nil
}

// Do satisfies one admitted request for key: from the cache when possible,
// by joining an identical in-flight execution otherwise, and by leading a
// new execution as the last resort. exec runs detached from any single
// requester — its context cancels only when every collapsed waiter has
// abandoned — and its serialized result is cached on success only (an error
// is shared with the waiters that collapsed into it, but never cached).
//
// The returned bytes are shared with the cache and other waiters: callers
// must treat them as immutable.
func (p *Plane) Do(ctx context.Context, key Key, exec func(ctx context.Context) ([]byte, error)) ([]byte, Outcome, error) {
	p.advance(key.Version)
	if p.cache != nil {
		if val, ok := p.cache.get(key); ok {
			p.cacheHits.Inc()
			return val, OutcomeCached, nil
		}
		p.cacheMisses.Inc()
	}
	val, joined, err := p.grp.do(ctx, key, func(execCtx context.Context) ([]byte, error) {
		v, execErr := exec(execCtx)
		if execErr == nil && p.cache != nil {
			if stored, evicted := p.cache.put(key, v); stored {
				p.cacheEvictions.Add(uint64(evicted))
				b, n := p.cache.stats()
				p.cacheBytes.Set(b)
				p.cacheEntries.Set(int64(n))
			}
		}
		return v, execErr
	})
	if joined {
		p.collapseHits.Inc()
		return val, OutcomeCollapsed, err
	}
	p.collapseLeaders.Inc()
	return val, OutcomeExecuted, err
}

// ObserveLatency records one served request's end-to-end latency into the
// traffic.request_ns histogram (the source of the loadbench percentiles).
func (p *Plane) ObserveLatency(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.requestNS.Observe(uint64(d))
}

// Version returns the plane's current graph version.
func (p *Plane) Version() uint64 { return p.version.Load() }

// SetVersion advances the plane's graph version and purges cache entries
// from older versions. Regressions are ignored — versions are monotone.
func (p *Plane) SetVersion(v uint64) { p.advance(v) }

func (p *Plane) advance(v uint64) {
	for {
		cur := p.version.Load()
		if v <= cur {
			return
		}
		if p.version.CompareAndSwap(cur, v) {
			if p.cache != nil {
				p.cache.purgeBelow(v)
				b, n := p.cache.stats()
				p.cacheBytes.Set(b)
				p.cacheEntries.Set(int64(n))
			}
			return
		}
	}
}
