package graph

import (
	"testing"
	"testing/quick"
)

func TestCompareEdges(t *testing.T) {
	cases := []struct {
		a, b Edge
		want int
	}{
		{Edge{0, 0}, Edge{0, 0}, 0},
		{Edge{0, 1}, Edge{0, 2}, -1},
		{Edge{1, 0}, Edge{0, 9}, 1},
		{Edge{2, 3}, Edge{2, 3}, 0},
		{Edge{5, 1}, Edge{5, 0}, 1},
	}
	for _, c := range cases {
		if got := CompareEdges(c.a, c.b); got != c.want {
			t.Errorf("CompareEdges(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSortEdges(t *testing.T) {
	edges := []Edge{{3, 1}, {0, 2}, {3, 0}, {1, 1}, {0, 1}}
	SortEdges(edges)
	if !EdgesSorted(edges) {
		t.Fatalf("edges not sorted: %v", edges)
	}
	want := []Edge{{0, 1}, {0, 2}, {1, 1}, {3, 0}, {3, 1}}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("sorted[%d] = %v, want %v", i, edges[i], want[i])
		}
	}
}

func TestUndirect(t *testing.T) {
	edges := []Edge{{0, 1}, {2, 2}, {1, 3}}
	und := Undirect(edges)
	if len(und) != 5 { // self loop emitted once
		t.Fatalf("Undirect produced %d edges, want 5", len(und))
	}
	count := map[Edge]int{}
	for _, e := range und {
		count[e]++
	}
	for _, e := range []Edge{{0, 1}, {1, 0}, {1, 3}, {3, 1}, {2, 2}} {
		if count[e] != 1 {
			t.Errorf("edge %v appears %d times", e, count[e])
		}
	}
}

func TestSimplify(t *testing.T) {
	edges := []Edge{{1, 2}, {0, 0}, {1, 2}, {2, 1}, {3, 3}, {1, 2}, {0, 1}}
	out := Simplify(edges)
	want := []Edge{{0, 1}, {1, 2}, {2, 1}}
	if len(out) != len(want) {
		t.Fatalf("Simplify returned %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Simplify returned %v, want %v", out, want)
		}
	}
}

func TestSimplifyProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{Vertex(raw[i] % 64), Vertex(raw[i+1] % 64)})
		}
		out := Simplify(edges)
		if !EdgesSorted(out) {
			return false
		}
		for i, e := range out {
			if e.IsSelfLoop() {
				return false
			}
			if i > 0 && out[i-1] == e {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDegrees(t *testing.T) {
	edges := []Edge{{0, 1}, {0, 2}, {1, 0}, {3, 0}}
	out := OutDegrees(edges, 4)
	in := InDegrees(edges, 4)
	wantOut := []uint32{2, 1, 0, 1}
	wantIn := []uint32{2, 1, 1, 0}
	for v := range wantOut {
		if out[v] != wantOut[v] {
			t.Errorf("out-degree of %d = %d, want %d", v, out[v], wantOut[v])
		}
		if in[v] != wantIn[v] {
			t.Errorf("in-degree of %d = %d, want %d", v, in[v], wantIn[v])
		}
	}
}

func TestCensus(t *testing.T) {
	deg := make([]uint32, 100)
	deg[0] = 15000 // a 10K+ hub
	deg[1] = 2000  // a 1K hub
	deg[2] = 999
	deg[3] = 16
	c := Census(deg)
	if c.MaxDegree != 15000 || c.MaxDegreeHubEdges != 15000 {
		t.Errorf("max degree census wrong: %+v", c)
	}
	if c.EdgesDeg1K != 17000 {
		t.Errorf("EdgesDeg1K = %d, want 17000", c.EdgesDeg1K)
	}
	if c.EdgesDeg10K != 15000 {
		t.Errorf("EdgesDeg10K = %d, want 15000", c.EdgesDeg10K)
	}
	if c.NumEdges != 15000+2000+999+16 {
		t.Errorf("NumEdges = %d", c.NumEdges)
	}
}

func TestMaxVertex(t *testing.T) {
	if got := MaxVertex(nil); got != 0 {
		t.Fatalf("MaxVertex(nil) = %d", got)
	}
	if got := MaxVertex([]Edge{{5, 9}, {11, 2}}); got != 11 {
		t.Fatalf("MaxVertex = %d, want 11", got)
	}
}

func TestDegreeHistogram(t *testing.T) {
	h := DegreeHistogram([]uint32{0, 1, 1, 3, 3, 3})
	if h[0] != 1 || h[1] != 2 || h[3] != 3 {
		t.Fatalf("histogram wrong: %v", h)
	}
}
