// Package graph defines the basic graph value types shared by every other
// package in the repository: vertex identifiers, edges, edge lists, and the
// degree statistics used to characterize scale-free graphs (hub census,
// imbalance inputs).
//
// A graph here is an edge list over dense vertex identifiers [0, NumVertices).
// Partitioned, CSR, and external-memory representations are built on top by
// internal/partition, internal/csr, and internal/extmem.
package graph

import (
	"fmt"
	"slices"
)

// Vertex is a global vertex identifier. Identifiers are dense: a graph with n
// vertices uses identifiers 0..n-1.
type Vertex uint64

// Nil is the sentinel "no vertex" value, used for BFS parents of unreached
// vertices and for uninitialized visitor fields (the paper's ∞).
const Nil Vertex = ^Vertex(0)

// Edge is a directed edge from Src to Dst. Undirected graphs are represented
// by storing both directions (see Undirect).
type Edge struct {
	Src, Dst Vertex
}

// Reversed returns the edge with endpoints swapped.
func (e Edge) Reversed() Edge { return Edge{Src: e.Dst, Dst: e.Src} }

// IsSelfLoop reports whether the edge connects a vertex to itself.
func (e Edge) IsSelfLoop() bool { return e.Src == e.Dst }

func (e Edge) String() string { return fmt.Sprintf("%d->%d", e.Src, e.Dst) }

// CompareEdges orders edges by (Src, Dst). This is the global order used by
// edge list partitioning: sorting by source groups each adjacency list into a
// contiguous run.
func CompareEdges(a, b Edge) int {
	switch {
	case a.Src < b.Src:
		return -1
	case a.Src > b.Src:
		return 1
	case a.Dst < b.Dst:
		return -1
	case a.Dst > b.Dst:
		return 1
	default:
		return 0
	}
}

// SortEdges sorts the edge list in place by (Src, Dst).
func SortEdges(edges []Edge) {
	slices.SortFunc(edges, CompareEdges)
}

// EdgesSorted reports whether the edge list is sorted by (Src, Dst).
func EdgesSorted(edges []Edge) bool {
	return slices.IsSortedFunc(edges, CompareEdges)
}

// Undirect returns a new edge list containing both directions of every input
// edge. Self loops are emitted once. The result is not sorted.
func Undirect(edges []Edge) []Edge {
	out := make([]Edge, 0, 2*len(edges))
	for _, e := range edges {
		out = append(out, e)
		if !e.IsSelfLoop() {
			out = append(out, e.Reversed())
		}
	}
	return out
}

// Simplify sorts the edge list and removes self loops and duplicate edges in
// place, returning the shortened slice. Graph generators such as RMAT emit
// duplicates; k-core and triangle counting require a simple graph.
func Simplify(edges []Edge) []Edge {
	SortEdges(edges)
	out := edges[:0]
	for _, e := range edges {
		if e.IsSelfLoop() {
			continue
		}
		if len(out) > 0 && out[len(out)-1] == e {
			continue
		}
		out = append(out, e)
	}
	return out
}

// MaxVertex returns the largest vertex identifier appearing in the edge list,
// or 0 if the list is empty.
func MaxVertex(edges []Edge) Vertex {
	var m Vertex
	for _, e := range edges {
		m = max(m, e.Src, e.Dst)
	}
	return m
}

// OutDegrees returns the out-degree of every vertex in [0, n).
func OutDegrees(edges []Edge, n uint64) []uint32 {
	deg := make([]uint32, n)
	for _, e := range edges {
		deg[e.Src]++
	}
	return deg
}

// InDegrees returns the in-degree of every vertex in [0, n).
func InDegrees(edges []Edge, n uint64) []uint32 {
	deg := make([]uint32, n)
	for _, e := range edges {
		deg[e.Dst]++
	}
	return deg
}

// HubCensus summarizes the hub structure of a degree distribution. It backs
// Figure 1 of the paper ("hub growth for Graph500 graphs").
type HubCensus struct {
	NumVertices       uint64
	NumEdges          uint64 // sum of degrees
	MaxDegree         uint32 // largest single degree
	MaxDegreeHubEdges uint64 // edges belonging to the max-degree vertex
	EdgesDeg1K        uint64 // total edges belonging to vertices with degree >= 1,000
	EdgesDeg10K       uint64 // total edges belonging to vertices with degree >= 10,000
}

// Census computes the hub census of a degree distribution.
func Census(degrees []uint32) HubCensus {
	c := HubCensus{NumVertices: uint64(len(degrees))}
	for _, d := range degrees {
		c.NumEdges += uint64(d)
		if d > c.MaxDegree {
			c.MaxDegree = d
		}
		if d >= 1000 {
			c.EdgesDeg1K += uint64(d)
		}
		if d >= 10000 {
			c.EdgesDeg10K += uint64(d)
		}
	}
	c.MaxDegreeHubEdges = uint64(c.MaxDegree)
	return c
}

// DegreeHistogram returns counts of vertices per degree, as a map keyed by
// degree. Useful for verifying power-law shape in tests.
func DegreeHistogram(degrees []uint32) map[uint32]uint64 {
	h := make(map[uint32]uint64)
	for _, d := range degrees {
		h[d]++
	}
	return h
}
