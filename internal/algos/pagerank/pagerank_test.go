package pagerank_test

import (
	"testing"

	"havoqgt/internal/algos/algotest"
	"havoqgt/internal/algos/pagerank"
	"havoqgt/internal/core"
	"havoqgt/internal/generators"
	"havoqgt/internal/graph"
	"havoqgt/internal/mailbox"
	"havoqgt/internal/partition"
	"havoqgt/internal/ref"
	"havoqgt/internal/rt"
	"havoqgt/internal/xrand"
)

func runDistributed(t *testing.T, edges []graph.Edge, n uint64, p int, iters uint32,
	mkCfg func(part *partition.Part) core.Config) []uint64 {
	t.Helper()
	g := algotest.NewGathered(n)
	algotest.RunOnParts(t, edges, n, p, partition.BuildEdgeList, func(r *rt.Rank, part *partition.Part) {
		res := pagerank.Run(r, part, iters, mkCfg(part))
		g.Set(part, func(v graph.Vertex) uint64 {
			i, _ := part.LocalIndex(v)
			return res.Rank[i]
		})
	})
	return g.Values
}

func defaultCfg(part *partition.Part) core.Config { return core.Config{} }

func randomMultigraph(n uint64, m int, seed uint64) []graph.Edge {
	rng := xrand.New(seed)
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.Vertex(rng.Uint64n(n)), Dst: graph.Vertex(rng.Uint64n(n))}
	}
	return graph.Undirect(edges) // keeps duplicates and self-loops
}

// TestPageRankMatchesReference: the asynchronous counted-completion kernel
// must be bit-identical to the synchronous fixed-point reference — on
// multigraphs (duplicate edges and self-loops count with multiplicity),
// across rank counts.
func TestPageRankMatchesReference(t *testing.T) {
	edges := randomMultigraph(48, 150, 7)
	adj := ref.BuildAdj(edges, 48)
	want := ref.PageRank(adj, 10)
	for _, p := range []int{1, 2, 4, 8} {
		got := runDistributed(t, edges, 48, p, 10, defaultCfg)
		for v := range got {
			if got[v] != want[v] {
				t.Fatalf("p=%d: rank(%d) = %d, ref says %d", p, v, got[v], want[v])
			}
		}
	}
}

// TestPageRankOnRMAT: the scale-free regime with hubs (split adjacency
// lists, replica-chain emits) and isolated vertices.
func TestPageRankOnRMAT(t *testing.T) {
	g := generators.NewGraph500(9, 8)
	edges := graph.Undirect(g.Generate())
	n := g.NumVertices()
	want := ref.PageRank(ref.BuildAdj(edges, n), pagerank.DefaultIters)
	got := runDistributed(t, edges, n, 4, 0, defaultCfg) // 0 → DefaultIters
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("rank(%d) = %d, ref says %d", v, got[v], want[v])
		}
	}
}

// TestPageRankRoutedTopology: grid routing reorders message delivery; the
// counted-completion clock must still produce identical results.
func TestPageRankRoutedTopology(t *testing.T) {
	edges := randomMultigraph(64, 200, 21)
	want := ref.PageRank(ref.BuildAdj(edges, 64), 6)
	mk := func(part *partition.Part) core.Config {
		return core.Config{Topology: mailbox.NewGrid2D(4), FlushBytes: 24}
	}
	got := runDistributed(t, edges, 64, 4, 6, mk)
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("rank(%d) = %d, ref says %d", v, got[v], want[v])
		}
	}
}

// TestPageRankMassConservation: total fixed-point mass stays within the
// truncation envelope (each edge and base truncates at most 1 unit).
func TestPageRankMassConservation(t *testing.T) {
	edges := randomMultigraph(32, 100, 3)
	got := runDistributed(t, edges, 32, 2, 8, defaultCfg)
	var total uint64
	for _, rk := range got {
		total += rk
	}
	if total == 0 || total > ref.PRScale*2 {
		t.Fatalf("total mass %d outside sane envelope", total)
	}
}
