// Package pagerank implements PageRank as a visitor over the distributed
// asynchronous visitor queue — the first-class engine query type promoted
// from the offline harness (DESIGN.md §14).
//
// The kernel is a self-clocked asynchronous wavefront in deterministic
// fixed-point arithmetic (internal/ref holds the shared constants and the
// sequential reference). Each master vertex counts the contributions it has
// received for its current iteration; when the count reaches the vertex's
// full degree, the iteration is complete — rank_{k+1}(v) = base + Σ c_k(u)
// — and the vertex emits its own contribution for the next iteration down
// its replica chain. No barrier separates iterations: different vertices
// may be an iteration apart (never more — a neighbor cannot finish k+1
// before this vertex's c_k arrives), so two accumulation buckets per vertex
// suffice. Because the arithmetic is integral and completion is counted,
// the result is bit-identical to the synchronous reference under any
// message schedule — which is what makes pagerank hashable for cluster
// equivalence.
//
// PageRank is not monotone (ranks move both ways between iterations), so
// the algorithm is non-resumable: the engine's capability flag routes
// checkpoint/resume attempts to ErrNotResumable instead of checkpointing
// garbage.
package pagerank

import (
	"encoding/binary"

	"havoqgt/internal/core"
	"havoqgt/internal/graph"
	"havoqgt/internal/partition"
	"havoqgt/internal/ref"
	"havoqgt/internal/rt"
)

// DefaultIters is the iteration count when a query does not specify one.
const DefaultIters = 20

// MaxIters bounds a query's requested iteration count (each iteration is a
// full supersweep of the edge set; 64 is far past convergence at fixed
// point).
const MaxIters = 64

// Visitor kinds.
const (
	kindContrib = 0 // one neighbor's per-edge contribution for iteration Iter
	kindEmit    = 1 // fan out Val along the vertex's locally stored edges
)

// Visitor is either a contribution to a vertex's accumulator (contrib) or
// an instruction to a vertex's row holders to fan its contribution out
// (emit, forwarded down the replica chain).
type Visitor struct {
	V    graph.Vertex
	Val  uint64
	Iter uint32
	Kind uint8
}

// Vertex returns the visitor's target.
func (v Visitor) Vertex() graph.Vertex { return v.V }

const wireBytes = 8 + 8 + 4 + 1

// PR is one rank's PageRank state.
type PR struct {
	part  *partition.Part
	iters uint32

	// Rank is the fixed-point rank per local state index (masters
	// authoritative).
	Rank []uint64

	// Per-master iteration clock: done counts completed iterations; the
	// current bucket accumulates contributions tagged done, the next bucket
	// those tagged done+1 (at most one iteration of skew is possible).
	done            []uint32
	cntCur, cntNext []uint32
	accCur, accNext []uint64
	dropped         uint64 // contributions outside the two-bucket window
}

var _ core.Algorithm[Visitor] = (*PR)(nil)

// New initializes PageRank state: every vertex at rank 1/n.
func New(part *partition.Part, iters uint32) *PR {
	if iters == 0 {
		iters = DefaultIters
	}
	p := &PR{
		part:    part,
		iters:   iters,
		Rank:    make([]uint64, part.StateLen),
		done:    make([]uint32, part.StateLen),
		cntCur:  make([]uint32, part.StateLen),
		cntNext: make([]uint32, part.StateLen),
		accCur:  make([]uint64, part.StateLen),
		accNext: make([]uint64, part.StateLen),
	}
	for i := range p.Rank {
		p.Rank[i] = ref.PRScale / part.NumVertices
	}
	return p
}

// Seed pushes the initial contribution wave: every local master with edges
// emits c_0 = α·rank_0/deg; degree-0 masters settle immediately at the
// teleport mass (they receive nothing and contribute nothing).
func (p *PR) Seed(q *core.Queue[Visitor]) {
	lo, hi := p.part.Owners.MasterRange(p.part.Rank)
	base := ref.PRBase(p.part.NumVertices)
	for v := lo; v < hi; v++ {
		i, _ := p.part.LocalIndex(graph.Vertex(v))
		deg := p.part.GlobalDegree(graph.Vertex(v))
		if deg == 0 {
			p.Rank[i] = base
			p.done[i] = p.iters
			continue
		}
		c := ref.PRContrib(p.Rank[i], deg)
		q.Push(Visitor{V: graph.Vertex(v), Val: c, Iter: 0, Kind: kindEmit})
	}
}

// PreVisit applies a contribution to the master's accumulator buckets, or
// admits an emit for local fan-out (and replica-chain forwarding).
func (p *PR) PreVisit(v Visitor) bool {
	i, ok := p.part.LocalIndex(v.V)
	if !ok {
		return false
	}
	if v.Kind == kindEmit {
		return true // visit locally; the queue forwards down the chain
	}
	if !p.part.IsMaster(v.V) {
		// A completing contribution returns true below, which makes the
		// queue forward it down a split vertex's replica chain like any
		// admitted visitor; replicas drop it here.
		return false
	}
	if p.done[i] >= p.iters {
		return false // vertex finished all iterations
	}
	switch v.Iter {
	case p.done[i]:
		p.accCur[i] += v.Val
		p.cntCur[i]++
	case p.done[i] + 1:
		p.accNext[i] += v.Val
		p.cntNext[i]++
	default:
		p.dropped++ // impossible under exactly-once delivery; tolerated
		return false
	}
	// The contribution that completes the current iteration becomes the
	// completion trigger: admit it so Visit runs the completion cascade
	// (PreVisit cannot push).
	return uint64(p.cntCur[i]) == p.part.GlobalDegree(v.V)
}

// Visit runs an emit fan-out over the locally stored row portion, or — for
// the contribution that completed an iteration — the completion cascade.
func (p *PR) Visit(v Visitor, q *core.Queue[Visitor]) {
	i := q.LocalRow(v.V)
	if v.Kind == kindEmit {
		for _, t := range q.OutEdges(v.V) {
			q.Push(Visitor{V: t, Val: v.Val, Iter: v.Iter, Kind: kindContrib})
		}
		return
	}
	if !p.part.IsMaster(v.V) {
		return
	}
	deg := p.part.GlobalDegree(v.V)
	base := ref.PRBase(p.part.NumVertices)
	// Cascade: promoting the next bucket may reveal an already-complete
	// iteration (messages can arrive out of order), so loop.
	for p.done[i] < p.iters && uint64(p.cntCur[i]) == deg {
		p.Rank[i] = base + p.accCur[i]
		p.done[i]++
		p.accCur[i], p.accNext[i] = p.accNext[i], 0
		p.cntCur[i], p.cntNext[i] = p.cntNext[i], 0
		if p.done[i] < p.iters {
			q.Push(Visitor{V: v.V, Val: ref.PRContrib(p.Rank[i], deg), Iter: p.done[i], Kind: kindEmit})
		}
	}
}

// Less: no ordering requirement; completion is counted, not scheduled.
func (p *PR) Less(a, b Visitor) bool { return false }

// Encode appends the 21-byte wire form.
func (p *PR) Encode(v Visitor, buf []byte) []byte {
	var w [wireBytes]byte
	binary.LittleEndian.PutUint64(w[0:], uint64(v.V))
	binary.LittleEndian.PutUint64(w[8:], v.Val)
	binary.LittleEndian.PutUint32(w[16:], v.Iter)
	w[20] = v.Kind
	return append(buf, w[:]...)
}

// Decode parses one visitor record.
func (p *PR) Decode(buf []byte) Visitor {
	return Visitor{
		V:    graph.Vertex(binary.LittleEndian.Uint64(buf[0:])),
		Val:  binary.LittleEndian.Uint64(buf[8:]),
		Iter: binary.LittleEndian.Uint32(buf[16:]),
		Kind: buf[20],
	}
}

// Result bundles one rank's PageRank output.
type Result struct {
	*PR
	Stats core.Stats
}

// Run executes iters PageRank iterations collectively across all ranks.
func Run(r *rt.Rank, part *partition.Part, iters uint32, cfg core.Config) *Result {
	sp := r.Obs().StartPhase("pagerank.run", r.Rank())
	defer sp.End()
	p := New(part, iters)
	q := core.NewQueue[Visitor](r, part, p, cfg)
	p.Seed(q)
	q.Run()
	return &Result{PR: p, Stats: q.Stats()}
}
