// Package kcore implements k-core decomposition as a visitor over the
// distributed asynchronous visitor queue (paper §VI-B, Algorithms 4 and 5):
// vertices whose remaining degree drops below k are asynchronously removed,
// each removal notifying the neighbors, cascading until the k-core is fixed.
//
// K-core requires precise counts of removal events, so it cannot use ghost
// vertices (§IV-B): every notification must reach the master's counter.
//
// Replica semantics. Every count-bearing visitor routes to the vertex's
// master (Algorithm 1 PUSH), so only the master's counter tracks the true
// remaining degree. The master's pre_visit returns true exactly once per
// vertex — at the removal event — and only that visitor flows down the
// replica chain. A replica therefore treats an arriving visitor as an
// authoritative removal notice: it marks its copy dead and lets its portion
// of the (split) adjacency list notify the neighbors. This keeps the
// replicated state loosely consistent without double-counting decrements.
package kcore

import (
	"encoding/binary"

	"havoqgt/internal/core"
	"havoqgt/internal/graph"
	"havoqgt/internal/partition"
	"havoqgt/internal/rt"
)

// Visitor notifies a vertex that one of its neighbors left the k-core
// (Algorithm 4 state: just the target vertex).
type Visitor struct {
	V graph.Vertex
}

// Vertex returns the visitor's target.
func (v Visitor) Vertex() graph.Vertex { return v.V }

// KCore is one rank's algorithm state.
type KCore struct {
	part *partition.Part
	K    uint32

	Alive []bool
	Core  []uint32 // remaining degree + 1, master rows only meaningful
}

var _ core.Algorithm[Visitor] = (*KCore)(nil)

// New initializes the state per Algorithm 5: alive, with core counters at
// degree(v)+1 (global degree, which for partition-boundary vertices comes
// from the exchanged boundary-degree table).
func New(part *partition.Part, k uint32) *KCore {
	a := &KCore{
		part:  part,
		K:     k,
		Alive: make([]bool, part.StateLen),
		Core:  make([]uint32, part.StateLen),
	}
	for i := 0; i < part.StateLen; i++ {
		a.Alive[i] = true
		a.Core[i] = uint32(part.GlobalDegree(part.Vertex(i))) + 1
	}
	return a
}

// PreVisit implements Algorithm 4 lines 3–12 on the master, and the
// removal-notice semantics on replicas (see package comment).
func (a *KCore) PreVisit(v Visitor) bool {
	i, ok := a.part.LocalIndex(v.V)
	if !ok {
		return false
	}
	if !a.Alive[i] {
		return false
	}
	if a.part.IsMaster(v.V) {
		a.Core[i]--
		if a.Core[i] < a.K {
			a.Alive[i] = false
			return true
		}
		return false
	}
	// Replica: the master already decided removal.
	a.Alive[i] = false
	return true
}

// Visit notifies every (locally stored) neighbor that this vertex left the
// core (Algorithm 4 lines 13–17).
func (a *KCore) Visit(v Visitor, q *core.Queue[Visitor]) {
	for _, t := range q.OutEdges(v.V) {
		q.Push(Visitor{V: t})
	}
}

// Less: no visitor order required (Algorithm 4).
func (a *KCore) Less(x, y Visitor) bool { return false }

// Encode appends the 8-byte wire form.
func (a *KCore) Encode(v Visitor, buf []byte) []byte {
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], uint64(v.V))
	return append(buf, w[:]...)
}

// Decode parses one visitor record.
func (a *KCore) Decode(buf []byte) Visitor {
	return Visitor{V: graph.Vertex(binary.LittleEndian.Uint64(buf))}
}

// Result bundles one rank's k-core output.
type Result struct {
	*KCore
	Stats core.Stats
}

// Run computes the k-core collectively: every vertex is seeded with one
// visitor (absorbing the +1 in the counter initialization, per Algorithm 5),
// then the removal cascade runs to quiescence. k must be >= 1.
func Run(r *rt.Rank, part *partition.Part, k uint32, cfg core.Config) *Result {
	if k < 1 {
		panic("kcore: k must be >= 1")
	}
	sp := r.Obs().StartPhase("kcore.run", r.Rank())
	defer sp.End()
	a := New(part, k)
	q := core.NewQueue[Visitor](r, part, a, cfg)
	lo, hi := part.Owners.MasterRange(part.Rank)
	for v := lo; v < hi; v++ {
		q.Push(Visitor{V: graph.Vertex(v)})
	}
	q.Run()
	return &Result{KCore: a, Stats: q.Stats()}
}

// InCore reports whether a locally held vertex remained in the k-core.
func (a *KCore) InCore(v graph.Vertex) bool {
	i, ok := a.part.LocalIndex(v)
	return ok && a.Alive[i]
}

// LocalCoreSize returns the number of this rank's master vertices remaining
// in the core (AllReduce-Sum for the global size).
func (a *KCore) LocalCoreSize() uint64 {
	lo, hi := a.part.Owners.MasterRange(a.part.Rank)
	var n uint64
	for v := lo; v < hi; v++ {
		i, _ := a.part.LocalIndex(graph.Vertex(v))
		if a.Alive[i] {
			n++
		}
	}
	return n
}

// GlobalCoreSize reduces the core size across ranks (collective call).
func GlobalCoreSize(r *rt.Rank, res *Result) uint64 {
	return r.AllReduceU64(res.LocalCoreSize(), rt.Sum)
}
