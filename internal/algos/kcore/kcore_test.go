package kcore

import (
	"testing"

	"havoqgt/internal/algos/algotest"
	"havoqgt/internal/core"
	"havoqgt/internal/generators"
	"havoqgt/internal/graph"
	"havoqgt/internal/mailbox"
	"havoqgt/internal/partition"
	"havoqgt/internal/ref"
	"havoqgt/internal/rt"
	"havoqgt/internal/xrand"
)

// simpleUndirected builds a simple undirected edge list from random pairs.
func simpleUndirected(n uint64, m int, seed uint64) []graph.Edge {
	rng := xrand.New(seed)
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.Vertex(rng.Uint64n(n)), Dst: graph.Vertex(rng.Uint64n(n))}
	}
	return graph.Simplify(graph.Undirect(edges))
}

// runDistributedKCore returns per-vertex core membership.
func runDistributedKCore(t *testing.T, edges []graph.Edge, n uint64, p int, k uint32,
	build algotest.Builder, mkCfg func(part *partition.Part) core.Config) []bool {
	t.Helper()
	g := algotest.NewGathered(n)
	algotest.RunOnParts(t, edges, n, p, build, func(r *rt.Rank, part *partition.Part) {
		res := Run(r, part, k, mkCfg(part))
		g.Set(part, func(v graph.Vertex) uint64 {
			if res.InCore(v) {
				return 1
			}
			return 0
		})
	})
	out := make([]bool, n)
	for v := range out {
		out[v] = g.Values[v] == 1
	}
	return out
}

func checkKCore(t *testing.T, edges []graph.Edge, n uint64, k uint32, got []bool) {
	t.Helper()
	want := ref.KCore(ref.BuildAdj(edges, n), k)
	for v := uint64(0); v < n; v++ {
		if got[v] != want[v] {
			t.Fatalf("k=%d: vertex %d in-core=%v, want %v", k, v, got[v], want[v])
		}
	}
}

func defaultCfg(part *partition.Part) core.Config { return core.Config{} }

func TestKCoreMatchesReference(t *testing.T) {
	edges := simpleUndirected(64, 300, 1)
	for _, k := range []uint32{1, 2, 3, 4, 8} {
		for _, p := range []int{1, 2, 4, 8} {
			got := runDistributedKCore(t, edges, 64, p, k, partition.BuildEdgeList, defaultCfg)
			checkKCore(t, edges, 64, k, got)
		}
	}
}

func TestKCoreOnRMAT(t *testing.T) {
	g := generators.NewGraph500(9, 3)
	edges := graph.Simplify(graph.Undirect(g.Generate()))
	n := g.NumVertices()
	for _, k := range []uint32{4, 16} {
		got := runDistributedKCore(t, edges, n, 4, k, partition.BuildEdgeList, defaultCfg)
		checkKCore(t, edges, n, k, got)
	}
}

func TestKCoreSplitHubCorrect(t *testing.T) {
	// A hub whose adjacency spans several edge-list partitions: the replica
	// removal-notice semantics must still produce the exact k-core.
	var pairs []graph.Edge
	n := uint64(128)
	for v := uint64(1); v < n; v++ {
		pairs = append(pairs, graph.Edge{Src: 0, Dst: graph.Vertex(v)}) // star
	}
	// A clique among 1..8 so there is a nontrivial 7-core.
	for a := uint64(1); a <= 8; a++ {
		for b := a + 1; b <= 8; b++ {
			pairs = append(pairs, graph.Edge{Src: graph.Vertex(a), Dst: graph.Vertex(b)})
		}
	}
	edges := graph.Simplify(graph.Undirect(pairs))
	for _, k := range []uint32{2, 7, 8} {
		got := runDistributedKCore(t, edges, n, 8, k, partition.BuildEdgeList, defaultCfg)
		checkKCore(t, edges, n, k, got)
	}
}

func TestKCoreRing(t *testing.T) {
	// A ring is its own 2-core; the 3-core is empty.
	n := uint64(32)
	var pairs []graph.Edge
	for v := uint64(0); v < n; v++ {
		pairs = append(pairs, graph.Edge{Src: graph.Vertex(v), Dst: graph.Vertex((v + 1) % n)})
	}
	edges := graph.Simplify(graph.Undirect(pairs))
	got2 := runDistributedKCore(t, edges, n, 3, 2, partition.BuildEdgeList, defaultCfg)
	for v, in := range got2 {
		if !in {
			t.Fatalf("ring vertex %d not in 2-core", v)
		}
	}
	got3 := runDistributedKCore(t, edges, n, 3, 3, partition.BuildEdgeList, defaultCfg)
	for v, in := range got3 {
		if in {
			t.Fatalf("ring vertex %d claims 3-core membership", v)
		}
	}
}

func TestKCoreCascade(t *testing.T) {
	// A path attached to a triangle: peeling the path must cascade.
	pairs := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}, {Src: 2, Dst: 3}, {Src: 3, Dst: 4}, {Src: 4, Dst: 5}}
	edges := graph.Simplify(graph.Undirect(pairs))
	got := runDistributedKCore(t, edges, 6, 3, 2, partition.BuildEdgeList, defaultCfg)
	want := []bool{true, true, true, false, false, false}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("cascade: vertex %d = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestKCoreWithRoutedTopology(t *testing.T) {
	edges := simpleUndirected(96, 500, 9)
	mk := func(part *partition.Part) core.Config {
		return core.Config{Topology: mailbox.NewGrid2D(8)}
	}
	got := runDistributedKCore(t, edges, 96, 8, 3, partition.BuildEdgeList, mk)
	checkKCore(t, edges, 96, 3, got)
}

func TestKCoreOn1D(t *testing.T) {
	edges := simpleUndirected(64, 256, 11)
	got := runDistributedKCore(t, edges, 64, 4, 2, partition.Build1D, defaultCfg)
	checkKCore(t, edges, 64, 2, got)
}

func TestKCoreEmptyGraph(t *testing.T) {
	got := runDistributedKCore(t, nil, 16, 4, 2, partition.BuildEdgeList, defaultCfg)
	for v, in := range got {
		if in {
			t.Fatalf("edgeless vertex %d in 2-core", v)
		}
	}
}

func TestKCoreRejectsKZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 accepted")
		}
	}()
	m := rt.NewMachine(1)
	m.Run(func(r *rt.Rank) {
		part, err := partition.BuildEdgeList(r, nil, 4)
		if err != nil {
			panic(err)
		}
		Run(r, part, 0, core.Config{})
	})
}

func TestGlobalCoreSize(t *testing.T) {
	edges := simpleUndirected(64, 300, 13)
	want := ref.CoreSize(ref.KCore(ref.BuildAdj(edges, 64), 3))
	sizes := make([]uint64, 4)
	algotest.RunOnParts(t, edges, 64, 4, partition.BuildEdgeList, func(r *rt.Rank, part *partition.Part) {
		res := Run(r, part, 3, core.Config{})
		sizes[r.Rank()] = GlobalCoreSize(r, res)
	})
	for rank, s := range sizes {
		if s != want {
			t.Fatalf("rank %d reports core size %d, want %d", rank, s, want)
		}
	}
}

func TestVisitorCodecRoundTrip(t *testing.T) {
	a := &KCore{}
	v := Visitor{V: 9999999}
	buf := a.Encode(v, nil)
	if got := a.Decode(buf); got != v {
		t.Fatalf("round trip %+v", got)
	}
}

func TestDecomposeMatchesReferenceCoreness(t *testing.T) {
	edges := simpleUndirected(64, 400, 21)
	want := ref.CoreNumbers(ref.BuildAdj(edges, 64))
	g := algotest.NewGathered(64)
	algotest.RunOnParts(t, edges, 64, 4, partition.BuildEdgeList, func(r *rt.Rank, part *partition.Part) {
		coreNum := Decompose(r, part, 32, core.Config{})
		g.Set(part, func(v graph.Vertex) uint64 {
			i, _ := part.LocalIndex(v)
			return uint64(coreNum[i])
		})
	})
	for v := uint64(0); v < 64; v++ {
		if uint32(g.Values[v]) != want[v] {
			t.Fatalf("coreness(%d) = %d, want %d", v, g.Values[v], want[v])
		}
	}
}

func TestDecomposeEarlyStopsAtMaxK(t *testing.T) {
	// A triangle has coreness 2 everywhere; maxK=1 must cap at 1.
	edges := graph.Simplify(graph.Undirect([]graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0},
	}))
	g := algotest.NewGathered(3)
	algotest.RunOnParts(t, edges, 3, 2, partition.BuildEdgeList, func(r *rt.Rank, part *partition.Part) {
		coreNum := Decompose(r, part, 1, core.Config{})
		g.Set(part, func(v graph.Vertex) uint64 {
			i, _ := part.LocalIndex(v)
			return uint64(coreNum[i])
		})
	})
	for v := 0; v < 3; v++ {
		if g.Values[v] != 1 {
			t.Fatalf("capped coreness(%d) = %d, want 1", v, g.Values[v])
		}
	}
}
