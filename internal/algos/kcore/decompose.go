package kcore

import (
	"havoqgt/internal/core"
	"havoqgt/internal/graph"
	"havoqgt/internal/partition"
	"havoqgt/internal/rt"
)

// Decompose computes the full k-core decomposition up to maxK: the core
// number of a vertex is the largest k for which it belongs to the k-core
// (capped at maxK). It runs one removal cascade per k — the paper computes
// individual cores (Figure 6 shows k = 4, 16, 64); this convenience wraps
// the same traversal in a sweep.
//
// Returns the core number of every locally mastered vertex, indexed by local
// row (rows outside the master range are left at their replica values and
// should be read on their master). Collective.
func Decompose(r *rt.Rank, part *partition.Part, maxK uint32, cfg core.Config) []uint32 {
	sp := r.Obs().StartPhase("kcore.decompose", r.Rank())
	defer sp.End()
	coreNum := make([]uint32, part.StateLen)
	lo, hi := part.Owners.MasterRange(part.Rank)
	for k := uint32(1); k <= maxK; k++ {
		res := Run(r, part, k, cfg)
		anyAlive := uint64(0)
		for v := lo; v < hi; v++ {
			i, _ := part.LocalIndex(graph.Vertex(v))
			if res.Alive[i] {
				coreNum[i] = k
				anyAlive = 1
			}
		}
		// Stop early once the k-core is globally empty.
		if r.AllReduceU64(anyAlive, rt.Max) == 0 {
			break
		}
	}
	return coreNum
}
