// Package triangle implements triangle counting as a visitor over the
// distributed asynchronous visitor queue (paper §VI-C, Algorithms 6 and 7).
// Each visitor performs one of three duties: first visit (fan out to larger
// neighbors), length-2 path visit (extend wedges to larger endpoints), and
// the search for the closing edge of the length-3 cycle. Visiting triangle
// vertices in increasing identifier order ensures each triangle is counted
// exactly once, at its largest vertex. Triangle counting requires precise
// adjacency membership tests, so it cannot use ghosts.
package triangle

import (
	"encoding/binary"

	"havoqgt/internal/core"
	"havoqgt/internal/graph"
	"havoqgt/internal/partition"
	"havoqgt/internal/rt"
)

// Visitor carries a partial triangle: Second and Third are ∞ (graph.Nil)
// until filled by earlier duties (Algorithm 6 state).
type Visitor struct {
	V      graph.Vertex
	Second graph.Vertex
	Third  graph.Vertex
}

// Vertex returns the visitor's target.
func (v Visitor) Vertex() graph.Vertex { return v.V }

const wireBytes = 24

// Triangle is one rank's algorithm state: per-row triangle counters.
// Counters are plain local tallies (a split vertex's closing edges are
// distributed over its replicas; the global sum is exact).
type Triangle struct {
	part  *partition.Part
	Count []uint64
}

var _ core.Algorithm[Visitor] = (*Triangle)(nil)

// New initializes the counters to zero (Algorithm 7 lines 3–5).
func New(part *partition.Part) *Triangle {
	return &Triangle{part: part, Count: make([]uint64, part.StateLen)}
}

// PreVisit always proceeds (Algorithm 6 lines 4–6): every duty must run.
func (t *Triangle) PreVisit(v Visitor) bool {
	_, ok := t.part.LocalIndex(v.V)
	return ok
}

// dupOfPrevTail reports whether target w of vertex v's local row portion is
// a continuation of a duplicate run that started on the previous holder of
// the (split) row — that holder already acted on the edge (v, w).
func (t *Triangle) dupOfPrevTail(v, w graph.Vertex) bool {
	return t.part.PrevTailValid && t.part.PrevTail.Src == v && t.part.PrevTail.Dst == w
}

// forDistinctLarger calls fn once per *distinct* neighbor of v greater than
// v in the locally stored row portion. Rows are sorted by target, so
// duplicate edges form adjacent runs — skipped here — and a run straddling
// the boundary from the previous replica's portion is skipped via PrevTail.
// Self loops fail the vi > v test. This is what keeps triangle counting
// exact on multigraphs: each wedge is generated once per distinct edge, not
// once per stored copy.
func (t *Triangle) forDistinctLarger(v graph.Vertex, row []graph.Vertex, fn func(graph.Vertex)) {
	prev, havePrev := graph.Vertex(0), false
	if t.part.PrevTailValid && t.part.PrevTail.Src == v {
		prev, havePrev = t.part.PrevTail.Dst, true
	}
	for _, vi := range row {
		if havePrev && vi == prev {
			continue
		}
		prev, havePrev = vi, true
		if vi > v {
			fn(vi)
		}
	}
}

// countsClosing reports whether this holder counts the closing edge (v, w):
// present in the local row portion, and not already counted by the previous
// holder of a split row whose portion ends with the same edge.
func (t *Triangle) countsClosing(v, w graph.Vertex, row int) bool {
	return t.part.CSR.HasTarget(row, w) && !t.dupOfPrevTail(v, w)
}

// Visit performs the three duties (Algorithm 6 lines 7–27).
func (t *Triangle) Visit(v Visitor, q *core.Queue[Visitor]) {
	switch {
	case v.Second == graph.Nil: // first visit
		t.forDistinctLarger(v.V, q.OutEdges(v.V), func(vi graph.Vertex) {
			q.Push(Visitor{V: vi, Second: v.V, Third: graph.Nil})
		})
	case v.Third == graph.Nil: // length-2 path visit
		t.forDistinctLarger(v.V, q.OutEdges(v.V), func(vi graph.Vertex) {
			q.Push(Visitor{V: vi, Second: v.V, Third: v.Second})
		})
	default: // search for closing edge of the length-3 cycle
		row := q.LocalRow(v.V)
		if t.countsClosing(v.V, v.Third, row) {
			t.Count[row]++
		}
	}
}

// Less: no visitor order required (Algorithm 6).
func (t *Triangle) Less(a, b Visitor) bool { return false }

// Encode appends the 24-byte wire form.
func (t *Triangle) Encode(v Visitor, buf []byte) []byte {
	var w [wireBytes]byte
	binary.LittleEndian.PutUint64(w[0:], uint64(v.V))
	binary.LittleEndian.PutUint64(w[8:], uint64(v.Second))
	binary.LittleEndian.PutUint64(w[16:], uint64(v.Third))
	return append(buf, w[:]...)
}

// Decode parses one visitor record.
func (t *Triangle) Decode(buf []byte) Visitor {
	return Visitor{
		V:      graph.Vertex(binary.LittleEndian.Uint64(buf[0:])),
		Second: graph.Vertex(binary.LittleEndian.Uint64(buf[8:])),
		Third:  graph.Vertex(binary.LittleEndian.Uint64(buf[16:])),
	}
}

// Result bundles one rank's output.
type Result struct {
	*Triangle
	Stats       core.Stats
	GlobalCount uint64
	sampleProb  float64 // set by RunOpts for sampled runs; see Estimate
}

// Run counts triangles collectively: one first-visit visitor per vertex,
// traversal to quiescence, then an all-reduce of the local tallies
// (Algorithm 7). The graph must be stored undirected (both directions
// present); it need not be simple — self loops are ignored and duplicate
// edges count once (each triangle of the underlying simple graph is counted
// exactly once, at its largest vertex).
func Run(r *rt.Rank, part *partition.Part, cfg core.Config) *Result {
	sp := r.Obs().StartPhase("triangle.run", r.Rank())
	defer sp.End()
	t := New(part)
	q := core.NewQueue[Visitor](r, part, t, cfg)
	lo, hi := part.Owners.MasterRange(part.Rank)
	for v := lo; v < hi; v++ {
		q.Push(Visitor{V: graph.Vertex(v), Second: graph.Nil, Third: graph.Nil})
	}
	q.Run()
	var local uint64
	for _, c := range t.Count {
		local += c
	}
	return &Result{Triangle: t, Stats: q.Stats(), GlobalCount: r.AllReduceU64(local, rt.Sum)}
}
