// Package triangle implements triangle counting as a visitor over the
// distributed asynchronous visitor queue (paper §VI-C, Algorithms 6 and 7).
// Each visitor performs one of three duties: first visit (fan out to larger
// neighbors), length-2 path visit (extend wedges to larger endpoints), and
// the search for the closing edge of the length-3 cycle. Visiting triangle
// vertices in increasing identifier order ensures each triangle is counted
// exactly once, at its largest vertex. Triangle counting requires precise
// adjacency membership tests, so it cannot use ghosts.
package triangle

import (
	"encoding/binary"

	"havoqgt/internal/core"
	"havoqgt/internal/graph"
	"havoqgt/internal/partition"
	"havoqgt/internal/rt"
)

// Visitor carries a partial triangle: Second and Third are ∞ (graph.Nil)
// until filled by earlier duties (Algorithm 6 state).
type Visitor struct {
	V      graph.Vertex
	Second graph.Vertex
	Third  graph.Vertex
}

// Vertex returns the visitor's target.
func (v Visitor) Vertex() graph.Vertex { return v.V }

const wireBytes = 24

// Triangle is one rank's algorithm state: per-row triangle counters.
// Counters are plain local tallies (a split vertex's closing edges are
// distributed over its replicas; the global sum is exact).
type Triangle struct {
	part  *partition.Part
	Count []uint64
}

var _ core.Algorithm[Visitor] = (*Triangle)(nil)

// New initializes the counters to zero (Algorithm 7 lines 3–5).
func New(part *partition.Part) *Triangle {
	return &Triangle{part: part, Count: make([]uint64, part.StateLen)}
}

// PreVisit always proceeds (Algorithm 6 lines 4–6): every duty must run.
func (t *Triangle) PreVisit(v Visitor) bool {
	_, ok := t.part.LocalIndex(v.V)
	return ok
}

// Visit performs the three duties (Algorithm 6 lines 7–27).
func (t *Triangle) Visit(v Visitor, q *core.Queue[Visitor]) {
	switch {
	case v.Second == graph.Nil: // first visit
		for _, vi := range q.OutEdges(v.V) {
			if vi > v.V {
				q.Push(Visitor{V: vi, Second: v.V, Third: graph.Nil})
			}
		}
	case v.Third == graph.Nil: // length-2 path visit
		for _, vi := range q.OutEdges(v.V) {
			if vi > v.V {
				q.Push(Visitor{V: vi, Second: v.V, Third: v.Second})
			}
		}
	default: // search for closing edge of the length-3 cycle
		row := q.LocalRow(v.V)
		if t.part.CSR.HasTarget(row, v.Third) {
			t.Count[row]++
		}
	}
}

// Less: no visitor order required (Algorithm 6).
func (t *Triangle) Less(a, b Visitor) bool { return false }

// Encode appends the 24-byte wire form.
func (t *Triangle) Encode(v Visitor, buf []byte) []byte {
	var w [wireBytes]byte
	binary.LittleEndian.PutUint64(w[0:], uint64(v.V))
	binary.LittleEndian.PutUint64(w[8:], uint64(v.Second))
	binary.LittleEndian.PutUint64(w[16:], uint64(v.Third))
	return append(buf, w[:]...)
}

// Decode parses one visitor record.
func (t *Triangle) Decode(buf []byte) Visitor {
	return Visitor{
		V:      graph.Vertex(binary.LittleEndian.Uint64(buf[0:])),
		Second: graph.Vertex(binary.LittleEndian.Uint64(buf[8:])),
		Third:  graph.Vertex(binary.LittleEndian.Uint64(buf[16:])),
	}
}

// Result bundles one rank's output.
type Result struct {
	*Triangle
	Stats       core.Stats
	GlobalCount uint64
	sampleProb  float64 // set by RunOpts for sampled runs; see Estimate
}

// Run counts triangles collectively: one first-visit visitor per vertex,
// traversal to quiescence, then an all-reduce of the local tallies
// (Algorithm 7). The input graph must be simple (no self loops or duplicate
// edges) and stored undirected (both directions present).
func Run(r *rt.Rank, part *partition.Part, cfg core.Config) *Result {
	sp := r.Obs().StartPhase("triangle.run", r.Rank())
	defer sp.End()
	t := New(part)
	q := core.NewQueue[Visitor](r, part, t, cfg)
	lo, hi := part.Owners.MasterRange(part.Rank)
	for v := lo; v < hi; v++ {
		q.Push(Visitor{V: graph.Vertex(v), Second: graph.Nil, Third: graph.Nil})
	}
	q.Run()
	var local uint64
	for _, c := range t.Count {
		local += c
	}
	return &Result{Triangle: t, Stats: q.Stats(), GlobalCount: r.AllReduceU64(local, rt.Sum)}
}
