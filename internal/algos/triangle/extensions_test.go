package triangle

import (
	"math"
	"testing"

	"havoqgt/internal/algos/algotest"
	"havoqgt/internal/core"
	"havoqgt/internal/generators"
	"havoqgt/internal/graph"
	"havoqgt/internal/partition"
	"havoqgt/internal/ref"
	"havoqgt/internal/rt"
)

func runWithOpts(t *testing.T, edges []graph.Edge, n uint64, p int, opts Options) *Result {
	t.Helper()
	results := make([]*Result, p)
	algotest.RunOnParts(t, edges, n, p, partition.BuildEdgeList, func(r *rt.Rank, part *partition.Part) {
		results[r.Rank()] = RunOpts(r, part, core.Config{}, opts)
	})
	return results[0]
}

func TestRunOptsExactMatchesRun(t *testing.T) {
	g := generators.NewSmallWorld(1<<8, 8, 0.05, 2)
	edges := graph.Simplify(graph.Undirect(g.Generate()))
	n := g.NumVertices
	want := ref.CountTriangles(ref.BuildAdj(edges, n))
	res := runWithOpts(t, edges, n, 4, Options{})
	if res.GlobalCount != want {
		t.Fatalf("RunOpts exact counted %d, want %d", res.GlobalCount, want)
	}
	if res.Estimate() != float64(want) {
		t.Fatalf("exact Estimate = %v", res.Estimate())
	}
}

func TestSubsetCounting(t *testing.T) {
	// K5 on vertices 0..4 plus a triangle on 5,6,7. Restricting to 0..4
	// counts only K5's C(5,3)=10 triangles.
	var pairs []graph.Edge
	for a := uint64(0); a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			pairs = append(pairs, graph.Edge{Src: graph.Vertex(a), Dst: graph.Vertex(b)})
		}
	}
	pairs = append(pairs, graph.Edge{Src: 5, Dst: 6}, graph.Edge{Src: 6, Dst: 7}, graph.Edge{Src: 5, Dst: 7})
	edges := graph.Simplify(graph.Undirect(pairs))
	res := runWithOpts(t, edges, 8, 3, Options{Subset: func(v graph.Vertex) bool { return v < 5 }})
	if res.GlobalCount != 10 {
		t.Fatalf("subset counted %d, want 10", res.GlobalCount)
	}
	all := runWithOpts(t, edges, 8, 3, Options{})
	if all.GlobalCount != 11 {
		t.Fatalf("full count %d, want 11", all.GlobalCount)
	}
}

func TestSubsetCrossTrianglesExcluded(t *testing.T) {
	// Triangle 0-1-2 where vertex 2 is outside the subset: not counted.
	pairs := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}}
	edges := graph.Simplify(graph.Undirect(pairs))
	res := runWithOpts(t, edges, 3, 2, Options{Subset: func(v graph.Vertex) bool { return v < 2 }})
	if res.GlobalCount != 0 {
		t.Fatalf("cross triangle counted: %d", res.GlobalCount)
	}
}

func TestPerVertexCounts(t *testing.T) {
	// Two triangles sharing vertex 3: (1,2,3) and (0,1,3)... choose largest
	// attribution: triangle {1,2,3} -> 3, {0,1,3} -> 3.
	pairs := []graph.Edge{
		{Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 1, Dst: 3},
		{Src: 0, Dst: 1}, {Src: 0, Dst: 3},
	}
	edges := graph.Simplify(graph.Undirect(pairs))
	p := 3
	sums := make([]uint64, 4)
	algotest.RunOnParts(t, edges, 4, p, partition.BuildEdgeList, func(r *rt.Rank, part *partition.Part) {
		res := RunOpts(r, part, core.Config{}, Options{})
		for v := graph.Vertex(0); v < 4; v++ {
			c := res.PerVertexCount(v)
			// Accumulate per rank slot-free: per-vertex counts live on
			// disjoint rows except for split replicas, which hold disjoint
			// increments; reduce with a collective.
			total := r.AllReduceU64(c, rt.Sum)
			if r.Rank() == 0 {
				sums[v] = total
			}
		}
	})
	want := []uint64{0, 0, 0, 2} // both triangles attributed to vertex 3
	for v := range want {
		if sums[v] != want[v] {
			t.Fatalf("per-vertex counts = %v, want %v", sums, want)
		}
	}
}

func TestWedgeSamplingEstimate(t *testing.T) {
	// Triangle-rich small world: the sampled estimate must land within a
	// loose tolerance of the exact count.
	g := generators.NewSmallWorld(1<<10, 12, 0.02, 9)
	edges := graph.Simplify(graph.Undirect(g.Generate()))
	n := g.NumVertices
	exact := ref.CountTriangles(ref.BuildAdj(edges, n))
	if exact < 1000 {
		t.Fatalf("test graph too triangle-poor: %d", exact)
	}
	res := runWithOpts(t, edges, n, 4, Options{SampleProb: 0.25, SampleSeed: 5})
	est := res.Estimate()
	relErr := math.Abs(est-float64(exact)) / float64(exact)
	if relErr > 0.15 {
		t.Fatalf("sampled estimate %.0f vs exact %d (rel err %.3f)", est, exact, relErr)
	}
	// Sampling must actually reduce the closing-edge searches.
	if res.GlobalCount >= exact {
		t.Fatalf("sampled run counted %d >= exact %d", res.GlobalCount, exact)
	}
}

func TestSamplingDeterministicAcrossRankCounts(t *testing.T) {
	g := generators.NewSmallWorld(1<<8, 8, 0.05, 4)
	edges := graph.Simplify(graph.Undirect(g.Generate()))
	n := g.NumVertices
	opts := Options{SampleProb: 0.5, SampleSeed: 11}
	a := runWithOpts(t, edges, n, 1, opts)
	b := runWithOpts(t, edges, n, 4, opts)
	if a.GlobalCount != b.GlobalCount {
		t.Fatalf("sampled count depends on rank count: %d vs %d", a.GlobalCount, b.GlobalCount)
	}
}
