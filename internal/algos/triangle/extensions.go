package triangle

import (
	"havoqgt/internal/core"
	"havoqgt/internal/graph"
	"havoqgt/internal/partition"
	"havoqgt/internal/rt"
	"havoqgt/internal/xrand"
)

// Options extend the exact counter with the variations §VI-C mentions:
// counting triangles amongst a subset of vertices, per-vertex counts (always
// available via PerVertexCount), and approximate wedge-sampling counting in
// the style of Seshadhri, Pinar & Kolda (reference [13]).
type Options struct {
	// Subset restricts counting to triangles whose three vertices all
	// satisfy the predicate. The predicate must be deterministic and
	// evaluable on every rank (it is applied independently wherever fan-out
	// happens). Nil counts over all vertices.
	Subset func(graph.Vertex) bool

	// SampleProb < 1 enables Bernoulli wedge sampling: each length-2 path
	// spawns its closing-edge search only with this probability, decided by
	// a deterministic hash of the wedge, and Result.Estimate scales the
	// sampled count back up. 0 or 1 means exact counting.
	SampleProb float64
	// SampleSeed keys the wedge hash.
	SampleSeed uint64
}

// sampleWedge decides deterministically whether wedge (a, m, w) is sampled.
func (o Options) sampleWedge(a, m, w graph.Vertex) bool {
	if o.SampleProb <= 0 || o.SampleProb >= 1 {
		return true
	}
	h := xrand.Mix64(uint64(a) ^ xrand.Mix64(uint64(m)^xrand.Mix64(uint64(w)+o.SampleSeed)))
	return float64(h>>11)/(1<<53) < o.SampleProb
}

// optTriangle wraps the exact algorithm with subset and sampling hooks. It
// reuses the base codec and priority (none).
type optTriangle struct {
	*Triangle
	opts Options
}

func (t *optTriangle) member(v graph.Vertex) bool {
	return t.opts.Subset == nil || t.opts.Subset(v)
}

// Visit performs the three duties with subset filtering and wedge sampling.
func (t *optTriangle) Visit(v Visitor, q *core.Queue[Visitor]) {
	switch {
	case v.Second == graph.Nil: // first visit
		t.forDistinctLarger(v.V, q.OutEdges(v.V), func(vi graph.Vertex) {
			if t.member(vi) {
				q.Push(Visitor{V: vi, Second: v.V, Third: graph.Nil})
			}
		})
	case v.Third == graph.Nil: // length-2 path visit
		t.forDistinctLarger(v.V, q.OutEdges(v.V), func(vi graph.Vertex) {
			if t.member(vi) && t.opts.sampleWedge(v.Second, v.V, vi) {
				q.Push(Visitor{V: vi, Second: v.V, Third: v.Second})
			}
		})
	default: // closing-edge search
		row := q.LocalRow(v.V)
		if t.countsClosing(v.V, v.Third, row) {
			t.Count[row]++
		}
	}
}

// RunOpts counts triangles with the given extensions. The estimate (for
// sampled runs) and raw sampled count are both returned in the Result.
func RunOpts(r *rt.Rank, part *partition.Part, cfg core.Config, opts Options) *Result {
	sp := r.Obs().StartPhase("triangle.run_opts", r.Rank())
	defer sp.End()
	base := New(part)
	algo := &optTriangle{Triangle: base, opts: opts}
	q := core.NewQueue[Visitor](r, part, algo, cfg)
	lo, hi := part.Owners.MasterRange(part.Rank)
	for v := lo; v < hi; v++ {
		if algo.member(graph.Vertex(v)) {
			q.Push(Visitor{V: graph.Vertex(v), Second: graph.Nil, Third: graph.Nil})
		}
	}
	q.Run()
	var local uint64
	for _, c := range base.Count {
		local += c
	}
	res := &Result{Triangle: base, Stats: q.Stats(), GlobalCount: r.AllReduceU64(local, rt.Sum)}
	res.sampleProb = opts.SampleProb
	return res
}

// Estimate returns the (possibly scaled) triangle-count estimate: exact runs
// return GlobalCount, sampled runs scale by 1/SampleProb.
func (r *Result) Estimate() float64 {
	if r.sampleProb <= 0 || r.sampleProb >= 1 {
		return float64(r.GlobalCount)
	}
	return float64(r.GlobalCount) / r.sampleProb
}

// PerVertexCount returns the number of triangles attributed to a locally
// held vertex (triangles are attributed to their largest member, possibly
// spread over the replicas of a split vertex; sum over ranks for the exact
// per-vertex total).
func (t *Triangle) PerVertexCount(v graph.Vertex) uint64 {
	i, ok := t.part.LocalIndex(v)
	if !ok {
		return 0
	}
	return t.Count[i]
}
