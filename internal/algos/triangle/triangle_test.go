package triangle

import (
	"testing"

	"havoqgt/internal/algos/algotest"
	"havoqgt/internal/core"
	"havoqgt/internal/generators"
	"havoqgt/internal/graph"
	"havoqgt/internal/mailbox"
	"havoqgt/internal/partition"
	"havoqgt/internal/ref"
	"havoqgt/internal/rt"
	"havoqgt/internal/xrand"
)

func simpleUndirected(n uint64, m int, seed uint64) []graph.Edge {
	rng := xrand.New(seed)
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.Vertex(rng.Uint64n(n)), Dst: graph.Vertex(rng.Uint64n(n))}
	}
	return graph.Simplify(graph.Undirect(edges))
}

func countDistributed(t *testing.T, edges []graph.Edge, n uint64, p int,
	build algotest.Builder, mkCfg func(part *partition.Part) core.Config) uint64 {
	t.Helper()
	counts := make([]uint64, p)
	algotest.RunOnParts(t, edges, n, p, build, func(r *rt.Rank, part *partition.Part) {
		res := Run(r, part, mkCfg(part))
		counts[r.Rank()] = res.GlobalCount
	})
	for rank := 1; rank < p; rank++ {
		if counts[rank] != counts[0] {
			t.Fatalf("ranks disagree on global count: %v", counts)
		}
	}
	return counts[0]
}

func defaultCfg(part *partition.Part) core.Config { return core.Config{} }

func TestKnownSmallGraphs(t *testing.T) {
	cases := []struct {
		name  string
		pairs []graph.Edge
		n     uint64
		want  uint64
	}{
		{"single-triangle", []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}}, 3, 1},
		{"square-no-diagonal", []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0}}, 4, 0},
		{"square-one-diagonal", []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0}, {Src: 0, Dst: 2}}, 4, 2},
		{"k4", []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3}, {Src: 1, Dst: 2}, {Src: 1, Dst: 3}, {Src: 2, Dst: 3}}, 4, 4},
		{"two-disjoint", []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}, {Src: 3, Dst: 4}, {Src: 4, Dst: 5}, {Src: 5, Dst: 3}}, 6, 2},
		{"path", []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}}, 4, 0},
	}
	for _, c := range cases {
		edges := graph.Simplify(graph.Undirect(c.pairs))
		for _, p := range []int{1, 2, 3} {
			if got := countDistributed(t, edges, c.n, p, partition.BuildEdgeList, defaultCfg); got != c.want {
				t.Errorf("%s p=%d: counted %d, want %d", c.name, p, got, c.want)
			}
		}
	}
}

func TestMatchesReferenceRandom(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		edges := simpleUndirected(48, 300, seed)
		want := ref.CountTriangles(ref.BuildAdj(edges, 48))
		for _, p := range []int{1, 3, 6} {
			if got := countDistributed(t, edges, 48, p, partition.BuildEdgeList, defaultCfg); got != want {
				t.Fatalf("seed=%d p=%d: %d triangles, want %d", seed, p, got, want)
			}
		}
	}
}

func TestOnRMAT(t *testing.T) {
	g := generators.NewGraph500(8, 21)
	edges := graph.Simplify(graph.Undirect(g.Generate()))
	n := g.NumVertices()
	want := ref.CountTriangles(ref.BuildAdj(edges, n))
	if want == 0 {
		t.Fatal("test graph has no triangles; pick another seed")
	}
	if got := countDistributed(t, edges, n, 4, partition.BuildEdgeList, defaultCfg); got != want {
		t.Fatalf("%d triangles, want %d", got, want)
	}
}

func TestSplitHubTriangles(t *testing.T) {
	// Hub 0 participates in many triangles; its adjacency spans partitions,
	// so closing-edge checks distribute over replicas.
	var pairs []graph.Edge
	n := uint64(64)
	for v := uint64(1); v < n; v++ {
		pairs = append(pairs, graph.Edge{Src: 0, Dst: graph.Vertex(v)})
	}
	for v := uint64(1); v+1 < n; v++ {
		pairs = append(pairs, graph.Edge{Src: graph.Vertex(v), Dst: graph.Vertex(v + 1)})
	}
	edges := graph.Simplify(graph.Undirect(pairs))
	want := ref.CountTriangles(ref.BuildAdj(edges, n)) // one per ring edge
	if got := countDistributed(t, edges, n, 8, partition.BuildEdgeList, defaultCfg); got != want {
		t.Fatalf("split hub: %d triangles, want %d", got, want)
	}
}

func TestSmallWorldTriangles(t *testing.T) {
	g := generators.NewSmallWorld(1<<8, 6, 0.1, 4)
	edges := graph.Simplify(graph.Undirect(g.Generate()))
	n := g.NumVertices
	want := ref.CountTriangles(ref.BuildAdj(edges, n))
	if got := countDistributed(t, edges, n, 4, partition.BuildEdgeList, defaultCfg); got != want {
		t.Fatalf("%d triangles, want %d", got, want)
	}
}

func TestWithRoutedTopology(t *testing.T) {
	edges := simpleUndirected(64, 400, 7)
	want := ref.CountTriangles(ref.BuildAdj(edges, 64))
	mk := func(part *partition.Part) core.Config {
		return core.Config{Topology: mailbox.NewGrid3D(8)}
	}
	if got := countDistributed(t, edges, 64, 8, partition.BuildEdgeList, mk); got != want {
		t.Fatalf("routed: %d triangles, want %d", got, want)
	}
}

func TestOn1D(t *testing.T) {
	edges := simpleUndirected(48, 256, 15)
	want := ref.CountTriangles(ref.BuildAdj(edges, 48))
	if got := countDistributed(t, edges, 48, 4, partition.Build1D, defaultCfg); got != want {
		t.Fatalf("1D: %d triangles, want %d", got, want)
	}
}

// TestMultigraphKnownAnswers is the regression test for duplicate-edge /
// self-loop over-counting: the counter must see the underlying simple graph
// regardless of edge multiplicity. Duplicated triangle edges used to
// multiply wedge generation (each stored copy fanned out its own visitor).
func TestMultigraphKnownAnswers(t *testing.T) {
	dup := func(e graph.Edge, k int) []graph.Edge {
		out := make([]graph.Edge, k)
		for i := range out {
			out[i] = e
		}
		return out
	}
	var k4 []graph.Edge
	for i := uint64(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			k4 = append(k4, dup(graph.Edge{Src: graph.Vertex(i), Dst: graph.Vertex(j)}, int(i+j))...)
		}
	}
	cases := []struct {
		name  string
		pairs []graph.Edge
		n     uint64
		want  uint64
	}{
		{"tripled-triangle", append(append(dup(graph.Edge{Src: 0, Dst: 1}, 3),
			dup(graph.Edge{Src: 1, Dst: 2}, 3)...), dup(graph.Edge{Src: 2, Dst: 0}, 3)...), 3, 1},
		{"triangle-with-self-loops", []graph.Edge{
			{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0},
			{Src: 0, Dst: 0}, {Src: 1, Dst: 1}, {Src: 2, Dst: 2}, {Src: 2, Dst: 2}}, 3, 1},
		{"k4-varied-multiplicity", k4, 4, 4},
		{"doubled-square-no-diagonal", append(
			[]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0}},
			[]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0}}...), 4, 0},
	}
	for _, c := range cases {
		edges := graph.Undirect(c.pairs) // multiplicity preserved: no Simplify
		for _, p := range []int{1, 2, 3, 5} {
			if got := countDistributed(t, edges, c.n, p, partition.BuildEdgeList, defaultCfg); got != c.want {
				t.Errorf("%s p=%d: counted %d, want %d", c.name, p, got, c.want)
			}
		}
	}
}

// TestMultigraphMatchesSimplifiedReference: on a random multigraph the count
// must equal the reference count over the simplified graph — including when
// duplicate runs straddle split-row replica boundaries (many ranks, few
// vertices forces splits).
func TestMultigraphMatchesSimplifiedReference(t *testing.T) {
	for _, seed := range []uint64{4, 5} {
		rng := xrand.New(seed)
		edges := make([]graph.Edge, 400)
		for i := range edges {
			// Small vertex set + heavy duplication: ~every edge has copies.
			edges[i] = graph.Edge{Src: graph.Vertex(rng.Uint64n(24)), Dst: graph.Vertex(rng.Uint64n(24))}
		}
		multi := graph.Undirect(edges)
		want := ref.CountTriangles(ref.BuildAdj(graph.Simplify(multi), 24))
		for _, p := range []int{1, 3, 6, 8} {
			if got := countDistributed(t, multi, 24, p, partition.BuildEdgeList, defaultCfg); got != want {
				t.Fatalf("seed=%d p=%d: %d triangles, want %d", seed, p, got, want)
			}
		}
	}
}

func TestEmptyAndEdgelessGraphs(t *testing.T) {
	if got := countDistributed(t, nil, 8, 3, partition.BuildEdgeList, defaultCfg); got != 0 {
		t.Fatalf("empty graph counted %d triangles", got)
	}
}

func TestVisitorCodecRoundTrip(t *testing.T) {
	tr := &Triangle{}
	v := Visitor{V: 1, Second: graph.Nil, Third: 3}
	buf := tr.Encode(v, nil)
	if len(buf) != wireBytes {
		t.Fatalf("wire size %d", len(buf))
	}
	if got := tr.Decode(buf); got != v {
		t.Fatalf("round trip %+v", got)
	}
}
