package algotest_test

// Multi-query differential test: N interleaved BFS and SSSP queries driven
// through the multi-query engine must produce results identical to the same
// queries run sequentially on the classic one-traversal-per-machine path,
// and both must match the sequential references in internal/ref — across
// every routing topology. Levels, distances, and labels are deterministic
// values (minimum over paths) so they must match exactly; parents are
// arrival-order-dependent among equal-cost alternatives, so they are checked
// for consistency (parent one level / one edge-weight above the child)
// rather than equality.

import (
	"fmt"
	"sync"
	"testing"

	"havoqgt/internal/algos/bfs"
	"havoqgt/internal/algos/sssp"
	"havoqgt/internal/core"
	"havoqgt/internal/engine"
	"havoqgt/internal/generators"
	"havoqgt/internal/graph"
	"havoqgt/internal/mailbox"
	"havoqgt/internal/partition"
	"havoqgt/internal/ref"
	"havoqgt/internal/rt"
)

func TestEngineMatchesSequentialAcrossTopologies(t *testing.T) {
	const (
		scale = 8
		p     = 4
	)
	gen := generators.NewGraph500(scale, 99)
	n := gen.NumVertices()
	var edges []graph.Edge
	for r := 0; r < p; r++ {
		edges = append(edges, graph.Undirect(gen.GenerateChunk(r, p))...)
	}
	adj := ref.BuildAdj(edges, n)

	type qspec struct {
		algo   engine.Algo
		source graph.Vertex
		seed   uint64
	}
	var specs []qspec
	for i := 0; i < 4; i++ {
		specs = append(specs,
			qspec{algo: engine.AlgoBFS, source: graph.Vertex(i * 11)},
			qspec{algo: engine.AlgoSSSP, source: graph.Vertex(i*13 + 1), seed: uint64(i)},
		)
	}

	for _, topoName := range []string{"1d", "2d", "3d"} {
		t.Run(topoName, func(t *testing.T) {
			m := rt.NewMachine(p)
			parts := make([]*partition.Part, p)
			ghosts := make([]*core.GhostTable, p)
			m.Run(func(r *rt.Rank) {
				local := graph.Undirect(gen.GenerateChunk(r.Rank(), r.Size()))
				part, err := partition.BuildEdgeList(r, local, n)
				if err != nil {
					panic(err)
				}
				parts[r.Rank()] = part
				ghosts[r.Rank()] = core.BuildGhostTable(part, core.DefaultGhostsPerPartition)
			})

			// Sequential baseline: the same queries, one classic collective
			// traversal at a time on the same machine and partitions.
			seqLevels := make(map[int][]uint32)
			seqDist := make(map[int][]uint64)
			topo, err := mailbox.ByName(topoName, p)
			if err != nil {
				t.Fatal(err)
			}
			for i, sp := range specs {
				switch sp.algo {
				case engine.AlgoBFS:
					out := make([]uint32, n)
					m.Run(func(r *rt.Rank) {
						part := parts[r.Rank()]
						res := bfs.Run(r, part, sp.source, core.Config{Topology: topo, Ghosts: ghosts[r.Rank()]})
						gatherU32(out, part, res.Level)
					})
					seqLevels[i] = out
				case engine.AlgoSSSP:
					out := make([]uint64, n)
					m.Run(func(r *rt.Rank) {
						part := parts[r.Rank()]
						res := sssp.Run(r, part, sp.source, sp.seed, core.Config{Topology: topo, Ghosts: ghosts[r.Rank()]})
						gatherU64(out, part, res.Dist)
					})
					seqDist[i] = out
				}
			}

			// Interleaved: every query in flight at once through the engine.
			e, err := engine.Start(engine.Config{
				Machine: m, Parts: parts, Ghosts: ghosts, Topology: topoName,
			}, engine.Options{MaxInFlight: len(specs)})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			tickets := make([]*engine.Ticket, len(specs))
			var wg sync.WaitGroup
			for i, sp := range specs {
				tk, err := e.Submit(engine.Spec{Algo: sp.algo, Source: sp.source, WeightSeed: sp.seed})
				if err != nil {
					t.Fatalf("Submit %d: %v", i, err)
				}
				tickets[i] = tk
				wg.Add(1)
				go func() { defer wg.Done(); tk.Wait() }()
			}
			wg.Wait()

			for i, sp := range specs {
				res := tickets[i].Wait()
				label := fmt.Sprintf("query %d (%s from %d)", i, sp.algo, sp.source)
				switch sp.algo {
				case engine.AlgoBFS:
					refLevels, _ := ref.BFS(adj, sp.source)
					for v := uint64(0); v < n; v++ {
						if res.Levels[v] != seqLevels[i][v] {
							t.Fatalf("%s vertex %d: engine level %d != sequential level %d",
								label, v, res.Levels[v], seqLevels[i][v])
						}
						if res.Levels[v] != refLevels[v] {
							t.Fatalf("%s vertex %d: engine level %d != reference %d",
								label, v, res.Levels[v], refLevels[v])
						}
					}
					checkBFSParents(t, label, adj, sp.source, res.Levels, res.Parents)
				case engine.AlgoSSSP:
					seed := sp.seed
					refDist, _ := ref.Dijkstra(adj, sp.source, func(u, v graph.Vertex) uint64 {
						return sssp.Weight(u, v, seed)
					})
					for v := uint64(0); v < n; v++ {
						if res.Dist[v] != seqDist[i][v] {
							t.Fatalf("%s vertex %d: engine dist %d != sequential dist %d",
								label, v, res.Dist[v], seqDist[i][v])
						}
						if res.Dist[v] != refDist[v] {
							t.Fatalf("%s vertex %d: engine dist %d != reference %d",
								label, v, res.Dist[v], refDist[v])
						}
					}
					checkSSSPParents(t, label, sp.source, seed, res.Dist, res.Parents)
				}
			}
		})
	}
}

// checkBFSParents validates parent consistency: every reached non-source
// vertex's parent is a neighbor one level above it.
func checkBFSParents(t *testing.T, label string, adj ref.Adj, source graph.Vertex, levels []uint32, parents []graph.Vertex) {
	t.Helper()
	for v := range levels {
		if levels[v] == bfs.Unreached || graph.Vertex(v) == source {
			continue
		}
		par := parents[v]
		if par == graph.Nil || levels[par] != levels[v]-1 {
			t.Fatalf("%s: vertex %d (level %d) has parent %d (level %d)", label, v, levels[v], par, levels[par])
		}
		if !adj.HasEdge(par, graph.Vertex(v)) {
			t.Fatalf("%s: parent edge %d->%d not in graph", label, par, v)
		}
	}
}

// checkSSSPParents validates that each reached vertex's distance is its
// parent's distance plus the connecting edge weight.
func checkSSSPParents(t *testing.T, label string, source graph.Vertex, seed uint64, dist []uint64, parents []graph.Vertex) {
	t.Helper()
	for v := range dist {
		if dist[v] == sssp.Unreached || graph.Vertex(v) == source {
			continue
		}
		par := parents[v]
		if par == graph.Nil {
			t.Fatalf("%s: reached vertex %d has no parent", label, v)
		}
		if want := dist[par] + sssp.Weight(par, graph.Vertex(v), seed); dist[v] != want {
			t.Fatalf("%s: vertex %d dist %d != parent %d dist %d + weight", label, v, dist[v], par, dist[par])
		}
	}
}

func gatherU32(out []uint32, part *partition.Part, local []uint32) {
	lo, hi := part.Owners.MasterRange(part.Rank)
	for v := lo; v < hi; v++ {
		i, _ := part.LocalIndex(graph.Vertex(v))
		out[v] = local[i]
	}
}

func gatherU64(out []uint64, part *partition.Part, local []uint64) {
	lo, hi := part.Owners.MasterRange(part.Rank)
	for v := lo; v < hi; v++ {
		i, _ := part.LocalIndex(graph.Vertex(v))
		out[v] = local[i]
	}
}
