// Package algotest provides shared helpers for end-to-end tests of the
// distributed algorithms: build a partitioned graph across a simulated
// machine, run a per-rank function, and compare against the sequential
// references.
package algotest

import (
	"testing"

	"havoqgt/internal/graph"
	"havoqgt/internal/partition"
	"havoqgt/internal/rt"
)

// Builder constructs a partition collectively (partition.BuildEdgeList or
// partition.Build1D).
type Builder func(r *rt.Rank, local []graph.Edge, n uint64) (*partition.Part, error)

// RunOnParts scatters edges round-robin over p ranks, builds each rank's
// partition with build, and invokes fn on every rank concurrently.
func RunOnParts(t *testing.T, edges []graph.Edge, n uint64, p int, build Builder,
	fn func(r *rt.Rank, part *partition.Part)) {
	t.Helper()
	m := rt.NewMachine(p)
	m.Run(func(r *rt.Rank) {
		var local []graph.Edge
		for i, e := range edges {
			if i%p == r.Rank() {
				local = append(local, e)
			}
		}
		part, err := build(r, local, n)
		if err != nil {
			panic(err)
		}
		fn(r, part)
	})
}

// Gather collects one uint64 per master vertex from every rank into a single
// global array: rank r writes out[v] for each v it masters.
type Gathered struct {
	Values []uint64
}

// NewGathered allocates a result array for n vertices.
func NewGathered(n uint64) *Gathered { return &Gathered{Values: make([]uint64, n)} }

// Set stores the value for all master vertices of the partition using get.
// Safe to call concurrently from different ranks: master ranges are
// disjoint.
func (g *Gathered) Set(part *partition.Part, get func(v graph.Vertex) uint64) {
	lo, hi := part.Owners.MasterRange(part.Rank)
	for v := lo; v < hi; v++ {
		g.Values[v] = get(graph.Vertex(v))
	}
}
