package cc

import (
	"testing"

	"havoqgt/internal/algos/algotest"
	"havoqgt/internal/core"
	"havoqgt/internal/generators"
	"havoqgt/internal/graph"
	"havoqgt/internal/mailbox"
	"havoqgt/internal/partition"
	"havoqgt/internal/ref"
	"havoqgt/internal/rt"
	"havoqgt/internal/xrand"
)

func runDistributed(t *testing.T, edges []graph.Edge, n uint64, p int,
	mkCfg func(part *partition.Part) core.Config) ([]graph.Vertex, uint64) {
	t.Helper()
	g := algotest.NewGathered(n)
	counts := make([]uint64, p)
	algotest.RunOnParts(t, edges, n, p, partition.BuildEdgeList, func(r *rt.Rank, part *partition.Part) {
		res := Run(r, part, mkCfg(part))
		g.Set(part, func(v graph.Vertex) uint64 {
			i, _ := part.LocalIndex(v)
			return uint64(res.Label[i])
		})
		counts[r.Rank()] = NumComponents(r, res)
	})
	labels := make([]graph.Vertex, n)
	for v := range labels {
		labels[v] = graph.Vertex(g.Values[v])
	}
	for rank := 1; rank < p; rank++ {
		if counts[rank] != counts[0] {
			t.Fatalf("ranks disagree on component count: %v", counts)
		}
	}
	return labels, counts[0]
}

func checkAgainstRef(t *testing.T, edges []graph.Edge, n uint64, labels []graph.Vertex, count uint64) {
	t.Helper()
	want, wantCount := ref.Components(ref.BuildAdj(edges, n))
	for v := uint64(0); v < n; v++ {
		if labels[v] != want[v] {
			t.Fatalf("label(%d) = %d, want %d", v, labels[v], want[v])
		}
	}
	if count != wantCount {
		t.Fatalf("component count %d, want %d", count, wantCount)
	}
}

func defaultCfg(part *partition.Part) core.Config { return core.Config{} }

func TestCCMatchesReference(t *testing.T) {
	rng := xrand.New(4)
	var pairs []graph.Edge
	for i := 0; i < 100; i++ { // sparse: many components
		pairs = append(pairs, graph.Edge{
			Src: graph.Vertex(rng.Uint64n(128)),
			Dst: graph.Vertex(rng.Uint64n(128)),
		})
	}
	edges := graph.Undirect(pairs)
	for _, p := range []int{1, 2, 4, 8} {
		labels, count := runDistributed(t, edges, 128, p, defaultCfg)
		checkAgainstRef(t, edges, 128, labels, count)
	}
}

func TestCCOnRMAT(t *testing.T) {
	g := generators.NewGraph500(9, 5)
	edges := graph.Undirect(g.Generate())
	n := g.NumVertices()
	labels, count := runDistributed(t, edges, n, 4, defaultCfg)
	checkAgainstRef(t, edges, n, labels, count)
	if count < 2 {
		t.Log("RMAT graph fully connected at this seed; isolated vertices expected normally")
	}
}

func TestCCWithGhostsAndRouting(t *testing.T) {
	g := generators.NewPA(1<<9, 4, 0.2, 6)
	edges := graph.Undirect(g.Generate())
	n := g.NumVertices
	mk := func(part *partition.Part) core.Config {
		return core.Config{
			Topology: mailbox.NewGrid3D(8),
			Ghosts:   core.BuildGhostTable(part, 64),
		}
	}
	labels, count := runDistributed(t, edges, n, 8, mk)
	checkAgainstRef(t, edges, n, labels, count)
}

func TestCCIsolatedVertices(t *testing.T) {
	edges := graph.Undirect([]graph.Edge{{Src: 1, Dst: 2}})
	labels, count := runDistributed(t, edges, 5, 2, defaultCfg)
	if count != 4 { // {1,2}, {0}, {3}, {4}
		t.Fatalf("count = %d, want 4", count)
	}
	if labels[1] != 1 || labels[2] != 1 || labels[0] != 0 {
		t.Fatalf("labels = %v", labels)
	}
}

func TestCCSingleComponentRing(t *testing.T) {
	n := uint64(64)
	var pairs []graph.Edge
	for v := uint64(0); v < n; v++ {
		pairs = append(pairs, graph.Edge{Src: graph.Vertex(v), Dst: graph.Vertex((v + 1) % n)})
	}
	edges := graph.Undirect(pairs)
	labels, count := runDistributed(t, edges, n, 4, defaultCfg)
	if count != 1 {
		t.Fatalf("ring has %d components", count)
	}
	for v, l := range labels {
		if l != 0 {
			t.Fatalf("vertex %d labeled %d", v, l)
		}
	}
}

func TestVisitorCodecRoundTrip(t *testing.T) {
	c := &CC{}
	v := Visitor{V: 77, Label: 3}
	buf := c.Encode(v, nil)
	if len(buf) != wireBytes {
		t.Fatalf("wire size %d", len(buf))
	}
	if got := c.Decode(buf); got != v {
		t.Fatalf("round trip %+v", got)
	}
}
