// Package cc implements connected components as a visitor over the
// distributed asynchronous visitor queue: asynchronous label propagation
// where every vertex starts with its own identifier and adopts the minimum
// label seen, flooding improvements to its neighbors. Connected components
// is the third kernel of the authors' original asynchronous framework
// (§IV-A, reference [4]).
//
// Labels improve monotonically (minimum), so CC declares ghost usage: a
// stale ghost copy can only fail to filter, never lose a better label.
package cc

import (
	"encoding/binary"

	"havoqgt/internal/core"
	"havoqgt/internal/graph"
	"havoqgt/internal/partition"
	"havoqgt/internal/rt"
)

// Visitor carries a candidate component label to a vertex.
type Visitor struct {
	V     graph.Vertex
	Label graph.Vertex
}

// Vertex returns the visitor's target.
func (v Visitor) Vertex() graph.Vertex { return v.V }

const wireBytes = 16

// CC is one rank's algorithm state: the current minimum label of every
// locally held vertex (graph.Nil until first visited).
type CC struct {
	part  *partition.Part
	Label []graph.Vertex

	ghostLabel []graph.Vertex
}

var _ core.GhostAlgorithm[Visitor] = (*CC)(nil)

// New initializes CC state with unassigned (∞) labels.
func New(part *partition.Part) *CC {
	c := &CC{part: part, Label: make([]graph.Vertex, part.StateLen)}
	for i := range c.Label {
		c.Label[i] = graph.Nil
	}
	return c
}

// AttachGhosts allocates ghost filter state.
func (c *CC) AttachGhosts(t *core.GhostTable) {
	c.ghostLabel = make([]graph.Vertex, t.Len())
	for i := range c.ghostLabel {
		c.ghostLabel[i] = graph.Nil
	}
}

// PreVisit admits the visitor iff it improves (lowers) the current label.
func (c *CC) PreVisit(v Visitor) bool {
	i, ok := c.part.LocalIndex(v.V)
	if !ok {
		return false
	}
	if v.Label < c.Label[i] {
		c.Label[i] = v.Label
		return true
	}
	return false
}

// PreVisitGhost applies the improvement test to the local ghost copy.
func (c *CC) PreVisitGhost(v Visitor, gi int) bool {
	if v.Label < c.ghostLabel[gi] {
		c.ghostLabel[gi] = v.Label
		return true
	}
	return false
}

// Visit floods the improved label to the locally stored neighbors.
func (c *CC) Visit(v Visitor, q *core.Queue[Visitor]) {
	i := q.LocalRow(v.V)
	if v.Label != c.Label[i] {
		return
	}
	for _, t := range q.OutEdges(v.V) {
		q.Push(Visitor{V: t, Label: v.Label})
	}
}

// Less: label propagation needs no visitor order; lower labels first is a
// mild heuristic that shortens cascades.
func (c *CC) Less(a, b Visitor) bool { return a.Label < b.Label }

// Encode appends the 16-byte wire form.
func (c *CC) Encode(v Visitor, buf []byte) []byte {
	var w [wireBytes]byte
	binary.LittleEndian.PutUint64(w[0:], uint64(v.V))
	binary.LittleEndian.PutUint64(w[8:], uint64(v.Label))
	return append(buf, w[:]...)
}

// Decode parses one visitor record.
func (c *CC) Decode(buf []byte) Visitor {
	return Visitor{
		V:     graph.Vertex(binary.LittleEndian.Uint64(buf[0:])),
		Label: graph.Vertex(binary.LittleEndian.Uint64(buf[8:])),
	}
}

// Result bundles one rank's CC output.
type Result struct {
	*CC
	Stats core.Stats
}

// Run computes connected components collectively: every vertex is seeded
// with its own identifier as a label, then minimum labels flood each
// component. After Run, Label[i] is the smallest vertex id in the component
// of vertex i.
func Run(r *rt.Rank, part *partition.Part, cfg core.Config) *Result {
	sp := r.Obs().StartPhase("cc.run", r.Rank())
	defer sp.End()
	c := New(part)
	if cfg.Ghosts != nil {
		c.AttachGhosts(cfg.Ghosts)
	}
	q := core.NewQueue[Visitor](r, part, c, cfg)
	lo, hi := part.Owners.MasterRange(part.Rank)
	for v := lo; v < hi; v++ {
		q.Push(Visitor{V: graph.Vertex(v), Label: graph.Vertex(v)})
	}
	q.Run()
	return &Result{CC: c, Stats: q.Stats()}
}

// NumComponents reduces the number of distinct components across ranks: a
// master vertex whose label equals its own id is a component representative.
func NumComponents(r *rt.Rank, res *Result) uint64 {
	part := res.part
	lo, hi := part.Owners.MasterRange(part.Rank)
	var local uint64
	for v := lo; v < hi; v++ {
		i, _ := part.LocalIndex(graph.Vertex(v))
		if res.Label[i] == graph.Vertex(v) {
			local++
		}
	}
	return r.AllReduceU64(local, rt.Sum)
}
