package sssp

import (
	"testing"

	"havoqgt/internal/algos/algotest"
	"havoqgt/internal/core"
	"havoqgt/internal/generators"
	"havoqgt/internal/graph"
	"havoqgt/internal/mailbox"
	"havoqgt/internal/partition"
	"havoqgt/internal/ref"
	"havoqgt/internal/rt"
	"havoqgt/internal/xrand"
)

const weightSeed = 99

func runDistributed(t *testing.T, edges []graph.Edge, n uint64, p int, source graph.Vertex,
	mkCfg func(part *partition.Part) core.Config) ([]uint64, []graph.Vertex) {
	t.Helper()
	gd := algotest.NewGathered(n)
	gp := algotest.NewGathered(n)
	algotest.RunOnParts(t, edges, n, p, partition.BuildEdgeList, func(r *rt.Rank, part *partition.Part) {
		res := Run(r, part, source, weightSeed, mkCfg(part))
		gd.Set(part, func(v graph.Vertex) uint64 {
			i, _ := part.LocalIndex(v)
			return res.Dist[i]
		})
		gp.Set(part, func(v graph.Vertex) uint64 {
			i, _ := part.LocalIndex(v)
			return uint64(res.Parent[i])
		})
	})
	parents := make([]graph.Vertex, n)
	for v := range parents {
		parents[v] = graph.Vertex(gp.Values[v])
	}
	return gd.Values, parents
}

func checkAgainstDijkstra(t *testing.T, edges []graph.Edge, n uint64, source graph.Vertex,
	dist []uint64, parents []graph.Vertex) {
	t.Helper()
	adj := ref.BuildAdj(edges, n)
	w := func(u, v graph.Vertex) uint64 { return Weight(u, v, weightSeed) }
	want, _ := ref.Dijkstra(adj, source, w)
	for v := uint64(0); v < n; v++ {
		if dist[v] != want[v] {
			t.Fatalf("dist(%d) = %d, want %d", v, dist[v], want[v])
		}
	}
	// Parents form valid shortest paths.
	for v := uint64(0); v < n; v++ {
		if dist[v] == Unreached || graph.Vertex(v) == source {
			continue
		}
		pv := parents[v]
		if !adj.HasEdge(pv, graph.Vertex(v)) {
			t.Fatalf("parent(%d)=%d: no edge", v, pv)
		}
		if want[pv]+w(pv, graph.Vertex(v)) != dist[v] {
			t.Fatalf("parent(%d)=%d does not lie on a shortest path", v, pv)
		}
	}
}

func defaultCfg(part *partition.Part) core.Config { return core.Config{} }

func randomGraph(n uint64, m int, seed uint64) []graph.Edge {
	rng := xrand.New(seed)
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.Vertex(rng.Uint64n(n)), Dst: graph.Vertex(rng.Uint64n(n))}
	}
	return graph.Undirect(edges)
}

func TestWeightSymmetricAndBounded(t *testing.T) {
	rng := xrand.New(1)
	for i := 0; i < 1000; i++ {
		u := graph.Vertex(rng.Uint64n(1 << 30))
		v := graph.Vertex(rng.Uint64n(1 << 30))
		w1, w2 := Weight(u, v, 7), Weight(v, u, 7)
		if w1 != w2 {
			t.Fatalf("weight not symmetric for (%d,%d)", u, v)
		}
		if w1 < 1 || w1 > MaxWeight {
			t.Fatalf("weight %d out of range", w1)
		}
	}
}

func TestSSSPMatchesDijkstra(t *testing.T) {
	edges := randomGraph(64, 200, 3)
	for _, p := range []int{1, 2, 4, 8} {
		dist, parents := runDistributed(t, edges, 64, p, 5, defaultCfg)
		checkAgainstDijkstra(t, edges, 64, 5, dist, parents)
	}
}

func TestSSSPOnRMAT(t *testing.T) {
	g := generators.NewGraph500(9, 4)
	edges := graph.Undirect(g.Generate())
	n := g.NumVertices()
	dist, parents := runDistributed(t, edges, n, 4, 2, defaultCfg)
	checkAgainstDijkstra(t, edges, n, 2, dist, parents)
}

func TestSSSPWithGhostsAndRouting(t *testing.T) {
	g := generators.NewPA(1<<9, 6, 0, 8)
	edges := graph.Undirect(g.Generate())
	n := g.NumVertices
	mk := func(part *partition.Part) core.Config {
		return core.Config{
			Topology: mailbox.NewGrid2D(4),
			Ghosts:   core.BuildGhostTable(part, 128),
		}
	}
	dist, parents := runDistributed(t, edges, n, 4, 3, mk)
	checkAgainstDijkstra(t, edges, n, 3, dist, parents)
}

func TestSSSPDisconnected(t *testing.T) {
	edges := graph.Undirect([]graph.Edge{{Src: 0, Dst: 1}, {Src: 4, Dst: 5}})
	dist, _ := runDistributed(t, edges, 8, 2, 0, defaultCfg)
	if dist[4] != Unreached || dist[1] == Unreached {
		t.Fatalf("dist = %v", dist)
	}
}

// TestCorruptDistanceRejectedAndSaturated is the regression test for the
// relaxation-overflow bug: a corrupted (fault-injected) visitor carrying a
// near-max distance used to relax edges with Dist+Weight wrapping past
// Unreached, minting a tiny garbage distance that won every improvement
// test. Now the wire-decode admission path (PreVisit) rejects distances
// beyond MaxDist, and the relaxation itself saturates instead of wrapping.
func TestCorruptDistanceRejectedAndSaturated(t *testing.T) {
	edges := graph.Undirect([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	algotest.RunOnParts(t, edges, 4, 1, partition.BuildEdgeList, func(r *rt.Rank, part *partition.Part) {
		s := New(part, weightSeed)
		q := core.NewQueue[Visitor](r, part, s, core.Config{})

		// Wire-decode path: corrupted near-∞ distances must not be admitted.
		if s.PreVisit(Visitor{V: 1, Dist: ^uint64(0) - 3, Parent: 0}) {
			t.Fatal("PreVisit admitted a near-max corrupted distance")
		}
		if s.PreVisit(Visitor{V: 1, Dist: MaxDist + 1, Parent: 0}) {
			t.Fatal("PreVisit admitted a distance beyond MaxDist")
		}
		// Honest distances still pass.
		if !s.PreVisit(Visitor{V: 1, Dist: 7, Parent: 0}) {
			t.Fatal("PreVisit rejected an honest improving distance")
		}

		// Saturation path: state poked directly (as a memory fault would)
		// must not wrap during relaxation — the saturated pushes get
		// rejected at their targets' PreVisit, leaving neighbors untouched.
		i, _ := part.LocalIndex(1)
		s.Dist[i] = ^uint64(0) - 3
		s.Visit(Visitor{V: 1, Dist: s.Dist[i], Parent: 0}, q)
		q.Run()
		for _, v := range []graph.Vertex{0, 2} {
			j, _ := part.LocalIndex(v)
			if s.Dist[j] != Unreached {
				t.Fatalf("dist(%d) = %d: overflow-wrapped relaxation escaped", v, s.Dist[j])
			}
		}
	})
}

// TestDeltaSteppingAblation proves the bucket scheduler and the heap
// baseline converge to identical distances (delta-stepping changes the
// drain order, never the fixpoint).
func TestDeltaSteppingAblation(t *testing.T) {
	edges := randomGraph(96, 300, 11)
	heapCfg := func(part *partition.Part) core.Config {
		return core.Config{DisableBucketOrder: true}
	}
	for _, p := range []int{1, 4} {
		bucket, parents := runDistributed(t, edges, 96, p, 5, defaultCfg)
		heap, _ := runDistributed(t, edges, 96, p, 5, heapCfg)
		for v := range bucket {
			if bucket[v] != heap[v] {
				t.Fatalf("p=%d: bucket dist(%d)=%d, heap says %d", p, v, bucket[v], heap[v])
			}
		}
		checkAgainstDijkstra(t, edges, 96, 5, bucket, parents)
	}
}

func TestVisitorCodecRoundTrip(t *testing.T) {
	s := &SSSP{}
	v := Visitor{V: 7, Dist: 123456, Parent: 9}
	buf := s.Encode(v, nil)
	if len(buf) != wireBytes {
		t.Fatalf("wire size %d", len(buf))
	}
	if got := s.Decode(buf); got != v {
		t.Fatalf("round trip %+v", got)
	}
}
